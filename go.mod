module vmpower

go 1.22
