package vmpower_test

import (
	"fmt"
	"math/bits"

	"vmpower"
)

// Example reproduces the paper's Table III with the cooperative-game API:
// two identical VMs whose first activation adds 13 W and second adds only
// 7 W (hyper-threading contention) each receive a fair 10 W.
func Example() {
	phi, err := vmpower.ExactShapley(2, func(members uint32) float64 {
		switch bits.OnesCount32(members) {
		case 0:
			return 0
		case 1:
			return 13
		default:
			return 20
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.0f W / %.0f W\n", phi[0], phi[1])
	// Output: 10 W / 10 W
}

// ExampleNew runs the full pipeline on a noiseless simulated deployment:
// calibrate offline, run the paper's floating-point job on two identical
// VMs, and read their per-VM power.
func ExampleNew() {
	sys, err := vmpower.New(vmpower.Config{
		Machine: vmpower.Xeon16,
		VMs: []vmpower.VMSpec{
			{Name: "C_VM", Type: vmpower.Small},
			{Name: "C_VM'", Type: vmpower.Small},
		},
		Seed:       1,
		MeterNoise: -1, // noiseless so the output is exact
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := sys.Calibrate(); err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, name := range sys.VMNames() {
		if err := sys.RunWorkload(name, "floatpoint", 1); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	alloc, err := sys.Step()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pair draws %.0f W above idle; each VM gets %.0f W\n",
		alloc.DynamicPower(), alloc.Watts("C_VM"))
	// Output: pair draws 20 W above idle; each VM gets 10 W
}

// ExampleMonteCarloShapley estimates a 20-player game — beyond the exact
// method's practical range — by permutation sampling. The additive game's
// Shapley value is each player's own weight, which the sampler recovers
// exactly (zero-variance marginals).
func ExampleMonteCarloShapley() {
	worth := func(members uint32) float64 {
		return 2.5 * float64(bits.OnesCount32(members))
	}
	phi, _, err := vmpower.MonteCarloShapley(20, worth, 64, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("player 0: %.1f W, player 19: %.1f W\n", phi[0], phi[19])
	// Output: player 0: 2.5 W, player 19: 2.5 W
}
