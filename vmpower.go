// Package vmpower is a from-scratch reproduction of "Virtual Machine
// Power Accounting with Shapley Value" (Jiang, Liu, Tang, Wu, Jin —
// ICDCS 2017): fair disaggregation of a physical machine's measured power
// into per-VM shares using the non-deterministic Shapley value with a
// VHC-based linear approximation of the coalition worth function.
//
// The package is the public facade over the internal substrates (machine
// simulator, hypervisor, power meter, VHC approximator, cooperative-game
// engine). A typical session mirrors the paper's framework (Fig. 8):
//
//	sys, _ := vmpower.New(vmpower.Config{
//	    Machine: vmpower.Xeon16,
//	    VMs: []vmpower.VMSpec{
//	        {Name: "web", Type: vmpower.Small},
//	        {Name: "db", Type: vmpower.Large},
//	    },
//	})
//	_ = sys.Calibrate()                  // offline v(S,C) collection
//	_ = sys.RunWorkload("web", "gcc", 1) // bind workloads
//	_ = sys.RunWorkload("db", "omnetpp", 2)
//	sys.StartAll()
//	alloc, _ := sys.Step()               // one 1 Hz estimation tick
//	fmt.Println(alloc.Watts("web"), alloc.Watts("db"))
//
// For direct access to the cooperative-game primitives, see ExactShapley
// and MonteCarloShapley.
package vmpower

import (
	"errors"
	"fmt"
	"io"

	"vmpower/internal/capping"
	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/replay"
	"vmpower/internal/shapley"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// MachineModel selects the simulated physical machine profile.
type MachineModel int

const (
	// Xeon16 is the paper's prototype: a 16-core hyper-threaded Xeon
	// idling at 138 W (Sec. VI-B).
	Xeon16 MachineModel = iota
	// Pentium is the paper's second measurement machine (Sec. III-A).
	Pentium
)

// VMType is a fixed VM configuration from the paper's Table IV catalog.
type VMType int

// The Table IV instance types.
const (
	Small  VMType = iota // VM1: 1 vCPU, 2 GB
	Medium               // VM2: 2 vCPUs, 4 GB
	Large                // VM3: 4 vCPUs, 8 GB
	XLarge               // VM4: 8 vCPUs, 14 GB
)

// VMSpec declares one VM in the system.
type VMSpec struct {
	// Name is the VM's unique name (used to address it in the API).
	Name string
	// Type is its Table IV configuration.
	Type VMType
}

// Config describes a simulated power-accounting deployment.
type Config struct {
	// Machine selects the physical machine profile. Default Xeon16.
	Machine MachineModel
	// VMs lists the deployment's virtual machines.
	VMs []VMSpec
	// Seed drives every random element (collection workloads, meter
	// noise, Monte-Carlo sampling). Runs with equal seeds are identical.
	Seed int64
	// MeterNoise is the wall meter's Gaussian sigma in watts. Negative
	// disables noise; zero uses the evaluation's 0.25 W.
	MeterNoise float64
	// CalibrationTicks is the per-VHC-combination offline sample count.
	// Zero uses the evaluation's 200.
	CalibrationTicks int
	// IdleAttribution adds an idle-power share to each allocation:
	// "none" (default), "equal" or "proportional" (Sec. VIII).
	IdleAttribution string
	// Parallelism is the Shapley engine's worker count: 0 (default)
	// runs serial like the paper's pipeline, negative uses all cores,
	// N >= 2 uses N workers. Allocations are identical for a fixed Seed
	// at any setting — parallelism only changes wall-clock time.
	Parallelism int
}

// System is a simulated deployment with its estimation pipeline.
type System struct {
	host      *hypervisor.Host
	estimator *core.Estimator
	m         meter.Meter
	byName    map[string]vm.ID
	names     []string
	seed      int64
	recorder  *replay.Writer
	capper    *capping.Controller

	injector      *faults.Meter
	injectorArmed bool
}

// Allocation is one tick's per-VM power attribution.
type Allocation struct {
	inner *core.Allocation
	sys   *System
}

// New builds a System from the config.
func New(cfg Config) (*System, error) {
	if len(cfg.VMs) == 0 {
		return nil, errors.New("vmpower: config lists no VMs")
	}
	var prof machine.Profile
	switch cfg.Machine {
	case Xeon16:
		prof = machine.XeonProfile()
	case Pentium:
		prof = machine.PentiumProfile()
	default:
		return nil, fmt.Errorf("vmpower: unknown machine model %d", int(cfg.Machine))
	}
	mach, err := machine.New(prof, machine.Pack)
	if err != nil {
		return nil, err
	}

	catalog := vm.PaperCatalog()
	vms := make([]vm.VM, len(cfg.VMs))
	byName := make(map[string]vm.ID, len(cfg.VMs))
	names := make([]string, len(cfg.VMs))
	for i, spec := range cfg.VMs {
		if spec.Name == "" {
			return nil, fmt.Errorf("vmpower: VM %d has no name", i)
		}
		if _, dup := byName[spec.Name]; dup {
			return nil, fmt.Errorf("vmpower: duplicate VM name %q", spec.Name)
		}
		if spec.Type < Small || spec.Type > XLarge {
			return nil, fmt.Errorf("vmpower: VM %q has unknown type %d", spec.Name, int(spec.Type))
		}
		vms[i] = vm.VM{Name: spec.Name, Type: vm.TypeID(spec.Type)}
		byName[spec.Name] = vm.ID(i)
		names[i] = spec.Name
	}
	set, err := vm.NewSet(catalog, vms)
	if err != nil {
		return nil, err
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		return nil, err
	}

	noise := cfg.MeterNoise
	switch {
	case noise < 0:
		noise = 0
	case noise == 0:
		noise = 0.25
	}
	m, err := meter.NewSim(host.PowerSource(), meter.SimOptions{
		NoiseStdDev: noise,
		Resolution:  0.1,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	var attribution core.IdleAttribution
	switch cfg.IdleAttribution {
	case "", "none":
		attribution = core.IdleNone
	case "equal":
		attribution = core.IdleEqual
	case "proportional":
		attribution = core.IdleProportional
	default:
		return nil, fmt.Errorf("vmpower: unknown idle attribution %q", cfg.IdleAttribution)
	}
	est, err := core.New(host, m, core.Config{
		OfflineTicksPerCombo: cfg.CalibrationTicks,
		Seed:                 cfg.Seed,
		IdleAttribution:      attribution,
		Parallelism:          cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &System{host: host, estimator: est, m: m, byName: byName, names: names, seed: cfg.Seed}, nil
}

// InjectFaults wraps the system's wall meter in the deterministic seeded
// fault injector (package faults): scripted dropout/stuck-at/spike/NaN
// episodes plus independent per-sample faults. The injector stays disarmed
// — transparent — until the first Step, so Calibrate always sees the clean
// meter; from then on the online pipeline rides the chaos through its
// retry, plausibility-gate and holdover machinery, flagging degraded
// ticks on the resulting Allocations.
func (s *System) InjectFaults(opts faults.Options) error {
	if s.injector != nil {
		return errors.New("vmpower: fault injection already active")
	}
	fm, err := faults.Wrap(s.m, opts)
	if err != nil {
		return err
	}
	if err := s.estimator.SetMeter(fm); err != nil {
		return err
	}
	s.injector = fm
	return nil
}

// FaultCounts reports the faults injected so far (zero without
// InjectFaults).
func (s *System) FaultCounts() faults.Counts {
	if s.injector == nil {
		return faults.Counts{}
	}
	return s.injector.Injected()
}

// VMNames returns the configured VM names in declaration order.
func (s *System) VMNames() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

func (s *System) id(name string) (vm.ID, error) {
	id, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("vmpower: unknown VM %q", name)
	}
	return id, nil
}

// Calibrate runs the paper's offline data-collection phase: it measures
// the idle power, sweeps every VHC combination under the synthetic
// workload and fits the v(S,C) approximation. It must be called once
// before Step. All VMs are stopped afterwards.
func (s *System) Calibrate() error {
	return s.estimator.CollectOffline()
}

// Calibrated reports whether Calibrate has completed.
func (s *System) Calibrated() bool { return s.estimator.Trained() }

// SaveCalibration persists the trained model (idle power + mapping
// vectors) as JSON so later processes can skip the offline phase.
func (s *System) SaveCalibration(w io.Writer) error { return s.estimator.SaveModel(w) }

// LoadCalibration restores a calibration written by SaveCalibration in a
// system with the same VM catalog layout; Step works immediately after.
func (s *System) LoadCalibration(r io.Reader) error { return s.estimator.LoadModel(r) }

// IdlePower returns the machine idle power established by Calibrate.
func (s *System) IdlePower() float64 { return s.estimator.IdlePower() }

// Workloads lists the built-in benchmark names accepted by RunWorkload
// (the paper's Table V suite plus the synthetic and floatpoint loads).
func Workloads() []string { return workload.Names() }

// RunWorkload binds a named benchmark to a VM (replacing any previous
// binding) and starts the VM. Benchmarks are deterministic in seed.
func (s *System) RunWorkload(vmName, benchmark string, seed int64) error {
	id, err := s.id(vmName)
	if err != nil {
		return err
	}
	gen, err := workload.ByName(benchmark, seed)
	if err != nil {
		return err
	}
	if err := s.host.Attach(id, gen); err != nil {
		return err
	}
	return s.host.Start(id)
}

// RunWorkloadTrace binds a recorded utilization trace to a VM and starts
// it. The CSV has one row per second with 1–3 columns (cpu[, mem[,
// disk]]) in [0, 1]; loop wraps the trace, otherwise the last sample
// holds. This is the substitution point for production telemetry.
func (s *System) RunWorkloadTrace(vmName, label string, csvData io.Reader, loop bool) error {
	id, err := s.id(vmName)
	if err != nil {
		return err
	}
	tr, err := workload.TraceFromCSV(label, csvData)
	if err != nil {
		return err
	}
	tr.Loop = loop
	if err := s.host.Attach(id, tr); err != nil {
		return err
	}
	return s.host.Start(id)
}

// Stop shuts a VM down (an idle VM draws no power — the paper's Remark 1).
func (s *System) Stop(vmName string) error {
	id, err := s.id(vmName)
	if err != nil {
		return err
	}
	return s.host.Stop(id)
}

// StartAll boots every VM.
func (s *System) StartAll() {
	s.host.SetCoalition(vm.GrandCoalition(s.host.Set().Len()))
}

// StopAll shuts every VM down.
func (s *System) StopAll() {
	s.host.SetCoalition(vm.EmptyCoalition)
}

// Step advances the simulated clock one second and performs one online
// estimation tick: collect VM states, read the meter, disaggregate the
// measured power with the non-deterministic Shapley value.
func (s *System) Step() (*Allocation, error) {
	if s.injector != nil && !s.injectorArmed {
		s.injector.SetArmed(true)
		s.injectorArmed = true
	}
	s.host.Advance(1)
	alloc, err := s.estimator.EstimateTick()
	if s.injector != nil {
		// Keep the injector's episode clock in lockstep with estimation
		// ticks regardless of how many retry samples the tick consumed.
		s.injector.NextTick()
	}
	if err != nil {
		return nil, err
	}
	if s.recorder != nil {
		if err := s.recorder.WriteSnapshot(s.host.Collect(), alloc.MeasuredPower); err != nil {
			return nil, err
		}
	}
	if s.capper != nil {
		if _, err := s.capper.Observe(alloc); err != nil {
			return nil, err
		}
	}
	return &Allocation{inner: alloc, sys: s}, nil
}

// SetPowerCap installs a power cap (watts of attributed dynamic power)
// on a VM — the introduction's per-VM power-capping application. From the
// next Step on, a closed control loop throttles the VM's CPU ceiling
// whenever its Shapley share exceeds the cap and releases it when load
// drops, leaving all other VMs untouched.
func (s *System) SetPowerCap(vmName string, watts float64) error {
	id, err := s.id(vmName)
	if err != nil {
		return err
	}
	if s.capper == nil {
		ctrl, err := capping.New(s.host, capping.Options{})
		if err != nil {
			return err
		}
		s.capper = ctrl
	}
	return s.capper.SetCap(id, watts)
}

// RemovePowerCap removes a VM's power cap and lifts its CPU throttle.
func (s *System) RemovePowerCap(vmName string) error {
	id, err := s.id(vmName)
	if err != nil {
		return err
	}
	if s.capper == nil {
		return nil
	}
	return s.capper.RemoveCap(id)
}

// StartRecording streams each subsequent Step's telemetry — running
// coalition, per-VM states and the measured power — to w as a replay
// trace (JSON lines). Call StopRecording to flush before closing w.
func (s *System) StartRecording(w io.Writer) error {
	if w == nil {
		return errors.New("vmpower: nil recording writer")
	}
	if s.recorder != nil {
		return errors.New("vmpower: recording already active")
	}
	s.recorder = replay.NewWriter(w)
	return nil
}

// StopRecording flushes and detaches the active recorder. It is a no-op
// when no recording is active.
func (s *System) StopRecording() error {
	if s.recorder == nil {
		return nil
	}
	err := s.recorder.Flush()
	s.recorder = nil
	return err
}

// Replay re-estimates a recorded trace with this system's calibrated
// estimator, invoking fn per allocation (false stops early). The trace's
// VM count must match this system's. The simulated clock is not advanced
// — the records carry their own timestamps and states — so replay can
// re-disaggregate historical telemetry under, e.g., a different idle
// attribution policy.
func (s *System) Replay(r io.Reader, fn func(*Allocation) bool) error {
	recs, err := replay.Read(r)
	if err != nil {
		return err
	}
	return replay.Replay(s.estimator, recs, func(inner *core.Allocation) bool {
		if fn == nil {
			return true
		}
		return fn(&Allocation{inner: inner, sys: s})
	})
}

// Run performs n Step calls, invoking fn after each. fn may be nil; a
// false return stops early.
func (s *System) Run(n int, fn func(*Allocation) bool) error {
	for i := 0; i < n; i++ {
		alloc, err := s.Step()
		if err != nil {
			return err
		}
		if fn != nil && !fn(alloc) {
			return nil
		}
	}
	return nil
}

// Tick returns the allocation's simulation timestamp (seconds).
func (a *Allocation) Tick() int { return a.inner.Tick }

// MeasuredPower returns the meter reading (total wall power, W).
func (a *Allocation) MeasuredPower() float64 { return a.inner.MeasuredPower }

// DynamicPower returns the idle-deducted power that was disaggregated.
func (a *Allocation) DynamicPower() float64 { return a.inner.DynamicPower }

// Watts returns the named VM's dynamic power share Φ_i (plus its idle
// share when idle attribution is configured). Unknown names return 0.
func (a *Allocation) Watts(vmName string) float64 {
	id, ok := a.sys.byName[vmName]
	if !ok {
		return 0
	}
	return a.inner.Total(id)
}

// Shares returns every VM's attributed power keyed by name.
func (a *Allocation) Shares() map[string]float64 {
	out := make(map[string]float64, len(a.sys.names))
	for _, name := range a.sys.names {
		out[name] = a.Watts(name)
	}
	return out
}

// Method reports how the Shapley value was computed: "exact" (2^n
// enumeration, n <= 16), "montecarlo", or "fallback" for a degraded tick
// split without the solver.
func (a *Allocation) Method() string { return a.inner.Method }

// Degraded reports whether this tick was served from a held-over meter
// sample or a fallback split instead of a fresh plausible reading.
func (a *Allocation) Degraded() bool { return a.inner.Degraded }

// DegradedReason explains a degraded tick ("" when not degraded).
func (a *Allocation) DegradedReason() string { return a.inner.DegradedReason }

// HoldoverAge returns how many ticks old the meter sample behind this
// allocation is (0 for a fresh reading).
func (a *Allocation) HoldoverAge() int { return a.inner.HoldoverAgeTicks }

// ---- cooperative-game primitives ----

// WorthFunc gives the worth (aggregated power, W) of a player subset
// encoded as a bitmask: bit i set means player i participates.
type WorthFunc func(members uint32) float64

// ExactShapley computes the exact Shapley value (the paper's Eq. 4) of an
// n-player game by full 2^n enumeration (n <= 24; the paper bounds
// practical n at 16).
func ExactShapley(n int, worth WorthFunc) ([]float64, error) {
	if worth == nil {
		return nil, shapley.ErrNilWorth
	}
	return shapley.Exact(n, func(s vm.Coalition) float64 {
		return worth(uint32(s))
	})
}

// MonteCarloShapley estimates the Shapley value by permutation sampling —
// the tractable path for n > 16. The estimate is exactly efficient
// (shares sum to worth(all) − worth(none)). It returns the estimate and
// its per-player standard errors.
func MonteCarloShapley(n int, worth WorthFunc, permutations int, seed int64) (phi, stderr []float64, err error) {
	if worth == nil {
		return nil, nil, shapley.ErrNilWorth
	}
	res, err := shapley.MonteCarlo(n, func(s vm.Coalition) float64 {
		return worth(uint32(s))
	}, shapley.MCOptions{Permutations: permutations, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return res.Phi, res.StdErr, nil
}
