// Package stats provides the error metrics and distribution summaries used
// throughout the paper's evaluation: relative error, means/maxima,
// percentiles and empirical CDFs (Fig. 10c's error distribution, the
// "<5% error for 90% of the time" headline).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations over empty data.
var ErrEmpty = errors.New("stats: empty data")

// RelativeError returns |estimate − actual| / |actual|. When actual is
// zero it returns 0 if the estimate is also zero and +Inf otherwise.
func RelativeError(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-actual) / math.Abs(actual)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Max returns the maximum value.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the minimum value.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// StdDev returns the sample standard deviation (n−1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 values", ErrEmpty)
	}
	mean, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g outside [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// FractionBelow returns the fraction of values strictly below threshold —
// e.g. FractionBelow(errs, 0.05) for the "<5% for 90% of the time" claim.
func FractionBelow(xs []float64, threshold float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs)), nil
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds the ECDF of xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Points returns (x, P(X<=x)) pairs suitable for plotting a CDF curve,
// downsampled to at most maxPoints.
func (e *ECDF) Points(maxPoints int) [][2]float64 {
	n := len(e.sorted)
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	out := make([][2]float64, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := i * (n - 1) / max1(maxPoints-1)
		out = append(out, [2]float64{e.sorted[idx], float64(idx+1) / float64(n)})
	}
	return out
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Summary aggregates an error sample the way the paper reports one.
type Summary struct {
	N          int
	Mean       float64
	Max        float64
	P90        float64
	P95        float64
	FracBelow5 float64 // fraction of samples with error < 5%
}

// Summarize computes a Summary of xs (interpreted as relative errors).
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	maxv, _ := Max(xs)
	p90, _ := Percentile(xs, 90)
	p95, _ := Percentile(xs, 95)
	f5, _ := FractionBelow(xs, 0.05)
	return Summary{N: len(xs), Mean: mean, Max: maxv, P90: p90, P95: p95, FracBelow5: f5}, nil
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f%% max=%.2f%% p90=%.2f%% p95=%.2f%% frac<5%%=%.1f%%",
		s.N, s.Mean*100, s.Max*100, s.P90*100, s.P95*100, s.FracBelow5*100)
}
