package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelativeError(t *testing.T) {
	tests := []struct {
		name             string
		estimate, actual float64
		want             float64
	}{
		{name: "exact", estimate: 10, actual: 10, want: 0},
		{name: "over", estimate: 13, actual: 10, want: 0.3},
		{name: "under", estimate: 7, actual: 10, want: 0.3},
		{name: "negative actual", estimate: -5, actual: -10, want: 0.5},
		{name: "both zero", estimate: 0, actual: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RelativeError(tt.estimate, tt.actual); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("RelativeError = %g, want %g", got, tt.want)
			}
		})
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("nonzero estimate of zero must be +Inf")
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	mean, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2.8) > 1e-12 {
		t.Fatalf("Mean = %g", mean)
	}
	maxV, _ := Max(xs)
	minV, _ := Min(xs)
	if maxV != 5 || minV != 1 {
		t.Fatalf("Max/Min = %g/%g", maxV, minV)
	}
	for _, f := range []func([]float64) (float64, error){Mean, Max, Min, StdDev} {
		if _, err := f(nil); !errors.Is(err, ErrEmpty) {
			t.Fatal("want ErrEmpty")
		}
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(32.0 / 7)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", got, want)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Fatal("want too-few error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("P%g = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("want range error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("want range error")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatal("want ErrEmpty")
	}
	one, err := Percentile([]float64{7}, 50)
	if err != nil || one != 7 {
		t.Fatalf("single-element percentile = %g, %v", one, err)
	}
	// Percentile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	if _, err := Percentile(unsorted, 50); err != nil {
		t.Fatal(err)
	}
	if unsorted[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.01, 0.03, 0.05, 0.08}
	got, err := FractionBelow(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("FractionBelow = %g (strict inequality expected)", got)
	}
	if _, err := FractionBelow(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Fatal("want ErrEmpty")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %g", got)
	}
	if got := e.At(2); got != 0.75 {
		t.Fatalf("At(2) = %g", got)
	}
	if got := e.At(3); got != 1 {
		t.Fatalf("At(3) = %g", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %g", got)
	}
	if got := e.Quantile(1); got != 3 {
		t.Fatalf("Quantile(1) = %g", got)
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %g", got)
	}
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("want ErrEmpty")
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[9][0] != 99 {
		t.Fatalf("endpoints = %v, %v", pts[0], pts[9])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF points must be monotone")
		}
	}
	all := e.Points(0)
	if len(all) != 100 {
		t.Fatalf("Points(0) = %d", len(all))
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{0.01, 0.02, 0.03, 0.10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-0.04) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean)
	}
	if s.Max != 0.10 {
		t.Fatalf("Max = %g", s.Max)
	}
	if s.FracBelow5 != 0.75 {
		t.Fatalf("FracBelow5 = %g", s.FracBelow5)
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("want ErrEmpty")
	}
}

// Property: the ECDF At() is a valid CDF — monotone, 0 below min, 1 at max.
func TestECDFProperty(t *testing.T) {
	f := func(raw [9]float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if e.At(math.Nextafter(sorted[0], math.Inf(-1))) != 0 {
			return false
		}
		if e.At(sorted[len(sorted)-1]) != 1 {
			return false
		}
		prev := -1.0
		for _, x := range sorted {
			cur := e.At(x)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile(0)/Percentile(100) bracket every sample.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw [7]float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, err1 := Percentile(xs, 0)
		hi, err2 := Percentile(xs, 100)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, x := range xs {
			if x < lo || x > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
