// Package trace records experiment time series and renders them as
// aligned text tables or CSV, the formats cmd/experiments uses to
// regenerate the paper's figures as data.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one named time series sampled at 1 Hz ticks.
type Series struct {
	Name   string
	Values []float64
}

// Append adds a sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Table is a set of equally indexed series (columns) — one figure's data.
type Table struct {
	// TickLabel names the index column (default "tick").
	TickLabel string
	Columns   []*Series
}

// NewTable creates a table with the given column names.
func NewTable(names ...string) *Table {
	t := &Table{TickLabel: "tick", Columns: make([]*Series, len(names))}
	for i, n := range names {
		t.Columns[i] = &Series{Name: n}
	}
	return t
}

// AppendRow adds one sample to every column. The value count must match
// the column count.
func (t *Table) AppendRow(values ...float64) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("trace: row has %d values for %d columns", len(values), len(t.Columns))
	}
	for i, v := range values {
		t.Columns[i].Append(v)
	}
	return nil
}

// Rows returns the number of complete rows (minimum column length).
func (t *Table) Rows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	n := t.Columns[0].Len()
	for _, c := range t.Columns[1:] {
		if c.Len() < n {
			n = c.Len()
		}
	}
	return n
}

// Column returns the series with the given name.
func (t *Table) Column(name string) (*Series, error) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("trace: no column %q", name)
}

// WriteCSV writes the table with a header row and a leading tick column.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.Columns)+1)
	label := t.TickLabel
	if label == "" {
		label = "tick"
	}
	header = append(header, label)
	for _, c := range t.Columns {
		header = append(header, c.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	rows := t.Rows()
	rec := make([]string, len(header))
	for i := 0; i < rows; i++ {
		rec[0] = strconv.Itoa(i)
		for j, c := range t.Columns {
			rec[j+1] = strconv.FormatFloat(c.Values[i], 'g', 8, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatText renders the table as an aligned text block, optionally
// downsampled to at most maxRows rows (0 = all).
func (t *Table) FormatText(maxRows int) string {
	rows := t.Rows()
	step := 1
	if maxRows > 0 && rows > maxRows {
		step = (rows + maxRows - 1) / maxRows
	}
	var sb strings.Builder
	label := t.TickLabel
	if label == "" {
		label = "tick"
	}
	fmt.Fprintf(&sb, "%8s", label)
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %14s", c.Name)
	}
	sb.WriteByte('\n')
	for i := 0; i < rows; i += step {
		fmt.Fprintf(&sb, "%8d", i)
		for _, c := range t.Columns {
			fmt.Fprintf(&sb, " %14.4f", c.Values[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ErrShape is returned when series lengths are inconsistent.
var ErrShape = errors.New("trace: inconsistent series lengths")

// FromSeries builds a table from pre-built series, which must share a
// common length.
func FromSeries(series ...*Series) (*Table, error) {
	if len(series) == 0 {
		return NewTable(), nil
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return nil, fmt.Errorf("%w: %q has %d values, want %d", ErrShape, s.Name, s.Len(), n)
		}
	}
	return &Table{TickLabel: "tick", Columns: series}, nil
}
