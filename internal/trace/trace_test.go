package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestTableAppendAndRows(t *testing.T) {
	tbl := NewTable("a", "b")
	if tbl.Rows() != 0 {
		t.Fatalf("fresh Rows = %d", tbl.Rows())
	}
	if err := tbl.AppendRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(3, 4); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if err := tbl.AppendRow(1); err == nil {
		t.Fatal("want arity error")
	}
	col, err := tbl.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 2 || col.Values[1] != 4 {
		t.Fatalf("column b = %v", col.Values)
	}
	if _, err := tbl.Column("zz"); err == nil {
		t.Fatal("want unknown-column error")
	}
}

func TestEmptyTableRows(t *testing.T) {
	tbl := NewTable()
	if tbl.Rows() != 0 {
		t.Fatal("no columns means no rows")
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := NewTable("power", "model")
	if err := tbl.AppendRow(151.5, 150.9); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(152.0, 151.1); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "tick,power,model\n0,151.5,150.9\n1,152,151.1\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestWriteCSVCustomLabel(t *testing.T) {
	tbl := NewTable("x")
	tbl.TickLabel = "second"
	if err := tbl.AppendRow(1); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "second,x\n") {
		t.Fatalf("CSV header = %q", sb.String())
	}
}

func TestFormatText(t *testing.T) {
	tbl := NewTable("v")
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	full := tbl.FormatText(0)
	if lines := strings.Count(full, "\n"); lines != 101 { // header + 100 rows
		t.Fatalf("full text has %d lines", lines)
	}
	down := tbl.FormatText(10)
	if lines := strings.Count(down, "\n"); lines > 12 {
		t.Fatalf("downsampled text has %d lines", lines)
	}
	if !strings.Contains(down, "tick") {
		t.Fatal("header missing")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestFromSeries(t *testing.T) {
	a := &Series{Name: "a", Values: []float64{1, 2}}
	b := &Series{Name: "b", Values: []float64{3, 4}}
	tbl, err := FromSeries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	short := &Series{Name: "c", Values: []float64{5}}
	if _, err := FromSeries(a, short); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	empty, err := FromSeries()
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("FromSeries() = %v, %v", empty, err)
	}
}
