// Package baseline implements the VM power estimation policies the paper
// compares against (Secs. III, IV, VII): the per-type linear power model
// trained from marginal contributions (as in Joulemeter-style prior work),
// the raw marginal-contribution rule, and resource-usage-proportional
// rescaling of the measured power.
package baseline

import (
	"errors"
	"fmt"

	"vmpower/internal/hypervisor"
	"vmpower/internal/linalg"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// PowerModel is the per-type linear VM power model p = a·u of the paper's
// Table IV: one CPU coefficient per VM type, trained with the VM alone on
// the machine (its marginal contribution), no intercept (an idle VM draws
// nothing — the Dummy-style assumption the baseline itself makes).
type PowerModel struct {
	// CoefByType maps each VM type to its watts-per-unit-CPU coefficient.
	CoefByType map[vm.TypeID]float64
}

// ErrUnknownType is returned when estimating a VM whose type was not trained.
var ErrUnknownType = errors.New("baseline: type not in power model")

// EstimateVM returns the model's power estimate for one VM.
func (m *PowerModel) EstimateVM(t vm.TypeID, s vm.State) (float64, error) {
	a, ok := m.CoefByType[t]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	return a * s[vm.CPU], nil
}

// Estimate returns the per-VM model estimates for every member of mask
// (non-members get 0), indexed by VM ID.
func (m *PowerModel) Estimate(set *vm.Set, mask vm.Coalition, states []vm.State) ([]float64, error) {
	if len(states) != set.Len() {
		return nil, fmt.Errorf("baseline: %d states for %d VMs", len(states), set.Len())
	}
	out := make([]float64, set.Len())
	for _, id := range mask.Members() {
		v, err := set.VM(id)
		if err != nil {
			return nil, err
		}
		p, err := m.EstimateVM(v.Type, states[int(id)])
		if err != nil {
			return nil, err
		}
		out[int(id)] = p
	}
	return out, nil
}

// AggregateEstimate returns Σ per-VM estimates — the quantity Fig. 11
// shows violating macro-level accuracy.
func (m *PowerModel) AggregateEstimate(set *vm.Set, mask vm.Coalition, states []vm.State) (float64, error) {
	per, err := m.Estimate(set, mask, states)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range per {
		sum += p
	}
	return sum, nil
}

// TrainOptions configures power-model training.
type TrainOptions struct {
	// Ticks is the number of 1 Hz samples per type (default 120).
	Ticks int
	// Seed seeds the synthetic training workload.
	Seed int64
}

// Train builds the per-type power model exactly as the prior work the
// paper replicates (Sec. III-A): each VM type runs alone on the host under
// the synthetic random-CPU benchmark, and the marginal machine power
// (idle deducted) is regressed on the VM's CPU utilization without
// intercept. The host's VM set must contain at least one VM of every
// catalog type. The host's running set and clock are modified.
func Train(host *hypervisor.Host, opts TrainOptions) (*PowerModel, error) {
	ticks := opts.Ticks
	if ticks <= 0 {
		ticks = 120
	}
	set := host.Set()
	// Pick one representative VM per type.
	repr := make(map[vm.TypeID]vm.ID, len(set.Catalog()))
	for i := 0; i < set.Len(); i++ {
		v, err := set.VM(vm.ID(i))
		if err != nil {
			return nil, err
		}
		if _, ok := repr[v.Type]; !ok {
			repr[v.Type] = v.ID
		}
	}
	model := &PowerModel{CoefByType: make(map[vm.TypeID]float64, len(repr))}
	for t := vm.TypeID(0); int(t) < len(set.Catalog()); t++ {
		id, ok := repr[t]
		if !ok {
			return nil, fmt.Errorf("baseline: no VM of type %d in the host set", t)
		}
		coef, err := trainOne(host, id, ticks, opts.Seed+int64(t)*7919)
		if err != nil {
			return nil, fmt.Errorf("baseline: training type %d: %w", t, err)
		}
		model.CoefByType[t] = coef
	}
	host.SetCoalition(vm.EmptyCoalition)
	return model, nil
}

func trainOne(host *hypervisor.Host, id vm.ID, ticks int, seed int64) (float64, error) {
	prev := host.Running()
	defer host.SetCoalition(prev)
	if err := host.Attach(id, workload.Synthetic{Seed: seed}); err != nil {
		return 0, err
	}
	host.SetCoalition(vm.CoalitionOf(id))
	var sumUP, sumUU float64
	for i := 0; i < ticks; i++ {
		host.Advance(1)
		snap := host.Collect()
		u := snap.States[int(id)][vm.CPU]
		p, err := host.DynamicPowerFor(snap.Coalition, snap.States)
		if err != nil {
			return 0, err
		}
		sumUP += u * p
		sumUU += u * u
	}
	if sumUU == 0 {
		return 0, errors.New("baseline: training workload never exercised the CPU")
	}
	return sumUP / sumUU, nil
}

// MarginalAllocation allocates power by activation order: VM i's share is
// v(S_i ∪ {i}) − v(S_i) where S_i is the set activated before it. This is
// the "ground truth" rule prior work trains against; Table III shows it is
// efficient but unfair (order-dependent).
func MarginalAllocation(order []vm.ID, worth func(vm.Coalition) (float64, error)) ([]float64, error) {
	if worth == nil {
		return nil, errors.New("baseline: nil worth function")
	}
	alloc := make([]float64, len(order))
	prefix := vm.EmptyCoalition
	prev, err := worth(prefix)
	if err != nil {
		return nil, err
	}
	seen := make(map[vm.ID]bool, len(order))
	for pos, id := range order {
		if seen[id] {
			return nil, fmt.Errorf("baseline: duplicate VM %d in activation order", id)
		}
		seen[id] = true
		prefix = prefix.With(id)
		cur, err := worth(prefix)
		if err != nil {
			return nil, err
		}
		alloc[pos] = cur - prev
		prev = cur
	}
	return alloc, nil
}

// Proportional rescales the measured aggregated power across the members
// of mask in proportion to their power-model estimates — the paper's
// "resource usage-based allocation", which is efficient by construction
// but inherits the power model's proportions (Fig. 12). Weights that sum
// to zero (all members idle) yield an all-zero allocation.
func Proportional(set *vm.Set, mask vm.Coalition, states []vm.State, model *PowerModel, measuredPower float64) ([]float64, error) {
	if model == nil {
		return nil, errors.New("baseline: nil power model")
	}
	weights, err := model.Estimate(set, mask, states)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]float64, set.Len())
	if sum == 0 {
		return out, nil
	}
	for i, w := range weights {
		out[i] = measuredPower * w / sum
	}
	return out, nil
}

// FitWholeMachine trains the integrated whole-machine model of Fig. 3:
// P = a·(Σ CPU) + idle, regressing measured total power on the summed CPU
// utilization with an intercept. It returns (a, idle).
func FitWholeMachine(totalCPU, power []float64) (a, idle float64, err error) {
	if len(totalCPU) != len(power) {
		return 0, 0, fmt.Errorf("baseline: %d cpu samples vs %d power samples", len(totalCPU), len(power))
	}
	if len(totalCPU) < 2 {
		return 0, 0, errors.New("baseline: need >= 2 samples")
	}
	rows := make([][]float64, len(totalCPU))
	for i, u := range totalCPU {
		rows[i] = []float64{u, 1}
	}
	mat, err := linalg.MatrixFromRows(rows)
	if err != nil {
		return 0, 0, err
	}
	x, err := linalg.LeastSquares(mat, linalg.Vector(power), 1e-9)
	if err != nil {
		return 0, 0, fmt.Errorf("baseline: whole-machine fit: %w", err)
	}
	return x[0], x[1], nil
}
