package baseline

import (
	"errors"
	"math"
	"testing"

	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/vm"
)

func testHost(t *testing.T) *hypervisor.Host {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "VM1a", Type: 0},
		{Name: "VM1b", Type: 0},
		{Name: "VM2", Type: 1},
		{Name: "VM3", Type: 2},
		{Name: "VM4", Type: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	return host
}

func TestTrainProducesSublinearCoefficients(t *testing.T) {
	host := testHost(t)
	model, err := Train(host, TrainOptions{Ticks: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.CoefByType) != 4 {
		t.Fatalf("trained %d types", len(model.CoefByType))
	}
	// The 1-vCPU coefficient reflects the lone-thread marginal (~13 W;
	// regression over varying utilization lands slightly above because
	// of the uncore term).
	if a := model.CoefByType[0]; a < 12 || a > 16 {
		t.Fatalf("VM1 coefficient = %g, want ~13-16", a)
	}
	// Coefficients grow with vCPUs but sublinearly (Table IV's shape).
	prev := 0.0
	for typ := vm.TypeID(0); typ < 4; typ++ {
		a := model.CoefByType[typ]
		if a <= prev {
			t.Fatalf("coefficient for type %d (%g) not increasing", typ, a)
		}
		prev = a
	}
	perVCPU1 := model.CoefByType[0] / 1
	perVCPU8 := model.CoefByType[3] / 8
	if perVCPU8 >= perVCPU1 {
		t.Fatalf("per-vCPU power must shrink: %g vs %g", perVCPU8, perVCPU1)
	}
	// Training must leave the host stopped.
	if !host.Running().IsEmpty() {
		t.Fatal("Train must stop all VMs")
	}
}

func TestTrainDefaults(t *testing.T) {
	host := testHost(t)
	model, err := Train(host, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.CoefByType) != 4 {
		t.Fatal("default training incomplete")
	}
}

func TestEstimate(t *testing.T) {
	host := testHost(t)
	model := &PowerModel{CoefByType: map[vm.TypeID]float64{0: 13, 1: 22, 2: 50, 3: 97}}
	set := host.Set()
	states := []vm.State{
		{vm.CPU: 1}, {vm.CPU: 0.5}, {vm.CPU: 0.5}, {vm.CPU: 0}, {vm.CPU: 0.25},
	}
	per, err := model.Estimate(set, vm.CoalitionOf(0, 1, 4), states)
	if err != nil {
		t.Fatal(err)
	}
	if per[0] != 13 || per[1] != 6.5 || per[4] != 97*0.25 {
		t.Fatalf("Estimate = %v", per)
	}
	if per[2] != 0 || per[3] != 0 {
		t.Fatal("non-members must get 0")
	}
	agg, err := model.AggregateEstimate(set, vm.CoalitionOf(0, 1, 4), states)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg-(13+6.5+24.25)) > 1e-12 {
		t.Fatalf("AggregateEstimate = %g", agg)
	}
	if _, err := model.Estimate(set, vm.CoalitionOf(0), states[:1]); err == nil {
		t.Fatal("want state-count error")
	}
}

func TestEstimateUnknownType(t *testing.T) {
	host := testHost(t)
	model := &PowerModel{CoefByType: map[vm.TypeID]float64{0: 13}}
	states := make([]vm.State, host.Set().Len())
	states[2][vm.CPU] = 1
	if _, err := model.Estimate(host.Set(), vm.CoalitionOf(2), states); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}

func TestMarginalAllocation(t *testing.T) {
	// Table III's worth function: v({i}) = 13, v({0,1}) = 20.
	worth := func(s vm.Coalition) (float64, error) {
		switch s.Size() {
		case 0:
			return 0, nil
		case 1:
			return 13, nil
		default:
			return 20, nil
		}
	}
	alloc, err := MarginalAllocation([]vm.ID{0, 1}, worth)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 13 || alloc[1] != 7 {
		t.Fatalf("MarginalAllocation = %v, want [13 7]", alloc)
	}
	// Swapped order swaps the allocation — the unfairness of Table III.
	alloc, err = MarginalAllocation([]vm.ID{1, 0}, worth)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 13 || alloc[1] != 7 {
		t.Fatalf("swapped MarginalAllocation = %v", alloc)
	}
	if _, err := MarginalAllocation([]vm.ID{0, 0}, worth); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := MarginalAllocation(nil, nil); err == nil {
		t.Fatal("want nil worth error")
	}
}

func TestProportional(t *testing.T) {
	host := testHost(t)
	set := host.Set()
	model := &PowerModel{CoefByType: map[vm.TypeID]float64{0: 10, 1: 20, 2: 40, 3: 80}}
	states := []vm.State{
		{vm.CPU: 1}, {vm.CPU: 1}, {}, {}, {},
	}
	got, err := Proportional(set, vm.CoalitionOf(0, 1), states, model, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Equal weights → equal split of the measured 15 W.
	if math.Abs(got[0]-7.5) > 1e-12 || math.Abs(got[1]-7.5) > 1e-12 {
		t.Fatalf("Proportional = %v", got)
	}
	var sum float64
	for _, p := range got {
		sum += p
	}
	if math.Abs(sum-15) > 1e-12 {
		t.Fatalf("Proportional sum = %g, want 15 (efficiency)", sum)
	}
	// All-idle members: zero weights yield a zero allocation.
	idle := make([]vm.State, set.Len())
	got, err = Proportional(set, vm.CoalitionOf(0, 1), idle, model, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p != 0 {
			t.Fatalf("idle Proportional = %v", got)
		}
	}
	if _, err := Proportional(set, vm.CoalitionOf(0), states, nil, 15); err == nil {
		t.Fatal("want nil-model error")
	}
}

func TestFitWholeMachine(t *testing.T) {
	// Exact line: p = 9.49u + 138.
	var cpu, power []float64
	for i := 0; i <= 20; i++ {
		u := float64(i) / 10
		cpu = append(cpu, u)
		power = append(power, 9.49*u+138)
	}
	a, idle, err := FitWholeMachine(cpu, power)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-9.49) > 1e-9 || math.Abs(idle-138) > 1e-9 {
		t.Fatalf("fit = (%g, %g), want (9.49, 138)", a, idle)
	}
	if _, _, err := FitWholeMachine([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, _, err := FitWholeMachine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want too-few-samples error")
	}
}
