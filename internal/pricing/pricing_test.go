package pricing

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's Table I electricity figures, USD/yr.
	wantUSA := []float64{100.74, 105.15, 100.74, 100.74}
	wantDE := []float64{193.52, 201.94, 193.52, 193.52}
	for i, row := range rows {
		if math.Abs(row.ElectricityUSA-wantUSA[i]) > 0.25 {
			t.Fatalf("%s USA = %.2f, want %.2f", row.Family.Name, row.ElectricityUSA, wantUSA[i])
		}
		if math.Abs(row.ElectricityDE-wantDE[i]) > 0.5 {
			t.Fatalf("%s DE = %.2f, want %.2f", row.Family.Name, row.ElectricityDE, wantDE[i])
		}
	}
	// The motivating observation: US electricity/yr is comparable to the
	// amortised hardware cost (within ~2x either way).
	gp := rows[0]
	ratio := gp.ElectricityUSA / gp.HardwarePerYear
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("electricity/hardware ratio = %g", ratio)
	}
}

func TestElectricityCostPerYear(t *testing.T) {
	// 1 kW continuously at $0.10/kWh: 8760 kWh × 0.10 = $876.
	if got := ElectricityCostPerYear(1000, 0.10); math.Abs(got-876) > 1e-9 {
		t.Fatalf("cost = %g", got)
	}
	if got := ElectricityCostPerYear(0, 0.10); got != 0 {
		t.Fatalf("zero power cost = %g", got)
	}
}

func TestEnergyKWh(t *testing.T) {
	// 3600 samples of 1000 W at 1 s = 1 kWh.
	series := make([]float64, 3600)
	for i := range series {
		series[i] = 1000
	}
	kwh, err := EnergyKWh(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kwh-1) > 1e-12 {
		t.Fatalf("EnergyKWh = %g, want 1", kwh)
	}
	if _, err := EnergyKWh(series, 0); err == nil {
		t.Fatal("want period error")
	}
	if _, err := EnergyKWh([]float64{-1}, 1); err == nil {
		t.Fatal("want negative-power error")
	}
	empty, err := EnergyKWh(nil, 1)
	if err != nil || empty != 0 {
		t.Fatalf("empty = %g, %v", empty, err)
	}
}

func TestBillEnergy(t *testing.T) {
	series := make([]float64, 3600)
	for i := range series {
		series[i] = 1000
	}
	bill, err := BillEnergy("tenant-a", series, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if bill.Tenant != "tenant-a" {
		t.Fatalf("Tenant = %q", bill.Tenant)
	}
	if math.Abs(bill.AmountUSD-0.2) > 1e-12 {
		t.Fatalf("Amount = %g", bill.AmountUSD)
	}
	if !strings.Contains(bill.String(), "tenant-a") {
		t.Fatalf("String = %q", bill.String())
	}
	if _, err := BillEnergy("x", nil, 0.2); !errors.Is(err, ErrNoUsage) {
		t.Fatalf("want ErrNoUsage, got %v", err)
	}
	if _, err := BillEnergy("x", series, -1); err == nil {
		t.Fatal("want negative-price error")
	}
}

func TestPaperFamilies(t *testing.T) {
	fams := PaperFamilies()
	if len(fams) != 4 {
		t.Fatalf("families = %d", len(fams))
	}
	for _, f := range fams {
		if f.CPUDesignPowerW <= 0 || f.CPUCost <= 0 {
			t.Fatalf("family %s has invalid figures", f.Name)
		}
	}
}
