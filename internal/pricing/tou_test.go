package pricing

import (
	"errors"
	"math"
	"testing"
)

func TestTOUValidate(t *testing.T) {
	if err := USSummerTOU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TOU{
		{PeakPricePerKWh: -1},
		{OffPeakPricePerKWh: -1},
		{PeakStartHour: -1},
		{PeakStartHour: 24},
		{PeakEndHour: 25},
	}
	for i, tt := range bad {
		if err := tt.Validate(); err == nil {
			t.Fatalf("tariff %d: want validation error", i)
		}
	}
}

func TestTOUPriceAt(t *testing.T) {
	tariff := TOU{PeakPricePerKWh: 0.2, OffPeakPricePerKWh: 0.1, PeakStartHour: 16, PeakEndHour: 21}
	tests := []struct {
		name   string
		second int
		want   float64
	}{
		{name: "midnight", second: 0, want: 0.1},
		{name: "peak start", second: 16 * 3600, want: 0.2},
		{name: "mid peak", second: 18*3600 + 1800, want: 0.2},
		{name: "peak end", second: 21 * 3600, want: 0.1},
		{name: "next day peak", second: 24*3600 + 17*3600, want: 0.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tariff.PriceAt(tt.second); got != tt.want {
				t.Fatalf("PriceAt(%d) = %g, want %g", tt.second, got, tt.want)
			}
		})
	}
}

func TestTOUWrapsMidnight(t *testing.T) {
	tariff := TOU{PeakPricePerKWh: 0.3, OffPeakPricePerKWh: 0.1, PeakStartHour: 22, PeakEndHour: 2}
	if got := tariff.PriceAt(23 * 3600); got != 0.3 {
		t.Fatalf("23h = %g", got)
	}
	if got := tariff.PriceAt(1 * 3600); got != 0.3 {
		t.Fatalf("1h = %g", got)
	}
	if got := tariff.PriceAt(3 * 3600); got != 0.1 {
		t.Fatalf("3h = %g", got)
	}
	empty := TOU{PeakPricePerKWh: 0.3, OffPeakPricePerKWh: 0.1, PeakStartHour: 5, PeakEndHour: 5}
	if got := empty.PriceAt(5 * 3600); got != 0.1 {
		t.Fatalf("empty window = %g", got)
	}
}

func TestBillEnergyTOU(t *testing.T) {
	tariff := TOU{PeakPricePerKWh: 0.2, OffPeakPricePerKWh: 0.1, PeakStartHour: 1, PeakEndHour: 2}
	// Two hours of 1 kW starting at midnight: hour 0 off-peak
	// (1 kWh × 0.1), hour 1 peak (1 kWh × 0.2).
	series := make([]float64, 7200)
	for i := range series {
		series[i] = 1000
	}
	bill, peakShare, err := BillEnergyTOU("t", series, tariff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bill.EnergyKWh-2) > 1e-9 {
		t.Fatalf("EnergyKWh = %g", bill.EnergyKWh)
	}
	if math.Abs(bill.AmountUSD-0.3) > 1e-9 {
		t.Fatalf("Amount = %g, want 0.3", bill.AmountUSD)
	}
	if math.Abs(peakShare-0.5) > 1e-9 {
		t.Fatalf("peak share = %g", peakShare)
	}
	// Same energy started at noon (all off-peak) is cheaper.
	noon, _, err := BillEnergyTOU("t", series, tariff, 12*3600)
	if err != nil {
		t.Fatal(err)
	}
	if noon.AmountUSD >= bill.AmountUSD {
		t.Fatalf("off-peak bill %g should beat %g", noon.AmountUSD, bill.AmountUSD)
	}
}

func TestBillEnergyTOUErrors(t *testing.T) {
	if _, _, err := BillEnergyTOU("t", nil, USSummerTOU(), 0); !errors.Is(err, ErrNoUsage) {
		t.Fatalf("want ErrNoUsage, got %v", err)
	}
	if _, _, err := BillEnergyTOU("t", []float64{-1}, USSummerTOU(), 0); err == nil {
		t.Fatal("want negative-power error")
	}
	if _, _, err := BillEnergyTOU("t", []float64{1}, TOU{PeakPricePerKWh: -1}, 0); err == nil {
		t.Fatal("want tariff error")
	}
}
