// Package pricing reproduces the paper's economic motivation: the Table I
// comparison of electricity versus IT-hardware cost for a mid-level AWS
// VM, and the per-tenant energy billing of the Fig. 1 scenario (two users
// renting identical VMs but consuming different energy).
package pricing

import (
	"errors"
	"fmt"
)

// Electricity prices used by the paper (2015 retail, USD per kWh).
const (
	// USPricePerKWh is the 2015 average US retail electricity price.
	USPricePerKWh = 0.10409
	// GermanyPricePerKWh is the 2015 German retail electricity price.
	GermanyPricePerKWh = 0.19996
)

// HoursPerYear is the 24/7 datacenter duty cycle.
const HoursPerYear = 8760

// HardwareCycleYears is the IT-hardware update cycle the paper assumes.
const HardwareCycleYears = 5

// InstanceFamily is one row of Table I: a mid-level AWS instance family,
// its supporting CPU's designed power and its IT hardware costs.
type InstanceFamily struct {
	Name string
	// CPUDesignPowerW is the designed (TDP) power of the backing Xeon.
	CPUDesignPowerW float64
	// CPUCost, RAMCost and SSDCost are the hardware purchase costs (USD).
	CPUCost float64
	RAMCost float64
	SSDCost float64
}

// PaperFamilies returns Table I's four instance families with the paper's
// hardware cost figures. Design powers are chosen so the electricity
// columns reproduce: 110.5 W × 8760 h × $0.10409/kWh ≈ $100.74/yr.
func PaperFamilies() []InstanceFamily {
	return []InstanceFamily{
		{Name: "General Purpose", CPUDesignPowerW: 110.5, CPUCost: 310.4, RAMCost: 80, SSDCost: 26},
		{Name: "Computed Optimized", CPUDesignPowerW: 115.33, CPUCost: 349, RAMCost: 40, SSDCost: 26},
		{Name: "Memory Optimized", CPUDesignPowerW: 110.5, CPUCost: 310.4, RAMCost: 160, SSDCost: 26},
		{Name: "Storage Optimized", CPUDesignPowerW: 110.5, CPUCost: 310.4, RAMCost: 160, SSDCost: 256},
	}
}

// ElectricityCostPerYear returns the yearly electricity cost (USD) of a
// load drawing powerW watts continuously at the given price per kWh.
func ElectricityCostPerYear(powerW, pricePerKWh float64) float64 {
	return powerW / 1000 * HoursPerYear * pricePerKWh
}

// TableIRow is one computed row of Table I.
type TableIRow struct {
	Family          InstanceFamily
	ElectricityUSA  float64
	ElectricityDE   float64
	HardwarePerYear float64 // total hardware cost amortised over the cycle
}

// TableI computes the paper's Table I from the cost model.
func TableI() []TableIRow {
	fams := PaperFamilies()
	rows := make([]TableIRow, len(fams))
	for i, f := range fams {
		rows[i] = TableIRow{
			Family:          f,
			ElectricityUSA:  ElectricityCostPerYear(f.CPUDesignPowerW, USPricePerKWh),
			ElectricityDE:   ElectricityCostPerYear(f.CPUDesignPowerW, GermanyPricePerKWh),
			HardwarePerYear: (f.CPUCost + f.RAMCost + f.SSDCost) / HardwareCycleYears,
		}
	}
	return rows
}

// EnergyKWh integrates a power series (watts, one sample per periodSec
// seconds) into kilowatt-hours.
func EnergyKWh(powerW []float64, periodSec float64) (float64, error) {
	if periodSec <= 0 {
		return 0, fmt.Errorf("pricing: non-positive sample period %g", periodSec)
	}
	var joules float64
	for _, p := range powerW {
		if p < 0 {
			return 0, fmt.Errorf("pricing: negative power sample %g", p)
		}
		joules += p * periodSec
	}
	return joules / 3.6e6, nil
}

// Bill is a tenant's energy charge.
type Bill struct {
	Tenant      string
	EnergyKWh   float64
	PricePerKWh float64
	AmountUSD   float64
}

// ErrNoUsage is returned when billing an empty series.
var ErrNoUsage = errors.New("pricing: empty power series")

// BillEnergy prices a tenant's power series at 1 Hz sampling.
func BillEnergy(tenant string, powerW []float64, pricePerKWh float64) (Bill, error) {
	if len(powerW) == 0 {
		return Bill{}, ErrNoUsage
	}
	if pricePerKWh < 0 {
		return Bill{}, fmt.Errorf("pricing: negative price %g", pricePerKWh)
	}
	kwh, err := EnergyKWh(powerW, 1)
	if err != nil {
		return Bill{}, err
	}
	return Bill{
		Tenant:      tenant,
		EnergyKWh:   kwh,
		PricePerKWh: pricePerKWh,
		AmountUSD:   kwh * pricePerKWh,
	}, nil
}

// String renders the bill.
func (b Bill) String() string {
	return fmt.Sprintf("%s: %.6f kWh × $%.4f/kWh = $%.6f", b.Tenant, b.EnergyKWh, b.PricePerKWh, b.AmountUSD)
}
