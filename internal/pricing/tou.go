package pricing

import (
	"errors"
	"fmt"
)

// TOU is a time-of-use electricity tariff: a peak price during the daily
// [PeakStartHour, PeakEndHour) window and an off-peak price otherwise.
// Datacenter operators face such tariffs, and per-VM power accounting is
// what makes it possible to pass them through to tenants: the same kWh
// costs more when a workload burns it at 2 pm than at 2 am.
type TOU struct {
	// PeakPricePerKWh and OffPeakPricePerKWh are USD per kWh.
	PeakPricePerKWh    float64
	OffPeakPricePerKWh float64
	// PeakStartHour and PeakEndHour bound the daily peak window in
	// [0, 24); the window may wrap past midnight (start > end).
	PeakStartHour int
	PeakEndHour   int
}

// Validate checks the tariff.
func (t TOU) Validate() error {
	if t.PeakPricePerKWh < 0 || t.OffPeakPricePerKWh < 0 {
		return errors.New("pricing: negative tariff")
	}
	if t.PeakStartHour < 0 || t.PeakStartHour > 23 || t.PeakEndHour < 0 || t.PeakEndHour > 24 {
		return fmt.Errorf("pricing: peak window [%d, %d) out of range", t.PeakStartHour, t.PeakEndHour)
	}
	return nil
}

// USSummerTOU is a representative 2015 US commercial summer tariff:
// 16–21 h peak at roughly twice the off-peak rate.
func USSummerTOU() TOU {
	return TOU{
		PeakPricePerKWh:    0.182,
		OffPeakPricePerKWh: 0.089,
		PeakStartHour:      16,
		PeakEndHour:        21,
	}
}

// inPeak reports whether the hour-of-day falls in the peak window,
// handling windows that wrap midnight.
func (t TOU) inPeak(hour int) bool {
	if t.PeakStartHour == t.PeakEndHour {
		return false // empty window
	}
	if t.PeakStartHour < t.PeakEndHour {
		return hour >= t.PeakStartHour && hour < t.PeakEndHour
	}
	return hour >= t.PeakStartHour || hour < t.PeakEndHour
}

// PriceAt returns the tariff at the given second-of-day offset.
func (t TOU) PriceAt(second int) float64 {
	hour := second / 3600 % 24
	if hour < 0 {
		hour += 24
	}
	if t.inPeak(hour) {
		return t.PeakPricePerKWh
	}
	return t.OffPeakPricePerKWh
}

// BillEnergyTOU prices a 1 Hz power series under the tariff, with the
// first sample taken at startSecond seconds past midnight. It returns the
// bill plus the peak-window share of the energy.
func BillEnergyTOU(tenant string, powerW []float64, tariff TOU, startSecond int) (Bill, float64, error) {
	if len(powerW) == 0 {
		return Bill{}, 0, ErrNoUsage
	}
	if err := tariff.Validate(); err != nil {
		return Bill{}, 0, err
	}
	var amount, totalKWh, peakKWh float64
	for i, p := range powerW {
		if p < 0 {
			return Bill{}, 0, fmt.Errorf("pricing: negative power sample %g", p)
		}
		kwh := p / 3.6e6 // one watt-second in kWh
		price := tariff.PriceAt(startSecond + i)
		amount += kwh * price
		totalKWh += kwh
		if price == tariff.PeakPricePerKWh && tariff.inPeak((startSecond+i)/3600%24) {
			peakKWh += kwh
		}
	}
	bill := Bill{
		Tenant:      tenant,
		EnergyKWh:   totalKWh,
		PricePerKWh: amount / totalKWh,
		AmountUSD:   amount,
	}
	peakShare := 0.0
	if totalKWh > 0 {
		peakShare = peakKWh / totalKWh
	}
	return bill, peakShare, nil
}
