package serial

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vmpower/internal/meter"
	"vmpower/internal/obs"
)

// counterValue pulls a counter's current value back out of the registry.
func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return float64(s.Value)
		}
	}
	t.Fatalf("series %s not found in snapshot", name)
	return 0
}

func TestInstrumentCountsFramesAndCorruption(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(meter.Sample{Seq: 1, Power: 100}); err != nil {
		t.Fatal(err)
	}
	// Garbage between frames forces a resync before the second frame.
	buf.Write([]byte{0x00, 0x01, 0x02, 0x03, 0x04})
	if err := w.Write(meter.Sample{Seq: 2, Power: 101}); err != nil {
		t.Fatal(err)
	}
	// A frame with a corrupted CRC surfaces ErrBadFrame.
	frame, err := Encode(meter.Sample{Seq: 3, Power: 102})
	if err != nil {
		t.Fatal(err)
	}
	frame[14] ^= 0xFF
	buf.Write(frame)

	r := NewReader(&buf)
	if s, err := r.Read(); err != nil || s.Seq != 1 {
		t.Fatalf("first read: %v %v", s, err)
	}
	if s, err := r.Read(); err != nil || s.Seq != 2 {
		t.Fatalf("second read: %v %v", s, err)
	}
	if _, err := r.Read(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("third read: want ErrBadFrame, got %v", err)
	}

	if got := counterValue(t, reg, "vmpower_serial_frames_total"); got != 2 {
		t.Errorf("frames_total = %v, want 2", got)
	}
	if got := counterValue(t, reg, "vmpower_serial_bad_frames_total"); got != 1 {
		t.Errorf("bad_frames_total = %v, want 1", got)
	}
	if got := counterValue(t, reg, "vmpower_serial_resyncs_total"); got < 1 {
		t.Errorf("resyncs_total = %v, want >= 1", got)
	}
}

func TestInstrumentCountsCorruptStream(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	// Enough back-to-back bad-CRC frames to trip the consecutive cap.
	frame, err := Encode(meter.Sample{Seq: 1, Power: 50})
	if err != nil {
		t.Fatal(err)
	}
	frame[14] ^= 0xFF
	var buf bytes.Buffer
	for i := 0; i < MaxConsecutiveBadFrames+4; i++ {
		buf.Write(frame)
	}
	c := &Client{r: NewReader(&buf)}
	if _, err := c.Next(); !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("Next: want ErrCorruptStream, got %v", err)
	}
	if got := counterValue(t, reg, "vmpower_serial_corrupt_streams_total"); got != 1 {
		t.Errorf("corrupt_streams_total = %v, want 1", got)
	}

	// And the series shows up by name in the text exposition.
	var out strings.Builder
	reg.WriteText(&out)
	if !strings.Contains(out.String(), "vmpower_serial_bad_frames_total") {
		t.Error("exposition missing vmpower_serial_bad_frames_total")
	}
}

func TestUninstrumentedReaderUnaffected(t *testing.T) {
	Instrument(nil)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(meter.Sample{Seq: 9, Power: 10}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	s, err := r.Read()
	if err != nil || s.Seq != 9 {
		t.Fatalf("read: %v %v", s, err)
	}
}
