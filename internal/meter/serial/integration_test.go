package serial_test

// End-to-end reproduction of the prototype's two-server layout (Fig. 9):
// "server A" is the metered machine whose wall meter streams frames over
// the link; "server B" runs the estimation framework, consuming samples
// through the drain-to-latest StreamMeter adapter.

import (
	"math"
	"testing"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/meter/serial"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func TestClientLatestDrainsToFreshest(t *testing.T) {
	var power float64 = 100
	src := func() (float64, error) { return power, nil }
	m, err := meter.Perfect(src)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serial.NewServer(m, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := serial.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Let several frames queue up, then change the power; Latest must
	// return a high sequence number (freshest), not the first queued.
	time.Sleep(20 * time.Millisecond)
	s1, err := client.Latest(5*time.Second, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Seq < 5 {
		t.Fatalf("Latest returned early frame seq=%d", s1.Seq)
	}
	s2, err := client.Latest(5*time.Second, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Seq <= s1.Seq {
		t.Fatalf("Latest did not advance: %d then %d", s1.Seq, s2.Seq)
	}
}

func TestEstimatorOverSerialLink(t *testing.T) {
	// Server A: the simulated machine with one Small VM and its meter.
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{{Name: "only", Type: 0}})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	wallMeter, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serial.NewServer(wallMeter, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Server B: the estimator, fed exclusively through the stream.
	client, err := serial.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stream := &serial.StreamMeter{Client: client, Drain: time.Millisecond}

	est, err := core.New(host, stream, core.Config{
		OfflineTicksPerCombo: 30,
		IdleMeasureTicks:     5,
		Seed:                 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Idle power travels the wire at millisecond cadence while the host
	// is static, so it must land on the true 138 W (one phase-boundary
	// sample may straddle the combo switch — allow a small band).
	if got := est.IdlePower(); math.Abs(got-138) > 1.5 {
		t.Fatalf("streamed idle power = %g, want ~138", got)
	}

	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	host.Advance(1)
	// Give the stream a moment to carry the new machine state.
	time.Sleep(5 * time.Millisecond)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	// One Small VM flat out draws 13 W above idle.
	if math.Abs(alloc.PerVM[0]-13) > 2 {
		t.Fatalf("streamed allocation = %g, want ~13", alloc.PerVM[0])
	}
}
