package serial

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vmpower/internal/meter"
)

// FuzzDecode checks the frame decoder never panics and never accepts a
// frame that fails to round-trip.
func FuzzDecode(f *testing.F) {
	good, err := Encode(meter.Sample{Seq: 42, Power: 151.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, frameSize))
	f.Add(bytes.Repeat([]byte{0xA5, 0x5A}, frameSize/2))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to the identical frame.
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted sample cannot re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip mismatch: %x vs %x", re, data)
		}
	})
}

// FuzzReaderResync checks the stream reader survives arbitrary garbage
// around valid frames: it must either error per-frame or deliver valid
// samples, never panic or loop forever.
func FuzzReaderResync(f *testing.F) {
	frame, err := Encode(meter.Sample{Seq: 7, Power: 100})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("garbage"), frame)
	f.Add([]byte{0xA5}, frame)
	f.Add([]byte{}, frame)
	f.Fuzz(func(t *testing.T, prefix, body []byte) {
		if len(prefix) > 1024 || len(body) > 1024 {
			return
		}
		var buf bytes.Buffer
		buf.Write(prefix)
		buf.Write(body)
		r := NewReader(&buf)
		for i := 0; i < 64; i++ { // bounded: the stream is finite
			_, err := r.Read()
			if errors.Is(err, io.EOF) {
				return
			}
			// Bad frames surface as errors and the reader resyncs; both
			// outcomes are acceptable — the property is no panic/hang.
		}
	})
}
