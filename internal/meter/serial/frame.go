// Package serial implements the wire protocol of the paper's prototype
// (Sec. VI-B, Fig. 9): server A's power meter streams readings over a
// serial line to server B, which runs the estimation. Frames carry a
// sequence number and a milliwatt power value, protected by a CRC-16/CCITT
// checksum so line glitches surface as ErrBadFrame rather than silent
// corruption. A TCP transport stands in for the physical RS-232 link.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"vmpower/internal/meter"
)

// Frame layout (big endian):
//
//	offset 0: magic 0xA5 0x5A (2 bytes)
//	offset 2: sequence number  (8 bytes)
//	offset 10: power, milliwatts (4 bytes, unsigned)
//	offset 14: CRC-16/CCITT over bytes 0..13 (2 bytes)
const (
	frameSize = 16
	magic0    = 0xA5
	magic1    = 0x5A
)

// Errors surfaced by the codec.
var (
	// ErrBadFrame is returned for magic or checksum mismatches.
	ErrBadFrame = errors.New("serial: corrupt frame")
	// ErrPowerRange is returned when a power value cannot be encoded.
	ErrPowerRange = errors.New("serial: power out of encodable range")
)

// crc16 computes CRC-16/CCITT-FALSE over data.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// maxMilliwatts is the largest encodable power (~4.29 MW) — far beyond any
// single machine, so overflow indicates caller error.
const maxMilliwatts = math.MaxUint32

// Encode serialises a sample into a frame.
func Encode(s meter.Sample) ([]byte, error) {
	if s.Power < 0 || math.IsNaN(s.Power) || s.Power*1000 > maxMilliwatts {
		return nil, fmt.Errorf("%w: %g W", ErrPowerRange, s.Power)
	}
	buf := make([]byte, frameSize)
	buf[0], buf[1] = magic0, magic1
	binary.BigEndian.PutUint64(buf[2:], s.Seq)
	binary.BigEndian.PutUint32(buf[10:], uint32(s.Power*1000+0.5))
	binary.BigEndian.PutUint16(buf[14:], crc16(buf[:14]))
	return buf, nil
}

// Decode parses one frame.
func Decode(buf []byte) (meter.Sample, error) {
	if len(buf) != frameSize {
		return meter.Sample{}, fmt.Errorf("%w: length %d, want %d", ErrBadFrame, len(buf), frameSize)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return meter.Sample{}, fmt.Errorf("%w: bad magic %#x %#x", ErrBadFrame, buf[0], buf[1])
	}
	if got, want := binary.BigEndian.Uint16(buf[14:]), crc16(buf[:14]); got != want {
		return meter.Sample{}, fmt.Errorf("%w: crc %#04x, want %#04x", ErrBadFrame, got, want)
	}
	return meter.Sample{
		Seq:   binary.BigEndian.Uint64(buf[2:]),
		Power: float64(binary.BigEndian.Uint32(buf[10:])) / 1000,
	}, nil
}

// Writer frames samples onto an io.Writer.
type Writer struct{ w io.Writer }

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and writes one sample.
func (sw *Writer) Write(s meter.Sample) error {
	buf, err := Encode(s)
	if err != nil {
		return err
	}
	if _, err := sw.w.Write(buf); err != nil {
		return fmt.Errorf("serial: write: %w", err)
	}
	return nil
}

// Reader decodes a frame stream, resynchronising on the magic bytes after
// corruption so one bad frame does not poison the rest of the stream.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read returns the next valid sample. On a checksum failure it reports
// ErrBadFrame once; the following Read resynchronises. io.EOF propagates.
func (sr *Reader) Read() (meter.Sample, error) {
	m := metrics()
	if err := sr.fill(frameSize); err != nil {
		return meter.Sample{}, err
	}
	// Resynchronise: find the magic at the head of the buffer.
	if !(sr.buf[0] == magic0 && sr.buf[1] == magic1) {
		m.noteResync()
	}
	for !(sr.buf[0] == magic0 && sr.buf[1] == magic1) {
		idx := -1
		for i := 1; i+1 < len(sr.buf); i++ {
			if sr.buf[i] == magic0 && sr.buf[i+1] == magic1 {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Keep the final byte (possible magic0 prefix) and refill.
			sr.buf = sr.buf[len(sr.buf)-1:]
		} else {
			sr.buf = sr.buf[idx:]
		}
		if err := sr.fill(frameSize); err != nil {
			return meter.Sample{}, err
		}
	}
	s, err := Decode(sr.buf[:frameSize])
	if err != nil {
		// Skip the bad magic so the next Read can resync past it.
		sr.buf = sr.buf[2:]
		m.noteBadFrame()
		return meter.Sample{}, err
	}
	sr.buf = sr.buf[frameSize:]
	m.noteFrame()
	return s, nil
}

// fill ensures at least n buffered bytes.
func (sr *Reader) fill(n int) error {
	for len(sr.buf) < n {
		chunk := make([]byte, 256)
		m, err := sr.r.Read(chunk)
		if m > 0 {
			sr.buf = append(sr.buf, chunk[:m]...)
		}
		if err != nil {
			if err == io.EOF && len(sr.buf) >= n {
				return nil
			}
			return err
		}
	}
	return nil
}
