package serial

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vmpower/internal/meter"
	"vmpower/internal/obs"
)

// TestBadFrameCounterIsConsecutiveNotCumulative is the regression pin for
// the corrupt-stream cap: the counter must reset after every valid frame,
// so a stream with many glitches — but never MaxConsecutiveBadFrames in a
// row — keeps delivering samples forever, while a genuinely dead line
// still trips the cap.
func TestBadFrameCounterIsConsecutiveNotCumulative(t *testing.T) {
	var buf bytes.Buffer
	bad := newCorruptFrames(t).frame
	const rounds = 10
	for round := 0; round < rounds; round++ {
		for i := 0; i < MaxConsecutiveBadFrames-1; i++ {
			buf.Write(bad)
		}
		good, err := Encode(meter.Sample{Seq: uint64(round), Power: 42})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(good)
	}
	// Tail: a full run of consecutive corruption that must still trip.
	for i := 0; i < MaxConsecutiveBadFrames; i++ {
		buf.Write(bad)
	}

	c := &Client{r: NewReader(&buf)}
	for round := 0; round < rounds; round++ {
		s, err := c.Next()
		if err != nil {
			t.Fatalf("round %d: %v (cumulative %d bad frames seen — counter not resetting?)",
				round, err, round*(MaxConsecutiveBadFrames-1))
		}
		if s.Seq != uint64(round) || s.Power != 42 {
			t.Fatalf("round %d: got %+v", round, s)
		}
	}
	if _, err := c.Next(); !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("consecutive run did not trip the cap: %v", err)
	}
}

// flakyServer accepts connections and serves scripted content: the first
// badConns connections stream corrupt frames, later ones stream valid
// samples.
type flakyServer struct {
	ln       net.Listener
	badConns int32
	conns    int32
	badFrame []byte
}

func newFlakyServer(t *testing.T, badConns int) *flakyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &flakyServer{ln: ln, badConns: int32(badConns), badFrame: newCorruptFrames(t).frame}
	go fs.loop()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *flakyServer) loop() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		n := atomic.AddInt32(&fs.conns, 1)
		go func(conn net.Conn, n int32) {
			defer conn.Close()
			if n <= fs.badConns {
				for i := 0; i < MaxConsecutiveBadFrames; i++ {
					if _, err := conn.Write(fs.badFrame); err != nil {
						return
					}
				}
				// Linger so the client sees the cap, not an EOF.
				time.Sleep(200 * time.Millisecond)
				return
			}
			w := NewWriter(conn)
			for i := 0; i < 1000; i++ {
				if err := w.Write(meter.Sample{Seq: uint64(i + 1), Power: 99}); err != nil {
					return
				}
			}
		}(conn, n)
	}
}

func TestReconnectAfterCorruptStream(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	fs := newFlakyServer(t, 1)
	c, err := DialReconnect(fs.ln.Addr().String(), ReconnectOptions{
		Seed: 3, MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// The first connection is pure corruption: Next must trip the cap,
	// redial, and come back with a valid sample from the second.
	s, err := c.Next()
	if err != nil {
		t.Fatalf("Next did not recover across reconnect: %v", err)
	}
	if s.Power != 99 {
		t.Fatalf("Power = %g", s.Power)
	}
	if got := atomic.LoadInt32(&fs.conns); got != 2 {
		t.Fatalf("server saw %d connections, want 2", got)
	}
	if v := reg.Counter("vmpower_serial_reconnects_total", "").Value(); v != 1 {
		t.Fatalf("reconnects counter = %d, want 1", v)
	}
	if v := reg.Counter("vmpower_serial_corrupt_streams_total", "").Value(); v != 1 {
		t.Fatalf("corrupt-streams counter = %d, want 1", v)
	}
}

func TestReconnectAfterConnectionDrop(t *testing.T) {
	srv, err := NewServer(testMeter(t, 151.5), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := DialReconnect(addr, ReconnectOptions{
		Seed: 5, MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}

	// Kill the server and restart one on the same address; the client must
	// ride the outage via redial-with-backoff.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(testMeter(t, 42), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := c.Next()
		if err == nil && s.Power == 42 {
			return // reconnected to the new server
		}
		if err == nil {
			continue // stale buffered frame from the old server
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered: %v", err)
		}
	}
}

func TestReconnectGivesUpWhenServerGone(t *testing.T) {
	fs := newFlakyServer(t, 1)
	c, err := DialReconnect(fs.ln.Addr().String(), ReconnectOptions{
		Seed: 7, MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Tear the listener down: the corrupt first stream forces a redial,
	// which must fail after its bounded attempts and surface the typed
	// error.
	fs.ln.Close()
	if _, err := c.Next(); !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("want ErrCorruptStream after failed reconnect, got %v", err)
	}
}

func TestLatestTimeoutStillNotReconnect(t *testing.T) {
	// Drain timeouts are control flow for Latest, not failures: with
	// reconnect enabled, a quiet line must return the freshest sample, not
	// trigger a redial.
	srv, err := NewServer(testMeter(t, 77), 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialReconnect(addr, ReconnectOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Latest(5*time.Second, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.Power != 77 {
		t.Fatalf("Power = %g", s.Power)
	}
}
