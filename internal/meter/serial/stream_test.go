package serial

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"vmpower/internal/meter"
)

func testMeter(t *testing.T, power float64) meter.Meter {
	t.Helper()
	m, err := meter.Perfect(func() (float64, error) { return power, nil })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, time.Millisecond); err == nil {
		t.Fatal("want nil-meter error")
	}
	if _, err := NewServer(testMeter(t, 1), 0); err == nil {
		t.Fatal("want non-positive-interval error")
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	srv, err := NewServer(testMeter(t, 151.5), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}

	var lastSeq uint64
	for i := 0; i < 5; i++ {
		s, err := client.Next()
		if err != nil {
			t.Fatal(err)
		}
		if s.Power != 151.5 {
			t.Fatalf("Power = %g", s.Power)
		}
		if s.Seq <= lastSeq {
			t.Fatalf("sequence not increasing: %d after %d", s.Seq, lastSeq)
		}
		lastSeq = s.Seq
	}
}

func TestServerSkipsDropouts(t *testing.T) {
	// A meter with heavy dropouts must still deliver a stream: the
	// server skips lost samples rather than closing the connection.
	sim, err := meter.NewSim(func() (float64, error) { return 100, nil },
		meter.SimOptions{DropoutProb: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sim, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, err := client.Next()
		if err != nil {
			t.Fatal(err)
		}
		if s.Power != 100 {
			t.Fatalf("Power = %g", s.Power)
		}
	}
}

func TestServerDoubleStartAndClose(t *testing.T) {
	srv, err := NewServer(testMeter(t, 1), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Fatal("want already-started error")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing an unstarted server is a no-op.
	srv2, _ := NewServer(testMeter(t, 1), time.Millisecond)
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("want connection-refused error")
	}
}

func TestMultipleClients(t *testing.T) {
	srv, err := NewServer(testMeter(t, 77), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for c := 0; c < 3; c++ {
		client, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		s, err := client.Next()
		if err != nil {
			t.Fatal(err)
		}
		if s.Power != 77 {
			t.Fatalf("client %d: Power = %g", c, s.Power)
		}
		client.Close()
	}
}

// corruptFrames yields an endless stream of frames whose magic is intact
// but whose CRC is wrong — the worst case for a resynchronising reader,
// which reports ErrBadFrame once per frame forever.
type corruptFrames struct{ frame []byte }

func newCorruptFrames(t *testing.T) *corruptFrames {
	t.Helper()
	buf, err := Encode(meter.Sample{Seq: 1, Power: 100})
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF // break the CRC, keep the magic
	return &corruptFrames{frame: buf}
}

func (c *corruptFrames) Read(p []byte) (int, error) {
	n := 0
	for n+len(c.frame) <= len(p) {
		n += copy(p[n:], c.frame)
	}
	if n == 0 {
		n = copy(p, c.frame[:len(p)])
	}
	return n, nil
}

func TestClientNextBadFrameCap(t *testing.T) {
	// A peer emitting a continuous corrupt stream must not spin Next
	// forever: after MaxConsecutiveBadFrames skips it surfaces the typed
	// ErrCorruptStream instead.
	c := &Client{r: NewReader(newCorruptFrames(t))}
	_, err := c.Next()
	if !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("Next on garbage stream: %v, want ErrCorruptStream", err)
	}
}

func TestClientNextToleratesGlitchRuns(t *testing.T) {
	// A glitch run shorter than the cap must still be skipped: corrupt
	// frames followed by a valid one yield the valid sample, and the
	// consecutive counter resets on success.
	var buf bytes.Buffer
	bad := newCorruptFrames(t).frame
	for run := 0; run < 2; run++ {
		for i := 0; i < MaxConsecutiveBadFrames-1; i++ {
			buf.Write(bad)
		}
		good, err := Encode(meter.Sample{Seq: uint64(run), Power: 42})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(good)
	}
	c := &Client{r: NewReader(&buf)}
	for run := 0; run < 2; run++ {
		s, err := c.Next()
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if s.Power != 42 {
			t.Fatalf("run %d: Power = %g", run, s.Power)
		}
	}
}
