package serial

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vmpower/internal/meter"
)

// Server streams samples from a Meter to every connected client at a fixed
// interval, standing in for the prototype's metered server A.
type Server struct {
	m        meter.Meter
	interval time.Duration

	mu       sync.Mutex
	ln       net.Listener
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  bool
	sampleWG sync.WaitGroup
}

// NewServer builds a streaming server over m. interval is the sampling
// period (the paper uses 1 s; tests use much shorter).
func NewServer(m meter.Meter, interval time.Duration) (*Server, error) {
	if m == nil {
		return nil, errors.New("serial: nil meter")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("serial: non-positive interval %v", interval)
	}
	return &Server{m: m, interval: interval}, nil
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and begins
// serving. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return "", errors.New("serial: server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serial: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.ln = ln
	s.cancel = cancel
	s.started = true
	s.wg.Add(1)
	go s.acceptLoop(ctx, ln)
	return ln.Addr().String(), nil
}

// Close stops the server and waits for all connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	s.cancel()
	err := s.ln.Close()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ctx context.Context, ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(ctx, conn)
		}()
	}
}

// serve pushes samples to one client until the context ends or the write
// fails. Dropped meter samples (meter.ErrDropout) are skipped silently,
// matching the behaviour of a real 1 Hz meter that occasionally misses a
// reading.
func (s *Server) serve(ctx context.Context, conn net.Conn) {
	w := NewWriter(conn)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			sample, err := s.m.Sample()
			if err != nil {
				if errors.Is(err, meter.ErrDropout) {
					continue
				}
				return
			}
			if err := w.Write(sample); err != nil {
				return
			}
		}
	}
}

// Client reads a sample stream from a Server, standing in for the
// estimating server B of the prototype.
type Client struct {
	conn net.Conn
	r    *Reader
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serial: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: NewReader(conn)}, nil
}

// ErrCorruptStream is returned by Next after MaxConsecutiveBadFrames
// corrupt frames in a row — the line is noise, not a stream with
// occasional glitches, and retrying further would spin the estimation
// loop past its intended budget.
var ErrCorruptStream = errors.New("serial: stream corrupt (too many consecutive bad frames)")

// MaxConsecutiveBadFrames bounds how many corrupt frames Next skips
// before giving up with ErrCorruptStream. A real line glitch clips one
// or two frames; 64 in a row (a full second of 16-byte frames at the
// prototype's rate) means the peer or the link is broken.
const MaxConsecutiveBadFrames = 64

// Next returns the next valid sample, skipping corrupt frames. A bounded
// number of consecutive corrupt frames is tolerated (the CRC exists
// exactly to ride out line glitches); past MaxConsecutiveBadFrames it
// returns ErrCorruptStream instead of spinning on a garbage stream.
func (c *Client) Next() (meter.Sample, error) {
	bad := 0
	for {
		s, err := c.r.Read()
		if err == nil {
			return s, nil
		}
		if errors.Is(err, ErrBadFrame) {
			bad++
			if bad >= MaxConsecutiveBadFrames {
				metrics().noteCorruptStream()
				return meter.Sample{}, fmt.Errorf("%w: %d frames", ErrCorruptStream, bad)
			}
			continue
		}
		return meter.Sample{}, err
	}
}

// SetDeadline bounds how long Next may block.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Latest returns the freshest sample on the wire: it waits up to wait for
// a first frame, then keeps draining frames that arrive within drain of
// each other and returns the newest. This is how a 1 Hz estimation loop
// should consume a push stream — a slow consumer otherwise reads samples
// that lag the machine state by the length of the socket buffer.
func (c *Client) Latest(wait, drain time.Duration) (meter.Sample, error) {
	if err := c.SetDeadline(time.Now().Add(wait)); err != nil {
		return meter.Sample{}, fmt.Errorf("serial: set deadline: %w", err)
	}
	latest, err := c.Next()
	if err != nil {
		return meter.Sample{}, err
	}
	for {
		if err := c.SetDeadline(time.Now().Add(drain)); err != nil {
			return meter.Sample{}, fmt.Errorf("serial: set deadline: %w", err)
		}
		s, err := c.Next()
		if err != nil {
			if isTimeout(err) {
				return latest, nil
			}
			return meter.Sample{}, err
		}
		latest = s
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// StreamMeter adapts a Client to the meter.Meter interface using
// drain-to-latest semantics, so an estimator can plug directly into the
// prototype's server-B side of the serial link.
type StreamMeter struct {
	// Client is the connected stream client.
	Client *Client
	// Wait bounds how long one Sample call may block for a first frame.
	// Default 5 s.
	Wait time.Duration
	// Drain is the quiet period that ends the buffered-frame drain.
	// Default 2 ms.
	Drain time.Duration
}

// Sample implements meter.Meter.
func (m *StreamMeter) Sample() (meter.Sample, error) {
	wait := m.Wait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	drain := m.Drain
	if drain <= 0 {
		drain = 2 * time.Millisecond
	}
	return m.Client.Latest(wait, drain)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
