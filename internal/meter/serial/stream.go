package serial

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"vmpower/internal/meter"
)

// Server streams samples from a Meter to every connected client at a fixed
// interval, standing in for the prototype's metered server A.
type Server struct {
	m        meter.Meter
	interval time.Duration

	mu       sync.Mutex
	ln       net.Listener
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  bool
	sampleWG sync.WaitGroup
}

// NewServer builds a streaming server over m. interval is the sampling
// period (the paper uses 1 s; tests use much shorter).
func NewServer(m meter.Meter, interval time.Duration) (*Server, error) {
	if m == nil {
		return nil, errors.New("serial: nil meter")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("serial: non-positive interval %v", interval)
	}
	return &Server{m: m, interval: interval}, nil
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and begins
// serving. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return "", errors.New("serial: server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serial: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.ln = ln
	s.cancel = cancel
	s.started = true
	s.wg.Add(1)
	go s.acceptLoop(ctx, ln)
	return ln.Addr().String(), nil
}

// Close stops the server and waits for all connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	s.cancel()
	err := s.ln.Close()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ctx context.Context, ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(ctx, conn)
		}()
	}
}

// serve pushes samples to one client until the context ends or the write
// fails. Dropped meter samples (meter.ErrDropout) are skipped silently,
// matching the behaviour of a real 1 Hz meter that occasionally misses a
// reading.
func (s *Server) serve(ctx context.Context, conn net.Conn) {
	w := NewWriter(conn)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			sample, err := s.m.Sample()
			if err != nil {
				if errors.Is(err, meter.ErrDropout) {
					continue
				}
				return
			}
			if err := w.Write(sample); err != nil {
				return
			}
		}
	}
}

// Client reads a sample stream from a Server, standing in for the
// estimating server B of the prototype.
type Client struct {
	conn net.Conn
	r    *Reader

	addr     string
	rec      *ReconnectOptions
	rng      *rand.Rand
	deadline time.Time
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serial: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: NewReader(conn), addr: addr}, nil
}

// ReconnectOptions configures a client's self-healing behaviour: on a
// corrupt stream or a transport-level read error, the client closes the
// connection and redials with exponential backoff and jitter instead of
// surfacing the error.
type ReconnectOptions struct {
	// MaxAttempts bounds the dial attempts per reconnect cycle.
	// 0 defaults to 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (the first is
	// immediate); it doubles per attempt. 0 defaults to 50 ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 defaults to 2 s.
	MaxDelay time.Duration
	// Seed drives the jitter PRNG, so tests replay deterministically.
	Seed int64
}

func (o ReconnectOptions) withDefaults() ReconnectOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	return o
}

// DialReconnect connects to a Server at addr with reconnect enabled: a
// corrupt stream or broken connection triggers a close-and-redial cycle
// (exponential backoff, jittered) instead of a terminal error, which is
// what a long-running daemon wants from a flaky meter link.
func DialReconnect(addr string, opts ReconnectOptions) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	c.rec = &o
	c.rng = rand.New(rand.NewSource(opts.Seed))
	return c, nil
}

// reconnect closes the current connection and redials with exponential
// backoff and jitter, reapplying any stored read deadline.
func (c *Client) reconnect() error {
	c.conn.Close()
	var lastErr error
	for attempt := 0; attempt < c.rec.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.rec.BaseDelay << uint(attempt-1)
			if delay <= 0 || delay > c.rec.MaxDelay {
				delay = c.rec.MaxDelay
			}
			// Jitter in [0.5, 1.0)x spreads the redial storm when many
			// clients lose the same server at once.
			delay = time.Duration(float64(delay) * (0.5 + 0.5*c.rng.Float64()))
			time.Sleep(delay)
		}
		conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if !c.deadline.IsZero() {
			if err := conn.SetReadDeadline(c.deadline); err != nil {
				conn.Close()
				lastErr = err
				continue
			}
		}
		c.conn = conn
		c.r = NewReader(conn)
		metrics().noteReconnect()
		return nil
	}
	return fmt.Errorf("serial: reconnect %s after %d attempts: %w", c.addr, c.rec.MaxAttempts, lastErr)
}

// ErrCorruptStream is returned by Next after MaxConsecutiveBadFrames
// corrupt frames in a row — the line is noise, not a stream with
// occasional glitches, and retrying further would spin the estimation
// loop past its intended budget.
var ErrCorruptStream = errors.New("serial: stream corrupt (too many consecutive bad frames)")

// MaxConsecutiveBadFrames bounds how many corrupt frames Next skips
// before giving up with ErrCorruptStream. A real line glitch clips one
// or two frames; 64 in a row (a full second of 16-byte frames at the
// prototype's rate) means the peer or the link is broken.
const MaxConsecutiveBadFrames = 64

// Next returns the next valid sample, skipping corrupt frames. A bounded
// number of consecutive corrupt frames is tolerated (the CRC exists
// exactly to ride out line glitches); past MaxConsecutiveBadFrames it
// returns ErrCorruptStream instead of spinning on a garbage stream. The
// bad-frame count is per call: a single valid frame returns immediately,
// so only genuinely consecutive corruption trips the cap.
//
// With reconnect enabled (DialReconnect), a corrupt stream or a
// non-timeout transport error triggers one redial cycle before the error
// is surfaced; timeouts still pass through so Latest's drain semantics
// keep working.
func (c *Client) Next() (meter.Sample, error) {
	bad := 0
	reconnected := false
	for {
		s, err := c.r.Read()
		if err == nil {
			return s, nil
		}
		if errors.Is(err, ErrBadFrame) {
			bad++
			if bad >= MaxConsecutiveBadFrames {
				metrics().noteCorruptStream()
				if c.rec != nil && !reconnected {
					if rerr := c.reconnect(); rerr != nil {
						return meter.Sample{}, fmt.Errorf("%w: %d frames (reconnect failed: %v)", ErrCorruptStream, bad, rerr)
					}
					reconnected = true
					bad = 0
					continue
				}
				return meter.Sample{}, fmt.Errorf("%w: %d frames", ErrCorruptStream, bad)
			}
			continue
		}
		if c.rec != nil && !reconnected && !isTimeout(err) {
			if rerr := c.reconnect(); rerr == nil {
				reconnected = true
				bad = 0
				continue
			}
		}
		return meter.Sample{}, err
	}
}

// SetDeadline bounds how long Next may block. The deadline is remembered
// and reapplied to any reconnected socket.
func (c *Client) SetDeadline(t time.Time) error {
	c.deadline = t
	return c.conn.SetReadDeadline(t)
}

// Latest returns the freshest sample on the wire: it waits up to wait for
// a first frame, then keeps draining frames that arrive within drain of
// each other and returns the newest. This is how a 1 Hz estimation loop
// should consume a push stream — a slow consumer otherwise reads samples
// that lag the machine state by the length of the socket buffer.
func (c *Client) Latest(wait, drain time.Duration) (meter.Sample, error) {
	if err := c.SetDeadline(time.Now().Add(wait)); err != nil {
		return meter.Sample{}, fmt.Errorf("serial: set deadline: %w", err)
	}
	latest, err := c.Next()
	if err != nil {
		return meter.Sample{}, err
	}
	for {
		if err := c.SetDeadline(time.Now().Add(drain)); err != nil {
			return meter.Sample{}, fmt.Errorf("serial: set deadline: %w", err)
		}
		s, err := c.Next()
		if err != nil {
			if isTimeout(err) {
				return latest, nil
			}
			return meter.Sample{}, err
		}
		latest = s
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// StreamMeter adapts a Client to the meter.Meter interface using
// drain-to-latest semantics, so an estimator can plug directly into the
// prototype's server-B side of the serial link.
type StreamMeter struct {
	// Client is the connected stream client.
	Client *Client
	// Wait bounds how long one Sample call may block for a first frame.
	// Default 5 s.
	Wait time.Duration
	// Drain is the quiet period that ends the buffered-frame drain.
	// Default 2 ms.
	Drain time.Duration
}

// Sample implements meter.Meter.
func (m *StreamMeter) Sample() (meter.Sample, error) {
	wait := m.Wait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	drain := m.Drain
	if drain <= 0 {
		drain = 2 * time.Millisecond
	}
	return m.Client.Latest(wait, drain)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
