package serial

import (
	"sync/atomic"

	"vmpower/internal/obs"
)

// Metrics is the package's self-reporting surface: meter-link health
// that was previously invisible until Next gave up with
// ErrCorruptStream. All handles are nil-safe.
type Metrics struct {
	// Frames counts valid frames decoded (vmpower_serial_frames_total).
	Frames *obs.Counter
	// BadFrames counts magic/CRC failures
	// (vmpower_serial_bad_frames_total) — a rising rate is the early
	// warning the corrupt-frame cap acts on.
	BadFrames *obs.Counter
	// Resyncs counts reads that had to hunt for the magic bytes
	// (vmpower_serial_resyncs_total).
	Resyncs *obs.Counter
	// CorruptStreams counts Next giving up after
	// MaxConsecutiveBadFrames (vmpower_serial_corrupt_streams_total).
	CorruptStreams *obs.Counter
	// Reconnects counts successful client redials
	// (vmpower_serial_reconnects_total).
	Reconnects *obs.Counter
}

var pkgMetrics atomic.Pointer[Metrics]

// Instrument registers the package's standard metrics on reg and
// activates them for every Reader and Client. Instrument(nil) returns
// the package to the uninstrumented state.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		pkgMetrics.Store(nil)
		return
	}
	pkgMetrics.Store(&Metrics{
		Frames: reg.Counter("vmpower_serial_frames_total",
			"valid meter frames decoded"),
		BadFrames: reg.Counter("vmpower_serial_bad_frames_total",
			"meter frames dropped for bad magic or CRC"),
		Resyncs: reg.Counter("vmpower_serial_resyncs_total",
			"stream reads that resynchronised on the magic bytes"),
		CorruptStreams: reg.Counter("vmpower_serial_corrupt_streams_total",
			"streams abandoned after too many consecutive bad frames"),
		Reconnects: reg.Counter("vmpower_serial_reconnects_total",
			"successful client reconnects after stream failures"),
	})
}

func metrics() *Metrics { return pkgMetrics.Load() }

func (m *Metrics) noteFrame() {
	if m == nil {
		return
	}
	m.Frames.Inc()
}

func (m *Metrics) noteBadFrame() {
	if m == nil {
		return
	}
	m.BadFrames.Inc()
}

func (m *Metrics) noteResync() {
	if m == nil {
		return
	}
	m.Resyncs.Inc()
}

func (m *Metrics) noteCorruptStream() {
	if m == nil {
		return
	}
	m.CorruptStreams.Inc()
}

func (m *Metrics) noteReconnect() {
	if m == nil {
		return
	}
	m.Reconnects.Inc()
}
