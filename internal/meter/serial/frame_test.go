package serial

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"

	"vmpower/internal/meter"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []meter.Sample{
		{Seq: 0, Power: 0},
		{Seq: 1, Power: 151.5},
		{Seq: math.MaxUint64, Power: 0.001},
		{Seq: 42, Power: 4096.25},
	}
	for _, want := range tests {
		buf, err := Encode(want)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != frameSize {
			t.Fatalf("frame size = %d", len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != want.Seq {
			t.Fatalf("Seq = %d, want %d", got.Seq, want.Seq)
		}
		if math.Abs(got.Power-want.Power) > 0.0005 {
			t.Fatalf("Power = %g, want %g", got.Power, want.Power)
		}
	}
}

func TestEncodeRange(t *testing.T) {
	if _, err := Encode(meter.Sample{Power: -1}); !errors.Is(err, ErrPowerRange) {
		t.Fatalf("negative: %v", err)
	}
	if _, err := Encode(meter.Sample{Power: math.NaN()}); !errors.Is(err, ErrPowerRange) {
		t.Fatalf("nan: %v", err)
	}
	if _, err := Encode(meter.Sample{Power: 5e6}); !errors.Is(err, ErrPowerRange) {
		t.Fatalf("overflow: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short: %v", err)
	}
	good, _ := Encode(meter.Sample{Seq: 1, Power: 10})
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x00
	if _, err := Decode(badMagic); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("magic: %v", err)
	}
	badCRC := append([]byte(nil), good...)
	badCRC[5] ^= 0xFF
	if _, err := Decode(badCRC); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("crc: %v", err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []meter.Sample{{Seq: 1, Power: 150}, {Seq: 2, Power: 151.2}, {Seq: 3, Power: 149.8}}
	for _, s := range want {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for _, wantS := range want {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != wantS.Seq {
			t.Fatalf("Seq = %d, want %d", got.Seq, wantS.Seq)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderResyncAfterGarbage(t *testing.T) {
	var buf bytes.Buffer
	// Leading garbage, then two valid frames.
	buf.Write([]byte{0x01, 0x02, 0xA5, 0x99, 0x00})
	w := NewWriter(&buf)
	if err := w.Write(meter.Sample{Seq: 7, Power: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(meter.Sample{Seq: 8, Power: 101}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 {
		t.Fatalf("resynced Seq = %d, want 7", got.Seq)
	}
	got, err = r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 8 {
		t.Fatalf("second Seq = %d, want 8", got.Seq)
	}
}

func TestReaderCorruptMidStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(meter.Sample{Seq: 1, Power: 100}); err != nil {
		t.Fatal(err)
	}
	// A corrupted frame: valid magic, broken payload.
	frame, _ := Encode(meter.Sample{Seq: 2, Power: 100})
	frame[6] ^= 0xFF
	buf.Write(frame)
	if err := w.Write(meter.Sample{Seq: 3, Power: 100}); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got, err := r.Read(); err != nil || got.Seq != 1 {
		t.Fatalf("first: %v %v", got, err)
	}
	if _, err := r.Read(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 {
		t.Fatalf("post-corruption Seq = %d, want 3", got.Seq)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc16 = %#04x, want 0x29b1", got)
	}
}

// Property: encode/decode round-trips any in-range sample.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, rawPower uint32) bool {
		want := meter.Sample{Seq: seq, Power: float64(rawPower) / 1000}
		buf, err := Encode(want)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Seq == want.Seq && math.Abs(got.Power-want.Power) < 0.0005
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a frame is detected.
func TestCorruptionDetectionProperty(t *testing.T) {
	base, err := Encode(meter.Sample{Seq: 123456, Power: 151.5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint8, flip uint8) bool {
		if flip == 0 {
			return true
		}
		buf := append([]byte(nil), base...)
		buf[int(pos)%len(buf)] ^= flip
		_, err := Decode(buf)
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
