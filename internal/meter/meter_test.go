package meter

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func constSource(p float64) PowerSource {
	return func() (float64, error) { return p, nil }
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(nil, SimOptions{}); err == nil {
		t.Fatal("want nil-source error")
	}
	if _, err := NewSim(constSource(1), SimOptions{NoiseStdDev: -1}); err == nil {
		t.Fatal("want negative-noise error")
	}
	if _, err := NewSim(constSource(1), SimOptions{DropoutProb: 1}); err == nil {
		t.Fatal("want dropout-probability error")
	}
}

func TestPerfectMeter(t *testing.T) {
	m, err := Perfect(constSource(151.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		s, err := m.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if s.Power != 151.5 {
			t.Fatalf("Power = %g", s.Power)
		}
		if s.Seq != uint64(i) {
			t.Fatalf("Seq = %d, want %d", s.Seq, i)
		}
	}
}

func TestQuantization(t *testing.T) {
	m, err := NewSim(constSource(151.543), SimOptions{Resolution: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Power-151.5) > 1e-9 {
		t.Fatalf("quantized = %g, want 151.5", s.Power)
	}
}

func TestNoiseStatistics(t *testing.T) {
	const (
		truth = 100.0
		sigma = 0.5
		n     = 4000
	)
	m, err := NewSim(constSource(truth), SimOptions{NoiseStdDev: sigma, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		s, err := m.Sample()
		if err != nil {
			t.Fatal(err)
		}
		sum += s.Power
		sumSq += s.Power * s.Power
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-truth) > 0.1 {
		t.Fatalf("noisy mean = %g", mean)
	}
	if math.Abs(std-sigma) > 0.1 {
		t.Fatalf("noisy std = %g, want ~%g", std, sigma)
	}
}

func TestDropout(t *testing.T) {
	m, err := NewSim(constSource(1), SimOptions{DropoutProb: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := m.Sample(); errors.Is(err, ErrDropout) {
			drops++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if drops < n/3 || drops > 2*n/3 {
		t.Fatalf("drop rate %d/%d far from 0.5", drops, n)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	m, err := NewSim(func() (float64, error) { return 0, boom }, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sample(); !errors.Is(err, boom) {
		t.Fatalf("want source error, got %v", err)
	}
}

func TestNegativeClamp(t *testing.T) {
	m, err := NewSim(constSource(0.01), SimOptions{NoiseStdDev: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s, err := m.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if s.Power < 0 {
			t.Fatalf("negative power %g", s.Power)
		}
	}
}

func TestConcurrentSampling(t *testing.T) {
	m, err := NewSim(constSource(10), SimOptions{NoiseStdDev: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	seqs := make([][]uint64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s, err := m.Sample()
				if err != nil {
					t.Error(err)
					return
				}
				seqs[g] = append(seqs[g], s.Seq)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, 800)
	for _, list := range seqs {
		for _, s := range list {
			if seen[s] {
				t.Fatalf("duplicate sequence %d", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != 800 {
		t.Fatalf("got %d unique sequences, want 800", len(seen))
	}
}
