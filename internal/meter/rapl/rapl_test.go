package rapl

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// writeFixture builds a fake powercap tree with one package domain and
// returns its root plus the energy_uj path.
func writeFixture(t *testing.T, energyUJ, maxUJ uint64) (root, energyPath string) {
	t.Helper()
	root = t.TempDir()
	dir := filepath.Join(root, "intel-rapl:0")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("name", "package-0")
	mustWrite("energy_uj", strconv.FormatUint(energyUJ, 10))
	mustWrite("max_energy_range_uj", strconv.FormatUint(maxUJ, 10))
	// A subzone that must be ignored.
	sub := filepath.Join(root, "intel-rapl:0:0")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "name"), []byte("core\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return root, filepath.Join(dir, "energy_uj")
}

func setEnergy(t *testing.T, path string, uj uint64) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strconv.FormatUint(uj, 10)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiscover(t *testing.T) {
	root, _ := writeFixture(t, 1000, 1<<40)
	domains, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 1 {
		t.Fatalf("found %d domains, want 1 (subzones ignored)", len(domains))
	}
	if domains[0].Name != "package-0" {
		t.Fatalf("Name = %q", domains[0].Name)
	}
	if domains[0].MaxEnergyUJ != 1<<40 {
		t.Fatalf("MaxEnergyUJ = %d", domains[0].MaxEnergyUJ)
	}
}

func TestDiscoverUnavailable(t *testing.T) {
	if _, err := Discover(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("missing root: %v", err)
	}
	if _, err := Discover(t.TempDir()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("empty root: %v", err)
	}
}

func TestReaderPower(t *testing.T) {
	root, energyPath := writeFixture(t, 1_000_000, 1<<40)
	r, err := NewReader(root)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }

	// First call primes.
	p, err := r.Power()
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("priming call = %g", p)
	}

	// +50 J over 2 s → 25 W.
	setEnergy(t, energyPath, 51_000_000)
	now = now.Add(2 * time.Second)
	p, err = r.Power()
	if err != nil {
		t.Fatal(err)
	}
	if p != 25 {
		t.Fatalf("Power = %g, want 25", p)
	}
}

func TestReaderWraparound(t *testing.T) {
	const wrap = 1 << 20
	root, energyPath := writeFixture(t, wrap-1000, wrap)
	r, err := NewReader(root)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	r.now = func() time.Time { return now }
	if _, err := r.Power(); err != nil {
		t.Fatal(err)
	}
	// Counter wraps: consumed 1000 + 500 µJ over 1 s.
	setEnergy(t, energyPath, 500)
	now = now.Add(time.Second)
	p, err := r.Power()
	if err != nil {
		t.Fatal(err)
	}
	want := 1500e-6 / 1.0 / 1 // 1500 µJ in 1 s
	if diff := p - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("wrapped power = %g, want %g", p, want)
	}
}

func TestReaderZeroInterval(t *testing.T) {
	root, _ := writeFixture(t, 1000, 1<<40)
	r, err := NewReader(root)
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Unix(5, 0)
	r.now = func() time.Time { return fixed }
	if _, err := r.Power(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Power(); err == nil {
		t.Fatal("want non-positive-interval error")
	}
}

func TestReaderDomainsCopy(t *testing.T) {
	root, _ := writeFixture(t, 1000, 1<<40)
	r, err := NewReader(root)
	if err != nil {
		t.Fatal(err)
	}
	ds := r.Domains()
	ds[0].Name = "mutated"
	if r.Domains()[0].Name != "package-0" {
		t.Fatal("Domains must copy")
	}
}

func TestReaderFileRemoved(t *testing.T) {
	root, energyPath := writeFixture(t, 1000, 1<<40)
	r, err := NewReader(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(energyPath); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Power(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}
