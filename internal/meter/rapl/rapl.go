// Package rapl reads CPU package power from the Linux powercap sysfs
// interface (Intel RAPL), the software power model the paper's Sec. II-A
// discusses. It offers a real-hardware alternative to the simulated wall
// meter where /sys/class/powercap is available; on machines without RAPL
// every call fails gracefully with ErrUnavailable so callers can fall back
// to the simulator.
package rapl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultSysfsRoot is the standard powercap mount point.
const DefaultSysfsRoot = "/sys/class/powercap"

// ErrUnavailable is returned when no RAPL domain can be read.
var ErrUnavailable = errors.New("rapl: powercap interface unavailable")

// Domain is one RAPL energy-counter domain (a CPU package).
type Domain struct {
	// Name is the domain label, e.g. "package-0".
	Name string
	// EnergyPath is the energy_uj counter file.
	EnergyPath string
	// MaxEnergyUJ is the counter wrap value (0 if unknown).
	MaxEnergyUJ uint64
}

// Discover enumerates package-level RAPL domains under root (use
// DefaultSysfsRoot in production; tests point at a fixture tree).
func Discover(root string) ([]Domain, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	var domains []Domain
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "intel-rapl:") || strings.Count(e.Name(), ":") != 1 {
			continue // only top-level package domains, not subzones
		}
		dir := filepath.Join(root, e.Name())
		nameBytes, err := os.ReadFile(filepath.Join(dir, "name"))
		if err != nil {
			continue
		}
		d := Domain{
			Name:       strings.TrimSpace(string(nameBytes)),
			EnergyPath: filepath.Join(dir, "energy_uj"),
		}
		if maxBytes, err := os.ReadFile(filepath.Join(dir, "max_energy_range_uj")); err == nil {
			if v, err := strconv.ParseUint(strings.TrimSpace(string(maxBytes)), 10, 64); err == nil {
				d.MaxEnergyUJ = v
			}
		}
		if _, err := readCounter(d.EnergyPath); err == nil {
			domains = append(domains, d)
		}
	}
	if len(domains) == 0 {
		return nil, fmt.Errorf("%w: no readable package domains under %s", ErrUnavailable, root)
	}
	return domains, nil
}

func readCounter(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("rapl: parse %s: %w", path, err)
	}
	return v, nil
}

// Reader derives power from successive energy-counter readings across all
// discovered package domains. It is safe for concurrent use.
type Reader struct {
	domains []Domain

	mu       sync.Mutex
	lastUJ   []uint64
	lastTime time.Time
	primed   bool
	now      func() time.Time
}

// NewReader builds a Reader over the domains found under root.
func NewReader(root string) (*Reader, error) {
	domains, err := Discover(root)
	if err != nil {
		return nil, err
	}
	return &Reader{domains: domains, now: time.Now}, nil
}

// Domains returns the discovered domains.
func (r *Reader) Domains() []Domain {
	out := make([]Domain, len(r.domains))
	copy(out, r.domains)
	return out
}

// Power returns the aggregate package power in watts, computed from the
// energy consumed since the previous call. The first call primes the
// counters and returns (0, nil). Counter wraparound is handled using
// max_energy_range_uj when available.
func (r *Reader) Power() (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := make([]uint64, len(r.domains))
	for i, d := range r.domains {
		v, err := readCounter(d.EnergyPath)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
		cur[i] = v
	}
	now := r.now()
	if !r.primed {
		r.lastUJ = cur
		r.lastTime = now
		r.primed = true
		return 0, nil
	}
	dt := now.Sub(r.lastTime).Seconds()
	if dt <= 0 {
		return 0, errors.New("rapl: non-positive sampling interval")
	}
	var totalUJ float64
	for i, v := range cur {
		prev := r.lastUJ[i]
		var delta uint64
		if v >= prev {
			delta = v - prev
		} else if wrap := r.domains[i].MaxEnergyUJ; wrap > 0 {
			delta = wrap - prev + v
		}
		totalUJ += float64(delta)
	}
	r.lastUJ = cur
	r.lastTime = now
	return totalUJ / 1e6 / dt, nil
}
