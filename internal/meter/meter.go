// Package meter abstracts the paper's wall power meter (Sec. VI-B): a
// 1 Hz sampler of whole-machine power. SimMeter samples a simulated power
// source and reproduces a physical meter's imperfections (Gaussian noise,
// display quantization, occasional dropouts). The serial subpackage
// implements the prototype's serial-port transport between the metered
// server and the estimating server; the rapl subpackage reads Linux
// powercap sysfs where available.
package meter

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Sample is one power reading.
type Sample struct {
	// Seq is a monotonically increasing sample sequence number.
	Seq uint64
	// Power is the measured whole-machine power in watts.
	Power float64
}

// Meter yields power samples. Implementations are safe for concurrent use.
type Meter interface {
	// Sample returns the next power reading.
	Sample() (Sample, error)
}

// PowerSource provides the instantaneous true power to be metered.
type PowerSource func() (float64, error)

// ErrDropout is returned when a reading is lost (serial glitch, meter
// busy). Callers at 1 Hz simply retry on the next tick.
var ErrDropout = errors.New("meter: sample dropped")

// SimOptions configures a SimMeter.
type SimOptions struct {
	// NoiseStdDev is the Gaussian measurement noise sigma in watts.
	NoiseStdDev float64
	// Resolution quantizes readings (e.g. 0.1 W display resolution).
	// Non-positive disables quantization.
	Resolution float64
	// DropoutProb is the probability a sample is lost (ErrDropout).
	DropoutProb float64
	// Seed seeds the meter's private PRNG.
	Seed int64
}

// SimMeter measures a PowerSource with configurable imperfections.
type SimMeter struct {
	source PowerSource
	opts   SimOptions

	mu  sync.Mutex
	rng *rand.Rand
	seq uint64
}

// NewSim builds a SimMeter over the given source.
func NewSim(source PowerSource, opts SimOptions) (*SimMeter, error) {
	if source == nil {
		return nil, errors.New("meter: nil power source")
	}
	if opts.NoiseStdDev < 0 {
		return nil, fmt.Errorf("meter: negative noise sigma %g", opts.NoiseStdDev)
	}
	if opts.DropoutProb < 0 || opts.DropoutProb >= 1 {
		return nil, fmt.Errorf("meter: dropout probability %g outside [0,1)", opts.DropoutProb)
	}
	return &SimMeter{
		source: source,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// Sample implements Meter.
func (m *SimMeter) Sample() (Sample, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	seq := m.seq
	if m.opts.DropoutProb > 0 && m.rng.Float64() < m.opts.DropoutProb {
		return Sample{Seq: seq}, ErrDropout
	}
	p, err := m.source()
	if err != nil {
		return Sample{Seq: seq}, fmt.Errorf("meter: source: %w", err)
	}
	if m.opts.NoiseStdDev > 0 {
		p += m.rng.NormFloat64() * m.opts.NoiseStdDev
	}
	if r := m.opts.Resolution; r > 0 {
		p = quantize(p, r)
	}
	if p < 0 {
		p = 0
	}
	return Sample{Seq: seq, Power: p}, nil
}

func quantize(v, r float64) float64 {
	n := v / r
	// Round half away from zero, as meter displays do.
	if n >= 0 {
		n = float64(int64(n + 0.5))
	} else {
		n = float64(int64(n - 0.5))
	}
	return n * r
}

// Perfect returns a noiseless, lossless meter over the source — useful as
// a ground-truth oracle in tests and experiments.
func Perfect(source PowerSource) (*SimMeter, error) {
	return NewSim(source, SimOptions{})
}
