// Package capping implements per-VM power capping — the management
// application the paper's introduction motivates ("VM power measurement
// can effectively enable power caps to be enforced on a per-VM basis").
//
// A Controller closes the loop between the Shapley power estimator and
// the hypervisor's CPU limits: each tick it compares every capped VM's
// attributed power Φ_i against its cap and adjusts the VM's CPU ceiling
// multiplicatively (AIMD-flavoured: multiplicative throttle on breach,
// additive slow release when comfortably below the cap). Because the
// Shapley allocation is efficient against the meter, the sum of caps is
// also a machine-level budget guarantee.
package capping

import (
	"errors"
	"fmt"
	"sort"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/vm"
)

// Options tunes the control loop. The zero value gives sensible defaults.
type Options struct {
	// ReleaseStep is the additive CPU-limit increase per tick while a
	// capped VM draws less than ReleaseFraction of its cap. Default 0.05.
	ReleaseStep float64
	// ReleaseFraction is the fraction of the cap below which the limit
	// is released. Default 0.9.
	ReleaseFraction float64
	// MinLimit floors the CPU ceiling so a capped VM is never starved
	// completely. Default 0.05.
	MinLimit float64
	// Headroom scales the throttle target so the controller aims
	// slightly below the cap, absorbing estimation noise. Default 0.95.
	Headroom float64
}

func (o Options) withDefaults() Options {
	if o.ReleaseStep <= 0 {
		o.ReleaseStep = 0.05
	}
	if o.ReleaseFraction <= 0 || o.ReleaseFraction >= 1 {
		o.ReleaseFraction = 0.9
	}
	if o.MinLimit <= 0 {
		o.MinLimit = 0.05
	}
	if o.Headroom <= 0 || o.Headroom > 1 {
		o.Headroom = 0.95
	}
	return o
}

// Action records one control decision, for logging and tests.
type Action struct {
	// VM is the throttled/released VM.
	VM vm.ID
	// Power is the VM's attributed power at decision time (W).
	Power float64
	// Cap is its configured cap (W).
	Cap float64
	// OldLimit and NewLimit are the CPU ceilings before and after.
	OldLimit, NewLimit float64
}

// String renders the action.
func (a Action) String() string {
	verb := "release"
	if a.NewLimit < a.OldLimit {
		verb = "throttle"
	}
	return fmt.Sprintf("%s vm%d: %.2f W of %.2f W cap, limit %.2f → %.2f",
		verb, a.VM, a.Power, a.Cap, a.OldLimit, a.NewLimit)
}

// Controller enforces per-VM power caps on a host.
type Controller struct {
	host *hypervisor.Host
	opts Options
	caps map[vm.ID]float64
}

// New builds a Controller for the host.
func New(host *hypervisor.Host, opts Options) (*Controller, error) {
	if host == nil {
		return nil, errors.New("capping: nil host")
	}
	return &Controller{
		host: host,
		opts: opts.withDefaults(),
		caps: make(map[vm.ID]float64),
	}, nil
}

// SetCap installs a power cap (watts of attributed dynamic power) for a VM.
func (c *Controller) SetCap(id vm.ID, watts float64) error {
	if _, err := c.host.Set().VM(id); err != nil {
		return err
	}
	if watts <= 0 {
		return fmt.Errorf("capping: cap %g W must be positive", watts)
	}
	c.caps[id] = watts
	return nil
}

// RemoveCap uninstalls a VM's cap and lifts its CPU limit.
func (c *Controller) RemoveCap(id vm.ID) error {
	if _, ok := c.caps[id]; !ok {
		return nil
	}
	delete(c.caps, id)
	return c.host.SetCPULimit(id, 1)
}

// Caps returns the installed caps keyed by VM, in a fresh map.
func (c *Controller) Caps() map[vm.ID]float64 {
	out := make(map[vm.ID]float64, len(c.caps))
	for id, w := range c.caps {
		out[id] = w
	}
	return out
}

// Observe feeds one allocation into the control loop and applies the
// resulting CPU-limit adjustments to the hypervisor. It returns the
// actions taken this tick (possibly none), sorted by VM ID.
func (c *Controller) Observe(alloc *core.Allocation) ([]Action, error) {
	if alloc == nil {
		return nil, errors.New("capping: nil allocation")
	}
	var actions []Action
	ids := make([]vm.ID, 0, len(c.caps))
	for id := range c.caps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		capW := c.caps[id]
		if int(id) >= len(alloc.PerVM) {
			return nil, fmt.Errorf("capping: allocation has %d VMs, cap set on vm%d", len(alloc.PerVM), id)
		}
		power := alloc.PerVM[int(id)]
		limit, err := c.host.CPULimit(id)
		if err != nil {
			return nil, err
		}
		newLimit := limit
		switch {
		case power > capW:
			// Multiplicative throttle toward the headroom-adjusted cap.
			// Power is roughly proportional to the CPU ceiling, so this
			// converges in a few ticks.
			newLimit = limit * c.opts.Headroom * capW / power
			if newLimit < c.opts.MinLimit {
				newLimit = c.opts.MinLimit
			}
		case power < c.opts.ReleaseFraction*capW && limit < 1:
			newLimit = limit + c.opts.ReleaseStep
			if newLimit > 1 {
				newLimit = 1
			}
		}
		if newLimit == limit {
			continue
		}
		if err := c.host.SetCPULimit(id, newLimit); err != nil {
			return nil, err
		}
		actions = append(actions, Action{
			VM: id, Power: power, Cap: capW,
			OldLimit: limit, NewLimit: newLimit,
		})
	}
	return actions, nil
}

// Run drives the estimator for n ticks with the control loop engaged and
// reports, per capped VM, the number of ticks spent above its cap.
func (c *Controller) Run(est *core.Estimator, n int) (map[vm.ID]int, error) {
	breaches := make(map[vm.ID]int, len(c.caps))
	var loopErr error
	err := est.Run(n, func(alloc *core.Allocation) bool {
		for id, capW := range c.caps {
			if alloc.PerVM[int(id)] > capW {
				breaches[id]++
			}
		}
		if _, err := c.Observe(alloc); err != nil {
			loopErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = loopErr
	}
	return breaches, err
}
