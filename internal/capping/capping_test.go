package capping

import (
	"testing"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// rig builds a calibrated 3-VM system (2×VM1, 1×VM3) with a controller.
func rig(t *testing.T) (*hypervisor.Host, *core.Estimator, *Controller) {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "a", Type: 0}, {Name: "b", Type: 0}, {Name: "big", Type: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.New(host, m, core.Config{OfflineTicksPerCombo: 80, IdleMeasureTicks: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(host, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return host, est, ctrl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("want nil-host error")
	}
}

func TestSetCapValidation(t *testing.T) {
	host, _, ctrl := rig(t)
	_ = host
	if err := ctrl.SetCap(99, 10); err == nil {
		t.Fatal("want unknown-VM error")
	}
	if err := ctrl.SetCap(0, 0); err == nil {
		t.Fatal("want positive-cap error")
	}
	if err := ctrl.SetCap(0, 5); err != nil {
		t.Fatal(err)
	}
	caps := ctrl.Caps()
	if caps[0] != 5 {
		t.Fatalf("Caps = %v", caps)
	}
	caps[0] = 99
	if ctrl.Caps()[0] != 5 {
		t.Fatal("Caps must copy")
	}
}

func TestThrottleConvergesUnderCap(t *testing.T) {
	host, est, ctrl := rig(t)
	// The big VM runs flat out (~37 W uncapped); cap it at 20 W.
	for _, id := range []vm.ID{0, 1, 2} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.GrandCoalition(3))
	const capW = 20.0
	if err := ctrl.SetCap(2, capW); err != nil {
		t.Fatal(err)
	}
	// Let the loop settle, then measure compliance over a window.
	if _, err := ctrl.Run(est, 10); err != nil {
		t.Fatal(err)
	}
	breaches, err := ctrl.Run(est, 20)
	if err != nil {
		t.Fatal(err)
	}
	if breaches[2] > 2 {
		t.Fatalf("capped VM above cap for %d/20 settled ticks", breaches[2])
	}
	limit, err := host.CPULimit(2)
	if err != nil {
		t.Fatal(err)
	}
	if limit >= 1 {
		t.Fatal("controller never throttled the capped VM")
	}
	// Uncapped VMs must remain unthrottled.
	for _, id := range []vm.ID{0, 1} {
		l, err := host.CPULimit(id)
		if err != nil {
			t.Fatal(err)
		}
		if l != 1 {
			t.Fatalf("uncapped vm%d limit = %g", id, l)
		}
	}
}

func TestReleaseAfterLoadDrops(t *testing.T) {
	host, est, ctrl := rig(t)
	if err := host.Attach(2, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(2))
	if err := ctrl.SetCap(2, 15); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(est, 15); err != nil {
		t.Fatal(err)
	}
	throttled, err := host.CPULimit(2)
	if err != nil {
		t.Fatal(err)
	}
	if throttled >= 1 {
		t.Fatal("expected a throttle first")
	}
	// Load drops to 20%: well under the cap, the limit must climb back.
	if err := host.Attach(2, workload.Constant("light", vm.State{vm.CPU: 0.2})); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(est, 30); err != nil {
		t.Fatal(err)
	}
	released, err := host.CPULimit(2)
	if err != nil {
		t.Fatal(err)
	}
	if released <= throttled {
		t.Fatalf("limit %g did not release from %g", released, throttled)
	}
}

func TestRemoveCapLiftsLimit(t *testing.T) {
	host, est, ctrl := rig(t)
	if err := host.Attach(2, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(2))
	if err := ctrl.SetCap(2, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(est, 10); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RemoveCap(2); err != nil {
		t.Fatal(err)
	}
	limit, err := host.CPULimit(2)
	if err != nil {
		t.Fatal(err)
	}
	if limit != 1 {
		t.Fatalf("limit after RemoveCap = %g", limit)
	}
	// Removing an absent cap is a no-op.
	if err := ctrl.RemoveCap(0); err != nil {
		t.Fatal(err)
	}
}

func TestObserveValidation(t *testing.T) {
	_, _, ctrl := rig(t)
	if _, err := ctrl.Observe(nil); err == nil {
		t.Fatal("want nil-allocation error")
	}
}

func TestActionString(t *testing.T) {
	a := Action{VM: 2, Power: 25, Cap: 20, OldLimit: 1, NewLimit: 0.76}
	if got := a.String(); got == "" {
		t.Fatal("empty action string")
	}
	th := Action{VM: 2, Power: 25, Cap: 20, OldLimit: 0.5, NewLimit: 0.55}
	if got := th.String(); got == "" {
		t.Fatal("empty release string")
	}
}

func TestMinLimitFloor(t *testing.T) {
	host, est, ctrl := rig(t)
	if err := host.Attach(2, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(2))
	// An absurdly low cap cannot starve the VM below MinLimit.
	if err := ctrl.SetCap(2, 0.001); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(est, 20); err != nil {
		t.Fatal(err)
	}
	limit, err := host.CPULimit(2)
	if err != nil {
		t.Fatal(err)
	}
	if limit < 0.05-1e-12 {
		t.Fatalf("limit %g fell below the floor", limit)
	}
}
