package vm

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxPlayers bounds the size of a game so coalitions fit in a uint32
// bitmask with 2^n enumerable subsets. The paper argues n <= 16 in
// practice (one VM per logical core on a 16-core Xeon); we allow headroom.
// VM sets may be larger (up to MaxVMs): beyond MaxPlayers the
// coalition-bitmask machinery is unavailable and estimation runs through
// the symmetry-collapsed solver over type-count vectors instead.
const MaxPlayers = 24

// MaxVMs bounds the size of a VM set. Sets past MaxPlayers cannot be
// enumerated as bitmasks; they are estimated exactly only when the
// population collapses into repeated symmetry classes (dense modern
// hosts run hundreds of VMs drawn from a handful of fixed types).
const MaxVMs = 512

// Coalition is a subset S of the VM set N, encoded as a bitmask where bit
// i set means VM i is a member. The zero value is the empty coalition.
type Coalition uint32

// EmptyCoalition is the coalition with no members.
const EmptyCoalition Coalition = 0

// GrandCoalition returns the coalition containing all n VMs.
func GrandCoalition(n int) Coalition {
	if n <= 0 {
		return 0
	}
	return Coalition(1<<uint(n)) - 1
}

// CoalitionOf builds a coalition from member IDs.
func CoalitionOf(ids ...ID) Coalition {
	var c Coalition
	for _, id := range ids {
		c |= 1 << uint(id)
	}
	return c
}

// Contains reports whether VM id is a member of c.
func (c Coalition) Contains(id ID) bool { return c&(1<<uint(id)) != 0 }

// With returns c ∪ {id}.
func (c Coalition) With(id ID) Coalition { return c | 1<<uint(id) }

// Without returns c \ {id}.
func (c Coalition) Without(id ID) Coalition { return c &^ (1 << uint(id)) }

// Size returns |S|, the number of members.
func (c Coalition) Size() int { return bits.OnesCount32(uint32(c)) }

// IsEmpty reports whether c has no members.
func (c Coalition) IsEmpty() bool { return c == 0 }

// Members returns the member IDs in ascending order.
func (c Coalition) Members() []ID {
	out := make([]ID, 0, c.Size())
	for m := uint32(c); m != 0; {
		b := bits.TrailingZeros32(m)
		out = append(out, ID(b))
		m &^= 1 << uint(b)
	}
	return out
}

// SubsetOf reports whether c ⊆ other.
func (c Coalition) SubsetOf(other Coalition) bool { return c&^other == 0 }

// String renders the coalition as {i, j, ...}.
func (c Coalition) String() string {
	ids := c.Members()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// EnumerateSubsets calls fn for every subset of the grand coalition of n
// players, including the empty and grand coalitions (2^n calls).
// Enumeration stops early if fn returns false.
func EnumerateSubsets(n int, fn func(Coalition) bool) {
	if n < 0 || n > MaxPlayers {
		return
	}
	total := Coalition(1) << uint(n)
	for s := Coalition(0); s < total; s++ {
		if !fn(s) {
			return
		}
	}
}

// EnumerateSubcoalitions calls fn for every subset of base (including the
// empty set and base itself), using the standard submask-walk trick.
func EnumerateSubcoalitions(base Coalition, fn func(Coalition) bool) {
	sub := base
	for {
		if !fn(sub) {
			return
		}
		if sub == 0 {
			return
		}
		sub = (sub - 1) & base
	}
}
