package vm

import (
	"testing"
	"testing/quick"
)

func TestGrandCoalition(t *testing.T) {
	if GrandCoalition(0) != 0 {
		t.Fatal("grand of 0 players must be empty")
	}
	if GrandCoalition(-1) != 0 {
		t.Fatal("grand of negative players must be empty")
	}
	g := GrandCoalition(3)
	if g.Size() != 3 || !g.Contains(0) || !g.Contains(2) || g.Contains(3) {
		t.Fatalf("GrandCoalition(3) = %s", g)
	}
}

func TestCoalitionOps(t *testing.T) {
	c := CoalitionOf(1, 3)
	if c.Size() != 2 {
		t.Fatalf("Size = %d", c.Size())
	}
	if !c.Contains(1) || c.Contains(0) {
		t.Fatal("Contains wrong")
	}
	c2 := c.With(0)
	if !c2.Contains(0) || c2.Size() != 3 {
		t.Fatal("With broken")
	}
	if c.Contains(0) {
		t.Fatal("With must not mutate the receiver")
	}
	c3 := c2.Without(3)
	if c3.Contains(3) || c3.Size() != 2 {
		t.Fatal("Without broken")
	}
	if !EmptyCoalition.IsEmpty() || c.IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
	members := c.Members()
	if len(members) != 2 || members[0] != 1 || members[1] != 3 {
		t.Fatalf("Members = %v", members)
	}
	if c.String() != "{1,3}" {
		t.Fatalf("String = %q", c.String())
	}
	if EmptyCoalition.String() != "{}" {
		t.Fatalf("empty String = %q", EmptyCoalition.String())
	}
}

func TestSubsetOf(t *testing.T) {
	a := CoalitionOf(0, 2)
	b := CoalitionOf(0, 1, 2)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if !EmptyCoalition.SubsetOf(a) {
		t.Fatal("empty is a subset of everything")
	}
	if !a.SubsetOf(a) {
		t.Fatal("every set is a subset of itself")
	}
}

func TestEnumerateSubsets(t *testing.T) {
	var seen []Coalition
	EnumerateSubsets(3, func(c Coalition) bool {
		seen = append(seen, c)
		return true
	})
	if len(seen) != 8 {
		t.Fatalf("enumerated %d subsets, want 8", len(seen))
	}
	if seen[0] != EmptyCoalition || seen[7] != GrandCoalition(3) {
		t.Fatal("enumeration order wrong")
	}

	count := 0
	EnumerateSubsets(3, func(Coalition) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop after %d", count)
	}

	EnumerateSubsets(-1, func(Coalition) bool {
		t.Fatal("negative n must not enumerate")
		return true
	})
	EnumerateSubsets(MaxPlayers+1, func(Coalition) bool {
		t.Fatal("oversize n must not enumerate")
		return true
	})
}

func TestEnumerateSubcoalitions(t *testing.T) {
	base := CoalitionOf(0, 2)
	var seen []Coalition
	EnumerateSubcoalitions(base, func(c Coalition) bool {
		seen = append(seen, c)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("enumerated %d, want 4", len(seen))
	}
	for _, c := range seen {
		if !c.SubsetOf(base) {
			t.Fatalf("%s is not a subset of %s", c, base)
		}
	}
	// Early stop.
	count := 0
	EnumerateSubcoalitions(base, func(Coalition) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop after %d", count)
	}
}

// Property: Members/CoalitionOf round-trip.
func TestCoalitionRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		c := Coalition(raw & (1<<MaxPlayers - 1))
		return CoalitionOf(c.Members()...) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Size equals the number of members; With/Without invert.
func TestCoalitionWithWithoutProperty(t *testing.T) {
	f := func(raw uint32, idRaw uint8) bool {
		c := Coalition(raw & (1<<MaxPlayers - 1))
		id := ID(int(idRaw) % MaxPlayers)
		if c.Size() != len(c.Members()) {
			return false
		}
		if c.Contains(id) {
			return c.Without(id).With(id) == c
		}
		return c.With(id).Without(id) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
