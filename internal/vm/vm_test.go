package vm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestStateValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       State
		wantErr bool
	}{
		{name: "zero", s: State{}},
		{name: "full", s: State{1, 1, 1}},
		{name: "mid", s: State{0.5, 0.25, 0.1}},
		{name: "negative", s: State{-0.1, 0, 0}, wantErr: true},
		{name: "above one", s: State{1.1, 0, 0}, wantErr: true},
		{name: "nan", s: State{math.NaN(), 0, 0}, wantErr: true},
		{name: "inf", s: State{0, math.Inf(1), 0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.s.Validate()
			if tt.wantErr && !errors.Is(err, ErrStateRange) {
				t.Fatalf("want ErrStateRange, got %v", err)
			}
			if !tt.wantErr && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestStateAdd(t *testing.T) {
	a := State{0.5, 0.2, 0.1}
	b := State{0.7, 0.3, 0.0}
	got := a.Add(b)
	want := State{1.2, 0.5, 0.1}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Add[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestStateQuantize(t *testing.T) {
	s := State{0.123, 0.456, 0.789}
	q := s.Quantize(0.01)
	want := State{0.12, 0.46, 0.79}
	for i := range q {
		if math.Abs(q[i]-want[i]) > 1e-12 {
			t.Fatalf("Quantize[%d] = %g, want %g", i, q[i], want[i])
		}
	}
	if s.Quantize(0) != s {
		t.Fatal("zero resolution must be identity")
	}
	if s.Quantize(-1) != s {
		t.Fatal("negative resolution must be identity")
	}
}

func TestStateIsIdleVec(t *testing.T) {
	if !(State{}).IsIdle() {
		t.Fatal("zero state must be idle")
	}
	if (State{0.1, 0, 0}).IsIdle() {
		t.Fatal("busy state must not be idle")
	}
	v := (State{0.1, 0.2, 0.3}).Vec()
	if len(v) != int(NumComponents) || v[0] != 0.1 || v[2] != 0.3 {
		t.Fatalf("Vec = %v", v)
	}
}

func TestComponentString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "memory" || DiskIO.String() != "diskio" {
		t.Fatal("component names wrong")
	}
	if Component(99).String() == "" {
		t.Fatal("unknown component must still render")
	}
}

func TestPaperCatalog(t *testing.T) {
	c := PaperCatalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c) != 4 {
		t.Fatalf("catalog size = %d", len(c))
	}
	vcpus := []int{1, 2, 4, 8}
	for i, tt := range c {
		if tt.VCPUs != vcpus[i] {
			t.Fatalf("type %d vCPUs = %d, want %d", i, tt.VCPUs, vcpus[i])
		}
	}
	if _, err := c.ByID(TypeID(4)); err == nil {
		t.Fatal("want error for unknown type")
	}
	if _, err := c.ByID(TypeID(-1)); err == nil {
		t.Fatal("want error for negative type")
	}
}

func TestCatalogValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		c    Catalog
	}{
		{name: "sparse ids", c: Catalog{{ID: 1, Name: "a", VCPUs: 1, MemoryGB: 1, DiskGB: 1}}},
		{name: "zero vcpus", c: Catalog{{ID: 0, Name: "a", VCPUs: 0, MemoryGB: 1, DiskGB: 1}}},
		{name: "zero memory", c: Catalog{{ID: 0, Name: "a", VCPUs: 1, MemoryGB: 0, DiskGB: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.c.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestNewSet(t *testing.T) {
	set, err := NewSet(PaperCatalog(), []VM{
		{Name: "a", Type: 0},
		{Type: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("Len = %d", set.Len())
	}
	v, err := set.VM(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "vm1" {
		t.Fatalf("default name = %q", v.Name)
	}
	if v.ID != 1 {
		t.Fatalf("assigned ID = %d", v.ID)
	}
	typ, err := set.TypeOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if typ.VCPUs != 8 {
		t.Fatalf("TypeOf vCPUs = %d", typ.VCPUs)
	}
	if _, err := set.VM(5); err == nil {
		t.Fatal("want out-of-range error")
	}
	all := set.All()
	all[0].Name = "mutated"
	orig, _ := set.VM(0)
	if orig.Name != "a" {
		t.Fatal("All must copy")
	}
}

func TestNewSetErrors(t *testing.T) {
	if _, err := NewSet(PaperCatalog(), []VM{{Type: 9}}); err == nil {
		t.Fatal("want unknown type error")
	}
	tooMany := make([]VM, MaxVMs+1)
	if _, err := NewSet(PaperCatalog(), tooMany); err == nil {
		t.Fatal("want VM-limit error")
	}
	// Sets past the coalition-bitmask cap are legal (symmetry-collapsed
	// estimation handles them); only MaxVMs rejects.
	wide := make([]VM, MaxPlayers+1)
	if _, err := NewSet(PaperCatalog(), wide); err != nil {
		t.Fatalf("set of %d VMs must be allowed: %v", MaxPlayers+1, err)
	}
}

func TestTypesPresent(t *testing.T) {
	set, err := NewSet(PaperCatalog(), []VM{
		{Type: 0}, {Type: 0}, {Type: 2}, {Type: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := set.TypesPresent(CoalitionOf(0, 1, 2))
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("TypesPresent = %v", got)
	}
	if len(set.TypesPresent(EmptyCoalition)) != 0 {
		t.Fatal("empty coalition has no types")
	}
}

// Property: quantized entries are multiples of the resolution and stay
// within one half-step of the input.
func TestStateQuantizeProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		clip := func(x float64) float64 {
			x = math.Abs(math.Mod(x, 1))
			if math.IsNaN(x) {
				return 0
			}
			return x
		}
		s := State{clip(a), clip(b), clip(c)}
		q := s.Quantize(0.01)
		for i := range q {
			if math.Abs(q[i]-s[i]) > 0.005+1e-12 {
				return false
			}
			steps := q[i] / 0.01
			if math.Abs(steps-math.Round(steps)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
