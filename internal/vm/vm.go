// Package vm defines the domain model of the power-accounting game:
// virtual machines, their fixed-resource types (the paper's Table IV),
// per-component state vectors c_i, and coalitions of VMs represented as
// bitmasks over a VM set N.
package vm

import (
	"errors"
	"fmt"
	"math"
)

// Component indexes the entries of a state vector c_i. The paper's
// evaluation uses CPU utilization only (Sec. VI-C) but the method and this
// implementation carry memory and disk states as well.
type Component int

// Components of a VM state vector, in vector order.
const (
	CPU           Component = iota // normalized CPU utilization, 0..1 per vCPU aggregate
	Memory                         // normalized resident-memory fraction, 0..1
	DiskIO                         // normalized disk I/O rate, 0..1
	NumComponents                  // number of tracked components (k in the paper)
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case DiskIO:
		return "diskio"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// State is a VM component-state vector c_i = [c_i^1 ... c_i^k].
// Entries are normalized to [0, 1]. For a multi-vCPU VM the CPU entry is
// the mean utilization across its vCPUs (so a 4-vCPU VM fully busy has
// CPU state 1.0; the per-type power models absorb the vCPU count).
type State [NumComponents]float64

// ErrStateRange is returned when a state entry is outside [0, 1] or NaN.
var ErrStateRange = errors.New("vm: state entry outside [0,1]")

// Validate checks all entries are finite and within [0, 1].
func (s State) Validate() error {
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return fmt.Errorf("%w: %s=%g", ErrStateRange, Component(i), v)
		}
	}
	return nil
}

// Add returns the component-wise sum of s and t. Sums are used to build
// VHC aggregate vectors v_j = Σ c_i and may exceed 1.
func (s State) Add(t State) State {
	var out State
	for i := range s {
		out[i] = s[i] + t[i]
	}
	return out
}

// Quantize rounds every entry to the given resolution (e.g. 0.01, the
// paper's normalizing resolution). A non-positive resolution is a no-op.
func (s State) Quantize(resolution float64) State {
	if resolution <= 0 {
		return s
	}
	var out State
	for i, v := range s {
		out[i] = math.Round(v/resolution) * resolution
	}
	return out
}

// IsIdle reports whether every component is (quantized-)zero.
func (s State) IsIdle() bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// Vec returns the state as a plain slice (a copy), in Component order.
func (s State) Vec() []float64 {
	out := make([]float64, NumComponents)
	copy(out, s[:])
	return out
}

// TypeID identifies a VM type (VHC class). Types are dense small integers.
type TypeID int

// Type is a fixed VM configuration, mirroring the paper's Table IV.
type Type struct {
	ID       TypeID
	Name     string
	VCPUs    int
	MemoryGB int
	DiskGB   int
}

// Catalog is the ordered set of VM types available on a platform. The
// paper's evaluation uses four types (Table IV); datacenters keep this
// small ("no more than 5 fixed configuration options").
type Catalog []Type

// PaperCatalog returns the paper's Table IV VM types.
func PaperCatalog() Catalog {
	return Catalog{
		{ID: 0, Name: "VM1", VCPUs: 1, MemoryGB: 2, DiskGB: 20},
		{ID: 1, Name: "VM2", VCPUs: 2, MemoryGB: 4, DiskGB: 40},
		{ID: 2, Name: "VM3", VCPUs: 4, MemoryGB: 8, DiskGB: 80},
		{ID: 3, Name: "VM4", VCPUs: 8, MemoryGB: 14, DiskGB: 100},
	}
}

// Validate checks the catalog IDs are dense 0..len-1 and configs sane.
func (c Catalog) Validate() error {
	for i, t := range c {
		if int(t.ID) != i {
			return fmt.Errorf("vm: catalog entry %d has ID %d, want dense IDs", i, t.ID)
		}
		if t.VCPUs <= 0 {
			return fmt.Errorf("vm: type %s has %d vCPUs", t.Name, t.VCPUs)
		}
		if t.MemoryGB <= 0 || t.DiskGB <= 0 {
			return fmt.Errorf("vm: type %s has non-positive memory/disk", t.Name)
		}
	}
	return nil
}

// ByID returns the type with the given ID.
func (c Catalog) ByID(id TypeID) (Type, error) {
	if int(id) < 0 || int(id) >= len(c) {
		return Type{}, fmt.Errorf("vm: unknown type ID %d (catalog has %d types)", id, len(c))
	}
	return c[id], nil
}

// ID identifies a VM instance within a set N. IDs are dense indices
// 0..n-1 so coalitions can be bitmasks.
type ID int

// VM is a virtual machine instance: identity plus type.
type VM struct {
	ID   ID
	Name string
	Type TypeID
}

// Set is the ordered VM set N = {0..n-1} of a power-accounting game.
type Set struct {
	vms     []VM
	catalog Catalog
}

// NewSet builds a VM set over the given catalog. VM IDs are assigned by
// position. It validates that every VM references a catalog type.
func NewSet(catalog Catalog, vms []VM) (*Set, error) {
	if err := catalog.Validate(); err != nil {
		return nil, err
	}
	if len(vms) > MaxVMs {
		return nil, fmt.Errorf("vm: %d VMs exceeds the %d-VM limit", len(vms), MaxVMs)
	}
	out := make([]VM, len(vms))
	for i, v := range vms {
		if _, err := catalog.ByID(v.Type); err != nil {
			return nil, fmt.Errorf("vm %q: %w", v.Name, err)
		}
		v.ID = ID(i)
		if v.Name == "" {
			v.Name = fmt.Sprintf("vm%d", i)
		}
		out[i] = v
	}
	return &Set{vms: out, catalog: catalog}, nil
}

// Len returns n, the number of VMs.
func (s *Set) Len() int { return len(s.vms) }

// Append grows the set by one VM (hot-plug) and returns its dense ID.
// The new VM's ID is assigned by position like NewSet's. Growing the set
// invalidates anything compiled against the old n (coalition masks over
// the old width stay valid — they simply never contain the new member) —
// callers owning derived structures (worth plans, scratch tables) must
// rebuild them. Not safe concurrently with readers; mutate only between
// estimation ticks.
func (s *Set) Append(v VM) (ID, error) {
	if len(s.vms) >= MaxVMs {
		return 0, fmt.Errorf("vm: set already at the %d-VM limit", MaxVMs)
	}
	if _, err := s.catalog.ByID(v.Type); err != nil {
		return 0, fmt.Errorf("vm %q: %w", v.Name, err)
	}
	v.ID = ID(len(s.vms))
	if v.Name == "" {
		v.Name = fmt.Sprintf("vm%d", len(s.vms))
	}
	s.vms = append(s.vms, v)
	return v.ID, nil
}

// Catalog returns the type catalog backing the set.
func (s *Set) Catalog() Catalog { return s.catalog }

// VM returns the VM with the given ID.
func (s *Set) VM(id ID) (VM, error) {
	if int(id) < 0 || int(id) >= len(s.vms) {
		return VM{}, fmt.Errorf("vm: id %d out of range [0,%d)", id, len(s.vms))
	}
	return s.vms[id], nil
}

// All returns a copy of the VM list in ID order.
func (s *Set) All() []VM {
	out := make([]VM, len(s.vms))
	copy(out, s.vms)
	return out
}

// TypeOf returns the full type of the VM with the given ID.
func (s *Set) TypeOf(id ID) (Type, error) {
	v, err := s.VM(id)
	if err != nil {
		return Type{}, err
	}
	return s.catalog.ByID(v.Type)
}

// TypesPresent returns the set of distinct type IDs used by members of
// coalition mask, in ascending order.
func (s *Set) TypesPresent(mask Coalition) []TypeID {
	seen := make(map[TypeID]bool, len(s.catalog))
	for i := 0; i < len(s.vms); i++ {
		if mask.Contains(ID(i)) {
			seen[s.vms[i].Type] = true
		}
	}
	out := make([]TypeID, 0, len(seen))
	for t := TypeID(0); int(t) < len(s.catalog); t++ {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}
