package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

func TestArrayValidate(t *testing.T) {
	if err := DefaultArray().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Array{
		{IdlePower: -1, StreamPower: 1, Knee: 1},
		{StreamPower: 0, Knee: 1},
		{StreamPower: 1, Knee: 0},
		{StreamPower: 1, Knee: 1, SaturationSlope: 1},
		{StreamPower: 1, Knee: 1, SaturationSlope: -0.1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Fatalf("array %d: want validation error", i)
		}
	}
}

func TestDynamicPower(t *testing.T) {
	a := DefaultArray() // 6 W/stream, knee 2, slope 4
	tests := []struct {
		name string
		ios  []float64
		want float64
	}{
		{name: "no clients", ios: nil, want: 0},
		{name: "one stream", ios: []float64{1}, want: 6},
		{name: "two streams at knee", ios: []float64{1, 1}, want: 12},
		{name: "three streams saturated", ios: []float64{1, 1, 1}, want: 18 - 4},
		{name: "fractional", ios: []float64{0.5, 0.25}, want: 4.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := a.DynamicPower(tt.ios)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("DynamicPower = %g, want %g", got, tt.want)
			}
		})
	}
	if _, err := a.DynamicPower([]float64{1.5}); err == nil {
		t.Fatal("want intensity range error")
	}
}

func TestStorageGameMatchesDynamicPower(t *testing.T) {
	a := DefaultArray()
	ios := []float64{1, 0.8, 0.6}
	worth, err := a.StorageGame(ios)
	if err != nil {
		t.Fatal(err)
	}
	grand, err := a.DynamicPower(ios)
	if err != nil {
		t.Fatal(err)
	}
	if got := worth(vm.GrandCoalition(3)); math.Abs(got-grand) > 1e-12 {
		t.Fatalf("grand worth = %g, want %g", got, grand)
	}
	if got := worth(vm.EmptyCoalition); got != 0 {
		t.Fatalf("empty worth = %g", got)
	}
	// The worth function must capture the original slice, not alias it.
	ios[0] = 0
	if got := worth(vm.CoalitionOf(0)); math.Abs(got-6) > 1e-12 {
		t.Fatalf("worth aliases caller slice: %g", got)
	}
}

func TestAccountTwoGames(t *testing.T) {
	// Three VMs: all compute; only 0 and 1 have remote disks.
	compute := func(s vm.Coalition) float64 { return 10 * float64(s.Size()) }
	a := DefaultArray()
	ios := []float64{1, 1, 0}
	att, err := Account(3, compute, a, ios)
	if err != nil {
		t.Fatal(err)
	}
	// Dummy in the storage game: VM2 streams nothing.
	if att.Storage[2] != 0 {
		t.Fatalf("diskless VM storage share = %g", att.Storage[2])
	}
	// Symmetric streamers split the array power.
	if math.Abs(att.Storage[0]-att.Storage[1]) > 1e-12 {
		t.Fatalf("streamers got %g and %g", att.Storage[0], att.Storage[1])
	}
	arrayPower, err := a.DynamicPower(ios)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(att.Storage[0]+att.Storage[1]-arrayPower) > 1e-9 {
		t.Fatal("storage shares must sum to the array power")
	}
	// Totals are the additive two-game sum.
	if got := att.Total(0); math.Abs(got-(10+att.Storage[0])) > 1e-9 {
		t.Fatalf("Total(0) = %g", got)
	}
	if got := att.Total(2); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Total(2) = %g", got)
	}
}

func TestAccountValidation(t *testing.T) {
	if _, err := Account(2, nil, DefaultArray(), []float64{0, 0}); err == nil {
		t.Fatal("want nil-worth error")
	}
	worth := func(vm.Coalition) float64 { return 0 }
	if _, err := Account(2, worth, DefaultArray(), []float64{0}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := Account(2, worth, DefaultArray(), []float64{0, 2}); err == nil {
		t.Fatal("want intensity error")
	}
}

func TestVerifyAdditivity(t *testing.T) {
	compute := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 3*size*(size-1)/2 // concave compute game
	}
	dev, err := VerifyAdditivity(4, compute, DefaultArray(), []float64{1, 0.7, 0.9, 0}, 1e-9)
	if err != nil {
		t.Fatalf("additivity must hold: %v (dev %g)", err, dev)
	}
	if dev > 1e-9 {
		t.Fatalf("deviation = %g", dev)
	}
}

// Property: saturation makes late joiners cheaper, so every storage
// share is at most StreamPower·io_i, and shares are always non-negative
// and efficient.
func TestStorageShapleyProperty(t *testing.T) {
	a := DefaultArray()
	f := func(r1, r2, r3, r4 float64) bool {
		clip := func(x float64) float64 {
			x = math.Abs(math.Mod(x, 1))
			if math.IsNaN(x) {
				return 0
			}
			return x
		}
		ios := []float64{clip(r1), clip(r2), clip(r3), clip(r4)}
		att, err := Account(4, func(vm.Coalition) float64 { return 0 }, a, ios)
		if err != nil {
			return false
		}
		total, err := a.DynamicPower(ios)
		if err != nil {
			return false
		}
		var sum float64
		for i, share := range att.Storage {
			if share < -1e-9 {
				return false
			}
			if share > a.StreamPower*ios[i]+1e-9 {
				return false
			}
			sum += share
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
