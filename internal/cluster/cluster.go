// Package cluster extends the power-accounting game beyond one physical
// machine — the paper's Sec. VIII "accounting other power consumption"
// future work. A VM on a compute server may be assigned a logic disk on a
// shared storage array; by the Additivity axiom its total power is the
// sum of its Shapley shares in two independent games: the compute game
// (CPU/memory on the local machine) and the storage game (I/O streams on
// the array).
//
// The storage array's power model is deliberately non-additive —
// aggregate throughput saturates the array's bandwidth, so a stream's
// marginal power depends on who else is streaming — which is exactly the
// interaction structure that makes the Shapley value the right
// disaggregation rule there too.
package cluster

import (
	"errors"
	"fmt"

	"vmpower/internal/shapley"
	"vmpower/internal/vm"
)

// Array models a shared disk array's power behaviour. Its dynamic power
// under per-client I/O intensities io_i ∈ [0, 1] is
//
//	P = StreamPower·Σ io_i − SaturationSlope·max(0, Σ io_i − Knee)
//
// Below the knee every stream pays full power (seeks, controller work);
// past it the array is bandwidth-bound and additional load is cheaper —
// a concave worth function with genuinely interacting players.
type Array struct {
	// Name identifies the array.
	Name string
	// IdlePower is the array's idle draw in watts (spindles, controller).
	IdlePower float64
	// StreamPower is the marginal power of one unit of I/O intensity
	// below the saturation knee, in watts.
	StreamPower float64
	// Knee is the aggregate intensity at which bandwidth saturates.
	Knee float64
	// SaturationSlope is the power discount per unit of aggregate
	// intensity beyond the knee (0 <= slope < StreamPower).
	SaturationSlope float64
}

// Validate checks the array model.
func (a Array) Validate() error {
	switch {
	case a.IdlePower < 0:
		return fmt.Errorf("cluster: array %q has negative idle power", a.Name)
	case a.StreamPower <= 0:
		return fmt.Errorf("cluster: array %q has non-positive stream power", a.Name)
	case a.Knee <= 0:
		return fmt.Errorf("cluster: array %q has non-positive knee", a.Name)
	case a.SaturationSlope < 0 || a.SaturationSlope >= a.StreamPower:
		return fmt.Errorf("cluster: array %q saturation slope %g outside [0, %g)", a.Name, a.SaturationSlope, a.StreamPower)
	}
	return nil
}

// DefaultArray returns a 12-disk array profile: 45 W idle, 6 W per
// stream, saturating at an aggregate intensity of 2.0.
func DefaultArray() Array {
	return Array{Name: "array-12d", IdlePower: 45, StreamPower: 6, Knee: 2, SaturationSlope: 4}
}

// DynamicPower returns the array's power above idle for the given
// per-client I/O intensities.
func (a Array) DynamicPower(ios []float64) (float64, error) {
	var sum float64
	for i, io := range ios {
		if io < 0 || io > 1 {
			return 0, fmt.Errorf("cluster: client %d intensity %g outside [0,1]", i, io)
		}
		sum += io
	}
	p := a.StreamPower * sum
	if sum > a.Knee {
		p -= a.SaturationSlope * (sum - a.Knee)
	}
	if p < 0 {
		p = 0
	}
	return p, nil
}

// StorageGame builds the storage game's worth function over n clients
// with fixed I/O intensities: v(S) is the array's dynamic power when
// exactly the members of S stream.
func (a Array) StorageGame(ios []float64) (shapley.WorthFunc, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	for i, io := range ios {
		if io < 0 || io > 1 {
			return nil, fmt.Errorf("cluster: client %d intensity %g outside [0,1]", i, io)
		}
	}
	intensities := append([]float64(nil), ios...)
	return func(s vm.Coalition) float64 {
		var sum float64
		for _, id := range s.Members() {
			sum += intensities[int(id)]
		}
		p := a.StreamPower * sum
		if sum > a.Knee {
			p -= a.SaturationSlope * (sum - a.Knee)
		}
		if p < 0 {
			p = 0
		}
		return p
	}, nil
}

// Attribution is a per-VM two-part power account.
type Attribution struct {
	// Compute is the VM's Shapley share of the compute machine's power.
	Compute []float64
	// Storage is the VM's Shapley share of the array's power (zero for
	// VMs with no remote disk).
	Storage []float64
}

// Total returns VM i's combined power — the Additivity axiom's sum of
// the two games' payoffs.
func (at *Attribution) Total(i vm.ID) float64 {
	return at.Compute[int(i)] + at.Storage[int(i)]
}

// Account computes the two-game attribution for n VMs: computeWorth is
// the compute game (from the machine's estimator or a ground-truth
// oracle) and storageIOs gives each VM's remote-I/O intensity (0 for VMs
// without a remote disk — the Dummy axiom then guarantees a zero storage
// share). Both games are solved exactly.
func Account(n int, computeWorth shapley.WorthFunc, array Array, storageIOs []float64) (*Attribution, error) {
	if computeWorth == nil {
		return nil, errors.New("cluster: nil compute worth")
	}
	if len(storageIOs) != n {
		return nil, fmt.Errorf("cluster: %d I/O intensities for %d VMs", len(storageIOs), n)
	}
	computePhi, err := shapley.Exact(n, computeWorth)
	if err != nil {
		return nil, fmt.Errorf("cluster: compute game: %w", err)
	}
	storageWorth, err := array.StorageGame(storageIOs)
	if err != nil {
		return nil, err
	}
	storagePhi, err := shapley.Exact(n, storageWorth)
	if err != nil {
		return nil, fmt.Errorf("cluster: storage game: %w", err)
	}
	return &Attribution{Compute: computePhi, Storage: storagePhi}, nil
}

// VerifyAdditivity checks the axiom numerically for the two games: the
// Shapley value of the combined game v(S) = v_c(S) + v_s(S) must equal
// the sum of the per-game values within tol. It returns the maximum
// per-VM deviation.
func VerifyAdditivity(n int, computeWorth shapley.WorthFunc, array Array, storageIOs []float64, tol float64) (float64, error) {
	storageWorth, err := array.StorageGame(storageIOs)
	if err != nil {
		return 0, err
	}
	return shapley.CheckAdditivity(n, computeWorth, storageWorth, tol)
}
