// Package scenario drives a fleet.Fleet through a scripted VM lifecycle:
// power-on/off edges, live migrations, maintenance drains, and seeded
// bursty autoscaling — the churn real datacenters have and the paper's
// fixed-roster accounting must survive without losing or double-counting
// a single joule.
//
// The engine is deterministic: events come pre-sorted from the DSL
// parser (internal/cliutil), autoscale targets come from one seeded
// math/rand stream advanced a fixed number of draws per tick, and every
// mutation happens between fleet Steps (the fleet mutator contract), so
// a scenario run is a pure function of (fleet seed, scenario, engine
// seed) at any Parallelism.
package scenario

import (
	"fmt"
	"math/rand"

	"vmpower/internal/cliutil"
	"vmpower/internal/fleet"
)

// Action is one engine decision: a scripted event applied (or refused)
// before a tick, or an autoscale reconciliation step.
type Action struct {
	// Tick is the fleet tick the action preceded (== Tick.Tick of the
	// Step that followed).
	Tick int
	// Op is the event kind (cliutil.Scenario* vocabulary; autoscale
	// reconciliations use "autoscale_up" / "autoscale_down").
	Op string
	// Subject is the VM or host the action touched.
	Subject string
	// Detail narrates arguments ("-> host 2 copy=3").
	Detail string
	// Err is the refusal reason when the fleet rejected the action ("" on
	// success). A refusal does not stop the scenario: chaos tests
	// deliberately race events against quarantine.
	Err string
}

// GroupStatus is one autoscale group's public state.
type GroupStatus struct {
	Prefix   string
	Min, Max int
	Target   int
	Running  int
	Members  int
}

// Status is the engine's public progress view.
type Status struct {
	// Events and Applied count scripted events total and applied so far;
	// Refused counts events the fleet rejected.
	Events  int
	Applied int
	Refused int
	// NextTick is the tick of the next pending scripted event (0 when the
	// script is exhausted).
	NextTick int
	// Groups are the active autoscale groups in activation order.
	Groups []GroupStatus
}

type group struct {
	prefix   string
	min, max int
	tmpl     fleet.VMRequest
	target   int
	seq      int // scale-out twin counter, monotonic
}

// Engine applies a parsed scenario to a fleet, one tick at a time.
type Engine struct {
	f       *fleet.Fleet
	events  []cliutil.ScenarioEvent
	next    int
	rng     *rand.Rand
	groups  []*group
	applied int
	refused int
	log     []Action
}

// New builds an engine over a parsed scenario. Host indices referenced
// by drain/undrain/migrate/hotplug events are validated against the
// fleet up front; VM names are not (events may target VMs an earlier
// hotplug creates). seed drives the autoscale burst stream only.
func New(f *fleet.Fleet, events []cliutil.ScenarioEvent, seed int64) (*Engine, error) {
	for _, ev := range events {
		if ev.Host >= f.Hosts() {
			return nil, fmt.Errorf("scenario: event %s@%d targets host %d, fleet has %d", ev.Kind, ev.Tick, ev.Host, f.Hosts())
		}
		if ev.Dest >= f.Hosts() {
			return nil, fmt.Errorf("scenario: event %s@%d targets host %d, fleet has %d", ev.Kind, ev.Tick, ev.Dest, f.Hosts())
		}
	}
	return &Engine{f: f, events: events, rng: rand.New(rand.NewSource(seed))}, nil
}

// Apply runs every scripted event due before the next fleet Step (those
// with Tick == fleet.Ticks()+1) and one autoscale reconciliation pass,
// returning the actions taken. Call exactly once before each Step; the
// Step method does both.
func (e *Engine) Apply() []Action {
	tick := e.f.Ticks() + 1
	mark := len(e.log)
	for e.next < len(e.events) && e.events[e.next].Tick <= tick {
		ev := e.events[e.next]
		e.next++
		e.applyEvent(tick, ev)
	}
	e.autoscale(tick)
	return e.log[mark:]
}

// Step applies due events, then advances the fleet one tick.
func (e *Engine) Step() (*fleet.Tick, error) {
	e.Apply()
	return e.f.Step()
}

// Run performs n engine steps, invoking fn after each (false stops
// early), mirroring fleet.Run.
func (e *Engine) Run(n int, fn func(*fleet.Tick) bool) error {
	for i := 0; i < n; i++ {
		t, err := e.Step()
		if err != nil {
			return err
		}
		if fn != nil && !fn(t) {
			return nil
		}
	}
	return nil
}

// Done reports whether every scripted event has been applied (autoscale
// groups keep reconciling forever).
func (e *Engine) Done() bool { return e.next >= len(e.events) }

// Log returns every action taken so far, in application order.
func (e *Engine) Log() []Action { return append([]Action(nil), e.log...) }

// Status returns the engine's progress view.
func (e *Engine) Status() Status {
	s := Status{Events: len(e.events), Applied: e.applied, Refused: e.refused}
	if e.next < len(e.events) {
		s.NextTick = e.events[e.next].Tick
	}
	for _, g := range e.groups {
		gs := GroupStatus{Prefix: g.prefix, Min: g.min, Max: g.max, Target: g.target}
		for _, name := range e.members(g) {
			gs.Members++
			if running, err := e.f.VMRunning(name); err == nil && running {
				gs.Running++
			}
		}
		s.Groups = append(s.Groups, gs)
	}
	return s
}

func (e *Engine) record(tick int, op, subject, detail string, err error) {
	a := Action{Tick: tick, Op: op, Subject: subject, Detail: detail}
	if err != nil {
		a.Err = err.Error()
		e.refused++
	} else {
		e.applied++
	}
	e.log = append(e.log, a)
}

func (e *Engine) applyEvent(tick int, ev cliutil.ScenarioEvent) {
	switch ev.Kind {
	case cliutil.ScenarioPowerOn:
		e.record(tick, ev.Kind, ev.Subject, "", e.f.StartVM(ev.Subject))
	case cliutil.ScenarioPowerOff:
		e.record(tick, ev.Kind, ev.Subject, "", e.f.StopVM(ev.Subject))
	case cliutil.ScenarioMigrate:
		detail := fmt.Sprintf("-> host %d copy=%d", ev.Dest, ev.CopyTicks)
		e.record(tick, ev.Kind, ev.Subject, detail, e.f.MigrateVM(ev.Subject, ev.Dest, ev.CopyTicks))
	case cliutil.ScenarioHotplug:
		req := fleet.VMRequest{
			Name: ev.Subject, Tenant: ev.Tenant, Type: ev.Type,
			Workload: ev.Workload, WorkloadSeed: ev.WorkloadSeed,
		}
		detail := fmt.Sprintf("host %d tenant=%s", ev.Dest, ev.Tenant)
		e.record(tick, ev.Kind, ev.Subject, detail, e.f.AddVM(ev.Dest, req))
	case cliutil.ScenarioRemove:
		e.record(tick, ev.Kind, ev.Subject, "", e.f.RemoveVM(ev.Subject))
	case cliutil.ScenarioDrain:
		detail := fmt.Sprintf("copy=%d", ev.CopyTicks)
		e.record(tick, ev.Kind, ev.Subject, detail, e.f.DrainHost(ev.Host, ev.CopyTicks))
	case cliutil.ScenarioUndrain:
		e.record(tick, ev.Kind, ev.Subject, "", e.f.UndrainHost(ev.Host))
	case cliutil.ScenarioAutoscale:
		e.record(tick, ev.Kind, "grp:"+ev.Subject, fmt.Sprintf("min=%d max=%d", ev.Min, ev.Max), e.activateGroup(ev))
	}
}

// activateGroup creates (or retunes) the autoscale group for a prefix.
// The group's scale-out template is cloned from its first live member,
// so a group needs at least one matching VM when it activates.
func (e *Engine) activateGroup(ev cliutil.ScenarioEvent) error {
	for _, g := range e.groups {
		if g.prefix == ev.Subject {
			g.min, g.max = ev.Min, ev.Max
			return nil
		}
	}
	g := &group{prefix: ev.Subject, min: ev.Min, max: ev.Max, target: -1}
	members := e.members(g)
	if len(members) == 0 {
		return fmt.Errorf("scenario: autoscale group %q has no member VMs", ev.Subject)
	}
	tmpl, err := e.f.VMSpec(members[0])
	if err != nil {
		return err
	}
	g.tmpl = tmpl
	e.groups = append(e.groups, g)
	return nil
}

// members lists the live VMs in a group, admission order.
func (e *Engine) members(g *group) []string {
	var out []string
	for _, name := range e.f.VMNames() {
		if len(name) >= len(g.prefix) && name[:len(g.prefix)] == g.prefix {
			out = append(out, name)
		}
	}
	return out
}

// autoscale advances every group one control tick: each group draws the
// same two values from the engine stream whatever happens next (burst
// coin, then a uniform target), so the stream position — and therefore
// every later draw — is independent of fleet state, keeping runs
// bit-identical across Parallelism settings.
func (e *Engine) autoscale(tick int) {
	for _, g := range e.groups {
		burst := e.rng.Float64()
		draw := g.min + e.rng.Intn(g.max-g.min+1)
		if g.target < 0 || burst < 0.4 {
			g.target = draw
		}
		e.reconcile(tick, g)
	}
}

// reconcile moves a group toward its target running count: scale-up
// starts stopped members in admission order, then hot-plugs template
// clones onto the first host that will take one; scale-down stops
// members in reverse admission order. Refusals (drained hosts, no
// capacity anywhere) are logged and retried next tick.
func (e *Engine) reconcile(tick int, g *group) {
	members := e.members(g)
	var running, stopped []string
	for _, name := range members {
		r, err := e.f.VMRunning(name)
		if err != nil {
			continue
		}
		if r {
			running = append(running, name)
		} else {
			stopped = append(stopped, name)
		}
	}
	for len(running) < g.target {
		if len(stopped) > 0 {
			name := stopped[0]
			stopped = stopped[1:]
			if err := e.f.StartVM(name); err != nil {
				e.record(tick, "autoscale_up", name, "start", err)
				continue
			}
			e.record(tick, "autoscale_up", name, "start", nil)
			running = append(running, name)
			continue
		}
		name := fmt.Sprintf("%s-as%d", g.prefix, g.seq)
		g.seq++
		req := g.tmpl
		req.Name = name
		req.WorkloadSeed = g.tmpl.WorkloadSeed + int64(g.seq)
		var err error
		for h := 0; h < e.f.Hosts(); h++ {
			if err = e.f.AddVM(h, req); err == nil {
				e.record(tick, "autoscale_up", name, fmt.Sprintf("hotplug host %d", h), nil)
				running = append(running, name)
				break
			}
		}
		if err != nil {
			e.record(tick, "autoscale_up", name, "hotplug", err)
			return // no host will take a clone this tick; stop trying
		}
	}
	for len(running) > g.target {
		name := running[len(running)-1]
		running = running[:len(running)-1]
		if err := e.f.StopVM(name); err != nil {
			e.record(tick, "autoscale_down", name, "stop", err)
			continue
		}
		e.record(tick, "autoscale_down", name, "stop", nil)
	}
}
