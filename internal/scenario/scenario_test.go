package scenario

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"vmpower/internal/cliutil"
	"vmpower/internal/faults"
	"vmpower/internal/fleet"
)

// conservationTol is the acceptance bar: per-tenant energy must be
// conserved across every lifecycle event to 1e-9 W (and Wh).
const conservationTol = 1e-9

func lifecycleConfig() fleet.Config {
	return fleet.Config{
		Hosts:            3,
		Seed:             11,
		MeterNoise:       0, // noiseless: identities hold to float tolerance
		CalibrationTicks: 6,
		Parallelism:      1,
	}
}

// lifecycleFleet builds the reference 3-host rig:
//
//	host 0: xa1..xa4 (xlarge, full — calibrated for xlarge only)
//	host 1: xb1..xb3 + lg1 + s1..s4 (full — xlarge, large and small classes)
//	host 2: s5, s6 (small class, 30 of 32 vCPUs free)
//
// so migrations have exactly one viable destination (host 2, smalls
// only) and drains of host 1 must mix migration with stop-in-place.
func lifecycleFleet(t *testing.T, cfg fleet.Config) *fleet.Fleet {
	t.Helper()
	reqs := []fleet.VMRequest{
		{Name: "xa1", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 1},
		{Name: "xa2", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 2},
		{Name: "xa3", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 3},
		{Name: "xa4", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 4},
		{Name: "xb1", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 5},
		{Name: "xb2", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 6},
		{Name: "xb3", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 7},
		{Name: "lg1", Tenant: "carol", Type: 2, Workload: "omnetpp", WorkloadSeed: 8},
		{Name: "s1", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 9},
		{Name: "s2", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 10},
		{Name: "s3", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 11},
		{Name: "s4", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 12},
		{Name: "s5", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 13},
		{Name: "s6", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 14},
	}
	f, err := fleet.New(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	place := f.Placement()
	if place["xa1"] != 0 || place["xb1"] != 1 || place["s1"] != 1 || place["s5"] != 2 {
		t.Fatalf("unexpected placement %v", place)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func mustEngine(t *testing.T, f *fleet.Fleet, script string, seed int64) *Engine {
	t.Helper()
	evs, err := cliutil.ParseScenario(script)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(f, evs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runAudited advances the engine n ticks, fails the test on any
// conservation violation at the 1e-9 acceptance bar, and returns the
// tick stream plus the per-tenant energy integral rebuilt independently
// from the ticks (watt-hours). fm, when non-nil, has its episode clock
// advanced each tick.
func runAudited(t *testing.T, e *Engine, f *fleet.Fleet, n int, fm *faults.Meter) ([]*fleet.Tick, map[string]float64) {
	t.Helper()
	dtHours := 1.0 / 3600 // TickInterval defaults to 1 s
	integral := make(map[string]float64)
	var ticks []*fleet.Tick
	for i := 0; i < n; i++ {
		tk, err := e.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
		if problems := f.AuditConservation(tk, conservationTol); len(problems) != 0 {
			t.Fatalf("tick %d: conservation violated:\n  %s", tk.Tick, strings.Join(problems, "\n  "))
		}
		for tenant, w := range tk.PerTenant {
			integral[tenant] += w * dtHours
		}
		ticks = append(ticks, tk)
		if fm != nil {
			fm.NextTick()
		}
	}
	// The fleet's cumulative ledger must match the independent integral:
	// energy follows the VM through every event, none lost, none minted.
	ledger := f.EnergyWhByTenant()
	for tenant, wh := range integral {
		if d := math.Abs(ledger[tenant] - wh); d > conservationTol {
			t.Fatalf("tenant %s: ledger %g Wh, tick integral %g Wh (delta %g)", tenant, ledger[tenant], wh, d)
		}
	}
	for tenant := range ledger {
		if _, ok := integral[tenant]; !ok && ledger[tenant] != 0 {
			t.Fatalf("tenant %s: ledger %g Wh but never appeared in a tick", tenant, ledger[tenant])
		}
	}
	return ticks, integral
}

// eventsOf filters a tick stream's journal down to one type, returning
// "tick/subject" strings.
func eventsOf(ticks []*fleet.Tick, typ string) []string {
	var out []string
	for _, tk := range ticks {
		for _, ev := range tk.Events {
			if ev.Type == typ {
				out = append(out, fmt.Sprintf("%d/%s", tk.Tick, ev.Subject))
			}
		}
	}
	return out
}

// TestPowerCycleConservation: a VM powered off mid-run is an exact dummy
// (φ = 0, not merely small) until powered back on, and tenant energy is
// conserved through both edges.
func TestPowerCycleConservation(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	e := mustEngine(t, f, "s1@3:poweroff,s1@6:poweron", 1)
	ticks, _ := runAudited(t, e, f, 8, nil)

	if got := eventsOf(ticks, fleet.EventPowerOff); !reflect.DeepEqual(got, []string{"3/s1"}) {
		t.Fatalf("poweroff events = %v", got)
	}
	if got := eventsOf(ticks, fleet.EventPowerOn); !reflect.DeepEqual(got, []string{"6/s1"}) {
		t.Fatalf("poweron events = %v", got)
	}
	for _, tk := range ticks {
		w, ok := tk.PerVM["s1"]
		if !ok {
			t.Fatalf("tick %d: s1 unaccounted", tk.Tick)
		}
		off := tk.Tick >= 3 && tk.Tick < 6
		if off && w != 0 {
			t.Fatalf("tick %d: stopped s1 attributed %g W, want exactly 0", tk.Tick, w)
		}
		if !off && w <= 0 {
			t.Fatalf("tick %d: running s1 attributed %g W", tk.Tick, w)
		}
	}
}

// TestMigrationConservation: a live migration double-meters the VM for
// exactly the declared copy window, the ledger carries both components,
// and the audit proves each host's share is counted exactly once.
func TestMigrationConservation(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	e := mustEngine(t, f, "s1@4:migrate:2:3", 1)
	ticks, _ := runAudited(t, e, f, 10, nil)

	if got := eventsOf(ticks, fleet.EventMigrateStart); !reflect.DeepEqual(got, []string{"4/s1"}) {
		t.Fatalf("migrate_start events = %v", got)
	}
	if got := eventsOf(ticks, fleet.EventMigrateFinish); !reflect.DeepEqual(got, []string{"7/s1"}) {
		t.Fatalf("migrate_finish events = %v", got)
	}
	for _, tk := range ticks {
		inWindow := tk.Tick >= 4 && tk.Tick <= 6
		if !inWindow {
			if len(tk.Migrations) != 0 {
				t.Fatalf("tick %d: unexpected ledger entries %+v", tk.Tick, tk.Migrations)
			}
			continue
		}
		if len(tk.Migrations) != 1 {
			t.Fatalf("tick %d: %d ledger entries, want 1", tk.Tick, len(tk.Migrations))
		}
		ms := tk.Migrations[0]
		if ms.Name != "s1" || ms.From != 1 || ms.To != 2 || ms.CopyTicks != 3 {
			t.Fatalf("tick %d: ledger %+v", tk.Tick, ms)
		}
		if want := tk.Tick - 3; ms.CopyTick != want {
			t.Fatalf("tick %d: copy tick %d, want %d", tk.Tick, ms.CopyTick, want)
		}
		if !ms.FromAccounted || !ms.ToAccounted {
			t.Fatalf("tick %d: both sides healthy but ledger %+v", tk.Tick, ms)
		}
		// Both copies genuinely run: both sides attribute real power.
		if ms.FromWatts <= 0 || ms.ToWatts <= 0 {
			t.Fatalf("tick %d: copy window components %g/%g, want both > 0", tk.Tick, ms.FromWatts, ms.ToWatts)
		}
		if d := math.Abs(tk.PerVM["s1"] - (ms.FromWatts + ms.ToWatts)); d > conservationTol {
			t.Fatalf("tick %d: PerVM %g != components %g (delta %g)", tk.Tick, tk.PerVM["s1"], ms.FromWatts+ms.ToWatts, d)
		}
	}
	if got := f.Placement()["s1"]; got != 2 {
		t.Fatalf("s1 on host %d after cutover, want 2", got)
	}
	done, aborted := f.MigrationTotals()
	if done != 1 || aborted != 0 {
		t.Fatalf("migration totals %d/%d, want 1/0", done, aborted)
	}
}

// TestColdMigration: migrating a stopped VM opens no copy window — the
// ledger stays empty and cutover lands on the very next tick.
func TestColdMigration(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	e := mustEngine(t, f, "s1@3:poweroff,s1@5:migrate:2:4", 1)
	ticks, _ := runAudited(t, e, f, 7, nil)

	for _, tk := range ticks {
		if len(tk.Migrations) != 0 {
			t.Fatalf("tick %d: cold migration opened a copy window: %+v", tk.Tick, tk.Migrations)
		}
	}
	if got := eventsOf(ticks, fleet.EventMigrateFinish); !reflect.DeepEqual(got, []string{"5/s1"}) {
		t.Fatalf("migrate_finish events = %v", got)
	}
	if got := f.Placement()["s1"]; got != 2 {
		t.Fatalf("s1 on host %d, want 2", got)
	}
	if running, err := f.VMRunning("s1"); err != nil || running {
		t.Fatalf("s1 running=%v err=%v after cold migration, want stopped", running, err)
	}
}

// TestHotplugRemoveConservation: a VM hot-plugged past the static roster
// is accounted from its first tick; removing it freezes — not erases —
// its tenant's energy.
func TestHotplugRemoveConservation(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	e := mustEngine(t, f, "n1@3:hotplug:2:small:dave:gcc:99,n1@8:remove", 1)
	ticks, _ := runAudited(t, e, f, 11, nil)

	if got := eventsOf(ticks, fleet.EventHotplug); !reflect.DeepEqual(got, []string{"3/n1"}) {
		t.Fatalf("hotplug events = %v", got)
	}
	if got := eventsOf(ticks, fleet.EventRemove); !reflect.DeepEqual(got, []string{"8/n1"}) {
		t.Fatalf("remove events = %v", got)
	}
	var daveAt7 float64
	for _, tk := range ticks {
		_, ok := tk.PerVM["n1"]
		want := tk.Tick >= 3 && tk.Tick < 8
		if ok != want {
			t.Fatalf("tick %d: n1 accounted=%v, want %v", tk.Tick, ok, want)
		}
		if want && tk.PerVM["n1"] <= 0 {
			t.Fatalf("tick %d: hot-plugged n1 attributed %g W", tk.Tick, tk.PerVM["n1"])
		}
		if tk.Tick == 7 {
			daveAt7 = f.EnergyWhByTenant()["dave"]
		}
	}
	if daveAt7 <= 0 {
		t.Fatal("tenant dave accrued no energy while n1 ran")
	}
	if got := f.EnergyWhByTenant()["dave"]; got != daveAt7 {
		t.Fatalf("dave's ledger moved after removal: %g -> %g", daveAt7, got)
	}
	if f.HasVM("n1") {
		t.Fatal("n1 still live after removal")
	}
}

// TestDrainUndrainConservation: draining host 1 migrates what fits
// (smalls to host 2) and stops the rest in place, the drained host keeps
// clean books (idle meter, zero dynamic power), and undrain restarts
// exactly the stopped VMs.
func TestDrainUndrainConservation(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	e := mustEngine(t, f, "host:1@4:drain:2,host:1@12:undrain", 1)
	ticks, _ := runAudited(t, e, f, 14, nil)

	if got := eventsOf(ticks, fleet.EventDrainStart); !reflect.DeepEqual(got, []string{"4/host:1"}) {
		t.Fatalf("drain_start events = %v", got)
	}
	if got := eventsOf(ticks, fleet.EventDrainFinish); !reflect.DeepEqual(got, []string{"6/host:1"}) {
		t.Fatalf("drain_finish events = %v", got)
	}
	if got := eventsOf(ticks, fleet.EventUndrain); !reflect.DeepEqual(got, []string{"12/host:1"}) {
		t.Fatalf("undrain events = %v", got)
	}
	// The four smalls migrate (the only destination with their class and
	// room); the three xlarge and the large stop in place.
	if got := eventsOf(ticks, fleet.EventMigrateStart); len(got) != 4 {
		t.Fatalf("migrate_start events = %v, want the 4 smalls", got)
	}
	stops := eventsOf(ticks, fleet.EventPowerOff)
	if len(stops) != 4 {
		t.Fatalf("poweroff events = %v, want xb1-3 and lg1", stops)
	}
	restarts := eventsOf(ticks, fleet.EventPowerOn)
	if !reflect.DeepEqual(restarts, []string{"12/xb1", "12/xb2", "12/xb3", "12/lg1"}) {
		t.Fatalf("poweron events = %v", restarts)
	}
	for _, tk := range ticks {
		hs := tk.Hosts[1]
		switch {
		case tk.Tick < 4:
			if hs.State != fleet.HostHealthy {
				t.Fatalf("tick %d: host 1 %v", tk.Tick, hs.State)
			}
		case tk.Tick < 6:
			if hs.State != fleet.HostDraining || tk.DrainingHosts != 1 {
				t.Fatalf("tick %d: host 1 %v (draining hosts %d)", tk.Tick, hs.State, tk.DrainingHosts)
			}
		case tk.Tick < 12:
			if hs.State != fleet.HostDrained || tk.DrainedHosts != 1 {
				t.Fatalf("tick %d: host 1 %v (drained hosts %d)", tk.Tick, hs.State, tk.DrainedHosts)
			}
			// Drained means empty of running VMs: pure idle, zero dynamic.
			if hs.DynamicWatts != 0 {
				t.Fatalf("tick %d: drained host attributes %g W dynamic", tk.Tick, hs.DynamicWatts)
			}
		default:
			if hs.State != fleet.HostHealthy {
				t.Fatalf("tick %d: host 1 %v after undrain", tk.Tick, hs.State)
			}
		}
		// Maintenance is not degradation.
		if tk.Degraded {
			t.Fatalf("tick %d: drain marked the fleet degraded", tk.Tick)
		}
	}
	place := f.Placement()
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		if place[s] != 2 {
			t.Fatalf("%s on host %d after drain, want 2", s, place[s])
		}
	}
	for _, name := range []string{"xb1", "xb2", "xb3", "lg1"} {
		if running, _ := f.VMRunning(name); !running {
			t.Fatalf("%s not restarted by undrain", name)
		}
	}
}

// TestAutoscaleConservation: a seeded bursty autoscaler churns a group's
// running count (start/stop plus hot-plugged clones) without ever
// breaking conservation; the group stays inside its declared bounds.
func TestAutoscaleConservation(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	e := mustEngine(t, f, "grp:s@3:autoscale:2:8", 7)
	ticks, _ := runAudited(t, e, f, 30, nil)

	var ups, downs, clones int
	for _, a := range e.Log() {
		if a.Err != "" {
			continue
		}
		switch a.Op {
		case "autoscale_up":
			ups++
			if strings.HasPrefix(a.Detail, "hotplug") {
				clones++
			}
		case "autoscale_down":
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("autoscaler never churned: %d up, %d down (retune the seed?)", ups, downs)
	}
	if clones == 0 {
		t.Fatalf("autoscaler never hot-plugged a clone (%d up, %d down)", ups, downs)
	}
	st := e.Status()
	if len(st.Groups) != 1 {
		t.Fatalf("groups = %+v", st.Groups)
	}
	g := st.Groups[0]
	if g.Running < g.Min || g.Running > g.Max {
		t.Fatalf("group running %d outside [%d,%d]", g.Running, g.Min, g.Max)
	}
	// Clones are owned by the template's tenant and billed to it.
	for _, tk := range ticks[len(ticks)-1:] {
		for name := range tk.PerVM {
			if strings.HasPrefix(name, "s-as") {
				tenant, err := f.VMTenant(name)
				if err != nil || tenant != "alice" {
					t.Fatalf("clone %s tenant %q err %v", name, tenant, err)
				}
			}
		}
	}
}

// TestMigrationRacesFaultsAndQuarantine is the chaos acceptance test:
// a migration's destination host suffers meter faults mid-copy and is
// quarantined, the window aborts, the VM keeps running at the source —
// and every single tick stays conserved to 1e-9 with zero audit
// violations, meter noise and all.
func TestMigrationRacesFaultsAndQuarantine(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.MeterNoise = 0.05
	cfg.Parallelism = -1 // all cores: the -race pass must stay deterministic
	cfg.MeterRetries = 1
	cfg.HoldoverTicks = 2
	cfg.QuarantineProbeTicks = 4
	f := lifecycleFleet(t, cfg)
	// Destination host 2 loses its meter for injector ticks [5, 25): the
	// copy window (fleet ticks 4..9) collides with holdover, then
	// quarantine, then the abort at cutover.
	fm, err := f.InjectFaults(2, faults.Options{
		Seed:     5,
		Episodes: []faults.Episode{{Start: 5, Len: 20, Kind: faults.Dropout}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fm.SetArmed(true)
	e := mustEngine(t, f, "s1@4:migrate:2:6", 1)
	ticks, _ := runAudited(t, e, f, 30, fm)

	sawQuarantinedSide := false
	for _, tk := range ticks {
		for _, ms := range tk.Migrations {
			if !ms.FromAccounted {
				t.Fatalf("tick %d: healthy source not accounting: %+v", tk.Tick, ms)
			}
			if !ms.ToAccounted {
				sawQuarantinedSide = true
				// The source side alone must then carry the VM's total.
				if d := math.Abs(tk.PerVM["s1"] - ms.FromWatts); d > conservationTol {
					t.Fatalf("tick %d: one-sided window PerVM %g != from %g", tk.Tick, tk.PerVM["s1"], ms.FromWatts)
				}
			}
		}
	}
	if !sawQuarantinedSide {
		t.Fatal("destination never lost mid-window; the race never happened (retune the episode)")
	}
	done, aborted := f.MigrationTotals()
	if done != 0 || aborted != 1 {
		t.Fatalf("migration totals %d/%d, want 0/1 (abort)", done, aborted)
	}
	if got := f.Placement()["s1"]; got != 1 {
		t.Fatalf("s1 on host %d after abort, want source host 1", got)
	}
	if running, _ := f.VMRunning("s1"); !running {
		t.Fatal("s1 not running at the source after abort")
	}
	finishes := eventsOf(ticks, fleet.EventMigrateFinish)
	if len(finishes) != 1 {
		t.Fatalf("migrate_finish events = %v, want exactly one (the abort)", finishes)
	}
	q, _ := f.Transitions()
	if q == 0 {
		t.Fatal("destination was never quarantined")
	}
}

// chaosScript is a scenario exercising every event class at once, used
// by the determinism test and (with faults layered on) the kitchen-sink
// chaos run.
const chaosScript = "s1@3:poweroff,s1@6:poweron,s2@5:migrate:2:2," +
	"n1@4:hotplug:2:small:dave:gcc:77,n1@15:remove," +
	"host:1@8:drain:1,host:1@14:undrain,grp:s@10:autoscale:2:6"

// TestScenarioDeterminism: the full tick stream, lifecycle journal,
// migration ledger, engine log and energy ledger are DeepEqual at
// Parallelism 1 vs NumCPU, and bit-identical across two same-seed runs.
func TestScenarioDeterminism(t *testing.T) {
	type result struct {
		ticks  []*fleet.Tick
		log    []Action
		energy map[string]float64
	}
	run := func(par int) result {
		cfg := lifecycleConfig()
		cfg.MeterNoise = 0.1 // noise is seeded; determinism must survive it
		cfg.Parallelism = par
		f := lifecycleFleet(t, cfg)
		e := mustEngine(t, f, chaosScript, 7)
		var ticks []*fleet.Tick
		for i := 0; i < 20; i++ {
			tk, err := e.Step()
			if err != nil {
				t.Fatal(err)
			}
			if problems := f.AuditConservation(tk, conservationTol); len(problems) != 0 {
				t.Fatalf("par %d tick %d: %s", par, tk.Tick, strings.Join(problems, "; "))
			}
			ticks = append(ticks, tk)
		}
		return result{ticks: ticks, log: e.Log(), energy: f.EnergyWhByTenant()}
	}

	serial := run(1)
	wide := run(runtime.NumCPU())
	again := run(runtime.NumCPU())

	if !reflect.DeepEqual(serial.ticks, wide.ticks) {
		t.Fatal("tick streams differ between Parallelism 1 and NumCPU")
	}
	if !reflect.DeepEqual(serial.log, wide.log) {
		t.Fatalf("engine logs differ:\n par1: %+v\n parN: %+v", serial.log, wide.log)
	}
	if !reflect.DeepEqual(serial.energy, wide.energy) {
		t.Fatalf("energy ledgers differ: %v vs %v", serial.energy, wide.energy)
	}
	if !reflect.DeepEqual(wide, again) {
		t.Fatal("two same-seed runs at NumCPU are not bit-identical")
	}
}

// TestScenarioStatus covers the engine's progress accounting, including
// refusals: chaos scripts deliberately race events the fleet rejects.
func TestScenarioStatus(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	// The second migrate targets the VM mid-window: refused.
	e := mustEngine(t, f, "s1@3:migrate:2:4,s1@4:migrate:2:1", 1)
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	st := e.Status()
	if st.Events != 2 || st.Applied != 0 || st.NextTick != 3 {
		t.Fatalf("status after tick 1: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st = e.Status()
	if st.Applied != 1 || st.Refused != 1 {
		t.Fatalf("applied/refused = %d/%d, want 1/1: %+v (log %+v)", st.Applied, st.Refused, st, e.Log())
	}
	if !e.Done() {
		t.Fatal("engine not done after both events passed")
	}
}

// TestEngineRejectsUnknownHost: host references are validated up front.
func TestEngineRejectsUnknownHost(t *testing.T) {
	f := lifecycleFleet(t, lifecycleConfig())
	evs, err := cliutil.ParseScenario("host:9@3:drain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f, evs, 1); err == nil {
		t.Fatal("want out-of-range host error")
	}
	evs, err = cliutil.ParseScenario("s1@3:migrate:9:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f, evs, 1); err == nil {
		t.Fatal("want out-of-range destination error")
	}
}
