package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmpower/internal/fleet"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden scenario outputs")

// goldenScript is the 200-tick reference scenario: every event class,
// spaced out so the pinned journal exercises copy windows, a full
// drain/undrain cycle, roster growth and shrink, and a long autoscale
// tail.
const goldenScript = "s1@5:poweroff,s1@12:poweron," +
	"s2@20:migrate:2:3," +
	"n1@30:hotplug:2:small:dave:gcc:42," +
	"host:1@50:drain:2,host:1@70:undrain," +
	"n1@90:remove," +
	"grp:s@100:autoscale:2:6"

// goldenFile is the on-disk schema: the run's configuration note, the
// cumulative per-tenant energy ledger, and the full lifecycle journal.
type goldenFile struct {
	Config           string             `json:"config"`
	EnergyWhByTenant map[string]float64 `json:"energyWhByTenant"`
	Journal          []string           `json:"journal"`
}

// TestGoldenScenario pins a 200-tick reference run byte-for-byte: any
// drift in the simulation, the solvers, the lifecycle engine or the
// event journal shows up as a diff against
// results/golden/scenario200.json. Re-pin after an intentional change
// with `go test ./internal/scenario/ -run TestGoldenScenario -update`.
func TestGoldenScenario(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.MeterNoise = 0.05 // seeded: noisy but reproducible
	f := lifecycleFleet(t, cfg)
	e := mustEngine(t, f, goldenScript, 99)

	var journal []string
	for i := 0; i < 200; i++ {
		tk, err := e.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
		if problems := f.AuditConservation(tk, conservationTol); len(problems) != 0 {
			t.Fatalf("tick %d: %s", tk.Tick, strings.Join(problems, "; "))
		}
		for _, ev := range tk.Events {
			entry := fmt.Sprintf("%03d %s %s", tk.Tick, ev.Type, ev.Subject)
			if ev.Detail != "" {
				entry += " (" + ev.Detail + ")"
			}
			journal = append(journal, entry)
		}
	}
	got := goldenFile{
		Config:           "seed=11 noise=0.05 hosts=3 ticks=200 engineSeed=99",
		EnergyWhByTenant: f.EnergyWhByTenant(),
		Journal:          journal,
	}
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	path := filepath.Join("..", "..", "results", "golden", "scenario200.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(blob, want) {
		var pinned goldenFile
		if err := json.Unmarshal(want, &pinned); err != nil {
			t.Fatalf("golden file unreadable: %v", err)
		}
		for tenant, wh := range got.EnergyWhByTenant {
			if pw := pinned.EnergyWhByTenant[tenant]; pw != wh {
				t.Errorf("tenant %s: energy %g Wh, pinned %g Wh", tenant, wh, pw)
			}
		}
		if len(got.Journal) != len(pinned.Journal) {
			t.Errorf("journal has %d entries, pinned %d", len(got.Journal), len(pinned.Journal))
		} else {
			for i := range got.Journal {
				if got.Journal[i] != pinned.Journal[i] {
					t.Errorf("journal[%d] = %q, pinned %q", i, got.Journal[i], pinned.Journal[i])
				}
			}
		}
		t.Fatal("scenario golden drift (intentional? re-pin with -update)")
	}

	// The pinned run also proves the event classes all fired: the golden
	// file is the exactly-once record for the whole 200 ticks.
	counts := map[string]int{}
	for _, entry := range journal {
		counts[strings.Fields(entry)[1]]++
	}
	for _, typ := range []string{
		fleet.EventPowerOn, fleet.EventPowerOff, fleet.EventHotplug,
		fleet.EventRemove, fleet.EventMigrateStart, fleet.EventMigrateFinish,
		fleet.EventDrainStart, fleet.EventDrainFinish, fleet.EventUndrain,
	} {
		if counts[typ] == 0 {
			t.Errorf("reference scenario never journaled %s", typ)
		}
	}
}
