// Package vhc implements the paper's Virtual Homogeneous VM Coalition
// machinery (Sec. V-C): grouping the members of a coalition by VM type
// into VHCs, aggregating their state vectors (v_j = Σ c_i, Eq. 8),
// learning one linear power-mapping vector w_j per VHC and per VHC
// combination from partially measured (state, power) samples (Def. 2), and
// approximating any unobserved coalition worth as v(S,C) = Σ_j w_j·v_j
// (Eqs. 9–10). Exact matches against previously measured states are served
// from the v(S,C) table directly.
package vhc

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync"

	"vmpower/internal/linalg"
	"vmpower/internal/vm"
)

// ComboMask identifies a combination of VHCs: bit j set means VMs of type
// j are present in the coalition. With r VM types there are 2^r combos.
type ComboMask uint16

// MaxTypes bounds the type count so combos stay enumerable; the paper
// notes real platforms offer no more than ~5 types per machine.
const MaxTypes = 12

// Contains reports whether type t is present in the combo.
func (c ComboMask) Contains(t vm.TypeID) bool { return c&(1<<uint(t)) != 0 }

// Size returns the number of VHCs present.
func (c ComboMask) Size() int { return bits.OnesCount16(uint16(c)) }

// Types returns the present type IDs in ascending order.
func (c ComboMask) Types() []vm.TypeID {
	out := make([]vm.TypeID, 0, c.Size())
	for m := uint16(c); m != 0; {
		b := bits.TrailingZeros16(m)
		out = append(out, vm.TypeID(b))
		m &^= 1 << uint(b)
	}
	return out
}

// String renders the combo as a type list.
func (c ComboMask) String() string {
	ts := c.Types()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = strconv.Itoa(int(t))
	}
	return "types{" + strings.Join(parts, ",") + "}"
}

// ComboFor returns the VHC combination of coalition mask within set.
func ComboFor(set *vm.Set, mask vm.Coalition) ComboMask {
	var c ComboMask
	for _, t := range set.TypesPresent(mask) {
		c |= 1 << uint(t)
	}
	return c
}

// Aggregate computes the per-VHC aggregated state vectors v_j = Σ c_i
// (Eq. 8) for the members of mask, plus the coalition's combo.
func Aggregate(set *vm.Set, mask vm.Coalition, states []vm.State) (ComboMask, map[vm.TypeID]vm.State, error) {
	if len(states) != set.Len() {
		return 0, nil, fmt.Errorf("vhc: %d states for %d VMs", len(states), set.Len())
	}
	agg := make(map[vm.TypeID]vm.State)
	var combo ComboMask
	for _, id := range mask.Members() {
		v, err := set.VM(id)
		if err != nil {
			return 0, nil, err
		}
		combo |= 1 << uint(v.Type)
		agg[v.Type] = agg[v.Type].Add(states[int(id)])
	}
	return combo, agg, nil
}

// Features flattens the aggregated VHC vectors into the regression feature
// vector for a combo: present types in ascending order, k components each.
func Features(combo ComboMask, agg map[vm.TypeID]vm.State) []float64 {
	types := combo.Types()
	out := make([]float64, 0, len(types)*int(vm.NumComponents))
	for _, t := range types {
		s := agg[t]
		out = append(out, s[:]...)
	}
	return out
}

// FeaturesFor is Aggregate followed by Features.
func FeaturesFor(set *vm.Set, mask vm.Coalition, states []vm.State) (ComboMask, []float64, error) {
	combo, agg, err := Aggregate(set, mask, states)
	if err != nil {
		return 0, nil, err
	}
	return combo, Features(combo, agg), nil
}

// Sample is one offline measurement: the features of a coalition state and
// the measured aggregated power (idle deducted).
type Sample struct {
	Features []float64
	Power    float64
}

// Errors returned by the approximator.
var (
	// ErrUntrained is returned when estimating a combo with no model.
	ErrUntrained = errors.New("vhc: combination has no trained model")
	// ErrNoSamples is returned when training a combo with no samples.
	ErrNoSamples = errors.New("vhc: no samples")
	// ErrFeatureLen is returned on feature-length mismatches.
	ErrFeatureLen = errors.New("vhc: feature length mismatch")
)

// Options configures an Approximator.
type Options struct {
	// Resolution quantizes table keys (the paper uses 0.01). Non-positive
	// disables the exact-match table, forcing pure regression.
	Resolution float64
	// RidgeLambda is the regularisation used when least squares is rank
	// deficient (near-constant or all-zero feature columns). Default 1e-6.
	RidgeLambda float64
}

// Approximator learns and serves v(S, C) per VHC combination.
//
// Thread-safety: every method takes mu — readers (Estimate, Weights,
// CPUWeights, Diags, Trained, SampleCount) under RLock, mutators
// (AddSample, Train, Import) under the write lock — so any combination
// of concurrent calls is data-race free. In particular the read path
// used by the parallel Shapley engine (Estimate) touches only the
// quantized v(S,C) table and the fitted weight vectors, both of which
// are immutable between mutator calls; a trained Approximator that is
// no longer fed samples therefore behaves as a pure function of
// (combo, features), which is the purity contract the engine's worth
// cache and sharded evaluation rely on (see
// internal/shapley/parallel.go). Interleaving AddSample/Train with
// concurrent Estimate calls is still safe, but the estimates then
// depend on arrival order — don't retrain mid-estimation if
// reproducibility matters.
type Approximator struct {
	numTypes   int
	resolution float64
	ridge      float64

	mu      sync.RWMutex
	epoch   uint64
	samples map[ComboMask][]Sample
	table   map[ComboMask]map[tableKey]*tableEntry
	weights map[ComboMask]linalg.Vector
	diags   map[ComboMask]Diagnostics
}

// Diagnostics summarises one combo's fit quality, recorded at Train time.
type Diagnostics struct {
	// Samples is the number of training samples.
	Samples int
	// RMSE is the training residual root-mean-square error in watts.
	RMSE float64
	// MeanPower is the mean training power, so RMSE/MeanPower is a
	// relative fit-quality figure.
	MeanPower float64
}

// RelativeRMSE returns RMSE normalised by the mean training power
// (0 when the combo never drew power).
func (d Diagnostics) RelativeRMSE() float64 {
	if d.MeanPower == 0 {
		return 0
	}
	return d.RMSE / d.MeanPower
}

type tableEntry struct {
	sum   float64
	count int
}

func (e *tableEntry) mean() float64 { return e.sum / float64(e.count) }

// maxFeatureLen is the widest possible feature vector: every one of the
// MaxTypes classes present, k components each.
const maxFeatureLen = MaxTypes * int(vm.NumComponents)

// tableKey is the quantized numeric form of a feature vector: one lattice
// coordinate round(f/resolution) per feature slot, zero beyond the combo's
// feature length (per-combo tables have a fixed feature length, so the
// padding is unambiguous). It replaces the old strconv-formatted string
// keys: a comparable fixed-size array is buildable with zero allocations
// on the estimation hot path and hashes without string interning. Only
// meaningful when resolution > 0 — the table is disabled otherwise.
type tableKey [maxFeatureLen]int64

// latticeCoord quantizes one feature onto the resolution lattice. The
// saturation guards keep pathological resolutions (f/res beyond the int64
// range) from hitting implementation-defined float→int conversions.
func latticeCoord(f, res float64) int64 {
	q := math.Round(f / res)
	if q >= math.MaxInt64 {
		return math.MaxInt64
	}
	if q <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(q)
}

// New builds an Approximator over numTypes VM types.
func New(numTypes int, opts Options) (*Approximator, error) {
	if numTypes < 1 || numTypes > MaxTypes {
		return nil, fmt.Errorf("vhc: numTypes %d outside [1,%d]", numTypes, MaxTypes)
	}
	ridge := opts.RidgeLambda
	if ridge <= 0 {
		ridge = 1e-6
	}
	return &Approximator{
		numTypes:   numTypes,
		resolution: opts.Resolution,
		ridge:      ridge,
		samples:    make(map[ComboMask][]Sample),
		table:      make(map[ComboMask]map[tableKey]*tableEntry),
		weights:    make(map[ComboMask]linalg.Vector),
		diags:      make(map[ComboMask]Diagnostics),
	}, nil
}

// Epoch returns a counter that advances on every mutation (AddSample,
// Train, Import). A compiled Plan snapshots the epoch it was built from;
// a mismatch tells the holder the plan is stale and must be recompiled.
func (a *Approximator) Epoch() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.epoch
}

// NumTypes returns r, the VM type count.
func (a *Approximator) NumTypes() int { return a.numTypes }

// Combos returns the number of non-empty VHC combinations (2^r − 1).
func (a *Approximator) Combos() int { return 1<<uint(a.numTypes) - 1 }

func (a *Approximator) featureLen(combo ComboMask) int {
	return combo.Size() * int(vm.NumComponents)
}

// key quantizes a feature vector onto the resolution lattice. Callers
// guard on resolution > 0 (the table is disabled otherwise).
func (a *Approximator) key(features []float64) tableKey {
	var k tableKey
	for i, f := range features {
		k[i] = latticeCoord(f, a.resolution)
	}
	return k
}

// AddSample records one offline measurement for a combo.
func (a *Approximator) AddSample(combo ComboMask, features []float64, power float64) error {
	if combo == 0 {
		return errors.New("vhc: cannot sample the empty combination")
	}
	if got, want := len(features), a.featureLen(combo); got != want {
		return fmt.Errorf("%w: got %d, want %d for %s", ErrFeatureLen, got, want, combo)
	}
	f := append([]float64(nil), features...)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch++
	a.samples[combo] = append(a.samples[combo], Sample{Features: f, Power: power})
	if a.resolution > 0 {
		k := a.key(f)
		entries, ok := a.table[combo]
		if !ok {
			entries = make(map[tableKey]*tableEntry)
			a.table[combo] = entries
		}
		e, ok := entries[k]
		if !ok {
			e = &tableEntry{}
			entries[k] = e
		}
		e.sum += power
		e.count++
	}
	return nil
}

// SampleCount returns the number of samples recorded for a combo.
func (a *Approximator) SampleCount(combo ComboMask) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.samples[combo])
}

// Train fits the mapping vector of every combo that has samples. Combos
// whose regression fails (e.g. a single degenerate sample) are reported in
// the returned error but do not prevent the others from training.
func (a *Approximator) Train() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch++
	var failures []string
	for combo, samples := range a.samples {
		if err := a.trainComboLocked(combo, samples); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", combo, err))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("vhc: training failed for %d combos: %s", len(failures), strings.Join(failures, "; "))
	}
	return nil
}

func (a *Approximator) trainComboLocked(combo ComboMask, samples []Sample) error {
	if len(samples) == 0 {
		return ErrNoSamples
	}
	cols := a.featureLen(combo)
	rows := make([][]float64, len(samples))
	b := make(linalg.Vector, len(samples))
	for i, s := range samples {
		rows[i] = s.Features
		b[i] = s.Power
	}
	mat, err := linalg.MatrixFromRows(rows)
	if err != nil {
		return err
	}
	if mat.Cols() != cols {
		return fmt.Errorf("%w: matrix has %d cols, want %d", ErrFeatureLen, mat.Cols(), cols)
	}
	w, err := linalg.LeastSquares(mat, b, a.ridge)
	if err != nil {
		return fmt.Errorf("least squares: %w", err)
	}
	a.weights[combo] = w
	rmse, err := linalg.RMSE(mat, w, b)
	if err != nil {
		return fmt.Errorf("fit diagnostics: %w", err)
	}
	a.diags[combo] = Diagnostics{
		Samples:   len(samples),
		RMSE:      rmse,
		MeanPower: b.Sum() / float64(len(b)),
	}
	return nil
}

// Diags returns a combo's fit diagnostics (recorded by Train).
func (a *Approximator) Diags(combo ComboMask) (Diagnostics, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	d, ok := a.diags[combo]
	if !ok {
		return Diagnostics{}, fmt.Errorf("%w: %s", ErrUntrained, combo)
	}
	return d, nil
}

// Trained reports whether the combo has a fitted model.
func (a *Approximator) Trained(combo ComboMask) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.weights[combo]
	return ok
}

// Weights returns a copy of the fitted mapping vector for a combo, laid
// out as Features (present types ascending × components).
func (a *Approximator) Weights(combo ComboMask) (linalg.Vector, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	w, ok := a.weights[combo]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUntrained, combo)
	}
	return w.Clone(), nil
}

// CPUWeights returns the CPU component of each present type's mapping
// vector, in ascending type order — the w_j scalars the paper reports
// (e.g. w1 = 9.42 for the homogeneous coalition).
func (a *Approximator) CPUWeights(combo ComboMask) ([]float64, error) {
	w, err := a.Weights(combo)
	if err != nil {
		return nil, err
	}
	k := int(vm.NumComponents)
	out := make([]float64, combo.Size())
	for i := range out {
		out[i] = w[i*k+int(vm.CPU)]
	}
	return out, nil
}

// Estimate returns v(S, C) for the combo and feature vector: the table
// mean if the (quantized) state was measured offline, otherwise the linear
// approximation Σ_j w_j·v_j, clamped at zero. The empty combo is 0.
func (a *Approximator) Estimate(combo ComboMask, features []float64) (float64, error) {
	if combo == 0 {
		return 0, nil
	}
	if got, want := len(features), a.featureLen(combo); got != want {
		return 0, fmt.Errorf("%w: got %d, want %d for %s", ErrFeatureLen, got, want, combo)
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.resolution > 0 {
		if entries, ok := a.table[combo]; ok {
			if e, ok := entries[a.key(features)]; ok {
				return e.mean(), nil
			}
		}
	}
	w, ok := a.weights[combo]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUntrained, combo)
	}
	p, err := w.Dot(features)
	if err != nil {
		return 0, err
	}
	if p < 0 {
		p = 0
	}
	return p, nil
}
