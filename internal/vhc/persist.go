package vhc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"vmpower/internal/linalg"
)

// modelFile is the on-disk form of a trained approximator: the fitted
// mapping vectors and diagnostics per combination. The raw sample table
// is not persisted — it exists to support exact-match lookups during the
// session that collected it; a reloaded model serves pure regression.
type modelFile struct {
	Version  int                  `json:"version"`
	NumTypes int                  `json:"num_types"`
	Combos   []comboFile          `json:"combos"`
	Diags    map[string]diagsFile `json:"diags,omitempty"`
}

type comboFile struct {
	Combo   uint16    `json:"combo"`
	Weights []float64 `json:"weights"`
}

type diagsFile struct {
	Samples   int     `json:"samples"`
	RMSE      float64 `json:"rmse"`
	MeanPower float64 `json:"mean_power"`
}

const modelVersion = 1

// ErrModelFormat marks unreadable or inconsistent model files.
var ErrModelFormat = errors.New("vhc: bad model file")

// Export writes the trained mapping vectors as JSON so a calibration can
// be reused across processes (calibrate once, estimate forever).
func (a *Approximator) Export(w io.Writer) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if len(a.weights) == 0 {
		return fmt.Errorf("%w: nothing trained to export", ErrUntrained)
	}
	file := modelFile{
		Version:  modelVersion,
		NumTypes: a.numTypes,
		Diags:    make(map[string]diagsFile, len(a.diags)),
	}
	for combo := ComboMask(1); int(combo) < 1<<uint(a.numTypes); combo++ {
		wts, ok := a.weights[combo]
		if !ok {
			continue
		}
		file.Combos = append(file.Combos, comboFile{Combo: uint16(combo), Weights: wts.Clone()})
		if d, ok := a.diags[combo]; ok {
			file.Diags[combo.String()] = diagsFile{Samples: d.Samples, RMSE: d.RMSE, MeanPower: d.MeanPower}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("vhc: export: %w", err)
	}
	return nil
}

// Import loads mapping vectors previously written by Export into this
// approximator, replacing any trained state. The type count must match.
func (a *Approximator) Import(r io.Reader) error {
	var file modelFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("%w: %v", ErrModelFormat, err)
	}
	if file.Version != modelVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrModelFormat, file.Version, modelVersion)
	}
	if file.NumTypes != a.numTypes {
		return fmt.Errorf("%w: model has %d types, approximator %d", ErrModelFormat, file.NumTypes, a.numTypes)
	}
	weights := make(map[ComboMask]linalg.Vector, len(file.Combos))
	diags := make(map[ComboMask]Diagnostics, len(file.Combos))
	for _, c := range file.Combos {
		combo := ComboMask(c.Combo)
		if combo == 0 || int(c.Combo) >= 1<<uint(a.numTypes) {
			return fmt.Errorf("%w: combo %#x out of range", ErrModelFormat, c.Combo)
		}
		want := a.featureLen(combo)
		if len(c.Weights) != want {
			return fmt.Errorf("%w: combo %s has %d weights, want %d", ErrModelFormat, combo, len(c.Weights), want)
		}
		weights[combo] = append(linalg.Vector(nil), c.Weights...)
		if d, ok := file.Diags[combo.String()]; ok {
			diags[combo] = Diagnostics{Samples: d.Samples, RMSE: d.RMSE, MeanPower: d.MeanPower}
		}
	}
	if len(weights) == 0 {
		return fmt.Errorf("%w: no combos", ErrModelFormat)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch++
	a.weights = weights
	a.diags = diags
	a.samples = make(map[ComboMask][]Sample)
	a.table = make(map[ComboMask]map[tableKey]*tableEntry)
	return nil
}
