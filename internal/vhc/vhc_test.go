package vhc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

func testSet(t *testing.T) *vm.Set {
	t.Helper()
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "VM1a", Type: 0},
		{Name: "VM1b", Type: 0},
		{Name: "VM2", Type: 1},
		{Name: "VM3", Type: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestComboMask(t *testing.T) {
	var c ComboMask = 0b101 // types 0 and 2
	if !c.Contains(0) || c.Contains(1) || !c.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d", c.Size())
	}
	types := c.Types()
	if len(types) != 2 || types[0] != 0 || types[1] != 2 {
		t.Fatalf("Types = %v", types)
	}
	if c.String() != "types{0,2}" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestComboFor(t *testing.T) {
	set := testSet(t)
	if got := ComboFor(set, vm.CoalitionOf(0, 1)); got != 0b001 {
		t.Fatalf("ComboFor two VM1s = %v", got)
	}
	if got := ComboFor(set, vm.CoalitionOf(0, 2, 3)); got != 0b111 {
		t.Fatalf("ComboFor mixed = %v", got)
	}
	if got := ComboFor(set, vm.EmptyCoalition); got != 0 {
		t.Fatalf("ComboFor empty = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	set := testSet(t)
	states := []vm.State{
		{vm.CPU: 0.5, vm.Memory: 0.1},
		{vm.CPU: 0.3, vm.Memory: 0.2},
		{vm.CPU: 0.8},
		{vm.CPU: 0.9},
	}
	combo, agg, err := Aggregate(set, vm.CoalitionOf(0, 1, 2), states)
	if err != nil {
		t.Fatal(err)
	}
	if combo != 0b011 {
		t.Fatalf("combo = %v", combo)
	}
	// v_0 = c_0 + c_1 (Eq. 8).
	if math.Abs(agg[0][vm.CPU]-0.8) > 1e-12 || math.Abs(agg[0][vm.Memory]-0.3) > 1e-12 {
		t.Fatalf("aggregate type 0 = %v", agg[0])
	}
	if math.Abs(agg[1][vm.CPU]-0.8) > 1e-12 {
		t.Fatalf("aggregate type 1 = %v", agg[1])
	}
	if _, _, err := Aggregate(set, vm.CoalitionOf(0), states[:2]); err == nil {
		t.Fatal("want state-count error")
	}
}

func TestFeatures(t *testing.T) {
	set := testSet(t)
	states := []vm.State{
		{vm.CPU: 0.5}, {vm.CPU: 0.25}, {vm.CPU: 0.8}, {vm.CPU: 0.9},
	}
	combo, features, err := FeaturesFor(set, vm.CoalitionOf(0, 1, 3), states)
	if err != nil {
		t.Fatal(err)
	}
	if combo != 0b101 {
		t.Fatalf("combo = %v", combo)
	}
	k := int(vm.NumComponents)
	if len(features) != 2*k {
		t.Fatalf("feature length = %d", len(features))
	}
	if math.Abs(features[0]-0.75) > 1e-12 { // type 0 CPU sum
		t.Fatalf("features[0] = %g", features[0])
	}
	if math.Abs(features[k]-0.9) > 1e-12 { // type 2 CPU
		t.Fatalf("features[k] = %g", features[k])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Options{}); err == nil {
		t.Fatal("want numTypes error")
	}
	if _, err := New(MaxTypes+1, Options{}); err == nil {
		t.Fatal("want numTypes error")
	}
	a, err := New(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTypes() != 4 || a.Combos() != 15 {
		t.Fatalf("NumTypes=%d Combos=%d", a.NumTypes(), a.Combos())
	}
}

func TestAddSampleValidation(t *testing.T) {
	a, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(0, nil, 1); err == nil {
		t.Fatal("want empty-combo error")
	}
	if err := a.AddSample(0b01, []float64{1}, 1); !errors.Is(err, ErrFeatureLen) {
		t.Fatalf("want ErrFeatureLen, got %v", err)
	}
}

// synthSamples generates noise-free linear samples for a combo with the
// given per-feature weights.
func synthSamples(t *testing.T, a *Approximator, combo ComboMask, weights []float64, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		features := make([]float64, len(weights))
		var power float64
		for j := range features {
			features[j] = rng.Float64() * 2
			power += features[j] * weights[j]
		}
		if err := a.AddSample(combo, features, power); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrainAndEstimateRecoversLinearModel(t *testing.T) {
	a, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := int(vm.NumComponents)
	w1 := []float64{9.4, 0.3, 2.1}                 // combo {0}
	w2 := []float64{9.4, 0.3, 2.1, 17.9, 0.5, 1.2} // combo {0,1}
	synthSamples(t, a, 0b01, w1, 50, 1)
	synthSamples(t, a, 0b11, w2, 80, 2)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if !a.Trained(0b01) || !a.Trained(0b11) {
		t.Fatal("combos must be trained")
	}
	got, err := a.Weights(0b01)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w1 {
		if math.Abs(got[j]-w1[j]) > 1e-6 {
			t.Fatalf("weight[%d] = %g, want %g", j, got[j], w1[j])
		}
	}
	cpuW, err := a.CPUWeights(0b11)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpuW) != 2 || math.Abs(cpuW[0]-9.4) > 1e-6 || math.Abs(cpuW[1]-17.9) > 1e-6 {
		t.Fatalf("CPUWeights = %v", cpuW)
	}
	// Estimation at a fresh state matches the generating model.
	features := []float64{0.7, 0.2, 0.05}
	want := 0.7*9.4 + 0.2*0.3 + 0.05*2.1
	est, err := a.Estimate(0b01, features)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-want) > 1e-6 {
		t.Fatalf("Estimate = %g, want %g", est, want)
	}
	_ = k
}

func TestEstimateTableHit(t *testing.T) {
	// With a coarse resolution, estimating at a previously measured
	// (quantized) state returns the recorded measurement, not the model.
	a, err := New(1, Options{Resolution: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	features := []float64{0.5, 0.1, 0}
	if err := a.AddSample(0b1, features, 42); err != nil {
		t.Fatal(err)
	}
	// Add enough spread so training succeeds with a very different model.
	synthSamples(t, a, 0b1, []float64{1, 1, 1}, 30, 3)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	est, err := a.Estimate(0b1, []float64{0.5, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The table entry averages the sample(s) recorded at that key; the
	// exact value depends on whether a synthetic sample collided, but it
	// must be dominated by the 42 W measurement.
	if est < 20 {
		t.Fatalf("Estimate = %g, want table-dominated value near 42", est)
	}
	// A nearby-but-different quantized state misses the table and uses
	// the linear model, whose prediction is far below the 42 W outlier
	// (the outlier skews the fit but cannot dominate 30 clean samples).
	est2, err := a.Estimate(0b1, []float64{0.77, 0.13, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if est2 > 10 {
		t.Fatalf("model estimate = %g, want well below the 42 W table entry", est2)
	}
}

func TestEstimateErrors(t *testing.T) {
	a, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Estimate(0b01, make([]float64, 3)); !errors.Is(err, ErrUntrained) {
		t.Fatalf("untrained: %v", err)
	}
	if _, err := a.Estimate(0b01, make([]float64, 2)); !errors.Is(err, ErrFeatureLen) {
		t.Fatalf("feature length: %v", err)
	}
	got, err := a.Estimate(0, nil)
	if err != nil || got != 0 {
		t.Fatalf("empty combo = (%g, %v), want (0, nil)", got, err)
	}
	if _, err := a.Weights(0b01); !errors.Is(err, ErrUntrained) {
		t.Fatalf("Weights untrained: %v", err)
	}
}

func TestTrainDegenerateSamplesUsesRidge(t *testing.T) {
	// All-zero features are rank deficient; ridge must still produce a
	// model rather than failing.
	a, err := New(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.AddSample(0b1, make([]float64, 3), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	est, err := a.Estimate(0b1, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est) > 1e-6 {
		t.Fatalf("degenerate model estimate = %g, want 0", est)
	}
}

func TestSampleCount(t *testing.T) {
	a, _ := New(1, Options{})
	if a.SampleCount(0b1) != 0 {
		t.Fatal("fresh approximator has no samples")
	}
	synthSamples(t, a, 0b1, []float64{1, 1, 1}, 7, 4)
	if a.SampleCount(0b1) != 7 {
		t.Fatalf("SampleCount = %d", a.SampleCount(0b1))
	}
}

// Property: estimates are never negative (clamped), for any trained model
// and any in-range feature vector.
func TestEstimateNonNegativeProperty(t *testing.T) {
	a, _ := New(1, Options{})
	// Train a model with a negative weight to force negative raw dots.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		f := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		power := -3*f[0] + 0.5*f[1] // deliberately sign-mixed
		if power < 0 {
			power = 0
		}
		if err := a.AddSample(0b1, f, power); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	f := func(a1, a2, a3 float64) bool {
		clip := func(x float64) float64 {
			x = math.Abs(math.Mod(x, 4))
			if math.IsNaN(x) {
				return 0
			}
			return x
		}
		est, err := a.Estimate(0b1, []float64{clip(a1), clip(a2), clip(a3)})
		return err == nil && est >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
