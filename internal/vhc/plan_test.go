package vhc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vmpower/internal/vm"
)

// trainedRig builds a set, class map and approximator trained on random
// samples for every combo the set can form, with the given resolution.
func trainedRig(t *testing.T, res float64, seed int64) (*vm.Set, *ClassMap, *Approximator) {
	t.Helper()
	set := testSet(t) // 2x type0, 1x type1, 1x type2 on the paper catalog
	classes, err := IdentityClassMap(len(set.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(classes.Classes, Options{Resolution: res})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	full := vm.GrandCoalition(set.Len())
	for mask := vm.Coalition(1); mask <= full; mask++ {
		combo, err := ClassComboFor(set, mask, classes)
		if err != nil {
			t.Fatal(err)
		}
		if combo == 0 {
			continue
		}
		for s := 0; s < 12; s++ {
			states := make([]vm.State, set.Len())
			for i := range states {
				for c := 0; c < int(vm.NumComponents); c++ {
					states[i][c] = math.Round(rng.Float64()*100) / 100
				}
			}
			_, feats, err := ClassedFeaturesFor(set, mask, states, classes)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.AddSample(combo, feats, 5+20*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	return set, classes, a
}

// TestPlanMatchesEstimateBitForBit drives randomized coalitions and
// states through both the compiled plan and the legacy
// ClassedFeaturesFor + Estimate pipeline and insists on identical bits —
// including states that hit the exact-match table (quantized to the
// resolution lattice, as the hypervisor quantizes snapshots) and states
// that fall through to the regression.
func TestPlanMatchesEstimateBitForBit(t *testing.T) {
	for _, res := range []float64{0, 0.01, 0.1} {
		set, classes, a := trainedRig(t, res, 42)
		plan, err := NewPlan(set, classes, a)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		full := vm.GrandCoalition(set.Len())
		for trial := 0; trial < 2000; trial++ {
			mask := vm.Coalition(rng.Intn(int(full) + 1))
			states := make([]vm.State, set.Len())
			for i := range states {
				for c := 0; c < int(vm.NumComponents); c++ {
					states[i][c] = math.Round(rng.Float64()*100) / 100
				}
			}
			got, gotErr := plan.Eval(mask, states)

			var want float64
			var wantErr error
			if mask.IsEmpty() {
				want = 0
			} else {
				combo, feats, err := ClassedFeaturesFor(set, mask, states, classes)
				if err != nil {
					t.Fatal(err)
				}
				want, wantErr = a.Estimate(combo, feats)
			}
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("res=%g mask=%s: plan err %v, legacy err %v", res, mask, gotErr, wantErr)
			}
			if gotErr == nil && got != want {
				t.Fatalf("res=%g mask=%s: plan %v != legacy %v (diff %g)",
					res, mask, got, want, got-want)
			}
		}
	}
}

// TestPlanTableHit pins that a state measured offline is served from the
// plan's precomputed table mean, identically to the approximator.
func TestPlanTableHit(t *testing.T) {
	set, classes, a := trainedRig(t, 0.01, 3)
	mask := vm.CoalitionOf(0, 1)
	states := []vm.State{
		{vm.CPU: 0.25, vm.Memory: 0.5, vm.DiskIO: 0.75},
		{vm.CPU: 0.5, vm.Memory: 0.25, vm.DiskIO: 0.1},
		{}, {},
	}
	combo, feats, err := ClassedFeaturesFor(set, mask, states, classes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(combo, feats, 123.456); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(combo, feats, 124.456); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Estimate(combo, feats)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Eval(mask, states)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("plan table hit %v != estimate %v", got, want)
	}
	// Sanity: the hit really is the table mean of the two samples.
	if math.Abs(want-123.956) > 1e-9 {
		t.Fatalf("table mean = %v, want 123.956", want)
	}
}

// TestPlanUntrainedCombo pins the error parity with the legacy path when
// a coalition's combo has neither table entries nor a fitted model.
func TestPlanUntrainedCombo(t *testing.T) {
	set := testSet(t)
	classes, err := IdentityClassMap(len(set.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(classes.Classes, Options{Resolution: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Train only the type-0 combo.
	states := []vm.State{{vm.CPU: 0.5}, {vm.CPU: 0.25}, {}, {}}
	for i := 0; i < 4; i++ {
		states[0][vm.CPU] = 0.1 * float64(i+1)
		_, feats, err := ClassedFeaturesFor(set, vm.CoalitionOf(0, 1), states, classes)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.AddSample(0b001, feats, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Eval(vm.CoalitionOf(0, 1), states); err != nil {
		t.Fatalf("trained combo: %v", err)
	}
	_, err = plan.Eval(vm.CoalitionOf(2), states)
	if !errors.Is(err, ErrUntrained) {
		t.Fatalf("untrained combo err = %v, want ErrUntrained", err)
	}
}

// TestPlanEvalZeroAlloc is the tentpole's core claim: evaluating a worth
// through the compiled plan allocates nothing, on both the table-hit and
// the regression path.
func TestPlanEvalZeroAlloc(t *testing.T) {
	set, classes, a := trainedRig(t, 0.01, 11)
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]vm.State, set.Len())
	for i := range states {
		states[i] = vm.State{vm.CPU: 0.37, vm.Memory: 0.12, vm.DiskIO: 0.05}
	}
	mask := vm.GrandCoalition(set.Len())
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := plan.Eval(mask, states); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("plan.Eval allocates %v per run, want 0", allocs)
	}
}

// TestPlanStaleEpoch pins the invalidation signal: any approximator
// mutation advances the epoch past the plan's snapshot.
func TestPlanStaleEpoch(t *testing.T) {
	set, classes, a := trainedRig(t, 0.01, 5)
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch() != a.Epoch() {
		t.Fatalf("fresh plan epoch %d != approximator %d", plan.Epoch(), a.Epoch())
	}
	_, feats, err := ClassedFeaturesFor(set, vm.CoalitionOf(0), []vm.State{{vm.CPU: 0.5}, {}, {}, {}}, classes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(0b001, feats, 1); err != nil {
		t.Fatal(err)
	}
	if plan.Epoch() == a.Epoch() {
		t.Fatal("AddSample did not advance the epoch")
	}
}

// TestPlanValidation covers the compile-time failure modes.
func TestPlanValidation(t *testing.T) {
	set, classes, a := trainedRig(t, 0.01, 9)
	if _, err := NewPlan(nil, classes, a); !errors.Is(err, ErrPlan) {
		t.Fatalf("nil set err = %v", err)
	}
	bad := &ClassMap{ByType: []int{0}, Classes: 2}
	if _, err := NewPlan(set, bad, a); !errors.Is(err, ErrPlan) {
		t.Fatalf("mismatched classes err = %v", err)
	}
	// Right class count, but the set's type 2 is not covered by the map.
	short := &ClassMap{ByType: []int{0, 1}, Classes: 4}
	if _, err := NewPlan(set, short, a); !errors.Is(err, ErrPlan) {
		t.Fatalf("uncovered type err = %v", err)
	}
}
