package vhc

import (
	"fmt"
	"math"
	"testing"

	"vmpower/internal/vm"
)

// arbitraryCatalog builds n distinct VM configurations spanning small to
// large shapes, mimicking a cloud with per-customer custom sizes.
func arbitraryCatalog(n int) vm.Catalog {
	c := make(vm.Catalog, n)
	for i := 0; i < n; i++ {
		c[i] = vm.Type{
			ID:       vm.TypeID(i),
			Name:     fmt.Sprintf("custom%d", i),
			VCPUs:    1 + i%8,
			MemoryGB: 2 + 2*(i%7),
			DiskGB:   20 + 30*(i%5),
		}
	}
	return c
}

func TestIdentityClassMap(t *testing.T) {
	m, err := IdentityClassMap(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Classes != 4 {
		t.Fatalf("Classes = %d", m.Classes)
	}
	for i, c := range m.ByType {
		if c != i {
			t.Fatalf("ByType[%d] = %d", i, c)
		}
	}
	if _, err := IdentityClassMap(0); err == nil {
		t.Fatal("want numTypes error")
	}
	if _, err := IdentityClassMap(MaxTypes + 1); err == nil {
		t.Fatal("want numTypes error")
	}
}

func TestClassMapValidate(t *testing.T) {
	bad := &ClassMap{ByType: []int{0, 5}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("want out-of-range class error")
	}
	bad = &ClassMap{ByType: []int{0}, Classes: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("want classes-range error")
	}
}

func TestClusterTypes(t *testing.T) {
	catalog := arbitraryCatalog(20)
	m, err := ClusterTypes(catalog, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.ByType) != 20 {
		t.Fatalf("ByType covers %d types", len(m.ByType))
	}
	if m.Classes < 1 || m.Classes > 4 {
		t.Fatalf("Classes = %d", m.Classes)
	}
	if len(m.Centroids) != m.Classes {
		t.Fatalf("%d centroids for %d classes", len(m.Centroids), m.Classes)
	}
	// Determinism: same seed, same map.
	m2, err := ClusterTypes(catalog, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.ByType {
		if m.ByType[i] != m2.ByType[i] {
			t.Fatal("clustering not deterministic for a fixed seed")
		}
	}
}

func TestClusterTypesGroupsSimilarConfigs(t *testing.T) {
	// Two tight groups of configurations must land in two classes with
	// the groups kept intact.
	catalog := vm.Catalog{
		{ID: 0, Name: "s1", VCPUs: 1, MemoryGB: 2, DiskGB: 20},
		{ID: 1, Name: "s2", VCPUs: 1, MemoryGB: 2, DiskGB: 25},
		{ID: 2, Name: "s3", VCPUs: 2, MemoryGB: 2, DiskGB: 20},
		{ID: 3, Name: "b1", VCPUs: 8, MemoryGB: 32, DiskGB: 500},
		{ID: 4, Name: "b2", VCPUs: 8, MemoryGB: 30, DiskGB: 480},
	}
	m, err := ClusterTypes(catalog, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes != 2 {
		t.Fatalf("Classes = %d", m.Classes)
	}
	if m.ByType[0] != m.ByType[1] || m.ByType[1] != m.ByType[2] {
		t.Fatalf("small group split: %v", m.ByType)
	}
	if m.ByType[3] != m.ByType[4] {
		t.Fatalf("big group split: %v", m.ByType)
	}
	if m.ByType[0] == m.ByType[3] {
		t.Fatalf("groups merged: %v", m.ByType)
	}
}

func TestClusterTypesValidation(t *testing.T) {
	catalog := arbitraryCatalog(5)
	if _, err := ClusterTypes(catalog, 0, 1); err == nil {
		t.Fatal("want k error")
	}
	if _, err := ClusterTypes(catalog, 6, 1); err == nil {
		t.Fatal("want k > n error")
	}
	if _, err := ClusterTypes(vm.Catalog{}, 1, 1); err == nil {
		t.Fatal("want empty-catalog error")
	}
}

func TestClusterTypesDuplicatePoints(t *testing.T) {
	// All-identical configs: k-means++ must not spin; one class remains
	// after dense relabelling (or k duplicated centres collapse).
	catalog := vm.Catalog{
		{ID: 0, Name: "a", VCPUs: 2, MemoryGB: 4, DiskGB: 40},
		{ID: 1, Name: "b", VCPUs: 2, MemoryGB: 4, DiskGB: 40},
		{ID: 2, Name: "c", VCPUs: 2, MemoryGB: 4, DiskGB: 40},
	}
	m, err := ClusterTypes(catalog, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := m.ByType[0]
	for _, c := range m.ByType {
		if c != first {
			t.Fatalf("identical configs split: %v", m.ByType)
		}
	}
}

func TestClassedFeaturesFor(t *testing.T) {
	catalog := vm.Catalog{
		{ID: 0, Name: "a", VCPUs: 1, MemoryGB: 2, DiskGB: 20},
		{ID: 1, Name: "b", VCPUs: 1, MemoryGB: 2, DiskGB: 22}, // same class as a
		{ID: 2, Name: "c", VCPUs: 8, MemoryGB: 32, DiskGB: 500},
	}
	set, err := vm.NewSet(catalog, []vm.VM{{Type: 0}, {Type: 1}, {Type: 2}})
	if err != nil {
		t.Fatal(err)
	}
	classes := &ClassMap{ByType: []int{0, 0, 1}, Classes: 2}
	states := []vm.State{{vm.CPU: 0.4}, {vm.CPU: 0.5}, {vm.CPU: 0.9}}
	combo, features, err := ClassedFeaturesFor(set, vm.GrandCoalition(3), states, classes)
	if err != nil {
		t.Fatal(err)
	}
	if combo != 0b11 {
		t.Fatalf("combo = %v", combo)
	}
	k := int(vm.NumComponents)
	if len(features) != 2*k {
		t.Fatalf("feature length = %d", len(features))
	}
	// Types 0 and 1 share class 0: their CPU states sum.
	if math.Abs(features[0]-0.9) > 1e-12 {
		t.Fatalf("class-0 CPU = %g, want 0.9", features[0])
	}
	if math.Abs(features[k]-0.9) > 1e-12 {
		t.Fatalf("class-1 CPU = %g, want 0.9", features[k])
	}
	// A class map that does not cover the catalog errors out.
	shortMap := &ClassMap{ByType: []int{0}, Classes: 1}
	if _, _, err := ClassedFeaturesFor(set, vm.GrandCoalition(3), states, shortMap); err == nil {
		t.Fatal("want uncovered-type error")
	}
}

func TestClassComboFor(t *testing.T) {
	catalog := arbitraryCatalog(4)
	set, err := vm.NewSet(catalog, []vm.VM{{Type: 0}, {Type: 3}})
	if err != nil {
		t.Fatal(err)
	}
	classes := &ClassMap{ByType: []int{0, 0, 1, 1}, Classes: 2}
	combo, err := ClassComboFor(set, vm.GrandCoalition(2), classes)
	if err != nil {
		t.Fatal(err)
	}
	if combo != 0b11 {
		t.Fatalf("combo = %v", combo)
	}
	combo, err = ClassComboFor(set, vm.CoalitionOf(0), classes)
	if err != nil {
		t.Fatal(err)
	}
	if combo != 0b01 {
		t.Fatalf("combo = %v", combo)
	}
}
