package vhc

import (
	"errors"
	"fmt"
	"math/bits"

	"vmpower/internal/vm"
)

// This file implements the compiled worth plan: an immutable, lock-free
// snapshot of everything the online estimation hot path needs to evaluate
// v(S, C) — per-VM class bits, the fitted mapping vectors and the
// exact-match v(S,C) table with its means precomputed — so a tick's 2^n
// worth evaluations become allocation-free array gathers and dot products
// on stack scratch, instead of the legacy path's per-coalition combo map,
// feature slice and RWMutex-guarded table lookup.
//
// The online contract already guarantees the model is fixed between
// retrainings; a Plan makes that explicit. Compile one per epoch
// (Approximator.Epoch changes on every mutation) and share it freely: a
// Plan is never mutated after NewPlan returns, so Eval is safe for
// concurrent use from any number of goroutines with zero synchronisation.

// ErrPlan marks plan compilation failures.
var ErrPlan = errors.New("vhc: cannot compile worth plan")

// Plan is a compiled, immutable evaluation plan for v(S, C) over a fixed
// VM set, class map and trained model snapshot.
type Plan struct {
	n          int     // VMs in the set
	resolution float64 // table lattice resolution (<= 0: no table)
	epoch      uint64  // Approximator.Epoch at compile time

	// classBit[i] is 1 << class(type(vm i)): ORing the members' bits
	// yields the coalition's ComboMask, and popcounting the bits below a
	// member's own bit yields its class's rank — i.e. its feature-slot
	// base — inside the combo's feature vector.
	classBit []ComboMask

	// weights[combo] is the fitted mapping vector (nil if untrained);
	// table[combo] maps lattice keys to precomputed entry means (nil if
	// the combo has no exact-match entries). Both indexed by ComboMask.
	weights [][]float64
	table   []map[tableKey]float64
}

// NewPlan compiles a plan from the set's catalog layout, the class map
// and the approximator's current trained state. The snapshot is taken
// under the approximator's read lock; later mutations (AddSample, Train,
// Import) do not affect the plan but advance the epoch, which holders
// should watch to recompile (see Epoch).
func NewPlan(set *vm.Set, classes *ClassMap, a *Approximator) (*Plan, error) {
	if set == nil || classes == nil || a == nil {
		return nil, fmt.Errorf("%w: nil set, classes or approximator", ErrPlan)
	}
	if err := classes.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	if classes.Classes != a.numTypes {
		return nil, fmt.Errorf("%w: class map has %d classes, approximator %d",
			ErrPlan, classes.Classes, a.numTypes)
	}
	n := set.Len()
	p := &Plan{
		n:        n,
		classBit: make([]ComboMask, n),
	}
	for i := 0; i < n; i++ {
		v, err := set.VM(vm.ID(i))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPlan, err)
		}
		if int(v.Type) >= len(classes.ByType) {
			return nil, fmt.Errorf("%w: type %d not covered by class map", ErrPlan, v.Type)
		}
		p.classBit[i] = 1 << uint(classes.ByType[v.Type])
	}

	a.mu.RLock()
	defer a.mu.RUnlock()
	p.resolution = a.resolution
	p.epoch = a.epoch
	combos := 1 << uint(a.numTypes)
	p.weights = make([][]float64, combos)
	p.table = make([]map[tableKey]float64, combos)
	for combo, w := range a.weights {
		p.weights[combo] = append([]float64(nil), w...)
	}
	for combo, entries := range a.table {
		if len(entries) == 0 {
			continue
		}
		means := make(map[tableKey]float64, len(entries))
		for k, e := range entries {
			means[k] = e.mean()
		}
		p.table[combo] = means
	}
	return p, nil
}

// NumVMs returns the VM-set size the plan was compiled for.
func (p *Plan) NumVMs() int { return p.n }

// Epoch returns the Approximator.Epoch the plan snapshot was taken at.
func (p *Plan) Epoch() uint64 { return p.epoch }

// Eval returns v(S, C): the exact-match table mean if the coalition's
// quantized aggregated state was measured offline, otherwise the linear
// approximation Σ_j w_j·v_j clamped at zero. The empty coalition is 0.
//
// It is the allocation-free equivalent of ClassedFeaturesFor followed by
// Approximator.Estimate, and matches them bit for bit: member states are
// accumulated into each class slot in ascending VM-ID order (the same
// addition order as the legacy aggregation) and the dot product runs the
// same ascending loop as linalg.Vector.Dot.
//
// states is indexed by vm.ID and must cover the plan's VM set; entries of
// non-members are ignored. The caller is responsible for masking out
// stopped VMs (dummies) before calling, exactly as with the legacy path.
func (p *Plan) Eval(s vm.Coalition, states []vm.State) (float64, error) {
	const k = int(vm.NumComponents)
	if len(states) < p.n {
		return 0, fmt.Errorf("vhc: %d states for %d planned VMs", len(states), p.n)
	}
	var combo ComboMask
	for m := uint32(s); m != 0; {
		b := bits.TrailingZeros32(m)
		m &^= 1 << uint(b)
		if b >= len(p.classBit) {
			return 0, fmt.Errorf("vhc: plan compiled for %d VMs, coalition has member %d", p.n, b)
		}
		combo |= p.classBit[b]
	}
	if combo == 0 {
		return 0, nil
	}
	var feat [maxFeatureLen]float64
	for m := uint32(s); m != 0; {
		b := bits.TrailingZeros32(m)
		m &^= 1 << uint(b)
		cb := p.classBit[b]
		base := bits.OnesCount16(uint16(combo&(cb-1))) * k
		st := &states[b]
		for c := 0; c < k; c++ {
			feat[base+c] += st[c]
		}
	}
	flen := combo.Size() * k
	if p.resolution > 0 {
		if t := p.table[combo]; t != nil {
			var key tableKey
			for i := 0; i < flen; i++ {
				key[i] = latticeCoord(feat[i], p.resolution)
			}
			if v, ok := t[key]; ok {
				return v, nil
			}
		}
	}
	w := p.weights[combo]
	if w == nil {
		return 0, fmt.Errorf("%w: %s", ErrUntrained, combo)
	}
	var dot float64
	for i, x := range w {
		dot += x * feat[i]
	}
	if dot < 0 {
		dot = 0
	}
	return dot, nil
}
