package vhc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"vmpower/internal/vm"
)

// This file implements the paper's Sec. VIII "applicable scenario" future
// work: when VMs are configured with arbitrary hardware resources the
// number of VM types explodes and the 2^r VHC traversal becomes
// infeasible. ClusterTypes compresses an arbitrary type catalog into a
// small number of classes by k-means over normalized resource vectors;
// the resulting ClassMap plugs into ClassedFeatures so the VHC machinery
// runs over classes instead of raw types.

// ClassMap maps every vm.TypeID (by index) to a class in [0, Classes).
type ClassMap struct {
	// ByType[t] is the class of type t.
	ByType []int
	// Classes is the number of classes.
	Classes int
	// Centroids are the class centres in normalized (vCPU, memGB,
	// diskGB) space, for inspection.
	Centroids [][3]float64
}

// Validate checks the map is well-formed.
func (m *ClassMap) Validate() error {
	if m.Classes < 1 || m.Classes > MaxTypes {
		return fmt.Errorf("vhc: %d classes outside [1,%d]", m.Classes, MaxTypes)
	}
	for t, c := range m.ByType {
		if c < 0 || c >= m.Classes {
			return fmt.Errorf("vhc: type %d mapped to class %d of %d", t, c, m.Classes)
		}
	}
	return nil
}

// IdentityClassMap maps every type to its own class (the paper's base
// setting, where the catalog is already small).
func IdentityClassMap(numTypes int) (*ClassMap, error) {
	if numTypes < 1 || numTypes > MaxTypes {
		return nil, fmt.Errorf("vhc: numTypes %d outside [1,%d]", numTypes, MaxTypes)
	}
	byType := make([]int, numTypes)
	for i := range byType {
		byType[i] = i
	}
	return &ClassMap{ByType: byType, Classes: numTypes}, nil
}

// typeVector normalizes a VM configuration for clustering. Scales chosen
// so one large dimension cannot dominate: vCPUs /16, memory /64 GB,
// disk /1000 GB.
func typeVector(t vm.Type) [3]float64 {
	return [3]float64{
		float64(t.VCPUs) / 16,
		float64(t.MemoryGB) / 64,
		float64(t.DiskGB) / 1000,
	}
}

func dist2(a, b [3]float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ClusterTypes groups an arbitrary catalog into k classes with k-means
// (k-means++ seeding, deterministic in seed). k must not exceed the
// catalog size or MaxTypes.
func ClusterTypes(catalog vm.Catalog, k int, seed int64) (*ClassMap, error) {
	if err := catalog.Validate(); err != nil {
		return nil, err
	}
	n := len(catalog)
	if n == 0 {
		return nil, errors.New("vhc: empty catalog")
	}
	if k < 1 || k > MaxTypes {
		return nil, fmt.Errorf("vhc: k=%d outside [1,%d]", k, MaxTypes)
	}
	if k > n {
		return nil, fmt.Errorf("vhc: k=%d exceeds %d catalog types", k, n)
	}
	points := make([][3]float64, n)
	for i, t := range catalog {
		points[i] = typeVector(t)
	}

	rng := rand.New(rand.NewSource(seed))
	centroids := seedKMeansPP(points, k, rng)

	assign := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := dist2(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids; an empty cluster keeps its old centre.
		var sums [][3]float64 = make([][3]float64, k)
		counts := make([]int, k)
		for i, p := range points {
			c := assign[i]
			for d := 0; d < 3; d++ {
				sums[c][d] += p[d]
			}
			counts[c]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < 3; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	// Relabel classes densely in order of first appearance so the map is
	// stable and empty clusters vanish.
	relabel := make(map[int]int)
	byType := make([]int, n)
	for i, c := range assign {
		nc, ok := relabel[c]
		if !ok {
			nc = len(relabel)
			relabel[c] = nc
		}
		byType[i] = nc
	}
	dense := make([][3]float64, len(relabel))
	for old, nc := range relabel {
		dense[nc] = centroids[old]
	}
	return &ClassMap{ByType: byType, Classes: len(relabel), Centroids: dense}, nil
}

// seedKMeansPP picks k initial centres with k-means++ weighting.
func seedKMeansPP(points [][3]float64, k int, rng *rand.Rand) [][3]float64 {
	centroids := make([][3]float64, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))])
	for len(centroids) < k {
		weights := make([]float64, len(points))
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := dist2(p, c); d < best {
					best = d
				}
			}
			weights[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with a centre; duplicate one.
			centroids = append(centroids, points[rng.Intn(len(points))])
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, w := range weights {
			target -= w
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx])
	}
	return centroids
}

// ClassComboFor returns the class combination of a coalition under the
// class map.
func ClassComboFor(set *vm.Set, mask vm.Coalition, classes *ClassMap) (ComboMask, error) {
	if err := classes.Validate(); err != nil {
		return 0, err
	}
	var combo ComboMask
	for _, id := range mask.Members() {
		v, err := set.VM(id)
		if err != nil {
			return 0, err
		}
		if int(v.Type) >= len(classes.ByType) {
			return 0, fmt.Errorf("vhc: type %d not covered by class map", v.Type)
		}
		combo |= 1 << uint(classes.ByType[v.Type])
	}
	return combo, nil
}

// ClassedFeaturesFor aggregates a coalition's states per *class* instead
// of per type (the arbitrary-configuration generalization of Eq. 8) and
// returns the class combo plus the flattened feature vector.
func ClassedFeaturesFor(set *vm.Set, mask vm.Coalition, states []vm.State, classes *ClassMap) (ComboMask, []float64, error) {
	if err := classes.Validate(); err != nil {
		return 0, nil, err
	}
	if len(states) != set.Len() {
		return 0, nil, fmt.Errorf("vhc: %d states for %d VMs", len(states), set.Len())
	}
	agg := make(map[vm.TypeID]vm.State, classes.Classes)
	var combo ComboMask
	for _, id := range mask.Members() {
		v, err := set.VM(id)
		if err != nil {
			return 0, nil, err
		}
		if int(v.Type) >= len(classes.ByType) {
			return 0, nil, fmt.Errorf("vhc: type %d not covered by class map", v.Type)
		}
		class := vm.TypeID(classes.ByType[v.Type])
		combo |= 1 << uint(class)
		agg[class] = agg[class].Add(states[int(id)])
	}
	return combo, Features(combo, agg), nil
}
