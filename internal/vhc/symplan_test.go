package vhc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vmpower/internal/vm"
)

// symRigClasses groups the test set (2x type0, 1x type1, 1x type2) into
// symmetry classes for states where VMs 0 and 1 share a bit-equal state.
func symRigClasses(t *testing.T, plan *Plan, states []vm.State) []SymClass {
	t.Helper()
	b0, err := plan.ClassBit(0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := plan.ClassBit(2)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := plan.ClassBit(3)
	if err != nil {
		t.Fatal(err)
	}
	return []SymClass{
		{Bit: b0, State: states[0], Count: 2, First: 0},
		{Bit: b2, State: states[2], Count: 1, First: 2},
		{Bit: b3, State: states[3], Count: 1, First: 3},
	}
}

// maskForCounts returns one coalition mask realising the count vector
// over the test set's class layout ({0,1} | {2} | {3}).
func maskForCounts(tv []int) vm.Coalition {
	var mask vm.Coalition
	switch tv[0] {
	case 1:
		mask = mask.With(0)
	case 2:
		mask = mask.With(0).With(1)
	}
	if tv[1] > 0 {
		mask = mask.With(2)
	}
	if tv[2] > 0 {
		mask = mask.With(3)
	}
	return mask
}

// TestEvalCountsMatchesEval pins the collapsed evaluator to the mask
// evaluator bit for bit, on every count vector and every mask realising
// it, across table-hit and regression regimes. VMs 0 and 1 share a state
// so they form a genuine 2-member symmetry class.
func TestEvalCountsMatchesEval(t *testing.T) {
	for _, res := range []float64{0, 0.01, 0.1} {
		set, classes, a := trainedRig(t, res, 23)
		plan, err := NewPlan(set, classes, a)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 500; trial++ {
			states := make([]vm.State, set.Len())
			for i := range states {
				for c := 0; c < int(vm.NumComponents); c++ {
					states[i][c] = math.Round(rng.Float64()*100) / 100
				}
			}
			states[1] = states[0] // collapse VMs 0 and 1 into one class
			sym := symRigClasses(t, plan, states)

			tv := make([]int, 3)
			for t0 := 0; t0 <= 2; t0++ {
				for t1 := 0; t1 <= 1; t1++ {
					for t2 := 0; t2 <= 1; t2++ {
						tv[0], tv[1], tv[2] = t0, t1, t2
						got, gotErr := plan.EvalCounts(sym, tv)
						mask := maskForCounts(tv)
						want, wantErr := plan.Eval(mask, states)
						if (gotErr != nil) != (wantErr != nil) {
							t.Fatalf("res=%g t=%v: counts err %v, mask err %v", res, tv, gotErr, wantErr)
						}
						if gotErr == nil && got != want {
							t.Fatalf("res=%g t=%v mask=%s: counts %v != mask %v (diff %g)",
								res, tv, mask, got, want, got-want)
						}
						// The symmetric-pair vector must also match the OTHER
						// mask realising it.
						if t0 == 1 {
							alt := mask.Without(0).With(1)
							wantAlt, err := plan.Eval(alt, states)
							if err == nil && gotErr == nil && got != wantAlt {
								t.Fatalf("res=%g t=%v alt mask=%s: counts %v != mask %v",
									res, tv, alt, got, wantAlt)
							}
						}
					}
				}
			}
		}
	}
}

func TestEvalCountsErrors(t *testing.T) {
	set, classes, a := trainedRig(t, 0.01, 29)
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]vm.State, set.Len())
	sym := symRigClasses(t, plan, states)
	if _, err := plan.EvalCounts(sym, []int{1, 1}); err == nil {
		t.Fatal("count/class length mismatch must error")
	}
	if _, err := plan.EvalCounts(sym, []int{3, 0, 0}); err == nil {
		t.Fatal("count above class size must error")
	}
	if _, err := plan.EvalCounts(sym, []int{-1, 0, 0}); err == nil {
		t.Fatal("negative count must error")
	}
	if v, err := plan.EvalCounts(sym, []int{0, 0, 0}); err != nil || v != 0 {
		t.Fatalf("empty vector = (%v, %v), want (0, nil)", v, err)
	}
	if _, err := plan.ClassBit(-1); err == nil {
		t.Fatal("negative VM must error")
	}
	if _, err := plan.ClassBit(set.Len()); err == nil {
		t.Fatal("out-of-range VM must error")
	}
}

// TestEvalCountsUntrained pins error parity with Eval on an untrained
// combo.
func TestEvalCountsUntrained(t *testing.T) {
	set := testSet(t)
	classes, err := IdentityClassMap(len(set.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(classes.Classes, Options{Resolution: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	states := []vm.State{{vm.CPU: 0.5}, {vm.CPU: 0.5}, {}, {}}
	for i := 0; i < 4; i++ {
		states[0][vm.CPU] = 0.1 * float64(i+1)
		states[1] = states[0]
		_, feats, err := ClassedFeaturesFor(set, vm.CoalitionOf(0, 1), states, classes)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.AddSample(0b001, feats, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	sym := symRigClasses(t, plan, states)
	if _, err := plan.EvalCounts(sym, []int{2, 0, 0}); err != nil {
		t.Fatalf("trained combo: %v", err)
	}
	if _, err := plan.EvalCounts(sym, []int{0, 1, 0}); !errors.Is(err, ErrUntrained) {
		t.Fatalf("untrained combo err = %v, want ErrUntrained", err)
	}
}

// TestEvalCountsZeroAlloc extends the plan's zero-allocation claim to the
// collapsed evaluator.
func TestEvalCountsZeroAlloc(t *testing.T) {
	set, classes, a := trainedRig(t, 0.01, 31)
	plan, err := NewPlan(set, classes, a)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]vm.State, set.Len())
	for i := range states {
		states[i] = vm.State{vm.CPU: 0.37, vm.Memory: 0.12, vm.DiskIO: 0.05}
	}
	sym := symRigClasses(t, plan, states)
	tv := []int{2, 1, 1}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := plan.EvalCounts(sym, tv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("plan.EvalCounts allocates %v per run, want 0", allocs)
	}
}

// TestClassedFeaturesRunningMatchesMask pins the wide-set feature builder
// to the mask form bit for bit on every coalition both can represent.
func TestClassedFeaturesRunningMatchesMask(t *testing.T) {
	set := testSet(t)
	classes, err := IdentityClassMap(len(set.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	full := vm.GrandCoalition(set.Len())
	for trial := 0; trial < 200; trial++ {
		mask := vm.Coalition(rng.Intn(int(full) + 1))
		states := make([]vm.State, set.Len())
		for i := range states {
			for c := 0; c < int(vm.NumComponents); c++ {
				states[i][c] = rng.Float64()
			}
		}
		running := make([]bool, set.Len())
		for i := range running {
			running[i] = mask.Contains(vm.ID(i))
		}
		combo, feats, err := ClassedFeaturesFor(set, mask, states, classes)
		if err != nil {
			t.Fatal(err)
		}
		comboR, featsR, err := ClassedFeaturesRunning(set, running, states, classes)
		if err != nil {
			t.Fatal(err)
		}
		if combo != comboR {
			t.Fatalf("mask=%s: combo %s != running combo %s", mask, combo, comboR)
		}
		if len(feats) != len(featsR) {
			t.Fatalf("mask=%s: %d features vs %d", mask, len(feats), len(featsR))
		}
		for i := range feats {
			if feats[i] != featsR[i] {
				t.Fatalf("mask=%s feature %d: %v != %v", mask, i, feats[i], featsR[i])
			}
		}
	}
	if _, _, err := ClassedFeaturesRunning(set, make([]bool, 2), make([]vm.State, set.Len()), classes); err == nil {
		t.Fatal("wrong running length must error")
	}
	if _, _, err := ClassedFeaturesRunning(set, make([]bool, set.Len()), make([]vm.State, 1), classes); err == nil {
		t.Fatal("wrong states length must error")
	}
}
