package vhc

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func trainedApprox(t *testing.T) *Approximator {
	t.Helper()
	a, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	synthSamples(t, a, 0b01, []float64{9.4, 0.3, 2.1}, 40, 1)
	synthSamples(t, a, 0b11, []float64{9.4, 0.3, 2.1, 17.9, 0.5, 1.2}, 60, 2)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestExportImportRoundTrip(t *testing.T) {
	src := trainedApprox(t)
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, combo := range []ComboMask{0b01, 0b11} {
		ws, err := src.Weights(combo)
		if err != nil {
			t.Fatal(err)
		}
		wd, err := dst.Weights(combo)
		if err != nil {
			t.Fatal(err)
		}
		if !ws.Equalish(wd, 1e-12) {
			t.Fatalf("combo %s weights differ: %v vs %v", combo, ws, wd)
		}
		dSrc, err := src.Diags(combo)
		if err != nil {
			t.Fatal(err)
		}
		dDst, err := dst.Diags(combo)
		if err != nil {
			t.Fatal(err)
		}
		if dSrc.Samples != dDst.Samples || math.Abs(dSrc.RMSE-dDst.RMSE) > 1e-12 {
			t.Fatalf("diags differ: %+v vs %+v", dSrc, dDst)
		}
	}
	// Estimates agree on fresh inputs.
	features := []float64{0.7, 0.2, 0.05}
	es, err := src.Estimate(0b01, features)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := dst.Estimate(0b01, features)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(es-ed) > 1e-12 {
		t.Fatalf("estimates differ: %g vs %g", es, ed)
	}
}

func TestExportUntrained(t *testing.T) {
	a, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Export(&bytes.Buffer{}); !errors.Is(err, ErrUntrained) {
		t.Fatalf("want ErrUntrained, got %v", err)
	}
}

func TestImportErrors(t *testing.T) {
	a, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		input string
	}{
		{name: "garbage", input: "not json"},
		{name: "wrong version", input: `{"version":99,"num_types":2,"combos":[]}`},
		{name: "wrong types", input: `{"version":1,"num_types":3,"combos":[{"combo":1,"weights":[1,2,3]}]}`},
		{name: "no combos", input: `{"version":1,"num_types":2,"combos":[]}`},
		{name: "combo out of range", input: `{"version":1,"num_types":2,"combos":[{"combo":8,"weights":[1,2,3]}]}`},
		{name: "weight length", input: `{"version":1,"num_types":2,"combos":[{"combo":1,"weights":[1]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := a.Import(strings.NewReader(tc.input)); !errors.Is(err, ErrModelFormat) {
				t.Fatalf("want ErrModelFormat, got %v", err)
			}
		})
	}
}

func TestImportReplacesState(t *testing.T) {
	src := trainedApprox(t)
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	// A differently trained approximator imports the model and forgets
	// its own table/samples.
	other, err := New(2, Options{Resolution: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	synthSamples(t, other, 0b01, []float64{100, 100, 100}, 20, 9)
	if err := other.Train(); err != nil {
		t.Fatal(err)
	}
	if err := other.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if other.SampleCount(0b01) != 0 {
		t.Fatal("Import must drop the old sample table")
	}
	w, err := other.Weights(0b01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-9.4) > 1e-9 {
		t.Fatalf("imported weight = %g, want 9.4", w[0])
	}
}
