package vhc

import (
	"fmt"
	"math/bits"

	"vmpower/internal/vm"
)

// This file extends the compiled worth plan to symmetry-collapsed
// evaluation: when the host's VMs group into classes that share a VHC
// class bit AND a bit-equal quantized state, v(S, C) depends only on how
// many members of each class S contains, and the plan can evaluate a
// type-count vector directly without materialising any coalition mask.
// This is what lets core estimate exactly past the 2^n mask wall.

// SymClass describes one symmetry class of the current tick: a maximal
// group of running VMs with the same plan class bit and bit-equal state.
type SymClass struct {
	// Bit is the plan class bit shared by every member (1 << VHC class).
	Bit ComboMask
	// State is the members' shared quantized state (bit-equal across the
	// class by construction).
	State vm.State
	// Count is the number of members.
	Count int
	// First is the lowest VM ID in the class, fixing a stable class order.
	First int
}

// ClassBit returns VM i's compiled class bit (1 << class(type(vm i))).
func (p *Plan) ClassBit(i int) (ComboMask, error) {
	if i < 0 || i >= p.n {
		return 0, fmt.Errorf("vhc: plan compiled for %d VMs, no VM %d", p.n, i)
	}
	return p.classBit[i], nil
}

// EvalCounts returns v(t, C): the worth of a coalition containing t[j]
// members of symmetry class j, under the plan's trained snapshot. It is
// equivalent to Eval on any mask realising those counts — and bit-equal
// to it, because each class slot is accumulated by repeated addition of
// the shared state (t[j] copies), the exact float sequence the per-member
// aggregation produces; a multiplicative t·x shortcut could differ in the
// last ulp and flip an exact-match table hit near a lattice boundary.
// The all-zero vector is the empty coalition, worth 0.
func (p *Plan) EvalCounts(classes []SymClass, t []int) (float64, error) {
	const k = int(vm.NumComponents)
	if len(t) != len(classes) {
		return 0, fmt.Errorf("vhc: %d counts for %d classes", len(t), len(classes))
	}
	var combo ComboMask
	for j := range classes {
		switch {
		case t[j] < 0 || t[j] > classes[j].Count:
			return 0, fmt.Errorf("vhc: count t[%d]=%d outside [0,%d]", j, t[j], classes[j].Count)
		case t[j] > 0:
			combo |= classes[j].Bit
		}
	}
	if combo == 0 {
		return 0, nil
	}
	var feat [maxFeatureLen]float64
	for j := range classes {
		if t[j] == 0 {
			continue
		}
		cb := classes[j].Bit
		base := bits.OnesCount16(uint16(combo&(cb-1))) * k
		st := &classes[j].State
		for x := 0; x < t[j]; x++ {
			for c := 0; c < k; c++ {
				feat[base+c] += st[c]
			}
		}
	}
	flen := combo.Size() * k
	if p.resolution > 0 {
		if tab := p.table[combo]; tab != nil {
			var key tableKey
			for i := 0; i < flen; i++ {
				key[i] = latticeCoord(feat[i], p.resolution)
			}
			if v, ok := tab[key]; ok {
				return v, nil
			}
		}
	}
	w := p.weights[combo]
	if w == nil {
		return 0, fmt.Errorf("%w: %s", ErrUntrained, combo)
	}
	var dot float64
	for i, x := range w {
		dot += x * feat[i]
	}
	if dot < 0 {
		dot = 0
	}
	return dot, nil
}

// ClassedFeaturesRunning is ClassedFeaturesFor over a running-flag vector
// instead of a coalition mask — the wide-set form used when the VM set
// exceeds the bitmask cap. Flags are scanned in ascending VM-ID order, the
// same addition order as the mask form, so the two agree bit for bit on
// sets both can represent.
func ClassedFeaturesRunning(set *vm.Set, running []bool, states []vm.State, classes *ClassMap) (ComboMask, []float64, error) {
	if err := classes.Validate(); err != nil {
		return 0, nil, err
	}
	if len(states) != set.Len() {
		return 0, nil, fmt.Errorf("vhc: %d states for %d VMs", len(states), set.Len())
	}
	if len(running) != set.Len() {
		return 0, nil, fmt.Errorf("vhc: %d running flags for %d VMs", len(running), set.Len())
	}
	agg := make(map[vm.TypeID]vm.State, classes.Classes)
	var combo ComboMask
	for i, r := range running {
		if !r {
			continue
		}
		v, err := set.VM(vm.ID(i))
		if err != nil {
			return 0, nil, err
		}
		if int(v.Type) >= len(classes.ByType) {
			return 0, nil, fmt.Errorf("vhc: type %d not covered by class map", v.Type)
		}
		class := vm.TypeID(classes.ByType[v.Type])
		combo |= 1 << uint(class)
		agg[class] = agg[class].Add(states[i])
	}
	return combo, Features(combo, agg), nil
}
