package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"vmpower/internal/vm"
)

// Trace replays a recorded utilization series — the substitution point
// for production VM traces: export per-second (cpu, mem, disk) samples
// from any monitoring system as CSV and drive the accounting with them.
type Trace struct {
	// Label names the trace (Name() falls back to "trace").
	Label string
	// Samples is the recorded per-tick state series.
	Samples []vm.State
	// Loop wraps around at the end; otherwise the last sample holds.
	Loop bool
}

// Name implements Generator.
func (t Trace) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "trace"
}

// StateAt implements Generator.
func (t Trace) StateAt(tick int) vm.State {
	n := len(t.Samples)
	if n == 0 {
		return vm.State{}
	}
	if tick < 0 {
		tick = 0
	}
	if tick >= n {
		if t.Loop {
			tick %= n
		} else {
			tick = n - 1
		}
	}
	return t.Samples[tick]
}

// ErrTraceFormat marks malformed trace CSV input.
var ErrTraceFormat = errors.New("workload: malformed trace CSV")

// TraceFromCSV parses a utilization trace: one row per second with 1–3
// numeric columns (cpu[, mem[, disk]]), each in [0, 1]. A header row whose
// first field is not numeric is skipped.
func TraceFromCSV(label string, r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	trace := Trace{Label: label}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("%w: %v", ErrTraceFormat, err)
		}
		line++
		if len(rec) < 1 || len(rec) > int(vm.NumComponents) {
			return Trace{}, fmt.Errorf("%w: line %d has %d columns, want 1..%d", ErrTraceFormat, line, len(rec), vm.NumComponents)
		}
		var s vm.State
		skip := false
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				if line == 1 && i == 0 {
					skip = true // header row
					break
				}
				return Trace{}, fmt.Errorf("%w: line %d column %d: %v", ErrTraceFormat, line, i+1, err)
			}
			s[vm.Component(i)] = v
		}
		if skip {
			continue
		}
		if err := s.Validate(); err != nil {
			return Trace{}, fmt.Errorf("%w: line %d: %v", ErrTraceFormat, line, err)
		}
		trace.Samples = append(trace.Samples, s)
	}
	if len(trace.Samples) == 0 {
		return Trace{}, fmt.Errorf("%w: no samples", ErrTraceFormat)
	}
	return trace, nil
}
