package workload

import (
	"strings"
	"testing"
)

// FuzzTraceFromCSV checks the trace parser never panics and only accepts
// traces whose every sample validates.
func FuzzTraceFromCSV(f *testing.F) {
	f.Add("cpu,mem,disk\n0.5,0.1,0\n")
	f.Add("0.5\n1.0\n")
	f.Add("")
	f.Add("a,b,c,d\n")
	f.Add("0.5,0.5,0.5,0.5\n")
	f.Add("1e999\n")
	f.Add("NaN\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		tr, err := TraceFromCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if len(tr.Samples) == 0 {
			t.Fatal("accepted an empty trace")
		}
		for i, s := range tr.Samples {
			if err := s.Validate(); err != nil {
				t.Fatalf("sample %d invalid: %v", i, err)
			}
		}
		// Replay must be panic-free at any tick.
		_ = tr.StateAt(0)
		_ = tr.StateAt(len(tr.Samples) * 3)
		tr.Loop = true
		_ = tr.StateAt(len(tr.Samples)*3 + 1)
	})
}

// FuzzGeneratorTicks checks every built-in generator stays valid across
// arbitrary seeds and ticks.
func FuzzGeneratorTicks(f *testing.F) {
	f.Add(int64(0), 0)
	f.Add(int64(-1), 1<<20)
	f.Add(int64(1234567), 42)
	f.Fuzz(func(t *testing.T, seed int64, tick int) {
		if tick < 0 {
			tick = -tick
		}
		tick %= 1 << 22
		for _, name := range Names() {
			g, err := ByName(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.StateAt(tick).Validate(); err != nil {
				t.Fatalf("%s(%d) at %d: %v", name, seed, tick, err)
			}
		}
		d := Diurnal{Seed: seed}
		if err := d.StateAt(tick).Validate(); err != nil {
			t.Fatalf("diurnal: %v", err)
		}
	})
}
