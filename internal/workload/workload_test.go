package workload

import (
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

func TestGeneratorsProduceValidStates(t *testing.T) {
	for _, name := range Names() {
		gen, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if gen.Name() != name {
			t.Fatalf("Name = %q, want %q", gen.Name(), name)
		}
		for tick := 0; tick < 500; tick++ {
			s := gen.StateAt(tick)
			if err := s.Validate(); err != nil {
				t.Fatalf("%s tick %d: %v (state %v)", name, tick, err, s)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("want unknown-benchmark error")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		g1, _ := ByName(name, 7)
		g2, _ := ByName(name, 7)
		for tick := 0; tick < 100; tick++ {
			if g1.StateAt(tick) != g2.StateAt(tick) {
				t.Fatalf("%s: tick %d differs across identical generators", name, tick)
			}
		}
	}
}

func TestSeedDecorrelation(t *testing.T) {
	g1 := Synthetic{Seed: 1}
	g2 := Synthetic{Seed: 2}
	same := 0
	for tick := 0; tick < 200; tick++ {
		if g1.StateAt(tick) == g2.StateAt(tick) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d identical states", same)
	}
}

func TestIdleAndConstant(t *testing.T) {
	idle := Idle()
	if !idle.StateAt(3).IsIdle() {
		t.Fatal("Idle must produce the zero state")
	}
	want := vm.State{vm.CPU: 0.5, vm.Memory: 0.1}
	c := Constant("c", want)
	if c.StateAt(0) != want || c.StateAt(99) != want {
		t.Fatal("Constant must hold its state")
	}
}

func TestFloatPoint(t *testing.T) {
	fp := FloatPoint()
	s := fp.StateAt(0)
	if s[vm.CPU] != 1 {
		t.Fatalf("floatpoint CPU = %g, want 1", s[vm.CPU])
	}
	if s[vm.DiskIO] != 0 {
		t.Fatal("floatpoint must not touch disk")
	}
}

func TestSyntheticBounds(t *testing.T) {
	g := Synthetic{Lo: 0.3, Hi: 0.6, Seed: 5}
	for tick := 0; tick < 300; tick++ {
		u := g.StateAt(tick)[vm.CPU]
		if u < 0.3 || u > 0.6 {
			t.Fatalf("tick %d: cpu %g outside [0.3, 0.6]", tick, u)
		}
	}
	// Inverted bounds fall back to [0, 1].
	inv := Synthetic{Lo: 0.9, Hi: 0.1, Seed: 5}
	seenHigh := false
	for tick := 0; tick < 300; tick++ {
		if inv.StateAt(tick)[vm.CPU] > 0.9 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("inverted bounds should span [0,1]")
	}
}

func TestSyntheticComponentSweeps(t *testing.T) {
	g := Synthetic{Seed: 11}
	var maxMem, maxDisk float64
	for tick := 0; tick < 500; tick++ {
		s := g.StateAt(tick)
		if s[vm.Memory] > maxMem {
			maxMem = s[vm.Memory]
		}
		if s[vm.DiskIO] > maxDisk {
			maxDisk = s[vm.DiskIO]
		}
	}
	if maxMem < 0.3 {
		t.Fatalf("memory sweep too narrow: max %g", maxMem)
	}
	if maxDisk < 0.1 {
		t.Fatalf("disk sweep too narrow: max %g", maxDisk)
	}
	// Negative bounds pin the components at zero (pure-CPU synthetic).
	pure := Synthetic{MemHi: -1, DiskHi: -1, Seed: 11}
	for tick := 0; tick < 100; tick++ {
		s := pure.StateAt(tick)
		if s[vm.Memory] != 0 || s[vm.DiskIO] != 0 {
			t.Fatal("negative bounds must pin components at 0")
		}
	}
}

func TestSyntheticIdleProb(t *testing.T) {
	g := Synthetic{Seed: 3, IdleProb: 0.5}
	idles := 0
	const n = 1000
	for tick := 0; tick < n; tick++ {
		if g.StateAt(tick).IsIdle() {
			idles++
		}
	}
	if idles < n/3 || idles > 2*n/3 {
		t.Fatalf("idle fraction %d/%d far from 0.5", idles, n)
	}
	never := Synthetic{Seed: 3}
	for tick := 0; tick < 200; tick++ {
		if never.StateAt(tick).IsIdle() {
			t.Fatal("IdleProb=0 must never idle (CPU floor > 0 almost surely)")
		}
	}
}

func TestStepSchedule(t *testing.T) {
	s := Step{Label: "u", Levels: []float64{0.2, 0.8}, Dwell: 10}
	if s.Name() != "u" {
		t.Fatalf("Name = %q", s.Name())
	}
	if got := s.StateAt(0)[vm.CPU]; got != 0.2 {
		t.Fatalf("tick 0 = %g", got)
	}
	if got := s.StateAt(10)[vm.CPU]; got != 0.8 {
		t.Fatalf("tick 10 = %g", got)
	}
	if got := s.StateAt(20)[vm.CPU]; got != 0.2 {
		t.Fatalf("tick 20 must wrap, got %g", got)
	}
	empty := Step{}
	if empty.Name() != "step" {
		t.Fatalf("default name = %q", empty.Name())
	}
	if !empty.StateAt(5).IsIdle() {
		t.Fatal("empty schedule must idle")
	}
}

func TestDiurnalCycle(t *testing.T) {
	d := Diurnal{PeriodSec: 200, Jitter: 0.0001, Seed: 1}
	trough := d.StateAt(0)[vm.CPU]
	peak := d.StateAt(100)[vm.CPU]
	if trough > 0.2 {
		t.Fatalf("trough = %g, want ~0.15", trough)
	}
	if peak < 0.8 {
		t.Fatalf("peak = %g, want ~0.85", peak)
	}
	// The cycle repeats.
	if got := d.StateAt(200)[vm.CPU]; got > 0.2 {
		t.Fatalf("wrapped trough = %g", got)
	}
	// Defaults: inverted bounds fall back to 0.15..0.85.
	def := Diurnal{Low: 0.9, High: 0.1, PeriodSec: 100, Jitter: 0.0001}
	if got := def.StateAt(50)[vm.CPU]; got < 0.8 {
		t.Fatalf("default-bounds peak = %g", got)
	}
	if (Diurnal{}).Name() != "diurnal" {
		t.Fatal("name wrong")
	}
}

func TestSPECSuite(t *testing.T) {
	suite := SPECSuite(1)
	if len(suite) != 7 {
		t.Fatalf("suite size = %d", len(suite))
	}
	wantOrder := []string{"gcc", "gobmk", "sjeng", "omnetpp", "namd", "wrf", "tonto"}
	for i, g := range suite {
		if g.Name() != wantOrder[i] {
			t.Fatalf("suite[%d] = %q, want %q", i, g.Name(), wantOrder[i])
		}
	}
}

func TestSpecShapes(t *testing.T) {
	// sjeng must be steadier than gcc; omnetpp must use more memory
	// than sjeng — the variability classes the paper's suite provides.
	variance := func(g Generator) float64 {
		var sum, sumSq float64
		const n = 400
		for tick := 0; tick < n; tick++ {
			u := g.StateAt(tick)[vm.CPU]
			sum += u
			sumSq += u * u
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	meanMem := func(g Generator) float64 {
		var sum float64
		const n = 400
		for tick := 0; tick < n; tick++ {
			sum += g.StateAt(tick)[vm.Memory]
		}
		return sum / n
	}
	if variance(Sjeng(1)) >= variance(GCC(1)) {
		t.Fatal("sjeng should be steadier than gcc")
	}
	if meanMem(Omnetpp(1)) <= meanMem(Sjeng(1)) {
		t.Fatal("omnetpp should be more memory-hungry than sjeng")
	}
}

// Property: every generator at every tick yields a valid state.
func TestStateValidityProperty(t *testing.T) {
	f := func(seed int64, tick uint16) bool {
		for _, name := range Names() {
			g, err := ByName(name, seed)
			if err != nil {
				return false
			}
			if g.StateAt(int(tick)).Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
