// Package workload generates the per-tick VM component states the paper's
// benchmarks induce. The evaluation never consumes a benchmark's
// instructions — only the utilization time series it produces on a VM — so
// each SPEC CPU2006 benchmark from the paper's Table V is substituted by a
// deterministic synthetic generator reproducing its variability class
// (steady, bursty, phased, oscillating), plus the paper's own synthetic
// random-CPU benchmark used for offline v(S,C) measurement.
//
// All generators are pure functions of (seed, tick): random access is
// deterministic and goroutine-safe, which the experiments rely on.
package workload

import (
	"fmt"
	"math"

	"vmpower/internal/vm"
)

// Generator produces the component state a workload drives a VM to at a
// given 1 Hz tick. Implementations must be deterministic in (seed, tick)
// and safe for concurrent use.
type Generator interface {
	// Name identifies the workload (e.g. "gcc", "synthetic").
	Name() string
	// StateAt returns the VM state at the given tick (tick >= 0).
	StateAt(tick int) vm.State
}

// hash64 is a SplitMix64 finalizer used to derive i.i.d. uniforms from
// (seed, tick, stream) without shared PRNG state.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform returns a deterministic uniform in [0, 1) for (seed, tick, stream).
func uniform(seed int64, tick, stream int) float64 {
	h := hash64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(tick)<<20 ^ uint64(stream))
	return float64(h>>11) / float64(1<<53)
}

// clamp01 clips v into [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Idle returns a generator that keeps the VM fully idle.
func Idle() Generator { return constant{name: "idle"} }

// Constant returns a generator holding the given state forever.
func Constant(name string, s vm.State) Generator { return constant{name: name, state: s} }

type constant struct {
	name  string
	state vm.State
}

func (c constant) Name() string         { return c.name }
func (c constant) StateAt(int) vm.State { return c.state }

// FloatPoint models the paper's floating-point job
// ("scale=6000; 4*a(1)" | bc -l -q): CPU pinned at ~100% with other
// components nearly idle (Sec. III-C).
func FloatPoint() Generator {
	return Constant("floatpoint", vm.State{vm.CPU: 1.0, vm.Memory: 0.05, vm.DiskIO: 0.0})
}

// Synthetic is the paper's synthetic benchmark used to measure different
// v(S,C) during offline collection (Table V): it "randomly consumes CPU
// cycles" between Lo and Hi. Because this implementation carries k = 3
// state components (the paper evaluates CPU only), the collector's
// workload also sweeps memory and disk activity over independent uniform
// ranges — otherwise the least-squares fit cannot identify those columns
// and extrapolates noise onto memory-heavy validation workloads.
type Synthetic struct {
	// Lo and Hi bound the uniform CPU utilization. Defaults 0..1.
	Lo, Hi float64
	// MemHi and DiskHi bound the uniform memory/disk activity sweeps.
	// Zero values default to 0.6 and 0.2; negative values pin the
	// component at 0 (a pure-CPU synthetic load, as in the paper).
	MemHi, DiskHi float64
	// IdleProb is the probability a tick is fully idle (all components
	// zero). Idle phases make the offline v(S,C) table cover states in
	// which only part of a VHC is active — the states the Shapley
	// sub-coalition worths are evaluated at online.
	IdleProb float64
	// Seed decorrelates instances running on different VMs.
	Seed int64
}

// Name implements Generator.
func (s Synthetic) Name() string { return "synthetic" }

// StateAt implements Generator.
func (s Synthetic) StateAt(tick int) vm.State {
	lo, hi := s.Lo, s.Hi
	if hi <= lo {
		lo, hi = 0, 1
	}
	if s.IdleProb > 0 && uniform(s.Seed, tick, 9) < s.IdleProb {
		return vm.State{}
	}
	memHi, diskHi := s.MemHi, s.DiskHi
	if memHi == 0 {
		memHi = 0.6
	}
	if diskHi == 0 {
		diskHi = 0.2
	}
	u := lo + (hi-lo)*uniform(s.Seed, tick, 0)
	var mem, disk float64
	if memHi > 0 {
		mem = memHi * uniform(s.Seed, tick, 1)
	}
	if diskHi > 0 {
		disk = diskHi * uniform(s.Seed, tick, 4)
	}
	return vm.State{vm.CPU: clamp01(u), vm.Memory: clamp01(mem), vm.DiskIO: clamp01(disk)}
}

// Step runs a piecewise-constant schedule: Levels[i] holds for Dwell ticks
// each, then the schedule repeats. Used for the Fig. 1 two-user scenario.
type Step struct {
	Label  string
	Levels []float64
	Dwell  int
}

// Name implements Generator.
func (s Step) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "step"
}

// StateAt implements Generator.
func (s Step) StateAt(tick int) vm.State {
	if len(s.Levels) == 0 || s.Dwell <= 0 {
		return vm.State{}
	}
	idx := (tick / s.Dwell) % len(s.Levels)
	return vm.State{vm.CPU: clamp01(s.Levels[idx]), vm.Memory: 0.05}
}

// spec is the shared shape engine behind the SPEC-like generators: a base
// level, periodic oscillation, phase structure and per-tick jitter.
type spec struct {
	name      string
	seed      int64
	base      float64 // mean CPU level
	jitter    float64 // i.i.d. per-tick noise amplitude
	oscAmp    float64 // amplitude of slow sinusoidal oscillation
	oscPeriod int     // period of the oscillation, ticks
	burstProb float64 // probability of a dip/burst tick
	burstLow  float64 // CPU level during a dip
	phases    []float64
	phaseLen  int
	mem       float64 // mean memory activity
	disk      float64 // mean disk activity
}

// Name implements Generator.
func (g spec) Name() string { return g.name }

// StateAt implements Generator.
func (g spec) StateAt(tick int) vm.State {
	u := g.base
	if len(g.phases) > 0 && g.phaseLen > 0 {
		u = g.phases[(tick/g.phaseLen)%len(g.phases)]
	}
	if g.oscAmp > 0 && g.oscPeriod > 0 {
		u += g.oscAmp * math.Sin(2*math.Pi*float64(tick)/float64(g.oscPeriod))
	}
	if g.burstProb > 0 && uniform(g.seed, tick, 2) < g.burstProb {
		u = g.burstLow + 0.1*uniform(g.seed, tick, 3)
	}
	if g.jitter > 0 {
		u += g.jitter * (2*uniform(g.seed, tick, 0) - 1)
	}
	mem := g.mem * (0.8 + 0.4*uniform(g.seed, tick, 1))
	disk := g.disk * (0.5 + uniform(g.seed, tick, 4))
	return vm.State{vm.CPU: clamp01(u), vm.Memory: clamp01(mem), vm.DiskIO: clamp01(disk)}
}

// The seven SPEC CPU2006 benchmarks of Table V, as variability-class
// generators. Parameters reflect each benchmark's published behaviour:
// compilers are bursty with I/O dips, game-tree search is steady and
// compute-bound, discrete-event simulation is memory-heavy, weather
// modelling alternates physics phases.

// GCC models 403.gcc: bursty compilation with I/O dips between units.
func GCC(seed int64) Generator {
	return spec{name: "gcc", seed: seed, base: 0.92, jitter: 0.05,
		burstProb: 0.18, burstLow: 0.45, mem: 0.25, disk: 0.10}
}

// Gobmk models 445.gobmk (Go AI): sustained search, small jitter.
func Gobmk(seed int64) Generator {
	return spec{name: "gobmk", seed: seed, base: 0.97, jitter: 0.03, mem: 0.15, disk: 0.01}
}

// Sjeng models 458.sjeng (chess AI): near-constant full utilization.
func Sjeng(seed int64) Generator {
	return spec{name: "sjeng", seed: seed, base: 0.99, jitter: 0.01, mem: 0.12, disk: 0.0}
}

// Omnetpp models 471.omnetpp (discrete-event simulation): high CPU with
// significant memory traffic and slow load oscillation as the event
// population changes.
func Omnetpp(seed int64) Generator {
	return spec{name: "omnetpp", seed: seed, base: 0.82, jitter: 0.06,
		oscAmp: 0.08, oscPeriod: 60, mem: 0.45, disk: 0.02}
}

// Namd models 444.namd (molecular dynamics): steady compute phases.
func Namd(seed int64) Generator {
	return spec{name: "namd", seed: seed, base: 0.98, jitter: 0.015, mem: 0.20, disk: 0.0}
}

// WRF models 481.wrf (weather prediction): alternating dynamics/physics
// phases produce a strong periodic utilization swing.
func WRF(seed int64) Generator {
	return spec{name: "wrf", seed: seed, base: 0.75, jitter: 0.04,
		oscAmp: 0.2, oscPeriod: 45, mem: 0.35, disk: 0.05}
}

// Tonto models 465.tonto (quantum chemistry): distinct SCF phases at
// different utilization plateaus.
func Tonto(seed int64) Generator {
	return spec{name: "tonto", seed: seed, base: 0.9, jitter: 0.03,
		phases: []float64{0.95, 0.7, 0.88, 0.6}, phaseLen: 40, mem: 0.3, disk: 0.03}
}

// Diurnal models an interactive service's daily load cycle: utilization
// swings sinusoidally between Low (pre-dawn trough) and High (afternoon
// peak) over PeriodSec seconds (86400 for a real day; compressed periods
// make simulations tractable), plus per-tick jitter. Combined with a
// time-of-use tariff it exposes why the same kWh has different value at
// different hours.
type Diurnal struct {
	// Low and High bound the daily swing (defaults 0.15 and 0.85).
	Low, High float64
	// PeriodSec is the cycle length in ticks (default 86400).
	PeriodSec int
	// PhaseSec shifts the cycle; 0 puts the trough at tick 0.
	PhaseSec int
	// Jitter is the per-tick noise amplitude (default 0.03).
	Jitter float64
	// Seed drives the jitter.
	Seed int64
}

// Name implements Generator.
func (d Diurnal) Name() string { return "diurnal" }

// StateAt implements Generator.
func (d Diurnal) StateAt(tick int) vm.State {
	low, high := d.Low, d.High
	if high <= low {
		low, high = 0.15, 0.85
	}
	period := d.PeriodSec
	if period <= 0 {
		period = 86400
	}
	jitter := d.Jitter
	if jitter == 0 {
		jitter = 0.03
	}
	// Trough at phase 0: mid − amp·cos(2πt/T).
	mid := (low + high) / 2
	amp := (high - low) / 2
	u := mid - amp*math.Cos(2*math.Pi*float64(tick+d.PhaseSec)/float64(period))
	if jitter > 0 {
		u += jitter * (2*uniform(d.Seed, tick, 6) - 1)
	}
	mem := 0.1 + 0.1*u
	return vm.State{vm.CPU: clamp01(u), vm.Memory: clamp01(mem), vm.DiskIO: 0}
}

// SPECSuite returns the paper's Table V validation benchmarks in order:
// gcc, gobmk, sjeng, omnetpp (SPECint); namd, wrf, tonto (SPECfp).
// Each generator is seeded from base seed plus its index.
func SPECSuite(seed int64) []Generator {
	return []Generator{
		GCC(seed + 1), Gobmk(seed + 2), Sjeng(seed + 3), Omnetpp(seed + 4),
		Namd(seed + 5), WRF(seed + 6), Tonto(seed + 7),
	}
}

// ByName returns the named generator from the catalog (SPEC suite,
// "synthetic", "floatpoint", "idle"), seeded with seed.
func ByName(name string, seed int64) (Generator, error) {
	switch name {
	case "gcc":
		return GCC(seed), nil
	case "gobmk":
		return Gobmk(seed), nil
	case "sjeng":
		return Sjeng(seed), nil
	case "omnetpp":
		return Omnetpp(seed), nil
	case "namd":
		return Namd(seed), nil
	case "wrf":
		return WRF(seed), nil
	case "tonto":
		return Tonto(seed), nil
	case "synthetic":
		return Synthetic{Seed: seed}, nil
	case "diurnal":
		return Diurnal{Seed: seed}, nil
	case "floatpoint":
		return FloatPoint(), nil
	case "idle":
		return Idle(), nil
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
}

// Names lists the catalog entries accepted by ByName.
func Names() []string {
	return []string{"gcc", "gobmk", "sjeng", "omnetpp", "namd", "wrf", "tonto", "synthetic", "diurnal", "floatpoint", "idle"}
}
