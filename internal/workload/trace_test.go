package workload

import (
	"errors"
	"strings"
	"testing"

	"vmpower/internal/vm"
)

func TestTraceReplay(t *testing.T) {
	tr := Trace{Label: "prod", Samples: []vm.State{
		{vm.CPU: 0.1}, {vm.CPU: 0.5}, {vm.CPU: 0.9},
	}}
	if tr.Name() != "prod" {
		t.Fatalf("Name = %q", tr.Name())
	}
	if (Trace{}).Name() != "trace" {
		t.Fatal("default name wrong")
	}
	if got := tr.StateAt(1)[vm.CPU]; got != 0.5 {
		t.Fatalf("StateAt(1) = %g", got)
	}
	// Hold-last semantics without Loop.
	if got := tr.StateAt(10)[vm.CPU]; got != 0.9 {
		t.Fatalf("held StateAt(10) = %g", got)
	}
	if got := tr.StateAt(-3)[vm.CPU]; got != 0.1 {
		t.Fatalf("negative tick = %g", got)
	}
	// Loop wraps.
	tr.Loop = true
	if got := tr.StateAt(4)[vm.CPU]; got != 0.5 {
		t.Fatalf("looped StateAt(4) = %g", got)
	}
	// Empty trace idles.
	if !(Trace{}).StateAt(0).IsIdle() {
		t.Fatal("empty trace must idle")
	}
}

func TestTraceFromCSV(t *testing.T) {
	input := "cpu,mem,disk\n0.5,0.1,0\n1.0,0.2,0.05\n0.25\n"
	tr, err := TraceFromCSV("t", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("parsed %d samples", len(tr.Samples))
	}
	if tr.Samples[0][vm.CPU] != 0.5 || tr.Samples[1][vm.Memory] != 0.2 {
		t.Fatalf("samples = %v", tr.Samples)
	}
	// One-column rows leave mem/disk zero.
	if tr.Samples[2][vm.CPU] != 0.25 || tr.Samples[2][vm.Memory] != 0 {
		t.Fatalf("short row = %v", tr.Samples[2])
	}
}

func TestTraceFromCSVNoHeader(t *testing.T) {
	tr, err := TraceFromCSV("t", strings.NewReader("0.5\n0.7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 {
		t.Fatalf("parsed %d samples", len(tr.Samples))
	}
}

func TestTraceFromCSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{name: "empty", input: ""},
		{name: "header only", input: "cpu\n"},
		{name: "out of range", input: "1.5\n"},
		{name: "negative", input: "-0.1\n"},
		{name: "too many columns", input: "0.1,0.2,0.3,0.4\n"},
		{name: "non-numeric mid-file", input: "0.5\nabc\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := TraceFromCSV("t", strings.NewReader(tc.input)); !errors.Is(err, ErrTraceFormat) {
				t.Fatalf("want ErrTraceFormat, got %v", err)
			}
		})
	}
}
