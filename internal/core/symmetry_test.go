package core

import (
	"math"
	"strings"
	"testing"

	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/obs"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// symTestRig builds a rig with repeated VM types on the given profile:
// typeCounts[t] VMs of catalog type t, in type order (so same-type VMs
// are ID-contiguous).
func symTestRig(t *testing.T, prof machine.Profile, typeCounts []int, cfg Config) (*hypervisor.Host, *Estimator) {
	t.Helper()
	mach, err := machine.New(prof, machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	var vms []vm.VM
	for typ, c := range typeCounts {
		for i := 0; i < c; i++ {
			vms = append(vms, vm.VM{Type: vm.TypeID(typ)})
		}
	}
	set, err := vm.NewSet(vm.PaperCatalog(), vms)
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OfflineTicksPerCombo == 0 {
		cfg.OfflineTicksPerCombo = 40
	}
	if cfg.IdleMeasureTicks == 0 {
		cfg.IdleMeasureTicks = 3
	}
	est, err := New(host, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return host, est
}

// attachClassWorkloads binds one workload per catalog type, shared (same
// seed / same constant) by every VM of that type, so same-type VMs carry
// bit-equal states each tick and form genuine symmetry classes.
func attachClassWorkloads(t *testing.T, host *hypervisor.Host, gens []workload.Generator) {
	t.Helper()
	set := host.Set()
	for i := 0; i < set.Len(); i++ {
		v, err := set.VM(vm.ID(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := host.Attach(vm.ID(i), gens[int(v.Type)]); err != nil {
			t.Fatal(err)
		}
	}
}

func startAll(t *testing.T, host *hypervisor.Host) {
	t.Helper()
	running := make([]bool, host.Set().Len())
	for i := range running {
		running[i] = true
	}
	if err := host.SetRunning(running); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetryMatchesLegacyExact is the tentpole's equivalence property:
// a 14-VM host (12x type0 + 2x type1, class workloads) run twice from the
// same seed — once on the symmetry-collapsed path, once forced onto 2^n
// mask enumeration via DisableSymmetry — must agree on every share of
// every tick to 1e-12 of the measured power scale, across constant-state
// reuse ticks, all-dirty synthetic ticks and running-set changes.
func TestSymmetryMatchesLegacyExact(t *testing.T) {
	typeCounts := []int{12, 2}
	cfg := Config{Seed: 3, OfflineTicksPerCombo: 40, IdleMeasureTicks: 3}
	legacyCfg := cfg
	legacyCfg.DisableSymmetry = true
	hostS, estS := symTestRig(t, machine.XeonProfile(), typeCounts, cfg)
	hostL, estL := symTestRig(t, machine.XeonProfile(), typeCounts, legacyCfg)
	for _, est := range []*Estimator{estS, estL} {
		if err := est.CollectOffline(); err != nil {
			t.Fatal(err)
		}
	}
	hosts := []*hypervisor.Host{hostS, hostL}
	for _, host := range hosts {
		attachClassWorkloads(t, host, []workload.Generator{
			workload.Synthetic{Seed: 11}, // type 0: all 12 members dirty every tick
			workload.Constant("steady", vm.State{vm.CPU: 0.4, vm.Memory: 0.2, vm.DiskIO: 0.1}),
		})
	}

	symTicks := 0
	step := func(tick int) {
		allocS, err := estS.EstimateTick()
		if err != nil {
			t.Fatalf("tick %d: sym estimate: %v", tick, err)
		}
		allocL, err := estL.EstimateTick()
		if err != nil {
			t.Fatalf("tick %d: legacy estimate: %v", tick, err)
		}
		if allocL.SymmetryClasses != 0 {
			t.Fatalf("tick %d: DisableSymmetry rig reports %d classes", tick, allocL.SymmetryClasses)
		}
		if allocS.Method != "exact" || allocL.Method != "exact" {
			t.Fatalf("tick %d: methods %q / %q", tick, allocS.Method, allocL.Method)
		}
		if allocS.MeasuredPower != allocL.MeasuredPower {
			t.Fatalf("tick %d: measured %v != %v", tick, allocS.MeasuredPower, allocL.MeasuredPower)
		}
		if allocS.SymmetryClasses > 0 {
			symTicks++
		}
		tol := 1e-12 * math.Max(1, allocS.MeasuredPower)
		for i := range allocS.PerVM {
			if math.Abs(allocS.PerVM[i]-allocL.PerVM[i]) > tol {
				t.Fatalf("tick %d VM %d: sym %.17g, legacy %.17g (tol %g)",
					tick, i, allocS.PerVM[i], allocL.PerVM[i], tol)
			}
		}
		// Symmetry axiom, exactly: same-class members get the same share
		// bit for bit on the collapsed path (one phi per class).
		if allocS.SymmetryClasses > 0 {
			set := hostS.Set()
			snap := hostS.Collect()
			for i := 1; i < set.Len(); i++ {
				vi, _ := set.VM(vm.ID(i))
				v0, _ := set.VM(vm.ID(i - 1))
				if vi.Type == v0.Type && snap.Running[i] && snap.Running[i-1] &&
					snap.States[i] == snap.States[i-1] &&
					allocS.PerVM[i] != allocS.PerVM[i-1] {
					t.Fatalf("tick %d: same-class VMs %d/%d differ: %v vs %v",
						tick, i-1, i, allocS.PerVM[i-1], allocS.PerVM[i])
				}
			}
		}
		// Efficiency against the measured dynamic power.
		var sum float64
		for _, p := range allocS.PerVM {
			sum += p
		}
		if math.Abs(sum-allocS.DynamicPower) > 1e-9*math.Max(1, allocS.DynamicPower) {
			t.Fatalf("tick %d: Σφ = %v, dyn = %v", tick, sum, allocS.DynamicPower)
		}
	}

	tick := 0
	phase := func(stopped []int, ticks int) {
		for _, host := range hosts {
			startAll(t, host)
			for _, id := range stopped {
				if err := host.Stop(vm.ID(id)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < ticks; i++ {
			for _, host := range hosts {
				host.Advance(1)
			}
			tick++
			step(tick)
		}
	}
	phase(nil, 10)               // full house: classes (12, 2), all-dirty + steady
	phase([]int{0, 1, 2, 13}, 8) // class-count change: (9, 1), full retab
	phase(nil, 6)                // recovery
	if symTicks == 0 {
		t.Fatal("no tick used the symmetry-collapsed path")
	}
}

// TestSymmetryWideHost is the 2^n-wall tentpole claim: a 30-VM host — past
// vm.MaxPlayers, where coalition masks cannot exist — collects offline and
// estimates exactly through the collapsed solver, with per-class equal
// shares and efficiency against the meter.
func TestSymmetryWideHost(t *testing.T) {
	typeCounts := []int{10, 10, 10}
	host, est := symTestRig(t, machine.DenseProfile(), typeCounts, Config{Seed: 7})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	attachClassWorkloads(t, host, []workload.Generator{
		workload.Synthetic{Seed: 21},
		workload.Constant("steady", vm.State{vm.CPU: 0.5, vm.Memory: 0.25, vm.DiskIO: 0.1}),
		workload.Synthetic{Seed: 23, IdleProb: 0.1},
	})
	startAll(t, host)
	for tick := 0; tick < 12; tick++ {
		host.Advance(1)
		alloc, err := est.EstimateTick()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if alloc.Method != "exact" {
			t.Fatalf("tick %d: method %q, want exact", tick, alloc.Method)
		}
		if alloc.SymmetryClasses != 3 {
			t.Fatalf("tick %d: %d classes, want 3", tick, alloc.SymmetryClasses)
		}
		if len(alloc.PerVM) != 30 {
			t.Fatalf("tick %d: %d shares", tick, len(alloc.PerVM))
		}
		// Same-class members share one phi, bit for bit.
		for typ := 0; typ < 3; typ++ {
			base := typ * 10
			for i := 1; i < 10; i++ {
				if alloc.PerVM[base+i] != alloc.PerVM[base] {
					t.Fatalf("tick %d: class %d shares differ: %v vs %v",
						tick, typ, alloc.PerVM[base+i], alloc.PerVM[base])
				}
			}
		}
		var sum float64
		for _, p := range alloc.PerVM {
			sum += p
		}
		if math.Abs(sum-alloc.DynamicPower) > 1e-9*math.Max(1, alloc.DynamicPower) {
			t.Fatalf("tick %d: Σφ = %v, dyn = %v", tick, sum, alloc.DynamicPower)
		}
	}
	// Stop three VMs of class 0: counts (7, 10, 10), still collapsed.
	for _, id := range []vm.ID{0, 1, 2} {
		if err := host.Stop(id); err != nil {
			t.Fatal(err)
		}
	}
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.SymmetryClasses != 3 {
		t.Fatalf("after stop: %d classes, want 3", alloc.SymmetryClasses)
	}
	for _, id := range []int{0, 1, 2} {
		if alloc.PerVM[id] != 0 {
			t.Fatalf("stopped VM %d got %v, want 0", id, alloc.PerVM[id])
		}
	}
	snap := reg.Snapshot()
	found := false
	for _, m := range snap {
		if m.Name == "vmpower_sym_ticks_total" && float64(m.Value) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("vmpower_sym_ticks_total not incremented")
	}
}

// TestSymmetryWideHostRequiresCollapse pins the wide-host error paths:
// with the collapsed solver disabled (or the worth plan off entirely) a
// set past the mask limit cannot be estimated, and the error says why.
func TestSymmetryWideHostRequiresCollapse(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 7, DisableSymmetry: true},
		{Seed: 7, DisableWorthPlan: true},
	} {
		host, est := symTestRig(t, machine.DenseProfile(), []int{10, 10, 10}, cfg)
		if err := est.CollectOffline(); err != nil {
			t.Fatal(err)
		}
		startAll(t, host)
		host.Advance(1)
		_, err := est.EstimateTick()
		if err == nil {
			t.Fatalf("cfg %+v: wide host without collapse must error", cfg)
		}
		if !strings.Contains(err.Error(), "mask limit") {
			t.Fatalf("cfg %+v: error %q does not mention the mask limit", cfg, err)
		}
	}
	// Estimate (the pure mask-path API) refuses wide sets outright.
	host, est := symTestRig(t, machine.DenseProfile(), []int{10, 10, 10}, Config{Seed: 7})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	startAll(t, host)
	host.Advance(1)
	if _, err := est.Estimate(host.Collect(), 500); err == nil {
		t.Fatal("Estimate on a wide set must error")
	}
}

// TestSymmetryGateKeepsDistinctGamesOnMaskPath pins the gate: when every
// running VM is its own class (distinct states), the collapsed solver
// stays out of the way and the plan's mask machinery serves the tick.
func TestSymmetryGateKeepsDistinctGamesOnMaskPath(t *testing.T) {
	host, est := symTestRig(t, machine.XeonProfile(), []int{2, 1}, Config{Seed: 5})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Distinct per-VM workloads: no two states collide (different seeds).
	for i := 0; i < host.Set().Len(); i++ {
		if err := host.Attach(vm.ID(i), workload.Synthetic{Seed: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	startAll(t, host)
	for tick := 0; tick < 5; tick++ {
		host.Advance(1)
		alloc, err := est.EstimateTick()
		if err != nil {
			t.Fatal(err)
		}
		snap := host.Collect()
		distinct := snap.States[0] != snap.States[1]
		if distinct && alloc.SymmetryClasses != 0 {
			t.Fatalf("tick %d: distinct states but %d symmetry classes", tick, alloc.SymmetryClasses)
		}
	}
}
