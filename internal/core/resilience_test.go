package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"vmpower/internal/faults"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// trainedRig calibrates the shared rig, attaches workloads and boots
// every VM, returning the estimator ready for online ticks.
func trainedRig(t *testing.T, cfg Config) *Estimator {
	t.Helper()
	host, est := testRig(t, cfg)
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < host.Set().Len(); i++ {
		if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.GrandCoalition(host.Set().Len()))
	return est
}

func step(t *testing.T, est *Estimator) *Allocation {
	t.Helper()
	est.Host().Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	return alloc
}

func TestPeakPowerCalibrated(t *testing.T) {
	est := trainedRig(t, Config{Seed: 3})
	if est.PeakPower() <= est.IdlePower() {
		t.Fatalf("peak %g must exceed idle %g", est.PeakPower(), est.IdlePower())
	}
}

func TestHoldoverServesDegradedThenErrMeterLost(t *testing.T) {
	est := trainedRig(t, Config{Seed: 5, HoldoverTicks: 3})
	fresh := step(t, est)
	if fresh.Degraded {
		t.Fatalf("clean tick flagged degraded: %+v", fresh)
	}

	// Kill the meter: every read drops.
	if err := est.SetMeter(meterFunc(func() (meter.Sample, error) {
		return meter.Sample{}, meter.ErrDropout
	})); err != nil {
		t.Fatal(err)
	}
	for age := 1; age <= 3; age++ {
		alloc := step(t, est)
		if !alloc.Degraded {
			t.Fatalf("tick at age %d not degraded", age)
		}
		if alloc.HoldoverAgeTicks != age {
			t.Fatalf("age = %d, want %d", alloc.HoldoverAgeTicks, age)
		}
		if !strings.Contains(alloc.DegradedReason, "holdover") {
			t.Fatalf("reason %q", alloc.DegradedReason)
		}
		if alloc.MeasuredPower != fresh.MeasuredPower {
			t.Fatalf("holdover measured %g, want last good %g", alloc.MeasuredPower, fresh.MeasuredPower)
		}
		// Degraded ticks still satisfy Efficiency against the held power.
		var sum float64
		for _, p := range alloc.PerVM {
			sum += p
		}
		if math.Abs(sum-alloc.DynamicPower) > 1e-9 {
			t.Fatalf("degraded tick inefficient: sum %g vs dyn %g", sum, alloc.DynamicPower)
		}
	}

	// Past the bound: terminal.
	est.Host().Advance(1)
	if _, err := est.EstimateTick(); !errors.Is(err, ErrMeterLost) {
		t.Fatalf("want ErrMeterLost, got %v", err)
	}
}

func TestHoldoverDisabled(t *testing.T) {
	est := trainedRig(t, Config{Seed: 5, HoldoverTicks: -1})
	step(t, est)
	if err := est.SetMeter(meterFunc(func() (meter.Sample, error) {
		return meter.Sample{}, meter.ErrDropout
	})); err != nil {
		t.Fatal(err)
	}
	est.Host().Advance(1)
	if _, err := est.EstimateTick(); !errors.Is(err, ErrMeterLost) {
		t.Fatalf("want ErrMeterLost with holdover disabled, got %v", err)
	}
}

func TestNonDropoutMeterErrorDegrades(t *testing.T) {
	// A transport failure (e.g. serial.ErrCorruptStream) must degrade to
	// holdover, not kill the tick.
	est := trainedRig(t, Config{Seed: 7})
	step(t, est)
	boom := errors.New("serial: stream corrupt")
	if err := est.SetMeter(meterFunc(func() (meter.Sample, error) {
		return meter.Sample{}, boom
	})); err != nil {
		t.Fatal(err)
	}
	alloc := step(t, est)
	if !alloc.Degraded || !strings.Contains(alloc.DegradedReason, "stream corrupt") {
		t.Fatalf("want degraded with cause, got %+v", alloc)
	}
}

func TestPlausibilityGateRejectsSpikesAndNaN(t *testing.T) {
	est := trainedRig(t, Config{Seed: 11})
	fresh := step(t, est)

	// A meter that spikes 10x once, then recovers: the tick must reject
	// the spike, retry, and stay fresh.
	calls := 0
	if err := est.SetMeter(meterFunc(func() (meter.Sample, error) {
		calls++
		if calls == 1 {
			return meter.Sample{Power: fresh.MeasuredPower * 10}, nil
		}
		if calls == 2 {
			return meter.Sample{Power: math.NaN()}, nil
		}
		return meter.Sample{Power: fresh.MeasuredPower}, nil
	})); err != nil {
		t.Fatal(err)
	}
	alloc := step(t, est)
	if alloc.Degraded {
		t.Fatalf("recovered tick flagged degraded: %+v", alloc)
	}
	if alloc.RejectedSamples != 2 {
		t.Fatalf("rejected %d samples, want 2", alloc.RejectedSamples)
	}
	if alloc.MeasuredPower != fresh.MeasuredPower {
		t.Fatalf("measured %g, want %g", alloc.MeasuredPower, fresh.MeasuredPower)
	}
}

func TestPlausibilityGateDisabled(t *testing.T) {
	est := trainedRig(t, Config{Seed: 11, PlausibilityMargin: -1})
	fresh := step(t, est)
	spike := fresh.MeasuredPower * 10
	if err := est.SetMeter(meterFunc(func() (meter.Sample, error) {
		return meter.Sample{Power: spike}, nil
	})); err != nil {
		t.Fatal(err)
	}
	alloc := step(t, est)
	if alloc.RejectedSamples != 0 || alloc.MeasuredPower != spike {
		t.Fatalf("disabled gate still rejected: %+v", alloc)
	}
}

func TestStuckAtDetection(t *testing.T) {
	est := trainedRig(t, Config{Seed: 13, StuckThreshold: 3, HoldoverTicks: 20})
	fresh := step(t, est)

	// Stick at a value distinct from the last accepted reading so the
	// identical-run counter starts fresh at the first stuck tick.
	stuck := fresh.MeasuredPower + 1
	if err := est.SetMeter(meterFunc(func() (meter.Sample, error) {
		return meter.Sample{Power: stuck}, nil
	})); err != nil {
		t.Fatal(err)
	}
	// Reads 1 and 2 of the stuck value are accepted (run below the
	// threshold); from the third identical reading on, every read is
	// rejected and the tick holds over.
	a1 := step(t, est)
	if a1.Degraded {
		t.Fatalf("first stuck tick already degraded: %+v", a1)
	}
	a2 := step(t, est)
	if a2.Degraded {
		t.Fatalf("second stuck tick already degraded: %+v", a2)
	}
	a3 := step(t, est)
	if !a3.Degraded || !strings.Contains(a3.DegradedReason, "stuck-at") {
		t.Fatalf("third stuck tick not flagged: %+v", a3)
	}
	if a3.RejectedSamples == 0 {
		t.Fatal("stuck readings not counted as rejected")
	}
}

func TestFallbackAllocationDirect(t *testing.T) {
	// Drive fallbackAllocation directly: it must split the dynamic power
	// across running VMs, sum to dyn, and flag the allocation.
	est := trainedRig(t, Config{Seed: 19, Fallback: FallbackProportional})
	step(t, est)
	snap := est.Host().Collect()
	cause := errors.New("solver exploded")
	alloc, err := est.fallbackAllocation(snap, est.IdlePower()+30, cause)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Degraded || alloc.Method != "fallback" {
		t.Fatalf("fallback not flagged: %+v", alloc)
	}
	if !strings.Contains(alloc.DegradedReason, "solver exploded") {
		t.Fatalf("reason %q", alloc.DegradedReason)
	}
	var sum float64
	for _, p := range alloc.PerVM {
		if p < 0 {
			t.Fatalf("negative fallback share %g", p)
		}
		sum += p
	}
	if math.Abs(sum-alloc.DynamicPower) > 1e-9 {
		t.Fatalf("fallback inefficient: %g vs %g", sum, alloc.DynamicPower)
	}

	// FallbackNone propagates the cause.
	est.cfg.Fallback = FallbackNone
	if _, err := est.fallbackAllocation(snap, 100, cause); !errors.Is(err, cause) {
		t.Fatalf("want cause, got %v", err)
	}

	// FallbackHold reuses the last shares' proportions.
	est.cfg.Fallback = FallbackHold
	hold, err := est.fallbackAllocation(snap, est.IdlePower()+30, cause)
	if err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, p := range hold.PerVM {
		sum += p
	}
	if math.Abs(sum-hold.DynamicPower) > 1e-9 {
		t.Fatalf("hold fallback inefficient: %g vs %g", sum, hold.DynamicPower)
	}
}

func TestPeakPowerPersistsThroughModel(t *testing.T) {
	est := trainedRig(t, Config{Seed: 23})
	var buf strings.Builder
	if err := est.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	_, est2 := testRig(t, Config{Seed: 23})
	if err := est2.LoadModel(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if est2.PeakPower() != est.PeakPower() {
		t.Fatalf("peak %g, want %g", est2.PeakPower(), est.PeakPower())
	}

	// A legacy model without peak_power loads with the band disabled.
	legacy := `{"idle_power": 100, "model": ` + string(exportModel(t, est)) + `}`
	_, est3 := testRig(t, Config{Seed: 23})
	if err := est3.LoadModel(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	if est3.PeakPower() != 0 {
		t.Fatalf("legacy peak %g, want 0", est3.PeakPower())
	}
}

// exportModel extracts the raw approximator model JSON for hand-built
// savedModel envelopes.
func exportModel(t *testing.T, est *Estimator) []byte {
	t.Helper()
	var buf strings.Builder
	if err := est.approx.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return []byte(buf.String())
}

func TestFaultsMeterEndToEnd(t *testing.T) {
	// Wire a faults.Meter over the rig's perfect meter: iid dropouts well
	// under the retry budget never degrade a tick; a scripted dropout
	// episode longer than the budget degrades exactly its ticks.
	host, est := testRig(t, Config{Seed: 29, MeterRetries: 2, HoldoverTicks: 10})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < host.Set().Len(); i++ {
		if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.GrandCoalition(host.Set().Len()))

	fm, err := faults.Wrap(est.m, faults.Options{
		Seed:     29,
		Episodes: []faults.Episode{{Start: 5, Len: 3, Kind: faults.Dropout}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.SetMeter(fm); err != nil {
		t.Fatal(err)
	}
	fm.SetArmed(true)

	for tick := 0; tick < 12; tick++ {
		alloc := step(t, est)
		inEpisode := tick >= 5 && tick < 8
		if alloc.Degraded != inEpisode {
			t.Fatalf("tick %d degraded=%v, want %v", tick, alloc.Degraded, inEpisode)
		}
		fm.NextTick()
	}
	if c := fm.Injected(); c.Dropouts == 0 {
		t.Fatalf("no dropouts injected: %+v", c)
	}
}
