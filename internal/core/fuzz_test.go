package core

import (
	"bytes"
	"strings"
	"testing"

	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
)

// fuzzRig builds the host/meter pair shared across fuzz iterations, and a
// factory for fresh untrained estimators over it. Each iteration gets its
// own estimator so a partially-applied corrupt model can never leak into
// the next case; the host is read-only for LoadModel, so sharing it is
// safe and keeps the per-exec cost down.
func fuzzRig(t testing.TB) func(testing.TB) *Estimator {
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "vm1", Type: 0}, {Name: "vm2", Type: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	return func(t testing.TB) *Estimator {
		// A tiny calibration budget: the fuzz target exercises model
		// parsing, not calibration statistics, and this setup also runs in
		// every fuzz worker process.
		est, err := New(host, m, Config{Seed: 1, OfflineTicksPerCombo: 8, IdleMeasureTicks: 2})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
}

// FuzzLoadModel feeds LoadModel arbitrary bytes — seeded with a genuine
// SaveModel payload and targeted corruptions of it — and requires the
// invariant a daemon restart depends on: corrupt input errors cleanly,
// never panics, and never leaves the estimator claiming to be trained.
func FuzzLoadModel(f *testing.F) {
	newEst := fuzzRig(f)

	// A genuine model as the seed corpus root, so the fuzzer mutates from
	// valid structure instead of flailing at the JSON parser.
	{
		est := newEst(f)
		if err := est.CollectOffline(); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := est.SaveModel(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		for _, cut := range []int{1, len(valid) / 2, len(valid) - 2} {
			if cut > 0 && cut < len(valid) {
				f.Add(valid[:cut])
			}
		}
		f.Add(bytes.Replace(valid, []byte("idle_power"), []byte("idle_powerX"), 1))
	}
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"idle_power": -5, "model": {}}`))
	f.Add([]byte(`{"idle_power": 1e999}`))
	f.Add([]byte(`{"idle_power": 100, "peak_power": -1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		est := newEst(t)
		if err := est.LoadModel(bytes.NewReader(data)); err != nil {
			if est.Trained() {
				t.Fatalf("LoadModel failed (%v) but left the estimator trained", err)
			}
			return
		}
		// Accepted input must leave a coherent model behind: a round-trip
		// re-save must succeed.
		var buf strings.Builder
		if err := est.SaveModel(&buf); err != nil {
			t.Fatalf("accepted model cannot be re-saved: %v", err)
		}
	})
}
