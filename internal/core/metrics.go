package core

import (
	"sync/atomic"

	"vmpower/internal/obs"
)

// Metrics is the package's self-reporting surface: the compiled-plan
// lifecycle and the incremental tabulation's cache behaviour. All handles
// are nil-safe obs metrics, so an uninstrumented estimator pays one
// atomic pointer load per tick and nothing else.
type Metrics struct {
	// PlanCompiles counts worth-plan compilations
	// (vmpower_plan_compiles_total); PlanCompileErrors counts failed
	// compiles, each of which pins the estimator to the legacy path until
	// the model changes (vmpower_plan_compile_errors_total).
	PlanCompiles      *obs.Counter
	PlanCompileErrors *obs.Counter
	// PlanTicks counts exact ticks served through the compiled plan;
	// PlanFullTabulations counts the subset that could not reuse the
	// previous tick's table (first tick, running-set change, new plan)
	// (vmpower_plan_ticks_total, vmpower_plan_full_tabulations_total).
	PlanTicks           *obs.Counter
	PlanFullTabulations *obs.Counter
	// PlanDirtyVMs is the dirty-set size of the last plan tick
	// (vmpower_plan_dirty_vms).
	PlanDirtyVMs *obs.Gauge
	// PlanCoalitionsEvaluated / PlanCoalitionsReused count worth-table
	// entries re-evaluated vs reused verbatim by the incremental
	// recurrence (vmpower_plan_coalitions_{evaluated,reused}_total).
	PlanCoalitionsEvaluated *obs.Counter
	PlanCoalitionsReused    *obs.Counter
	// SymTicks counts exact ticks served through the symmetry-collapsed
	// solver (vmpower_sym_ticks_total); SymClasses is the class count of
	// the last such tick (vmpower_sym_classes). SymVectorsEvaluated /
	// SymVectorsReused count collapsed-table entries re-evaluated vs
	// reused across ticks (vmpower_sym_vectors_{evaluated,reused}_total).
	SymTicks            *obs.Counter
	SymClasses          *obs.Gauge
	SymVectorsEvaluated *obs.Counter
	SymVectorsReused    *obs.Counter
	// AuditChecks counts audited ticks; AuditViolations counts invariant
	// failures (Efficiency, plausibility, deep mismatch) — nonzero means a
	// bill cannot be trusted (vmpower_audit_{checks,violations}_total).
	AuditChecks     *obs.Counter
	AuditViolations *obs.Counter
	// AuditDeepChecks / AuditDeepMismatches count sampled alternate-path
	// re-solves and the ones that diverged beyond tolerance
	// (vmpower_audit_deep_{checks,mismatches}_total).
	AuditDeepChecks     *obs.Counter
	AuditDeepMismatches *obs.Counter
	// AuditEfficiencyResidual is |Σφ − dyn| of the last audited tick in
	// watts (vmpower_audit_efficiency_residual).
	AuditEfficiencyResidual *obs.Gauge
}

// pkgMetrics is swapped atomically so Instrument may run while ticks are
// in flight (a daemon wires it once at startup; tests re-wire it).
var pkgMetrics atomic.Pointer[Metrics]

// Instrument registers the package's standard metrics on reg and
// activates them for every subsequent tick. Instrument(nil) returns the
// package to the uninstrumented (zero-overhead) state.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		pkgMetrics.Store(nil)
		return
	}
	pkgMetrics.Store(&Metrics{
		PlanCompiles: reg.Counter("vmpower_plan_compiles_total",
			"compiled worth-plan builds (one per model epoch)"),
		PlanCompileErrors: reg.Counter("vmpower_plan_compile_errors_total",
			"worth-plan compiles that failed (estimator serves the legacy path)"),
		PlanTicks: reg.Counter("vmpower_plan_ticks_total",
			"exact estimation ticks served through the compiled plan"),
		PlanFullTabulations: reg.Counter("vmpower_plan_full_tabulations_total",
			"plan ticks that re-tabulated the whole 2^n worth table"),
		PlanDirtyVMs: reg.Gauge("vmpower_plan_dirty_vms",
			"VMs whose state changed since the previous tick (last plan tick)"),
		PlanCoalitionsEvaluated: reg.Counter("vmpower_plan_coalitions_evaluated_total",
			"worth-table entries (re-)evaluated by plan ticks"),
		PlanCoalitionsReused: reg.Counter("vmpower_plan_coalitions_reused_total",
			"worth-table entries reused verbatim across ticks"),
		SymTicks: reg.Counter("vmpower_sym_ticks_total",
			"exact estimation ticks served through the symmetry-collapsed solver"),
		SymClasses: reg.Gauge("vmpower_sym_classes",
			"symmetry classes of the last collapsed tick"),
		SymVectorsEvaluated: reg.Counter("vmpower_sym_vectors_evaluated_total",
			"collapsed worth-table entries (re-)evaluated by symmetry ticks"),
		SymVectorsReused: reg.Counter("vmpower_sym_vectors_reused_total",
			"collapsed worth-table entries reused verbatim across ticks"),
		AuditChecks: reg.Counter("vmpower_audit_checks_total",
			"ticks checked by the invariant auditor"),
		AuditViolations: reg.Counter("vmpower_audit_violations_total",
			"invariant violations (efficiency, share bounds, deep mismatches)"),
		AuditDeepChecks: reg.Counter("vmpower_audit_deep_checks_total",
			"sampled deep re-solves through the alternate exact path"),
		AuditDeepMismatches: reg.Counter("vmpower_audit_deep_mismatches_total",
			"deep re-solves that diverged beyond tolerance"),
		AuditEfficiencyResidual: reg.Gauge("vmpower_audit_efficiency_residual",
			"|sum(phi) - dynamic| of the last audited tick (watts)"),
	})
}

// metrics returns the active instrumentation, nil when uninstrumented.
func metrics() *Metrics { return pkgMetrics.Load() }

func (m *Metrics) notePlanCompile() {
	if m == nil {
		return
	}
	m.PlanCompiles.Inc()
}

func (m *Metrics) notePlanCompileError() {
	if m == nil {
		return
	}
	m.PlanCompileErrors.Inc()
}

// noteSymTick publishes one symmetry-collapsed exact tick's shape and
// cache behaviour.
func (m *Metrics) noteSymTick(classes, evaluated, reused int) {
	if m == nil {
		return
	}
	m.SymTicks.Inc()
	m.SymClasses.Set(float64(classes))
	m.SymVectorsEvaluated.Add(uint64(evaluated))
	m.SymVectorsReused.Add(uint64(reused))
}

// noteAudit publishes one audited tick and its Efficiency residual.
func (m *Metrics) noteAudit(residual float64) {
	if m == nil {
		return
	}
	m.AuditChecks.Inc()
	m.AuditEfficiencyResidual.Set(residual)
}

func (m *Metrics) noteAuditViolation() {
	if m == nil {
		return
	}
	m.AuditViolations.Inc()
}

func (m *Metrics) noteAuditDeep() {
	if m == nil {
		return
	}
	m.AuditDeepChecks.Inc()
}

func (m *Metrics) noteAuditDeepMismatch() {
	if m == nil {
		return
	}
	m.AuditDeepMismatches.Inc()
}

// notePlanTick publishes one plan-served exact tick's cache behaviour.
func (m *Metrics) notePlanTick(dirty, evaluated, reused int, full bool) {
	if m == nil {
		return
	}
	m.PlanTicks.Inc()
	if full {
		m.PlanFullTabulations.Inc()
	}
	m.PlanDirtyVMs.Set(float64(dirty))
	m.PlanCoalitionsEvaluated.Add(uint64(evaluated))
	m.PlanCoalitionsReused.Add(uint64(reused))
}
