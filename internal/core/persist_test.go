package core

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	host, est := testRig(t, Config{Seed: 21})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	var model bytes.Buffer
	if err := est.SaveModel(&model); err != nil {
		t.Fatal(err)
	}

	// A fresh estimator over an identical host loads the model and
	// estimates without ever calibrating.
	host2, est2 := testRig(t, Config{Seed: 21})
	if err := est2.LoadModel(bytes.NewReader(model.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !est2.Trained() {
		t.Fatal("loaded estimator must be trained")
	}
	if math.Abs(est2.IdlePower()-est.IdlePower()) > 1e-12 {
		t.Fatalf("idle power %g vs %g", est2.IdlePower(), est.IdlePower())
	}

	// Identical snapshots produce near-identical allocations. (The saved
	// model drops the exact-match table, so ticks that would have hit it
	// can differ slightly; compare on a fresh state the table never saw.)
	for _, h := range []*hostEst{{host, est}, {host2, est2}} {
		if err := h.host.Attach(0, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
		h.host.SetCoalition(vm.CoalitionOf(0, 2))
		if err := h.host.Attach(2, workload.Constant("c", vm.State{vm.CPU: 0.63})); err != nil {
			t.Fatal(err)
		}
		h.host.Advance(1)
	}
	snap1 := host.Collect()
	power1, err := host.TruePower()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := est.Estimate(snap1, power1)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := host2.Collect()
	power2, err := host2.TruePower()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := est2.Estimate(snap2, power2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.PerVM {
		if math.Abs(a1.PerVM[i]-a2.PerVM[i]) > 0.5 {
			t.Fatalf("vm %d: %g vs %g", i, a1.PerVM[i], a2.PerVM[i])
		}
	}
}

type hostEst struct {
	host interface {
		Attach(vm.ID, workload.Generator) error
		SetCoalition(vm.Coalition)
		Advance(int)
	}
	est *Estimator
}

func TestSaveModelUntrained(t *testing.T) {
	_, est := testRig(t, Config{})
	if err := est.SaveModel(&bytes.Buffer{}); !errors.Is(err, ErrUntrained) {
		t.Fatalf("want ErrUntrained, got %v", err)
	}
}

func TestLoadModelErrors(t *testing.T) {
	_, est := testRig(t, Config{})
	if err := est.LoadModel(strings.NewReader("garbage")); err == nil {
		t.Fatal("want decode error")
	}
	if err := est.LoadModel(strings.NewReader(`{"idle_power":-5,"model":{}}`)); err == nil {
		t.Fatal("want negative-idle error")
	}
	if err := est.LoadModel(strings.NewReader(`{"idle_power":100,"model":{"version":1,"num_types":9,"combos":[]}}`)); err == nil {
		t.Fatal("want model-mismatch error")
	}
	if est.Trained() {
		t.Fatal("failed loads must not mark the estimator trained")
	}
}
