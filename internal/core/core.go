// Package core implements the paper's Shapley value-based power
// estimation framework (Sec. VI, Fig. 8). An Estimator couples a
// hypervisor host, a power meter and a VHC approximator through the two
// phases of the paper's pipeline:
//
//   - Offline data collecting: traverse the 2^r VHC combinations under the
//     synthetic random-CPU workload, record (state, power) samples in the
//     v(S,C) table and fit the per-combination mapping vectors.
//   - Online real-time estimation: each 1 Hz tick, take the collected VM
//     states and the measured machine power, build the coalition worth
//     function (measured power for the grand coalition — so Efficiency
//     always holds against the meter — and VHC approximations for proper
//     subsets), and run the (non-deterministic) Shapley value to
//     disaggregate power to individual VMs.
package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"vmpower/internal/hypervisor"
	"vmpower/internal/meter"
	"vmpower/internal/obs"
	"vmpower/internal/shapley"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// IdleAttribution selects how the machine's idle power is attributed to
// VMs on top of the Shapley shares. The paper leaves this open (Sec. VIII)
// and names the two candidate rules we implement.
type IdleAttribution int

const (
	// IdleNone reports dynamic power only (the paper's evaluation mode).
	IdleNone IdleAttribution = iota
	// IdleEqual splits the idle power equally across running VMs.
	IdleEqual
	// IdleProportional splits the idle power proportionally to the VMs'
	// dynamic Shapley shares.
	IdleProportional
)

// String names the attribution rule.
func (a IdleAttribution) String() string {
	switch a {
	case IdleNone:
		return "none"
	case IdleEqual:
		return "equal"
	case IdleProportional:
		return "proportional"
	default:
		return fmt.Sprintf("attribution(%d)", int(a))
	}
}

// FallbackPolicy selects the degraded-mode allocation served when the
// worth evaluation or the solver fails mid-tick (e.g. a corrupted model
// reload): the estimator can keep serving a plausible split instead of
// erroring the tick.
type FallbackPolicy int

const (
	// FallbackNone propagates solver/worth errors (the strict default).
	FallbackNone FallbackPolicy = iota
	// FallbackProportional serves a usage-proportional (CPU-share) split
	// of the dynamic power, flagged Degraded.
	FallbackProportional
	// FallbackHold re-serves the previous successful allocation's
	// proportions rescaled to the current dynamic power, flagged
	// Degraded; it degenerates to the proportional split before the
	// first success.
	FallbackHold
)

// String names the fallback policy.
func (p FallbackPolicy) String() string {
	switch p {
	case FallbackNone:
		return "none"
	case FallbackProportional:
		return "proportional"
	case FallbackHold:
		return "hold"
	default:
		return fmt.Sprintf("fallback(%d)", int(p))
	}
}

// Config tunes an Estimator. The zero value gives the paper's settings.
type Config struct {
	// OfflineTicksPerCombo is the number of 1 Hz samples collected per
	// VHC combination during offline collection. Default 200.
	OfflineTicksPerCombo int
	// IdleMeasureTicks is the number of samples averaged to establish the
	// idle power before collection. Default 30.
	IdleMeasureTicks int
	// Seed drives the synthetic collection workloads and the Monte-Carlo
	// sampler.
	Seed int64
	// ExactMaxPlayers is the largest VM count estimated with exact 2^n
	// mask enumeration; larger sets use Monte-Carlo sampling — unless
	// their players collapse into symmetry classes, in which case the
	// collapsed solver keeps the tick exact at any size (DESIGN.md §12).
	// Default 16 (the paper's practical bound). It also sizes the
	// collapsed path's vector budget on mid-size hosts; see symWorthwhile.
	ExactMaxPlayers int
	// MCPermutations is the Monte-Carlo sample count beyond
	// ExactMaxPlayers. Default shapley.DefaultPermutations.
	MCPermutations int
	// IdleAttribution selects the idle-power rule. Default IdleNone.
	IdleAttribution IdleAttribution
	// CollectIdleProb is the probability each VM idles on a collection
	// tick. The paper's collection keeps members busy (0); a small value
	// trades full-coalition accuracy for sub-coalition coverage (see the
	// trainsize/resolution ablations for the corresponding sweeps).
	CollectIdleProb float64
	// Classes optionally compresses an arbitrary type catalog into a
	// small number of VHC classes (Sec. VIII's "applicable scenario"
	// extension; build one with vhc.ClusterTypes). Nil uses the identity
	// map — one VHC per catalog type, the paper's base setting.
	Classes *vhc.ClassMap
	// RidgeLambda is passed to the VHC approximator. Default 1e-6.
	RidgeLambda float64
	// Parallelism is the worker count of the Shapley engine (exact
	// tabulation/accumulation and Monte-Carlo sampling). 0 defaults to 1
	// (serial, the paper's single-threaded pipeline); negative uses all
	// cores (GOMAXPROCS); values >= 2 use that many workers. The
	// allocation is a deterministic function of the snapshot and Seed at
	// any setting: the engine's decomposition never depends on the
	// worker count (see internal/shapley/parallel.go).
	Parallelism int
	// MeterRetries bounds the in-tick meter reads spent riding out
	// dropouts and rejected (implausible) readings before the tick
	// degrades to holdover. Default 32 (the paper's 1 Hz feed loses at
	// most a couple of readings per glitch).
	MeterRetries int
	// HoldoverTicks is the staleness bound of the last-good-sample
	// holdover: when every meter read of a tick fails, the estimator
	// re-serves the last good reading — flagged Degraded — for up to this
	// many ticks before EstimateTick returns ErrMeterLost. 0 defaults to
	// 10; negative disables holdover entirely (any exhausted tick is a
	// terminal error, the pre-resilience semantics).
	HoldoverTicks int
	// PlausibilityMargin widens the calibrated plausibility band
	// [idle/2, peak·(1+margin)] readings must fall in; readings outside
	// it are rejected as implied dropouts (a spiking or zeroed meter is a
	// broken meter, not a 10x machine). 0 defaults to 0.5; negative
	// disables the band. Non-finite readings are always rejected. The
	// band needs a calibrated peak, so it is inert before CollectOffline
	// (or after loading a model saved without one).
	PlausibilityMargin float64
	// StuckThreshold is the consecutive-identical-reading count past
	// which the meter is presumed stuck and further identical readings
	// are rejected as implied dropouts. 0 (the default) disables
	// detection: noiseless simulated meters legitimately repeat readings.
	StuckThreshold int
	// Fallback selects the degraded-mode allocation policy on
	// solver/worth failure. Default FallbackNone.
	Fallback FallbackPolicy
	// DisableWorthPlan turns off the compiled worth plan and the
	// incremental cross-tick tabulation, forcing EstimateTick through the
	// legacy per-coalition evaluation path (ClassedFeaturesFor +
	// Approximator.Estimate, full tabulation every tick). The two paths
	// produce bit-for-bit identical allocations; the flag exists for
	// benchmarking the win and as an escape hatch. It also disables the
	// symmetry-collapsed solver (which runs over the compiled plan), so
	// sets past vm.MaxPlayers cannot be estimated with it set.
	DisableWorthPlan bool
	// DisableSymmetry turns off the symmetry-collapsed exact solver,
	// forcing every plan-served exact tick through 2^n mask enumeration
	// (or Monte-Carlo past ExactMaxPlayers). The escape hatch exists for
	// benchmarking and for pinning the equivalence in tests; sets past
	// vm.MaxPlayers cannot be estimated with it set, since no mask
	// fallback exists there.
	DisableSymmetry bool
}

func (c Config) withDefaults() Config {
	if c.OfflineTicksPerCombo <= 0 {
		c.OfflineTicksPerCombo = 200
	}
	if c.IdleMeasureTicks <= 0 {
		c.IdleMeasureTicks = 30
	}
	if c.ExactMaxPlayers <= 0 {
		c.ExactMaxPlayers = 16
	}
	if c.MCPermutations <= 0 {
		c.MCPermutations = shapley.DefaultPermutations
	}
	switch {
	case c.Parallelism == 0:
		c.Parallelism = 1
	case c.Parallelism < 0:
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MeterRetries <= 0 {
		c.MeterRetries = 32
	}
	if c.HoldoverTicks == 0 {
		c.HoldoverTicks = 10
	}
	if c.PlausibilityMargin == 0 {
		c.PlausibilityMargin = 0.5
	}
	return c
}

// Solver tiers, as recorded in Provenance.Tier: the 2^n mask-exact
// path, the symmetry-collapsed exact path, Monte-Carlo sampling, and the
// degraded-mode fallback split.
const (
	TierMaskExact  = "exact-mask"
	TierSymExact   = "exact-sym"
	TierMonteCarlo = "montecarlo"
	TierFallback   = "fallback"
)

// Tier-gate reasons. Constant strings only: the hot path writes them
// into Provenance without allocating.
const (
	reasonNoRunning   = "no running VMs"
	reasonMaskBudget  = "within exact mask budget; no profitable symmetry collapse"
	reasonSymDisabled = "symmetry collapse disabled; within exact mask budget"
	reasonSymCollapse = "running VMs collapse into symmetry classes within the vector budget"
	reasonMCPlayers   = "player count beyond the exact budget"
	reasonLegacyPlan  = "worth plan unavailable; legacy per-coalition path"
	reasonFallback    = "solver/worth failure; fallback policy split"
)

// Provenance records how a tick's allocation was produced: the solver
// tier and why the gate picked it, the incremental solve's shape, and
// the invariant auditor's verdict. It is filled on every tick with
// value-typed fields and constant reason strings, so carrying it costs
// the hot path nothing; the flight recorder and the tick event journal
// are built from it.
type Provenance struct {
	// Tier is the solver tier that produced PerVM (Tier* constants);
	// TierReason says why the gate picked it.
	Tier       string
	TierReason string
	// DirtyVMs counts the solve units (VMs on the mask path, symmetry
	// classes on the collapsed path) whose state changed since the
	// previous tick; Evaluated and Reused count worth-table entries
	// re-evaluated vs reused verbatim; FullTabulation marks a tick that
	// rebuilt the whole table (first tick, running-set change, new plan).
	// All zero on Monte-Carlo and fallback ticks.
	DirtyVMs       int
	Evaluated      int
	Reused         int
	FullTabulation bool
	// EfficiencyResidualWatts is |Σφ − dynamic| as measured by the
	// invariant auditor; AuditViolations counts this tick's violations;
	// DeepChecked marks a tick re-solved through the alternate exact
	// path, with DeepMaxDeltaWatts the largest per-VM divergence. All
	// zero when no auditor is installed.
	EfficiencyResidualWatts float64
	AuditViolations         int
	DeepChecked             bool
	DeepMaxDeltaWatts       float64
}

// Allocation is one tick's per-VM power disaggregation.
type Allocation struct {
	// Tick is the host clock when the states were collected.
	Tick int
	// Coalition is the running VM set. On wide hosts (more than
	// vm.MaxPlayers VMs) no mask can represent the set and this is zero;
	// running VMs are the ones with non-dummy PerVM entries.
	Coalition vm.Coalition
	// MeasuredPower is the meter reading (total wall power, W).
	MeasuredPower float64
	// DynamicPower is MeasuredPower minus the idle power (clamped at 0):
	// v(N, C'), the quantity Shapley disaggregates.
	DynamicPower float64
	// PerVM is each VM's dynamic power share (Φ_i), indexed by vm.ID.
	// Stopped VMs are dummies and get exactly 0.
	PerVM []float64
	// IdlePerVM is each VM's idle-power share under the configured
	// attribution rule (nil for IdleNone).
	IdlePerVM []float64
	// Method records how the Shapley value was computed ("exact",
	// "montecarlo" or "fallback" for a degraded-mode split).
	Method string
	// SymmetryClasses is the number of symmetry classes the tick's exact
	// solve collapsed the running VMs into, 0 when the collapsed solver
	// was not used (mask path, Monte-Carlo, fallback).
	SymmetryClasses int
	// Degraded marks an allocation produced under fault handling: the
	// measured power is a held-over stale sample, or the shares came from
	// the fallback policy rather than the Shapley solver. Degraded
	// allocations are still efficient against MeasuredPower but carry
	// reduced confidence.
	Degraded bool
	// DegradedReason says why ("holdover: ..." or "fallback: ...");
	// empty on clean ticks.
	DegradedReason string
	// HoldoverAgeTicks is the age of the meter sample backing this
	// allocation: 0 when fresh, otherwise ticks since the last good
	// reading.
	HoldoverAgeTicks int
	// RejectedSamples counts implausible meter readings (non-finite,
	// out-of-band, stuck-at) discarded while producing this tick.
	RejectedSamples int
	// Prov is the tick's solver/audit provenance.
	Prov Provenance
}

// Total returns VM id's total attributed power (dynamic + idle share).
func (a *Allocation) Total(id vm.ID) float64 {
	t := a.PerVM[int(id)]
	if a.IdlePerVM != nil {
		t += a.IdlePerVM[int(id)]
	}
	return t
}

// Estimator is the framework of Fig. 8.
type Estimator struct {
	host    *hypervisor.Host
	m       meter.Meter
	approx  *vhc.Approximator
	classes *vhc.ClassMap
	cfg     Config

	idlePower float64
	peakPower float64
	trained   bool

	// Online fault-handling state, touched only by the (single)
	// estimation goroutine — see EstimateTickSpan.
	lastGood     meter.Sample
	lastGoodTick int
	haveGood     bool
	stuckRun     int
	lastRaw      float64
	lastShares   []float64

	// Compiled-plan state, touched only by the estimation goroutine. The
	// plan is recompiled lazily whenever the approximator's epoch moves
	// (retraining, model reload); planTried gates retrying a compile that
	// failed until the model actually changes again.
	plan      *vhc.Plan
	planEpoch uint64
	planTried bool
	scratch   tickScratch
	sym       symScratch

	// planCompiles / planCompileErrors count ensurePlan outcomes for this
	// estimator, so a daemon can diff them per tick and journal
	// recompiles without touching the package-level metrics.
	planCompiles      uint64
	planCompileErrors uint64

	// auditor, when installed, runs the per-tick invariant checks at the
	// end of EstimateTickSpan. Owned by the estimation goroutine.
	auditor *Auditor
}

// tickScratch is the buffer set the plan-based exact path reuses across
// ticks: the worth table (for the incremental dirty-coalition recurrence),
// the φ vector and the solver's shard partials, plus the previous tick's
// states for dirty detection. Owned exclusively by the estimation
// goroutine (EstimateTickSpan's single-goroutine contract); the shapley
// *Into calls may read the table from worker goroutines during a solve
// but ownership returns to the caller before the solve returns.
type tickScratch struct {
	valid      bool         // table holds the previous tick's worths
	plan       *vhc.Plan    // the plan the table was evaluated under
	running    vm.Coalition // previous tick's running set
	prevStates []vm.State
	table      []float64
	phi        []float64
	partials   []float64
}

// New builds an Estimator over a host and a meter.
func New(host *hypervisor.Host, m meter.Meter, cfg Config) (*Estimator, error) {
	if host == nil {
		return nil, errors.New("core: nil host")
	}
	if m == nil {
		return nil, errors.New("core: nil meter")
	}
	cfg = cfg.withDefaults()
	classes := cfg.Classes
	if classes == nil {
		var err error
		classes, err = vhc.IdentityClassMap(len(host.Set().Catalog()))
		if err != nil {
			return nil, err
		}
	} else {
		if err := classes.Validate(); err != nil {
			return nil, err
		}
		if len(classes.ByType) < len(host.Set().Catalog()) {
			return nil, fmt.Errorf("core: class map covers %d of %d catalog types",
				len(classes.ByType), len(host.Set().Catalog()))
		}
	}
	approx, err := vhc.New(classes.Classes, vhc.Options{
		Resolution:  host.Resolution(),
		RidgeLambda: cfg.RidgeLambda,
	})
	if err != nil {
		return nil, err
	}
	return &Estimator{host: host, m: m, approx: approx, classes: classes, cfg: cfg}, nil
}

// Host returns the underlying host.
func (e *Estimator) Host() *hypervisor.Host { return e.host }

// Approximator exposes the trained VHC approximator.
func (e *Estimator) Approximator() *vhc.Approximator { return e.approx }

// IdlePower returns the idle power established during offline collection.
func (e *Estimator) IdlePower() float64 { return e.idlePower }

// PeakPower returns the largest power reading observed during offline
// collection — the upper anchor of the plausibility band (0 before
// calibration or after loading a model saved without one).
func (e *Estimator) PeakPower() float64 { return e.peakPower }

// Trained reports whether offline collection has completed.
func (e *Estimator) Trained() bool { return e.trained }

// SetMeter swaps the estimator's meter — the injection point for fault
// wrappers (see internal/faults) and for replacing a failed transport.
// Not safe concurrently with estimation or collection; swap between
// phases.
func (e *Estimator) SetMeter(m meter.Meter) error {
	if m == nil {
		return errors.New("core: nil meter")
	}
	e.m = m
	return nil
}

// sampleMeter reads the meter, retrying past dropouts (a real 1 Hz meter
// occasionally misses a reading; the paper's pipeline just waits for the
// next one). It fails after MeterRetries consecutive losses. This is the
// strict path used by offline collection, where a broken meter must abort
// rather than silently poison the v(S,C) table; the online path layers
// holdover and plausibility gating on top (sampleMeterResilient).
func (e *Estimator) sampleMeter() (meter.Sample, error) {
	for i := 0; i < e.cfg.MeterRetries; i++ {
		s, err := e.m.Sample()
		if err == nil {
			return s, nil
		}
		if !errors.Is(err, meter.ErrDropout) {
			return meter.Sample{}, err
		}
	}
	return meter.Sample{}, fmt.Errorf("core: %d consecutive meter dropouts", e.cfg.MeterRetries)
}

// ErrMeterLost is returned by online estimation when the meter has
// produced no plausible reading for longer than the holdover staleness
// bound — the point past which serving held-over allocations would be
// fiction rather than degradation.
var ErrMeterLost = errors.New("core: meter signal lost beyond holdover bound")

// Terminal reports whether an estimation error is terminal for the
// degradation ladder: the estimator has exhausted holdover (ErrMeterLost)
// or was never trained (ErrUntrained), so no amount of in-tick retrying
// will yield even a degraded allocation — only an external change (the
// meter signal returning, a model load) can. Fleet-level schedulers use
// this to distinguish a host that must be quarantined and probed from one
// that hit an incidental per-tick failure.
func Terminal(err error) bool {
	return errors.Is(err, ErrMeterLost) || errors.Is(err, ErrUntrained)
}

// meterRead is one resilient meter acquisition: the sample to estimate
// with plus the degradation bookkeeping the tick's Allocation reports.
type meterRead struct {
	sample   meter.Sample
	degraded bool
	age      int // ticks since the sample was actually measured
	rejected int // implausible readings discarded this tick
	reason   string
}

// rejectReason classifies a reading against the plausibility gates:
// non-finite values, values outside the calibrated idle/peak band, and
// stuck-at runs. It returns "" for an acceptable reading. The stuck-run
// tracker advances on every observed reading, accepted or not.
func (e *Estimator) rejectReason(p float64) string {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return "non-finite reading"
	}
	if e.cfg.StuckThreshold > 0 {
		if e.stuckRun > 0 && p == e.lastRaw {
			e.stuckRun++
		} else {
			e.stuckRun = 1
			e.lastRaw = p
		}
		if e.stuckRun >= e.cfg.StuckThreshold {
			return fmt.Sprintf("stuck-at reading (%d identical)", e.stuckRun)
		}
	}
	if e.cfg.PlausibilityMargin >= 0 && e.peakPower > 0 {
		lo := e.idlePower / 2
		hi := e.peakPower * (1 + e.cfg.PlausibilityMargin)
		if p < lo || p > hi {
			return fmt.Sprintf("out-of-band reading (%.6g W outside [%.6g, %.6g])", p, lo, hi)
		}
	}
	return ""
}

// sampleMeterResilient acquires the tick's meter sample with the full
// online fault-handling discipline: bounded retry on dropouts, rejection
// of implausible readings (treated as implied dropouts), and last-good
// holdover within the staleness bound. tick is the snapshot's clock, used
// to age the held-over sample.
func (e *Estimator) sampleMeterResilient(tick int) (meterRead, error) {
	rd := meterRead{}
	var lastErr error
	for i := 0; i < e.cfg.MeterRetries; i++ {
		s, err := e.m.Sample()
		if err != nil {
			lastErr = err
			if errors.Is(err, meter.ErrDropout) {
				continue
			}
			// Transport-level failure (e.g. a corrupt serial stream):
			// further in-tick reads of a broken link won't help.
			break
		}
		if reason := e.rejectReason(s.Power); reason != "" {
			rd.rejected++
			lastErr = errors.New(reason)
			continue
		}
		e.lastGood = s
		e.lastGoodTick = tick
		e.haveGood = true
		rd.sample = s
		return rd, nil
	}
	if lastErr == nil {
		lastErr = meter.ErrDropout
	}
	if e.cfg.HoldoverTicks > 0 && e.haveGood {
		if age := tick - e.lastGoodTick; age <= e.cfg.HoldoverTicks {
			rd.sample = e.lastGood
			rd.degraded = true
			rd.age = age
			rd.reason = fmt.Sprintf("holdover: %v (sample %d ticks old)", lastErr, age)
			return rd, nil
		}
		return meterRead{}, fmt.Errorf("%w: no good sample for %d ticks (bound %d): %v",
			ErrMeterLost, tick-e.lastGoodTick, e.cfg.HoldoverTicks, lastErr)
	}
	return meterRead{}, fmt.Errorf("%w: %v", ErrMeterLost, lastErr)
}

// CollectOffline runs the offline data-collecting phase: it measures the
// idle power, then runs every non-empty VHC combination under the
// synthetic workload for OfflineTicksPerCombo ticks, recording samples and
// fitting the mapping vectors. The host's running set, workload bindings
// and clock are modified; all VMs are stopped on return.
func (e *Estimator) CollectOffline() error {
	set := e.host.Set()

	// Establish the idle power (Remark 1: stable when no VM runs).
	e.host.SetCoalition(vm.EmptyCoalition)
	e.peakPower = 0
	var idleSum float64
	for i := 0; i < e.cfg.IdleMeasureTicks; i++ {
		e.host.Advance(1)
		s, err := e.sampleMeter()
		if err != nil {
			return fmt.Errorf("core: measuring idle power: %w", err)
		}
		idleSum += s.Power
		e.peakPower = math.Max(e.peakPower, s.Power)
	}
	e.idlePower = idleSum / float64(e.cfg.IdleMeasureTicks)

	// Attach decorrelated synthetic workloads to every VM. CollectIdleProb
	// optionally lets VMs idle some ticks so the samples also cover
	// partially active VHCs (sub-coalition-like states); the default of 0
	// matches the paper's collection, which keeps every coalition member
	// busy and fits the all-active regime the evaluation validates.
	for i := 0; i < set.Len(); i++ {
		g := workload.Synthetic{Seed: e.cfg.Seed + int64(i)*104729, IdleProb: e.cfg.CollectIdleProb}
		if err := e.host.Attach(vm.ID(i), g); err != nil {
			return err
		}
	}

	// Traverse the 2^r − 1 non-empty VHC (class) combinations. The
	// traversal runs over per-VM running flags rather than coalition
	// masks, so it works identically on hosts past the mask limit; the
	// flag and mask forms aggregate in the same ascending-ID order and
	// produce bit-for-bit identical samples on sets both can represent.
	numCombos := vhc.ComboMask(1) << uint(e.approx.NumTypes())
	for combo := vhc.ComboMask(1); combo < numCombos; combo++ {
		running, any, err := e.runningForCombo(set, combo)
		if err != nil {
			return err
		}
		if !any {
			continue // no VM of these classes on this host
		}
		if err := e.host.SetRunning(running); err != nil {
			return err
		}
		for t := 0; t < e.cfg.OfflineTicksPerCombo; t++ {
			e.host.Advance(1)
			snap := e.host.Collect()
			s, err := e.sampleMeter()
			if err != nil {
				return fmt.Errorf("core: collecting combo %s: %w", combo, err)
			}
			e.peakPower = math.Max(e.peakPower, s.Power)
			dyn := s.Power - e.idlePower
			if dyn < 0 {
				dyn = 0
			}
			got, features, err := vhc.ClassedFeaturesRunning(set, snap.Running, snap.States, e.classes)
			if err != nil {
				return err
			}
			if err := e.approx.AddSample(got, features, dyn); err != nil {
				return err
			}
		}
	}
	e.host.SetCoalition(vm.EmptyCoalition)

	if err := e.approx.Train(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.trained = true
	return nil
}

// runningForCombo returns the running-flag vector selecting all VMs whose
// class belongs to the combo, plus whether any VM was selected.
func (e *Estimator) runningForCombo(set *vm.Set, combo vhc.ComboMask) ([]bool, bool, error) {
	running := make([]bool, set.Len())
	any := false
	for i := 0; i < set.Len(); i++ {
		v, err := set.VM(vm.ID(i))
		if err != nil {
			return nil, false, err
		}
		class := vm.TypeID(e.classes.ByType[v.Type])
		if combo.Contains(class) {
			running[i] = true
			any = true
		}
	}
	return running, any, nil
}

// ErrUntrained is returned by online estimation before CollectOffline.
var ErrUntrained = errors.New("core: estimator not trained (run CollectOffline first)")

// savedModel wraps the approximator model with the estimator-level state
// a reload needs. PeakPower anchors the online plausibility band; models
// saved before it existed load with the band disabled.
type savedModel struct {
	IdlePower float64         `json:"idle_power"`
	PeakPower float64         `json:"peak_power,omitempty"`
	Model     json.RawMessage `json:"model"`
}

// SaveModel persists the calibration (idle power + fitted mapping
// vectors) as JSON, so the expensive offline phase runs once and later
// processes reload it with LoadModel. The exact-match v(S,C) table is
// session state and is not persisted.
func (e *Estimator) SaveModel(w io.Writer) error {
	if !e.trained {
		return ErrUntrained
	}
	var buf bytes.Buffer
	if err := e.approx.Export(&buf); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(savedModel{IdlePower: e.idlePower, PeakPower: e.peakPower, Model: buf.Bytes()}); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// LoadModel restores a calibration written by SaveModel. The estimator's
// host must have the same catalog/class layout the model was trained on.
func (e *Estimator) LoadModel(r io.Reader) error {
	var saved savedModel
	if err := json.NewDecoder(r).Decode(&saved); err != nil {
		return fmt.Errorf("core: load model: %w", err)
	}
	if saved.IdlePower < 0 || math.IsNaN(saved.IdlePower) || math.IsInf(saved.IdlePower, 0) {
		return fmt.Errorf("core: load model: invalid idle power %g", saved.IdlePower)
	}
	if saved.PeakPower < 0 || math.IsNaN(saved.PeakPower) || math.IsInf(saved.PeakPower, 0) {
		return fmt.Errorf("core: load model: invalid peak power %g", saved.PeakPower)
	}
	if err := e.approx.Import(bytes.NewReader(saved.Model)); err != nil {
		return err
	}
	e.idlePower = saved.IdlePower
	e.peakPower = saved.PeakPower
	e.trained = true
	return nil
}

// EstimateTick performs one online estimation step: collect the current
// states, sample the meter, and disaggregate.
func (e *Estimator) EstimateTick() (*Allocation, error) {
	return e.EstimateTickSpan(nil)
}

// EstimateTickSpan is EstimateTick with pipeline tracing: the span (nil
// is fine) gets stage marks "snapshot", "meter", "worth", "solve" and
// "normalize" as the tick moves through the paper's online pipeline.
//
// This is the resilient online path: meter dropouts are retried, readings
// outside the calibrated plausibility band are rejected as implied
// dropouts, and a tick whose reads all fail serves the last good sample
// (flagged Degraded) until the holdover bound lapses, at which point
// ErrMeterLost is returned. It mutates the estimator's fault-handling
// state and must be driven from a single goroutine — the same contract
// Run and powerd.Step already follow; Estimate stays pure.
func (e *Estimator) EstimateTickSpan(sp *obs.Span) (*Allocation, error) {
	snap := e.host.Collect()
	sp.Mark("snapshot")
	rd, err := e.sampleMeterResilient(snap.Tick)
	if err != nil {
		return nil, err
	}
	sp.Mark("meter")
	alloc, err := e.estimateTick(snap, rd.sample.Power, sp)
	if err != nil {
		alloc, err = e.fallbackAllocation(snap, rd.sample.Power, err)
		if err != nil {
			return nil, err
		}
	} else {
		// Remember the proportions for FallbackHold.
		e.lastShares = alloc.PerVM
	}
	if rd.degraded {
		alloc.Degraded = true
		alloc.DegradedReason = rd.reason
		alloc.HoldoverAgeTicks = rd.age
	}
	alloc.RejectedSamples = rd.rejected
	if e.auditor != nil {
		e.auditor.audit(e, snap, alloc)
	}
	return alloc, nil
}

// SetAuditor installs (or, with nil, removes) the invariant auditor
// EstimateTickSpan runs at the end of every successful tick. Like
// SetMeter, not safe concurrently with estimation; install before the
// serve loop starts.
func (e *Estimator) SetAuditor(a *Auditor) { e.auditor = a }

// PlanCompileStats returns this estimator's cumulative worth-plan
// compile counts (successes, failures), so a daemon can diff them across
// ticks and journal recompiles.
func (e *Estimator) PlanCompileStats() (compiles, compileErrors uint64) {
	return e.planCompiles, e.planCompileErrors
}

// fallbackAllocation serves the degraded-mode split after a solver or
// worth-evaluation failure, per the configured FallbackPolicy: the
// previous allocation's proportions (FallbackHold) or a usage-
// proportional CPU split (FallbackProportional), both rescaled to the
// current dynamic power so Efficiency still holds against the meter.
func (e *Estimator) fallbackAllocation(snap hypervisor.Snapshot, measuredTotal float64, cause error) (*Allocation, error) {
	if e.cfg.Fallback == FallbackNone {
		return nil, cause
	}
	n := e.host.Set().Len()
	dyn := measuredTotal - e.idlePower
	if dyn < 0 {
		dyn = 0
	}
	alloc := &Allocation{
		Tick:           snap.Tick,
		Coalition:      snap.Coalition,
		MeasuredPower:  measuredTotal,
		DynamicPower:   dyn,
		PerVM:          make([]float64, n),
		Method:         "fallback",
		Degraded:       true,
		DegradedReason: fmt.Sprintf("fallback(%s): %v", e.cfg.Fallback, cause),
	}
	alloc.Prov.Tier = TierFallback
	alloc.Prov.TierReason = reasonFallback
	members := e.runningMembers(snap)
	if len(members) == 0 {
		alloc.DynamicPower = 0
		return e.attributeIdle(alloc, members), nil
	}
	weights := make([]float64, n)
	var total float64
	// The length check (not just nil) protects against a roster that grew
	// since the shares were remembered (hot-plug between ticks).
	if e.cfg.Fallback == FallbackHold && len(e.lastShares) == n {
		for _, i := range members {
			w := math.Max(e.lastShares[i], 0)
			weights[i] = w
			total += w
		}
	}
	if total <= 0 {
		// Usage-proportional split (also FallbackHold's bootstrap).
		for _, i := range members {
			w := snap.States[i][vm.CPU]
			weights[i] = w
			total += w
		}
	}
	if total <= 0 {
		// Nothing reports usage: split equally across running VMs.
		for _, i := range members {
			weights[i] = 1
		}
		total = float64(len(members))
	}
	for _, i := range members {
		alloc.PerVM[i] = dyn * weights[i] / total
	}
	return e.attributeIdle(alloc, members), nil
}

// Estimate disaggregates a measured total power across the snapshot's
// running VMs with the non-deterministic Shapley value. The grand
// coalition's worth is the measured (idle-deducted) power, so the
// allocation is always efficient against the meter; proper subsets use the
// VHC approximation.
func (e *Estimator) Estimate(snap hypervisor.Snapshot, measuredTotal float64) (*Allocation, error) {
	return e.estimateSpan(snap, measuredTotal, nil)
}

// estimateSpan is Estimate with stage marks. On the exact path the worth
// tabulation and the Shapley accumulation are separate shapley calls,
// letting the span split "worth" from "solve"; Monte-Carlo interleaves
// worth evaluation with sampling, so its whole run lands in "solve".
//
// The exact path always runs the sharded engine, even at Parallelism 1
// (where it executes on the calling goroutine): the shard decomposition
// depends only on n, so the allocation is bit-for-bit identical at every
// parallelism setting — and identical to the compiled-plan tick path,
// which uses the same decomposition (see estimateTick).
func (e *Estimator) estimateSpan(snap hypervisor.Snapshot, measuredTotal float64, sp *obs.Span) (*Allocation, error) {
	if !e.trained {
		return nil, ErrUntrained
	}
	set := e.host.Set()
	n := set.Len()
	if n > vm.MaxPlayers {
		return nil, fmt.Errorf("core: %d VMs exceed the %d-player coalition mask limit; use EstimateTick's symmetry-collapsed path", n, vm.MaxPlayers)
	}
	dyn := measuredTotal - e.idlePower
	if dyn < 0 {
		dyn = 0
	}
	running := snap.Coalition

	alloc := &Allocation{
		Tick:          snap.Tick,
		Coalition:     running,
		MeasuredPower: measuredTotal,
		DynamicPower:  dyn,
		PerVM:         make([]float64, n),
	}
	if running.IsEmpty() {
		// With no VM running every watt is idle by definition (Remark 1);
		// a noisy meter reading above the calibrated idle average must
		// not surface as unattributable dynamic power — Σφ is exactly 0
		// here and Efficiency would be violated by any dyn > 0.
		alloc.DynamicPower = 0
		alloc.Method = "exact"
		alloc.Prov.Tier = TierMaskExact
		alloc.Prov.TierReason = reasonNoRunning
		return e.attributeIdle(alloc, nil), nil
	}

	worth, worthErr := e.buildWorth(snap, dyn)

	var phi []float64
	var err error
	if n <= e.cfg.ExactMaxPlayers {
		alloc.Method = "exact"
		alloc.Prov.Tier = TierMaskExact
		alloc.Prov.TierReason = reasonLegacyPlan
		alloc.Prov.Evaluated = 1 << uint(n)
		alloc.Prov.FullTabulation = true
		var table []float64
		table, err = shapley.TabulateParallel(n, worth, e.cfg.Parallelism)
		if err == nil {
			sp.Mark("worth")
			phi, err = shapley.ExactFromTableParallel(n, table, e.cfg.Parallelism)
		}
	} else {
		alloc.Method = "montecarlo"
		alloc.Prov.Tier = TierMonteCarlo
		alloc.Prov.TierReason = reasonMCPlayers
		var res *shapley.MCResult
		res, err = shapley.MonteCarlo(n, worth, shapley.MCOptions{
			Permutations: e.cfg.MCPermutations,
			Seed:         e.cfg.Seed ^ int64(snap.Tick),
			Parallelism:  e.cfg.Parallelism,
		})
		if res != nil {
			phi = res.Phi
		}
	}
	sp.Mark("solve")
	if err != nil {
		return nil, err
	}
	if werr := worthErr(); werr != nil {
		return nil, fmt.Errorf("core: worth evaluation: %w", werr)
	}
	alloc.PerVM = phi
	alloc = e.attributeIdle(alloc, nil)
	sp.Mark("normalize")
	return alloc, nil
}

// buildWorth constructs the online coalition worth function for a
// snapshot: the measured (idle-deducted) power for the running grand
// coalition, 0 for the empty set, and the VHC approximation for proper
// subsets; stopped VMs are dummies. The returned func reports the first
// evaluation failure (Shapley evaluates worths inside tight loops that
// cannot return errors).
//
// Thread-safety: the returned WorthFunc satisfies the parallel Shapley
// engine's contract (see internal/shapley/parallel.go). It only reads
// immutable per-call state (the snapshot's coalition and state slice,
// the VM set) and the trained vhc.Approximator, whose read path is
// RWMutex-guarded; the error capture below is mutex-guarded. It is pure
// as long as no AddSample/Train/Import runs concurrently — the online
// estimation phase never retrains, which is exactly the contract the
// engine needs.
func (e *Estimator) buildWorth(snap hypervisor.Snapshot, dyn float64) (shapley.WorthFunc, func() error) {
	set := e.host.Set()
	running := snap.Coalition
	var mu sync.Mutex
	var worthErr error
	capture := func(err error) {
		mu.Lock()
		if worthErr == nil {
			worthErr = err
		}
		mu.Unlock()
	}
	worth := func(s vm.Coalition) float64 {
		s &= running // stopped VMs are dummies
		if s == running {
			return dyn
		}
		if s.IsEmpty() {
			return 0
		}
		combo, features, err := vhc.ClassedFeaturesFor(set, s, snap.States, e.classes)
		if err != nil {
			capture(err)
			return 0
		}
		p, err := e.approx.Estimate(combo, features)
		if err != nil {
			capture(err)
			return 0
		}
		return p
	}
	return worth, func() error {
		mu.Lock()
		defer mu.Unlock()
		return worthErr
	}
}

// ensurePlan returns the compiled worth plan for the current model epoch,
// compiling one lazily when the model has changed since the last compile
// (CollectOffline, LoadModel, or any direct approximator mutation — all
// advance vhc.Approximator.Epoch). It returns nil when the plan is
// disabled, the estimator is untrained, or compilation failed for this
// epoch — the caller then serves the legacy path; a failed compile is not
// retried until the model changes again.
func (e *Estimator) ensurePlan() *vhc.Plan {
	if e.cfg.DisableWorthPlan || !e.trained {
		return nil
	}
	epoch := e.approx.Epoch()
	if e.planTried && e.planEpoch == epoch {
		return e.plan // may be nil: compile failed for this epoch
	}
	p, err := vhc.NewPlan(e.host.Set(), e.classes, e.approx)
	e.planTried = true
	if err != nil {
		e.plan = nil
		e.planEpoch = epoch
		e.planCompileErrors++
		metrics().notePlanCompileError()
		return nil
	}
	e.plan = p
	e.planEpoch = p.Epoch()
	e.planCompiles++
	metrics().notePlanCompile()
	return p
}

// InvalidatePlan discards the compiled worth plan and every cross-tick
// structure keyed on the VM set's shape: the incremental worth table,
// the symmetry scratch and the fallback-hold proportions. Call it after
// mutating the host's roster (hypervisor.Host.AddVM) — the approximator
// epoch only tracks the model, not the set, so without this the next
// tick would evaluate a plan compiled for the old n. Same
// single-goroutine contract as EstimateTickSpan.
func (e *Estimator) InvalidatePlan() {
	e.plan = nil
	e.planTried = false
	e.scratch.valid = false
	e.scratch.plan = nil
	e.sym.prevValid = false
	e.sym.prevPlan = nil
	e.lastShares = nil
}

// CalibratedForClass reports whether offline collection trained a model
// for the given catalog type's VHC class on this host — the gate a
// hot-plug or migration destination must pass: a VM of a class the host
// never calibrated cannot be estimated there (every sub-coalition combo
// containing the class is untrained), and would quarantine the host on
// its first tick. Because calibration trains every combination of the
// classes present, and admission preserves "present ⊆ calibrated",
// checking the singleton combo suffices.
func (e *Estimator) CalibratedForClass(t vm.TypeID) bool {
	if !e.trained || int(t) < 0 || int(t) >= len(e.classes.ByType) {
		return false
	}
	return e.approx.Trained(vhc.ComboMask(1) << uint(e.classes.ByType[t]))
}

// planWorth is buildWorth over a compiled plan: the same coalition
// semantics (measured dynamic power for the running grand coalition, 0
// for the empty set, stopped VMs masked out as dummies) with vhc.Plan.Eval
// replacing the allocating ClassedFeaturesFor + Approximator.Estimate
// pair. Same thread-safety contract as buildWorth; Plan.Eval is immutable
// and lock-free, so concurrent shard evaluations never contend.
func planWorth(plan *vhc.Plan, running vm.Coalition, states []vm.State, dyn float64) (shapley.WorthFunc, func() error) {
	var mu sync.Mutex
	var worthErr error
	capture := func(err error) {
		mu.Lock()
		if worthErr == nil {
			worthErr = err
		}
		mu.Unlock()
	}
	worth := func(s vm.Coalition) float64 {
		s &= running // stopped VMs are dummies
		if s == running {
			return dyn
		}
		if s.IsEmpty() {
			return 0
		}
		p, err := plan.Eval(s, states)
		if err != nil {
			capture(err)
			return 0
		}
		return p
	}
	return worth, func() error {
		mu.Lock()
		defer mu.Unlock()
		return worthErr
	}
}

// estimateTick is the EstimateTick engine: estimateSpan plus the
// compiled-plan fast path. When a plan is available the 2^n worth
// evaluations run allocation-free through Plan.Eval, the worth table, φ
// and shard partials live in the estimator's reusable scratch, and ticks
// whose running set and plan match the previous tick re-evaluate only the
// coalitions intersecting the set of VMs whose (quantized) states changed
// — everything else is reused verbatim. The result is bit-for-bit
// identical to the legacy estimateSpan at any parallelism: Plan.Eval
// reproduces the legacy worth bits, a reused table entry is exactly what
// re-evaluation would produce (worths are pure functions of unchanged
// member states), and both paths run the same sharded accumulation.
//
// Like EstimateTickSpan, this mutates estimator state and must be driven
// from a single goroutine; Estimate stays on the pure legacy path.
func (e *Estimator) estimateTick(snap hypervisor.Snapshot, measuredTotal float64, sp *obs.Span) (*Allocation, error) {
	if !e.trained {
		return nil, ErrUntrained
	}
	n := e.host.Set().Len()
	wide := n > vm.MaxPlayers
	plan := e.ensurePlan()
	if plan == nil {
		if wide {
			return nil, fmt.Errorf("core: %d VMs exceed the %d-player mask limit; exact estimation needs the compiled worth plan and the symmetry-collapsed solver", n, vm.MaxPlayers)
		}
		return e.estimateSpan(snap, measuredTotal, sp)
	}
	dyn := measuredTotal - e.idlePower
	if dyn < 0 {
		dyn = 0
	}
	running := snap.Coalition
	members := e.runningMembers(snap)

	alloc := &Allocation{
		Tick:          snap.Tick,
		Coalition:     running,
		MeasuredPower: measuredTotal,
		DynamicPower:  dyn,
	}
	if len(members) == 0 {
		// See estimateSpan's empty-coalition branch: all idle, no
		// dynamic power to disaggregate regardless of meter noise.
		alloc.DynamicPower = 0
		alloc.Method = "exact"
		alloc.PerVM = make([]float64, n)
		alloc.Prov.Tier = TierMaskExact
		alloc.Prov.TierReason = reasonNoRunning
		return e.attributeIdle(alloc, members), nil
	}

	// Symmetry-collapsed exact path: when the running VMs group into
	// k < n_running classes (same VHC class bit, bit-equal state), solve
	// the collapsed game over ∏(c_j+1) count vectors instead of 2^n
	// masks — the only exact route on wide hosts, and past the gate in
	// symWorthwhile a strict win inside the mask range too.
	if !e.cfg.DisableSymmetry {
		handled, err := e.symTick(plan, snap, members, dyn, sp, alloc)
		if err != nil {
			return nil, err
		}
		if handled {
			sp.Mark("solve")
			alloc = e.attributeIdle(alloc, members)
			sp.Mark("normalize")
			return alloc, nil
		}
	}
	if wide {
		return nil, fmt.Errorf("core: %d running VMs exceed the %d-player mask limit and do not collapse into symmetry classes within the per-tick vector budget", len(members), vm.MaxPlayers)
	}

	worth, worthErr := planWorth(plan, running, snap.States, dyn)

	var phi []float64
	var err error
	if n <= e.cfg.ExactMaxPlayers {
		alloc.Method = "exact"
		alloc.Prov.Tier = TierMaskExact
		if e.cfg.DisableSymmetry {
			alloc.Prov.TierReason = reasonSymDisabled
		} else {
			alloc.Prov.TierReason = reasonMaskBudget
		}
		err = e.exactIncremental(plan, snap, worth, dyn, n, sp, alloc)
		if err == nil {
			phi = append(make([]float64, 0, n), e.scratch.phi...)
		}
	} else {
		alloc.Method = "montecarlo"
		alloc.Prov.Tier = TierMonteCarlo
		alloc.Prov.TierReason = reasonMCPlayers
		var res *shapley.MCResult
		res, err = shapley.MonteCarlo(n, worth, shapley.MCOptions{
			Permutations: e.cfg.MCPermutations,
			Seed:         e.cfg.Seed ^ int64(snap.Tick),
			Parallelism:  e.cfg.Parallelism,
		})
		if res != nil {
			phi = res.Phi
		}
	}
	sp.Mark("solve")
	if err == nil {
		if werr := worthErr(); werr != nil {
			err = fmt.Errorf("core: worth evaluation: %w", werr)
		}
	}
	if err != nil {
		// A failed worth evaluation may have written zeros into the
		// table; never reuse it.
		e.scratch.valid = false
		return nil, err
	}
	alloc.PerVM = phi
	alloc = e.attributeIdle(alloc, members)
	sp.Mark("normalize")
	return alloc, nil
}

// exactIncremental runs the exact path into the estimator's scratch
// buffers, incrementally when possible. The cross-tick recurrence: if the
// previous tick tabulated the same plan over the same running set, a
// coalition's worth can only have changed if it contains a VM whose state
// changed (the dirty set) — those masks are re-evaluated in place — or if
// it maps to the running grand coalition, whose worth is the measured
// dynamic power of *this* tick; those entries are rewritten explicitly.
// Everything else (2^n − 2^(n−d) of the table for d dirty VMs) is reused
// verbatim, which is exact because worths are pure functions of their
// members' states. φ lands in e.scratch.phi.
func (e *Estimator) exactIncremental(plan *vhc.Plan, snap hypervisor.Snapshot, worth shapley.WorthFunc, dyn float64, n int, sp *obs.Span, alloc *Allocation) error {
	ts := &e.scratch
	size := 1 << uint(n)
	running := snap.Coalition
	m := metrics()
	if ts.valid && ts.plan == plan && ts.running == running && len(ts.table) == size {
		// Incremental tick: re-evaluate only dirty-intersecting masks.
		// Snapshots are pre-quantized by the hypervisor, so exact float
		// comparison is the right dirty test (and NaN, impossible here,
		// would fail toward re-evaluation anyway).
		var dirty vm.Coalition
		for mm := uint32(running); mm != 0; {
			b := bits.TrailingZeros32(mm)
			mm &^= 1 << uint(b)
			if snap.States[b] != ts.prevStates[b] {
				dirty |= 1 << uint(b)
			}
		}
		if err := shapley.RetabulateParallelInto(ts.table, n, worth, dirty, e.cfg.Parallelism); err != nil {
			return err
		}
		// The grand-equivalent entries (supersets of running) carry this
		// tick's measured dynamic power regardless of dirtiness.
		comp := vm.GrandCoalition(n) &^ running
		for sub := comp; ; sub = (sub - 1) & comp {
			ts.table[running|sub] = dyn
			if sub == 0 {
				break
			}
		}
		alloc.Prov.DirtyVMs = dirty.Size()
		alloc.Prov.Evaluated = size - (size >> uint(dirty.Size()))
		alloc.Prov.Reused = size >> uint(dirty.Size())
		m.notePlanTick(alloc.Prov.DirtyVMs, alloc.Prov.Evaluated, alloc.Prov.Reused, false)
	} else {
		// Full tabulation: first tick, running-set change, or new plan.
		if len(ts.table) != size {
			ts.table = make([]float64, size)
		}
		if len(ts.phi) != n {
			ts.phi = make([]float64, n)
		}
		if len(ts.partials) < shapley.ExactScratch(n) {
			ts.partials = make([]float64, shapley.ExactScratch(n))
		}
		ts.valid = false
		if err := shapley.TabulateParallelInto(ts.table, n, worth, e.cfg.Parallelism); err != nil {
			return err
		}
		alloc.Prov.DirtyVMs = running.Size()
		alloc.Prov.Evaluated = size
		alloc.Prov.FullTabulation = true
		m.notePlanTick(running.Size(), size, 0, true)
	}
	sp.Mark("worth")
	if err := shapley.ExactFromTableParallelInto(ts.phi, ts.partials, n, ts.table, e.cfg.Parallelism); err != nil {
		return err
	}
	ts.prevStates = append(ts.prevStates[:0], snap.States...)
	ts.running = running
	ts.plan = plan
	ts.valid = true
	return nil
}

// Interactions computes the pairwise Shapley interaction index of the
// approximated game at a snapshot: entry (i, j) is the watts the pair
// jointly "saves" (negative) or "costs" (positive) relative to their
// separate contributions — live interference monitoring from the same
// worths the estimator allocates with. Stopped VMs are dummies with zero
// interactions.
func (e *Estimator) Interactions(snap hypervisor.Snapshot, measuredTotal float64) ([][]float64, error) {
	if !e.trained {
		return nil, ErrUntrained
	}
	dyn := measuredTotal - e.idlePower
	if dyn < 0 {
		dyn = 0
	}
	n := e.host.Set().Len()
	worth, worthErr := e.buildWorth(snap, dyn)
	idx, err := shapley.Interactions(n, worth)
	if err != nil {
		return nil, err
	}
	if werr := worthErr(); werr != nil {
		return nil, fmt.Errorf("core: interaction worth evaluation: %w", werr)
	}
	return idx, nil
}

// Audit verifies the Shapley axioms of the allocation the estimator
// produces for a snapshot, against the approximated game it was computed
// from: Efficiency holds by construction; Symmetry and Dummy can be
// violated only through v(S,C) approximation error, so the report
// quantifies how much game structure the VHC approximation preserves.
// tol is the axiom tolerance in watts.
func (e *Estimator) Audit(snap hypervisor.Snapshot, measuredTotal, tol float64) (*shapley.AxiomReport, *Allocation, error) {
	alloc, err := e.Estimate(snap, measuredTotal)
	if err != nil {
		return nil, nil, err
	}
	worth, worthErr := e.buildWorth(snap, alloc.DynamicPower)
	report, err := shapley.CheckAxioms(e.host.Set().Len(), worth, alloc.PerVM, tol)
	if err != nil {
		return nil, nil, err
	}
	if werr := worthErr(); werr != nil {
		return nil, nil, fmt.Errorf("core: audit worth evaluation: %w", werr)
	}
	return report, alloc, nil
}

// attributeIdle fills IdlePerVM per the configured rule. members is the
// running VM set as indices; pass nil to derive it from the allocation's
// coalition mask (valid only below the mask limit).
func (e *Estimator) attributeIdle(alloc *Allocation, members []int) *Allocation {
	if members == nil {
		ids := alloc.Coalition.Members()
		members = make([]int, len(ids))
		for i, id := range ids {
			members[i] = int(id)
		}
	}
	switch e.cfg.IdleAttribution {
	case IdleEqual:
		alloc.IdlePerVM = make([]float64, len(alloc.PerVM))
		if len(members) == 0 {
			return alloc
		}
		share := e.idlePower / float64(len(members))
		for _, i := range members {
			alloc.IdlePerVM[i] = share
		}
	case IdleProportional:
		alloc.IdlePerVM = make([]float64, len(alloc.PerVM))
		var sum float64
		for _, p := range alloc.PerVM {
			sum += p
		}
		if sum <= 0 {
			// Degenerate to equal shares when nothing draws power.
			if len(members) == 0 {
				return alloc
			}
			share := e.idlePower / float64(len(members))
			for _, i := range members {
				alloc.IdlePerVM[i] = share
			}
			return alloc
		}
		for i, p := range alloc.PerVM {
			alloc.IdlePerVM[i] = e.idlePower * p / sum
		}
	}
	return alloc
}

// Run advances the host clock and estimates for the given number of ticks,
// invoking fn with each allocation. It stops at the first error or when fn
// returns false.
func (e *Estimator) Run(ticks int, fn func(*Allocation) bool) error {
	for i := 0; i < ticks; i++ {
		e.host.Advance(1)
		alloc, err := e.EstimateTick()
		if err != nil {
			return err
		}
		if fn != nil && !fn(alloc) {
			return nil
		}
	}
	return nil
}
