package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// testRig builds a host (2×VM1, 1×VM2 on the Xeon), a perfect meter and an
// estimator with short offline runs.
func testRig(t *testing.T, cfg Config) (*hypervisor.Host, *Estimator) {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "VM1a", Type: 0},
		{Name: "VM1b", Type: 0},
		{Name: "VM2", Type: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OfflineTicksPerCombo == 0 {
		cfg.OfflineTicksPerCombo = 120
	}
	if cfg.IdleMeasureTicks == 0 {
		cfg.IdleMeasureTicks = 5
	}
	est, err := New(host, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return host, est
}

func TestNewValidation(t *testing.T) {
	host, _ := testRig(t, Config{})
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Fatal("want nil-host error")
	}
	if _, err := New(host, nil, Config{}); err == nil {
		t.Fatal("want nil-meter error")
	}
}

func TestUntrainedEstimate(t *testing.T) {
	host, est := testRig(t, Config{})
	snap := host.Collect()
	if _, err := est.Estimate(snap, 150); !errors.Is(err, ErrUntrained) {
		t.Fatalf("want ErrUntrained, got %v", err)
	}
	if est.Trained() {
		t.Fatal("estimator must start untrained")
	}
}

func TestCollectOffline(t *testing.T) {
	host, est := testRig(t, Config{Seed: 1})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	if !est.Trained() {
		t.Fatal("estimator must be trained")
	}
	// The Xeon idles at 138 W; a perfect meter must recover it exactly.
	if math.Abs(est.IdlePower()-138) > 1e-9 {
		t.Fatalf("IdlePower = %g, want 138", est.IdlePower())
	}
	if !host.Running().IsEmpty() {
		t.Fatal("collection must stop all VMs")
	}
	// Combos for both present types (2 of the catalog's 4) are trained;
	// the two-type paper catalog host has types {0, 1} populated.
	approx := est.Approximator()
	if !approx.Trained(0b0001) || !approx.Trained(0b0010) || !approx.Trained(0b0011) {
		t.Fatal("populated combos must be trained")
	}
	if approx.SampleCount(0b0001) == 0 {
		t.Fatal("samples must be recorded")
	}
}

func TestEstimateEfficiencyAndDummy(t *testing.T) {
	host, est := testRig(t, Config{Seed: 2})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Run VM1a and VM2 under load; VM1b stays stopped (a dummy).
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(2, workload.Constant("half", vm.State{vm.CPU: 0.5})); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0, 2))
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Method != "exact" {
		t.Fatalf("Method = %q", alloc.Method)
	}
	// Efficiency: Σ Φ = measured − idle, exactly.
	var sum float64
	for _, p := range alloc.PerVM {
		sum += p
	}
	if math.Abs(sum-alloc.DynamicPower) > 1e-9 {
		t.Fatalf("efficiency: sum %g vs dynamic %g", sum, alloc.DynamicPower)
	}
	// Dummy: the stopped VM gets exactly zero.
	if alloc.PerVM[1] != 0 {
		t.Fatalf("stopped VM share = %g, want 0", alloc.PerVM[1])
	}
	// Both running VMs draw positive power.
	if alloc.PerVM[0] <= 0 || alloc.PerVM[2] <= 0 {
		t.Fatalf("running VM shares = %v", alloc.PerVM)
	}
	if alloc.IdlePerVM != nil {
		t.Fatal("IdleNone must not attribute idle power")
	}
}

func TestEstimateSymmetry(t *testing.T) {
	host, est := testRig(t, Config{Seed: 3})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Two identical VMs at the same state must get (near-)equal shares —
	// the Table III fairness property.
	for _, id := range []vm.ID{0, 1} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1))
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.PerVM[0]-alloc.PerVM[1]) > 1e-9 {
		t.Fatalf("symmetric VMs got %g and %g", alloc.PerVM[0], alloc.PerVM[1])
	}
	// And the Table III headline: each gets 10 W of the 20 W pair.
	if math.Abs(alloc.PerVM[0]-10) > 1.5 {
		t.Fatalf("share = %g, want ~10", alloc.PerVM[0])
	}
}

func TestEstimateEmptyCoalition(t *testing.T) {
	host, est := testRig(t, Config{Seed: 4})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.EmptyCoalition)
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range alloc.PerVM {
		if p != 0 {
			t.Fatalf("empty coalition shares = %v", alloc.PerVM)
		}
	}
	if alloc.DynamicPower != 0 {
		t.Fatalf("DynamicPower = %g", alloc.DynamicPower)
	}
}

func TestIdleAttributionRules(t *testing.T) {
	for _, rule := range []IdleAttribution{IdleEqual, IdleProportional} {
		host, est := testRig(t, Config{Seed: 5, IdleAttribution: rule})
		if err := est.CollectOffline(); err != nil {
			t.Fatal(err)
		}
		for _, id := range []vm.ID{0, 2} {
			if err := host.Attach(id, workload.FloatPoint()); err != nil {
				t.Fatal(err)
			}
		}
		host.SetCoalition(vm.CoalitionOf(0, 2))
		host.Advance(1)
		alloc, err := est.EstimateTick()
		if err != nil {
			t.Fatal(err)
		}
		if alloc.IdlePerVM == nil {
			t.Fatalf("%s: IdlePerVM missing", rule)
		}
		var idleSum, total float64
		for i := range alloc.PerVM {
			idleSum += alloc.IdlePerVM[i]
			total += alloc.Total(vm.ID(i))
		}
		if math.Abs(idleSum-est.IdlePower()) > 1e-9 {
			t.Fatalf("%s: idle shares sum %g, want %g", rule, idleSum, est.IdlePower())
		}
		if math.Abs(total-alloc.MeasuredPower) > 1e-9 {
			t.Fatalf("%s: total %g vs measured %g", rule, total, alloc.MeasuredPower)
		}
		if alloc.IdlePerVM[1] != 0 {
			t.Fatalf("%s: stopped VM got idle share %g", rule, alloc.IdlePerVM[1])
		}
		if rule == IdleEqual && math.Abs(alloc.IdlePerVM[0]-alloc.IdlePerVM[2]) > 1e-9 {
			t.Fatalf("equal rule shares differ: %v", alloc.IdlePerVM)
		}
	}
}

func TestRun(t *testing.T) {
	host, est := testRig(t, Config{Seed: 6})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(0, workload.Synthetic{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	count := 0
	startClock := host.Clock()
	if err := est.Run(5, func(a *Allocation) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("Run delivered %d allocations", count)
	}
	if host.Clock() != startClock+5 {
		t.Fatalf("clock advanced %d", host.Clock()-startClock)
	}
	// Early stop.
	count = 0
	if err := est.Run(5, func(a *Allocation) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("early stop delivered %d", count)
	}
}

func TestMeterDropoutRetries(t *testing.T) {
	// A meter with dropouts must not fail collection or estimation: the
	// estimator retries within the tick.
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{{Name: "VM1", Type: 0}})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.NewSim(host.PowerSource(), meter.SimOptions{DropoutProb: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(host, m, Config{OfflineTicksPerCombo: 60, IdleMeasureTicks: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	host.Advance(1)
	if _, err := est.EstimateTick(); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloPathForLargeSets(t *testing.T) {
	// Force the MC path by setting ExactMaxPlayers below the set size.
	host, est := testRig(t, Config{Seed: 8, ExactMaxPlayers: 2, MCPermutations: 128})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []vm.ID{0, 1, 2} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1, 2))
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Method != "montecarlo" {
		t.Fatalf("Method = %q", alloc.Method)
	}
	var sum float64
	for _, p := range alloc.PerVM {
		sum += p
	}
	// MC permutation sampling is exactly efficient.
	if math.Abs(sum-alloc.DynamicPower) > 1e-9 {
		t.Fatalf("MC efficiency: %g vs %g", sum, alloc.DynamicPower)
	}
}

func TestAuditAxioms(t *testing.T) {
	host, est := testRig(t, Config{Seed: 11})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Two identical VMs at identical states: the approximated game is
	// symmetric by construction (same class aggregation), so the audit
	// must come back clean with a modest tolerance.
	for _, id := range []vm.ID{0, 1} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1))
	host.Advance(1)
	snap := host.Collect()
	power, err := host.TruePower()
	if err != nil {
		t.Fatal(err)
	}
	report, alloc, err := est.Audit(snap, power, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if alloc == nil || len(alloc.PerVM) != 3 {
		t.Fatal("audit must return the allocation")
	}
	if report.EfficiencyGap != 0 {
		t.Fatalf("efficiency gap = %g", report.EfficiencyGap)
	}
	if len(report.SymmetryViolations) != 0 {
		t.Fatalf("symmetry violations: %v", report.SymmetryViolations)
	}
	if len(report.DummyViolations) != 0 {
		t.Fatalf("dummy violations: %v", report.DummyViolations)
	}
}

func TestApproximatorDiagnostics(t *testing.T) {
	_, est := testRig(t, Config{Seed: 12})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	d, err := est.Approximator().Diags(0b0011)
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples == 0 {
		t.Fatal("diagnostics must record samples")
	}
	if d.MeanPower <= 0 {
		t.Fatalf("MeanPower = %g", d.MeanPower)
	}
	// The approximation is good on its own training data: < 15% rel RMSE.
	if got := d.RelativeRMSE(); got <= 0 || got > 0.15 {
		t.Fatalf("RelativeRMSE = %g", got)
	}
	if _, err := est.Approximator().Diags(0b1000); err == nil {
		t.Fatal("want untrained error")
	}
}

func TestNewWithClassMap(t *testing.T) {
	host, _ := testRig(t, Config{})
	// A class map that merges the catalog's 4 types into 2 classes.
	classes := &vhc.ClassMap{ByType: []int{0, 0, 1, 1}, Classes: 2}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(host, m, Config{
		OfflineTicksPerCombo: 60, IdleMeasureTicks: 5, Seed: 1, Classes: classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Approximator().NumTypes() != 2 {
		t.Fatalf("approximator classes = %d", est.Approximator().NumTypes())
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Online estimation works through the class map.
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.PerVM[0] <= 0 {
		t.Fatalf("classed allocation = %v", alloc.PerVM)
	}
	// An invalid class map is rejected.
	bad := &vhc.ClassMap{ByType: []int{0, 9, 0, 0}, Classes: 2}
	if _, err := New(host, m, Config{Classes: bad}); err == nil {
		t.Fatal("want invalid-class-map error")
	}
	short := &vhc.ClassMap{ByType: []int{0, 0}, Classes: 1}
	if _, err := New(host, m, Config{Classes: short}); err == nil {
		t.Fatal("want uncovered-catalog error")
	}
}

func TestHostAccessor(t *testing.T) {
	host, est := testRig(t, Config{})
	if est.Host() != host {
		t.Fatal("Host accessor wrong")
	}
}

func TestMeterHardFailurePropagates(t *testing.T) {
	host, _ := testRig(t, Config{})
	boom := errors.New("meter exploded")
	m, err := meter.NewSim(func() (float64, error) { return 0, boom }, meter.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(host, m, Config{OfflineTicksPerCombo: 10, IdleMeasureTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); !errors.Is(err, boom) {
		t.Fatalf("want source error, got %v", err)
	}
}

func TestPermanentDropoutFails(t *testing.T) {
	host, _ := testRig(t, Config{})
	alwaysDrop := meterFunc(func() (meter.Sample, error) {
		return meter.Sample{}, meter.ErrDropout
	})
	est, err := New(host, alwaysDrop, Config{OfflineTicksPerCombo: 10, IdleMeasureTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err == nil {
		t.Fatal("want consecutive-dropout error")
	}
}

// meterFunc adapts a function to meter.Meter.
type meterFunc func() (meter.Sample, error)

func (f meterFunc) Sample() (meter.Sample, error) { return f() }

func TestProportionalIdleDegeneratesToEqual(t *testing.T) {
	// All running VMs idle → zero dynamic shares → the proportional rule
	// degenerates to an equal split.
	host, est := testRig(t, Config{Seed: 13, IdleAttribution: IdleProportional})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Detach the collection workloads so the running VMs truly idle.
	for i := 0; i < host.Set().Len(); i++ {
		if err := host.Attach(vm.ID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 2)) // running but idle
	host.Advance(1)
	alloc, err := est.EstimateTick()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.IdlePerVM == nil {
		t.Fatal("idle shares missing")
	}
	if math.Abs(alloc.IdlePerVM[0]-alloc.IdlePerVM[2]) > 1e-9 {
		t.Fatalf("degenerate proportional shares differ: %v", alloc.IdlePerVM)
	}
	if alloc.IdlePerVM[0] <= 0 {
		t.Fatal("running VMs must share the idle power")
	}
	if alloc.IdlePerVM[1] != 0 {
		t.Fatal("stopped VM must get no idle share")
	}
}

func TestInteractionsFromApproximatedGame(t *testing.T) {
	host, est := testRig(t, Config{Seed: 41})
	snap := host.Collect()
	if _, err := est.Interactions(snap, 150); !errors.Is(err, ErrUntrained) {
		t.Fatalf("want ErrUntrained, got %v", err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	// Use a cross-type pair (VM1a + VM2): their singleton worths come
	// from combos the offline phase trained in isolation, so the
	// approximated interaction is reliably negative. (A same-type pair's
	// singletons are extrapolated from pair-trained data — the headline
	// experiment's known bias — and can flip sign.)
	for _, id := range []vm.ID{0, 2} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 2))
	host.Advance(1)
	snap = host.Collect()
	power, err := host.TruePower()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := est.Interactions(snap, power)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("matrix size = %d", len(idx))
	}
	// The co-located busy pair interferes; the stopped VM1b is a dummy
	// with zero interactions.
	if idx[0][2] >= 0 {
		t.Fatalf("busy pair interaction = %g, want < 0", idx[0][2])
	}
	if idx[0][1] != 0 || idx[2][1] != 0 {
		t.Fatalf("stopped VM interactions = %g, %g, want 0", idx[0][1], idx[2][1])
	}
}

func TestConcurrentEstimate(t *testing.T) {
	// After training, Estimate on a fixed snapshot is read-only and must
	// be safe to call from many goroutines (parallel replay/analytics).
	host, est := testRig(t, Config{Seed: 31})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0, 2))
	host.Advance(1)
	snap := host.Collect()
	power, err := host.TruePower()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := est.Estimate(snap, power)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				alloc, err := est.Estimate(snap, power)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range alloc.PerVM {
					if alloc.PerVM[j] != ref.PerVM[j] {
						t.Errorf("concurrent estimate diverged at vm %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestParallelismDeterministicAllocations(t *testing.T) {
	// The Parallelism knob may change wall-clock time only: for a fixed
	// seed and snapshot the allocation must be bit-for-bit identical at
	// any worker count (the engine's decomposition is fixed; see
	// internal/shapley/parallel.go). Exercise both the exact path and,
	// via a lowered ExactMaxPlayers, the Monte-Carlo path.
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"exact", Config{Seed: 12}},
		{"exact-legacy", Config{Seed: 12, DisableWorthPlan: true}},
		{"montecarlo", Config{Seed: 12, ExactMaxPlayers: 2, MCPermutations: 96}},
		{"montecarlo-legacy", Config{Seed: 12, ExactMaxPlayers: 2, MCPermutations: 96, DisableWorthPlan: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			estimate := func(parallelism int) []float64 {
				cfg := tc.cfg
				cfg.Parallelism = parallelism
				host, est := testRig(t, cfg)
				if err := est.CollectOffline(); err != nil {
					t.Fatal(err)
				}
				for _, id := range []vm.ID{0, 1, 2} {
					if err := host.Attach(id, workload.FloatPoint()); err != nil {
						t.Fatal(err)
					}
				}
				host.SetCoalition(vm.CoalitionOf(0, 1, 2))
				host.Advance(1)
				alloc, err := est.EstimateTick()
				if err != nil {
					t.Fatal(err)
				}
				return alloc.PerVM
			}
			ref := estimate(2)
			for _, p := range []int{4, 7, -1} {
				got := estimate(p)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("parallelism %d: PerVM[%d] = %.17g, want %.17g", p, i, got[i], ref[i])
					}
				}
			}
			// Parallelism 1 runs the same shard decomposition on the
			// calling goroutine, so even the serial default is bit-exact.
			serial := estimate(1)
			for i := range ref {
				if serial[i] != ref[i] {
					t.Fatalf("serial PerVM[%d] = %.17g, parallel %.17g", i, serial[i], ref[i])
				}
			}
		})
	}
}

func TestIdleAttributionString(t *testing.T) {
	if IdleNone.String() != "none" || IdleEqual.String() != "equal" || IdleProportional.String() != "proportional" {
		t.Fatal("attribution names wrong")
	}
	if IdleAttribution(9).String() == "" {
		t.Fatal("unknown attribution must render")
	}
}
