package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"vmpower/internal/hypervisor"
	"vmpower/internal/obs"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// TestPlanWorthMatchesBuildWorth is the compiled-plan worth property: over
// randomized coalitions, states and class maps, the plan-backed worth must
// reproduce the legacy buildWorth bit for bit on every one of the 2^n
// masks — including stopped-VM dummies (masks reaching outside the running
// set) and the measured-power override for the running grand coalition.
// Bit equality trivially satisfies the ≤1e-12 acceptance bound.
func TestPlanWorthMatchesBuildWorth(t *testing.T) {
	merged := &vhc.ClassMap{ByType: []int{0, 0, 1, 1}, Classes: 2}
	for _, tc := range []struct {
		name    string
		classes *vhc.ClassMap
	}{
		{"identity-classes", nil},
		{"merged-classes", merged},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, est := testRig(t, Config{Seed: 7, Classes: tc.classes})
			if err := est.CollectOffline(); err != nil {
				t.Fatal(err)
			}
			plan := est.ensurePlan()
			if plan == nil {
				t.Fatal("plan must compile for a trained estimator")
			}
			n := est.host.Set().Len()
			rng := rand.New(rand.NewSource(41))
			quant := func() float64 { return float64(rng.Intn(101)) / 100 }
			for trial := 0; trial < 400; trial++ {
				running := vm.Coalition(rng.Intn(1 << uint(n)))
				states := make([]vm.State, n)
				for i := range states {
					// Stopped VMs keep random garbage states on purpose:
					// both worths must mask them out as dummies.
					states[i] = vm.State{quant(), quant(), quant()}
				}
				dyn := rng.Float64() * 200
				snap := hypervisor.Snapshot{Tick: trial, Coalition: running, States: states}
				legacy, legacyErr := est.buildWorth(snap, dyn)
				planned, planErr := planWorth(plan, running, states, dyn)
				for s := vm.Coalition(0); s < 1<<uint(n); s++ {
					lw, pw := legacy(s), planned(s)
					if pw != lw {
						t.Fatalf("trial %d running=%s: worth(%s) plan=%.17g legacy=%.17g",
							trial, running, s, pw, lw)
					}
				}
				if !running.IsEmpty() && planned(running) != dyn {
					t.Fatalf("trial %d: grand coalition must return measured dyn", trial)
				}
				if err := legacyErr(); err != nil {
					t.Fatalf("trial %d: legacy worth error: %v", trial, err)
				}
				if err := planErr(); err != nil {
					t.Fatalf("trial %d: plan worth error: %v", trial, err)
				}
			}
		})
	}
}

// planScenario drives one or more hosts in lock-step through the phases
// that exercise every arm of the incremental recurrence: steady constant
// states (dirty = 0, full verbatim reuse), per-tick random states (partial
// dirty sets), a running-set change (forced full retabulation) and a
// recovery phase. step is called once per tick after every host advanced.
func planScenario(t *testing.T, hosts []*hypervisor.Host, step func(tick int)) {
	t.Helper()
	for _, host := range hosts {
		if err := host.Attach(0, workload.Constant("steady", vm.State{vm.CPU: 0.5, vm.Memory: 0.25, vm.DiskIO: 0.1})); err != nil {
			t.Fatal(err)
		}
		if err := host.Attach(1, workload.Synthetic{Seed: 5}); err != nil {
			t.Fatal(err)
		}
		if err := host.Attach(2, workload.Synthetic{Seed: 9, IdleProb: 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	tick := 0
	phase := func(coalition vm.Coalition, ticks int) {
		for _, host := range hosts {
			host.SetCoalition(coalition)
		}
		for i := 0; i < ticks; i++ {
			for _, host := range hosts {
				host.Advance(1)
			}
			tick++
			step(tick)
		}
	}
	phase(vm.CoalitionOf(0), 8)        // constant states: dirty = 0 reuse
	phase(vm.CoalitionOf(0, 1, 2), 12) // random states: partial dirty sets
	phase(vm.CoalitionOf(0, 2), 8)     // running-set change: full retabulation
	phase(vm.CoalitionOf(0, 1, 2), 8)  // recovery
}

// TestPlanEstimateTickMatchesLegacy runs the full scenario on two
// identically seeded rigs — one on the compiled-plan path, one forced onto
// the legacy path via DisableWorthPlan — and demands bit-identical
// allocations every tick. This pins the incremental cross-tick reuse
// against a from-scratch tabulation under steady states, dirty subsets and
// coalition changes.
func TestPlanEstimateTickMatchesLegacy(t *testing.T) {
	for _, par := range []int{1, 4} {
		cfg := Config{Seed: 3, Parallelism: par}
		legacyCfg := cfg
		legacyCfg.DisableWorthPlan = true
		hostP, estP := testRig(t, cfg)
		hostL, estL := testRig(t, legacyCfg)
		if err := estP.CollectOffline(); err != nil {
			t.Fatal(err)
		}
		if err := estL.CollectOffline(); err != nil {
			t.Fatal(err)
		}
		planScenario(t, []*hypervisor.Host{hostP, hostL}, func(tick int) {
			allocP, err := estP.EstimateTick()
			if err != nil {
				t.Fatalf("par %d tick %d: plan estimate: %v", par, tick, err)
			}
			allocL, err := estL.EstimateTick()
			if err != nil {
				t.Fatalf("par %d tick %d: legacy estimate: %v", par, tick, err)
			}
			// Provenance names the path that served the tick, so it differs
			// between the rigs by construction; the equivalence claim is
			// about the allocation itself.
			allocP.Prov, allocL.Prov = Provenance{}, Provenance{}
			if !reflect.DeepEqual(allocP, allocL) {
				t.Fatalf("par %d tick %d: plan %+v != legacy %+v", par, tick, allocP, allocL)
			}
		})
	}
}

// TestPlanParallelismDeepEqual pins the acceptance criterion directly: the
// plan-based EstimateTick sequence is DeepEqual-deterministic between
// parallelism 1 and NumCPU (and the "all cores" default) across a
// scenario exercising reuse, dirty sets and coalition changes.
func TestPlanParallelismDeepEqual(t *testing.T) {
	run := func(par int) []*Allocation {
		host, est := testRig(t, Config{Seed: 3, Parallelism: par})
		if err := est.CollectOffline(); err != nil {
			t.Fatal(err)
		}
		var out []*Allocation
		planScenario(t, []*hypervisor.Host{host}, func(tick int) {
			alloc, err := est.EstimateTick()
			if err != nil {
				t.Fatalf("par %d tick %d: %v", par, tick, err)
			}
			out = append(out, alloc)
		})
		return out
	}
	ref := run(1)
	for _, par := range []int{runtime.NumCPU(), -1} {
		got := run(par)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("parallelism %d: allocation sequence differs from parallelism 1", par)
		}
	}
}

// TestPlanMonteCarloMatchesLegacy forces the Monte-Carlo arm (lowered
// ExactMaxPlayers) so the plan-backed worth feeds the permutation sampler;
// with a fixed seed the result must match the legacy worth bit for bit.
func TestPlanMonteCarloMatchesLegacy(t *testing.T) {
	cfg := Config{Seed: 11, ExactMaxPlayers: 2, MCPermutations: 64}
	legacyCfg := cfg
	legacyCfg.DisableWorthPlan = true
	hostP, estP := testRig(t, cfg)
	hostL, estL := testRig(t, legacyCfg)
	if err := estP.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	if err := estL.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	for _, host := range []*hypervisor.Host{hostP, hostL} {
		if err := host.Attach(1, workload.Synthetic{Seed: 2}); err != nil {
			t.Fatal(err)
		}
		host.SetCoalition(vm.CoalitionOf(0, 1, 2))
	}
	for tick := 0; tick < 6; tick++ {
		hostP.Advance(1)
		hostL.Advance(1)
		allocP, err := estP.EstimateTick()
		if err != nil {
			t.Fatal(err)
		}
		allocL, err := estL.EstimateTick()
		if err != nil {
			t.Fatal(err)
		}
		if allocP.Method != "montecarlo" {
			t.Fatalf("tick %d: method %q, want montecarlo", tick, allocP.Method)
		}
		allocP.Prov, allocL.Prov = Provenance{}, Provenance{}
		if !reflect.DeepEqual(allocP, allocL) {
			t.Fatalf("tick %d: plan MC %+v != legacy MC %+v", tick, allocP, allocL)
		}
	}
}

// TestPlanMetricsCounters wires the package metrics and checks the
// scenario's cache behaviour is observable: every exact tick is a plan
// tick, steady ticks reuse coalitions verbatim, and the running-set
// changes force full retabulations.
func TestPlanMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	t.Cleanup(func() { Instrument(nil) })
	m := metrics()

	host, est := testRig(t, Config{Seed: 3})
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	ticks := 0
	planScenario(t, []*hypervisor.Host{host}, func(int) {
		if _, err := est.EstimateTick(); err != nil {
			t.Fatal(err)
		}
		ticks++
	})
	if got := m.PlanTicks.Value(); got != uint64(ticks) {
		t.Fatalf("PlanTicks = %d, want %d", got, ticks)
	}
	if m.PlanCompiles.Value() != 1 {
		t.Fatalf("PlanCompiles = %d, want 1 (one model epoch)", m.PlanCompiles.Value())
	}
	full := m.PlanFullTabulations.Value()
	// First tick plus the three coalition changes retabulate in full.
	if full < 4 || full == uint64(ticks) {
		t.Fatalf("PlanFullTabulations = %d over %d ticks, want >= 4 and < ticks", full, ticks)
	}
	if m.PlanCoalitionsReused.Value() == 0 {
		t.Fatal("steady phases must reuse coalitions verbatim")
	}
	if m.PlanCoalitionsEvaluated.Value() == 0 {
		t.Fatal("dirty phases must re-evaluate coalitions")
	}
}
