package core

import (
	"fmt"
	"sync"

	"vmpower/internal/hypervisor"
	"vmpower/internal/obs"
	"vmpower/internal/shapley"
	"vmpower/internal/vhc"
	"vmpower/internal/vm"
)

// This file implements the symmetry-collapsed exact tick: when the
// running VMs group into k < n classes sharing a VHC class bit and a
// bit-equal quantized state, every worth the game can ask about is
// invariant under permuting a class's members, so the tick solves the
// collapsed game over type-count vectors (V = ∏(c_j+1) entries) instead
// of 2^n coalition masks. This is both a large win on dense repeated
// populations within the mask range and the ONLY exact route past
// vm.MaxPlayers, where coalition bitmasks cannot exist at all.

// symVectorBudget caps the collapsed enumeration per tick on wide hosts
// (past vm.MaxPlayers, where there is no mask fallback): 2^22 entries is
// a 32 MiB table and a few tens of ms of evaluation — comfortably inside
// a 1 Hz tick — while far under shapley.SymMaxVectors' API bound.
const symVectorBudget = 1 << 22

// symScratch is the cross-tick state of the collapsed path, owned by the
// estimation goroutine exactly like tickScratch.
type symScratch struct {
	members []int          // running VM ids, ascending
	group   map[symKey]int // class key -> class index, this tick
	classes []vhc.SymClass // this tick's classes, first-seen order
	counts  []int          // classes[j].Count, the solver's class sizes
	classOf []int          // VM id -> class index (-1 when stopped)
	dirty   []bool         // per-class state-changed flags vs prev

	prev      []vhc.SymClass // previous tick's classes
	prevPlan  *vhc.Plan      // plan the previous table was evaluated under
	prevValid bool           // table holds the previous tick's worths

	sc    shapley.SymScratch
	table []float64
	phi   []float64
}

// symKey identifies a symmetry class: the compiled VHC class bit plus the
// bit-equal quantized state every member shares.
type symKey struct {
	bit   vhc.ComboMask
	state vm.State
}

// runningMembers fills sym.members with the running VM ids in ascending
// order, from the wide-safe Running flags when the snapshot carries them
// (hypervisor.Collect always does) and from the Coalition mask otherwise
// (snapshots built by hand in tests and experiments).
func (e *Estimator) runningMembers(snap hypervisor.Snapshot) []int {
	s := &e.sym
	s.members = s.members[:0]
	if snap.Running != nil {
		for i, r := range snap.Running {
			if r {
				s.members = append(s.members, i)
			}
		}
		return s.members
	}
	for _, id := range snap.Coalition.Members() {
		s.members = append(s.members, int(id))
	}
	return s.members
}

// buildSymClasses groups the running members into symmetry classes in
// first-seen (ascending VM id) order and returns false if any member's
// class bit cannot be resolved. counts/classOf/classes are (re)built in
// the scratch.
func (e *Estimator) buildSymClasses(plan *vhc.Plan, snap hypervisor.Snapshot, members []int) error {
	s := &e.sym
	if s.group == nil {
		s.group = make(map[symKey]int)
	}
	clear(s.group)
	s.classes = s.classes[:0]
	s.counts = s.counts[:0]
	n := e.host.Set().Len()
	if cap(s.classOf) < n {
		s.classOf = make([]int, n)
	}
	s.classOf = s.classOf[:n]
	for i := range s.classOf {
		s.classOf[i] = -1
	}
	for _, i := range members {
		bit, err := plan.ClassBit(i)
		if err != nil {
			return err
		}
		key := symKey{bit: bit, state: snap.States[i]}
		j, ok := s.group[key]
		if !ok {
			j = len(s.classes)
			s.group[key] = j
			s.classes = append(s.classes, vhc.SymClass{Bit: bit, State: snap.States[i], First: i})
			s.counts = append(s.counts, 0)
		}
		s.classes[j].Count++
		s.counts[j]++
		s.classOf[i] = j
	}
	return nil
}

// symWorthwhile decides whether the collapsed enumeration beats the
// alternative for nr running players in k classes, and returns the vector
// count V when it does. The tiers:
//
//   - nr <= cfg.ExactMaxPlayers: the mask path costs 2^nr, so collapse
//     only when it at least halves the table (V <= 2^(nr-1)); below that
//     the mask path's incremental machinery is the better engine.
//   - nr <= vm.MaxPlayers: the alternative is Monte-Carlo; collapse when
//     V stays within the configured exact budget (2^ExactMaxPlayers,
//     capped at the per-tick vector budget) — an exact answer at the cost
//     the operator already signed off on for exact ticks.
//   - nr > vm.MaxPlayers: no mask fallback exists; collapse whenever V
//     fits the per-tick budget.
func symWorthwhile(nr, k int, counts []int, cfg Config) (int, bool) {
	if k >= nr {
		return 0, false // all players distinct: nothing collapses
	}
	var budget int
	switch {
	case nr <= cfg.ExactMaxPlayers:
		budget = 1 << uint(nr-1)
	case nr <= vm.MaxPlayers:
		b := cfg.ExactMaxPlayers
		if b > 22 {
			b = 22
		}
		budget = 1 << uint(b)
	default:
		budget = symVectorBudget
	}
	if budget > symVectorBudget {
		budget = symVectorBudget
	}
	v := 1
	for _, c := range counts {
		v *= c + 1
		if v > budget {
			return 0, false
		}
	}
	return v, true
}

// symAligned reports whether the previous tick's classes line up with the
// current ones position by position (same bit and size), which makes the
// previous collapsed table reusable modulo dirty-state re-evaluation. A
// same-class member swap (one VM of a class stops, another with the same
// state starts) keeps alignment: the collapsed game is identical.
func symAligned(prev, cur []vhc.SymClass) bool {
	if len(prev) != len(cur) {
		return false
	}
	for j := range cur {
		if prev[j].Bit != cur[j].Bit || prev[j].Count != cur[j].Count {
			return false
		}
	}
	return true
}

// symTick attempts the symmetry-collapsed exact solve for the tick. It
// returns handled=false (and no error) when the tick does not collapse
// profitably — the caller then serves the mask path. On success the
// allocation's PerVM, Method and SymmetryClasses are filled in.
func (e *Estimator) symTick(plan *vhc.Plan, snap hypervisor.Snapshot, members []int, dyn float64, sp *obs.Span, alloc *Allocation) (bool, error) {
	s := &e.sym
	if err := e.buildSymClasses(plan, snap, members); err != nil {
		return false, err
	}
	k := len(s.classes)
	v, ok := symWorthwhile(len(members), k, s.counts, e.cfg)
	if !ok {
		return false, nil
	}
	if _, err := s.sc.Prepare(s.counts); err != nil {
		return false, err
	}
	if len(s.table) != v {
		if cap(s.table) < v {
			s.table = make([]float64, v)
		}
		s.table = s.table[:v]
		s.prevValid = false
	}
	if cap(s.phi) < k {
		s.phi = make([]float64, k)
	}
	s.phi = s.phi[:k]

	var mu sync.Mutex
	var worthErr error
	classes := s.classes
	counts := s.counts
	worth := func(t []int) float64 {
		grand := true
		for j := range t {
			if t[j] != counts[j] {
				grand = false
				break
			}
		}
		if grand {
			return dyn
		}
		p, err := plan.EvalCounts(classes, t)
		if err != nil {
			mu.Lock()
			if worthErr == nil {
				worthErr = err
			}
			mu.Unlock()
			return 0
		}
		return p
	}

	evaluated, reused, dirtyClasses, full := v, 0, k, true
	if s.prevValid && s.prevPlan == plan && symAligned(s.prev, classes) {
		// Incremental tick: only vectors touching a class whose shared
		// state changed need re-evaluation; the rest describe coalitions
		// of unchanged composition and keep their worths verbatim.
		if cap(s.dirty) < k {
			s.dirty = make([]bool, k)
		}
		s.dirty = s.dirty[:k]
		dirtyClasses = 0
		for j := range s.dirty {
			s.dirty[j] = s.prev[j].State != classes[j].State
			if s.dirty[j] {
				dirtyClasses++
			}
		}
		full = false
		var err error
		evaluated, err = shapley.SymRetabulateInto(s.table, &s.sc, worth, s.dirty)
		if err != nil {
			s.prevValid = false
			return false, err
		}
		reused = v - evaluated
	} else {
		s.prevValid = false
		if err := shapley.SymTabulateInto(s.table, &s.sc, worth); err != nil {
			return false, err
		}
	}
	// The grand vector carries this tick's measured dynamic power
	// regardless of dirtiness (dyn moves every tick even when states
	// don't).
	s.table[v-1] = dyn
	sp.Mark("worth")

	if err := shapley.SymExactFromTableInto(s.phi, &s.sc, s.table); err != nil {
		s.prevValid = false
		return false, err
	}
	if worthErr != nil {
		s.prevValid = false
		return false, fmt.Errorf("core: worth evaluation: %w", worthErr)
	}

	n := e.host.Set().Len()
	alloc.PerVM = make([]float64, n)
	for _, i := range members {
		alloc.PerVM[i] = s.phi[s.classOf[i]]
	}
	alloc.Method = "exact"
	alloc.SymmetryClasses = k
	alloc.Prov.Tier = TierSymExact
	alloc.Prov.TierReason = reasonSymCollapse
	alloc.Prov.DirtyVMs = dirtyClasses
	alloc.Prov.Evaluated = evaluated
	alloc.Prov.Reused = reused
	alloc.Prov.FullTabulation = full

	s.prev = append(s.prev[:0], classes...)
	s.prevPlan = plan
	s.prevValid = true
	metrics().noteSymTick(k, evaluated, reused)
	return true, nil
}
