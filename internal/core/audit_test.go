package core

import (
	"math"
	"testing"

	"vmpower/internal/hypervisor"
	"vmpower/internal/obs"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// auditRig is testRig plus calibration and a running coalition, the
// state an online auditor actually sees.
func auditRig(t *testing.T, cfg Config) (*hypervisor.Host, *Estimator) {
	t.Helper()
	host, est := testRig(t, cfg)
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(2, workload.Constant("half", vm.State{vm.CPU: 0.5})); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0, 2))
	return host, est
}

func TestAuditCleanTicksNoViolations(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	t.Cleanup(func() { Instrument(nil) })

	host, est := auditRig(t, Config{Seed: 11})
	var violations []AuditViolation
	est.SetAuditor(NewAuditor(AuditConfig{DeepEvery: 3}, func(v AuditViolation) {
		violations = append(violations, v)
	}))

	const ticks = 9
	for i := 0; i < ticks; i++ {
		host.Advance(1)
		alloc, err := est.EstimateTick()
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Prov.Tier == "" {
			t.Fatal("audited tick has no tier in its provenance")
		}
		if alloc.Prov.EfficiencyResidualWatts > 1e-6 {
			t.Fatalf("tick %d: residual %g W", i, alloc.Prov.EfficiencyResidualWatts)
		}
		if alloc.Prov.AuditViolations != 0 {
			t.Fatalf("tick %d: %d violations on a clean tick", i, alloc.Prov.AuditViolations)
		}
		deepTick := (i+1)%3 == 0
		if alloc.Prov.DeepChecked != deepTick {
			t.Fatalf("tick %d: DeepChecked = %v, want %v", i, alloc.Prov.DeepChecked, deepTick)
		}
		if deepTick && alloc.Prov.DeepMaxDeltaWatts > 1e-9 {
			t.Fatalf("tick %d: deep delta %g W", i, alloc.Prov.DeepMaxDeltaWatts)
		}
	}
	if len(violations) != 0 {
		t.Fatalf("clean run produced violations: %+v", violations)
	}
	m := metrics()
	if got := m.AuditChecks.Value(); got != ticks {
		t.Fatalf("audit checks = %d, want %d", got, ticks)
	}
	if got := m.AuditDeepChecks.Value(); got != ticks/3 {
		t.Fatalf("deep checks = %d, want %d", got, ticks/3)
	}
	if m.AuditViolations.Value() != 0 || m.AuditDeepMismatches.Value() != 0 {
		t.Fatalf("violation counters moved: %d/%d",
			m.AuditViolations.Value(), m.AuditDeepMismatches.Value())
	}
}

// TestAuditDetectsBrokenAllocations feeds the cheap per-tick checks
// hand-corrupted allocations and checks each invariant fires — and that
// the auditor only flags, never aborts.
func TestAuditDetectsBrokenAllocations(t *testing.T) {
	Instrument(nil)
	_, est := testRig(t, Config{})
	var got []string
	a := NewAuditor(AuditConfig{}, func(v AuditViolation) { got = append(got, v.Kind) })
	snap := hypervisor.Snapshot{}

	// Efficiency: shares that do not sum to the dynamic power.
	bad := &Allocation{DynamicPower: 40, PerVM: []float64{10, 10, 10}, Method: "exact"}
	a.audit(est, snap, bad)
	if len(got) != 1 || got[0] != "efficiency" {
		t.Fatalf("violations = %v, want [efficiency]", got)
	}
	if bad.Prov.AuditViolations != 1 {
		t.Fatalf("Prov.AuditViolations = %d", bad.Prov.AuditViolations)
	}
	if bad.Prov.EfficiencyResidualWatts != 10 {
		t.Fatalf("residual = %g, want 10", bad.Prov.EfficiencyResidualWatts)
	}

	// Non-finite share (the NaN poisons the sum too, so efficiency also
	// fires — both edges matter, order does not).
	got = nil
	bad = &Allocation{DynamicPower: 40, PerVM: []float64{math.NaN(), 20, 20}, Method: "exact"}
	a.audit(est, snap, bad)
	if !containsKind(got, "non-finite") {
		t.Fatalf("violations = %v, want non-finite", got)
	}

	// Share far outside the plausibility band (sum kept consistent so
	// only the bound check fires).
	got = nil
	bad = &Allocation{DynamicPower: 40, PerVM: []float64{140, -60, -40}, Method: "exact"}
	a.audit(est, snap, bad)
	if !containsKind(got, "share-bound") || containsKind(got, "efficiency") {
		t.Fatalf("violations = %v, want share-bound only", got)
	}

	// Monte-Carlo slack: a residual an exact tick would flag passes.
	got = nil
	ok := &Allocation{DynamicPower: 40, PerVM: []float64{20.0005, 10, 10}, Method: "montecarlo"}
	a.audit(est, snap, ok)
	if len(got) != 0 {
		t.Fatalf("MC tick flagged: %v", got)
	}
	exact := &Allocation{DynamicPower: 40, PerVM: []float64{20.0005, 10, 10}, Method: "exact"}
	a.audit(est, snap, exact)
	if !containsKind(got, "efficiency") {
		t.Fatalf("same residual not flagged on an exact tick: %v", got)
	}
}

func containsKind(kinds []string, want string) bool {
	for _, k := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// TestAuditDeepCheckCatchesDivergence re-solves a genuine tick through
// the alternate path (clean → no mismatch), then perturbs two shares in
// an efficiency-preserving way so only the deep check can notice.
func TestAuditDeepCheckCatchesDivergence(t *testing.T) {
	Instrument(nil)
	host, est := auditRig(t, Config{Seed: 12})
	host.Advance(1)
	snap := host.Collect()
	alloc, err := est.Estimate(snap, 150)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Method != "exact" {
		t.Fatalf("Method = %q", alloc.Method)
	}

	var got []AuditViolation
	a := NewAuditor(AuditConfig{DeepEvery: 1}, func(v AuditViolation) { got = append(got, v) })
	a.audit(est, snap, alloc)
	if len(got) != 0 {
		t.Fatalf("clean tick flagged: %+v", got)
	}
	if !alloc.Prov.DeepChecked || alloc.Prov.DeepMaxDeltaWatts > 1e-9 {
		t.Fatalf("deep check did not run cleanly: %+v", alloc.Prov)
	}

	// Shift 1 mW between two VMs: Σφ unchanged, so the cheap pass stays
	// silent and only the re-solve can tell.
	alloc.PerVM[0] += 1e-3
	alloc.PerVM[1] -= 1e-3
	alloc.Prov = Provenance{Tier: alloc.Prov.Tier}
	got = nil
	a.audit(est, snap, alloc)
	if !containsViolation(got, "deep-mismatch") || containsViolation(got, "efficiency") {
		t.Fatalf("violations = %+v, want deep-mismatch only", got)
	}
	if alloc.Prov.DeepMaxDeltaWatts < 0.9e-3 {
		t.Fatalf("deep delta = %g, want ~1e-3", alloc.Prov.DeepMaxDeltaWatts)
	}

	// Non-exact ticks have no alternate path and must be skipped.
	mc := &Allocation{DynamicPower: 12, PerVM: []float64{6, 3, 3}, Method: "montecarlo"}
	got = nil
	a.audit(est, snap, mc)
	if len(got) != 0 || mc.Prov.DeepChecked {
		t.Fatalf("MC tick deep-checked: %+v / %+v", got, mc.Prov)
	}
}

func containsViolation(vs []AuditViolation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}
