package core

import (
	"fmt"
	"math"

	"vmpower/internal/hypervisor"
	"vmpower/internal/vm"
)

// AuditConfig tunes the invariant auditor. The zero value gives the
// defaults below.
type AuditConfig struct {
	// EfficiencyTol is the relative Efficiency tolerance: a tick violates
	// when |Σφ − dyn| > EfficiencyTol × max(1, dyn) watts. Default 1e-6.
	// Monte-Carlo ticks get 100× slack — their φ still telescopes to the
	// grand worth per sampled permutation, but the float error of
	// millions of accumulated marginals is larger than an exact solve's.
	EfficiencyTol float64
	// ShareMargin widens the per-VM plausibility band: every share must
	// fall in [−m·s, dyn + m·s] where s = max(1, dyn) and m is the
	// margin. Exact Shapley shares can go slightly negative under
	// interference, but a share far below zero or above the whole
	// dynamic draw is an engine bug, not physics. Default 0.5.
	ShareMargin float64
	// DeepEvery is the sampled deep-check cadence: every DeepEvery-th
	// audited tick that was solved exactly is re-solved through the
	// alternate exact path (the legacy mask enumeration — which checks
	// sym-vs-mask when the collapsed solver served the tick, and
	// plan-vs-legacy otherwise) and compared per-VM. 0 disables deep
	// checks. Each deep check costs one full 2^n solve.
	DeepEvery int
	// DeepTol is the per-VM deep-check tolerance, relative like
	// EfficiencyTol. Default 1e-9 (the documented sym≡mask equivalence
	// bound; the plan path is bit-identical to legacy).
	DeepTol float64
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.EfficiencyTol <= 0 {
		c.EfficiencyTol = 1e-6
	}
	if c.ShareMargin <= 0 {
		c.ShareMargin = 0.5
	}
	if c.DeepTol <= 0 {
		c.DeepTol = 1e-9
	}
	return c
}

// AuditViolation is one invariant failure, delivered to the auditor's
// callback. Violations never abort the tick: the allocation has already
// been produced and the operator needs it served and flagged, not
// withheld.
type AuditViolation struct {
	Tick int
	// Kind is "efficiency", "share-bound", "non-finite" or
	// "deep-mismatch".
	Kind   string
	Detail string
}

// Auditor runs in-line invariant checks on every successful tick plus a
// sampled deep re-solve, publishing vmpower_audit_* metrics and invoking
// the violation callback. It is owned by the estimation goroutine (same
// single-goroutine contract as EstimateTickSpan); the callback fires
// synchronously from that goroutine.
type Auditor struct {
	cfg         AuditConfig
	onViolation func(AuditViolation)
	ticks       uint64 // audited ticks, drives the deep cadence
}

// NewAuditor builds an auditor. onViolation (nil is fine) is invoked
// synchronously for each violation.
func NewAuditor(cfg AuditConfig, onViolation func(AuditViolation)) *Auditor {
	return &Auditor{cfg: cfg.withDefaults(), onViolation: onViolation}
}

// violate records one violation on the tick's provenance, the package
// metrics and the callback. Violations are rare, so the formatted detail
// may allocate.
func (a *Auditor) violate(alloc *Allocation, kind, detail string) {
	alloc.Prov.AuditViolations++
	metrics().noteAuditViolation()
	if a.onViolation != nil {
		a.onViolation(AuditViolation{Tick: alloc.Tick, Kind: kind, Detail: detail})
	}
}

// audit runs the per-tick checks. The in-line pass is allocation-free
// and O(n): the Efficiency residual and per-VM plausibility bounds. The
// deep pass re-solves the tick through the alternate exact path every
// DeepEvery audited ticks.
func (a *Auditor) audit(e *Estimator, snap hypervisor.Snapshot, alloc *Allocation) {
	a.ticks++
	dyn := alloc.DynamicPower
	scale := dyn
	if scale < 1 {
		scale = 1
	}

	// Efficiency: the shares must sum to the dynamic power the meter
	// implied — the axiom a tenant's bill rests on.
	var sum float64
	for _, p := range alloc.PerVM {
		sum += p
	}
	residual := math.Abs(sum - dyn)
	alloc.Prov.EfficiencyResidualWatts = residual
	tol := a.cfg.EfficiencyTol * scale
	if alloc.Method == "montecarlo" {
		tol *= 100
	}
	if math.IsNaN(residual) || residual > tol {
		a.violate(alloc, "efficiency",
			fmt.Sprintf("|Σφ−dyn| = %g W exceeds %g W (Σφ=%g, dyn=%g, tier=%s)",
				residual, tol, sum, dyn, alloc.Prov.Tier))
	}

	// Plausibility: every share finite and inside the interference band.
	lo := -a.cfg.ShareMargin * scale
	hi := dyn + a.cfg.ShareMargin*scale
	for i, p := range alloc.PerVM {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			a.violate(alloc, "non-finite", fmt.Sprintf("φ[%d] = %g", i, p))
			continue
		}
		if p < lo || p > hi {
			a.violate(alloc, "share-bound",
				fmt.Sprintf("φ[%d] = %g W outside [%g, %g]", i, p, lo, hi))
		}
	}

	metrics().noteAudit(residual)

	if a.cfg.DeepEvery <= 0 || a.ticks%uint64(a.cfg.DeepEvery) != 0 {
		return
	}
	a.deepCheck(e, snap, alloc, scale)
}

// deepCheck re-solves an exactly-solved tick through the pure legacy
// mask path (Estimate: ClassedFeaturesFor worths + full 2^n tabulation)
// and compares per-VM shares. When the symmetry-collapsed solver served
// the tick this is the sym-vs-mask equivalence; otherwise it is
// plan-vs-legacy. Monte-Carlo and fallback ticks have no exact alternate
// and are skipped, as are sets past the mask limit (no alternate exists
// there at all).
func (a *Auditor) deepCheck(e *Estimator, snap hypervisor.Snapshot, alloc *Allocation, scale float64) {
	n := len(alloc.PerVM)
	if alloc.Method != "exact" || n > e.cfg.ExactMaxPlayers || n > vm.MaxPlayers {
		return
	}
	alt, err := e.Estimate(snap, alloc.MeasuredPower)
	metrics().noteAuditDeep()
	if err != nil {
		a.violate(alloc, "deep-mismatch", fmt.Sprintf("alternate exact solve failed: %v", err))
		metrics().noteAuditDeepMismatch()
		return
	}
	var maxDelta float64
	worst := -1
	for i := range alloc.PerVM {
		d := math.Abs(alloc.PerVM[i] - alt.PerVM[i])
		if d > maxDelta {
			maxDelta, worst = d, i
		}
	}
	alloc.Prov.DeepChecked = true
	alloc.Prov.DeepMaxDeltaWatts = maxDelta
	if maxDelta > a.cfg.DeepTol*scale {
		a.violate(alloc, "deep-mismatch",
			fmt.Sprintf("tier %s diverges from the mask path by %g W at VM %d (tol %g)",
				alloc.Prov.Tier, maxDelta, worst, a.cfg.DeepTol*scale))
		metrics().noteAuditDeepMismatch()
	}
}
