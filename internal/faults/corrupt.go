package faults

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// ByteBurst is one scripted corruption window in stream-offset space:
// bytes [Start, Start+Len) of the stream are corrupted.
type ByteBurst struct {
	Start int64
	Len   int64
}

func (b ByteBurst) covers(off int64) bool { return off >= b.Start && off < b.Start+b.Len }

// CorruptOptions configures a CorruptReader.
type CorruptOptions struct {
	// Seed drives the corruption PRNG.
	Seed int64
	// FlipProb is the per-byte probability of a random bit flip.
	FlipProb float64
	// Bursts lists scripted corruption windows; every byte inside a burst
	// is XOR-scrambled. A burst longer than a frame guarantees the serial
	// reader sees bad frames and has to resynchronise.
	Bursts []ByteBurst
}

// CorruptReader wraps an io.Reader with deterministic, seeded byte
// corruption — the stream-level half of the fault model, used to feed a
// serial.Reader the line noise the CRC and resync logic exist for. It is
// safe for concurrent use (reads are serialised).
type CorruptReader struct {
	mu  sync.Mutex
	r   io.Reader
	rng *rand.Rand
	opt CorruptOptions
	off int64
}

// NewCorruptReader wraps r.
func NewCorruptReader(r io.Reader, opt CorruptOptions) (*CorruptReader, error) {
	if r == nil {
		return nil, fmt.Errorf("faults: nil reader")
	}
	if opt.FlipProb < 0 || opt.FlipProb >= 1 {
		return nil, fmt.Errorf("faults: flip probability %g outside [0,1)", opt.FlipProb)
	}
	for i, b := range opt.Bursts {
		if b.Start < 0 || b.Len <= 0 {
			return nil, fmt.Errorf("faults: burst %d has window [%d,+%d)", i, b.Start, b.Len)
		}
	}
	return &CorruptReader{r: r, rng: rand.New(rand.NewSource(opt.Seed)), opt: opt}, nil
}

// Read implements io.Reader, corrupting bytes per the options. The
// corruption is a pure function of (seed, byte offset, burst schedule),
// so a replay with the same underlying stream is identical.
func (c *CorruptReader) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		off := c.off + int64(i)
		inBurst := false
		for _, b := range c.opt.Bursts {
			if b.covers(off) {
				inBurst = true
				break
			}
		}
		switch {
		case inBurst:
			// Scramble, avoiding the degenerate XOR 0 that would leave
			// the byte intact.
			p[i] ^= byte(1 + c.rng.Intn(255))
		case c.opt.FlipProb > 0 && c.rng.Float64() < c.opt.FlipProb:
			p[i] ^= 1 << uint(c.rng.Intn(8))
		}
	}
	c.off += int64(n)
	return n, err
}
