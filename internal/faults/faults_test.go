package faults

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"vmpower/internal/meter"
	"vmpower/internal/meter/serial"
)

func constMeter(t *testing.T, w float64) meter.Meter {
	t.Helper()
	m, err := meter.Perfect(func() (float64, error) { return w, nil })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWrapValidation(t *testing.T) {
	inner := constMeter(t, 100)
	if _, err := Wrap(nil, Options{}); err == nil {
		t.Fatal("want nil-meter error")
	}
	for _, bad := range []Options{
		{DropoutProb: -0.1},
		{DropoutProb: 1},
		{SpikeProb: 2},
		{NaNProb: -1},
		{SpikeFactor: -3},
		{Episodes: []Episode{{Start: -1, Len: 5}}},
		{Episodes: []Episode{{Start: 0, Len: 0}}},
	} {
		if _, err := Wrap(inner, bad); err == nil {
			t.Fatalf("options %+v must fail", bad)
		}
	}
}

func TestDisarmedIsTransparent(t *testing.T) {
	fm, err := Wrap(constMeter(t, 151.5), Options{DropoutProb: 0.9, NaNProb: 0.09})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s, err := fm.Sample()
		if err != nil || s.Power != 151.5 {
			t.Fatalf("disarmed sample %d: %v %v", i, s, err)
		}
	}
	if c := fm.Injected(); c != (Counts{}) {
		t.Fatalf("disarmed wrapper injected %+v", c)
	}
}

func TestSeededDropoutsAreDeterministic(t *testing.T) {
	run := func() []bool {
		fm, err := Wrap(constMeter(t, 100), Options{Seed: 42, DropoutProb: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		fm.SetArmed(true)
		var drops []bool
		for i := 0; i < 200; i++ {
			_, err := fm.Sample()
			if err != nil && !errors.Is(err, meter.ErrDropout) {
				t.Fatalf("unexpected error %v", err)
			}
			drops = append(drops, err != nil)
		}
		return drops
	}
	a, b := run(), run()
	var n int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at sample %d", i)
		}
		if a[i] {
			n++
		}
	}
	if n < 30 || n > 90 {
		t.Fatalf("dropout count %d implausible for p=0.3 over 200", n)
	}
}

func TestEpisodes(t *testing.T) {
	boom := errors.New("boom")
	fm, err := Wrap(constMeter(t, 100), Options{
		Episodes: []Episode{
			{Start: 1, Len: 1, Kind: Dropout},
			{Start: 2, Len: 2, Kind: StuckAt},
			{Start: 4, Len: 1, Kind: Spike, Factor: 5},
			{Start: 5, Len: 1, Kind: NaN},
			{Start: 6, Len: 1, Kind: Error, Err: boom},
			{Start: 7, Len: 1, Kind: Error},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fm.SetArmed(true)

	// Tick 0: clean; seeds the stuck-at value.
	if s, err := fm.Sample(); err != nil || s.Power != 100 {
		t.Fatalf("tick 0: %v %v", s, err)
	}
	fm.NextTick()
	if _, err := fm.Sample(); !errors.Is(err, meter.ErrDropout) {
		t.Fatalf("tick 1 want dropout, got %v", err)
	}
	fm.NextTick()
	for tick := 2; tick < 4; tick++ {
		if s, err := fm.Sample(); err != nil || s.Power != 100 {
			t.Fatalf("tick %d stuck-at: %v %v", tick, s, err)
		}
		fm.NextTick()
	}
	if s, err := fm.Sample(); err != nil || s.Power != 500 {
		t.Fatalf("tick 4 spike: %v %v", s, err)
	}
	fm.NextTick()
	if s, err := fm.Sample(); err != nil || !math.IsNaN(s.Power) {
		t.Fatalf("tick 5 want NaN, got %v %v", s, err)
	}
	fm.NextTick()
	if _, err := fm.Sample(); !errors.Is(err, boom) {
		t.Fatalf("tick 6 want boom, got %v", err)
	}
	fm.NextTick()
	if _, err := fm.Sample(); !errors.Is(err, ErrInjected) {
		t.Fatalf("tick 7 want ErrInjected, got %v", err)
	}

	c := fm.Injected()
	if c.Dropouts != 1 || c.Stuck != 2 || c.Spikes != 1 || c.NaNs != 1 || c.Errors != 2 {
		t.Fatalf("counts %+v", c)
	}
}

func TestStuckAtBeforeAnyReadingFallsThrough(t *testing.T) {
	fm, err := Wrap(constMeter(t, 77), Options{
		Episodes: []Episode{{Start: 0, Len: 1, Kind: StuckAt}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fm.SetArmed(true)
	if s, err := fm.Sample(); err != nil || s.Power != 77 {
		t.Fatalf("want live fallthrough, got %v %v", s, err)
	}
}

func TestCorruptReaderBurstBreaksFrames(t *testing.T) {
	// Encode 20 valid frames, scramble a burst covering frames 5..9, and
	// check the serial reader resynchronises: every delivered sample must
	// be one of the encoded ones, and both sides of the burst arrive.
	var stream bytes.Buffer
	w := serial.NewWriter(&stream)
	for i := 0; i < 20; i++ {
		if err := w.Write(meter.Sample{Seq: uint64(i), Power: 100 + float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cr, err := NewCorruptReader(&stream, CorruptOptions{
		Seed:   7,
		Bursts: []ByteBurst{{Start: 5 * 16, Len: 5 * 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := serial.NewReader(cr)
	var got []uint64
	for {
		s, err := r.Read()
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			break
		}
		if err != nil {
			continue // bad frame: the reader resyncs on the next call
		}
		if s.Power != 100+float64(s.Seq) {
			t.Fatalf("corrupted frame accepted: %+v", s)
		}
		got = append(got, s.Seq)
	}
	if len(got) < 10 {
		t.Fatalf("only %d of 20 frames survived a 5-frame burst: %v", len(got), got)
	}
	var before, after bool
	for _, seq := range got {
		if seq < 5 {
			before = true
		}
		if seq >= 10 {
			after = true
		}
	}
	if !before || !after {
		t.Fatalf("did not recover on both sides of the burst: %v", got)
	}
}

func TestCorruptReaderValidation(t *testing.T) {
	if _, err := NewCorruptReader(nil, CorruptOptions{}); err == nil {
		t.Fatal("want nil-reader error")
	}
	if _, err := NewCorruptReader(bytes.NewReader(nil), CorruptOptions{FlipProb: 1}); err == nil {
		t.Fatal("want flip-prob error")
	}
	if _, err := NewCorruptReader(bytes.NewReader(nil), CorruptOptions{Bursts: []ByteBurst{{Start: -1, Len: 1}}}); err == nil {
		t.Fatal("want burst error")
	}
}
