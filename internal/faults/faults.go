// Package faults is a deterministic, seeded fault injector for the
// metering pipeline. The paper's prototype reads a 1 Hz serial power feed
// (Sec. VI-B) where dropouts, corrupt frames and stale samples are the
// normal case, not the exception; this package reproduces those failure
// modes on demand so the estimator's degradation behaviour can be tested,
// demoed and regression-pinned.
//
// Two layers are covered:
//
//   - Meter wraps any meter.Meter with independent per-sample faults
//     (dropouts, spikes, NaNs) plus scripted episodes in tick time
//     (dropout windows, stuck-at readings, error bursts standing in for a
//     corrupt serial stream). Everything is driven by one seeded PRNG, so
//     a (seed, schedule) pair replays bit-for-bit.
//   - CorruptReader wraps an io.Reader with seeded byte corruption —
//     random bit flips and scripted burst windows — which turns a valid
//     serial frame stream into the bad-frame/resync traffic the
//     serial.Reader and Client must ride out.
//
// The injector is armed explicitly (SetArmed), so a daemon can calibrate
// against the clean meter and switch chaos on only for the online phase.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"vmpower/internal/meter"
)

// Kind enumerates the fault classes an Episode can script.
type Kind int

const (
	// Dropout makes every sample in the episode return meter.ErrDropout.
	Dropout Kind = iota
	// StuckAt freezes the meter at the last clean reading for the whole
	// episode (a real meter whose display stops updating).
	StuckAt
	// Spike multiplies readings by the episode (or option) factor —
	// implausibly large values a plausibility gate should reject.
	Spike
	// NaN returns non-finite readings.
	NaN
	// Error returns the episode's Err from every sample — standing in for
	// a transport-level failure such as serial.ErrCorruptStream.
	Error
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case Dropout:
		return "dropout"
	case StuckAt:
		return "stuck-at"
	case Spike:
		return "spike"
	case NaN:
		return "nan"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Episode is one scripted fault window in tick time: ticks
// [Start, Start+Len) are affected. Ticks advance only via Meter.NextTick,
// so the driving loop decides what a "tick" is (powerd advances once per
// Step).
type Episode struct {
	// Start is the first affected tick (as counted by NextTick calls
	// after arming; the first sample window is tick 0).
	Start int
	// Len is the episode duration in ticks.
	Len int
	// Kind is the fault class.
	Kind Kind
	// Factor scales Spike readings; <= 0 uses Options.SpikeFactor.
	Factor float64
	// Err is returned by Error episodes; nil uses ErrInjected.
	Err error
}

// covers reports whether the episode is active at tick t.
func (ep Episode) covers(t int) bool { return t >= ep.Start && t < ep.Start+ep.Len }

// ErrInjected is the default error of an Error episode.
var ErrInjected = errors.New("faults: injected meter error")

// Options configures a Meter.
type Options struct {
	// Seed drives the injector's private PRNG. Equal seeds replay
	// identical fault sequences.
	Seed int64
	// DropoutProb is the per-sample probability of meter.ErrDropout.
	DropoutProb float64
	// SpikeProb is the per-sample probability of a spike reading.
	SpikeProb float64
	// SpikeFactor scales spiked readings. 0 defaults to 10.
	SpikeFactor float64
	// NaNProb is the per-sample probability of a NaN reading.
	NaNProb float64
	// Episodes is the scripted schedule, in tick time.
	Episodes []Episode
}

func (o Options) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"dropout", o.DropoutProb}, {"spike", o.SpikeProb}, {"nan", o.NaNProb}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("faults: %s probability %g outside [0,1)", p.name, p.v)
		}
	}
	if o.SpikeFactor < 0 {
		return fmt.Errorf("faults: negative spike factor %g", o.SpikeFactor)
	}
	for i, ep := range o.Episodes {
		if ep.Start < 0 || ep.Len <= 0 {
			return fmt.Errorf("faults: episode %d has window [%d,+%d)", i, ep.Start, ep.Len)
		}
	}
	return nil
}

// Counts tallies the faults injected so far, for test assertions and
// chaos-run reporting.
type Counts struct {
	Dropouts uint64
	Spikes   uint64
	NaNs     uint64
	Stuck    uint64
	Errors   uint64
}

// Meter wraps an inner meter.Meter with the scripted and random faults of
// its Options. It is safe for concurrent use; tick advancement is the
// caller's (single) driving loop.
type Meter struct {
	inner meter.Meter
	opts  Options

	mu       sync.Mutex
	rng      *rand.Rand
	armed    bool
	tick     int
	seq      uint64
	lastGood float64
	haveGood bool
	counts   Counts
}

// Wrap builds a fault-injecting wrapper over inner. The wrapper starts
// disarmed (transparent); call SetArmed(true) to begin injecting.
func Wrap(inner meter.Meter, opts Options) (*Meter, error) {
	if inner == nil {
		return nil, errors.New("faults: nil inner meter")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.SpikeFactor == 0 {
		opts.SpikeFactor = 10
	}
	return &Meter{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// SetArmed switches injection on or off. Disarmed, the wrapper is
// transparent (every Sample goes straight to the inner meter), which lets
// a daemon calibrate cleanly before the chaos starts.
func (m *Meter) SetArmed(on bool) {
	m.mu.Lock()
	m.armed = on
	m.mu.Unlock()
}

// Armed reports whether injection is active.
func (m *Meter) Armed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.armed
}

// NextTick advances the episode clock by one tick. The driving loop calls
// it once per estimation tick so Episodes line up with the estimator's
// tick numbering regardless of how many retry samples a tick consumes.
func (m *Meter) NextTick() {
	m.mu.Lock()
	m.tick++
	m.mu.Unlock()
}

// Tick returns the current episode clock.
func (m *Meter) Tick() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tick
}

// Injected returns the fault tallies so far.
func (m *Meter) Injected() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts
}

// episode returns the first episode covering tick t, if any.
func (m *Meter) episode(t int) (Episode, bool) {
	for _, ep := range m.opts.Episodes {
		if ep.covers(t) {
			return ep, true
		}
	}
	return Episode{}, false
}

// Sample implements meter.Meter: it applies the active episode (if any),
// then the independent per-sample faults, to the inner meter's reading.
// A clean pass-through updates the last-good value StuckAt episodes
// replay.
func (m *Meter) Sample() (meter.Sample, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.armed {
		return m.passThrough()
	}
	if ep, ok := m.episode(m.tick); ok {
		switch ep.Kind {
		case Dropout:
			m.counts.Dropouts++
			m.seq++
			return meter.Sample{Seq: m.seq}, meter.ErrDropout
		case Error:
			m.counts.Errors++
			m.seq++
			err := ep.Err
			if err == nil {
				err = ErrInjected
			}
			return meter.Sample{Seq: m.seq}, err
		case StuckAt:
			if m.haveGood {
				m.counts.Stuck++
				m.seq++
				return meter.Sample{Seq: m.seq, Power: m.lastGood}, nil
			}
			// No reading to stick at yet: fall through to the live meter.
		case NaN:
			m.counts.NaNs++
			m.seq++
			return meter.Sample{Seq: m.seq, Power: math.NaN()}, nil
		case Spike:
			s, err := m.passThrough()
			if err != nil {
				return s, err
			}
			m.counts.Spikes++
			f := ep.Factor
			if f <= 0 {
				f = m.opts.SpikeFactor
			}
			s.Power *= f
			return s, nil
		}
	}
	// Independent per-sample faults. One uniform draw per fault class
	// keeps the stream deterministic in (seed, sample index).
	if m.opts.DropoutProb > 0 && m.rng.Float64() < m.opts.DropoutProb {
		m.counts.Dropouts++
		m.seq++
		return meter.Sample{Seq: m.seq}, meter.ErrDropout
	}
	s, err := m.passThrough()
	if err != nil {
		return s, err
	}
	if m.opts.NaNProb > 0 && m.rng.Float64() < m.opts.NaNProb {
		m.counts.NaNs++
		s.Power = math.NaN()
		return s, nil
	}
	if m.opts.SpikeProb > 0 && m.rng.Float64() < m.opts.SpikeProb {
		m.counts.Spikes++
		s.Power *= m.opts.SpikeFactor
		return s, nil
	}
	return s, nil
}

// passThrough samples the inner meter and tracks the last clean reading.
// Callers hold m.mu.
func (m *Meter) passThrough() (meter.Sample, error) {
	s, err := m.inner.Sample()
	if err == nil {
		m.lastGood = s.Power
		m.haveGood = true
		m.seq = s.Seq
	}
	return s, err
}
