package shapley

import (
	"fmt"

	"vmpower/internal/vm"
)

// MobiusTransform computes the Harsanyi dividends of a tabulated game:
//
//	m(S) = Σ_{T ⊆ S} (−1)^(|S|−|T|) · v(T)
//
// m(S) is the surplus coalition S generates beyond what all its proper
// subsets already explain — the game's "interaction spectrum". The
// transform is computed in place with the standard subset-sum (zeta/
// Möbius) dynamic program in O(2^n · n).
//
// Identities the tests rely on: v(S) = Σ_{T⊆S} m(T) (inverse), the
// Shapley value Φ_i = Σ_{S∋i} m(S)/|S|, and the pairwise interaction
// index I(i,j) = Σ_{S⊇{i,j}} m(S)/(|S|−1).
func MobiusTransform(n int, table []float64) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(table) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	m := make([]float64, len(table))
	copy(m, table)
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for s := range m {
			if s&bit != 0 {
				m[s] -= m[s&^bit]
			}
		}
	}
	return m, nil
}

// InverseMobius reconstructs the worth table from Harsanyi dividends
// (the zeta transform), inverting MobiusTransform.
func InverseMobius(n int, dividends []float64) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(dividends) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: dividends have %d entries, want 2^%d", len(dividends), n)
	}
	v := make([]float64, len(dividends))
	copy(v, dividends)
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for s := range v {
			if s&bit != 0 {
				v[s] += v[s&^bit]
			}
		}
	}
	return v, nil
}

// ShapleyFromDividends computes the Shapley value through the Harsanyi
// identity Φ_i = Σ_{S ∋ i} m(S)/|S| — each coalition's dividend is split
// equally among its members. Used as an independent cross-check of
// ExactFromTable.
func ShapleyFromDividends(n int, dividends []float64) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(dividends) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: dividends have %d entries, want 2^%d", len(dividends), n)
	}
	phi := make([]float64, n)
	for s := vm.Coalition(1); int(s) < len(dividends); s++ {
		share := dividends[s] / float64(s.Size())
		for _, id := range s.Members() {
			phi[int(id)] += share
		}
	}
	return phi, nil
}
