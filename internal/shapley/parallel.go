package shapley

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vmpower/internal/vm"
)

// Parallelism semantics, shared by every parallel entry point in this
// package (ExactParallel, TabulateParallel, ExactFromTableParallel and
// MCOptions.Parallelism):
//
//	p <= 0 — use runtime.GOMAXPROCS(0) workers ("all cores")
//	p == 1 — evaluate on the calling goroutine, no workers spawned
//	p >= 2 — use exactly p workers
//
// Results are bit-for-bit identical for any parallelism value: the work
// is decomposed into shards whose layout depends only on the game (never
// on the worker count or GOMAXPROCS), each shard is reduced in a fixed
// internal order, and shard partials are merged in shard-index order.
// Workers only race for *which* shard to pull next, never for how a
// shard is computed or merged.
//
// Thread-safety contract: the parallel entry points call the WorthFunc
// concurrently from multiple goroutines. A WorthFunc passed to them must
// be safe for concurrent calls and pure (same coalition → same value for
// the duration of the call); the worth functions built by core over a
// trained vhc.Approximator satisfy both (the approximator serialises
// access with an RWMutex and is read-only during estimation). The serial
// entry points (Exact, Tabulate, ExactFromTable, MonteCarlo with
// Parallelism == 1) never call the WorthFunc from more than one
// goroutine.

// resolveParallelism maps the user-facing knob to a worker count.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// exactMaxShards bounds the shard count of the mask-space decomposition.
// 256 shards keep the per-shard partial vectors tiny while leaving
// plenty of shards per worker for load balancing at any realistic core
// count.
const exactMaxShards = 256

// exactShards returns the shard count for an n-player mask space. It
// depends only on n so the decomposition — and therefore the floating-
// point merge order — is identical at every parallelism.
func exactShards(n int) int {
	total := 1 << uint(n)
	if total < exactMaxShards {
		return total
	}
	return exactMaxShards
}

// runSharded executes fn(shard) for every shard in [0, shards) on up to
// parallelism workers. Shard assignment is dynamic (an atomic counter),
// which is safe because every shard's output slot is private to it.
func runSharded(shards, parallelism int, fn func(shard int)) {
	workers := resolveParallelism(parallelism)
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// TabulateParallel evaluates worth over all 2^n coalitions into a dense
// table using up to parallelism workers. Each table entry is written by
// exactly one shard, so the result is identical to Tabulate for a pure
// worth function. worth must be safe for concurrent calls when
// parallelism != 1 (see the package's thread-safety contract above).
func TabulateParallel(n int, worth WorthFunc, parallelism int) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if worth == nil {
		return nil, ErrNilWorth
	}
	m := metrics()
	start := m.startTimer()
	table := make([]float64, 1<<uint(n))
	shards := exactShards(n)
	per := len(table) / shards
	runSharded(shards, parallelism, func(shard int) {
		lo := shard * per
		hi := lo + per
		for s := lo; s < hi; s++ {
			table[s] = worth(vm.Coalition(s))
		}
	})
	m.observeTabulate(start)
	return table, nil
}

// ExactFromTableParallel computes the exact Shapley value from a
// pre-tabulated worth table with up to parallelism workers. The mask
// space is split into exactShards(n) contiguous shards; each shard
// accumulates a private phi partial in ascending mask order and the
// partials are merged in shard order, so the output is bit-for-bit
// identical at every parallelism (it can differ from the serial
// ExactFromTable in the last ulps, since the summation is associated
// differently).
func ExactFromTableParallel(n int, table []float64, parallelism int) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(table) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	w, err := Weights(n)
	if err != nil {
		return nil, err
	}
	m := metrics()
	start := m.startTimer()
	shards := exactShards(n)
	per := len(table) / shards
	partials := make([]float64, shards*n)
	runSharded(shards, parallelism, func(shard int) {
		phi := partials[shard*n : (shard+1)*n]
		lo := vm.Coalition(shard * per)
		hi := lo + vm.Coalition(per)
		for s := lo; s < hi; s++ {
			vs := table[s]
			size := s.Size()
			for i := 0; i < n; i++ {
				id := vm.ID(i)
				if s.Contains(id) {
					continue
				}
				phi[i] += w[size] * (table[s.With(id)] - vs)
			}
		}
	})
	phi := make([]float64, n)
	for shard := 0; shard < shards; shard++ {
		part := partials[shard*n : (shard+1)*n]
		for i := 0; i < n; i++ {
			phi[i] += part[i]
		}
	}
	m.observeAccumulate(start)
	return phi, nil
}

// ExactParallel computes the exact Shapley value (Eq. 4) with up to
// parallelism workers: a parallel tabulation of the 2^n worths followed
// by a parallel sharded accumulation. worth must be safe for concurrent
// calls when parallelism != 1. For a fixed game the result is identical
// at every parallelism value.
func ExactParallel(n int, worth WorthFunc, parallelism int) ([]float64, error) {
	table, err := TabulateParallel(n, worth, parallelism)
	if err != nil {
		return nil, err
	}
	return ExactFromTableParallel(n, table, parallelism)
}
