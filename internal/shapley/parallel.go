package shapley

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vmpower/internal/vm"
)

// Parallelism semantics, shared by every parallel entry point in this
// package (ExactParallel, TabulateParallel, ExactFromTableParallel and
// MCOptions.Parallelism):
//
//	p <= 0 — use runtime.GOMAXPROCS(0) workers ("all cores")
//	p == 1 — evaluate on the calling goroutine, no workers spawned
//	p >= 2 — use exactly p workers
//
// Results are bit-for-bit identical for any parallelism value: the work
// is decomposed into shards whose layout depends only on the game (never
// on the worker count or GOMAXPROCS), each shard is reduced in a fixed
// internal order, and shard partials are merged in shard-index order.
// Workers only race for *which* shard to pull next, never for how a
// shard is computed or merged.
//
// Thread-safety contract: the parallel entry points call the WorthFunc
// concurrently from multiple goroutines. A WorthFunc passed to them must
// be safe for concurrent calls and pure (same coalition → same value for
// the duration of the call); the worth functions built by core over a
// trained vhc.Approximator satisfy both (the approximator serialises
// access with an RWMutex and is read-only during estimation). The serial
// entry points (Exact, Tabulate, ExactFromTable, MonteCarlo with
// Parallelism == 1) never call the WorthFunc from more than one
// goroutine.

// resolveParallelism maps the user-facing knob to a worker count.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// exactMaxShards bounds the shard count of the mask-space decomposition.
// 256 shards keep the per-shard partial vectors tiny while leaving
// plenty of shards per worker for load balancing at any realistic core
// count.
const exactMaxShards = 256

// exactShards returns the shard count for an n-player mask space. It
// depends only on n so the decomposition — and therefore the floating-
// point merge order — is identical at every parallelism.
func exactShards(n int) int {
	total := 1 << uint(n)
	if total < exactMaxShards {
		return total
	}
	return exactMaxShards
}

// runSharded executes fn(shard) for every shard in [0, shards) on up to
// parallelism workers. Shard assignment is dynamic (an atomic counter),
// which is safe because every shard's output slot is private to it.
func runSharded(shards, parallelism int, fn func(shard int)) {
	workers := resolveParallelism(parallelism)
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// TabulateParallel evaluates worth over all 2^n coalitions into a dense
// table using up to parallelism workers. Each table entry is written by
// exactly one shard, so the result is identical to Tabulate for a pure
// worth function. worth must be safe for concurrent calls when
// parallelism != 1 (see the package's thread-safety contract above).
func TabulateParallel(n int, worth WorthFunc, parallelism int) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	table := make([]float64, 1<<uint(n))
	if err := TabulateParallelInto(table, n, worth, parallelism); err != nil {
		return nil, err
	}
	return table, nil
}

// TabulateParallelInto is TabulateParallel into a caller-owned table of
// length exactly 2^n.
func TabulateParallelInto(table []float64, n int, worth WorthFunc, parallelism int) error {
	if n < 1 || n > ExactMaxPlayers {
		return fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if worth == nil {
		return ErrNilWorth
	}
	if len(table) != 1<<uint(n) {
		return fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	m := metrics()
	start := m.startTimer()
	shards := exactShards(n)
	per := len(table) / shards
	if resolveParallelism(parallelism) > 1 && shards > 1 {
		runSharded(shards, parallelism, func(shard int) {
			lo := shard * per
			hi := lo + per
			for s := lo; s < hi; s++ {
				table[s] = worth(vm.Coalition(s))
			}
		})
	} else {
		// Same writes in the same per-entry order, without the closure
		// allocation the sharded dispatch would cost a serial caller.
		for s := range table {
			table[s] = worth(vm.Coalition(s))
		}
	}
	m.observeTabulate(start)
	return nil
}

// RetabulateParallelInto re-evaluates only the table entries whose
// coalition intersects dirty, leaving every other entry untouched — the
// incremental cross-tick form of TabulateParallelInto. When table was
// produced by a (Re)Tabulate call against a pure worth function and only
// the states of the VMs in dirty changed since, the result is bit-for-bit
// identical to a full retabulation: an entry not intersecting dirty
// depends only on unchanged member states, so its cached value is exactly
// what worth would return. Callers whose worth carries cross-coalition
// state (e.g. the measured grand-coalition override) must fold the
// affected masks into dirty or rewrite those entries themselves.
//
// dirty == 0 is a no-op; the shard layout matches TabulateParallelInto,
// so the result is identical at any parallelism.
func RetabulateParallelInto(table []float64, n int, worth WorthFunc, dirty vm.Coalition, parallelism int) error {
	if n < 1 || n > ExactMaxPlayers {
		return fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if worth == nil {
		return ErrNilWorth
	}
	if len(table) != 1<<uint(n) {
		return fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	if dirty == 0 {
		return nil
	}
	m := metrics()
	start := m.startTimer()
	shards := exactShards(n)
	per := len(table) / shards
	if resolveParallelism(parallelism) > 1 && shards > 1 {
		runSharded(shards, parallelism, func(shard int) {
			lo := shard * per
			hi := lo + per
			for s := lo; s < hi; s++ {
				if vm.Coalition(s)&dirty != 0 {
					table[s] = worth(vm.Coalition(s))
				}
			}
		})
	} else {
		for s := range table {
			if vm.Coalition(s)&dirty != 0 {
				table[s] = worth(vm.Coalition(s))
			}
		}
	}
	m.observeTabulate(start)
	return nil
}

// ExactFromTableParallel computes the exact Shapley value from a
// pre-tabulated worth table with up to parallelism workers. The mask
// space is split into exactShards(n) contiguous shards; each shard
// accumulates a private phi partial in ascending mask order and the
// partials are merged in shard order, so the output is bit-for-bit
// identical at every parallelism (it can differ from the serial
// ExactFromTable in the last ulps, since the summation is associated
// differently).
func ExactFromTableParallel(n int, table []float64, parallelism int) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	phi := make([]float64, n)
	scratch := make([]float64, ExactScratch(n))
	if err := ExactFromTableParallelInto(phi, scratch, n, table, parallelism); err != nil {
		return nil, err
	}
	return phi, nil
}

// ExactScratch returns the scratch length (shard partials) that
// ExactFromTableParallelInto needs for an n-player game.
func ExactScratch(n int) int {
	if n < 1 {
		return 0
	}
	return exactShards(n) * n
}

// ExactFromTableParallelInto is ExactFromTableParallel into caller-owned
// buffers: phi of length exactly n and scratch of at least ExactScratch(n)
// (both zeroed here, so they can be reused across solves as-is). The
// shard layout and merge order are those of ExactFromTableParallel, so
// the output is bit-for-bit identical to it at every parallelism.
func ExactFromTableParallelInto(phi, scratch []float64, n int, table []float64, parallelism int) error {
	if n < 1 || n > ExactMaxPlayers {
		return fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(table) != 1<<uint(n) {
		return fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	if len(phi) != n {
		return fmt.Errorf("shapley: phi has %d entries, want %d", len(phi), n)
	}
	if len(scratch) < ExactScratch(n) {
		return fmt.Errorf("shapley: scratch has %d entries, want >= %d", len(scratch), ExactScratch(n))
	}
	w, err := weightsShared(n)
	if err != nil {
		return err
	}
	m := metrics()
	start := m.startTimer()
	shards := exactShards(n)
	per := len(table) / shards
	partials := scratch[:shards*n]
	for i := range partials {
		partials[i] = 0
	}
	if resolveParallelism(parallelism) > 1 && shards > 1 {
		runSharded(shards, parallelism, func(shard int) {
			accumulateShard(partials, w, table, n, shard, per)
		})
	} else {
		// Identical shard decomposition executed on the calling
		// goroutine, so serial and parallel results share every bit.
		for shard := 0; shard < shards; shard++ {
			accumulateShard(partials, w, table, n, shard, per)
		}
	}
	for i := range phi {
		phi[i] = 0
	}
	for shard := 0; shard < shards; shard++ {
		part := partials[shard*n : (shard+1)*n]
		for i := 0; i < n; i++ {
			phi[i] += part[i]
		}
	}
	m.observeAccumulate(start)
	return nil
}

// accumulateShard folds one contiguous mask shard's weighted marginal
// contributions into its private partial vector, in ascending mask order.
func accumulateShard(partials, w, table []float64, n, shard, per int) {
	phi := partials[shard*n : (shard+1)*n]
	lo := vm.Coalition(shard * per)
	hi := lo + vm.Coalition(per)
	for s := lo; s < hi; s++ {
		vs := table[s]
		size := s.Size()
		for i := 0; i < n; i++ {
			id := vm.ID(i)
			if s.Contains(id) {
				continue
			}
			phi[i] += w[size] * (table[s.With(id)] - vs)
		}
	}
}

// ExactParallel computes the exact Shapley value (Eq. 4) with up to
// parallelism workers: a parallel tabulation of the 2^n worths followed
// by a parallel sharded accumulation. worth must be safe for concurrent
// calls when parallelism != 1. For a fixed game the result is identical
// at every parallelism value.
func ExactParallel(n int, worth WorthFunc, parallelism int) ([]float64, error) {
	table, err := TabulateParallel(n, worth, parallelism)
	if err != nil {
		return nil, err
	}
	return ExactFromTableParallel(n, table, parallelism)
}
