package shapley

import (
	"math"
	"math/rand"
	"testing"

	"vmpower/internal/vm"
)

// Property-based axiom tests: seeded random games up to n = 10 players,
// including mixed-sign and near-zero-sum worths, checked against the four
// Shapley axioms and across all three exact solvers (sequential, sharded
// parallel, and Möbius-dividend reconstruction).

const propTol = 1e-9

// randomTable draws a worth table for an n-player game with v(∅) = 0 and
// values in [-scale, scale] — mixed signs on purpose, since interference
// makes real coalition worths non-monotone (Sec. V-C).
func randomTable(rng *rand.Rand, n int, scale float64) []float64 {
	table := make([]float64, 1<<uint(n))
	for s := 1; s < len(table); s++ {
		table[s] = (2*rng.Float64() - 1) * scale
	}
	return table
}

func tableWorth(table []float64) WorthFunc {
	return func(c vm.Coalition) float64 { return table[c] }
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestAxiomsOnRandomGames cross-checks Exact, ExactParallel and the
// Möbius route on seeded random games and asserts Efficiency, Symmetry
// and Dummy via CheckAxioms.
func TestAxiomsOnRandomGames(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		scale := 100.0
		if trial%3 == 0 {
			// Near-zero-sum worths: tiny values stress the tolerance.
			scale = 1e-6
		}
		table := randomTable(rng, n, scale)
		worth := tableWorth(table)

		phi, err := Exact(n, worth)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		par, err := ExactParallel(n, worth, 4)
		if err != nil {
			t.Fatalf("trial %d (n=%d): parallel: %v", trial, n, err)
		}
		if d := maxAbsDiff(phi, par); d > propTol {
			t.Fatalf("trial %d (n=%d): parallel diverges from sequential by %g", trial, n, d)
		}
		div, err := MobiusTransform(n, table)
		if err != nil {
			t.Fatalf("trial %d (n=%d): mobius: %v", trial, n, err)
		}
		mob, err := ShapleyFromDividends(n, div)
		if err != nil {
			t.Fatalf("trial %d (n=%d): dividends: %v", trial, n, err)
		}
		if d := maxAbsDiff(phi, mob); d > propTol {
			t.Fatalf("trial %d (n=%d): mobius route diverges by %g", trial, n, d)
		}

		report, err := CheckAxioms(n, worth, phi, propTol)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if !report.Ok() {
			t.Fatalf("trial %d (n=%d): axioms violated: %v", trial, n, report)
		}
	}
}

// TestSymmetryOnConstructedPairs builds games where players 0 and 1 are
// symmetric by construction — v(S ∪ {0}) = v(S ∪ {1}) for every S
// excluding both — and asserts they receive equal shares.
func TestSymmetryOnConstructedPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(9)
		table := randomTable(rng, n, 50)
		for s := vm.Coalition(0); s < vm.Coalition(1<<uint(n)); s++ {
			if s&0b11 == 0 {
				table[s|0b10] = table[s|0b01]
			}
		}
		phi, err := Exact(n, tableWorth(table))
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if d := math.Abs(phi[0] - phi[1]); d > propTol {
			t.Fatalf("trial %d (n=%d): symmetric players split %g apart", trial, n, d)
		}
	}
}

// TestDummyOnConstructedGames builds games where player 0 contributes a
// constant marginal worth to every coalition; its Shapley share must be
// exactly that constant (the Dummy axiom, with v({0}) = c).
func TestDummyOnConstructedGames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(9)
		c := (2*rng.Float64() - 1) * 10
		table := randomTable(rng, n, 50)
		for s := vm.Coalition(0); s < vm.Coalition(1<<uint(n)); s++ {
			if s&1 == 0 {
				table[s|1] = table[s] + c
			}
		}
		phi, err := Exact(n, tableWorth(table))
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if d := math.Abs(phi[0] - c); d > propTol {
			t.Fatalf("trial %d (n=%d): dummy share %g, want %g", trial, n, phi[0], c)
		}
	}
}

// TestAdditivityOnRandomPairs checks Φ(v1 + v2) = Φ(v1) + Φ(v2) on seeded
// random pairs, including a near-zero-sum partner.
func TestAdditivityOnRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		t1 := randomTable(rng, n, 100)
		t2 := randomTable(rng, n, 1e-6)
		dev, err := CheckAdditivity(n, tableWorth(t1), tableWorth(t2), propTol)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v (dev %g)", trial, n, err, dev)
		}
	}
}
