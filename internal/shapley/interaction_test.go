package shapley

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

func TestInteractionAdditiveGameIsZero(t *testing.T) {
	// No interaction terms in an additive game.
	a := []float64{3, 1, 4, 1.5}
	worth := func(s vm.Coalition) float64 {
		var sum float64
		for _, id := range s.Members() {
			sum += a[int(id)]
		}
		return sum
	}
	idx, err := Interactions(len(a), worth)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		for j := range idx[i] {
			if math.Abs(idx[i][j]) > 1e-12 {
				t.Fatalf("I(%d,%d) = %g, want 0", i, j, idx[i][j])
			}
		}
	}
}

func TestInteractionPaperGame(t *testing.T) {
	// The Table III game: v({i}) = 13, v({0,1}) = 20. The pair's
	// interaction is Δ(∅) = 20 − 13 − 13 = −6: 6 W of HTT contention.
	idx, err := Interactions(2, paperGame)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idx[0][1]-(-6)) > 1e-12 {
		t.Fatalf("I(0,1) = %g, want -6", idx[0][1])
	}
	if idx[0][1] != idx[1][0] {
		t.Fatal("index must be symmetric")
	}
	if idx[0][0] != 0 || idx[1][1] != 0 {
		t.Fatal("diagonal must be zero")
	}
}

func TestInteractionGloveGame(t *testing.T) {
	// Player 0 (left glove) complements each right glove; the two right
	// gloves are substitutes.
	idx, err := Interactions(3, gloveGame)
	if err != nil {
		t.Fatal(err)
	}
	if idx[0][1] <= 0 || idx[0][2] <= 0 {
		t.Fatalf("complements: I(0,1)=%g I(0,2)=%g, want > 0", idx[0][1], idx[0][2])
	}
	if idx[1][2] >= 0 {
		t.Fatalf("substitutes: I(1,2)=%g, want < 0", idx[1][2])
	}
	if math.Abs(idx[0][1]-idx[0][2]) > 1e-12 {
		t.Fatal("symmetric gloves must have equal interactions")
	}
}

func TestInteractionErrors(t *testing.T) {
	if _, err := Interactions(1, paperGame); err == nil {
		t.Fatal("want n >= 2 error")
	}
	if _, err := InteractionIndex(2, []float64{0, 1, 2}); err == nil {
		t.Fatal("want table-length error")
	}
	if _, err := Interactions(3, nil); err == nil {
		t.Fatal("want nil-worth error")
	}
}

// Property: for any game, Σ_j≠i I(i,j) relates to the difference between
// player i's Shapley value and its average marginal... we assert the
// cheaper invariants: symmetry and zero diagonal, plus additivity of the
// index across summed games.
func TestInteractionLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		t1 := randomGameTable(rng, n)
		t2 := randomGameTable(rng, n)
		sum := make([]float64, len(t1))
		for i := range sum {
			sum[i] = t1[i] + t2[i]
		}
		i1, err := InteractionIndex(n, t1)
		if err != nil {
			return false
		}
		i2, err := InteractionIndex(n, t2)
		if err != nil {
			return false
		}
		is, err := InteractionIndex(n, sum)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if is[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if math.Abs(is[i][j]-(i1[i][j]+i2[i][j])) > 1e-7 {
					return false
				}
				if is[i][j] != is[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
