// Package shapley implements the cooperative-game machinery of the paper:
// the exact Shapley value over a coalition worth function (Eq. 4), the
// non-deterministic Shapley value over state-dependent worths (Eq. 7), and
// a permutation-sampling Monte-Carlo estimator for large player counts.
//
// Worth functions are defined over vm.Coalition bitmasks. By the paper's
// Remark 1 the worth of a coalition is the machine power with that
// coalition running, minus the machine's idle power, so v(∅) = 0 is the
// usual convention; the algorithms do not require it.
package shapley

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"vmpower/internal/vm"
)

// WorthFunc gives the worth v(S) of a coalition (aggregated power, W).
type WorthFunc func(vm.Coalition) float64

// StateWorthFunc gives the non-deterministic worth v(S, C) of a coalition
// under the member states in states (indexed by vm.ID; entries for
// non-members are ignored). This is the v(S, C) of Eq. 6.
type StateWorthFunc func(s vm.Coalition, states []vm.State) float64

// Errors returned by the estimators.
var (
	ErrPlayers  = errors.New("shapley: player count out of range")
	ErrNilWorth = errors.New("shapley: nil worth function")
)

// ExactMaxPlayers caps Exact's 2^n enumeration. Beyond this use MonteCarlo.
const ExactMaxPlayers = vm.MaxPlayers

// weightsMemo caches the weight vector per player count. An entry is
// computed once, published with an atomic store and never mutated again,
// so the solvers can share the cached slice directly with no lock on the
// per-solve path (previously every ExactFromTable recomputed the O(n²)
// vector). A racing first computation at the same n publishes identical
// contents, so last-write-wins is harmless.
var weightsMemo [ExactMaxPlayers + 1]atomic.Pointer[[]float64]

// weightsShared returns the memoized weight vector. Callers must treat
// the slice as read-only; exported paths hand out copies (see Weights).
func weightsShared(n int) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if p := weightsMemo[n].Load(); p != nil {
		return *p, nil
	}
	w := computeWeights(n)
	weightsMemo[n].Store(&w)
	return w, nil
}

// computeWeights builds the weight vector with the multiplicative
// recurrence. Each entry accumulates at most 2(n−1) rounding steps, so
// the relative error stays below ~2n·ε — about 4.4e-14 at n = 200 and
// 1.2e-13 at n = SymMaxPlayers, inside the solver's 1e-12 equivalence
// bound (pinned against a big.Rat oracle in the tests).
func computeWeights(n int) []float64 {
	w := make([]float64, n)
	for s := 0; s < n; s++ {
		// w[s] = s!(n-s-1)!/n!, computed multiplicatively to avoid
		// factorial overflow: 1/(n * C(n-1, s)).
		c := 1.0
		for i := 0; i < s; i++ {
			c = c * float64(n-1-i) / float64(i+1)
		}
		w[s] = 1 / (float64(n) * c)
	}
	return w
}

// weightsFor returns the read-only weight vector for any n the package's
// solvers accept: the fixed-size atomic memo serves the mask-based range
// (n <= ExactMaxPlayers, bit-stable across the process), larger games up
// to SymMaxPlayers — reachable only through the symmetry-collapsed
// solver — are computed on demand (O(n²) flops; SymScratch caches the
// vector across ticks).
func weightsFor(n int) ([]float64, error) {
	if n >= 1 && n <= ExactMaxPlayers {
		return weightsShared(n)
	}
	if n < 1 || n > SymMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	return computeWeights(n), nil
}

// Weights returns the Shapley coalition weights for an n-player game:
// Weights(n)[s] is the weight of a coalition of size s not containing the
// player, i.e. s!(n-s-1)!/n! — equivalently 1/((n-s)·C(n,s)) as written in
// the paper's Eq. 4. n may reach SymMaxPlayers (the symmetry-collapsed
// solver's range); vectors up to ExactMaxPlayers are memoized. The
// returned slice is a private copy the caller may mutate.
func Weights(n int) ([]float64, error) {
	w, err := weightsFor(n)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), w...), nil
}

// Exact computes the exact Shapley value Φ (Eq. 4) of an n-player game by
// full 2^n enumeration. The worth function is evaluated exactly once per
// coalition. Exact is O(2^n · n) time and O(2^n) space; the paper bounds
// practical n at 16 (one VM per logical core on a 16-core Xeon).
func Exact(n int, worth WorthFunc) ([]float64, error) {
	table, err := Tabulate(n, worth)
	if err != nil {
		return nil, err
	}
	return ExactFromTable(n, table)
}

// Tabulate evaluates worth over all 2^n coalitions into a dense table
// indexed by coalition bitmask.
func Tabulate(n int, worth WorthFunc) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	table := make([]float64, 1<<uint(n))
	if err := TabulateInto(table, n, worth); err != nil {
		return nil, err
	}
	return table, nil
}

// TabulateInto is Tabulate into a caller-owned table, which must have
// length exactly 2^n — the buffer-reuse form for per-tick callers that
// keep the table across solves.
func TabulateInto(table []float64, n int, worth WorthFunc) error {
	if n < 1 || n > ExactMaxPlayers {
		return fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if worth == nil {
		return ErrNilWorth
	}
	if len(table) != 1<<uint(n) {
		return fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	m := metrics()
	start := m.startTimer()
	for s := range table {
		table[s] = worth(vm.Coalition(s))
	}
	m.observeTabulate(start)
	return nil
}

// ExactFromTable computes the exact Shapley value from a pre-tabulated
// worth table of length 2^n (table[mask] = v(mask)).
func ExactFromTable(n int, table []float64) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	phi := make([]float64, n)
	if err := ExactFromTableInto(phi, n, table); err != nil {
		return nil, err
	}
	return phi, nil
}

// ExactFromTableInto is ExactFromTable into a caller-owned phi of length
// exactly n (zeroed here, so it can be reused across solves as-is).
func ExactFromTableInto(phi []float64, n int, table []float64) error {
	if n < 1 || n > ExactMaxPlayers {
		return fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(table) != 1<<uint(n) {
		return fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	if len(phi) != n {
		return fmt.Errorf("shapley: phi has %d entries, want %d", len(phi), n)
	}
	w, err := weightsShared(n)
	if err != nil {
		return err
	}
	m := metrics()
	start := m.startTimer()
	for i := range phi {
		phi[i] = 0
	}
	total := vm.Coalition(1) << uint(n)
	for s := vm.Coalition(0); s < total; s++ {
		vs := table[s]
		size := s.Size()
		for i := 0; i < n; i++ {
			id := vm.ID(i)
			if s.Contains(id) {
				continue
			}
			phi[i] += w[size] * (table[s.With(id)] - vs)
		}
	}
	m.observeAccumulate(start)
	return nil
}

// NonDeterministic computes the non-deterministic Shapley value (Eq. 7):
// the exact Shapley value of the game whose worth of coalition S is
// v(S, C|S), the state-dependent worth under the members' current states.
// states must have one entry per player (indexed by vm.ID).
func NonDeterministic(n int, states []vm.State, worth StateWorthFunc) ([]float64, error) {
	if worth == nil {
		return nil, ErrNilWorth
	}
	if len(states) != n {
		return nil, fmt.Errorf("shapley: %d states for %d players", len(states), n)
	}
	return Exact(n, func(s vm.Coalition) float64 {
		return worth(s, states)
	})
}

// Banzhaf computes the (raw) Banzhaf value from a tabulated game: each
// player's average marginal contribution over all 2^(n−1) coalitions,
// weighted uniformly rather than by coalition size. Unlike the Shapley
// value it is NOT efficient — the shares need not sum to v(N) — which is
// exactly why the paper's axiomatization rejects it for power accounting;
// it is provided as a comparison rule (use NormalizeEfficient to rescale).
func Banzhaf(n int, table []float64) ([]float64, error) {
	if n < 1 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if len(table) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	phi := make([]float64, n)
	total := vm.Coalition(1) << uint(n)
	for s := vm.Coalition(0); s < total; s++ {
		vs := table[s]
		for i := 0; i < n; i++ {
			id := vm.ID(i)
			if s.Contains(id) {
				continue
			}
			phi[i] += table[s.With(id)] - vs
		}
	}
	scale := 1 / float64(uint64(1)<<uint(n-1))
	for i := range phi {
		phi[i] *= scale
	}
	return phi, nil
}

// normalizeMinDenomFrac is the cancellation guard of NormalizeEfficient:
// proportional rescaling is abandoned when |Σφ| falls below this
// fraction of Σ|φ|.
const normalizeMinDenomFrac = 1e-9

// NormalizeEfficient rescales an allocation so it sums to target (e.g.
// the measured power), preserving proportions.
//
// Contract for degenerate inputs: an all-zero allocation is returned as
// zeros. Shares of mixed sign are legitimate (interference makes Φ_i < 0
// meaningful — see Interactions), but they can cancel to a net sum near
// zero while the individual shares stay large; dividing by that sum
// would scale the output toward ±∞. When |Σφ| < 1e-9·Σ|φ| the
// proportional rescale is therefore replaced by a uniform additive
// shift of (target − Σφ)/n: the result still sums to target and
// preserves the differences between shares instead of amplifying
// cancellation noise.
func NormalizeEfficient(phi []float64, target float64) []float64 {
	var sum, sumAbs float64
	for _, p := range phi {
		sum += p
		sumAbs += math.Abs(p)
	}
	out := make([]float64, len(phi))
	if sumAbs == 0 {
		return out
	}
	if math.Abs(sum) < normalizeMinDenomFrac*sumAbs {
		shift := (target - sum) / float64(len(phi))
		for i, p := range phi {
			out[i] = p + shift
		}
		return out
	}
	for i, p := range phi {
		out[i] = p * target / sum
	}
	return out
}

// MarginalContribution returns v(S ∪ {i}) − v(S), player i's marginal
// contribution to coalition S (i must not already be in S).
func MarginalContribution(worth WorthFunc, s vm.Coalition, i vm.ID) (float64, error) {
	if worth == nil {
		return 0, ErrNilWorth
	}
	if s.Contains(i) {
		return 0, fmt.Errorf("shapley: player %d already in coalition %s", i, s)
	}
	return worth(s.With(i)) - worth(s), nil
}
