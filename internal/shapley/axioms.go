package shapley

import (
	"fmt"
	"math"

	"vmpower/internal/vm"
)

// AxiomReport summarises how an allocation fares against the four Shapley
// axioms for a given game. Checks that need the full worth table
// (Symmetry, Dummy) enumerate 2^n coalitions.
type AxiomReport struct {
	// EfficiencyGap is Σ Φ_i − v(N); 0 for an efficient allocation.
	EfficiencyGap float64
	// SymmetryViolations lists pairs (i, j) that are symmetric in the game
	// but received allocations differing by more than the tolerance.
	SymmetryViolations [][2]vm.ID
	// DummyViolations lists dummy players with non-zero allocations.
	DummyViolations []vm.ID
}

// Ok reports whether no axiom was violated beyond tolerance.
func (r *AxiomReport) Ok() bool {
	return r.EfficiencyGap == 0 && len(r.SymmetryViolations) == 0 && len(r.DummyViolations) == 0
}

// String renders the report.
func (r *AxiomReport) String() string {
	return fmt.Sprintf("efficiency gap %.6g, %d symmetry violations, %d dummy violations",
		r.EfficiencyGap, len(r.SymmetryViolations), len(r.DummyViolations))
}

// CheckAxioms evaluates Efficiency, Symmetry and Dummy for the allocation
// phi against the game (n, worth) with the given tolerance. (Additivity is
// a property across two games; see CheckAdditivity.)
func CheckAxioms(n int, worth WorthFunc, phi []float64, tol float64) (*AxiomReport, error) {
	if len(phi) != n {
		return nil, fmt.Errorf("shapley: allocation has %d entries for %d players", len(phi), n)
	}
	table, err := Tabulate(n, worth)
	if err != nil {
		return nil, err
	}
	report := &AxiomReport{}

	var sum float64
	for _, p := range phi {
		sum += p
	}
	if gap := sum - table[vm.GrandCoalition(n)]; math.Abs(gap) > tol {
		report.EfficiencyGap = gap
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Symmetric(n, table, vm.ID(i), vm.ID(j), tol) && math.Abs(phi[i]-phi[j]) > tol {
				report.SymmetryViolations = append(report.SymmetryViolations, [2]vm.ID{vm.ID(i), vm.ID(j)})
			}
		}
	}
	for i := 0; i < n; i++ {
		if Dummy(n, table, vm.ID(i), tol) && math.Abs(phi[i]) > tol {
			report.DummyViolations = append(report.DummyViolations, vm.ID(i))
		}
	}
	return report, nil
}

// Symmetric reports whether players i and j are symmetric in the
// tabulated game: v(S ∪ {i}) = v(S ∪ {j}) for every S excluding both.
func Symmetric(n int, table []float64, i, j vm.ID, tol float64) bool {
	total := vm.Coalition(1) << uint(n)
	for s := vm.Coalition(0); s < total; s++ {
		if s.Contains(i) || s.Contains(j) {
			continue
		}
		if math.Abs(table[s.With(i)]-table[s.With(j)]) > tol {
			return false
		}
	}
	return true
}

// Dummy reports whether player i is a dummy in the tabulated game:
// v(S ∪ {i}) − v(S) = 0 for every S excluding i.
func Dummy(n int, table []float64, i vm.ID, tol float64) bool {
	total := vm.Coalition(1) << uint(n)
	for s := vm.Coalition(0); s < total; s++ {
		if s.Contains(i) {
			continue
		}
		if math.Abs(table[s.With(i)]-table[s]) > tol {
			return false
		}
	}
	return true
}

// CheckAdditivity verifies the Additivity axiom on a pair of games: the
// Shapley value of the sum game v(S) = v1(S) + v2(S) must equal the sum of
// the individual games' Shapley values (within tol). It returns the
// maximum per-player deviation.
func CheckAdditivity(n int, w1, w2 WorthFunc, tol float64) (float64, error) {
	p1, err := Exact(n, w1)
	if err != nil {
		return 0, err
	}
	p2, err := Exact(n, w2)
	if err != nil {
		return 0, err
	}
	ps, err := Exact(n, func(s vm.Coalition) float64 { return w1(s) + w2(s) })
	if err != nil {
		return 0, err
	}
	var maxDev float64
	for i := 0; i < n; i++ {
		if d := math.Abs(ps[i] - (p1[i] + p2[i])); d > maxDev {
			maxDev = d
		}
	}
	if maxDev > tol {
		return maxDev, fmt.Errorf("shapley: additivity violated by %g (tol %g)", maxDev, tol)
	}
	return maxDev, nil
}
