package shapley

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

// paperGame is the Table III / Fig. 6 two-VM game: singletons worth 13,
// the pair worth 20. The Shapley value is (10, 10).
func paperGame(s vm.Coalition) float64 {
	switch s.Size() {
	case 0:
		return 0
	case 1:
		return 13
	default:
		return 20
	}
}

// gloveGame is the classic 3-player glove game: player 0 holds a left
// glove, players 1 and 2 hold right gloves; a pair is worth 1.
// Shapley value: (2/3, 1/6, 1/6).
func gloveGame(s vm.Coalition) float64 {
	if s.Contains(0) && (s.Contains(1) || s.Contains(2)) {
		return 1
	}
	return 0
}

func TestWeights(t *testing.T) {
	w, err := Weights(3)
	if err != nil {
		t.Fatal(err)
	}
	// s!(n-s-1)!/n! for n=3: s=0 → 2/6, s=1 → 1/6, s=2 → 2/6.
	want := []float64{2.0 / 6, 1.0 / 6, 2.0 / 6}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("Weights(3)[%d] = %g, want %g", i, w[i], want[i])
		}
	}
	// Coalition-weighted identity: Σ_s C(n-1, s)·w[s] = 1.
	for n := 1; n <= 16; n++ {
		w, err := Weights(n)
		if err != nil {
			t.Fatal(err)
		}
		var sum, c float64
		c = 1
		for s := 0; s < n; s++ {
			sum += c * w[s]
			c = c * float64(n-1-s) / float64(s+1)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d: Σ C(n-1,s)·w[s] = %g, want 1", n, sum)
		}
	}
	if _, err := Weights(0); !errors.Is(err, ErrPlayers) {
		t.Fatalf("Weights(0): %v", err)
	}
	if _, err := Weights(SymMaxPlayers + 1); !errors.Is(err, ErrPlayers) {
		t.Fatalf("oversize: %v", err)
	}
	// Past the bitmask cap the symmetry-collapsed range still serves
	// weight vectors (needed for games up to SymMaxPlayers players).
	if w, err := Weights(ExactMaxPlayers + 1); err != nil || len(w) != ExactMaxPlayers+1 {
		t.Fatalf("Weights(%d) = (%d entries, %v)", ExactMaxPlayers+1, len(w), err)
	}
}

func TestExactPaperGame(t *testing.T) {
	phi, err := Exact(2, paperGame)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-10) > 1e-12 || math.Abs(phi[1]-10) > 1e-12 {
		t.Fatalf("paper game Shapley = %v, want (10, 10)", phi)
	}
}

func TestExactGloveGame(t *testing.T) {
	phi, err := Exact(3, gloveGame)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0 / 3, 1.0 / 6, 1.0 / 6}
	for i := range want {
		if math.Abs(phi[i]-want[i]) > 1e-12 {
			t.Fatalf("glove Shapley[%d] = %g, want %g", i, phi[i], want[i])
		}
	}
}

func TestExactAdditiveGame(t *testing.T) {
	// In an additive game v(S) = Σ_{i∈S} a_i the Shapley value is a_i.
	a := []float64{3, 1, 4, 1.5, 9}
	worth := func(s vm.Coalition) float64 {
		var sum float64
		for _, id := range s.Members() {
			sum += a[int(id)]
		}
		return sum
	}
	phi, err := Exact(len(a), worth)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(phi[i]-a[i]) > 1e-12 {
			t.Fatalf("additive Shapley[%d] = %g, want %g", i, phi[i], a[i])
		}
	}
}

func TestExactErrors(t *testing.T) {
	if _, err := Exact(0, paperGame); !errors.Is(err, ErrPlayers) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := Exact(2, nil); !errors.Is(err, ErrNilWorth) {
		t.Fatalf("nil worth: %v", err)
	}
	if _, err := ExactFromTable(2, []float64{0, 1, 2}); err == nil {
		t.Fatal("want table-length error")
	}
}

func TestTabulate(t *testing.T) {
	table, err := Tabulate(2, paperGame)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 13, 13, 20}
	for i := range want {
		if table[i] != want[i] {
			t.Fatalf("table[%d] = %g, want %g", i, table[i], want[i])
		}
	}
}

func TestNonDeterministic(t *testing.T) {
	// Worth = sum of members' CPU states ×10: the non-deterministic
	// Shapley value under states (0.2, 0.8) must be (2, 8).
	states := []vm.State{{vm.CPU: 0.2}, {vm.CPU: 0.8}}
	worth := func(s vm.Coalition, st []vm.State) float64 {
		var sum float64
		for _, id := range s.Members() {
			sum += st[int(id)][vm.CPU] * 10
		}
		return sum
	}
	phi, err := NonDeterministic(2, states, worth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-2) > 1e-12 || math.Abs(phi[1]-8) > 1e-12 {
		t.Fatalf("NonDeterministic = %v", phi)
	}
	if _, err := NonDeterministic(2, states[:1], worth); err == nil {
		t.Fatal("want state-count error")
	}
	if _, err := NonDeterministic(2, states, nil); !errors.Is(err, ErrNilWorth) {
		t.Fatalf("nil worth: %v", err)
	}
}

func TestMarginalContribution(t *testing.T) {
	mc, err := MarginalContribution(paperGame, vm.EmptyCoalition, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc != 13 {
		t.Fatalf("marginal to empty = %g", mc)
	}
	mc, err = MarginalContribution(paperGame, vm.CoalitionOf(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc != 7 {
		t.Fatalf("marginal to {1} = %g", mc)
	}
	if _, err := MarginalContribution(paperGame, vm.CoalitionOf(0), 0); err == nil {
		t.Fatal("want already-member error")
	}
	if _, err := MarginalContribution(nil, vm.EmptyCoalition, 0); !errors.Is(err, ErrNilWorth) {
		t.Fatalf("nil worth: %v", err)
	}
}

func TestBanzhafPaperGame(t *testing.T) {
	table, err := Tabulate(2, paperGame)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := Banzhaf(2, table)
	if err != nil {
		t.Fatal(err)
	}
	// Each player's marginals are 13 (to ∅) and 7 (to the other): the
	// Banzhaf value averages them to 10 — for n=2 it coincides with
	// Shapley and happens to be efficient here.
	if math.Abs(phi[0]-10) > 1e-12 || math.Abs(phi[1]-10) > 1e-12 {
		t.Fatalf("Banzhaf = %v", phi)
	}
}

func TestBanzhafNotEfficientInGeneral(t *testing.T) {
	// The 3-player glove game: Banzhaf shares sum to 1.25 ≠ v(N) = 1.
	table, err := Tabulate(3, gloveGame)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := Banzhaf(3, table)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range phi {
		sum += p
	}
	if math.Abs(sum-1) < 1e-9 {
		t.Fatalf("glove Banzhaf unexpectedly efficient: %v", phi)
	}
	norm := NormalizeEfficient(phi, table[len(table)-1])
	var nsum float64
	for _, p := range norm {
		nsum += p
	}
	if math.Abs(nsum-1) > 1e-12 {
		t.Fatalf("normalized sum = %g", nsum)
	}
}

func TestBanzhafAdditiveGame(t *testing.T) {
	a := []float64{3, 1, 4}
	worth := func(s vm.Coalition) float64 {
		var sum float64
		for _, id := range s.Members() {
			sum += a[int(id)]
		}
		return sum
	}
	table, err := Tabulate(3, worth)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := Banzhaf(3, table)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(phi[i]-a[i]) > 1e-12 {
			t.Fatalf("additive Banzhaf[%d] = %g, want %g", i, phi[i], a[i])
		}
	}
}

func TestBanzhafErrors(t *testing.T) {
	if _, err := Banzhaf(0, nil); !errors.Is(err, ErrPlayers) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := Banzhaf(2, []float64{1}); err == nil {
		t.Fatal("want table-length error")
	}
}

func TestNormalizeEfficientZero(t *testing.T) {
	out := NormalizeEfficient([]float64{0, 0}, 10)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("zero allocation must stay zero: %v", out)
	}
}

func TestNormalizeEfficientMixedSignCancellation(t *testing.T) {
	// Interference makes negative shares legitimate; when they cancel
	// the net sum to (near) zero, proportional rescaling would divide by
	// ~0 and blow the shares up to ±∞-scale values. The guard must fall
	// back to a uniform shift that restores efficiency at bounded
	// magnitude.
	for _, phi := range [][]float64{
		{25, -25},             // exact cancellation
		{25, -25 + 1e-12},     // cancellation below the guard threshold
		{10, -30, 20 + 1e-13}, // three-way near-cancellation
	} {
		out := NormalizeEfficient(phi, 12)
		var sum, maxAbs float64
		for i, p := range out {
			sum += p
			if a := math.Abs(p); a > maxAbs {
				maxAbs = a
			}
			// The shift preserves pairwise differences.
			if i > 0 {
				wantDiff := phi[i] - phi[i-1]
				if math.Abs((out[i]-out[i-1])-wantDiff) > 1e-9 {
					t.Fatalf("phi=%v: share differences not preserved: %v", phi, out)
				}
			}
		}
		if math.Abs(sum-12) > 1e-9 {
			t.Fatalf("phi=%v: normalized sum %g, want 12", phi, sum)
		}
		if maxAbs > 100 {
			t.Fatalf("phi=%v: cancellation amplified to %v", phi, out)
		}
	}
	// Far from cancellation the proportional path must be untouched.
	out := NormalizeEfficient([]float64{30, -10}, 10)
	if math.Abs(out[0]-15) > 1e-12 || math.Abs(out[1]+5) > 1e-12 {
		t.Fatalf("proportional path disturbed: %v", out)
	}
}

// Property: Efficiency — Σ Φ_i = v(N) − v(∅) + v(∅) = v(N) for random
// monotone games.
func TestExactEfficiencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		table := randomGameTable(rng, n)
		phi, err := ExactFromTable(n, table)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range phi {
			sum += p
		}
		grand := table[len(table)-1]
		return math.Abs(sum-grand) <= 1e-9*(1+math.Abs(grand))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dummy — a player whose marginal contribution is always zero
// receives exactly zero.
func TestExactDummyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		dummy := vm.ID(rng.Intn(n))
		base := randomGameTable(rng, n-1)
		// Build an n-player table where `dummy` never changes the worth:
		// v(S) = base(S \ dummy re-indexed).
		table := make([]float64, 1<<uint(n))
		for s := vm.Coalition(0); s < vm.Coalition(1)<<uint(n); s++ {
			var compact vm.Coalition
			j := 0
			for i := 0; i < n; i++ {
				if vm.ID(i) == dummy {
					continue
				}
				if s.Contains(vm.ID(i)) {
					compact = compact.With(vm.ID(j))
				}
				j++
			}
			table[s] = base[compact]
		}
		phi, err := ExactFromTable(n, table)
		if err != nil {
			return false
		}
		return math.Abs(phi[int(dummy)]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Symmetry — swapping two symmetric players preserves shares.
func TestExactSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		// Build a symmetric game in players 0 and 1: worth depends only
		// on |S ∩ {0,1}| and S ∩ rest.
		table := make([]float64, 1<<uint(n))
		values := make(map[[2]uint32]float64)
		for s := vm.Coalition(0); s < vm.Coalition(1)<<uint(n); s++ {
			pairCount := uint32(0)
			if s.Contains(0) {
				pairCount++
			}
			if s.Contains(1) {
				pairCount++
			}
			rest := uint32(s) >> 2
			key := [2]uint32{pairCount, rest}
			v, ok := values[key]
			if !ok {
				v = rng.Float64() * 100
				values[key] = v
			}
			table[s] = v
		}
		phi, err := ExactFromTable(n, table)
		if err != nil {
			return false
		}
		return math.Abs(phi[0]-phi[1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomGameTable builds a random worth table with v(∅) = 0.
func randomGameTable(rng *rand.Rand, n int) []float64 {
	table := make([]float64, 1<<uint(n))
	for i := 1; i < len(table); i++ {
		table[i] = rng.Float64() * 100
	}
	return table
}
