package shapley

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"vmpower/internal/vm"
)

// maskCounts returns the count vector of a coalition mask under a
// player→class assignment.
func maskCounts(mask vm.Coalition, class []int, k int) []int {
	t := make([]int, k)
	for i := range class {
		if mask.Contains(vm.ID(i)) {
			t[class[i]]++
		}
	}
	return t
}

func TestSymVectorCount(t *testing.T) {
	tests := []struct {
		counts []int
		want   int
	}{
		{[]int{1}, 2},
		{[]int{3}, 4},
		{[]int{1, 1, 1}, 8},
		{[]int{2, 3}, 12},
		{[]int{10, 10, 10}, 1331},
	}
	for _, tt := range tests {
		got, err := SymVectorCount(tt.counts)
		if err != nil {
			t.Fatalf("SymVectorCount(%v): %v", tt.counts, err)
		}
		if got != tt.want {
			t.Fatalf("SymVectorCount(%v) = %d, want %d", tt.counts, got, tt.want)
		}
	}
	if _, err := SymVectorCount(nil); !errors.Is(err, ErrPlayers) {
		t.Fatalf("empty counts: %v", err)
	}
	if _, err := SymVectorCount([]int{3, 0}); !errors.Is(err, ErrPlayers) {
		t.Fatalf("zero class: %v", err)
	}
	if _, err := SymVectorCount([]int{SymMaxPlayers + 1}); !errors.Is(err, ErrPlayers) {
		t.Fatalf("oversize n: %v", err)
	}
	// V cap: 27 classes of 3 give 4^27 >> SymMaxVectors but n = 81 is fine.
	big := make([]int, 27)
	for i := range big {
		big[i] = 3
	}
	if _, err := SymVectorCount(big); !errors.Is(err, ErrPlayers) {
		t.Fatalf("oversize V: %v", err)
	}
}

// Property: the enumerator emits exactly ∏(c_j+1) vectors, no duplicates,
// every index round-trips through SymVectorAt/SymIndexOf, the empty
// vector is first and the grand vector last.
func TestSymEnumeratorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		counts := make([]int, k)
		for j := range counts {
			counts[j] = 1 + rng.Intn(4)
		}
		v, err := SymVectorCount(counts)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		for _, c := range counts {
			want *= c + 1
		}
		if v != want {
			t.Fatalf("counts %v: V = %d, want %d", counts, v, want)
		}

		var sc SymScratch
		if _, err := sc.Prepare(counts); err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool, v)
		order := make([][]int, 0, v)
		if err := SymTabulateInto(make([]float64, v), &sc, func(tv []int) float64 {
			key := ""
			for _, x := range tv {
				key += string(rune('0' + x))
			}
			if seen[key] {
				t.Fatalf("counts %v: duplicate vector %v", counts, tv)
			}
			seen[key] = true
			order = append(order, append([]int(nil), tv...))
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		if len(order) != v {
			t.Fatalf("counts %v: enumerated %d vectors, want %d", counts, len(order), v)
		}
		for j := range counts {
			if order[0][j] != 0 {
				t.Fatalf("counts %v: first vector %v not empty", counts, order[0])
			}
			if order[v-1][j] != counts[j] {
				t.Fatalf("counts %v: last vector %v not grand", counts, order[v-1])
			}
		}
		// Round trip every index both ways.
		buf := make([]int, k)
		for idx := 0; idx < v; idx++ {
			if err := SymVectorAt(counts, idx, buf); err != nil {
				t.Fatal(err)
			}
			for j := range buf {
				if buf[j] != order[idx][j] {
					t.Fatalf("counts %v idx %d: decode %v, enumerated %v", counts, idx, buf, order[idx])
				}
			}
			back, err := SymIndexOf(counts, buf)
			if err != nil {
				t.Fatal(err)
			}
			if back != idx {
				t.Fatalf("counts %v: idx %d -> %v -> %d", counts, idx, buf, back)
			}
		}
	}
}

func TestSymIndexErrors(t *testing.T) {
	counts := []int{2, 3}
	if err := SymVectorAt(counts, -1, make([]int, 2)); err == nil {
		t.Fatal("negative index must error")
	}
	if err := SymVectorAt(counts, 12, make([]int, 2)); err == nil {
		t.Fatal("index >= V must error")
	}
	if err := SymVectorAt(counts, 0, make([]int, 3)); err == nil {
		t.Fatal("wrong t length must error")
	}
	if _, err := SymIndexOf(counts, []int{3, 0}); err == nil {
		t.Fatal("t above class size must error")
	}
	if _, err := SymIndexOf(counts, []int{-1, 0}); err == nil {
		t.Fatal("negative t must error")
	}
}

// Property: on random games with duplicated classes, the collapsed solver
// agrees with the legacy 2^n solver to 1e-12 for every n <= 16 — the
// ISSUE's equivalence bound. The worth is a random function of the count
// vector (so it is genuinely symmetric) with magnitudes around physical
// watt scales.
func TestSymmetricExactMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= 16; n++ {
		for trial := 0; trial < 12; trial++ {
			// Random partition of n players into classes.
			var counts []int
			left := n
			for left > 0 {
				c := 1 + rng.Intn(left)
				counts = append(counts, c)
				left -= c
			}
			k := len(counts)
			class := make([]int, 0, n)
			for j, c := range counts {
				for x := 0; x < c; x++ {
					class = append(class, j)
				}
			}
			// Shuffle the assignment: symmetry must not depend on players of
			// a class being contiguous in ID order.
			rng.Shuffle(n, func(a, b int) { class[a], class[b] = class[b], class[a] })

			v, err := SymVectorCount(counts)
			if err != nil {
				t.Fatal(err)
			}
			worthByVec := make([]float64, v)
			scale := 0.0
			for i := range worthByVec {
				worthByVec[i] = 400 * rng.Float64()
				scale = math.Max(scale, worthByVec[i])
			}
			// Both solvers round; the bound is relative to the game's worth
			// scale (each accumulates ~2^n additions of w-weighted terms of
			// that magnitude).
			tol := 1e-12 * math.Max(1, scale)
			symPhi, err := SymmetricExact(counts, func(tv []int) float64 {
				idx, err := SymIndexOf(counts, tv)
				if err != nil {
					t.Fatal(err)
				}
				return worthByVec[idx]
			})
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := Exact(n, func(s vm.Coalition) float64 {
				idx, err := SymIndexOf(counts, maskCounts(s, class, k))
				if err != nil {
					t.Fatal(err)
				}
				return worthByVec[idx]
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				want := legacy[i]
				got := symPhi[class[i]]
				if math.Abs(got-want) > tol {
					t.Fatalf("n=%d counts=%v player %d (class %d): sym %.17g, legacy %.17g",
						n, counts, i, class[i], got, want)
				}
			}
			// Efficiency: Σ_j c_j·φ_j = v(grand) − v(empty).
			var sum float64
			for j, c := range counts {
				sum += float64(c) * symPhi[j]
			}
			want := worthByVec[v-1] - worthByVec[0]
			if math.Abs(sum-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("n=%d counts=%v: Σ c_j·φ_j = %g, want %g", n, counts, sum, want)
			}
		}
	}
}

// SymRetabulateInto with a dirty subset must land on the same table as a
// full tabulation of the new worth, touching only vectors with a dirty
// digit > 0.
func TestSymRetabulate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		counts := make([]int, k)
		for j := range counts {
			counts[j] = 1 + rng.Intn(4)
		}
		var sc SymScratch
		v, err := sc.Prepare(counts)
		if err != nil {
			t.Fatal(err)
		}
		oldW := make([]float64, v)
		newW := make([]float64, v)
		for i := range oldW {
			oldW[i] = rng.Float64()
			newW[i] = rng.Float64()
		}
		dirty := make([]bool, k)
		anyDirty := false
		for j := range dirty {
			dirty[j] = rng.Intn(2) == 0
			anyDirty = anyDirty || dirty[j]
		}
		// A clean-class vector's worth may not change between tabulations
		// (its coalition composition is identical), so make newW agree with
		// oldW on vectors whose dirty digits are all zero.
		tv := make([]int, k)
		wantEval := 0
		for i := range newW {
			if err := SymVectorAt(counts, i, tv); err != nil {
				t.Fatal(err)
			}
			hit := false
			for j := range tv {
				if dirty[j] && tv[j] > 0 {
					hit = true
				}
			}
			if hit {
				wantEval++
			} else {
				newW[i] = oldW[i]
			}
		}

		table := make([]float64, v)
		if err := SymTabulateInto(table, &sc, func(tv []int) float64 {
			i, _ := SymIndexOf(counts, tv)
			return oldW[i]
		}); err != nil {
			t.Fatal(err)
		}
		evaluated, err := SymRetabulateInto(table, &sc, func(tv []int) float64 {
			i, _ := SymIndexOf(counts, tv)
			return newW[i]
		}, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if evaluated != wantEval {
			t.Fatalf("counts=%v dirty=%v: evaluated %d vectors, want %d", counts, dirty, evaluated, wantEval)
		}
		for i := range table {
			if table[i] != newW[i] {
				t.Fatalf("counts=%v dirty=%v: table[%d] = %g, want %g", counts, dirty, i, table[i], newW[i])
			}
		}
		_ = anyDirty
	}
}

// With every class a singleton the collapsed game IS the mask game:
// counts (1,1,...,1) must reproduce Exact bit-for-bit modulo index
// permutation (mixed-radix with radix 2 equals the bitmask ordering).
func TestSymmetricSingletonClassesMatchMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 1; n <= 10; n++ {
		counts := make([]int, n)
		class := make([]int, n)
		for i := range counts {
			counts[i] = 1
			class[i] = i
		}
		table := make([]float64, 1<<uint(n))
		for i := range table {
			table[i] = rng.Float64() * 300
		}
		symPhi, err := SymmetricExact(counts, func(tv []int) float64 {
			var mask vm.Coalition
			for j, x := range tv {
				if x > 0 {
					mask = mask.With(vm.ID(j))
				}
			}
			return table[mask]
		})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(symPhi[i]-legacy[i]) > 1e-12 {
				t.Fatalf("n=%d player %d: sym %.17g, legacy %.17g", n, i, symPhi[i], legacy[i])
			}
		}
	}
}

func TestSymScratchReuse(t *testing.T) {
	var sc SymScratch
	v1, err := sc.Prepare([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 12 || sc.NumVectors() != 12 || sc.NumPlayers() != 5 {
		t.Fatalf("Prepare(2,3): V=%d n=%d", sc.NumVectors(), sc.NumPlayers())
	}
	// Same counts: cheap no-op, same dimensions.
	if v, err := sc.Prepare([]int{2, 3}); err != nil || v != 12 {
		t.Fatalf("re-Prepare: V=%d err=%v", v, err)
	}
	// Different counts: resized.
	if v, err := sc.Prepare([]int{4}); err != nil || v != 5 || sc.NumPlayers() != 4 {
		t.Fatalf("Prepare(4): V=%d n=%d err=%v", v, sc.NumPlayers(), err)
	}
	// Invalid counts leave an error.
	if _, err := sc.Prepare([]int{0}); !errors.Is(err, ErrPlayers) {
		t.Fatalf("Prepare(0): %v", err)
	}
	// Unprepared scratch is rejected by the pipeline stages.
	var fresh SymScratch
	if err := SymTabulateInto(nil, &fresh, func([]int) float64 { return 0 }); !errors.Is(err, ErrPlayers) {
		t.Fatalf("unprepared tabulate: %v", err)
	}
	if err := SymExactFromTableInto(nil, &fresh, nil); !errors.Is(err, ErrPlayers) {
		t.Fatalf("unprepared solve: %v", err)
	}
	if _, err := SymRetabulateInto(nil, &fresh, func([]int) float64 { return 0 }, nil); !errors.Is(err, ErrPlayers) {
		t.Fatalf("unprepared retabulate: %v", err)
	}
}

// A wide game the mask solver cannot touch: 200 players in 3 classes with
// a closed-form worth (weighted coverage: v depends only on which classes
// are present). The Shapley value of such a game is computable from the
// collapsed formula directly with big.Rat, giving an independent oracle.
func TestSymmetricExactWideOracle(t *testing.T) {
	counts := []int{190, 6, 4}
	// v(t) = Σ_j present(t_j) · a_j: pure class-presence worth.
	a := []float64{120, 55, 30}
	phi, err := SymmetricExact(counts, func(tv []int) float64 {
		var v float64
		for j, x := range tv {
			if x > 0 {
				v += a[j]
			}
		}
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: for presence games the value splits per class independently —
	// player i of class j gets a_j · E[1/(position of first class-j player)]
	// ... computed exactly with big.Rat from the collapsed sum instead.
	oracle := symPresenceOracle(counts, a)
	for j := range counts {
		rel := math.Abs(phi[j]-oracle[j]) / math.Max(1e-300, math.Abs(oracle[j]))
		if rel > 1e-12 {
			t.Fatalf("class %d: phi %.17g, oracle %.17g (rel %.3g)", j, phi[j], oracle[j], rel)
		}
	}
	var sum float64
	for j, c := range counts {
		sum += float64(c) * phi[j]
	}
	want := a[0] + a[1] + a[2]
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("efficiency: Σ c_j·φ_j = %.17g, want %g", sum, want)
	}
}

// symPresenceOracle computes the exact Shapley value of the class-presence
// game in big.Rat arithmetic via the collapsed formula: for a player of
// class j, the marginal contribution is a_j iff t_j = 0 (plus nothing from
// other classes, whose presence the player cannot change), so
//
//	φ_j = a_j · Σ_{t: t_j=0} ∏_l C'(c_l, t_l) · w(Σt)
//
// with C' = C(c_j−1, ·) for the own class. Σ over all t with t_j = 0.
func symPresenceOracle(counts []int, a []float64) []float64 {
	n := 0
	for _, c := range counts {
		n += c
	}
	// Exact weights w[s] = s!(n−s−1)!/n!.
	w := make([]*big.Rat, n)
	fact := make([]*big.Int, n+1)
	fact[0] = big.NewInt(1)
	for i := 1; i <= n; i++ {
		fact[i] = new(big.Int).Mul(fact[i-1], big.NewInt(int64(i)))
	}
	for s := 0; s < n; s++ {
		num := new(big.Int).Mul(fact[s], fact[n-s-1])
		w[s] = new(big.Rat).SetFrac(num, fact[n])
	}
	binom := func(c, x int) *big.Int {
		if x < 0 || x > c {
			return big.NewInt(0)
		}
		r := new(big.Int).Mul(fact[c-x], fact[x])
		return new(big.Int).Div(fact[c], r)
	}
	out := make([]float64, len(counts))
	for j := range counts {
		// g[s] = Σ over t with t_j = 0, Σt = s of ∏ C'(c_l, t_l): the
		// coefficient generating function, built class by class.
		g := []*big.Rat{new(big.Rat).SetInt64(1)}
		for l, cl := range counts {
			limit := cl
			own := false
			if l == j {
				limit = 0 // t_j = 0 forced; C(c_j−1, 0) = 1
				own = true
			}
			_ = own
			ng := make([]*big.Rat, len(g)+limit)
			for i := range ng {
				ng[i] = new(big.Rat)
			}
			for s, gs := range g {
				if gs.Sign() == 0 {
					continue
				}
				for x := 0; x <= limit; x++ {
					term := new(big.Rat).SetInt(binom(cl, x))
					term.Mul(term, gs)
					ng[s+x].Add(ng[s+x], term)
				}
			}
			g = ng
		}
		total := new(big.Rat)
		for s, gs := range g {
			if s >= n {
				break
			}
			term := new(big.Rat).Mul(gs, w[s])
			total.Add(total, term)
		}
		f, _ := total.Float64()
		out[j] = a[j] * f
	}
	return out
}

// Satellite bugfix check: the multiplicative weight recurrence against a
// big.Rat factorial oracle up to n = 200 (and a few beyond), pinning the
// relative error under 1e-12 for every entry.
func TestWeightsBigRatOracle(t *testing.T) {
	ns := []int{1, 2, 3, 5, 8, 13, 16, 20, 24, 32, 64, 100, 128, 200, 256, SymMaxPlayers}
	for _, n := range ns {
		w, err := Weights(n)
		if err != nil {
			t.Fatalf("Weights(%d): %v", n, err)
		}
		fact := make([]*big.Int, n+1)
		fact[0] = big.NewInt(1)
		for i := 1; i <= n; i++ {
			fact[i] = new(big.Int).Mul(fact[i-1], big.NewInt(int64(i)))
		}
		for s := 0; s < n; s++ {
			num := new(big.Int).Mul(fact[s], fact[n-s-1])
			exact := new(big.Rat).SetFrac(num, fact[n])
			want, _ := exact.Float64()
			rel := math.Abs(w[s]-want) / want
			if rel > 1e-12 {
				t.Fatalf("Weights(%d)[%d] = %.17g, oracle %.17g (rel err %.3g)", n, s, w[s], want, rel)
			}
		}
	}
}

// Fuzz the index round-trip: any (counts, idx) pair that validates must
// decode to a vector that encodes back to idx.
func FuzzSymVectorRoundTrip(f *testing.F) {
	f.Add(3, 2, 1, 5)
	f.Add(1, 1, 1, 0)
	f.Add(10, 4, 2, 100)
	f.Fuzz(func(t *testing.T, c0, c1, c2, idx int) {
		counts := []int{c0, c1, c2}
		v, err := SymVectorCount(counts)
		if err != nil {
			t.Skip()
		}
		if idx < 0 || idx >= v {
			t.Skip()
		}
		tv := make([]int, 3)
		if err := SymVectorAt(counts, idx, tv); err != nil {
			t.Fatalf("decode valid idx %d: %v", idx, err)
		}
		for j, x := range tv {
			if x < 0 || x > counts[j] {
				t.Fatalf("decoded digit %d out of range: %v", j, tv)
			}
		}
		back, err := SymIndexOf(counts, tv)
		if err != nil {
			t.Fatal(err)
		}
		if back != idx {
			t.Fatalf("round trip %d -> %v -> %d", idx, tv, back)
		}
	})
}
