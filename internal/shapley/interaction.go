package shapley

import (
	"fmt"

	"vmpower/internal/vm"
)

// InteractionIndex computes the pairwise Shapley interaction index
// (Owen 1972 / Grabisch–Roubens) from a tabulated game:
//
//	I(i,j) = Σ_{S ⊆ N\{i,j}} |S|!(n−|S|−2)!/(n−1)! · Δ_ij(S)
//	Δ_ij(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S)
//
// I(i,j) < 0 means players i and j are substitutes — together they
// produce less than their separate contributions suggest. In the power
// game that is exactly hardware interference: two VMs sharing a
// hyperthreaded core or the machine's power-delivery budget draw less
// power jointly than independently, so a strongly negative I(i,j) marks
// the pairs whose co-location causes contention. I(i,j) > 0 marks
// complements. The index is symmetric; the diagonal is left zero.
//
// The table must hold v over all 2^n coalitions (see Tabulate); the
// computation is O(2^n · n²).
func InteractionIndex(n int, table []float64) ([][]float64, error) {
	if n < 2 || n > ExactMaxPlayers {
		return nil, fmt.Errorf("%w: n=%d (need >= 2 for pairs)", ErrPlayers, n)
	}
	if len(table) != 1<<uint(n) {
		return nil, fmt.Errorf("shapley: table has %d entries, want 2^%d", len(table), n)
	}
	// w[s] = s!(n-s-2)!/(n-1)! for coalition size s, via the same
	// overflow-free form as Weights: 1/((n-1)·C(n-2, s)).
	w := make([]float64, n-1)
	for s := 0; s < n-1; s++ {
		c := 1.0
		for i := 0; i < s; i++ {
			c = c * float64(n-2-i) / float64(i+1)
		}
		w[s] = 1 / (float64(n-1) * c)
	}

	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	total := vm.Coalition(1) << uint(n)
	for s := vm.Coalition(0); s < total; s++ {
		size := s.Size()
		vs := table[s]
		for i := 0; i < n; i++ {
			if s.Contains(vm.ID(i)) {
				continue
			}
			si := s.With(vm.ID(i))
			vsi := table[si]
			for j := i + 1; j < n; j++ {
				if s.Contains(vm.ID(j)) {
					continue
				}
				delta := table[si.With(vm.ID(j))] - vsi - table[s.With(vm.ID(j))] + vs
				out[i][j] += w[size] * delta
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out[i][j] = out[j][i]
		}
	}
	return out, nil
}

// Interactions computes the index directly from a worth function.
func Interactions(n int, worth WorthFunc) ([][]float64, error) {
	table, err := Tabulate(n, worth)
	if err != nil {
		return nil, err
	}
	return InteractionIndex(n, table)
}
