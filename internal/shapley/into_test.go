package shapley

import (
	"math/rand"
	"reflect"
	"testing"

	"vmpower/internal/vm"
)

// weightsDirect is the pre-memoization computation, kept verbatim as the
// oracle for the cache.
func weightsDirect(n int) []float64 {
	w := make([]float64, n)
	for s := 0; s < n; s++ {
		c := 1.0
		for i := 0; i < s; i++ {
			c = c * float64(n-1-i) / float64(i+1)
		}
		w[s] = 1 / (float64(n) * c)
	}
	return w
}

// TestWeightsMemoMatchesDirect pins the memoized Weights against the
// direct computation for n=1..16, twice per n so both the cold and the
// cached path are exercised.
func TestWeightsMemoMatchesDirect(t *testing.T) {
	for n := 1; n <= 16; n++ {
		want := weightsDirect(n)
		for pass := 0; pass < 2; pass++ {
			got, err := Weights(n)
			if err != nil {
				t.Fatalf("Weights(%d): %v", n, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Weights(%d) pass %d = %v, want %v", n, pass, got, want)
			}
		}
	}
}

// TestWeightsReturnsPrivateCopy guards the memo against caller mutation.
func TestWeightsReturnsPrivateCopy(t *testing.T) {
	a, err := Weights(5)
	if err != nil {
		t.Fatal(err)
	}
	a[0] = -1
	b, err := Weights(5)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] == -1 {
		t.Fatal("mutating a Weights result leaked into the memo")
	}
}

func randomWorth(n int, seed int64) WorthFunc {
	rng := rand.New(rand.NewSource(seed))
	table := make([]float64, 1<<uint(n))
	for i := range table {
		table[i] = rng.Float64() * 100
	}
	return func(s vm.Coalition) float64 { return table[s] }
}

// TestIntoVariantsMatchAllocating pins every *Into entry point against
// its allocating counterpart, bit for bit, across parallelism settings.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		worth := randomWorth(n, int64(n))
		want, err := Tabulate(n, worth)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, 1<<uint(n))
		if err := TabulateInto(got, n, worth); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: TabulateInto != Tabulate", n)
		}
		for _, par := range []int{1, 3} {
			// Poison the buffers to prove the Into calls fully overwrite.
			for i := range got {
				got[i] = -999
			}
			if err := TabulateParallelInto(got, n, worth, par); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d par=%d: TabulateParallelInto != Tabulate", n, par)
			}

			wantPhi, err := ExactFromTableParallel(n, want, par)
			if err != nil {
				t.Fatal(err)
			}
			phi := make([]float64, n)
			scratch := make([]float64, ExactScratch(n))
			for i := range phi {
				phi[i] = -999
			}
			for i := range scratch {
				scratch[i] = -999
			}
			if err := ExactFromTableParallelInto(phi, scratch, n, want, par); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(phi, wantPhi) {
				t.Fatalf("n=%d par=%d: ExactFromTableParallelInto = %v, want %v", n, par, phi, wantPhi)
			}
		}
		wantPhi, err := ExactFromTable(n, want)
		if err != nil {
			t.Fatal(err)
		}
		phi := make([]float64, n)
		for i := range phi {
			phi[i] = -999
		}
		if err := ExactFromTableInto(phi, n, want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(phi, wantPhi) {
			t.Fatalf("n=%d: ExactFromTableInto = %v, want %v", n, phi, wantPhi)
		}
	}
}

// TestRetabulateDirtySubset is the incremental-tabulation recurrence: a
// worth whose value depends on per-player states, of which only a dirty
// subset changes between ticks. Retabulating just the dirty-intersecting
// masks must reproduce a full tabulation of the new states bit for bit.
func TestRetabulateDirtySubset(t *testing.T) {
	const n = 7
	states := make([]float64, n)
	for i := range states {
		states[i] = float64(i + 1)
	}
	worth := func(s vm.Coalition) float64 {
		var sum float64
		for _, id := range s.Members() {
			sum += states[id] * states[id]
		}
		return sum
	}
	table := make([]float64, 1<<n)
	if err := TabulateInto(table, n, worth); err != nil {
		t.Fatal(err)
	}
	// Tick: players 2 and 5 change state.
	dirty := vm.CoalitionOf(2, 5)
	states[2] = 17.5
	states[5] = 0.25
	for _, par := range []int{1, 4} {
		got := append([]float64(nil), table...)
		if err := RetabulateParallelInto(got, n, worth, dirty, par); err != nil {
			t.Fatal(err)
		}
		want, err := Tabulate(n, worth)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("par=%d: incremental retabulation != full tabulation", par)
		}
	}
	// dirty == 0 must leave the table untouched.
	got := append([]float64(nil), table...)
	if err := RetabulateParallelInto(got, n, worth, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, table) {
		t.Fatal("dirty=0 retabulation modified the table")
	}
}

// TestIntoZeroAlloc pins the buffer-reuse contract: a serial tabulate +
// retabulate + accumulate cycle through the Into APIs allocates nothing.
func TestIntoZeroAlloc(t *testing.T) {
	const n = 6
	worth := randomWorth(n, 99)
	table := make([]float64, 1<<n)
	phi := make([]float64, n)
	scratch := make([]float64, ExactScratch(n))
	dirty := vm.CoalitionOf(1, 3)
	if _, err := weightsShared(n); err != nil { // warm the memo
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := TabulateParallelInto(table, n, worth, 1); err != nil {
			t.Fatal(err)
		}
		if err := RetabulateParallelInto(table, n, worth, dirty, 1); err != nil {
			t.Fatal(err)
		}
		if err := ExactFromTableParallelInto(phi, scratch, n, table, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Into cycle allocates %v per run, want 0", allocs)
	}
}

// TestIntoValidation covers the buffer-shape error paths.
func TestIntoValidation(t *testing.T) {
	worth := func(vm.Coalition) float64 { return 0 }
	if err := TabulateInto(make([]float64, 3), 2, worth); err == nil {
		t.Fatal("short table accepted")
	}
	if err := TabulateParallelInto(make([]float64, 4), 2, nil, 1); err == nil {
		t.Fatal("nil worth accepted")
	}
	if err := RetabulateParallelInto(make([]float64, 3), 2, worth, 1, 1); err == nil {
		t.Fatal("short table accepted by retabulate")
	}
	if err := ExactFromTableInto(make([]float64, 1), 2, make([]float64, 4)); err == nil {
		t.Fatal("short phi accepted")
	}
	if err := ExactFromTableParallelInto(make([]float64, 2), make([]float64, 1), 2, make([]float64, 4), 1); err == nil {
		t.Fatal("short scratch accepted")
	}
	if err := ExactFromTableParallelInto(make([]float64, 2), make([]float64, 16), 2, make([]float64, 3), 1); err == nil {
		t.Fatal("short table accepted by accumulate")
	}
}
