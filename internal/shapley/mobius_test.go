package shapley

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmpower/internal/vm"
)

func TestMobiusPaperGame(t *testing.T) {
	table, err := Tabulate(2, paperGame)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MobiusTransform(2, table)
	if err != nil {
		t.Fatal(err)
	}
	// Dividends: singletons carry 13 each; the pair's dividend is the
	// interaction 20 − 13 − 13 = −6 (the HTT contention).
	want := []float64{0, 13, 13, -6}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Fatalf("m[%d] = %g, want %g", i, m[i], want[i])
		}
	}
}

func TestMobiusErrors(t *testing.T) {
	if _, err := MobiusTransform(0, nil); err == nil {
		t.Fatal("want player-count error")
	}
	if _, err := MobiusTransform(2, []float64{1}); err == nil {
		t.Fatal("want table-length error")
	}
	if _, err := InverseMobius(2, []float64{1}); err == nil {
		t.Fatal("want dividends-length error")
	}
	if _, err := ShapleyFromDividends(2, []float64{1}); err == nil {
		t.Fatal("want dividends-length error")
	}
}

// Property: InverseMobius ∘ MobiusTransform is the identity.
func TestMobiusRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		table := randomGameTable(rng, n)
		m, err := MobiusTransform(n, table)
		if err != nil {
			return false
		}
		back, err := InverseMobius(n, m)
		if err != nil {
			return false
		}
		for i := range table {
			if math.Abs(back[i]-table[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Harsanyi identity — Shapley via equal dividend splitting
// matches the direct Eq. 4 computation on random games.
func TestShapleyDividendIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		table := randomGameTable(rng, n)
		direct, err := ExactFromTable(n, table)
		if err != nil {
			return false
		}
		m, err := MobiusTransform(n, table)
		if err != nil {
			return false
		}
		viaDividends, err := ShapleyFromDividends(n, m)
		if err != nil {
			return false
		}
		for i := range direct {
			if math.Abs(direct[i]-viaDividends[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interaction index matches its dividend form
// I(i,j) = Σ_{S ⊇ {i,j}} m(S)/(|S|−1).
func TestInteractionDividendIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		table := randomGameTable(rng, n)
		idx, err := InteractionIndex(n, table)
		if err != nil {
			return false
		}
		m, err := MobiusTransform(n, table)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var want float64
				for s := vm.Coalition(0); int(s) < len(m); s++ {
					if s.Contains(vm.ID(i)) && s.Contains(vm.ID(j)) {
						want += m[s] / float64(s.Size()-1)
					}
				}
				if math.Abs(idx[i][j]-want) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
