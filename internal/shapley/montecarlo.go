package shapley

import (
	"fmt"
	"math"
	"math/rand"

	"vmpower/internal/vm"
)

// MCOptions configures the Monte-Carlo permutation-sampling estimator.
type MCOptions struct {
	// Permutations is the number of random player orderings to sample.
	// If TargetStdErr > 0 it is treated as the maximum; otherwise it is
	// exact. Defaults to DefaultPermutations when zero.
	Permutations int

	// TargetStdErr, when positive, stops sampling early once the largest
	// per-player standard error of the estimate falls below it (checked
	// in batches of 32 permutations, after a minimum of 64).
	TargetStdErr float64

	// Antithetic pairs every sampled permutation with its reverse. The
	// reverse of a uniform random permutation is also uniform, and for
	// games with monotone position effects (early joiners pay the
	// machine's wake-up costs, late joiners ride contention discounts)
	// the paired marginals are negatively correlated, cutting variance
	// at no extra worth-function cost. Each pair counts as two
	// permutations toward the budget.
	Antithetic bool

	// Seed seeds the internal PRNG. The estimator never touches the
	// global math/rand state.
	Seed int64
}

// DefaultPermutations is the sample count used when MCOptions.Permutations
// is zero. 200 permutations give ~2–3% error on the paper-scale games.
const DefaultPermutations = 200

// MCResult carries a Monte-Carlo Shapley estimate with uncertainty.
type MCResult struct {
	// Phi is the estimated Shapley value per player.
	Phi []float64
	// StdErr is the per-player standard error of Phi.
	StdErr []float64
	// Permutations is the number of orderings actually sampled.
	Permutations int
}

// MonteCarlo estimates the Shapley value by sampling random permutations
// of the players and averaging each player's marginal contribution in the
// sampled order. Each sampled permutation's contributions sum to exactly
// v(N) − v(∅), so the estimate satisfies Efficiency exactly (not just in
// expectation); Symmetry and Dummy hold in expectation.
//
// The worth function is called n+1 times per permutation.
func MonteCarlo(n int, worth WorthFunc, opts MCOptions) (*MCResult, error) {
	if n < 1 || n > vm.MaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if worth == nil {
		return nil, ErrNilWorth
	}
	perms := opts.Permutations
	if perms <= 0 {
		perms = DefaultPermutations
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	sum := make([]float64, n)
	sumSq := make([]float64, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	walk := func(ord []int) {
		prefix := vm.EmptyCoalition
		prev := worth(prefix)
		for _, p := range ord {
			prefix = prefix.With(vm.ID(p))
			cur := worth(prefix)
			d := cur - prev
			sum[p] += d
			sumSq[p] += d * d
			prev = cur
		}
	}

	const (
		batch   = 32
		minDone = 64
	)
	done := 0
	reversed := make([]int, n)
	for done < perms {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		walk(order)
		done++
		if opts.Antithetic && done < perms {
			for i, p := range order {
				reversed[n-1-i] = p
			}
			walk(reversed)
			done++
		}
		if opts.TargetStdErr > 0 && done >= minDone && done%batch == 0 {
			if maxStdErr(sum, sumSq, done) <= opts.TargetStdErr {
				break
			}
		}
	}

	res := &MCResult{
		Phi:          make([]float64, n),
		StdErr:       make([]float64, n),
		Permutations: done,
	}
	for i := 0; i < n; i++ {
		mean := sum[i] / float64(done)
		res.Phi[i] = mean
		res.StdErr[i] = stdErr(sum[i], sumSq[i], done)
	}
	return res, nil
}

func stdErr(sum, sumSq float64, n int) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	mean := sum / float64(n)
	variance := (sumSq - float64(n)*mean*mean) / float64(n-1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance / float64(n))
}

func maxStdErr(sum, sumSq []float64, n int) float64 {
	var m float64
	for i := range sum {
		if se := stdErr(sum[i], sumSq[i], n); se > m {
			m = se
		}
	}
	return m
}
