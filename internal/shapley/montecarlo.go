package shapley

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"vmpower/internal/vm"
)

// MCOptions configures the Monte-Carlo permutation-sampling estimator.
type MCOptions struct {
	// Permutations is the number of random player orderings to sample.
	// If TargetStdErr > 0 it is treated as the maximum; otherwise it is
	// exact. Defaults to DefaultPermutations when zero. With Antithetic
	// set the budget is rounded up to a whole number of pairs.
	Permutations int

	// TargetStdErr, when positive, stops sampling early once the largest
	// per-player standard error of the estimate falls below it (checked
	// in batches of 32 sampling units, after a minimum of 64; a unit is
	// one permutation, or one pair when Antithetic is set).
	TargetStdErr float64

	// Antithetic pairs every sampled permutation with its reverse. The
	// reverse of a uniform random permutation is also uniform, and for
	// games with monotone position effects (early joiners pay the
	// machine's wake-up costs, late joiners ride contention discounts)
	// the paired marginals are negatively correlated, cutting variance
	// at no extra worth-function cost. Each pair counts as two
	// permutations toward the budget, and the reported StdErr is
	// computed over pair averages — the two halves of a pair are
	// deliberately dependent, so treating them as independent samples
	// would misstate the error (usually understating it, firing
	// TargetStdErr too soon).
	Antithetic bool

	// Seed seeds the sampling. The estimator never touches the global
	// math/rand state. Every sampled unit draws from its own PRNG stream
	// derived from Seed and the unit index, so a fixed Seed reproduces
	// the exact estimate regardless of Parallelism or GOMAXPROCS.
	Seed int64

	// Parallelism is the worker count used to evaluate sampled
	// permutations: <= 0 uses all cores (GOMAXPROCS), 1 runs on the
	// calling goroutine, >= 2 uses that many workers. The result is
	// bit-for-bit identical at every setting; see the package
	// thread-safety contract in parallel.go for what the WorthFunc must
	// guarantee when Parallelism != 1.
	Parallelism int

	// NoWorthCache disables the memoizing worth cache. By default the
	// estimator caches worths of very small and near-grand coalitions,
	// which repeat across permutation prefixes (there are only C(n, k)
	// coalitions of size k, so prefixes of size 0–3 and n−3–n recur
	// constantly while mid-size prefixes almost never do). Caching
	// assumes the WorthFunc is pure; set NoWorthCache for worth
	// functions with observable side effects.
	NoWorthCache bool
}

// DefaultPermutations is the sample count used when MCOptions.Permutations
// is zero. 200 permutations give ~2–3% error on the paper-scale games.
const DefaultPermutations = 200

// MCResult carries a Monte-Carlo Shapley estimate with uncertainty.
type MCResult struct {
	// Phi is the estimated Shapley value per player.
	Phi []float64
	// StdErr is the per-player standard error of Phi, computed over
	// independent sampling units (permutations, or antithetic pairs).
	StdErr []float64
	// Permutations is the number of orderings actually sampled.
	Permutations int
}

// cacheSizeMargin is the coalition-size band the worth cache covers:
// coalitions with |S| <= margin or |S| >= n − margin are cached. The
// band keeps the cache bounded by Σ_{k<=margin} 2·C(n, k) entries.
const cacheSizeMargin = 3

// worthCache memoizes a pure WorthFunc over the coalition-size band
// where permutation prefixes actually collide. It is safe for
// concurrent use; two workers racing to fill the same entry both
// compute the same value (purity), so last-write-wins is benign.
type worthCache struct {
	worth WorthFunc
	n     int
	mu    sync.RWMutex
	m     map[vm.Coalition]float64

	// hits/misses count lookups in the cacheable size band; MonteCarlo
	// folds them into the package metrics after the solve so the hot
	// path touches only these local atomics.
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newWorthCache(n int, worth WorthFunc) *worthCache {
	return &worthCache{worth: worth, n: n, m: make(map[vm.Coalition]float64)}
}

func (c *worthCache) eval(s vm.Coalition) float64 {
	size := s.Size()
	if size > cacheSizeMargin && size < c.n-cacheSizeMargin {
		return c.worth(s)
	}
	c.mu.RLock()
	v, ok := c.m[s]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	v = c.worth(s)
	c.mu.Lock()
	c.m[s] = v
	c.mu.Unlock()
	return v
}

// unitSeed derives the PRNG seed of sampling unit k from the user seed
// (splitmix64 finalizer): statistically independent streams that depend
// only on (seed, k), never on worker identity.
func unitSeed(seed int64, k int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(k)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// MonteCarlo estimates the Shapley value by sampling random permutations
// of the players and averaging each player's marginal contribution in the
// sampled order. Each sampled permutation's contributions sum to exactly
// v(N) − v(∅), so the estimate satisfies Efficiency exactly (not just in
// expectation); Symmetry and Dummy hold in expectation.
//
// The worth function is called n+1 times per permutation (fewer with the
// memoizing cache, see MCOptions.NoWorthCache). Sampling units are
// evaluated by up to MCOptions.Parallelism workers and reduced in unit
// order, so the estimate is a pure function of (game, MCOptions.Seed).
func MonteCarlo(n int, worth WorthFunc, opts MCOptions) (*MCResult, error) {
	if n < 1 || n > vm.MaxPlayers {
		return nil, fmt.Errorf("%w: n=%d", ErrPlayers, n)
	}
	if worth == nil {
		return nil, ErrNilWorth
	}
	perms := opts.Permutations
	if perms <= 0 {
		perms = DefaultPermutations
	}
	// A sampling unit is one permutation, or one antithetic pair.
	walksPerUnit := 1
	totalUnits := perms
	if opts.Antithetic {
		walksPerUnit = 2
		totalUnits = (perms + 1) / 2
	}

	met := metrics()
	start := met.startTimer()
	eval := worth
	var cache *worthCache
	if !opts.NoWorthCache && n > 1 {
		cache = newWorthCache(n, worth)
		eval = cache.eval
	}

	walk := func(ord []int, out []float64, scale float64) {
		prefix := vm.EmptyCoalition
		prev := eval(prefix)
		for _, p := range ord {
			prefix = prefix.With(vm.ID(p))
			cur := eval(prefix)
			out[p] += scale * (cur - prev)
			prev = cur
		}
	}

	unit := func(k int, out []float64, order, reversed []int) {
		rng := rand.New(rand.NewSource(unitSeed(opts.Seed, k)))
		for i := range order {
			order[i] = i
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		if !opts.Antithetic {
			walk(order, out, 1)
			return
		}
		for i, p := range order {
			reversed[n-1-i] = p
		}
		walk(order, out, 0.5)
		walk(reversed, out, 0.5)
	}

	// evalRange evaluates units [lo, hi) into rows (row k−lo) using up to
	// Parallelism workers; rows are merged by the caller in unit order.
	evalRange := func(lo, hi int, rows []float64) {
		workers := resolveParallelism(opts.Parallelism)
		if workers > hi-lo {
			workers = hi - lo
		}
		if workers <= 1 {
			order := make([]int, n)
			reversed := make([]int, n)
			for k := lo; k < hi; k++ {
				unit(k, rows[(k-lo)*n:(k-lo+1)*n], order, reversed)
			}
			return
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				order := make([]int, n)
				reversed := make([]int, n)
				// Static strided assignment: unit k belongs to worker
				// k mod workers. Which goroutine computes a unit does
				// not matter — unit results depend only on (seed, k).
				for k := lo + w; k < hi; k += workers {
					unit(k, rows[(k-lo)*n:(k-lo+1)*n], order, reversed)
				}
			}(w)
		}
		wg.Wait()
	}

	const (
		batch   = 32 // units between convergence checks
		minDone = 64 // units before the first check
	)
	sum := make([]float64, n)
	sumSq := make([]float64, n)
	done := 0 // units reduced so far
	for done < totalUnits {
		next := totalUnits
		if opts.TargetStdErr > 0 {
			// Stop-check boundaries are fixed unit counts (64, 96, 128,
			// …), so early stopping is as deterministic as the sums.
			if done < minDone {
				next = minDone
			} else {
				next = done + batch
			}
			if next > totalUnits {
				next = totalUnits
			}
		}
		rows := make([]float64, (next-done)*n)
		evalRange(done, next, rows)
		for k := done; k < next; k++ {
			row := rows[(k-done)*n : (k-done+1)*n]
			for i := 0; i < n; i++ {
				d := row[i]
				sum[i] += d
				sumSq[i] += d * d
			}
		}
		done = next
		if opts.TargetStdErr > 0 && done >= minDone && done < totalUnits {
			if maxStdErr(sum, sumSq, done) <= opts.TargetStdErr {
				break
			}
		}
	}

	res := &MCResult{
		Phi:          make([]float64, n),
		StdErr:       make([]float64, n),
		Permutations: done * walksPerUnit,
	}
	for i := 0; i < n; i++ {
		res.Phi[i] = sum[i] / float64(done)
		res.StdErr[i] = stdErr(sum[i], sumSq[i], done)
	}
	met.observeMC(start)
	met.noteMC(res, done < totalUnits, cache)
	return res, nil
}

// stdErr returns the standard error of a mean from unit-level sums: n
// independent sampling units with value sum/n and raw second moment
// sumSq.
func stdErr(sum, sumSq float64, n int) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	mean := sum / float64(n)
	variance := (sumSq - float64(n)*mean*mean) / float64(n-1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance / float64(n))
}

func maxStdErr(sum, sumSq []float64, n int) float64 {
	var m float64
	for i := range sum {
		if se := stdErr(sum[i], sumSq[i], n); se > m {
			m = se
		}
	}
	return m
}
