package shapley

import (
	"math"
	"sync/atomic"
	"time"

	"vmpower/internal/obs"
)

// Metrics is the package's self-reporting surface. All handles are
// nil-safe obs metrics, so a zero Metrics (or no Instrument call at
// all) costs one atomic pointer load per solver entry and nothing else
// — the hot loops are untouched.
type Metrics struct {
	// SolveTabulate/SolveAccumulate/SolveMC time the three solver
	// phases: 2^n worth tabulation, weighted accumulation, and the
	// Monte-Carlo permutation walk (vmpower_solve_duration_seconds).
	SolveTabulate   *obs.Histogram
	SolveAccumulate *obs.Histogram
	SolveMC         *obs.Histogram
	// MCPermutations counts permutations actually walked
	// (vmpower_mc_permutations_total).
	MCPermutations *obs.Counter
	// MCStdErr is the max per-player standard error of the most recent
	// Monte-Carlo solve at stop (vmpower_mc_stderr_watts) — the
	// sampling-error signal Statistical Cost Sharing says must be
	// surfaced, not buried in the result struct.
	MCStdErr *obs.Gauge
	// MCEarlyStops counts solves that hit TargetStdErr before the
	// permutation budget (vmpower_mc_early_stops_total).
	MCEarlyStops *obs.Counter
	// WorthCacheHits/WorthCacheMisses count memoized worth lookups in
	// the cacheable coalition-size band (vmpower_worth_cache_*_total).
	WorthCacheHits   *obs.Counter
	WorthCacheMisses *obs.Counter
}

// pkgMetrics is swapped atomically so Instrument may run while solvers
// are in flight (a daemon wires it once at startup; tests re-wire it).
var pkgMetrics atomic.Pointer[Metrics]

// Instrument registers the package's standard metrics on reg and
// activates them for every subsequent solve. Instrument(nil) returns
// the package to the uninstrumented (zero-overhead) state.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		pkgMetrics.Store(nil)
		return
	}
	pkgMetrics.Store(&Metrics{
		SolveTabulate: reg.Histogram("vmpower_solve_duration_seconds",
			"Shapley solver phase latency", nil, obs.L("method", "tabulate")),
		SolveAccumulate: reg.Histogram("vmpower_solve_duration_seconds",
			"Shapley solver phase latency", nil, obs.L("method", "accumulate")),
		SolveMC: reg.Histogram("vmpower_solve_duration_seconds",
			"Shapley solver phase latency", nil, obs.L("method", "montecarlo")),
		MCPermutations: reg.Counter("vmpower_mc_permutations_total",
			"permutations walked by the Monte-Carlo estimator"),
		MCStdErr: reg.Gauge("vmpower_mc_stderr_watts",
			"max per-player standard error of the last Monte-Carlo solve"),
		MCEarlyStops: reg.Counter("vmpower_mc_early_stops_total",
			"Monte-Carlo solves stopped early by TargetStdErr"),
		WorthCacheHits: reg.Counter("vmpower_worth_cache_hits_total",
			"memoized worth-cache hits"),
		WorthCacheMisses: reg.Counter("vmpower_worth_cache_misses_total",
			"memoized worth-cache misses"),
	})
}

// metrics returns the active instrumentation, nil when uninstrumented.
func metrics() *Metrics { return pkgMetrics.Load() }

// The observe* helpers select the histogram inside the nil check so an
// uninstrumented call site never dereferences the nil *Metrics.

func (m *Metrics) observeTabulate(start time.Time) {
	if m == nil {
		return
	}
	m.SolveTabulate.Observe(time.Since(start).Seconds())
}

func (m *Metrics) observeAccumulate(start time.Time) {
	if m == nil {
		return
	}
	m.SolveAccumulate.Observe(time.Since(start).Seconds())
}

func (m *Metrics) observeMC(start time.Time) {
	if m == nil {
		return
	}
	m.SolveMC.Observe(time.Since(start).Seconds())
}

// startTimer returns the wall clock only when m is live, so the
// uninstrumented path skips the time.Now syscall entirely.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// noteMC publishes one Monte-Carlo solve's convergence telemetry.
func (m *Metrics) noteMC(res *MCResult, earlyStop bool, cache *worthCache) {
	if m == nil {
		return
	}
	m.MCPermutations.Add(uint64(res.Permutations))
	maxSE := 0.0
	for _, se := range res.StdErr {
		if se > maxSE && !math.IsInf(se, 1) {
			maxSE = se
		}
	}
	m.MCStdErr.Set(maxSE)
	if earlyStop {
		m.MCEarlyStops.Inc()
	}
	if cache != nil {
		m.WorthCacheHits.Add(cache.hits.Load())
		m.WorthCacheMisses.Add(cache.misses.Load())
	}
}
