package shapley

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vmpower/internal/vm"
)

func TestMonteCarloPaperGame(t *testing.T) {
	res, err := MonteCarlo(2, paperGame, MCOptions{Permutations: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both orderings yield (13, 7) or (7, 13), so the estimate converges
	// to (10, 10) and the efficiency sum is exact.
	if math.Abs(res.Phi[0]+res.Phi[1]-20) > 1e-9 {
		t.Fatalf("efficiency violated: %v", res.Phi)
	}
	if math.Abs(res.Phi[0]-10) > 1 {
		t.Fatalf("Phi[0] = %g, want ~10", res.Phi[0])
	}
	if res.Permutations != 500 {
		t.Fatalf("Permutations = %d", res.Permutations)
	}
}

func TestMonteCarloEfficiencyExact(t *testing.T) {
	// Every sampled permutation telescopes to v(N) − v(∅), so the MC
	// estimate is exactly efficient for any game and sample count.
	rng := rand.New(rand.NewSource(42))
	n := 7
	table := randomGameTable(rng, n)
	worth := func(s vm.Coalition) float64 { return table[s] }
	res, err := MonteCarlo(n, worth, MCOptions{Permutations: 17, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Phi {
		sum += p
	}
	grand := table[len(table)-1]
	if math.Abs(sum-grand) > 1e-9*(1+grand) {
		t.Fatalf("MC efficiency: sum %g vs grand %g", sum, grand)
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	table := randomGameTable(rng, n)
	worth := func(s vm.Coalition) float64 { return table[s] }
	exact, err := ExactFromTable(n, table)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(n, worth, MCOptions{Permutations: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(res.Phi[i]-exact[i]) > 2.5 { // values are O(50)
			t.Fatalf("Phi[%d] = %g, exact %g", i, res.Phi[i], exact[i])
		}
		// The estimate should be within ~5 standard errors of exact.
		if d := math.Abs(res.Phi[i] - exact[i]); d > 5*res.StdErr[i]+1e-9 {
			t.Fatalf("Phi[%d] off by %g with stderr %g", i, d, res.StdErr[i])
		}
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	res1, err := MonteCarlo(5, paperGame5, MCOptions{Permutations: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := MonteCarlo(5, paperGame5, MCOptions{Permutations: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Phi {
		if res1.Phi[i] != res2.Phi[i] {
			t.Fatal("same seed must give identical estimates")
		}
	}
	res3, err := MonteCarlo(5, paperGame5, MCOptions{Permutations: 50, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range res1.Phi {
		if res1.Phi[i] != res3.Phi[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different estimates")
	}
}

// paperGame5 is a 5-player game with mild interactions for MC tests.
func paperGame5(s vm.Coalition) float64 {
	size := float64(s.Size())
	return 10*size - 0.8*size*size
}

func TestMonteCarloEarlyStop(t *testing.T) {
	// A deterministic additive game has zero-variance marginals, so the
	// sampler must stop at the first convergence check.
	worth := func(s vm.Coalition) float64 { return float64(s.Size()) }
	res, err := MonteCarlo(4, worth, MCOptions{
		Permutations: 10000,
		TargetStdErr: 0.01,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations >= 10000 {
		t.Fatalf("no early stop: %d permutations", res.Permutations)
	}
	for i, p := range res.Phi {
		if math.Abs(p-1) > 1e-12 {
			t.Fatalf("Phi[%d] = %g, want 1", i, p)
		}
	}
}

func TestMonteCarloDefaults(t *testing.T) {
	res, err := MonteCarlo(3, paperGame5, MCOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations != DefaultPermutations {
		t.Fatalf("default permutations = %d", res.Permutations)
	}
}

func TestMonteCarloAntithetic(t *testing.T) {
	// Antithetic pairs count two permutations and preserve efficiency;
	// an odd budget rounds up to a whole pair.
	rng := rand.New(rand.NewSource(13))
	n := 8
	table := randomGameTable(rng, n)
	worth := func(s vm.Coalition) float64 { return table[s] }
	res, err := MonteCarlo(n, worth, MCOptions{Permutations: 101, Antithetic: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations != 102 {
		t.Fatalf("Permutations = %d, want 102 (51 pairs)", res.Permutations)
	}
	var sum float64
	for _, p := range res.Phi {
		sum += p
	}
	grand := table[len(table)-1]
	if math.Abs(sum-grand) > 1e-9*(1+grand) {
		t.Fatalf("antithetic efficiency: %g vs %g", sum, grand)
	}
}

func TestMonteCarloAntitheticReducesVariance(t *testing.T) {
	// On a game with strong position effects, antithetic sampling should
	// usually beat plain sampling at an equal permutation budget. Compare
	// mean absolute error across seeds to avoid flakiness.
	const n = 10
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 0.9*size*size // concave: late joiners cheaper
	}
	exact, err := Exact(n, worth)
	if err != nil {
		t.Fatal(err)
	}
	mae := func(antithetic bool) float64 {
		var total float64
		const trials = 12
		for seed := int64(0); seed < trials; seed++ {
			res, err := MonteCarlo(n, worth, MCOptions{Permutations: 60, Antithetic: antithetic, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for i := range exact {
				total += math.Abs(res.Phi[i] - exact[i])
			}
		}
		return total / trials
	}
	plain := mae(false)
	anti := mae(true)
	if anti > plain {
		t.Fatalf("antithetic MAE %g worse than plain %g", anti, plain)
	}
}

func TestMonteCarloAntitheticStdErrOverPairs(t *testing.T) {
	// For a worth that depends only on coalition size, the marginal of
	// the player at position k is f(k+1) − f(k). With f quadratic the
	// pair average of positions k and n−1−k is the same constant for
	// every player and every pair, so the pair-level variance — and the
	// reported StdErr — must be exactly 0. The pre-fix code computed the
	// variance over the individual half-samples (which DO vary with
	// position) and reported a spuriously positive StdErr.
	const n = 6
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 13*size - 0.7*size*size
	}
	res, err := MonteCarlo(n, worth, MCOptions{Permutations: 64, Antithetic: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, se := range res.StdErr {
		if se > 1e-9 {
			t.Fatalf("StdErr[%d] = %g, want 0 (pair averages are constant)", i, se)
		}
	}
	// And the zero pair-variance must fire TargetStdErr at the first
	// checkpoint rather than run out the budget.
	res, err = MonteCarlo(n, worth, MCOptions{
		Permutations: 100000, Antithetic: true, TargetStdErr: 1e-6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations != 128 { // 64 pairs, the first checkpoint
		t.Fatalf("Permutations = %d, want early stop at 128", res.Permutations)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	if _, err := MonteCarlo(0, paperGame5, MCOptions{}); !errors.Is(err, ErrPlayers) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := MonteCarlo(3, nil, MCOptions{}); !errors.Is(err, ErrNilWorth) {
		t.Fatalf("nil worth: %v", err)
	}
}
