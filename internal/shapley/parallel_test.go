package shapley

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"vmpower/internal/vm"
)

// parallelisms exercised by the determinism tests: serial, fewer and
// more workers than shards-per-worker boundaries, and the GOMAXPROCS
// default.
var parallelisms = []int{1, 2, 3, 7, 16, 0}

func TestTabulateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 3, 7, 10} {
		table := randomGameTable(rng, n)
		worth := func(s vm.Coalition) float64 { return table[s] }
		want, err := Tabulate(n, worth)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parallelisms {
			got, err := TabulateParallel(n, worth, p)
			if err != nil {
				t.Fatal(err)
			}
			for s := range want {
				if got[s] != want[s] {
					t.Fatalf("n=%d p=%d: table[%d] = %g, want %g", n, p, s, got[s], want[s])
				}
			}
		}
	}
}

func TestExactParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 9, 12} {
		table := randomGameTable(rng, n)
		serial, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parallelisms {
			par, err := ExactFromTableParallel(n, table, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				scale := math.Max(1, math.Abs(serial[i]))
				if math.Abs(par[i]-serial[i]) > 1e-12*scale {
					t.Fatalf("n=%d p=%d: phi[%d] = %.17g, serial %.17g", n, p, i, par[i], serial[i])
				}
			}
		}
	}
}

func TestExactParallelDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{4, 9, 13} {
		table := randomGameTable(rng, n)
		worth := func(s vm.Coalition) float64 { return table[s] }
		ref, err := ExactParallel(n, worth, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parallelisms[1:] {
			got, err := ExactParallel(n, worth, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("n=%d: parallelism %d diverges bit-for-bit at phi[%d]: %.17g vs %.17g",
						n, p, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestMonteCarloDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 9
	table := randomGameTable(rng, n)
	worth := func(s vm.Coalition) float64 { return table[s] }
	for _, anti := range []bool{false, true} {
		for _, cacheOff := range []bool{false, true} {
			ref, err := MonteCarlo(n, worth, MCOptions{
				Permutations: 150, Antithetic: anti, Seed: 5,
				Parallelism: 1, NoWorthCache: cacheOff,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range parallelisms[1:] {
				got, err := MonteCarlo(n, worth, MCOptions{
					Permutations: 150, Antithetic: anti, Seed: 5,
					Parallelism: p, NoWorthCache: cacheOff,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Permutations != ref.Permutations {
					t.Fatalf("anti=%v p=%d: %d permutations, want %d", anti, p, got.Permutations, ref.Permutations)
				}
				for i := range ref.Phi {
					if got.Phi[i] != ref.Phi[i] || got.StdErr[i] != ref.StdErr[i] {
						t.Fatalf("anti=%v cacheOff=%v p=%d: estimate diverges bit-for-bit at player %d",
							anti, cacheOff, p, i)
					}
				}
			}
		}
	}
}

func TestMonteCarloEarlyStopDeterministicAcrossParallelism(t *testing.T) {
	// Early stopping decides at fixed unit-count checkpoints, so the
	// stopping point itself must not depend on the worker count.
	rng := rand.New(rand.NewSource(29))
	n := 8
	table := randomGameTable(rng, n)
	worth := func(s vm.Coalition) float64 { return table[s] }
	ref, err := MonteCarlo(n, worth, MCOptions{
		Permutations: 5000, TargetStdErr: 1.5, Seed: 2, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Permutations >= 5000 {
		t.Fatalf("test game never early-stops (%d permutations); loosen TargetStdErr", ref.Permutations)
	}
	for _, p := range parallelisms[1:] {
		got, err := MonteCarlo(n, worth, MCOptions{
			Permutations: 5000, TargetStdErr: 1.5, Seed: 2, Parallelism: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Permutations != ref.Permutations {
			t.Fatalf("p=%d stopped at %d permutations, serial at %d", p, got.Permutations, ref.Permutations)
		}
		for i := range ref.Phi {
			if got.Phi[i] != ref.Phi[i] {
				t.Fatalf("p=%d: Phi[%d] diverges", p, i)
			}
		}
	}
}

func TestMonteCarloWorthCache(t *testing.T) {
	// The memoizing cache must cut worth evaluations on the cached size
	// band without changing a single bit of the estimate.
	n := 10
	var calls atomic.Int64
	worth := func(s vm.Coalition) float64 {
		calls.Add(1)
		size := float64(s.Size())
		return 11*size - 0.3*size*size
	}
	opts := MCOptions{Permutations: 200, Seed: 9, Parallelism: 4}

	opts.NoWorthCache = true
	uncached, err := MonteCarlo(n, worth, opts)
	if err != nil {
		t.Fatal(err)
	}
	uncachedCalls := calls.Swap(0)

	opts.NoWorthCache = false
	cached, err := MonteCarlo(n, worth, opts)
	if err != nil {
		t.Fatal(err)
	}
	cachedCalls := calls.Load()

	for i := range uncached.Phi {
		if cached.Phi[i] != uncached.Phi[i] {
			t.Fatalf("cache changed Phi[%d]: %.17g vs %.17g", i, cached.Phi[i], uncached.Phi[i])
		}
	}
	// 200 permutations over 10 players touch prefixes of sizes 0..10;
	// sizes 0–3 and 7–10 are cacheable (8 of 11 prefix sizes), so the
	// cache should save a large fraction of the 2200 evaluations. Racing
	// workers may recompute a handful of entries; require 25% savings.
	if cachedCalls > uncachedCalls*3/4 {
		t.Fatalf("cache saved too little: %d calls cached vs %d uncached", cachedCalls, uncachedCalls)
	}
}

func TestMonteCarloGOMAXPROCSInvariance(t *testing.T) {
	// Parallelism 0 (all cores) must agree bit-for-bit with an explicit
	// worker count — the estimate may depend only on the seed.
	n := 7
	worth := func(s vm.Coalition) float64 {
		size := float64(s.Size())
		return 9*size - 0.5*size*size
	}
	a, err := MonteCarlo(n, worth, MCOptions{Permutations: 96, Seed: 4, Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(n, worth, MCOptions{Permutations: 96, Seed: 4, Parallelism: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phi {
		if a.Phi[i] != b.Phi[i] {
			t.Fatalf("Phi[%d] differs between parallelism 0 and 5", i)
		}
	}
}

func TestParallelErrors(t *testing.T) {
	if _, err := TabulateParallel(0, nil, 2); err == nil {
		t.Fatal("want player-range error")
	}
	if _, err := TabulateParallel(3, nil, 2); err != ErrNilWorth {
		t.Fatalf("nil worth: %v", err)
	}
	if _, err := ExactFromTableParallel(2, []float64{1, 2}, 2); err == nil {
		t.Fatal("want table-length error")
	}
	if _, err := ExactParallel(40, func(vm.Coalition) float64 { return 0 }, 2); err == nil {
		t.Fatal("want player-range error")
	}
}
