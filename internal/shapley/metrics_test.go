package shapley

import (
	"strings"
	"testing"

	"vmpower/internal/obs"
	"vmpower/internal/vm"
)

// testWorth is a simple concave game used across the metrics tests.
func testWorth(s vm.Coalition) float64 {
	size := float64(s.Size())
	return 13*size - 0.4*size*size
}

func TestInstrumentMonteCarloTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	res, err := MonteCarlo(12, testWorth, MCOptions{Permutations: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := metrics()
	if got := m.MCPermutations.Value(); got != uint64(res.Permutations) {
		t.Fatalf("permutations counter = %d, result = %d", got, res.Permutations)
	}
	if se := m.MCStdErr.Value(); se <= 0 {
		t.Fatalf("stderr gauge = %g, want > 0", se)
	}
	// The cache band (|S| <= 3 or >= n-3) is hit constantly by
	// permutation prefixes: 64 permutations × 12 players share only
	// C(12, k) small coalitions.
	if m.WorthCacheHits.Value() == 0 || m.WorthCacheMisses.Value() == 0 {
		t.Fatalf("cache hits = %d, misses = %d, want both > 0",
			m.WorthCacheHits.Value(), m.WorthCacheMisses.Value())
	}
	if m.SolveMC.Count() != 1 {
		t.Fatalf("mc solve histogram count = %d", m.SolveMC.Count())
	}
	if m.MCEarlyStops.Value() != 0 {
		t.Fatal("fixed-budget solve must not count as an early stop")
	}
}

func TestInstrumentEarlyStopCounter(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	// A constant-marginal game has zero variance: the target is met at
	// the first convergence check, well before the 100k budget.
	worth := func(s vm.Coalition) float64 { return 7 * float64(s.Size()) }
	res, err := MonteCarlo(10, worth, MCOptions{Permutations: 100000, TargetStdErr: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations >= 100000 {
		t.Fatalf("no early stop happened (%d permutations)", res.Permutations)
	}
	if metrics().MCEarlyStops.Value() != 1 {
		t.Fatalf("early-stop counter = %d, want 1", metrics().MCEarlyStops.Value())
	}
	if se := metrics().MCStdErr.Value(); se > 0.5 {
		t.Fatalf("stderr gauge %g above target at stop", se)
	}
}

func TestInstrumentExactPhases(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	if _, err := Exact(8, testWorth); err != nil {
		t.Fatal(err)
	}
	if _, err := ExactParallel(8, testWorth, 2); err != nil {
		t.Fatal(err)
	}
	m := metrics()
	if m.SolveTabulate.Count() != 2 || m.SolveAccumulate.Count() != 2 {
		t.Fatalf("phase counts: tabulate %d, accumulate %d, want 2 each",
			m.SolveTabulate.Count(), m.SolveAccumulate.Count())
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `vmpower_solve_duration_seconds_count{method="tabulate"} 2`) {
		t.Fatalf("missing labelled solve series:\n%s", b.String())
	}
}

// TestUninstrumentedIsIdentical pins that wiring metrics in and out
// never changes solver output (instrumentation is observation only).
func TestUninstrumentedIsIdentical(t *testing.T) {
	Instrument(nil)
	plain, err := MonteCarlo(10, testWorth, MCOptions{Permutations: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	Instrument(obs.NewRegistry())
	defer Instrument(nil)
	inst, err := MonteCarlo(10, testWorth, MCOptions{Permutations: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Phi {
		if plain.Phi[i] != inst.Phi[i] || plain.StdErr[i] != inst.StdErr[i] {
			t.Fatalf("instrumentation changed the estimate at %d", i)
		}
	}
}
