package shapley

import (
	"math/rand"
	"strings"
	"testing"

	"vmpower/internal/vm"
)

func TestCheckAxiomsOnExact(t *testing.T) {
	// The exact Shapley value of any game must pass all axiom checks.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		table := randomGameTable(rng, n)
		phi, err := ExactFromTable(n, table)
		if err != nil {
			t.Fatal(err)
		}
		report, err := CheckAxioms(n, func(s vm.Coalition) float64 { return table[s] }, phi, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Ok() {
			t.Fatalf("trial %d: exact Shapley fails axioms: %s", trial, report)
		}
	}
}

func TestCheckAxiomsDetectsViolations(t *testing.T) {
	// The paper-game with the marginal-contribution allocation (13, 7):
	// efficient but violates Symmetry.
	report, err := CheckAxioms(2, paperGame, []float64{13, 7}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if report.EfficiencyGap != 0 {
		t.Fatalf("marginal allocation is efficient, gap = %g", report.EfficiencyGap)
	}
	if len(report.SymmetryViolations) != 1 {
		t.Fatalf("want 1 symmetry violation, got %d", len(report.SymmetryViolations))
	}
	// The power-model allocation (13, 13): symmetric but inefficient.
	report, err = CheckAxioms(2, paperGame, []float64{13, 13}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if report.EfficiencyGap == 0 {
		t.Fatal("power-model allocation must violate efficiency")
	}
	if len(report.SymmetryViolations) != 0 {
		t.Fatal("power-model allocation is symmetric")
	}
	if report.Ok() {
		t.Fatal("report must not be Ok")
	}
	if !strings.Contains(report.String(), "efficiency gap") {
		t.Fatalf("String = %q", report.String())
	}
}

func TestCheckAxiomsDummy(t *testing.T) {
	// Player 1 is a dummy; giving it power must be flagged.
	worth := func(s vm.Coalition) float64 {
		if s.Contains(0) {
			return 10
		}
		return 0
	}
	report, err := CheckAxioms(2, worth, []float64{9, 1}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.DummyViolations) != 1 || report.DummyViolations[0] != 1 {
		t.Fatalf("DummyViolations = %v", report.DummyViolations)
	}
}

func TestCheckAxiomsErrors(t *testing.T) {
	if _, err := CheckAxioms(2, paperGame, []float64{1}, 1e-9); err == nil {
		t.Fatal("want allocation-length error")
	}
}

func TestSymmetricAndDummyHelpers(t *testing.T) {
	table, err := Tabulate(2, paperGame)
	if err != nil {
		t.Fatal(err)
	}
	if !Symmetric(2, table, 0, 1, 1e-9) {
		t.Fatal("paper game players are symmetric")
	}
	if Dummy(2, table, 0, 1e-9) {
		t.Fatal("paper game players are not dummies")
	}
	// Null game: everyone is a dummy and all pairs symmetric.
	null := make([]float64, 4)
	if !Dummy(2, null, 0, 0) || !Symmetric(2, null, 0, 1, 0) {
		t.Fatal("null game properties wrong")
	}
}

func TestCheckAdditivity(t *testing.T) {
	w1 := paperGame
	w2 := func(s vm.Coalition) float64 { return 3 * float64(s.Size()) }
	dev, err := CheckAdditivity(2, w1, w2, 1e-9)
	if err != nil {
		t.Fatalf("additivity must hold for exact Shapley: %v (dev %g)", err, dev)
	}
	if dev > 1e-9 {
		t.Fatalf("deviation = %g", dev)
	}
}
