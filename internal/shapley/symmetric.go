package shapley

// This file implements the symmetry-collapsed exact Shapley solver. When
// several players are interchangeable — same VHC class and bit-equal
// quantized state, so every worth the game can ask about is invariant
// under permuting them — the game is fully described by how many members
// of each symmetry class a coalition contains. Collapsing the 2^n
// coalition lattice to type-count vectors shrinks the enumeration from
// 2^n masks to V = ∏_j (c_j + 1) vectors (strictly fewer whenever any
// class has c_j >= 2), which takes exact allocation past the 2^n wall to
// hosts with hundreds of VMs as long as the VM population repeats
// (Lupia et al., "Computing the Shapley Value in Allocation Problems").
//
// Derivation. Fix classes 1..k with sizes c_1..c_k, n = Σ c_j, and a
// worth v(t) over count vectors t (0 <= t_j <= c_j). For a player i of
// class j, grouping the classic sum Φ_i = Σ_S w(|S|)(v(S∪{i})−v(S)) by
// the count vector of S (which must have t_j <= c_j − 1 since i ∉ S):
//
//	Φ_j = Σ_t C(c_j−1, t_j) · ∏_{l≠j} C(c_l, t_l) · w(Σt) · (v(t+e_j) − v(t))
//
// Using C(c_j−1, t_j) = C(c_j, t_j) · (c_j − t_j)/c_j, the per-vector
// coefficient is B(t) · (c_j − t_j)/c_j · w(Σt) with B(t) = ∏ C(c_l, t_l):
// one shared multinomial per vector plus a two-flop per-class ratio. The
// binomial rows are precomputed per class (error ~c_j·ε each) and combined
// per vector with k multiplications, rather than dragged through one long
// incremental chain over all V vectors whose ~V·ε rounding error would
// breach the 1e-12 equivalence bound at V ≈ 2^16.
//
// Vectors are indexed in mixed radix with class 0 as the fastest digit:
// index(t) = Σ t_j · stride_j, stride_0 = 1, stride_j = stride_{j−1} ·
// (c_{j−1}+1). Plain counting enumerates them in odometer order, the
// empty vector first (index 0) and the grand vector t = c last (index
// V−1) — the same conventions the mask-based tables use, so callers
// overwrite the grand entry with the measured power the same way.

import (
	"fmt"

	"vmpower/internal/vm"
)

// SymMaxPlayers caps the total player count n = Σ c_j of the
// symmetry-collapsed solver (vm.MaxVMs, the VM-set ceiling). Every
// intermediate stays comfortably inside float64 at this bound: the
// largest binomial C(511, 255) ≈ 1.1e153 and the smallest weight
// 1/(512·C(511,255)) ≈ 1.8e-156 are both far from overflow and the
// subnormal range.
const SymMaxPlayers = vm.MaxVMs

// SymMaxVectors caps the collapsed enumeration size V = ∏ (c_j + 1): a
// hard API bound (the table alone is 8·V bytes) under which the product
// arithmetic below cannot overflow. Callers enforce their own, smaller
// per-tick budgets.
const SymMaxVectors = 1 << 26

// SymWorthFunc gives the worth v(t) of a coalition described by its
// per-class member counts. The solver reuses the slice between calls:
// implementations must not retain or mutate it.
type SymWorthFunc func(t []int) float64

// validCounts checks the class-size vector: at least one class, every
// class non-empty, and the totals within the solver's caps. It returns
// (V, n).
func validCounts(counts []int) (int, int, error) {
	if len(counts) == 0 {
		return 0, 0, fmt.Errorf("%w: no symmetry classes", ErrPlayers)
	}
	v, n := 1, 0
	for j, c := range counts {
		if c < 1 {
			return 0, 0, fmt.Errorf("%w: class %d has %d members", ErrPlayers, j, c)
		}
		n += c
		if n > SymMaxPlayers {
			return 0, 0, fmt.Errorf("%w: n=%d exceeds %d", ErrPlayers, n, SymMaxPlayers)
		}
		v *= c + 1
		if v > SymMaxVectors {
			return 0, 0, fmt.Errorf("%w: %d count vectors exceed %d", ErrPlayers, v, SymMaxVectors)
		}
	}
	return v, n, nil
}

// SymVectorCount returns V = ∏ (c_j + 1), the number of distinct
// type-count vectors of a game with the given class sizes, validating
// the sizes against the solver's caps.
func SymVectorCount(counts []int) (int, error) {
	v, _, err := validCounts(counts)
	return v, err
}

// SymVectorAt decodes a vector index into t (len(counts) entries),
// inverse of SymIndexOf. Index 0 is the empty vector; index V−1 the
// grand vector t = counts.
func SymVectorAt(counts []int, idx int, t []int) error {
	v, _, err := validCounts(counts)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= v {
		return fmt.Errorf("shapley: vector index %d outside [0,%d)", idx, v)
	}
	if len(t) != len(counts) {
		return fmt.Errorf("shapley: t has %d entries, want %d", len(t), len(counts))
	}
	for j, c := range counts {
		t[j] = idx % (c + 1)
		idx /= c + 1
	}
	return nil
}

// SymIndexOf returns the mixed-radix index of count vector t.
func SymIndexOf(counts []int, t []int) (int, error) {
	if _, _, err := validCounts(counts); err != nil {
		return 0, err
	}
	if len(t) != len(counts) {
		return 0, fmt.Errorf("shapley: t has %d entries, want %d", len(t), len(counts))
	}
	idx, stride := 0, 1
	for j, c := range counts {
		if t[j] < 0 || t[j] > c {
			return 0, fmt.Errorf("shapley: t[%d]=%d outside [0,%d]", j, t[j], c)
		}
		idx += t[j] * stride
		stride *= c + 1
	}
	return idx, nil
}

// SymScratch holds the per-game tables of the collapsed solver — the
// mixed-radix strides, the n-player coalition weights, the per-class
// binomial rows and the decode buffer — so per-tick callers recompute
// them only when the class structure actually changes. The zero value is
// ready; Prepare before use.
type SymScratch struct {
	counts []int
	stride []int
	w      []float64   // w[s] = s!(n−s−1)!/n!, shared read-only for n <= ExactMaxPlayers
	binom  [][]float64 // binom[j][x] = C(c_j, x)
	t      []int       // odometer decode buffer
	n      int         // Σ counts
	v      int         // ∏ (counts+1)
}

// NumVectors returns V for the prepared class sizes (0 before Prepare).
func (sc *SymScratch) NumVectors() int { return sc.v }

// NumPlayers returns n for the prepared class sizes (0 before Prepare).
func (sc *SymScratch) NumPlayers() int { return sc.n }

// Prepare sizes the scratch for the given class sizes and returns V. A
// call with the sizes already prepared is a cheap no-op, so per-tick
// callers can Prepare unconditionally.
func (sc *SymScratch) Prepare(counts []int) (int, error) {
	if len(sc.counts) == len(counts) && sc.v > 0 {
		same := true
		for j, c := range counts {
			if sc.counts[j] != c {
				same = false
				break
			}
		}
		if same {
			return sc.v, nil
		}
	}
	v, n, err := validCounts(counts)
	if err != nil {
		return 0, err
	}
	w, err := weightsFor(n)
	if err != nil {
		return 0, err
	}
	k := len(counts)
	sc.counts = append(sc.counts[:0], counts...)
	sc.w = w
	sc.n, sc.v = n, v
	if cap(sc.stride) < k {
		sc.stride = make([]int, k)
		sc.t = make([]int, k)
	}
	sc.stride = sc.stride[:k]
	sc.t = sc.t[:k]
	stride := 1
	for j, c := range counts {
		sc.stride[j] = stride
		stride *= c + 1
	}
	if cap(sc.binom) < k {
		sc.binom = make([][]float64, k)
	}
	sc.binom = sc.binom[:k]
	for j, c := range counts {
		row := sc.binom[j]
		if cap(row) < c+1 {
			row = make([]float64, c+1)
		}
		row = row[:c+1]
		// Multiplicative Pascal row: exact for small c, ~2c·ε for large.
		row[0] = 1
		for x := 0; x < c; x++ {
			row[x+1] = row[x] * float64(c-x) / float64(x+1)
		}
		sc.binom[j] = row
	}
	return v, nil
}

// SymTabulateInto evaluates worth over every count vector into table
// (len V), in mixed-radix odometer order: empty vector first, grand
// vector last.
func SymTabulateInto(table []float64, sc *SymScratch, worth SymWorthFunc) error {
	if worth == nil {
		return ErrNilWorth
	}
	if sc.v == 0 {
		return fmt.Errorf("%w: scratch not prepared", ErrPlayers)
	}
	if len(table) != sc.v {
		return fmt.Errorf("shapley: table has %d entries, want %d", len(table), sc.v)
	}
	t := sc.t
	for j := range t {
		t[j] = 0
	}
	for idx := 0; idx < sc.v; idx++ {
		table[idx] = worth(t)
		for j := range t {
			if t[j] < sc.counts[j] {
				t[j]++
				break
			}
			t[j] = 0
		}
	}
	return nil
}

// SymRetabulateInto re-evaluates only the count vectors touching a dirty
// class — those with t_j > 0 for some j with dirty[j] — leaving every
// other entry of the previous tabulation in place, and returns how many
// entries it evaluated. A vector over clean classes only describes a
// coalition whose composition is unchanged, so its worth is reused
// verbatim; this is the count-vector analogue of the mask path's
// dirty-coalition recurrence. Callers that override entries out of band
// (the grand vector's measured power) must rewrite them after this
// returns.
func SymRetabulateInto(table []float64, sc *SymScratch, worth SymWorthFunc, dirty []bool) (int, error) {
	if worth == nil {
		return 0, ErrNilWorth
	}
	if sc.v == 0 {
		return 0, fmt.Errorf("%w: scratch not prepared", ErrPlayers)
	}
	if len(table) != sc.v {
		return 0, fmt.Errorf("shapley: table has %d entries, want %d", len(table), sc.v)
	}
	if len(dirty) != len(sc.counts) {
		return 0, fmt.Errorf("shapley: %d dirty flags for %d classes", len(dirty), len(sc.counts))
	}
	t := sc.t
	for j := range t {
		t[j] = 0
	}
	evaluated := 0
	active := 0 // dirty classes with t_j > 0 in the current vector
	for idx := 0; idx < sc.v; idx++ {
		if active > 0 {
			table[idx] = worth(t)
			evaluated++
		}
		for j := range t {
			if t[j] < sc.counts[j] {
				t[j]++
				if dirty[j] && t[j] == 1 {
					active++
				}
				break
			}
			if dirty[j] {
				active--
			}
			t[j] = 0
		}
	}
	return evaluated, nil
}

// SymExactFromTableInto computes the per-player Shapley value of each
// symmetry class from a tabulated collapsed game: phi[j] is the share of
// ONE player of class j (the class total is c_j·phi[j]; efficiency reads
// Σ_j c_j·phi[j] = v(grand) − v(empty)). phi must have one entry per
// class; it is zeroed here.
func SymExactFromTableInto(phi []float64, sc *SymScratch, table []float64) error {
	if sc.v == 0 {
		return fmt.Errorf("%w: scratch not prepared", ErrPlayers)
	}
	k := len(sc.counts)
	if len(phi) != k {
		return fmt.Errorf("shapley: phi has %d entries, want %d", len(phi), k)
	}
	if len(table) != sc.v {
		return fmt.Errorf("shapley: table has %d entries, want %d", len(table), sc.v)
	}
	for j := range phi {
		phi[j] = 0
	}
	t := sc.t
	for j := range t {
		t[j] = 0
	}
	s := 0 // Σ t, maintained incrementally across the odometer walk
	for idx := 0; idx < sc.v; idx++ {
		if s < sc.n { // the grand vector admits no marginal contributions
			b := 1.0
			for j := 0; j < k; j++ {
				b *= sc.binom[j][t[j]]
			}
			base := b * sc.w[s]
			vs := table[idx]
			for j := 0; j < k; j++ {
				cj := sc.counts[j]
				tj := t[j]
				if tj == cj {
					continue
				}
				// C(c_j−1, t_j) = C(c_j, t_j)·(c_j−t_j)/c_j.
				phi[j] += base * (float64(cj-tj) / float64(cj)) * (table[idx+sc.stride[j]] - vs)
			}
		}
		for j := range t {
			if t[j] < sc.counts[j] {
				t[j]++
				s++
				break
			}
			s -= t[j]
			t[j] = 0
		}
	}
	return nil
}

// SymmetricExact computes the exact per-player Shapley value of a game
// whose players fall into symmetry classes of the given sizes, from a
// worth defined over type-count vectors. It is the allocating convenience
// form of the *Into pipeline; phi[j] is the share of one player of class
// j. O(V) worth evaluations and O(V·k) accumulation flops, against the
// 2^n of Exact.
func SymmetricExact(counts []int, worth SymWorthFunc) ([]float64, error) {
	if worth == nil {
		return nil, ErrNilWorth
	}
	var sc SymScratch
	v, err := sc.Prepare(counts)
	if err != nil {
		return nil, err
	}
	table := make([]float64, v)
	if err := SymTabulateInto(table, &sc, worth); err != nil {
		return nil, err
	}
	phi := make([]float64, len(counts))
	if err := SymExactFromTableInto(phi, &sc, table); err != nil {
		return nil, err
	}
	return phi, nil
}
