package fleet

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"vmpower/internal/faults"
	"vmpower/internal/machine"
)

func quickConfig(hosts int) Config {
	return Config{
		Hosts:            hosts,
		Seed:             1,
		MeterNoise:       0, // noiseless (the meter.SimOptions convention)
		CalibrationTicks: 60,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(quickConfig(1), nil); err == nil {
		t.Fatal("want no-requests error")
	}
	if _, err := New(quickConfig(1), []VMRequest{{Name: ""}}); err == nil {
		t.Fatal("want empty-name error")
	}
	dup := []VMRequest{{Name: "a", Type: 0}, {Name: "a", Type: 0}}
	if _, err := New(quickConfig(1), dup); err == nil {
		t.Fatal("want duplicate-name error")
	}
	if _, err := New(quickConfig(1), []VMRequest{{Name: "a", Type: 9}}); err == nil {
		t.Fatal("want unknown-type error")
	}
}

func TestPlacementFirstFitDecreasing(t *testing.T) {
	// 2 hosts × 32 logical cores. Requests: 5×xlarge (8 vCPU) = 40
	// vCPUs plus smalls. FFD puts four xlarge on host 0 (32), the fifth
	// on host 1, smalls fill host 1.
	reqs := []VMRequest{
		{Name: "x1", Tenant: "t", Type: 3}, {Name: "x2", Tenant: "t", Type: 3},
		{Name: "x3", Tenant: "t", Type: 3}, {Name: "x4", Tenant: "t", Type: 3},
		{Name: "x5", Tenant: "t", Type: 3},
		{Name: "s1", Tenant: "t", Type: 0}, {Name: "s2", Tenant: "t", Type: 0},
	}
	f, err := New(quickConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	place := f.Placement()
	if f.Hosts() != 2 {
		t.Fatalf("Hosts = %d", f.Hosts())
	}
	host0 := 0
	for _, name := range []string{"x1", "x2", "x3", "x4"} {
		if place[name] == place["x5"] {
			host0++
		}
	}
	if host0 != 0 {
		t.Fatalf("FFD should isolate x5: placement %v", place)
	}
	if place["s1"] != place["x5"] || place["s2"] != place["x5"] {
		t.Fatalf("smalls should backfill host 1: %v", place)
	}
}

func TestPlacementOvercommit(t *testing.T) {
	// 1 host, 5 xlarge = 40 vCPUs > 32.
	reqs := make([]VMRequest, 5)
	for i := range reqs {
		reqs[i] = VMRequest{Name: string(rune('a' + i)), Tenant: "t", Type: 3}
	}
	if _, err := New(quickConfig(1), reqs); !errors.Is(err, machine.ErrOvercommit) {
		t.Fatalf("want ErrOvercommit, got %v", err)
	}
}

func TestFleetEndToEnd(t *testing.T) {
	// 4 xlarge (32 vCPUs) fill host 0; the smalls and db spill to host 1,
	// so the rollup genuinely spans two independent games.
	reqs := []VMRequest{
		{Name: "web1", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 1},
		{Name: "web2", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 2},
		{Name: "db", Tenant: "bob", Type: 2, Workload: "omnetpp", WorkloadSeed: 3},
		{Name: "batch1", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 4},
		{Name: "batch2", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 5},
		{Name: "batch3", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 6},
		{Name: "batch4", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 7},
	}
	f, err := New(quickConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 2 {
		t.Fatalf("Hosts = %d, want 2", f.Hosts())
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	const ticks = 5
	var lastTick *Tick
	if err := f.Run(ticks, func(tk *Tick) bool {
		lastTick = tk
		// Efficiency rolls up: per-VM shares sum to the dynamic total.
		var sum float64
		for _, w := range tk.PerVM {
			sum += w
		}
		if math.Abs(sum-tk.DynamicTotal) > 1e-6 {
			t.Fatalf("Σ shares %g vs dynamic total %g", sum, tk.DynamicTotal)
		}
		// Tenant rollup is consistent.
		var tenantSum float64
		for _, w := range tk.PerTenant {
			tenantSum += w
		}
		if math.Abs(tenantSum-sum) > 1e-9 {
			t.Fatal("tenant rollup inconsistent")
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if lastTick == nil {
		t.Fatal("no ticks delivered")
	}
	// Every VM drew positive power (all run CPU-heavy benchmarks).
	for name, w := range lastTick.PerVM {
		if w <= 0 {
			t.Fatalf("%s drew %g W", name, w)
		}
	}
	// Measured totals include both hosts' idle power.
	if lastTick.MeasuredTotal < 2*138 {
		t.Fatalf("MeasuredTotal = %g, want > 276", lastTick.MeasuredTotal)
	}
	// Energy rollup: positive for both tenants, bob (12 vCPUs) > alice (2).
	energy := f.EnergyWhByTenant()
	if energy["alice"] <= 0 || energy["bob"] <= 0 {
		t.Fatalf("energy = %v", energy)
	}
	if energy["bob"] <= energy["alice"] {
		t.Fatalf("bob should out-consume alice: %v", energy)
	}
}

// TestFleetTickInterval pins the energy integration to the configured
// tick interval: the same deterministic trace stepped at 250 ms must
// integrate exactly a quarter of the 1 s energy (0.25 is a power of two,
// so the per-tick scaling is exact and the quarters match bit for bit),
// and ElapsedSeconds must report real time, not the tick count.
func TestFleetTickInterval(t *testing.T) {
	reqs := []VMRequest{
		{Name: "web", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 1},
		{Name: "db", Tenant: "bob", Type: 2, Workload: "omnetpp", WorkloadSeed: 2},
	}
	run := func(interval time.Duration) *Fleet {
		cfg := quickConfig(1)
		cfg.TickInterval = interval
		f, err := New(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Calibrate(); err != nil {
			t.Fatal(err)
		}
		if err := f.Run(8, nil); err != nil {
			t.Fatal(err)
		}
		return f
	}
	oneHz := run(0) // default 1 s
	fast := run(250 * time.Millisecond)

	if got := oneHz.ElapsedSeconds(); got != 8 {
		t.Fatalf("1 Hz elapsed = %g s, want 8", got)
	}
	if got := fast.ElapsedSeconds(); got != 2 {
		t.Fatalf("250 ms elapsed = %g s, want 2", got)
	}
	whSlow, whFast := oneHz.EnergyWhByTenant(), fast.EnergyWhByTenant()
	for _, tenant := range []string{"alice", "bob"} {
		if whSlow[tenant] <= 0 {
			t.Fatalf("%s drew no energy at 1 Hz", tenant)
		}
		if whFast[tenant] != whSlow[tenant]/4 {
			t.Fatalf("%s at 250 ms = %g Wh, want exactly %g/4", tenant, whFast[tenant], whSlow[tenant])
		}
	}

	cfg := quickConfig(1)
	cfg.TickInterval = -time.Second
	if _, err := New(cfg, reqs); err == nil {
		t.Fatal("want negative-interval error")
	}
}

func TestFleetDeterminism(t *testing.T) {
	reqs := []VMRequest{
		{Name: "a", Tenant: "t", Type: 0, Workload: "wrf", WorkloadSeed: 1},
		{Name: "b", Tenant: "t", Type: 1, Workload: "sjeng", WorkloadSeed: 2},
	}
	run := func() map[string]float64 {
		f, err := New(quickConfig(1), reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Calibrate(); err != nil {
			t.Fatal(err)
		}
		var last *Tick
		if err := f.Run(3, func(tk *Tick) bool { last = tk; return true }); err != nil {
			t.Fatal(err)
		}
		return last.PerVM
	}
	r1, r2 := run(), run()
	for name := range r1 {
		if r1[name] != r2[name] {
			t.Fatalf("non-deterministic: %s %g vs %g", name, r1[name], r2[name])
		}
	}
}

func TestEmptyHostsAllowed(t *testing.T) {
	// More hosts than needed: extra hosts are simply unused.
	reqs := []VMRequest{{Name: "only", Tenant: "t", Type: 0, Workload: "gcc"}}
	f, err := New(quickConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 1 {
		t.Fatalf("non-empty hosts = %d, want 1", f.Hosts())
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyHostAccounting pins the MeasuredTotal contract: empty hosts
// draw idle power but are never metered, so the fleet reports them as
// IdleUnmeteredHosts instead of silently folding a fictitious reading
// into the total.
func TestEmptyHostAccounting(t *testing.T) {
	reqs := []VMRequest{{Name: "only", Tenant: "t", Type: 0, Workload: "gcc"}}
	f, err := New(quickConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 1 || f.EmptyHosts() != 3 {
		t.Fatalf("Hosts=%d EmptyHosts=%d, want 1 and 3", f.Hosts(), f.EmptyHosts())
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	tick, err := f.Step()
	if err != nil {
		t.Fatal(err)
	}
	if tick.IdleUnmeteredHosts != 3 {
		t.Fatalf("IdleUnmeteredHosts = %d, want 3", tick.IdleUnmeteredHosts)
	}
	if len(tick.Hosts) != 1 {
		t.Fatalf("per-host statuses = %d, want 1", len(tick.Hosts))
	}
	// One metered host: the total is one machine's draw, not four.
	if tick.MeasuredTotal < 100 || tick.MeasuredTotal > 2*138 {
		t.Fatalf("MeasuredTotal = %g, want a single host's reading", tick.MeasuredTotal)
	}
}

// TestMeterNoiseConvention pins the SimOptions sentinel alignment: 0 is a
// genuinely noiseless meter (readings differ from true power only by the
// 0.1 W display quantization) and negative is a configuration error, not
// a silent disable.
func TestMeterNoiseConvention(t *testing.T) {
	reqs := []VMRequest{{Name: "a", Tenant: "t", Type: 0, Workload: "gcc", WorkloadSeed: 1}}
	cfg := quickConfig(1)
	cfg.MeterNoise = -0.5
	if _, err := New(cfg, reqs); err == nil {
		t.Fatal("negative MeterNoise must be rejected")
	}
	cfg.MeterNoise = 0
	f, err := New(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tick, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		truth, err := f.hosts[0].TruePower()
		if err != nil {
			t.Fatal(err)
		}
		// Quantization moves a reading at most half a display step.
		if gap := math.Abs(tick.MeasuredTotal - truth); gap > 0.05+1e-9 {
			t.Fatalf("tick %d: noiseless meter off by %g W", i, gap)
		}
	}
}

// faultedFleet builds a 2-host fleet — four xlarge VMs (tenant "bob")
// fill host 0, one small VM (tenant "alice") lands on host 1 — with a
// scripted fault injector on host 0.
func faultedFleet(t *testing.T, cfg Config, opts faults.Options) (*Fleet, *faults.Meter) {
	t.Helper()
	reqs := []VMRequest{
		{Name: "x1", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 1},
		{Name: "x2", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 2},
		{Name: "x3", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 3},
		{Name: "x4", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 4},
		{Name: "s1", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 5},
	}
	f, err := New(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	place := f.Placement()
	if place["x1"] != 0 || place["s1"] != 1 {
		t.Fatalf("unexpected placement %v", place)
	}
	fm, err := f.InjectFaults(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	fm.SetArmed(true)
	return f, fm
}

// TestHostFaultIsolation is the PR's headline regression: a dead meter on
// host 0 must never zero (or drop) host 1's allocations. Host 0 is
// quarantined — its VMs reported unaccounted — and readmitted by a probe
// once the meter returns.
func TestHostFaultIsolation(t *testing.T) {
	cfg := quickConfig(2)
	cfg.MeterRetries = 2
	cfg.HoldoverTicks = 3
	cfg.QuarantineProbeTicks = 2
	f, fm := faultedFleet(t, cfg,
		faults.Options{Episodes: []faults.Episode{
			// Meter dead for injector ticks [0, 8): with no good online
			// sample yet, host 0 turns terminal on the first tick.
			{Start: 0, Len: 8, Kind: faults.Dropout},
		}})

	sawQuarantine, sawReadmit := false, false
	for i := 0; i < 16; i++ {
		tick, err := f.Step()
		if err != nil {
			t.Fatalf("tick %d: fleet step failed: %v", i, err)
		}
		// The healthy host's VM is allocated every single tick.
		if w, ok := tick.PerVM["s1"]; !ok || w <= 0 {
			t.Fatalf("tick %d: healthy host zeroed: s1 = %g (present %v)", i, w, ok)
		}
		if tick.Hosts[1].State != HostHealthy {
			t.Fatalf("tick %d: host 1 state %v", i, tick.Hosts[1].State)
		}
		if tick.Hosts[0].State == HostQuarantined {
			sawQuarantine = true
			if !tick.Hosts[0].MeterLost {
				t.Fatalf("tick %d: quarantine not marked meter-lost: %+v", i, tick.Hosts[0])
			}
			if len(tick.Unaccounted) != 4 {
				t.Fatalf("tick %d: unaccounted = %v, want host 0's four VMs", i, tick.Unaccounted)
			}
			if _, ok := tick.PerVM["x1"]; ok {
				t.Fatalf("tick %d: quarantined VM x1 still allocated", i)
			}
		}
		if tick.Readmits > 0 {
			sawReadmit = true
			if tick.Hosts[0].State == HostQuarantined {
				t.Fatalf("tick %d: readmitted but still quarantined", i)
			}
		}
		fm.NextTick()
	}
	if !sawQuarantine {
		t.Fatal("host 0 was never quarantined")
	}
	if !sawReadmit {
		t.Fatal("host 0 was never readmitted after the meter returned")
	}
	q, r := f.Transitions()
	if q == 0 || r == 0 {
		t.Fatalf("transitions = %d/%d, want both nonzero", q, r)
	}
}

// TestDegradedEnergySeparation pins the billing satellite: energy
// integrated while a host serves held-over samples is tracked separately
// per tenant, so a bill can exclude or annotate it.
func TestDegradedEnergySeparation(t *testing.T) {
	cfg := quickConfig(2)
	cfg.MeterRetries = 2
	cfg.HoldoverTicks = 10
	f, fm := faultedFleet(t, cfg,
		faults.Options{Episodes: []faults.Episode{
			// A short outage well inside the holdover bound: host 0
			// degrades but keeps contributing.
			{Start: 2, Len: 3, Kind: faults.Dropout},
		}})

	sawDegraded := false
	for i := 0; i < 8; i++ {
		tick, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if tick.Hosts[0].State == HostDegraded {
			sawDegraded = true
			if !tick.Degraded || tick.DegradedHosts != 1 {
				t.Fatalf("tick %d: degradation not rolled up: %+v", i, tick)
			}
			if tick.Hosts[0].Reason == "" || tick.Hosts[0].HoldoverAgeTicks == 0 {
				t.Fatalf("tick %d: degraded host missing reason/age: %+v", i, tick.Hosts[0])
			}
			// Degraded hosts still contribute allocations.
			if _, ok := tick.PerVM["x1"]; !ok {
				t.Fatalf("tick %d: degraded host dropped from rollup", i)
			}
		}
		fm.NextTick()
	}
	if !sawDegraded {
		t.Fatal("the outage produced no degraded host ticks")
	}
	deg := f.DegradedEnergyWhByTenant()
	if deg["bob"] <= 0 {
		t.Fatalf("bob's degraded energy = %g, want > 0", deg["bob"])
	}
	if deg["alice"] != 0 {
		t.Fatalf("alice's degraded energy = %g, want 0 (her host never degraded)", deg["alice"])
	}
	total := f.EnergyWhByTenant()
	if deg["bob"] >= total["bob"] {
		t.Fatalf("degraded energy %g should be a strict slice of total %g", deg["bob"], total["bob"])
	}
}

// TestStepParallelismDeterminism pins the rollup determinism contract:
// the tick stream — allocations, totals, states, unaccounted lists — is
// bit-for-bit identical at any worker count, faults included.
func TestStepParallelismDeterminism(t *testing.T) {
	run := func(par int) []*Tick {
		cfg := quickConfig(2)
		cfg.Parallelism = par
		cfg.MeterRetries = 2
		cfg.HoldoverTicks = 3
		cfg.QuarantineProbeTicks = 2
		f, fm := faultedFleet(t, cfg,
			faults.Options{
				Seed:        42,
				DropoutProb: 0.3,
				Episodes:    []faults.Episode{{Start: 3, Len: 6, Kind: faults.Dropout}},
			})
		out := make([]*Tick, 0, 12)
		for i := 0; i < 12; i++ {
			tick, err := f.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tick)
			fm.NextTick()
		}
		return out
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("tick streams diverge across parallelism:\nserial:   %+v\nparallel: %+v",
			serial[len(serial)-1], parallel[len(parallel)-1])
	}
}
