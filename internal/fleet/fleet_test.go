package fleet

import (
	"errors"
	"math"
	"testing"

	"vmpower/internal/machine"
)

func quickConfig(hosts int) Config {
	return Config{
		Hosts:            hosts,
		Seed:             1,
		MeterNoise:       -1,
		CalibrationTicks: 60,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(quickConfig(1), nil); err == nil {
		t.Fatal("want no-requests error")
	}
	if _, err := New(quickConfig(1), []VMRequest{{Name: ""}}); err == nil {
		t.Fatal("want empty-name error")
	}
	dup := []VMRequest{{Name: "a", Type: 0}, {Name: "a", Type: 0}}
	if _, err := New(quickConfig(1), dup); err == nil {
		t.Fatal("want duplicate-name error")
	}
	if _, err := New(quickConfig(1), []VMRequest{{Name: "a", Type: 9}}); err == nil {
		t.Fatal("want unknown-type error")
	}
}

func TestPlacementFirstFitDecreasing(t *testing.T) {
	// 2 hosts × 32 logical cores. Requests: 5×xlarge (8 vCPU) = 40
	// vCPUs plus smalls. FFD puts four xlarge on host 0 (32), the fifth
	// on host 1, smalls fill host 1.
	reqs := []VMRequest{
		{Name: "x1", Tenant: "t", Type: 3}, {Name: "x2", Tenant: "t", Type: 3},
		{Name: "x3", Tenant: "t", Type: 3}, {Name: "x4", Tenant: "t", Type: 3},
		{Name: "x5", Tenant: "t", Type: 3},
		{Name: "s1", Tenant: "t", Type: 0}, {Name: "s2", Tenant: "t", Type: 0},
	}
	f, err := New(quickConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	place := f.Placement()
	if f.Hosts() != 2 {
		t.Fatalf("Hosts = %d", f.Hosts())
	}
	host0 := 0
	for _, name := range []string{"x1", "x2", "x3", "x4"} {
		if place[name] == place["x5"] {
			host0++
		}
	}
	if host0 != 0 {
		t.Fatalf("FFD should isolate x5: placement %v", place)
	}
	if place["s1"] != place["x5"] || place["s2"] != place["x5"] {
		t.Fatalf("smalls should backfill host 1: %v", place)
	}
}

func TestPlacementOvercommit(t *testing.T) {
	// 1 host, 5 xlarge = 40 vCPUs > 32.
	reqs := make([]VMRequest, 5)
	for i := range reqs {
		reqs[i] = VMRequest{Name: string(rune('a' + i)), Tenant: "t", Type: 3}
	}
	if _, err := New(quickConfig(1), reqs); !errors.Is(err, machine.ErrOvercommit) {
		t.Fatalf("want ErrOvercommit, got %v", err)
	}
}

func TestFleetEndToEnd(t *testing.T) {
	// 4 xlarge (32 vCPUs) fill host 0; the smalls and db spill to host 1,
	// so the rollup genuinely spans two independent games.
	reqs := []VMRequest{
		{Name: "web1", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 1},
		{Name: "web2", Tenant: "alice", Type: 0, Workload: "gcc", WorkloadSeed: 2},
		{Name: "db", Tenant: "bob", Type: 2, Workload: "omnetpp", WorkloadSeed: 3},
		{Name: "batch1", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 4},
		{Name: "batch2", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 5},
		{Name: "batch3", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 6},
		{Name: "batch4", Tenant: "bob", Type: 3, Workload: "namd", WorkloadSeed: 7},
	}
	f, err := New(quickConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 2 {
		t.Fatalf("Hosts = %d, want 2", f.Hosts())
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	const ticks = 5
	var lastTick *Tick
	if err := f.Run(ticks, func(tk *Tick) bool {
		lastTick = tk
		// Efficiency rolls up: per-VM shares sum to the dynamic total.
		var sum float64
		for _, w := range tk.PerVM {
			sum += w
		}
		if math.Abs(sum-tk.DynamicTotal) > 1e-6 {
			t.Fatalf("Σ shares %g vs dynamic total %g", sum, tk.DynamicTotal)
		}
		// Tenant rollup is consistent.
		var tenantSum float64
		for _, w := range tk.PerTenant {
			tenantSum += w
		}
		if math.Abs(tenantSum-sum) > 1e-9 {
			t.Fatal("tenant rollup inconsistent")
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if lastTick == nil {
		t.Fatal("no ticks delivered")
	}
	// Every VM drew positive power (all run CPU-heavy benchmarks).
	for name, w := range lastTick.PerVM {
		if w <= 0 {
			t.Fatalf("%s drew %g W", name, w)
		}
	}
	// Measured totals include both hosts' idle power.
	if lastTick.MeasuredTotal < 2*138 {
		t.Fatalf("MeasuredTotal = %g, want > 276", lastTick.MeasuredTotal)
	}
	// Energy rollup: positive for both tenants, bob (12 vCPUs) > alice (2).
	energy := f.EnergyWhByTenant()
	if energy["alice"] <= 0 || energy["bob"] <= 0 {
		t.Fatalf("energy = %v", energy)
	}
	if energy["bob"] <= energy["alice"] {
		t.Fatalf("bob should out-consume alice: %v", energy)
	}
}

func TestFleetDeterminism(t *testing.T) {
	reqs := []VMRequest{
		{Name: "a", Tenant: "t", Type: 0, Workload: "wrf", WorkloadSeed: 1},
		{Name: "b", Tenant: "t", Type: 1, Workload: "sjeng", WorkloadSeed: 2},
	}
	run := func() map[string]float64 {
		f, err := New(quickConfig(1), reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Calibrate(); err != nil {
			t.Fatal(err)
		}
		var last *Tick
		if err := f.Run(3, func(tk *Tick) bool { last = tk; return true }); err != nil {
			t.Fatal(err)
		}
		return last.PerVM
	}
	r1, r2 := run(), run()
	for name := range r1 {
		if r1[name] != r2[name] {
			t.Fatalf("non-deterministic: %s %g vs %g", name, r1[name], r2[name])
		}
	}
}

func TestEmptyHostsAllowed(t *testing.T) {
	// More hosts than needed: extra hosts are simply unused.
	reqs := []VMRequest{{Name: "only", Tenant: "t", Type: 0, Workload: "gcc"}}
	f, err := New(quickConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 1 {
		t.Fatalf("non-empty hosts = %d, want 1", f.Hosts())
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
}
