// Package fleet scales the power accounting from one machine to a
// datacenter: it places VMs onto a pool of independently metered hosts
// (first-fit decreasing by vCPU, the classic consolidation heuristic the
// paper's Sec. I datacenter context implies), runs one estimation
// pipeline per host, and rolls allocations up per VM and per tenant. The
// per-host games are independent, so by the Additivity axiom a tenant's
// datacenter-wide power is simply the sum of its VMs' per-host Shapley
// shares.
package fleet

import (
	"errors"
	"fmt"
	"sort"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// VMRequest asks for one VM in the fleet.
type VMRequest struct {
	// Name is the VM's fleet-unique name.
	Name string
	// Tenant owns the VM for billing rollups.
	Tenant string
	// Type is the Table IV catalog type.
	Type vm.TypeID
	// Workload is a benchmark name from the workload catalog (empty =
	// idle until bound later).
	Workload string
	// WorkloadSeed seeds the benchmark.
	WorkloadSeed int64
}

// Config describes the host pool.
type Config struct {
	// Hosts is the number of physical machines. Default 1.
	Hosts int
	// Profile is the machine profile (default XeonProfile).
	Profile machine.Profile
	// Policy is the vCPU scheduler policy (default Pack).
	Policy machine.SchedulerPolicy
	// Seed drives meters, collection workloads and benchmarks.
	Seed int64
	// MeterNoise is each wall meter's Gaussian sigma (default 0.25 W;
	// negative disables).
	MeterNoise float64
	// CalibrationTicks is the per-combination offline sample count.
	CalibrationTicks int
}

// placement records where a VM landed.
type placement struct {
	host  int
	local vm.ID
	req   VMRequest
}

// Fleet is a pool of accounted hosts.
type Fleet struct {
	hosts      []*hypervisor.Host
	estimators []*core.Estimator
	byName     map[string]placement
	order      []string
	energyWs   map[string]float64
}

// Tick is one datacenter-wide estimation step.
type Tick struct {
	// PerVM is each VM's attributed dynamic power, keyed by name.
	PerVM map[string]float64
	// PerTenant sums PerVM by tenant.
	PerTenant map[string]float64
	// MeasuredTotal is the sum of all host meter readings (incl. idle).
	MeasuredTotal float64
	// DynamicTotal is the idle-deducted sum the shares add up to.
	DynamicTotal float64
}

// New builds the fleet: places the requested VMs, constructs one host +
// meter + estimator per machine, and binds workloads. VMs start running.
func New(cfg Config, reqs []VMRequest) (*Fleet, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = machine.XeonProfile()
	}
	if len(reqs) == 0 {
		return nil, errors.New("fleet: no VM requests")
	}
	catalog := vm.PaperCatalog()

	// Validate requests and compute sizes.
	seen := make(map[string]bool, len(reqs))
	type sized struct {
		req   VMRequest
		vcpus int
	}
	items := make([]sized, 0, len(reqs))
	for _, r := range reqs {
		if r.Name == "" {
			return nil, errors.New("fleet: VM request with empty name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("fleet: duplicate VM name %q", r.Name)
		}
		seen[r.Name] = true
		t, err := catalog.ByID(r.Type)
		if err != nil {
			return nil, fmt.Errorf("fleet: VM %q: %w", r.Name, err)
		}
		items = append(items, sized{req: r, vcpus: t.VCPUs})
	}

	// First-fit decreasing placement by vCPUs (ties broken by name so
	// placement is deterministic).
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].vcpus != items[j].vcpus {
			return items[i].vcpus > items[j].vcpus
		}
		return items[i].req.Name < items[j].req.Name
	})
	capacity := cfg.Profile.LogicalCores()
	free := make([]int, cfg.Hosts)
	for i := range free {
		free[i] = capacity
	}
	perHost := make([][]VMRequest, cfg.Hosts)
	for _, it := range items {
		placed := false
		for h := 0; h < cfg.Hosts; h++ {
			if free[h] >= it.vcpus {
				perHost[h] = append(perHost[h], it.req)
				free[h] -= it.vcpus
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: VM %q needs %d vCPUs, no host has room",
				machine.ErrOvercommit, it.req.Name, it.vcpus)
		}
	}

	f := &Fleet{
		byName:   make(map[string]placement, len(reqs)),
		energyWs: make(map[string]float64, len(reqs)),
	}
	noise := cfg.MeterNoise
	switch {
	case noise < 0:
		noise = 0
	case noise == 0:
		noise = 0.25
	}
	for h := 0; h < cfg.Hosts; h++ {
		if len(perHost[h]) == 0 {
			continue // empty hosts draw idle power but host no game
		}
		mach, err := machine.New(cfg.Profile, cfg.Policy)
		if err != nil {
			return nil, err
		}
		vms := make([]vm.VM, len(perHost[h]))
		for i, r := range perHost[h] {
			vms[i] = vm.VM{Name: r.Name, Type: r.Type}
		}
		set, err := vm.NewSet(catalog, vms)
		if err != nil {
			return nil, err
		}
		host, err := hypervisor.NewHost(mach, set)
		if err != nil {
			return nil, err
		}
		m, err := meter.NewSim(host.PowerSource(), meter.SimOptions{
			NoiseStdDev: noise,
			Resolution:  0.1,
			Seed:        cfg.Seed + int64(h)*7919,
		})
		if err != nil {
			return nil, err
		}
		est, err := core.New(host, m, core.Config{
			OfflineTicksPerCombo: cfg.CalibrationTicks,
			Seed:                 cfg.Seed + int64(h),
		})
		if err != nil {
			return nil, err
		}
		hostIdx := len(f.hosts)
		f.hosts = append(f.hosts, host)
		f.estimators = append(f.estimators, est)
		for i, r := range perHost[h] {
			f.byName[r.Name] = placement{host: hostIdx, local: vm.ID(i), req: r}
		}
	}
	// Stable reporting order: request order.
	for _, r := range reqs {
		f.order = append(f.order, r.Name)
	}
	return f, nil
}

// Hosts returns the number of non-empty hosts in the pool.
func (f *Fleet) Hosts() int { return len(f.hosts) }

// Placement returns each VM's host index.
func (f *Fleet) Placement() map[string]int {
	out := make(map[string]int, len(f.byName))
	for name, p := range f.byName {
		out[name] = p.host
	}
	return out
}

// Calibrate runs the offline collection phase on every host.
func (f *Fleet) Calibrate() error {
	for i, est := range f.estimators {
		if err := est.CollectOffline(); err != nil {
			return fmt.Errorf("fleet: host %d: %w", i, err)
		}
	}
	// Bind workloads and start everything.
	for _, name := range f.order {
		p := f.byName[name]
		if p.req.Workload == "" {
			continue
		}
		gen, err := workload.ByName(p.req.Workload, p.req.WorkloadSeed)
		if err != nil {
			return fmt.Errorf("fleet: VM %q: %w", name, err)
		}
		if err := f.hosts[p.host].Attach(p.local, gen); err != nil {
			return err
		}
	}
	for _, host := range f.hosts {
		host.SetCoalition(vm.GrandCoalition(host.Set().Len()))
	}
	return nil
}

// Step advances every host one tick and aggregates the allocations.
func (f *Fleet) Step() (*Tick, error) {
	tick := &Tick{
		PerVM:     make(map[string]float64, len(f.byName)),
		PerTenant: make(map[string]float64),
	}
	allocs := make([]*core.Allocation, len(f.estimators))
	for i, est := range f.estimators {
		f.hosts[i].Advance(1)
		alloc, err := est.EstimateTick()
		if err != nil {
			return nil, fmt.Errorf("fleet: host %d: %w", i, err)
		}
		allocs[i] = alloc
		tick.MeasuredTotal += alloc.MeasuredPower
		tick.DynamicTotal += alloc.DynamicPower
	}
	for _, name := range f.order {
		p := f.byName[name]
		w := allocs[p.host].PerVM[int(p.local)]
		tick.PerVM[name] = w
		tick.PerTenant[p.req.Tenant] += w
		f.energyWs[name] += w
	}
	return tick, nil
}

// Run performs n steps, invoking fn after each (false stops early).
func (f *Fleet) Run(n int, fn func(*Tick) bool) error {
	for i := 0; i < n; i++ {
		tick, err := f.Step()
		if err != nil {
			return err
		}
		if fn != nil && !fn(tick) {
			return nil
		}
	}
	return nil
}

// EnergyWhByTenant returns cumulative attributed energy per tenant in
// watt-hours since the fleet started stepping.
func (f *Fleet) EnergyWhByTenant() map[string]float64 {
	out := make(map[string]float64)
	for name, ws := range f.energyWs {
		out[f.byName[name].req.Tenant] += ws / 3600
	}
	return out
}
