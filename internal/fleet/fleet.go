// Package fleet scales the power accounting from one machine to a
// datacenter: it places VMs onto a pool of independently metered hosts
// (first-fit decreasing by vCPU, the classic consolidation heuristic the
// paper's Sec. I datacenter context implies), runs one estimation
// pipeline per host, and rolls allocations up per VM and per tenant. The
// per-host games are independent, so by the Additivity axiom a tenant's
// datacenter-wide power is simply the sum of its VMs' per-host Shapley
// shares.
//
// Step is fault-isolated: each host's estimator carries its own
// degradation ladder (see internal/core), and a host whose estimator
// turns terminal is quarantined — its VMs reported as unaccounted, the
// rest of the fleet still ticking — and periodically probed for
// readmission. Hosts are advanced and estimated concurrently by a
// bounded worker pool, but every rollup sum is accumulated in fixed host
// order after the fan-in, so a Tick is a deterministic function of the
// fleet's seed and fault schedule at any Parallelism.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// VMRequest asks for one VM in the fleet.
type VMRequest struct {
	// Name is the VM's fleet-unique name.
	Name string
	// Tenant owns the VM for billing rollups.
	Tenant string
	// Type is the Table IV catalog type.
	Type vm.TypeID
	// Workload is a benchmark name from the workload catalog (empty =
	// idle until bound later).
	Workload string
	// WorkloadSeed seeds the benchmark.
	WorkloadSeed int64
}

// Config describes the host pool.
type Config struct {
	// Hosts is the number of physical machines. Default 1.
	Hosts int
	// Profile is the machine profile (default XeonProfile).
	Profile machine.Profile
	// Policy is the vCPU scheduler policy (default Pack).
	Policy machine.SchedulerPolicy
	// Seed drives meters, collection workloads and benchmarks.
	Seed int64
	// MeterNoise is each wall meter's Gaussian sigma in watts, following
	// the meter.SimOptions convention: 0 is a noiseless meter, negative
	// is rejected by New. (Earlier revisions defaulted 0 to 0.25 W and
	// used negative as the disable sentinel, which made zero noise
	// inexpressible; callers that want the old default now say 0.25.)
	MeterNoise float64
	// CalibrationTicks is the per-combination offline sample count.
	CalibrationTicks int
	// Parallelism bounds the worker pool Step fans hosts out to,
	// following the core.Config convention: 0 defaults to 1 (serial),
	// negative uses all cores (GOMAXPROCS), >= 2 uses that many workers.
	// Tick contents are bit-for-bit identical at any setting.
	Parallelism int
	// TickInterval is the wall-clock duration one Step covers; the energy
	// rollups integrate watts × interval per tick. 0 defaults to 1 s (the
	// historical cadence); negative is rejected.
	TickInterval time.Duration
	// QuarantineProbeTicks is the readmission probe cadence: a
	// quarantined host is re-estimated every this many ticks (a probe
	// that succeeds readmits the host that same tick). 0 defaults to 5;
	// negative disables probing (quarantine is then permanent).
	QuarantineProbeTicks int
	// MeterRetries, HoldoverTicks, StuckThreshold and Fallback are
	// forwarded to every host's core.Config (zero values take the core
	// defaults), so the whole pool shares one degradation ladder.
	MeterRetries   int
	HoldoverTicks  int
	StuckThreshold int
	Fallback       core.FallbackPolicy
}

// HostState is one host's place in the fleet degradation ladder.
type HostState int

const (
	// HostHealthy means the last tick produced a fresh allocation.
	HostHealthy HostState = iota
	// HostDegraded means the last tick produced a degraded allocation
	// (holdover or fallback) — still counted in the rollups.
	HostDegraded
	// HostQuarantined means the host's estimator returned an error (it
	// exhausted its degradation ladder); its VMs are unaccounted until a
	// readmission probe succeeds.
	HostQuarantined
	// HostDraining means a planned maintenance drain is in progress
	// (DrainHost): VMs are migrating away or stopped. The host is still
	// metered and estimated — drain is maintenance, not degradation.
	HostDraining
	// HostDrained means the drain completed: nothing runs on the host, its
	// meter reads pure idle, and it is safe to take down. UndrainHost
	// readmits it.
	HostDrained
)

// String names the state ("healthy", "degraded", "quarantined",
// "draining", "drained").
func (s HostState) String() string {
	switch s {
	case HostHealthy:
		return "healthy"
	case HostDegraded:
		return "degraded"
	case HostQuarantined:
		return "quarantined"
	case HostDraining:
		return "draining"
	case HostDrained:
		return "drained"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// HostStatus is one host's view of a fleet tick.
type HostStatus struct {
	// Host is the index into the fleet's non-empty host list (the same
	// index Placement reports).
	Host int
	// State is the host's place in the degradation ladder after this tick.
	State HostState
	// Reason explains a degraded or quarantined state ("" when healthy).
	Reason string
	// MeterLost marks a quarantine caused by a ladder-terminal error
	// (core.Terminal), as opposed to an incidental estimation failure.
	MeterLost bool
	// QuarantinedTicks is how long the host has been quarantined
	// (0 outside quarantine).
	QuarantinedTicks int
	// HoldoverAgeTicks and RejectedSamples mirror the host allocation's
	// degradation bookkeeping (zero for quarantined hosts, which have no
	// allocation).
	HoldoverAgeTicks int
	RejectedSamples  int
	// MeasuredWatts and DynamicWatts are the host's contribution to the
	// fleet totals this tick (zero for quarantined hosts).
	MeasuredWatts float64
	DynamicWatts  float64
	// Tier is the solver tier that produced the host's allocation
	// (core.TierMaskExact and friends; "" for quarantined hosts).
	Tier string
	// VMs are the names placed on this host, in request order.
	VMs []string
}

// Lifecycle event types, as carried by Tick.Events. Every roster or
// drain mutation produces exactly one edge-triggered event, drained into
// exactly one Tick, so a journal consumer sees each event once in
// sequence order.
const (
	// EventPowerOn / EventPowerOff mark a VM's running flag actually
	// flipping (StartVM on a running VM emits nothing).
	EventPowerOn  = "vm_poweron"
	EventPowerOff = "vm_poweroff"
	// EventHotplug marks a VM added past the static roster (AddVM);
	// EventRemove marks a permanent removal (RemoveVM).
	EventHotplug = "vm_hotplug"
	EventRemove  = "vm_remove"
	// EventMigrateStart opens a live migration's copy window;
	// EventMigrateFinish closes it — at cutover, or with an "aborted: ..."
	// detail when the destination was lost mid-copy.
	EventMigrateStart  = "migrate_start"
	EventMigrateFinish = "migrate_finish"
	// EventDrainStart / EventDrainFinish bracket a planned maintenance
	// drain; EventUndrain marks the readmission.
	EventDrainStart  = "drain_start"
	EventDrainFinish = "drain_finish"
	EventUndrain     = "undrain"
)

// LifecycleEvent is one roster/drain transition that took effect on a
// tick. Subject is a VM name or "host:<i>".
type LifecycleEvent struct {
	Type    string
	Subject string
	Detail  string
}

// MigrationStatus is one live migration's ledger entry for a tick inside
// its copy window: both hosts meter the VM, and the entry carries the
// per-side components so auditors can prove the VM's PerVM total counts
// each host's share exactly once.
type MigrationStatus struct {
	// Name is the migrating VM; From and To the source and destination
	// host indices.
	Name string
	From int
	To   int
	// CopyTick is the 1-based progress through the window of CopyTicks
	// double-metered ticks.
	CopyTick  int
	CopyTicks int
	// FromWatts and ToWatts are the components each side's game
	// attributed this tick (valid when the matching *Accounted is true —
	// a quarantined side contributes nothing).
	FromWatts     float64
	ToWatts       float64
	FromAccounted bool
	ToAccounted   bool
}

// migration is an active copy window: the VM runs on both hosts from
// tick startTick+1 through startTick+copyTicks, and cuts over to the
// destination before tick startTick+copyTicks+1 estimates.
type migration struct {
	name      string
	from, to  int
	fromLocal vm.ID
	toLocal   vm.ID
	startTick int
	copyTicks int
}

// drainState tracks one host's planned maintenance drain.
type drainState struct {
	migrated int      // VMs sent away via live migration
	stopped  []string // VMs stopped in place (no viable target); restarted on undrain
}

// placement records where a VM lives now. A removed VM keeps its record
// (energy history outlives the roster) but leaves every live list.
type placement struct {
	host    int
	local   vm.ID
	req     VMRequest
	removed bool
	mig     *migration // non-nil while a copy window is open
}

// hostRuntime is the fleet's per-host degradation bookkeeping.
type hostRuntime struct {
	state         HostState
	reason        string
	terminal      bool
	quarantinedAt int // fleet tick the quarantine began
	lastProbe     int // fleet tick of the last readmission attempt
}

// Fleet is a pool of accounted hosts.
type Fleet struct {
	hosts      []*hypervisor.Host
	estimators []*core.Estimator
	meters     []meter.Meter
	perHost    [][]string // live VM names per host, admission order
	byName     map[string]*placement
	order      []string // every VM ever admitted, admission order

	par        int
	probeEvery int
	emptyHosts int

	// Mutable stepping state. Step must be driven from a single
	// goroutine (it advances host clocks); the worker pool inside Step
	// only ever touches disjoint hosts. The lifecycle mutators (StartVM,
	// StopVM, AddVM, RemoveVM, MigrateVM, DrainHost, UndrainHost) follow
	// the InjectFaults contract: call them between Steps, never
	// concurrently with one.
	ticks       int
	states      []hostRuntime
	quarantines int
	readmits    int
	dt          float64 // seconds one Step covers
	elapsed     float64 // seconds integrated so far
	energyWs    map[string]float64
	degradedWs  map[string]float64

	pending    []LifecycleEvent // events awaiting the next Tick
	migrations []*migration     // open copy windows, start order
	drains     map[int]*drainState
	migDone    int // completed (cut-over) migrations
	migAborted int // migrations aborted at cutover (destination lost)
}

// Tick is one datacenter-wide estimation step.
type Tick struct {
	// Tick is the fleet step counter (1 for the first Step).
	Tick int
	// PerVM is each accounted VM's attributed dynamic power, keyed by
	// name. VMs on quarantined hosts are absent (see Unaccounted), not
	// zero — a zero would be indistinguishable from an idle VM.
	PerVM map[string]float64
	// PerTenant sums PerVM by tenant.
	PerTenant map[string]float64
	// MeasuredTotal is the sum of the meter readings of the hosts that
	// produced an allocation this tick. Quarantined hosts contribute
	// nothing (their meters are lost), and empty hosts are never metered
	// at all — their idle draw is invisible to the fleet; see
	// IdleUnmeteredHosts.
	MeasuredTotal float64
	// DynamicTotal is the idle-deducted sum the accounted shares add up to.
	DynamicTotal float64
	// Degraded is true when any host is degraded or quarantined this
	// tick. Energy integrated from degraded ticks is tracked separately
	// (DegradedEnergyWhByTenant) so bills can exclude or annotate it.
	Degraded bool
	// DegradedHosts and QuarantinedHosts count hosts by state.
	DegradedHosts    int
	QuarantinedHosts int
	// DrainingHosts and DrainedHosts count hosts in planned maintenance —
	// deliberately excluded from Degraded: a drain is operator intent,
	// not a fault.
	DrainingHosts int
	DrainedHosts  int
	// NewQuarantines and Readmits count state transitions on this tick.
	NewQuarantines int
	Readmits       int
	// IdleUnmeteredHosts is the number of empty hosts in the pool: they
	// draw idle power but host no game and no meter, so that draw is not
	// part of MeasuredTotal.
	IdleUnmeteredHosts int
	// Unaccounted lists the VMs (admission order) with no allocation this
	// tick: every host carrying them is quarantined.
	Unaccounted []string
	// Hosts is every non-empty host's status this tick, in host order.
	Hosts []HostStatus
	// Events are the lifecycle events that took effect on this tick, in
	// application order. Each event appears in exactly one Tick.
	Events []LifecycleEvent
	// Migrations is this tick's live-migration ledger: one entry per VM
	// inside its copy window, with per-side watt components. A VM listed
	// by two hosts without an entry here is an accounting bug
	// (AuditConservation flags it).
	Migrations []MigrationStatus
}

// New builds the fleet: places the requested VMs, constructs one host +
// meter + estimator per machine, and binds workloads. VMs start running.
func New(cfg Config, reqs []VMRequest) (*Fleet, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = machine.XeonProfile()
	}
	if cfg.MeterNoise < 0 {
		return nil, fmt.Errorf("fleet: negative meter noise %g (0 means noiseless)", cfg.MeterNoise)
	}
	switch {
	case cfg.Parallelism == 0:
		cfg.Parallelism = 1
	case cfg.Parallelism < 0:
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.QuarantineProbeTicks == 0 {
		cfg.QuarantineProbeTicks = 5
	}
	if cfg.TickInterval < 0 {
		return nil, fmt.Errorf("fleet: negative tick interval %v", cfg.TickInterval)
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = time.Second
	}
	if len(reqs) == 0 {
		return nil, errors.New("fleet: no VM requests")
	}
	catalog := vm.PaperCatalog()

	// Validate requests and compute sizes.
	seen := make(map[string]bool, len(reqs))
	type sized struct {
		req   VMRequest
		vcpus int
	}
	items := make([]sized, 0, len(reqs))
	for _, r := range reqs {
		if r.Name == "" {
			return nil, errors.New("fleet: VM request with empty name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("fleet: duplicate VM name %q", r.Name)
		}
		seen[r.Name] = true
		t, err := catalog.ByID(r.Type)
		if err != nil {
			return nil, fmt.Errorf("fleet: VM %q: %w", r.Name, err)
		}
		items = append(items, sized{req: r, vcpus: t.VCPUs})
	}

	// First-fit decreasing placement by vCPUs (ties broken by name so
	// placement is deterministic).
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].vcpus != items[j].vcpus {
			return items[i].vcpus > items[j].vcpus
		}
		return items[i].req.Name < items[j].req.Name
	})
	capacity := cfg.Profile.LogicalCores()
	free := make([]int, cfg.Hosts)
	for i := range free {
		free[i] = capacity
	}
	perHost := make([][]VMRequest, cfg.Hosts)
	for _, it := range items {
		placed := false
		for h := 0; h < cfg.Hosts; h++ {
			if free[h] >= it.vcpus {
				perHost[h] = append(perHost[h], it.req)
				free[h] -= it.vcpus
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: VM %q needs %d vCPUs, no host has room",
				machine.ErrOvercommit, it.req.Name, it.vcpus)
		}
	}

	f := &Fleet{
		byName:     make(map[string]*placement, len(reqs)),
		energyWs:   make(map[string]float64, len(reqs)),
		degradedWs: make(map[string]float64),
		drains:     make(map[int]*drainState),
		par:        cfg.Parallelism,
		probeEvery: cfg.QuarantineProbeTicks,
		dt:         cfg.TickInterval.Seconds(),
	}
	for h := 0; h < cfg.Hosts; h++ {
		if len(perHost[h]) == 0 {
			// Empty hosts draw idle power but host no game and no meter;
			// the fleet reports them via Tick.IdleUnmeteredHosts.
			f.emptyHosts++
			continue
		}
		mach, err := machine.New(cfg.Profile, cfg.Policy)
		if err != nil {
			return nil, err
		}
		vms := make([]vm.VM, len(perHost[h]))
		for i, r := range perHost[h] {
			vms[i] = vm.VM{Name: r.Name, Type: r.Type}
		}
		set, err := vm.NewSet(catalog, vms)
		if err != nil {
			return nil, err
		}
		host, err := hypervisor.NewHost(mach, set)
		if err != nil {
			return nil, err
		}
		m, err := meter.NewSim(host.PowerSource(), meter.SimOptions{
			NoiseStdDev: cfg.MeterNoise,
			Resolution:  0.1,
			Seed:        cfg.Seed + int64(h)*7919,
		})
		if err != nil {
			return nil, err
		}
		est, err := core.New(host, m, core.Config{
			OfflineTicksPerCombo: cfg.CalibrationTicks,
			Seed:                 cfg.Seed + int64(h),
			MeterRetries:         cfg.MeterRetries,
			HoldoverTicks:        cfg.HoldoverTicks,
			StuckThreshold:       cfg.StuckThreshold,
			Fallback:             cfg.Fallback,
		})
		if err != nil {
			return nil, err
		}
		hostIdx := len(f.hosts)
		f.hosts = append(f.hosts, host)
		f.estimators = append(f.estimators, est)
		f.meters = append(f.meters, m)
		names := make([]string, len(perHost[h]))
		for i, r := range perHost[h] {
			f.byName[r.Name] = &placement{host: hostIdx, local: vm.ID(i), req: r}
			names[i] = r.Name
		}
		f.perHost = append(f.perHost, names)
	}
	f.states = make([]hostRuntime, len(f.hosts))
	// Stable reporting order: request order.
	for _, r := range reqs {
		f.order = append(f.order, r.Name)
	}
	return f, nil
}

// Hosts returns the number of non-empty hosts in the pool.
func (f *Fleet) Hosts() int { return len(f.hosts) }

// EmptyHosts returns the number of hosts that received no VMs: they draw
// idle power but are not metered or accounted.
func (f *Fleet) EmptyHosts() int { return f.emptyHosts }

// Ticks returns the number of Steps taken so far.
func (f *Fleet) Ticks() int { return f.ticks }

// Transitions returns the cumulative quarantine and readmission counts.
func (f *Fleet) Transitions() (quarantines, readmits int) {
	return f.quarantines, f.readmits
}

// VMNames returns every live (non-removed) VM name in admission order.
func (f *Fleet) VMNames() []string {
	out := make([]string, 0, len(f.order))
	for _, name := range f.order {
		if !f.byName[name].removed {
			out = append(out, name)
		}
	}
	return out
}

// HasVM reports whether a live VM with the name exists.
func (f *Fleet) HasVM(name string) bool {
	p, ok := f.byName[name]
	return ok && !p.removed
}

// VMRunning reports whether a live VM is currently running (during a
// copy window: on its source host).
func (f *Fleet) VMRunning(name string) (bool, error) {
	p, err := f.vmRecord(name)
	if err != nil {
		return false, err
	}
	return f.hosts[p.host].IsRunning(p.local)
}

// VMTenant returns a live VM's tenant.
func (f *Fleet) VMTenant(name string) (string, error) {
	p, err := f.vmRecord(name)
	if err != nil {
		return "", err
	}
	return p.req.Tenant, nil
}

// VMSpec returns the request a live VM was admitted with (autoscalers
// clone it for scale-out twins).
func (f *Fleet) VMSpec(name string) (VMRequest, error) {
	p, err := f.vmRecord(name)
	if err != nil {
		return VMRequest{}, err
	}
	return p.req, nil
}

// Tenants returns the sorted distinct tenant names, including tenants
// whose VMs were all removed — their energy history persists.
func (f *Fleet) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, name := range f.order {
		t := f.byName[name].req.Tenant
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Placement returns each live VM's host index (during a copy window: the
// source host, until cutover).
func (f *Fleet) Placement() map[string]int {
	out := make(map[string]int, len(f.byName))
	for name, p := range f.byName {
		if !p.removed {
			out[name] = p.host
		}
	}
	return out
}

// ActiveMigrations returns the number of open copy windows.
func (f *Fleet) ActiveMigrations() int { return len(f.migrations) }

// MigrationTotals returns the cumulative completed and aborted
// live-migration counts.
func (f *Fleet) MigrationTotals() (done, aborted int) {
	return f.migDone, f.migAborted
}

// States returns every non-empty host's current state (as of the last
// Step; all healthy before the first). Not safe concurrently with Step.
func (f *Fleet) States() []HostStatus {
	out := make([]HostStatus, len(f.states))
	for i := range f.states {
		out[i] = f.hostStatus(i, nil)
	}
	return out
}

// InjectFaults wraps host h's meter in the deterministic seeded fault
// injector (package faults) and returns the injector so the driving loop
// can arm it and advance its episode clock (NextTick once per fleet
// Step). Call between construction and stepping, never concurrently with
// Step; the injector starts disarmed, so Calibrate still sees the clean
// meter.
func (f *Fleet) InjectFaults(h int, opts faults.Options) (*faults.Meter, error) {
	if h < 0 || h >= len(f.hosts) {
		return nil, fmt.Errorf("fleet: host %d out of range [0,%d)", h, len(f.hosts))
	}
	fm, err := faults.Wrap(f.meters[h], opts)
	if err != nil {
		return nil, err
	}
	if err := f.estimators[h].SetMeter(fm); err != nil {
		return nil, err
	}
	f.meters[h] = fm
	return fm, nil
}

// Calibrate runs the offline collection phase on every host.
func (f *Fleet) Calibrate() error {
	for i, est := range f.estimators {
		if err := est.CollectOffline(); err != nil {
			return fmt.Errorf("fleet: host %d: %w", i, err)
		}
	}
	// Bind workloads and start everything.
	for _, name := range f.order {
		p := f.byName[name]
		if p.req.Workload == "" {
			continue
		}
		gen, err := workload.ByName(p.req.Workload, p.req.WorkloadSeed)
		if err != nil {
			return fmt.Errorf("fleet: VM %q: %w", name, err)
		}
		if err := f.hosts[p.host].Attach(p.local, gen); err != nil {
			return err
		}
	}
	for _, host := range f.hosts {
		host.SetCoalition(vm.GrandCoalition(host.Set().Len()))
	}
	return nil
}

// note queues a lifecycle event for the next Tick.
func (f *Fleet) note(typ, subject, detail string) {
	f.pending = append(f.pending, LifecycleEvent{Type: typ, Subject: subject, Detail: detail})
}

// vmRecord resolves a live VM by name.
func (f *Fleet) vmRecord(name string) (*placement, error) {
	p, ok := f.byName[name]
	if !ok || p.removed {
		return nil, fmt.Errorf("fleet: no VM %q", name)
	}
	return p, nil
}

// hostSubject is the journal subject for host h.
func hostSubject(h int) string { return fmt.Sprintf("host:%d", h) }

// checkHost validates a host index.
func (f *Fleet) checkHost(h int) error {
	if h < 0 || h >= len(f.hosts) {
		return fmt.Errorf("fleet: host %d out of range [0,%d)", h, len(f.hosts))
	}
	return nil
}

// StartVM powers a VM on. Starting a running VM is a no-op (no event);
// a real edge queues a vm_poweron event for the next Tick. Starting a VM
// on a draining or drained host is refused — that is what UndrainHost is
// for. Call between Steps.
func (f *Fleet) StartVM(name string) error {
	p, err := f.vmRecord(name)
	if err != nil {
		return err
	}
	if p.mig != nil {
		return fmt.Errorf("fleet: VM %q is mid-migration", name)
	}
	switch f.states[p.host].state {
	case HostDraining, HostDrained:
		return fmt.Errorf("fleet: host %d is %s; undrain it before starting VMs", p.host, f.states[p.host].state)
	}
	running, err := f.hosts[p.host].IsRunning(p.local)
	if err != nil {
		return err
	}
	if running {
		return nil
	}
	if err := f.hosts[p.host].Start(p.local); err != nil {
		return err
	}
	f.note(EventPowerOn, name, "")
	return nil
}

// StopVM powers a VM off. The stopped VM stays a (dummy) player of its
// host's game with φ = exactly 0, so per-tenant energy is conserved
// through the edge by the Dummy axiom alone. Stopping a stopped VM is a
// no-op (no event). Call between Steps.
func (f *Fleet) StopVM(name string) error {
	p, err := f.vmRecord(name)
	if err != nil {
		return err
	}
	if p.mig != nil {
		return fmt.Errorf("fleet: VM %q is mid-migration", name)
	}
	running, err := f.hosts[p.host].IsRunning(p.local)
	if err != nil {
		return err
	}
	if !running {
		return nil
	}
	if err := f.hosts[p.host].Stop(p.local); err != nil {
		return err
	}
	f.note(EventPowerOff, name, "")
	return nil
}

// AddVM hot-plugs a new VM onto a host past the static roster. The host
// must be accounting (healthy or degraded) and must have calibrated the
// VM's VHC class — a class the host never trained cannot be estimated
// there and would quarantine it on the first tick. The VM starts running
// with its workload attached (the trace begins at the attach tick). Call
// between Steps.
func (f *Fleet) AddVM(host int, req VMRequest) error {
	if err := f.checkHost(host); err != nil {
		return err
	}
	if req.Name == "" {
		return errors.New("fleet: VM request with empty name")
	}
	if _, ok := f.byName[req.Name]; ok {
		// Removed names stay reserved: their energy ledger entries live on.
		return fmt.Errorf("fleet: VM name %q already used", req.Name)
	}
	switch st := f.states[host].state; st {
	case HostHealthy, HostDegraded:
	default:
		return fmt.Errorf("fleet: host %d is %s; cannot admit VMs", host, st)
	}
	if !f.estimators[host].CalibratedForClass(req.Type) {
		return fmt.Errorf("fleet: host %d never calibrated VM type %d; cannot estimate %q there", host, req.Type, req.Name)
	}
	var gen workload.Generator
	if req.Workload != "" {
		var err error
		gen, err = workload.ByName(req.Workload, req.WorkloadSeed)
		if err != nil {
			return fmt.Errorf("fleet: VM %q: %w", req.Name, err)
		}
	}
	local, err := f.hosts[host].AddVM(vm.VM{Name: req.Name, Type: req.Type})
	if err != nil {
		return fmt.Errorf("fleet: hot-plug %q: %w", req.Name, err)
	}
	if gen != nil {
		if err := f.hosts[host].Attach(local, gen); err != nil {
			return err
		}
	}
	if err := f.hosts[host].Start(local); err != nil {
		return err
	}
	// The set grew: the compiled worth plan and every scratch keyed on
	// the old n are stale.
	f.estimators[host].InvalidatePlan()
	f.byName[req.Name] = &placement{host: host, local: local, req: req}
	f.perHost[host] = append(f.perHost[host], req.Name)
	f.order = append(f.order, req.Name)
	f.note(EventHotplug, req.Name, fmt.Sprintf("%s tenant=%s type=%d", hostSubject(host), req.Tenant, req.Type))
	return nil
}

// RemoveVM permanently removes a VM: its host slot is retired (a stopped
// dummy forever, vCPUs released), its accrued energy stays in the tenant
// ledger, and its name stays reserved. Call between Steps.
func (f *Fleet) RemoveVM(name string) error {
	p, err := f.vmRecord(name)
	if err != nil {
		return err
	}
	if p.mig != nil {
		return fmt.Errorf("fleet: VM %q is mid-migration", name)
	}
	if err := f.hosts[p.host].Retire(p.local); err != nil {
		return err
	}
	f.perHost[p.host] = removeName(f.perHost[p.host], name)
	p.removed = true
	f.note(EventRemove, name, hostSubject(p.host))
	return nil
}

// MigrateVM live-migrates a VM: a twin slot is hot-plugged on the
// destination and runs alongside the source for copyTicks ticks — the
// copy window, during which both hosts genuinely draw power for the VM
// and both games attribute it (the double-accounting window the ledger
// makes explicit). Before the next tick after the window the source slot
// is retired and the VM's identity moves to the destination; its energy
// counter, keyed by name, never resets. A stopped VM (or copyTicks 0)
// cold-migrates: no window, cutover before the next tick.
//
// The destination must be accounting (healthy or degraded), have spare
// vCPU capacity, and have calibrated the VM's class. Call between Steps.
func (f *Fleet) MigrateVM(name string, to int, copyTicks int) error {
	p, err := f.vmRecord(name)
	if err != nil {
		return err
	}
	if err := f.checkHost(to); err != nil {
		return err
	}
	if p.mig != nil {
		return fmt.Errorf("fleet: VM %q is already migrating", name)
	}
	if to == p.host {
		return fmt.Errorf("fleet: VM %q is already on host %d", name, to)
	}
	if copyTicks < 0 {
		return fmt.Errorf("fleet: negative copy window %d", copyTicks)
	}
	switch st := f.states[to].state; st {
	case HostHealthy, HostDegraded:
	default:
		return fmt.Errorf("fleet: destination host %d is %s", to, st)
	}
	if !f.estimators[to].CalibratedForClass(p.req.Type) {
		return fmt.Errorf("fleet: host %d never calibrated VM type %d; cannot migrate %q there", to, p.req.Type, name)
	}
	running, err := f.hosts[p.host].IsRunning(p.local)
	if err != nil {
		return err
	}
	toLocal, err := f.hosts[to].AddVM(vm.VM{Name: name, Type: p.req.Type})
	if err != nil {
		return fmt.Errorf("fleet: migrate %q to host %d: %w", name, to, err)
	}
	if p.req.Workload != "" {
		gen, err := workload.ByName(p.req.Workload, p.req.WorkloadSeed)
		if err != nil {
			return err
		}
		if err := f.hosts[to].Attach(toLocal, gen); err != nil {
			return err
		}
	}
	f.estimators[to].InvalidatePlan()
	if running {
		if err := f.hosts[to].Start(toLocal); err != nil {
			return err
		}
	}
	m := &migration{
		name: name, from: p.host, to: to,
		fromLocal: p.local, toLocal: toLocal,
		startTick: f.ticks, copyTicks: copyTicks,
	}
	if !running {
		m.copyTicks = 0 // cold migration: nothing draws power twice
	}
	p.mig = m
	f.migrations = append(f.migrations, m)
	f.perHost[to] = append(f.perHost[to], name)
	f.note(EventMigrateStart, name, fmt.Sprintf("%s -> %s copy=%d", hostSubject(m.from), hostSubject(m.to), m.copyTicks))
	return nil
}

// DrainHost begins a planned maintenance drain: every VM on the host is
// live-migrated to the first accounting host that fits it (capacity and
// calibrated class), or stopped in place when none does; the host enters
// HostDraining and — once the last outbound copy window closes —
// HostDrained, still metered (its meter then reads pure idle) so the
// fleet's books stay whole. copyTicks is the per-migration copy window.
// Call between Steps.
func (f *Fleet) DrainHost(h int, copyTicks int) error {
	if err := f.checkHost(h); err != nil {
		return err
	}
	if copyTicks < 0 {
		return fmt.Errorf("fleet: negative copy window %d", copyTicks)
	}
	st := &f.states[h]
	switch st.state {
	case HostQuarantined:
		return fmt.Errorf("fleet: host %d is quarantined; nothing to drain gracefully", h)
	case HostDraining, HostDrained:
		return fmt.Errorf("fleet: host %d is already %s", h, st.state)
	}
	// Inbound copy windows would cut over onto a host being emptied:
	// abort them now (the source copy keeps running, nothing is lost).
	for _, m := range f.migrations {
		if m.to == h {
			f.abortMigration(m, "destination draining")
		}
	}
	f.pruneMigrations()
	st.state = HostDraining
	st.reason = "planned maintenance drain"
	st.terminal = false
	d := &drainState{}
	f.drains[h] = d
	f.note(EventDrainStart, hostSubject(h), "")
	for _, name := range append([]string(nil), f.perHost[h]...) {
		p := f.byName[name]
		if p.removed || p.mig != nil || p.host != h {
			continue // outbound windows empty the host on their own
		}
		migrated := false
		for dst := 0; dst < len(f.hosts) && !migrated; dst++ {
			if dst == h {
				continue
			}
			switch f.states[dst].state {
			case HostHealthy, HostDegraded:
			default:
				continue
			}
			// MigrateVM re-checks class and capacity; a refusal just
			// means "try the next host".
			if err := f.MigrateVM(name, dst, copyTicks); err == nil {
				migrated = true
				d.migrated++
			}
		}
		if migrated {
			continue
		}
		running, err := f.hosts[h].IsRunning(p.local)
		if err != nil {
			return err
		}
		if running {
			if err := f.hosts[h].Stop(p.local); err != nil {
				return err
			}
			d.stopped = append(d.stopped, name)
			f.note(EventPowerOff, name, "drain "+hostSubject(h))
		}
	}
	return nil
}

// UndrainHost readmits a drained host: VMs the drain stopped in place
// are restarted (migrated VMs stay where they landed) and the host
// returns to normal accounting. Call between Steps.
func (f *Fleet) UndrainHost(h int) error {
	if err := f.checkHost(h); err != nil {
		return err
	}
	st := &f.states[h]
	if st.state != HostDrained {
		return fmt.Errorf("fleet: host %d is %s, not drained", h, st.state)
	}
	st.state = HostHealthy
	st.reason = ""
	d := f.drains[h]
	delete(f.drains, h)
	f.note(EventUndrain, hostSubject(h), "")
	if d == nil {
		return nil
	}
	for _, name := range d.stopped {
		p, ok := f.byName[name]
		if !ok || p.removed || p.host != h {
			continue
		}
		if err := f.hosts[h].Start(p.local); err != nil {
			return err
		}
		f.note(EventPowerOn, name, "undrain "+hostSubject(h))
	}
	return nil
}

// finishMigration cuts a migration over: the source slot retires (its
// vCPUs free, its dummy stays), the VM's identity moves to the
// destination, and the copy window closes.
func (f *Fleet) finishMigration(m *migration) {
	p := f.byName[m.name]
	_ = f.hosts[m.from].Retire(m.fromLocal)
	f.perHost[m.from] = removeName(f.perHost[m.from], m.name)
	p.host = m.to
	p.local = m.toLocal
	p.mig = nil
	f.migDone++
	f.note(EventMigrateFinish, m.name, fmt.Sprintf("%s -> %s", hostSubject(m.from), hostSubject(m.to)))
}

// abortMigration tears a copy window down without moving the VM: the
// destination twin retires and the source copy keeps (or resumes) the
// VM's identity. When the source is itself draining, the VM is stopped
// in place — the drain still wants it gone.
func (f *Fleet) abortMigration(m *migration, why string) {
	p := f.byName[m.name]
	_ = f.hosts[m.to].Retire(m.toLocal)
	f.perHost[m.to] = removeName(f.perHost[m.to], m.name)
	p.mig = nil
	f.migAborted++
	f.note(EventMigrateFinish, m.name, fmt.Sprintf("aborted: %s (%s stays)", why, hostSubject(m.from)))
	if f.states[m.from].state == HostDraining {
		if running, err := f.hosts[m.from].IsRunning(m.fromLocal); err == nil && running {
			_ = f.hosts[m.from].Stop(m.fromLocal)
			if d := f.drains[m.from]; d != nil {
				d.stopped = append(d.stopped, m.name)
			}
			f.note(EventPowerOff, m.name, "drain "+hostSubject(m.from))
		}
	}
}

// pruneMigrations drops windows whose placement no longer references
// them (finished or aborted), preserving start order.
func (f *Fleet) pruneMigrations() {
	keep := f.migrations[:0]
	for _, m := range f.migrations {
		if f.byName[m.name].mig == m {
			keep = append(keep, m)
		}
	}
	tail := f.migrations[len(keep):]
	for i := range tail {
		tail[i] = nil
	}
	f.migrations = keep
}

// processLifecycle runs at the top of Step, after the tick counter
// advances but before any host is metered: copy windows that have run
// their copyTicks double-metered ticks cut over (or abort, when the
// destination has been lost to quarantine), and drains whose last
// outbound window closed become HostDrained.
func (f *Fleet) processLifecycle() {
	for _, m := range f.migrations {
		if f.ticks <= m.startTick+m.copyTicks {
			continue // window still open this tick
		}
		if f.states[m.to].state == HostQuarantined {
			f.abortMigration(m, hostSubject(m.to)+" quarantined")
			continue
		}
		f.finishMigration(m)
	}
	f.pruneMigrations()
	for h := range f.states {
		if f.states[h].state != HostDraining {
			continue
		}
		open := false
		for _, m := range f.migrations {
			if m.from == h {
				open = true
				break
			}
		}
		if open {
			continue
		}
		f.states[h].state = HostDrained
		f.states[h].reason = "drained for maintenance"
		d := f.drains[h]
		f.note(EventDrainFinish, hostSubject(h), fmt.Sprintf("%d migrated, %d stopped", d.migrated, len(d.stopped)))
	}
}

// removeName deletes the first occurrence of name, preserving order.
func removeName(list []string, name string) []string {
	for i, n := range list {
		if n == name {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// hostStatus builds host i's status view, folding in its allocation (nil
// for quarantined or unprobed hosts).
func (f *Fleet) hostStatus(i int, a *core.Allocation) HostStatus {
	st := &f.states[i]
	hs := HostStatus{
		Host:      i,
		State:     st.state,
		Reason:    st.reason,
		MeterLost: st.terminal,
		VMs:       append([]string(nil), f.perHost[i]...),
	}
	if st.state == HostQuarantined {
		hs.QuarantinedTicks = f.ticks - st.quarantinedAt
	}
	if a != nil {
		hs.HoldoverAgeTicks = a.HoldoverAgeTicks
		hs.RejectedSamples = a.RejectedSamples
		hs.MeasuredWatts = a.MeasuredPower
		hs.DynamicWatts = a.DynamicPower
		hs.Tier = a.Prov.Tier
	}
	return hs
}

// EnableAudit attaches one invariant auditor (see core.Auditor) to every
// host's estimator. onViolation (nil is fine) receives the host index
// alongside the violation; with Parallelism > 1 it may fire from worker
// goroutines concurrently, so it must be safe for concurrent use. Call
// between construction and stepping.
func (f *Fleet) EnableAudit(cfg core.AuditConfig, onViolation func(host int, v core.AuditViolation)) {
	for i, est := range f.estimators {
		host := i
		var cb func(core.AuditViolation)
		if onViolation != nil {
			cb = func(v core.AuditViolation) { onViolation(host, v) }
		}
		est.SetAuditor(core.NewAuditor(cfg, cb))
	}
}

// AuditConservation cross-checks a Tick's rollups against each other and
// returns one message per violated identity (nil when conserved):
// Σ PerVM = DynamicTotal, Σ PerTenant = Σ PerVM, each host's shares sum
// to its DynamicWatts, and every VM is either accounted or listed in
// Unaccounted with a quarantined host — exactly one of the two.
//
// It also audits the migration ledger: a VM listed by two hosts must have
// a Migrations entry inside its declared copy window (CopyTick in
// [1, CopyTicks]) naming exactly those hosts, and its PerVM total must
// equal the sum of the per-side components each accounted host's game
// attributed — energy counted once per metering host, never twice for the
// same host, never silently dropped.
//
// tol is the absolute slack in watts per comparison (<= 0 uses 1e-6,
// generous against float summation order but far below any real share).
func (f *Fleet) AuditConservation(t *Tick, tol float64) []string {
	if tol <= 0 {
		tol = 1e-6
	}
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	var sumVM float64
	for _, w := range t.PerVM {
		sumVM += w
	}
	if d := sumVM - t.DynamicTotal; d > tol || d < -tol {
		bad("sum(PerVM) = %g W, DynamicTotal = %g W (delta %g)", sumVM, t.DynamicTotal, d)
	}
	var sumTenant float64
	for _, w := range t.PerTenant {
		sumTenant += w
	}
	if d := sumTenant - sumVM; d > tol || d < -tol {
		bad("sum(PerTenant) = %g W, sum(PerVM) = %g W (delta %g)", sumTenant, sumVM, d)
	}

	unaccounted := make(map[string]bool, len(t.Unaccounted))
	for _, name := range t.Unaccounted {
		unaccounted[name] = true
	}

	// Migration ledger: window bounds and the per-VM component identity.
	migBy := make(map[string]MigrationStatus, len(t.Migrations))
	for _, ms := range t.Migrations {
		if _, dup := migBy[ms.Name]; dup {
			bad("VM %q has two migration ledger entries", ms.Name)
		}
		migBy[ms.Name] = ms
		if ms.CopyTick < 1 || ms.CopyTick > ms.CopyTicks {
			bad("migrating VM %q: copy tick %d outside declared window [1,%d]", ms.Name, ms.CopyTick, ms.CopyTicks)
		}
		var want float64
		sides := 0
		if ms.FromAccounted {
			want += ms.FromWatts
			sides++
		}
		if ms.ToAccounted {
			want += ms.ToWatts
			sides++
		}
		got, ok := t.PerVM[ms.Name]
		switch {
		case sides == 0:
			if ok {
				bad("migrating VM %q accounted with neither host accounting", ms.Name)
			}
			if !unaccounted[ms.Name] {
				bad("migrating VM %q: neither host accounting but not listed unaccounted", ms.Name)
			}
		case !ok:
			bad("migrating VM %q: %d host(s) accounting but absent from PerVM", ms.Name, sides)
		default:
			if d := got - want; d > tol || d < -tol {
				bad("migrating VM %q: PerVM = %g W, from+to components = %g W (delta %g)", ms.Name, got, want, d)
			}
		}
	}

	// A VM on two hosts' rosters outside a declared copy window is the
	// double-count the ledger exists to rule out.
	hostedBy := make(map[string]int)
	for _, hs := range t.Hosts {
		for _, name := range hs.VMs {
			hostedBy[name]++
		}
	}
	for name, n := range hostedBy {
		if n > 1 {
			if _, ok := migBy[name]; !ok {
				bad("VM %q hosted by %d hosts with no migration ledger entry", name, n)
			}
		}
	}

	for _, hs := range t.Hosts {
		var hostSum float64
		accounted := 0
		for _, name := range hs.VMs {
			if ms, mig := migBy[name]; mig {
				// Count this host's side component, not the combined PerVM.
				switch hs.Host {
				case ms.From:
					if ms.FromAccounted {
						hostSum += ms.FromWatts
						accounted++
					}
				case ms.To:
					if ms.ToAccounted {
						hostSum += ms.ToWatts
						accounted++
					}
				default:
					bad("migrating VM %q hosted by host %d, outside its %d->%d window", name, hs.Host, ms.From, ms.To)
				}
				continue
			}
			if w, ok := t.PerVM[name]; ok {
				hostSum += w
				accounted++
			}
			inPerVM := !unaccounted[name]
			if _, ok := t.PerVM[name]; ok != inPerVM {
				bad("VM %q: accounted=%v but unaccounted=%v", name, ok, unaccounted[name])
			}
		}
		if hs.State == HostQuarantined {
			if accounted != 0 {
				bad("host %d quarantined but %d of its VMs accounted", hs.Host, accounted)
			}
			continue
		}
		if accounted != len(hs.VMs) {
			bad("host %d %s but only %d/%d VMs accounted", hs.Host, hs.State, accounted, len(hs.VMs))
		}
		if d := hostSum - hs.DynamicWatts; d > tol || d < -tol {
			bad("host %d: sum(shares) = %g W, DynamicWatts = %g W (delta %g)", hs.Host, hostSum, hs.DynamicWatts, d)
		}
	}
	return problems
}

// Step advances every host one tick and aggregates the allocations.
//
// Hosts are advanced and estimated by a bounded worker pool
// (Config.Parallelism), but the aggregation runs after all workers have
// finished, in fixed host order, so every rollup sum — and therefore the
// whole Tick — is bit-for-bit identical at any worker count.
//
// A host whose estimator fails does not abort the fleet tick: the host is
// quarantined (its VMs land in Tick.Unaccounted), and every
// QuarantineProbeTicks the fleet re-tries it; a successful probe readmits
// the host with that tick's allocation. Degraded (holdover/fallback)
// allocations are counted in the rollups and flagged per host.
//
// Step must be driven from one goroutine; the returned error is always
// nil today and reserved for conditions that prevent a tick entirely.
func (f *Fleet) Step() (*Tick, error) {
	f.ticks++
	f.processLifecycle()
	n := len(f.hosts)

	// Decide, from pre-fan-out state, which hosts to estimate: every
	// healthy/degraded host, plus quarantined hosts on their probe tick.
	estimate := make([]bool, n)
	for i := range f.states {
		st := &f.states[i]
		if st.state != HostQuarantined {
			estimate[i] = true
			continue
		}
		if f.probeEvery > 0 && f.ticks-st.lastProbe >= f.probeEvery {
			estimate[i] = true
			st.lastProbe = f.ticks
		}
	}

	// Fan out: advance + estimate each host. Hosts are disjoint, so
	// workers never share mutable state; results land at distinct
	// indices.
	allocs := make([]*core.Allocation, n)
	errs := make([]error, n)
	step := func(i int) {
		f.hosts[i].Advance(1)
		if estimate[i] {
			allocs[i], errs[i] = f.estimators[i].EstimateTick()
		}
	}
	if par := min(f.par, n); par <= 1 {
		for i := 0; i < n; i++ {
			step(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					step(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Fan in: state transitions and rollups in fixed host order.
	tick := &Tick{
		Tick:               f.ticks,
		PerVM:              make(map[string]float64, len(f.byName)),
		PerTenant:          make(map[string]float64),
		Hosts:              make([]HostStatus, n),
		IdleUnmeteredHosts: f.emptyHosts,
	}
	for i := 0; i < n; i++ {
		st := &f.states[i]
		switch {
		case errs[i] != nil:
			if st.state != HostQuarantined {
				st.state = HostQuarantined
				st.quarantinedAt = f.ticks
				st.lastProbe = f.ticks
				f.quarantines++
				tick.NewQuarantines++
				// Quarantine abandons any drain in progress: the fault
				// ladder outranks operator intent.
				delete(f.drains, i)
			}
			st.reason = errs[i].Error()
			st.terminal = core.Terminal(errs[i])
		case allocs[i] != nil:
			if st.state == HostQuarantined {
				f.readmits++
				tick.Readmits++
			}
			switch st.state {
			case HostDraining, HostDrained:
				// Drain is maintenance, not degradation: the host keeps its
				// drain state (and reason) while it estimates cleanly.
				st.terminal = false
			default:
				if allocs[i].Degraded {
					st.state = HostDegraded
					st.reason = allocs[i].DegradedReason
				} else {
					st.state = HostHealthy
					st.reason = ""
				}
				st.terminal = false
			}
		default:
			// Quarantined and not probed this tick: state carries over.
		}
		tick.Hosts[i] = f.hostStatus(i, allocs[i])
		if a := allocs[i]; a != nil {
			tick.MeasuredTotal += a.MeasuredPower
			tick.DynamicTotal += a.DynamicPower
		}
		switch st.state {
		case HostDegraded:
			tick.DegradedHosts++
		case HostQuarantined:
			tick.QuarantinedHosts++
		case HostDraining:
			tick.DrainingHosts++
		case HostDrained:
			tick.DrainedHosts++
		}
	}
	tick.Degraded = tick.DegradedHosts+tick.QuarantinedHosts > 0

	for _, name := range f.order {
		p := f.byName[name]
		if p.removed {
			continue
		}
		var w, degW float64
		accounted, degraded := false, false
		if a := allocs[p.host]; a != nil {
			cw := a.PerVM[int(p.local)]
			w += cw
			accounted = true
			if a.Degraded {
				degraded = true
				degW += cw
			}
		}
		if m := p.mig; m != nil {
			// Copy window: the VM also draws on the destination this tick,
			// and that side's game attributes its share. The ledger entry
			// carries both components so auditors can prove PerVM counts
			// each host exactly once.
			ms := MigrationStatus{
				Name: name, From: m.from, To: m.to,
				CopyTick: f.ticks - m.startTick, CopyTicks: m.copyTicks,
			}
			if a := allocs[m.from]; a != nil {
				ms.FromWatts = a.PerVM[int(m.fromLocal)]
				ms.FromAccounted = true
			}
			if a := allocs[m.to]; a != nil {
				cw := a.PerVM[int(m.toLocal)]
				ms.ToWatts = cw
				ms.ToAccounted = true
				w += cw
				accounted = true
				if a.Degraded {
					degraded = true
					degW += cw
				}
			}
			tick.Migrations = append(tick.Migrations, ms)
		}
		if !accounted {
			tick.Unaccounted = append(tick.Unaccounted, name)
			continue
		}
		tick.PerVM[name] = w
		tick.PerTenant[p.req.Tenant] += w
		// Watt-seconds = watts × the real tick interval; "+= w" would bake
		// in a 1 Hz assumption and mis-bill any other cadence.
		f.energyWs[name] += w * f.dt
		if degraded {
			f.degradedWs[name] += degW * f.dt
		}
	}
	f.elapsed += f.dt
	tick.Events = f.pending
	f.pending = nil
	return tick, nil
}

// Run performs n steps, invoking fn after each (false stops early).
func (f *Fleet) Run(n int, fn func(*Tick) bool) error {
	for i := 0; i < n; i++ {
		tick, err := f.Step()
		if err != nil {
			return err
		}
		if fn != nil && !fn(tick) {
			return nil
		}
	}
	return nil
}

// ElapsedSeconds is the total wall-clock time integrated into the energy
// rollups so far: ticks × TickInterval, as real seconds.
func (f *Fleet) ElapsedSeconds() float64 { return f.elapsed }

// EnergyWhByTenant returns cumulative attributed energy per tenant in
// watt-hours since the fleet started stepping, including energy from
// degraded ticks (see DegradedEnergyWhByTenant for that slice alone).
func (f *Fleet) EnergyWhByTenant() map[string]float64 {
	out := make(map[string]float64)
	// Accumulate in admission order, not map order: float sums must be
	// bit-identical run to run for the determinism guarantees to hold.
	for _, name := range f.order {
		if ws, ok := f.energyWs[name]; ok {
			out[f.byName[name].req.Tenant] += ws / 3600
		}
	}
	return out
}

// DegradedEnergyWhByTenant returns the portion of each tenant's
// cumulative energy that was integrated from degraded (holdover or
// fallback) host ticks — the watt-hours a bill might exclude or annotate
// as reduced-confidence. Tenants with no degraded energy are absent.
func (f *Fleet) DegradedEnergyWhByTenant() map[string]float64 {
	out := make(map[string]float64)
	for _, name := range f.order {
		if ws, ok := f.degradedWs[name]; ok {
			out[f.byName[name].req.Tenant] += ws / 3600
		}
	}
	return out
}
