// Package fleet scales the power accounting from one machine to a
// datacenter: it places VMs onto a pool of independently metered hosts
// (first-fit decreasing by vCPU, the classic consolidation heuristic the
// paper's Sec. I datacenter context implies), runs one estimation
// pipeline per host, and rolls allocations up per VM and per tenant. The
// per-host games are independent, so by the Additivity axiom a tenant's
// datacenter-wide power is simply the sum of its VMs' per-host Shapley
// shares.
//
// Step is fault-isolated: each host's estimator carries its own
// degradation ladder (see internal/core), and a host whose estimator
// turns terminal is quarantined — its VMs reported as unaccounted, the
// rest of the fleet still ticking — and periodically probed for
// readmission. Hosts are advanced and estimated concurrently by a
// bounded worker pool, but every rollup sum is accumulated in fixed host
// order after the fan-in, so a Tick is a deterministic function of the
// fleet's seed and fault schedule at any Parallelism.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// VMRequest asks for one VM in the fleet.
type VMRequest struct {
	// Name is the VM's fleet-unique name.
	Name string
	// Tenant owns the VM for billing rollups.
	Tenant string
	// Type is the Table IV catalog type.
	Type vm.TypeID
	// Workload is a benchmark name from the workload catalog (empty =
	// idle until bound later).
	Workload string
	// WorkloadSeed seeds the benchmark.
	WorkloadSeed int64
}

// Config describes the host pool.
type Config struct {
	// Hosts is the number of physical machines. Default 1.
	Hosts int
	// Profile is the machine profile (default XeonProfile).
	Profile machine.Profile
	// Policy is the vCPU scheduler policy (default Pack).
	Policy machine.SchedulerPolicy
	// Seed drives meters, collection workloads and benchmarks.
	Seed int64
	// MeterNoise is each wall meter's Gaussian sigma in watts, following
	// the meter.SimOptions convention: 0 is a noiseless meter, negative
	// is rejected by New. (Earlier revisions defaulted 0 to 0.25 W and
	// used negative as the disable sentinel, which made zero noise
	// inexpressible; callers that want the old default now say 0.25.)
	MeterNoise float64
	// CalibrationTicks is the per-combination offline sample count.
	CalibrationTicks int
	// Parallelism bounds the worker pool Step fans hosts out to,
	// following the core.Config convention: 0 defaults to 1 (serial),
	// negative uses all cores (GOMAXPROCS), >= 2 uses that many workers.
	// Tick contents are bit-for-bit identical at any setting.
	Parallelism int
	// TickInterval is the wall-clock duration one Step covers; the energy
	// rollups integrate watts × interval per tick. 0 defaults to 1 s (the
	// historical cadence); negative is rejected.
	TickInterval time.Duration
	// QuarantineProbeTicks is the readmission probe cadence: a
	// quarantined host is re-estimated every this many ticks (a probe
	// that succeeds readmits the host that same tick). 0 defaults to 5;
	// negative disables probing (quarantine is then permanent).
	QuarantineProbeTicks int
	// MeterRetries, HoldoverTicks, StuckThreshold and Fallback are
	// forwarded to every host's core.Config (zero values take the core
	// defaults), so the whole pool shares one degradation ladder.
	MeterRetries   int
	HoldoverTicks  int
	StuckThreshold int
	Fallback       core.FallbackPolicy
}

// HostState is one host's place in the fleet degradation ladder.
type HostState int

const (
	// HostHealthy means the last tick produced a fresh allocation.
	HostHealthy HostState = iota
	// HostDegraded means the last tick produced a degraded allocation
	// (holdover or fallback) — still counted in the rollups.
	HostDegraded
	// HostQuarantined means the host's estimator returned an error (it
	// exhausted its degradation ladder); its VMs are unaccounted until a
	// readmission probe succeeds.
	HostQuarantined
)

// String names the state ("healthy", "degraded", "quarantined").
func (s HostState) String() string {
	switch s {
	case HostHealthy:
		return "healthy"
	case HostDegraded:
		return "degraded"
	case HostQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// HostStatus is one host's view of a fleet tick.
type HostStatus struct {
	// Host is the index into the fleet's non-empty host list (the same
	// index Placement reports).
	Host int
	// State is the host's place in the degradation ladder after this tick.
	State HostState
	// Reason explains a degraded or quarantined state ("" when healthy).
	Reason string
	// MeterLost marks a quarantine caused by a ladder-terminal error
	// (core.Terminal), as opposed to an incidental estimation failure.
	MeterLost bool
	// QuarantinedTicks is how long the host has been quarantined
	// (0 outside quarantine).
	QuarantinedTicks int
	// HoldoverAgeTicks and RejectedSamples mirror the host allocation's
	// degradation bookkeeping (zero for quarantined hosts, which have no
	// allocation).
	HoldoverAgeTicks int
	RejectedSamples  int
	// MeasuredWatts and DynamicWatts are the host's contribution to the
	// fleet totals this tick (zero for quarantined hosts).
	MeasuredWatts float64
	DynamicWatts  float64
	// Tier is the solver tier that produced the host's allocation
	// (core.TierMaskExact and friends; "" for quarantined hosts).
	Tier string
	// VMs are the names placed on this host, in request order.
	VMs []string
}

// placement records where a VM landed.
type placement struct {
	host  int
	local vm.ID
	req   VMRequest
}

// hostRuntime is the fleet's per-host degradation bookkeeping.
type hostRuntime struct {
	state         HostState
	reason        string
	terminal      bool
	quarantinedAt int // fleet tick the quarantine began
	lastProbe     int // fleet tick of the last readmission attempt
}

// Fleet is a pool of accounted hosts.
type Fleet struct {
	hosts      []*hypervisor.Host
	estimators []*core.Estimator
	meters     []meter.Meter
	perHost    [][]string // VM names per host, request order
	byName     map[string]placement
	order      []string

	par        int
	probeEvery int
	emptyHosts int

	// Mutable stepping state. Step must be driven from a single
	// goroutine (it advances host clocks); the worker pool inside Step
	// only ever touches disjoint hosts.
	ticks       int
	states      []hostRuntime
	quarantines int
	readmits    int
	dt          float64 // seconds one Step covers
	elapsed     float64 // seconds integrated so far
	energyWs    map[string]float64
	degradedWs  map[string]float64
}

// Tick is one datacenter-wide estimation step.
type Tick struct {
	// Tick is the fleet step counter (1 for the first Step).
	Tick int
	// PerVM is each accounted VM's attributed dynamic power, keyed by
	// name. VMs on quarantined hosts are absent (see Unaccounted), not
	// zero — a zero would be indistinguishable from an idle VM.
	PerVM map[string]float64
	// PerTenant sums PerVM by tenant.
	PerTenant map[string]float64
	// MeasuredTotal is the sum of the meter readings of the hosts that
	// produced an allocation this tick. Quarantined hosts contribute
	// nothing (their meters are lost), and empty hosts are never metered
	// at all — their idle draw is invisible to the fleet; see
	// IdleUnmeteredHosts.
	MeasuredTotal float64
	// DynamicTotal is the idle-deducted sum the accounted shares add up to.
	DynamicTotal float64
	// Degraded is true when any host is degraded or quarantined this
	// tick. Energy integrated from degraded ticks is tracked separately
	// (DegradedEnergyWhByTenant) so bills can exclude or annotate it.
	Degraded bool
	// DegradedHosts and QuarantinedHosts count hosts by state.
	DegradedHosts    int
	QuarantinedHosts int
	// NewQuarantines and Readmits count state transitions on this tick.
	NewQuarantines int
	Readmits       int
	// IdleUnmeteredHosts is the number of empty hosts in the pool: they
	// draw idle power but host no game and no meter, so that draw is not
	// part of MeasuredTotal.
	IdleUnmeteredHosts int
	// Unaccounted lists the VMs (request order) on quarantined hosts —
	// present in the fleet but with no allocation this tick.
	Unaccounted []string
	// Hosts is every non-empty host's status this tick, in host order.
	Hosts []HostStatus
}

// New builds the fleet: places the requested VMs, constructs one host +
// meter + estimator per machine, and binds workloads. VMs start running.
func New(cfg Config, reqs []VMRequest) (*Fleet, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = machine.XeonProfile()
	}
	if cfg.MeterNoise < 0 {
		return nil, fmt.Errorf("fleet: negative meter noise %g (0 means noiseless)", cfg.MeterNoise)
	}
	switch {
	case cfg.Parallelism == 0:
		cfg.Parallelism = 1
	case cfg.Parallelism < 0:
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.QuarantineProbeTicks == 0 {
		cfg.QuarantineProbeTicks = 5
	}
	if cfg.TickInterval < 0 {
		return nil, fmt.Errorf("fleet: negative tick interval %v", cfg.TickInterval)
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = time.Second
	}
	if len(reqs) == 0 {
		return nil, errors.New("fleet: no VM requests")
	}
	catalog := vm.PaperCatalog()

	// Validate requests and compute sizes.
	seen := make(map[string]bool, len(reqs))
	type sized struct {
		req   VMRequest
		vcpus int
	}
	items := make([]sized, 0, len(reqs))
	for _, r := range reqs {
		if r.Name == "" {
			return nil, errors.New("fleet: VM request with empty name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("fleet: duplicate VM name %q", r.Name)
		}
		seen[r.Name] = true
		t, err := catalog.ByID(r.Type)
		if err != nil {
			return nil, fmt.Errorf("fleet: VM %q: %w", r.Name, err)
		}
		items = append(items, sized{req: r, vcpus: t.VCPUs})
	}

	// First-fit decreasing placement by vCPUs (ties broken by name so
	// placement is deterministic).
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].vcpus != items[j].vcpus {
			return items[i].vcpus > items[j].vcpus
		}
		return items[i].req.Name < items[j].req.Name
	})
	capacity := cfg.Profile.LogicalCores()
	free := make([]int, cfg.Hosts)
	for i := range free {
		free[i] = capacity
	}
	perHost := make([][]VMRequest, cfg.Hosts)
	for _, it := range items {
		placed := false
		for h := 0; h < cfg.Hosts; h++ {
			if free[h] >= it.vcpus {
				perHost[h] = append(perHost[h], it.req)
				free[h] -= it.vcpus
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: VM %q needs %d vCPUs, no host has room",
				machine.ErrOvercommit, it.req.Name, it.vcpus)
		}
	}

	f := &Fleet{
		byName:     make(map[string]placement, len(reqs)),
		energyWs:   make(map[string]float64, len(reqs)),
		degradedWs: make(map[string]float64),
		par:        cfg.Parallelism,
		probeEvery: cfg.QuarantineProbeTicks,
		dt:         cfg.TickInterval.Seconds(),
	}
	for h := 0; h < cfg.Hosts; h++ {
		if len(perHost[h]) == 0 {
			// Empty hosts draw idle power but host no game and no meter;
			// the fleet reports them via Tick.IdleUnmeteredHosts.
			f.emptyHosts++
			continue
		}
		mach, err := machine.New(cfg.Profile, cfg.Policy)
		if err != nil {
			return nil, err
		}
		vms := make([]vm.VM, len(perHost[h]))
		for i, r := range perHost[h] {
			vms[i] = vm.VM{Name: r.Name, Type: r.Type}
		}
		set, err := vm.NewSet(catalog, vms)
		if err != nil {
			return nil, err
		}
		host, err := hypervisor.NewHost(mach, set)
		if err != nil {
			return nil, err
		}
		m, err := meter.NewSim(host.PowerSource(), meter.SimOptions{
			NoiseStdDev: cfg.MeterNoise,
			Resolution:  0.1,
			Seed:        cfg.Seed + int64(h)*7919,
		})
		if err != nil {
			return nil, err
		}
		est, err := core.New(host, m, core.Config{
			OfflineTicksPerCombo: cfg.CalibrationTicks,
			Seed:                 cfg.Seed + int64(h),
			MeterRetries:         cfg.MeterRetries,
			HoldoverTicks:        cfg.HoldoverTicks,
			StuckThreshold:       cfg.StuckThreshold,
			Fallback:             cfg.Fallback,
		})
		if err != nil {
			return nil, err
		}
		hostIdx := len(f.hosts)
		f.hosts = append(f.hosts, host)
		f.estimators = append(f.estimators, est)
		f.meters = append(f.meters, m)
		names := make([]string, len(perHost[h]))
		for i, r := range perHost[h] {
			f.byName[r.Name] = placement{host: hostIdx, local: vm.ID(i), req: r}
			names[i] = r.Name
		}
		f.perHost = append(f.perHost, names)
	}
	f.states = make([]hostRuntime, len(f.hosts))
	// Stable reporting order: request order.
	for _, r := range reqs {
		f.order = append(f.order, r.Name)
	}
	return f, nil
}

// Hosts returns the number of non-empty hosts in the pool.
func (f *Fleet) Hosts() int { return len(f.hosts) }

// EmptyHosts returns the number of hosts that received no VMs: they draw
// idle power but are not metered or accounted.
func (f *Fleet) EmptyHosts() int { return f.emptyHosts }

// Ticks returns the number of Steps taken so far.
func (f *Fleet) Ticks() int { return f.ticks }

// Transitions returns the cumulative quarantine and readmission counts.
func (f *Fleet) Transitions() (quarantines, readmits int) {
	return f.quarantines, f.readmits
}

// VMNames returns every VM name in request order.
func (f *Fleet) VMNames() []string { return append([]string(nil), f.order...) }

// Tenants returns the sorted distinct tenant names.
func (f *Fleet) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, name := range f.order {
		t := f.byName[name].req.Tenant
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Placement returns each VM's host index.
func (f *Fleet) Placement() map[string]int {
	out := make(map[string]int, len(f.byName))
	for name, p := range f.byName {
		out[name] = p.host
	}
	return out
}

// States returns every non-empty host's current state (as of the last
// Step; all healthy before the first). Not safe concurrently with Step.
func (f *Fleet) States() []HostStatus {
	out := make([]HostStatus, len(f.states))
	for i := range f.states {
		out[i] = f.hostStatus(i, nil)
	}
	return out
}

// InjectFaults wraps host h's meter in the deterministic seeded fault
// injector (package faults) and returns the injector so the driving loop
// can arm it and advance its episode clock (NextTick once per fleet
// Step). Call between construction and stepping, never concurrently with
// Step; the injector starts disarmed, so Calibrate still sees the clean
// meter.
func (f *Fleet) InjectFaults(h int, opts faults.Options) (*faults.Meter, error) {
	if h < 0 || h >= len(f.hosts) {
		return nil, fmt.Errorf("fleet: host %d out of range [0,%d)", h, len(f.hosts))
	}
	fm, err := faults.Wrap(f.meters[h], opts)
	if err != nil {
		return nil, err
	}
	if err := f.estimators[h].SetMeter(fm); err != nil {
		return nil, err
	}
	f.meters[h] = fm
	return fm, nil
}

// Calibrate runs the offline collection phase on every host.
func (f *Fleet) Calibrate() error {
	for i, est := range f.estimators {
		if err := est.CollectOffline(); err != nil {
			return fmt.Errorf("fleet: host %d: %w", i, err)
		}
	}
	// Bind workloads and start everything.
	for _, name := range f.order {
		p := f.byName[name]
		if p.req.Workload == "" {
			continue
		}
		gen, err := workload.ByName(p.req.Workload, p.req.WorkloadSeed)
		if err != nil {
			return fmt.Errorf("fleet: VM %q: %w", name, err)
		}
		if err := f.hosts[p.host].Attach(p.local, gen); err != nil {
			return err
		}
	}
	for _, host := range f.hosts {
		host.SetCoalition(vm.GrandCoalition(host.Set().Len()))
	}
	return nil
}

// hostStatus builds host i's status view, folding in its allocation (nil
// for quarantined or unprobed hosts).
func (f *Fleet) hostStatus(i int, a *core.Allocation) HostStatus {
	st := &f.states[i]
	hs := HostStatus{
		Host:      i,
		State:     st.state,
		Reason:    st.reason,
		MeterLost: st.terminal,
		VMs:       append([]string(nil), f.perHost[i]...),
	}
	if st.state == HostQuarantined {
		hs.QuarantinedTicks = f.ticks - st.quarantinedAt
	}
	if a != nil {
		hs.HoldoverAgeTicks = a.HoldoverAgeTicks
		hs.RejectedSamples = a.RejectedSamples
		hs.MeasuredWatts = a.MeasuredPower
		hs.DynamicWatts = a.DynamicPower
		hs.Tier = a.Prov.Tier
	}
	return hs
}

// EnableAudit attaches one invariant auditor (see core.Auditor) to every
// host's estimator. onViolation (nil is fine) receives the host index
// alongside the violation; with Parallelism > 1 it may fire from worker
// goroutines concurrently, so it must be safe for concurrent use. Call
// between construction and stepping.
func (f *Fleet) EnableAudit(cfg core.AuditConfig, onViolation func(host int, v core.AuditViolation)) {
	for i, est := range f.estimators {
		host := i
		var cb func(core.AuditViolation)
		if onViolation != nil {
			cb = func(v core.AuditViolation) { onViolation(host, v) }
		}
		est.SetAuditor(core.NewAuditor(cfg, cb))
	}
}

// AuditConservation cross-checks a Tick's rollups against each other and
// returns one message per violated identity (nil when conserved):
// Σ PerVM = DynamicTotal, Σ PerTenant = Σ PerVM, each host's shares sum
// to its DynamicWatts, and every VM is either accounted or listed in
// Unaccounted with a quarantined host — exactly one of the two. tol is
// the absolute slack in watts per comparison (<= 0 uses 1e-6, generous
// against float summation order but far below any real share).
func (f *Fleet) AuditConservation(t *Tick, tol float64) []string {
	if tol <= 0 {
		tol = 1e-6
	}
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	var sumVM float64
	for _, w := range t.PerVM {
		sumVM += w
	}
	if d := sumVM - t.DynamicTotal; d > tol || d < -tol {
		bad("sum(PerVM) = %g W, DynamicTotal = %g W (delta %g)", sumVM, t.DynamicTotal, d)
	}
	var sumTenant float64
	for _, w := range t.PerTenant {
		sumTenant += w
	}
	if d := sumTenant - sumVM; d > tol || d < -tol {
		bad("sum(PerTenant) = %g W, sum(PerVM) = %g W (delta %g)", sumTenant, sumVM, d)
	}

	unaccounted := make(map[string]bool, len(t.Unaccounted))
	for _, name := range t.Unaccounted {
		unaccounted[name] = true
	}
	for _, hs := range t.Hosts {
		var hostSum float64
		accounted := 0
		for _, name := range hs.VMs {
			if w, ok := t.PerVM[name]; ok {
				hostSum += w
				accounted++
			}
			inPerVM := !unaccounted[name]
			if _, ok := t.PerVM[name]; ok != inPerVM {
				bad("VM %q: accounted=%v but unaccounted=%v", name, ok, unaccounted[name])
			}
		}
		if hs.State == HostQuarantined {
			if accounted != 0 {
				bad("host %d quarantined but %d of its VMs accounted", hs.Host, accounted)
			}
			continue
		}
		if accounted != len(hs.VMs) {
			bad("host %d %s but only %d/%d VMs accounted", hs.Host, hs.State, accounted, len(hs.VMs))
		}
		if d := hostSum - hs.DynamicWatts; d > tol || d < -tol {
			bad("host %d: sum(shares) = %g W, DynamicWatts = %g W (delta %g)", hs.Host, hostSum, hs.DynamicWatts, d)
		}
	}
	return problems
}

// Step advances every host one tick and aggregates the allocations.
//
// Hosts are advanced and estimated by a bounded worker pool
// (Config.Parallelism), but the aggregation runs after all workers have
// finished, in fixed host order, so every rollup sum — and therefore the
// whole Tick — is bit-for-bit identical at any worker count.
//
// A host whose estimator fails does not abort the fleet tick: the host is
// quarantined (its VMs land in Tick.Unaccounted), and every
// QuarantineProbeTicks the fleet re-tries it; a successful probe readmits
// the host with that tick's allocation. Degraded (holdover/fallback)
// allocations are counted in the rollups and flagged per host.
//
// Step must be driven from one goroutine; the returned error is always
// nil today and reserved for conditions that prevent a tick entirely.
func (f *Fleet) Step() (*Tick, error) {
	f.ticks++
	n := len(f.hosts)

	// Decide, from pre-fan-out state, which hosts to estimate: every
	// healthy/degraded host, plus quarantined hosts on their probe tick.
	estimate := make([]bool, n)
	for i := range f.states {
		st := &f.states[i]
		if st.state != HostQuarantined {
			estimate[i] = true
			continue
		}
		if f.probeEvery > 0 && f.ticks-st.lastProbe >= f.probeEvery {
			estimate[i] = true
			st.lastProbe = f.ticks
		}
	}

	// Fan out: advance + estimate each host. Hosts are disjoint, so
	// workers never share mutable state; results land at distinct
	// indices.
	allocs := make([]*core.Allocation, n)
	errs := make([]error, n)
	step := func(i int) {
		f.hosts[i].Advance(1)
		if estimate[i] {
			allocs[i], errs[i] = f.estimators[i].EstimateTick()
		}
	}
	if par := min(f.par, n); par <= 1 {
		for i := 0; i < n; i++ {
			step(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					step(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Fan in: state transitions and rollups in fixed host order.
	tick := &Tick{
		Tick:               f.ticks,
		PerVM:              make(map[string]float64, len(f.byName)),
		PerTenant:          make(map[string]float64),
		Hosts:              make([]HostStatus, n),
		IdleUnmeteredHosts: f.emptyHosts,
	}
	for i := 0; i < n; i++ {
		st := &f.states[i]
		switch {
		case errs[i] != nil:
			if st.state != HostQuarantined {
				st.state = HostQuarantined
				st.quarantinedAt = f.ticks
				st.lastProbe = f.ticks
				f.quarantines++
				tick.NewQuarantines++
			}
			st.reason = errs[i].Error()
			st.terminal = core.Terminal(errs[i])
		case allocs[i] != nil:
			if st.state == HostQuarantined {
				f.readmits++
				tick.Readmits++
			}
			if allocs[i].Degraded {
				st.state = HostDegraded
				st.reason = allocs[i].DegradedReason
			} else {
				st.state = HostHealthy
				st.reason = ""
			}
			st.terminal = false
		default:
			// Quarantined and not probed this tick: state carries over.
		}
		tick.Hosts[i] = f.hostStatus(i, allocs[i])
		if a := allocs[i]; a != nil {
			tick.MeasuredTotal += a.MeasuredPower
			tick.DynamicTotal += a.DynamicPower
		}
		switch st.state {
		case HostDegraded:
			tick.DegradedHosts++
		case HostQuarantined:
			tick.QuarantinedHosts++
		}
	}
	tick.Degraded = tick.DegradedHosts+tick.QuarantinedHosts > 0

	for _, name := range f.order {
		p := f.byName[name]
		a := allocs[p.host]
		if a == nil {
			tick.Unaccounted = append(tick.Unaccounted, name)
			continue
		}
		w := a.PerVM[int(p.local)]
		tick.PerVM[name] = w
		tick.PerTenant[p.req.Tenant] += w
		// Watt-seconds = watts × the real tick interval; "+= w" would bake
		// in a 1 Hz assumption and mis-bill any other cadence.
		f.energyWs[name] += w * f.dt
		if a.Degraded {
			f.degradedWs[name] += w * f.dt
		}
	}
	f.elapsed += f.dt
	return tick, nil
}

// Run performs n steps, invoking fn after each (false stops early).
func (f *Fleet) Run(n int, fn func(*Tick) bool) error {
	for i := 0; i < n; i++ {
		tick, err := f.Step()
		if err != nil {
			return err
		}
		if fn != nil && !fn(tick) {
			return nil
		}
	}
	return nil
}

// ElapsedSeconds is the total wall-clock time integrated into the energy
// rollups so far: ticks × TickInterval, as real seconds.
func (f *Fleet) ElapsedSeconds() float64 { return f.elapsed }

// EnergyWhByTenant returns cumulative attributed energy per tenant in
// watt-hours since the fleet started stepping, including energy from
// degraded ticks (see DegradedEnergyWhByTenant for that slice alone).
func (f *Fleet) EnergyWhByTenant() map[string]float64 {
	out := make(map[string]float64)
	for name, ws := range f.energyWs {
		out[f.byName[name].req.Tenant] += ws / 3600
	}
	return out
}

// DegradedEnergyWhByTenant returns the portion of each tenant's
// cumulative energy that was integrated from degraded (holdover or
// fallback) host ticks — the watt-hours a bill might exclude or annotate
// as reduced-confidence. Tenants with no degraded energy are absent.
func (f *Fleet) DegradedEnergyWhByTenant() map[string]float64 {
	out := make(map[string]float64)
	for name, ws := range f.degradedWs {
		out[f.byName[name].req.Tenant] += ws / 3600
	}
	return out
}
