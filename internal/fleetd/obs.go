package fleetd

import (
	"net/http"
	"strconv"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
	"vmpower/internal/shapley"
)

// endpoints is the daemon's HTTP surface, enumerated so the per-endpoint
// request metrics have a fixed, bounded label set.
var endpoints = []string{
	"/api/v1/status",
	"/api/v1/allocation",
	"/api/v1/energy",
	"/healthz",
	"/metrics",
	"/metrics.json",
}

// hostStates enumerates the fleet host states so the
// vmpower_fleet_hosts{state=...} gauge family is fixed at startup.
var hostStates = []fleet.HostState{fleet.HostHealthy, fleet.HostDegraded, fleet.HostQuarantined}

// serverObs bundles the fleet daemon's observability surface. All
// methods are nil-safe: an uninstrumented Server carries a nil
// *serverObs and pays one atomic load per tick/request.
type serverObs struct {
	reg      *obs.Registry
	log      *obs.Logger
	interval time.Duration

	ticks       *obs.Counter
	tickErrors  *obs.Counter
	degraded    *obs.Counter
	quarantines *obs.Counter
	readmits    *obs.Counter
	unaccounted *obs.Gauge
	lastTick    *obs.Gauge
	measured    *obs.Gauge
	dynamic     *obs.Gauge
	tickLat     *obs.Histogram
	hostsBy     map[fleet.HostState]*obs.Gauge
	tenantWatts map[string]*obs.Gauge
	hostWatts   map[int]*obs.Gauge

	http map[string]httpMetrics
}

type httpMetrics struct {
	reqs *obs.Counter
	lat  *obs.Histogram
}

// Instrument activates metrics and structured logging for the fleet
// daemon, and instruments the shapley and core packages on the same
// registry so one scrape covers every host's solver and worth-plan
// cache. Call it before Handler so
// /metrics and /metrics.json are mounted. interval is the expected Step
// cadence (the /healthz stall threshold is 3x it); <= 0 defaults to
// 1 s. Instrument(nil, ...) deactivates everything.
func (s *Server) Instrument(reg *obs.Registry, log *obs.Logger, interval time.Duration) {
	if reg == nil {
		s.telemetry.Store(nil)
		shapley.Instrument(nil)
		core.Instrument(nil)
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	tenants := s.f.Tenants()
	o := &serverObs{
		reg:      reg,
		log:      log,
		interval: interval,
		ticks:    reg.Counter("vmpower_fleet_ticks_total", "fleet estimation ticks completed"),
		tickErrors: reg.Counter("vmpower_fleet_tick_errors_total",
			"fleet estimation ticks that failed entirely"),
		degraded: reg.Counter("vmpower_fleet_degraded_ticks_total",
			"fleet ticks with at least one degraded or quarantined host"),
		quarantines: reg.Counter("vmpower_fleet_quarantines_total",
			"host transitions into quarantine"),
		readmits: reg.Counter("vmpower_fleet_readmits_total",
			"host readmissions after a successful quarantine probe"),
		unaccounted: reg.Gauge("vmpower_fleet_unaccounted_vms",
			"VMs on quarantined hosts at the last tick (no allocation)"),
		lastTick: reg.Gauge("vmpower_fleet_last_tick_timestamp_seconds",
			"unix time of the last fleet tick"),
		measured: reg.Gauge("vmpower_fleet_measured_watts",
			"summed meter readings across accounting hosts at the last tick"),
		dynamic: reg.Gauge("vmpower_fleet_dynamic_watts",
			"summed dynamic (above-idle) power across accounting hosts at the last tick"),
		tickLat: reg.Histogram("vmpower_fleet_tick_duration_seconds",
			"fleet tick latency (all hosts advanced and estimated)", obs.DefDurationBuckets),
		hostsBy:     make(map[fleet.HostState]*obs.Gauge, len(hostStates)),
		tenantWatts: make(map[string]*obs.Gauge, len(tenants)),
		hostWatts:   make(map[int]*obs.Gauge, s.f.Hosts()),
		http:        make(map[string]httpMetrics, len(endpoints)),
	}
	for _, st := range hostStates {
		o.hostsBy[st] = reg.Gauge("vmpower_fleet_hosts",
			"hosts by degradation state at the last tick", obs.L("state", st.String()))
	}
	for _, tenant := range tenants {
		o.tenantWatts[tenant] = reg.Gauge("vmpower_fleet_tenant_watts",
			"per-tenant attributed power at the last tick", obs.L("tenant", tenant))
	}
	for _, hs := range s.f.States() {
		o.hostWatts[hs.Host] = reg.Gauge("vmpower_fleet_host_measured_watts",
			"per-host meter reading at the last tick (0 while quarantined)",
			obs.L("host", strconv.Itoa(hs.Host)))
	}
	for _, p := range endpoints {
		o.http[p] = httpMetrics{
			reqs: reg.Counter("vmpower_http_requests_total",
				"HTTP requests served", obs.L("path", p)),
			lat: reg.Histogram("vmpower_http_request_duration_seconds",
				"HTTP request latency", obs.DefDurationBuckets, obs.L("path", p)),
		}
	}
	shapley.Instrument(reg)
	core.Instrument(reg)
	s.telemetry.Store(o)
}

// noteTick publishes the rollup and per-host gauges of a completed
// fleet tick and emits warn lines for degraded/quarantined hosts.
func (o *serverObs) noteTick(now time.Time, dur time.Duration, tick *fleet.Tick, wire *TickJSON) {
	if o == nil {
		return
	}
	o.ticks.Inc()
	o.tickLat.Observe(dur.Seconds())
	o.lastTick.Set(float64(now.UnixNano()) / 1e9)
	o.measured.Set(tick.MeasuredTotal)
	o.dynamic.Set(tick.DynamicTotal)
	o.unaccounted.Set(float64(len(tick.Unaccounted)))
	if tick.Degraded {
		o.degraded.Inc()
	}
	if tick.NewQuarantines > 0 {
		o.quarantines.Add(uint64(tick.NewQuarantines))
	}
	if tick.Readmits > 0 {
		o.readmits.Add(uint64(tick.Readmits))
	}
	counts := map[fleet.HostState]int{}
	for _, hs := range tick.Hosts {
		counts[hs.State]++
		o.hostWatts[hs.Host].Set(hs.MeasuredWatts)
		if hs.State != fleet.HostHealthy && o.log.Enabled(obs.LevelWarn) {
			o.log.Warn("host not healthy",
				"tick", tick.Tick,
				"host", hs.Host,
				"state", hs.State.String(),
				"reason", hs.Reason)
		}
	}
	for _, st := range hostStates {
		o.hostsBy[st].Set(float64(counts[st]))
	}
	for tenant, w := range wire.PerTenant {
		o.tenantWatts[tenant].Set(w)
	}
	// Tenants wholly on quarantined hosts drop out of PerTenant; zero
	// their gauges rather than freezing the last attributed value.
	for tenant, g := range o.tenantWatts {
		if _, ok := wire.PerTenant[tenant]; !ok {
			g.Set(0)
		}
	}
	if o.log.Enabled(obs.LevelDebug) {
		o.log.Debug("fleet tick",
			"tick", tick.Tick,
			"measured_watts", tick.MeasuredTotal,
			"dynamic_watts", tick.DynamicTotal,
			"degraded_hosts", tick.DegradedHosts,
			"quarantined_hosts", tick.QuarantinedHosts)
	}
}

func (o *serverObs) noteTickError(err error) {
	if o == nil {
		return
	}
	o.tickErrors.Inc()
	o.log.Error("fleet tick failed", "err", err)
}

// instrumented wraps an endpoint handler with the per-path request
// counter and latency histogram. Uninstrumented servers dispatch
// straight through (one atomic load, no time.Now).
func (s *Server) instrumented(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		o := s.telemetry.Load()
		if o == nil {
			h(w, r)
			return
		}
		start := time.Now()
		h(w, r)
		if hm, ok := o.http[path]; ok {
			hm.reqs.Inc()
			hm.lat.Observe(time.Since(start).Seconds())
		}
	}
}
