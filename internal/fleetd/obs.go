package fleetd

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/core"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
	"vmpower/internal/shapley"
)

// endpoints is the daemon's HTTP surface, enumerated so the per-endpoint
// request metrics have a fixed, bounded label set.
var endpoints = []string{
	"/api/v1/status",
	"/api/v1/allocation",
	"/api/v1/energy",
	"/api/v1/events",
	"/api/v1/scenario",
	"/debug/flight",
	"/healthz",
	"/metrics",
	"/metrics.json",
}

// hostStates enumerates the fleet host states so the
// vmpower_fleet_hosts{state=...} gauge family is fixed at startup.
var hostStates = []fleet.HostState{
	fleet.HostHealthy, fleet.HostDegraded, fleet.HostQuarantined,
	fleet.HostDraining, fleet.HostDrained,
}

// lifecycleTypes is the fixed journal vocabulary for roster/drain
// events, bounding the vmpower_fleet_lifecycle_events_total label set.
var lifecycleTypes = []string{
	fleet.EventPowerOn, fleet.EventPowerOff,
	fleet.EventHotplug, fleet.EventRemove,
	fleet.EventMigrateStart, fleet.EventMigrateFinish,
	fleet.EventDrainStart, fleet.EventDrainFinish, fleet.EventUndrain,
}

// serverObs bundles the fleet daemon's observability surface. All
// methods are nil-safe: an uninstrumented Server carries a nil
// *serverObs and pays one atomic load per tick/request.
type serverObs struct {
	reg      *obs.Registry
	log      *obs.Logger
	interval time.Duration

	ticks       *obs.Counter
	tickErrors  *obs.Counter
	encodeErrs  *obs.Counter
	degraded    *obs.Counter
	quarantines *obs.Counter
	readmits    *obs.Counter
	unaccounted *obs.Gauge
	lastTick    *obs.Gauge
	measured    *obs.Gauge
	dynamic     *obs.Gauge
	tickSkew    *obs.Gauge
	tickLat     *obs.Histogram
	hostsBy     map[fleet.HostState]*obs.Gauge
	tenantWatts map[string]*obs.Gauge
	hostWatts   map[int]*obs.Gauge

	// Fleet-level conservation audit counters (the per-host solver audit
	// uses core's vmpower_audit_* family on the same registry).
	fleetAuditChecks     *obs.Counter
	fleetAuditViolations *obs.Counter

	// Lifecycle surface: one counter per journal event type (fixed
	// vocabulary), plus the migration ledger gauges.
	lifecycle    map[string]*obs.Counter
	migActive    *obs.Gauge
	migCompleted *obs.Counter
	migAborted   *obs.Counter

	http map[string]httpMetrics

	// Provenance surface: the event journal, the flight recorder and the
	// most recent triggered dump.
	journal  *obs.Journal
	flight   *obs.FlightRecorder
	lastDump atomic.Pointer[obs.FlightDump]

	// dumpMu guards pendingDump: per-host audit callbacks may fire from
	// the fleet's worker goroutines when Parallelism > 1.
	dumpMu      sync.Mutex
	pendingDump string

	// Step-goroutine state (same single-driver contract as Server.Step):
	// per-host edge detection and the reusable flight-record scratch.
	order        []string // VM names, admission order (grows on hot-plug)
	prevStates   []fleet.HostState
	prevTiers    []string
	prevTickWall time.Time
	scratch      obs.FlightRecord
}

// armDump requests a flight dump after the current tick's record lands;
// the first trigger of a tick names the dump. Safe for concurrent use.
func (o *serverObs) armDump(reason string) {
	o.dumpMu.Lock()
	if o.pendingDump == "" {
		o.pendingDump = reason
	}
	o.dumpMu.Unlock()
}

func (o *serverObs) takeDump() string {
	o.dumpMu.Lock()
	r := o.pendingDump
	o.pendingDump = ""
	o.dumpMu.Unlock()
	return r
}

type httpMetrics struct {
	reqs *obs.Counter
	lat  *obs.Histogram
}

// Instrument activates metrics and structured logging for the fleet
// daemon, and instruments the shapley and core packages on the same
// registry so one scrape covers every host's solver and worth-plan
// cache. Call it before Handler so
// /metrics and /metrics.json are mounted. interval is the expected Step
// cadence (the /healthz stall threshold is 3x it); <= 0 defaults to
// 1 s. Instrument(nil, ...) deactivates everything.
func (s *Server) Instrument(reg *obs.Registry, log *obs.Logger, interval time.Duration) {
	if reg == nil {
		s.telemetry.Store(nil)
		shapley.Instrument(nil)
		core.Instrument(nil)
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	tenants := s.f.Tenants()
	o := &serverObs{
		reg:      reg,
		log:      log,
		interval: interval,
		ticks:    reg.Counter("vmpower_fleet_ticks_total", "fleet estimation ticks completed"),
		tickErrors: reg.Counter("vmpower_fleet_tick_errors_total",
			"fleet estimation ticks that failed entirely"),
		encodeErrs: reg.Counter("vmpower_http_encode_errors_total",
			"HTTP response bodies that failed to encode or write"),
		degraded: reg.Counter("vmpower_fleet_degraded_ticks_total",
			"fleet ticks with at least one degraded or quarantined host"),
		quarantines: reg.Counter("vmpower_fleet_quarantines_total",
			"host transitions into quarantine"),
		readmits: reg.Counter("vmpower_fleet_readmits_total",
			"host readmissions after a successful quarantine probe"),
		unaccounted: reg.Gauge("vmpower_fleet_unaccounted_vms",
			"VMs on quarantined hosts at the last tick (no allocation)"),
		lastTick: reg.Gauge("vmpower_fleet_last_tick_timestamp_seconds",
			"unix time of the last fleet tick"),
		measured: reg.Gauge("vmpower_fleet_measured_watts",
			"summed meter readings across accounting hosts at the last tick"),
		dynamic: reg.Gauge("vmpower_fleet_dynamic_watts",
			"summed dynamic (above-idle) power across accounting hosts at the last tick"),
		tickSkew: reg.Gauge("vmpower_tick_skew_seconds",
			"last tick-to-tick wall spacing minus the configured interval"),
		tickLat: reg.Histogram("vmpower_fleet_tick_duration_seconds",
			"fleet tick latency (all hosts advanced and estimated)", obs.DefDurationBuckets),
		hostsBy:     make(map[fleet.HostState]*obs.Gauge, len(hostStates)),
		tenantWatts: make(map[string]*obs.Gauge, len(tenants)),
		hostWatts:   make(map[int]*obs.Gauge, s.f.Hosts()),
		fleetAuditChecks: reg.Counter("vmpower_fleet_audit_checks_total",
			"fleet ticks cross-checked for rollup energy conservation"),
		fleetAuditViolations: reg.Counter("vmpower_fleet_audit_violations_total",
			"fleet rollup conservation violations"),
		lifecycle: make(map[string]*obs.Counter, len(lifecycleTypes)),
		migActive: reg.Gauge("vmpower_fleet_migrations_active",
			"open live-migration copy windows at the last tick"),
		migCompleted: reg.Counter("vmpower_fleet_migrations_total",
			"live migrations closed", obs.L("result", "completed")),
		migAborted: reg.Counter("vmpower_fleet_migrations_total",
			"live migrations closed", obs.L("result", "aborted")),
		http:       make(map[string]httpMetrics, len(endpoints)),
		journal:    obs.NewJournal(0),
		flight:     obs.NewFlightRecorder(0, len(s.f.VMNames()), 0),
		order:      s.f.VMNames(),
		prevStates: make([]fleet.HostState, s.f.Hosts()),
		prevTiers:  make([]string, s.f.Hosts()),
	}
	cliutil.BuildInfoMetric(reg)
	nVMs := len(o.order)
	o.scratch.Names = make([]string, 0, nVMs)
	o.scratch.PerVMWatts = make([]float64, 0, nVMs)
	o.scratch.PerVMEnergyWs = make([]float64, 0, nVMs)
	for _, st := range hostStates {
		o.hostsBy[st] = reg.Gauge("vmpower_fleet_hosts",
			"hosts by degradation state at the last tick", obs.L("state", st.String()))
	}
	for _, typ := range lifecycleTypes {
		o.lifecycle[typ] = reg.Counter("vmpower_fleet_lifecycle_events_total",
			"lifecycle events journaled", obs.L("type", typ))
	}
	for _, tenant := range tenants {
		o.tenantWatts[tenant] = reg.Gauge("vmpower_fleet_tenant_watts",
			"per-tenant attributed power at the last tick", obs.L("tenant", tenant))
	}
	for _, hs := range s.f.States() {
		o.hostWatts[hs.Host] = reg.Gauge("vmpower_fleet_host_measured_watts",
			"per-host meter reading at the last tick (0 while quarantined)",
			obs.L("host", strconv.Itoa(hs.Host)))
	}
	for _, p := range endpoints {
		o.http[p] = httpMetrics{
			reqs: reg.Counter("vmpower_http_requests_total",
				"HTTP requests served", obs.L("path", p)),
			lat: reg.Histogram("vmpower_http_request_duration_seconds",
				"HTTP request latency", obs.DefDurationBuckets, obs.L("path", p)),
		}
	}
	shapley.Instrument(reg)
	core.Instrument(reg)
	s.telemetry.Store(o)
}

// noteTick publishes the rollup and per-host gauges of a completed
// fleet tick and emits warn lines for degraded/quarantined hosts.
func (o *serverObs) noteTick(now time.Time, dur time.Duration, tick *fleet.Tick, wire *TickJSON) {
	if o == nil {
		return
	}
	o.ticks.Inc()
	o.tickLat.Observe(dur.Seconds())
	o.lastTick.Set(float64(now.UnixNano()) / 1e9)
	o.measured.Set(tick.MeasuredTotal)
	o.dynamic.Set(tick.DynamicTotal)
	o.unaccounted.Set(float64(len(tick.Unaccounted)))
	if tick.Degraded {
		o.degraded.Inc()
	}
	if tick.NewQuarantines > 0 {
		o.quarantines.Add(uint64(tick.NewQuarantines))
	}
	if tick.Readmits > 0 {
		o.readmits.Add(uint64(tick.Readmits))
	}
	counts := map[fleet.HostState]int{}
	for _, hs := range tick.Hosts {
		counts[hs.State]++
		o.hostWatts[hs.Host].Set(hs.MeasuredWatts)
		// Draining/drained are planned maintenance states, not faults:
		// their lifecycle events already log the transition once.
		planned := hs.State == fleet.HostDraining || hs.State == fleet.HostDrained
		if hs.State != fleet.HostHealthy && !planned && o.log.Enabled(obs.LevelWarn) {
			o.log.Warn("host not healthy",
				"tick", tick.Tick,
				"host", hs.Host,
				"state", hs.State.String(),
				"reason", hs.Reason)
		}
	}
	for _, st := range hostStates {
		o.hostsBy[st].Set(float64(counts[st]))
	}
	for tenant, w := range wire.PerTenant {
		g, ok := o.tenantWatts[tenant]
		if !ok {
			// A hot-plugged VM can introduce a tenant the fleet had never
			// billed when Instrument ran; register its gauge on first sight
			// (noteTick runs on the Step goroutine only).
			g = o.reg.Gauge("vmpower_fleet_tenant_watts",
				"per-tenant attributed power at the last tick", obs.L("tenant", tenant))
			o.tenantWatts[tenant] = g
		}
		g.Set(w)
	}
	// Tenants wholly on quarantined hosts drop out of PerTenant; zero
	// their gauges rather than freezing the last attributed value.
	for tenant, g := range o.tenantWatts {
		if _, ok := wire.PerTenant[tenant]; !ok {
			g.Set(0)
		}
	}
	if o.log.Enabled(obs.LevelDebug) {
		o.log.Debug("fleet tick",
			"tick", tick.Tick,
			"measured_watts", tick.MeasuredTotal,
			"dynamic_watts", tick.DynamicTotal,
			"degraded_hosts", tick.DegradedHosts,
			"quarantined_hosts", tick.QuarantinedHosts)
	}
}

// noteProvenance runs the tick's provenance bookkeeping from the Step
// goroutine: the skew gauge, per-host transition events in fixed host
// order (exactly one event per state edge), per-host tier switches, the
// fleet rollup conservation audit, the fleet flight record, and — last,
// so the dump includes the triggering tick — any armed flight dump
// (quarantine, conservation violation, or a per-host solver audit
// violation relayed by EnableAudit).
func (o *serverObs) noteProvenance(s *Server, now time.Time, tick *fleet.Tick) {
	if o == nil {
		return
	}
	if !o.prevTickWall.IsZero() {
		o.tickSkew.Set(now.Sub(o.prevTickWall).Seconds() - o.interval.Seconds())
	}
	o.prevTickWall = now

	// Lifecycle events first: each fleet event is drained into exactly
	// one Tick, so appending the batch here gives the journal the
	// exactly-once guarantee for free. Hot-plugs also grow the flight
	// recorder's name order.
	for _, ev := range tick.Events {
		o.journal.Append(tick.Tick, ev.Type, ev.Subject, ev.Detail)
		if c, ok := o.lifecycle[ev.Type]; ok {
			c.Inc()
		}
		switch ev.Type {
		case fleet.EventHotplug:
			o.order = append(o.order, ev.Subject)
		case fleet.EventMigrateFinish:
			if strings.HasPrefix(ev.Detail, "aborted") {
				o.migAborted.Inc()
			} else {
				o.migCompleted.Inc()
			}
		}
	}
	o.migActive.Set(float64(len(tick.Migrations)))

	for i := range tick.Hosts {
		hs := &tick.Hosts[i]
		subject := "host:" + strconv.Itoa(hs.Host)
		if prev := o.prevStates[i]; hs.State != prev {
			switch {
			case hs.State == fleet.HostQuarantined:
				o.journal.Append(tick.Tick, "quarantine", subject, hs.Reason)
				o.armDump("quarantine: " + subject)
			case prev == fleet.HostQuarantined:
				o.journal.Append(tick.Tick, "readmit", subject, "readmitted "+hs.State.String())
			case hs.State == fleet.HostDraining, hs.State == fleet.HostDrained,
				prev == fleet.HostDraining, prev == fleet.HostDrained:
				// Drain transitions already journal as drain_start /
				// drain_finish / undrain lifecycle events; a state edge on
				// top would double-report them.
			case hs.State == fleet.HostDegraded:
				o.journal.Append(tick.Tick, "degraded", subject, hs.Reason)
			default:
				o.journal.Append(tick.Tick, "recovered", subject, "")
			}
			o.prevStates[i] = hs.State
		}
		if hs.Tier != "" && hs.Tier != o.prevTiers[i] {
			if o.prevTiers[i] != "" {
				o.journal.Append(tick.Tick, "tier_switch", subject, o.prevTiers[i]+" -> "+hs.Tier)
			}
			o.prevTiers[i] = hs.Tier
		}
	}

	// Rollup conservation: the per-host games are independent, so by
	// Additivity the fleet sums must tie out exactly (see
	// fleet.AuditConservation). A violation is an aggregation bug.
	o.fleetAuditChecks.Inc()
	for _, p := range s.f.AuditConservation(tick, 0) {
		o.fleetAuditViolations.Inc()
		o.journal.Append(tick.Tick, "audit_violation", "", p)
		o.log.Warn("fleet conservation violation", "tick", tick.Tick, "detail", p)
		o.armDump("fleet-audit")
	}

	// The fleet flight record lists only accounted VMs (Names aligned
	// with PerVMWatts); VMs on quarantined hosts are absent, exactly as
	// in Tick.PerVM. There is no fleet-wide snapshot, so States stays
	// empty, and the tier is per host — summarized when uniform.
	rec := &o.scratch
	tier, reason := "", ""
	rejected, holdover := 0, 0
	for i := range tick.Hosts {
		hs := &tick.Hosts[i]
		rejected += hs.RejectedSamples
		if hs.HoldoverAgeTicks > holdover {
			holdover = hs.HoldoverAgeTicks
		}
		if hs.Tier == "" {
			continue
		}
		switch tier {
		case "", hs.Tier:
			tier = hs.Tier
		default:
			tier = "mixed"
		}
		if hs.State != fleet.HostHealthy && reason == "" {
			reason = hs.State.String() + ": " + hs.Reason
		}
	}
	var sumVM float64
	rec.Names = rec.Names[:0]
	rec.PerVMWatts = rec.PerVMWatts[:0]
	rec.PerVMEnergyWs = rec.PerVMEnergyWs[:0]
	dt := o.interval.Seconds()
	for _, name := range o.order {
		w, ok := tick.PerVM[name]
		if !ok {
			continue
		}
		sumVM += w
		rec.Names = append(rec.Names, name)
		rec.PerVMWatts = append(rec.PerVMWatts, w)
		rec.PerVMEnergyWs = append(rec.PerVMEnergyWs, w*dt)
	}
	residual := sumVM - tick.DynamicTotal
	if residual < 0 {
		residual = -residual
	}
	rec.Tick = tick.Tick
	rec.UnixNanos = now.UnixNano()
	rec.MeasuredWatts = tick.MeasuredTotal
	rec.DynamicWatts = tick.DynamicTotal
	rec.Tier = tier
	rec.TierReason = ""
	rec.SymClasses = 0
	rec.DirtyVMs = 0
	rec.Evaluated = 0
	rec.Reused = 0
	rec.FullTabulation = false
	rec.Degraded = tick.Degraded
	rec.DegradedReason = reason
	rec.HoldoverAgeTicks = holdover
	rec.RejectedSamples = rejected
	rec.EfficiencyResidualWatts = residual
	rec.States = rec.States[:0]
	o.flight.Record(rec)

	if dumpReason := o.takeDump(); dumpReason != "" {
		o.lastDump.Store(o.flight.Dump(dumpReason))
		o.journal.Append(tick.Tick, "flight_dump", "", dumpReason)
		o.log.Warn("flight dump triggered", "tick", tick.Tick, "reason", dumpReason)
	}
}

func (o *serverObs) noteTickError(err error) {
	if o == nil {
		return
	}
	o.tickErrors.Inc()
	o.log.Error("fleet tick failed", "err", err)
}

// instrumented wraps an endpoint handler with the per-path request
// counter and latency histogram. Uninstrumented servers dispatch
// straight through (one atomic load, no time.Now).
func (s *Server) instrumented(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		o := s.telemetry.Load()
		if o == nil {
			h(w, r)
			return
		}
		start := time.Now()
		h(w, r)
		if hm, ok := o.http[path]; ok {
			hm.reqs.Inc()
			hm.lat.Observe(time.Since(start).Seconds())
		}
	}
}
