package fleetd

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"vmpower/internal/core"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
)

type edge struct{ typ, subject string }

// TestFleetChaosProvenanceSurface runs the fleet chaos schedule with the
// per-host auditor and the provenance surface on, and pins the
// acceptance claims: every quarantine/readmit/degradation transition is
// journaled exactly once per edge in sequence order, the conservation
// cross-check never fires, and the quarantine trigger leaves a dump
// behind on /debug/flight?trigger=last that excludes the quarantined
// host's VMs — exactly as the served rollup does.
func TestFleetChaosProvenanceSurface(t *testing.T) {
	const ticks = 120
	srv, fm, reg, _ := chaosRig(t, 1)
	srv.EnableAudit(core.AuditConfig{DeepEvery: 20})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Ground truth: per-host state edges, classified the way the journal
	// classifies them (entering quarantine wins; leaving it is a
	// readmission whatever the next state).
	prev := make([]fleet.HostState, 3)
	var want []edge
	var lastQuarantineTick *fleet.Tick
	for i := 0; i < ticks; i++ {
		tick, err := srv.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
		fm.NextTick()
		for h := range tick.Hosts {
			hs := &tick.Hosts[h]
			if hs.State == prev[h] {
				continue
			}
			subject := "host:" + strconv.Itoa(hs.Host)
			switch {
			case hs.State == fleet.HostQuarantined:
				want = append(want, edge{"quarantine", subject})
				lastQuarantineTick = tick
			case prev[h] == fleet.HostQuarantined:
				want = append(want, edge{"readmit", subject})
			case hs.State == fleet.HostDegraded:
				want = append(want, edge{"degraded", subject})
			default:
				want = append(want, edge{"recovered", subject})
			}
			prev[h] = hs.State
		}
	}
	if len(want) < 4 || lastQuarantineTick == nil {
		t.Fatalf("schedule produced %d edges (quarantine seen: %v); chaos too tame", len(want), lastQuarantineTick != nil)
	}

	// Conservation held on every rollup, and the per-host solver audit
	// stayed silent through degradation, holdover and fallback.
	if v := reg.Counter("vmpower_fleet_audit_checks_total", "").Value(); v != ticks {
		t.Fatalf("fleet audit checks = %d, want %d", v, ticks)
	}
	if v := reg.Counter("vmpower_fleet_audit_violations_total", "").Value(); v != 0 {
		t.Fatalf("fleet audit violations = %d, want 0", v)
	}
	if v := reg.Counter("vmpower_audit_checks_total", "").Value(); v == 0 {
		t.Fatal("per-host audits never ran")
	}
	if v := reg.Counter("vmpower_audit_violations_total", "").Value(); v != 0 {
		t.Fatalf("per-host audit violations = %d, want 0", v)
	}

	// The journal carries exactly the ground-truth edges, in order.
	var page obs.EventsJSON
	if code := getJSON(t, ts, "/api/v1/events?since=0", &page); code != 200 {
		t.Fatalf("events = %d", code)
	}
	var got []edge
	var lastSeq uint64
	sawDumpEvent := false
	for _, ev := range page.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("journal seqs not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "quarantine", "readmit", "degraded", "recovered":
			got = append(got, edge{ev.Type, ev.Subject})
		case "flight_dump":
			if strings.HasPrefix(ev.Detail, "quarantine: ") {
				sawDumpEvent = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("journal has %d transition events, fleet made %d:\n got %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: journal %+v, fleet %+v", i, got[i], want[i])
		}
	}
	if !sawDumpEvent {
		t.Fatal("quarantine never journaled a flight dump")
	}

	// The quarantine-triggered dump is retrievable, and its quarantine
	// tick accounts exactly the VMs the rollup did.
	var dump obs.FlightDump
	if code := getJSON(t, ts, "/debug/flight?trigger=last", &dump); code != 200 {
		t.Fatalf("triggered dump = %d", code)
	}
	if !strings.HasPrefix(dump.Reason, "quarantine: host:") {
		t.Fatalf("dump reason = %q", dump.Reason)
	}
	var qrec *obs.FlightRecord
	for i := range dump.Records {
		if dump.Records[i].Tick == lastQuarantineTick.Tick {
			qrec = &dump.Records[i]
		}
	}
	// The quarantine that armed the newest dump is the last one the run
	// produced, so its tick is still inside the 256-deep ring.
	if qrec == nil {
		t.Fatalf("quarantine tick %d not in the dump", lastQuarantineTick.Tick)
	}
	if len(qrec.Names) != len(lastQuarantineTick.PerVM) {
		t.Fatalf("dump lists %d VMs, rollup accounted %d", len(qrec.Names), len(lastQuarantineTick.PerVM))
	}
	for i, name := range qrec.Names {
		w, ok := lastQuarantineTick.PerVM[name]
		if !ok {
			t.Fatalf("dump lists %s, absent from the rollup", name)
		}
		if qrec.PerVMWatts[i] != w {
			t.Fatalf("dump φ(%s) = %g, rollup %g", name, qrec.PerVMWatts[i], w)
		}
	}

	// The per-host tier travels the wire.
	var st StatusJSON
	if code := getJSON(t, ts, "/api/v1/status", &st); code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, hs := range st.HostStates {
		if hs.State == fleet.HostHealthy.String() && hs.Tier == "" {
			t.Fatalf("healthy host %d has no tier on the wire: %+v", hs.Host, hs)
		}
	}
}
