package fleetd

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"vmpower/internal/faults"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
)

// chaosReqs fills hosts 0 and 1 with four xlarge VMs each (32 vCPUs, a
// full Xeon host under FFD) and puts one small VM on host 2, so host 1
// can be faulted while 0 and 2 stay fresh.
func chaosReqs() []fleet.VMRequest {
	reqs := []fleet.VMRequest{
		{Name: "ax1", Tenant: "acme", Type: 3},
		{Name: "ax2", Tenant: "acme", Type: 3},
		{Name: "ax3", Tenant: "acme", Type: 3},
		{Name: "ax4", Tenant: "acme", Type: 3},
		{Name: "bx1", Tenant: "bigco", Type: 3},
		{Name: "bx2", Tenant: "bigco", Type: 3},
		{Name: "bx3", Tenant: "bigco", Type: 3},
		{Name: "bx4", Tenant: "bigco", Type: 3},
		{Name: "cs1", Tenant: "edu-lab", Type: 0},
	}
	for i := range reqs {
		reqs[i].Workload = "gcc"
		reqs[i].WorkloadSeed = int64(100 + i)
	}
	return reqs
}

// chaosSchedule is the scripted fault load on host 1: light iid
// dropouts, a dropout burst far past the holdover bound (quarantine +
// readmission probe cycle) and a stuck-at episode (second cycle).
func chaosSchedule() faults.Options {
	return faults.Options{
		Seed:        99,
		DropoutProb: 0.2,
		Episodes: []faults.Episode{
			{Start: 10, Len: 30, Kind: faults.Dropout},
			{Start: 70, Len: 12, Kind: faults.StuckAt},
		},
	}
}

// chaosRig builds a calibrated 3-host fleet daemon with host 1 wrapped
// in the chaos injector, armed only after calibration the way
// cmd/fleetd wires it.
func chaosRig(t *testing.T, par int) (*Server, *faults.Meter, *obs.Registry, *fleet.Fleet) {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Hosts:                3,
		Seed:                 7,
		MeterNoise:           0.05,
		CalibrationTicks:     40,
		Parallelism:          par,
		QuarantineProbeTicks: 4,
		MeterRetries:         2,
		HoldoverTicks:        5,
		StuckThreshold:       4,
	}, chaosReqs())
	if err != nil {
		t.Fatal(err)
	}
	placed := f.Placement()
	for name, wantHost := range map[string]int{"ax1": 0, "bx1": 1, "cs1": 2} {
		if placed[name] != wantHost {
			t.Fatalf("placement: %s on host %d, want %d (full map %v)", name, placed[name], wantHost, placed)
		}
	}
	fm, err := f.InjectFaults(1, chaosSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.Instrument(reg, obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	fm.SetArmed(true)
	return srv, fm, reg, f
}

// TestFleetChaosSurvival is the PR's acceptance test: 120 ticks with
// host 1 under the scripted meter faults and concurrent HTTP scrapers.
// Every tick must still report allocations for the fresh hosts (0 and
// 2) with per-host Efficiency to 1e-9, host 1's degradation and
// quarantine must be flagged per host in the tick and on /healthz
// (degraded but 200), and the host must be readmitted after each
// episode ends.
func TestFleetChaosSurvival(t *testing.T) {
	const ticks = 120
	srv, fm, reg, f := chaosRig(t, 1)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Concurrent scrapers: the race detector checks the Step/handler
	// publication protocol while the chaos runs.
	done := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, p := range []string{"/healthz", "/metrics", "/api/v1/status", "/api/v1/allocation", "/api/v1/energy"} {
				resp, err := http.Get(ts.URL + p)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	var sawDegraded, sawQuarantine, sawReadmit, sawDegraded200 bool
	for i := 0; i < ticks; i++ {
		tick, err := srv.Step()
		if err != nil {
			t.Fatalf("tick %d: fleet step failed despite isolation: %v", i+1, err)
		}
		fm.NextTick()

		// Fresh hosts stay healthy and satisfy Efficiency every tick.
		for _, hs := range tick.Hosts {
			if hs.Host == 1 {
				continue
			}
			if hs.State != fleet.HostHealthy {
				t.Fatalf("tick %d: fresh host %d in state %s (%s)", i+1, hs.Host, hs.State, hs.Reason)
			}
			var sum float64
			for _, name := range hs.VMs {
				w, ok := tick.PerVM[name]
				if !ok {
					t.Fatalf("tick %d: %s missing from PerVM on fresh host %d", i+1, name, hs.Host)
				}
				sum += w
			}
			if math.Abs(sum-hs.DynamicWatts) > 1e-9 {
				t.Fatalf("tick %d: host %d efficiency violated: sum %g vs dyn %g",
					i+1, hs.Host, sum, hs.DynamicWatts)
			}
		}

		h1 := tick.Hosts[1]
		if h1.Host != 1 {
			t.Fatalf("tick %d: Hosts not in host order: %+v", i+1, tick.Hosts)
		}
		switch h1.State {
		case fleet.HostDegraded:
			sawDegraded = true
			if h1.Reason == "" {
				t.Fatalf("tick %d: degraded host without a reason", i+1)
			}
			if !tick.Degraded {
				t.Fatalf("tick %d: degraded host but tick not flagged", i+1)
			}
		case fleet.HostQuarantined:
			sawQuarantine = true
			if len(tick.Unaccounted) != 4 {
				t.Fatalf("tick %d: quarantined host 1 but Unaccounted = %v", i+1, tick.Unaccounted)
			}
			if _, ok := tick.PerVM["bx1"]; ok {
				t.Fatalf("tick %d: quarantined host's VM still allocated", i+1)
			}
			if _, ok := tick.PerTenant["bigco"]; ok {
				t.Fatalf("tick %d: quarantined host's tenant still in rollup", i+1)
			}
			// Quarantine must surface on /healthz as degraded-but-200
			// with a per-host reason.
			if !sawDegraded200 {
				var h HealthJSON
				if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
					t.Fatalf("tick %d: healthz = %d during partial quarantine, want 200", i+1, code)
				} else if h.Status != "degraded" {
					t.Fatalf("tick %d: healthz status %q, want degraded", i+1, h.Status)
				} else if reason, ok := h.HostReasons["1"]; !ok || reason == "" {
					t.Fatalf("tick %d: healthz missing host 1 reason: %+v", i+1, h)
				}
				sawDegraded200 = true
			}
		}
		if tick.Readmits > 0 {
			sawReadmit = true
		}
	}
	close(done)
	<-scraped

	if !sawDegraded || !sawQuarantine || !sawReadmit || !sawDegraded200 {
		t.Fatalf("chaos schedule under-exercised: degraded=%v quarantine=%v readmit=%v degraded200=%v",
			sawDegraded, sawQuarantine, sawReadmit, sawDegraded200)
	}
	if c := fm.Injected(); c.Dropouts == 0 || c.Stuck == 0 {
		t.Fatalf("schedule did not exercise all fault kinds: %+v", c)
	}

	// The obs counters must agree with the fleet's own bookkeeping.
	if v := reg.Counter("vmpower_fleet_ticks_total", "").Value(); v != ticks {
		t.Fatalf("ticks counter = %d, want %d", v, ticks)
	}
	q, r := f.Transitions()
	if v := reg.Counter("vmpower_fleet_quarantines_total", "").Value(); v != uint64(q) {
		t.Fatalf("quarantines counter = %d, want %d", v, q)
	}
	if v := reg.Counter("vmpower_fleet_readmits_total", "").Value(); v != uint64(r) {
		t.Fatalf("readmits counter = %d, want %d", v, r)
	}
	var total float64
	for _, st := range hostStates {
		total += reg.Gauge("vmpower_fleet_hosts", "", obs.L("state", st.String())).Value()
	}
	if total != 3 {
		t.Fatalf("vmpower_fleet_hosts gauges sum to %g, want 3", total)
	}

	// The per-state host gauge must be scrapeable with its labels.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`vmpower_fleet_hosts{state="healthy"}`,
		`vmpower_fleet_hosts{state="quarantined"}`,
		`vmpower_fleet_tenant_watts{tenant="acme"}`,
		"vmpower_fleet_tick_duration_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Billing separation: only the faulted host's tenant accrued
	// degraded-tick energy.
	var e EnergyJSON
	if code := getJSON(t, ts, "/api/v1/energy", &e); code != http.StatusOK {
		t.Fatalf("energy = %d", code)
	}
	if e.DegradedPerTenantWh["bigco"] <= 0 {
		t.Fatalf("bigco has no degraded energy despite holdover ticks: %+v", e)
	}
	if e.DegradedPerTenantWh["acme"] != 0 || e.DegradedPerTenantWh["edu-lab"] != 0 {
		t.Fatalf("fresh-host tenants accrued degraded energy: %+v", e.DegradedPerTenantWh)
	}
}

// TestFleetChaosDeterminism pins the tentpole's aggregation contract:
// the same chaos run is bit-for-bit identical at Parallelism 1 and
// Parallelism NumCPU.
func TestFleetChaosDeterminism(t *testing.T) {
	run := func(par int) []*fleet.Tick {
		srv, fm, _, _ := chaosRig(t, par)
		var out []*fleet.Tick
		for i := 0; i < 100; i++ {
			tick, err := srv.Step()
			if err != nil {
				t.Fatalf("par %d tick %d: %v", par, i+1, err)
			}
			fm.NextTick()
			out = append(out, tick)
		}
		return out
	}
	serial := run(1)
	wide := run(runtime.NumCPU())
	if !reflect.DeepEqual(serial, wide) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], wide[i]) {
				t.Fatalf("tick %d diverges between Parallelism 1 and %d:\nserial: %+v\nwide:   %+v",
					i+1, runtime.NumCPU(), serial[i], wide[i])
			}
		}
		t.Fatal("tick streams diverge")
	}
}
