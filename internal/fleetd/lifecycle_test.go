package fleetd

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/core"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
	"vmpower/internal/scenario"
)

// lifecycleReqs mirrors the scenario package's acceptance rig under FFD
// placement: host 0 is four xlarges (full), host 1 is three xlarges +
// one large + four smalls (full), host 2 holds two smalls with 30 free
// vCPUs — room for migrations and hot-plugs, with the small class
// calibrated on both ends.
func lifecycleReqs() []fleet.VMRequest {
	reqs := []fleet.VMRequest{
		{Name: "xa1", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "xa2", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "xa3", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "xa4", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "xb1", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "xb2", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "xb3", Tenant: "bob", Type: 3, Workload: "namd"},
		{Name: "lg1", Tenant: "carol", Type: 2, Workload: "omnetpp"},
		{Name: "s1", Tenant: "alice", Type: 0, Workload: "gcc"},
		{Name: "s2", Tenant: "alice", Type: 0, Workload: "gcc"},
		{Name: "s3", Tenant: "alice", Type: 0, Workload: "gcc"},
		{Name: "s4", Tenant: "alice", Type: 0, Workload: "gcc"},
		{Name: "s5", Tenant: "alice", Type: 0, Workload: "gcc"},
		{Name: "s6", Tenant: "alice", Type: 0, Workload: "gcc"},
	}
	for i := range reqs {
		reqs[i].WorkloadSeed = int64(200 + i)
	}
	return reqs
}

// lifecycleScript exercises every lifecycle event class in 30 ticks:
// a power cycle, a live migration, a hot-plug + removal, a full
// drain/undrain of host 1 (which itself migrates and stops VMs), and a
// bursty autoscale group over the smalls.
const lifecycleScript = "s1@3:poweroff,s1@6:poweron,s2@5:migrate:2:2," +
	"n1@4:hotplug:2:small:dave:gcc:77,n1@15:remove," +
	"host:1@8:drain:1,host:1@14:undrain,grp:s@10:autoscale:2:6"

var lifecycleTypeSet = map[string]bool{
	fleet.EventPowerOn: true, fleet.EventPowerOff: true,
	fleet.EventHotplug: true, fleet.EventRemove: true,
	fleet.EventMigrateStart: true, fleet.EventMigrateFinish: true,
	fleet.EventDrainStart: true, fleet.EventDrainFinish: true,
	fleet.EventUndrain: true,
}

// TestLifecycleJournalExactlyOnce is the daemon-side acceptance test for
// the scenario surface: every lifecycle event the fleet emits appears in
// the journal exactly once, in sequence order, with its per-type counter
// matching; the rollup conservation audit never fires; open migration
// windows travel the /api/v1/allocation wire; drain shows up on /healthz
// without flipping the ladder off "ok"; and the roster snapshots served
// by /api/v1/status stay race-free against concurrent scrapers while the
// scenario mutates the fleet (run under -race).
func TestLifecycleJournalExactlyOnce(t *testing.T) {
	const ticks = 30
	f, err := fleet.New(fleet.Config{
		Hosts:            3,
		Seed:             11,
		MeterNoise:       0.05,
		CalibrationTicks: 6,
		Parallelism:      -1,
	}, lifecycleReqs())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.Instrument(reg, obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	srv.EnableAudit(core.AuditConfig{DeepEvery: 10})

	events, err := cliutil.ParseScenario(lifecycleScript)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := scenario.New(f, events, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetScenario(engine)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Concurrent scrapers race every roster-reading endpoint against the
	// scenario's mutations; -race is the assertion.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/api/v1/status", "/api/v1/scenario", "/api/v1/allocation", "/healthz"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + p)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(path)
	}

	var want []edge
	sawOpenWindow, sawDrainOK := false, false
	for i := 0; i < ticks; i++ {
		tick, err := srv.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
		for _, ev := range tick.Events {
			if !lifecycleTypeSet[ev.Type] {
				t.Fatalf("tick %d: unknown lifecycle event type %q", tick.Tick, ev.Type)
			}
			want = append(want, edge{ev.Type, ev.Subject})
		}
		if len(tick.Migrations) > 0 {
			sawOpenWindow = true
			var alloc TickJSON
			if code := getJSON(t, ts, "/api/v1/allocation", &alloc); code != 200 {
				t.Fatalf("allocation = %d", code)
			}
			if len(alloc.Migrations) != len(tick.Migrations) {
				t.Fatalf("tick %d: wire has %d migration windows, fleet %d",
					tick.Tick, len(alloc.Migrations), len(tick.Migrations))
			}
		}
		if tick.DrainedHosts > 0 && !tick.Degraded {
			var h HealthJSON
			if code := getJSON(t, ts, "/healthz", &h); code != 200 {
				t.Fatalf("healthz during drain = %d", code)
			}
			if h.Status != "ok" {
				t.Fatalf("tick %d: drain flipped /healthz to %q", tick.Tick, h.Status)
			}
			if h.DrainedHosts != tick.DrainedHosts {
				t.Fatalf("tick %d: healthz drained_hosts = %d, fleet %d", tick.Tick, h.DrainedHosts, tick.DrainedHosts)
			}
			if h.HealthyHosts != h.Hosts-h.DegradedHosts-h.QuarantinedHosts-h.DrainingHosts-h.DrainedHosts {
				t.Fatalf("tick %d: healthy count ignores drain: %+v", tick.Tick, h)
			}
			sawDrainOK = true
		}
	}
	close(stop)
	wg.Wait()

	if !sawOpenWindow {
		t.Fatal("no migration window ever traveled the wire")
	}
	if !sawDrainOK {
		t.Fatal("never observed a drained, undegraded tick on /healthz")
	}
	counts := map[string]int{}
	for _, e := range want {
		counts[e.typ]++
	}
	for typ := range lifecycleTypeSet {
		if counts[typ] == 0 {
			t.Errorf("scenario never produced %s", typ)
		}
	}

	// Conservation held on every rollup despite the churn.
	if v := reg.Counter("vmpower_fleet_audit_checks_total", "").Value(); v != ticks {
		t.Fatalf("fleet audit checks = %d, want %d", v, ticks)
	}
	if v := reg.Counter("vmpower_fleet_audit_violations_total", "").Value(); v != 0 {
		t.Fatalf("fleet audit violations = %d, want 0", v)
	}

	// The journal carries exactly the ground-truth lifecycle events, in
	// order, exactly once each.
	var page obs.EventsJSON
	if code := getJSON(t, ts, "/api/v1/events?since=0", &page); code != 200 {
		t.Fatalf("events = %d", code)
	}
	var got []edge
	var lastSeq uint64
	for _, ev := range page.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("journal seqs not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if lifecycleTypeSet[ev.Type] {
			got = append(got, edge{ev.Type, ev.Subject})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("journal has %d lifecycle events, fleet emitted %d:\n got %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: journal %+v, fleet %+v", i, got[i], want[i])
		}
	}

	// Per-type counters match the ground truth.
	for typ := range lifecycleTypeSet {
		v := reg.Counter("vmpower_fleet_lifecycle_events_total", "", obs.L("type", typ)).Value()
		if int(v) != counts[typ] {
			t.Errorf("lifecycle counter %s = %d, fleet emitted %d", typ, v, counts[typ])
		}
	}

	// The scenario surface agrees with the fleet's migration ledger.
	var scen ScenarioJSON
	if code := getJSON(t, ts, "/api/v1/scenario", &scen); code != 200 {
		t.Fatalf("scenario = %d", code)
	}
	if !scen.Done {
		t.Fatalf("script not done after %d ticks: %+v", ticks, scen)
	}
	done, aborted := f.MigrationTotals()
	if scen.MigrationsCompleted != done || scen.MigrationsAborted != aborted {
		t.Fatalf("scenario reports %d/%d migrations, fleet %d/%d",
			scen.MigrationsCompleted, scen.MigrationsAborted, done, aborted)
	}
	if done == 0 {
		t.Fatal("no migration ever completed")
	}

	// The roster snapshot reflects the churn: n1 was removed, but its
	// tenant stays on the books (its energy is billed forever).
	var st StatusJSON
	if code := getJSON(t, ts, "/api/v1/status", &st); code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, name := range st.VMs {
		if name == "n1" {
			t.Fatal("removed VM n1 still in /api/v1/status roster")
		}
	}
	foundDave := false
	for _, tn := range st.Tenants {
		if tn == "dave" {
			foundDave = true
		}
	}
	if !foundDave {
		t.Fatalf("hot-plugged tenant dave missing from /api/v1/status: %v", st.Tenants)
	}
}

// TestScenarioEndpointWithoutScenario pins the 404 contract.
func TestScenarioEndpointWithoutScenario(t *testing.T) {
	f := smallFleet(t)
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var e errorJSON
	if code := getJSON(t, ts, "/api/v1/scenario", &e); code != 404 {
		t.Fatalf("scenario without engine = %d, want 404", code)
	}
}
