package fleetd

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
	"vmpower/internal/scenario"
)

// getBody fetches path and returns the raw bytes, for bit-identity
// comparisons against the cached snapshot.
func getBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// scenarioServer builds an instrumented 3-host fleet driving script,
// ready to Step.
func scenarioServer(t *testing.T, script string) *Server {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Hosts:            3,
		Seed:             11,
		MeterNoise:       0,
		CalibrationTicks: 6,
		Parallelism:      -1,
	}, lifecycleReqs())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(obs.NewRegistry(), obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	events, err := cliutil.ParseScenario(script)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := scenario.New(f, events, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetScenario(engine)
	return srv
}

// TestFleetCachedBytesIdentical pins the serving-path contract on the
// fleet daemon: the cached snapshot bytes are bit-identical to a fresh
// per-request encode of the same tick's state, across several ticks —
// including the scenario endpoint while a scenario runs.
func TestFleetCachedBytesIdentical(t *testing.T) {
	srv := scenarioServer(t, "s1@2:poweroff,s1@4:poweron")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
		srv.mu.RLock()
		wantAlloc, err1 := encodeJSON(srv.latest)
		wantStatus, err2 := encodeJSON(srv.statusLocked())
		wantEnergy, err3 := encodeJSON(srv.energyLocked())
		wantScen, err4 := encodeJSON(srv.scenario)
		srv.mu.RUnlock()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.Fatal(err1, err2, err3, err4)
		}
		if got := getBody(t, ts, "/api/v1/allocation"); !bytes.Equal(got, wantAlloc) {
			t.Fatalf("tick %d: cached allocation differs from fresh encode:\n got %s\nwant %s", i, got, wantAlloc)
		}
		if got := getBody(t, ts, "/api/v1/status"); !bytes.Equal(got, wantStatus) {
			t.Fatalf("tick %d: cached status differs from fresh encode:\n got %s\nwant %s", i, got, wantStatus)
		}
		if got := getBody(t, ts, "/api/v1/energy"); !bytes.Equal(got, wantEnergy) {
			t.Fatalf("tick %d: cached energy differs from fresh encode:\n got %s\nwant %s", i, got, wantEnergy)
		}
		if got := getBody(t, ts, "/api/v1/scenario"); !bytes.Equal(got, wantScen) {
			t.Fatalf("tick %d: cached scenario differs from fresh encode:\n got %s\nwant %s", i, got, wantScen)
		}
	}
}

// composeTick applies a TickDeltaJSON to a base tick the way a delta
// client would: overwrite scalars, upsert per-VM/per-tenant, delete the
// removed names, replace host rows by id (dropping removed hosts), and
// take Unaccounted/Events/Migrations wholesale.
func composeTick(base *TickJSON, d *TickDeltaJSON) *TickJSON {
	out := &TickJSON{
		Tick:               d.Tick,
		MeasuredWatts:      d.MeasuredWatts,
		DynamicWatts:       d.DynamicWatts,
		PerVM:              map[string]float64{},
		PerTenant:          map[string]float64{},
		Degraded:           d.Degraded,
		DegradedHosts:      d.DegradedHosts,
		QuarantinedHosts:   d.QuarantinedHosts,
		DrainingHosts:      d.DrainingHosts,
		DrainedHosts:       d.DrainedHosts,
		IdleUnmeteredHosts: d.IdleUnmeteredHosts,
		Unaccounted:        d.Unaccounted,
		Events:             d.Events,
		Migrations:         d.Migrations,
	}
	for name, w := range base.PerVM {
		out.PerVM[name] = w
	}
	for name, w := range base.PerTenant {
		out.PerTenant[name] = w
	}
	for name, w := range d.PerVM {
		out.PerVM[name] = w
	}
	for name, w := range d.PerTenant {
		out.PerTenant[name] = w
	}
	for _, name := range d.RemovedVMs {
		delete(out.PerVM, name)
	}
	for _, name := range d.RemovedTenants {
		delete(out.PerTenant, name)
	}
	hosts := map[int]HostJSON{}
	for _, h := range base.Hosts {
		hosts[h.Host] = h
	}
	for _, h := range d.Hosts {
		hosts[h.Host] = h
	}
	for _, id := range d.RemovedHosts {
		delete(hosts, id)
	}
	ids := make([]int, 0, len(hosts))
	for id := range hosts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out.Hosts = append(out.Hosts, hosts[id])
	}
	return out
}

// TestFleetDeltaComposes runs a hot-plug + remove scenario and pins the
// fleet delta contract: a single tick's delta carries exactly the hosts
// and VMs whose wire value changed, a windowed delta observes the
// roster removal, and composing base + delta reconstructs the full tick
// bit-for-bit.
func TestFleetDeltaComposes(t *testing.T) {
	srv := scenarioServer(t, "n1@3:hotplug:2:small:dave:gcc:77,n1@10:remove")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Past the hot-plug: n1 is live.
	for i := 0; i < 5; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var base TickJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &base); code != http.StatusOK {
		t.Fatalf("full allocation: status %d", code)
	}
	if _, ok := base.PerVM["n1"]; !ok {
		t.Fatalf("hot-plugged VM missing from base: %v", base.PerVM)
	}

	// One tick: the delta must carry exactly what changed.
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	var full TickJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &full); code != http.StatusOK {
		t.Fatalf("full allocation: status %d", code)
	}
	var delta TickDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+strconv.Itoa(base.Tick), &delta); code != http.StatusOK {
		t.Fatalf("delta: status %d", code)
	}
	if delta.Full {
		t.Fatalf("since inside the window must not resync: %+v", delta)
	}
	for name, w := range full.PerVM {
		dw, inDelta := delta.PerVM[name]
		bw, inBase := base.PerVM[name]
		if changed := !inBase || bw != w; changed != inDelta {
			t.Fatalf("VM %s: changed=%v but delta membership=%v", name, changed, inDelta)
		} else if inDelta && dw != w {
			t.Fatalf("VM %s: delta carries %v, latest is %v", name, dw, w)
		}
	}
	baseHosts := map[int]*HostJSON{}
	for i := range base.Hosts {
		baseHosts[base.Hosts[i].Host] = &base.Hosts[i]
	}
	inDelta := map[int]bool{}
	for i := range delta.Hosts {
		inDelta[delta.Hosts[i].Host] = true
	}
	for i := range full.Hosts {
		h := &full.Hosts[i]
		prev, ok := baseHosts[h.Host]
		if changed := !ok || !hostEqual(prev, h); changed != inDelta[h.Host] {
			t.Fatalf("host %d: changed=%v but delta membership=%v", h.Host, changed, inDelta[h.Host])
		}
	}
	composed := composeTick(&base, &delta)
	a, _ := encodeJSON(composed)
	b, _ := encodeJSON(&full)
	if !bytes.Equal(a, b) {
		t.Fatalf("composed tick differs:\n got %s\nwant %s", a, b)
	}

	// Through the removal: a windowed delta must say n1 is gone, and
	// still compose exactly.
	for i := 0; i < 7; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var full2 TickJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &full2); code != http.StatusOK {
		t.Fatalf("full allocation: status %d", code)
	}
	if _, ok := full2.PerVM["n1"]; ok {
		t.Fatalf("n1 still present after remove: %v", full2.PerVM)
	}
	var delta2 TickDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+strconv.Itoa(base.Tick), &delta2); code != http.StatusOK {
		t.Fatalf("windowed delta: status %d", code)
	}
	removed := false
	for _, name := range delta2.RemovedVMs {
		if name == "n1" {
			removed = true
		}
	}
	if !removed {
		t.Fatalf("windowed delta must report n1 removed: %+v", delta2.RemovedVMs)
	}
	composed2 := composeTick(&base, &delta2)
	a2, _ := encodeJSON(composed2)
	b2, _ := encodeJSON(&full2)
	if !bytes.Equal(a2, b2) {
		t.Fatalf("composed tick (with removal) differs:\n got %s\nwant %s", a2, b2)
	}

	// Edge cases: current client, ahead-of-daemon client, malformed.
	var empty TickDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+strconv.Itoa(full2.Tick), &empty); code != http.StatusOK {
		t.Fatalf("empty delta: status %d", code)
	}
	if empty.Full || len(empty.PerVM) != 0 || len(empty.Hosts) != 0 {
		t.Fatalf("current client must get an empty delta: %+v", empty)
	}
	var resync TickDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+strconv.Itoa(full2.Tick+999), &resync); code != http.StatusOK {
		t.Fatalf("resync: status %d", code)
	}
	if !resync.Full || len(resync.PerVM) != len(full2.PerVM) || len(resync.Hosts) != len(full2.Hosts) {
		t.Fatalf("ahead-of-daemon client must get a full resync: %+v", resync)
	}
	var e errorJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since=-3", &e); code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", code)
	}
}

// nullResponseWriter is a reusable ResponseWriter for allocation pins:
// the header map is allocated once and the body discarded.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) WriteHeader(int)             {}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestFleetCachedGetZeroAllocs pins zero allocations per cached GET on
// the fleet daemon's read-mostly endpoints.
func TestFleetCachedGetZeroAllocs(t *testing.T) {
	f := smallFleet(t)
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	w := &nullResponseWriter{h: make(http.Header)}
	for _, tc := range []struct {
		path    string
		handler http.HandlerFunc
	}{
		{"/api/v1/allocation", srv.handleAllocation},
		{"/api/v1/status", srv.handleStatus},
		{"/api/v1/energy", srv.handleEnergy},
	} {
		req := httptest.NewRequest(http.MethodGet, tc.path, nil)
		if avg := testing.AllocsPerRun(200, func() { tc.handler(w, req) }); avg != 0 {
			t.Errorf("%s: %v allocs per cached GET, want 0", tc.path, avg)
		}
	}
}

// TestRosterScrapeRace is the regression pin for the fleetd roster
// races: handleStatus and handleHealthz used to call s.f.Hosts() /
// s.f.EmptyHosts() from handler goroutines, racing the hot-plug/remove
// mutations the scenario engine applies on the Step goroutine. The
// assertion is -race staying quiet while scrapers hammer both endpoints
// through roster churn; responses must also stay well-formed.
func TestRosterScrapeRace(t *testing.T) {
	srv := scenarioServer(t,
		"n1@2:hotplug:2:small:dave:gcc:77,n1@8:remove,"+
			"n2@5:hotplug:2:small:dave:gcc:78,n2@12:remove")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/api/v1/status", "/healthz"} {
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", p, resp.StatusCode)
						return
					}
				}
			}(path)
		}
	}
	for i := 0; i < 15; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	var st StatusJSON
	if code := getJSON(t, ts, "/api/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.Hosts != 3 {
		t.Fatalf("status hosts = %d, want 3", st.Hosts)
	}
}

// failingResponseWriter rejects every body write, standing in for a
// client that hung up mid-response.
type failingResponseWriter struct {
	h http.Header
}

func (w *failingResponseWriter) Header() http.Header { return w.h }
func (w *failingResponseWriter) WriteHeader(int)     {}
func (w *failingResponseWriter) Write([]byte) (int, error) {
	return 0, errors.New("client gone")
}

// TestFleetEncodeErrorsCounted pins the silent-failure fix on the fleet
// daemon: body encode/write failures land in
// vmpower_http_encode_errors_total instead of being discarded.
func TestFleetEncodeErrorsCounted(t *testing.T) {
	f := smallFleet(t)
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(obs.NewRegistry(), obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	o := srv.telemetry.Load()
	if o.encodeErrs.Value() != 0 {
		t.Fatalf("counter starts at %d, want 0", o.encodeErrs.Value())
	}
	w := &failingResponseWriter{h: make(http.Header)}
	srv.handleAllocation(w, httptest.NewRequest(http.MethodGet, "/api/v1/allocation", nil))
	if got := o.encodeErrs.Value(); got != 1 {
		t.Fatalf("after failing cached write: counter %d, want 1", got)
	}
	srv.handleAllocation(w, httptest.NewRequest(http.MethodGet, "/api/v1/allocation?since=0", nil))
	if got := o.encodeErrs.Value(); got != 2 {
		t.Fatalf("after failing delta write: counter %d, want 2", got)
	}
}
