package fleetd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"vmpower/internal/obs"
)

// The high-traffic serving path: every Step publishes an immutable,
// pre-encoded snapshot of the read-mostly endpoints behind one atomic
// pointer swap, so handlers write cached bytes — zero encodes and zero
// marshal allocations per request. The bytes come from the same
// json.Encoder the per-request path uses, so cached responses are
// bit-identical to a fresh encode (pinned by TestCachedBytesIdentical).
// On top of the snapshot sits /api/v1/allocation?since=<tick>: a delta
// read carrying only the hosts, VMs and tenants that changed after the
// client's tick, so a thousand scrapers cost O(changed), not O(fleet).

// servedSnapshot is one tick's pre-encoded HTTP surface. Immutable after
// publication; a nil body means that endpoint could not encode this tick
// (or, for scenario, that no scenario is configured) and the handler
// falls back to the per-request path.
type servedSnapshot struct {
	tick       int
	status     []byte
	allocation []byte
	energy     []byte
	scenario   []byte
}

// deltaWindow bounds the per-tick change log behind
// /api/v1/allocation?since=. A client further behind than this many
// ticks gets a full resync (Full=true), the journal's "dropped"
// analogue.
const deltaWindow = 512

// tickDelta records what changed on one tick relative to the previous
// one: host entries whose wire form differs, VMs/tenants whose watts
// changed, and VMs/tenants/hosts that disappeared from the roster.
type tickDelta struct {
	tick           int
	hosts          []int
	removedHosts   []int
	vms            []string
	removedVMs     []string
	tenants        []string
	removedTenants []string
}

// TickDeltaJSON is the wire form of GET /api/v1/allocation?since=T: the
// scalar header of the latest tick plus only the per-VM / per-tenant /
// per-host entries that changed after tick T. A client holding the full
// allocation of tick T reconstructs the full allocation of Tick exactly
// (pinned by TestFleetDeltaComposes) by overwriting the scalars,
// upserting PerVM/PerTenant, deleting Removed*, replacing Hosts entries
// by host id (dropping RemovedHosts), and replacing Unaccounted, Events
// and Migrations wholesale; it then passes Tick as the next ?since=.
// Full marks a resync — the requested tick predates the retained window
// (or a daemon restart) — and carries the complete roster.
type TickDeltaJSON struct {
	Since              int                `json:"since"`
	Tick               int                `json:"tick"`
	Full               bool               `json:"full,omitempty"`
	MeasuredWatts      float64            `json:"measured_watts"`
	DynamicWatts       float64            `json:"dynamic_watts"`
	Degraded           bool               `json:"degraded,omitempty"`
	DegradedHosts      int                `json:"degraded_hosts,omitempty"`
	QuarantinedHosts   int                `json:"quarantined_hosts,omitempty"`
	DrainingHosts      int                `json:"draining_hosts,omitempty"`
	DrainedHosts       int                `json:"drained_hosts,omitempty"`
	IdleUnmeteredHosts int                `json:"idle_unmetered_hosts,omitempty"`
	PerVM              map[string]float64 `json:"per_vm_watts"`
	RemovedVMs         []string           `json:"removed_vms,omitempty"`
	PerTenant          map[string]float64 `json:"per_tenant_watts"`
	RemovedTenants     []string           `json:"removed_tenants,omitempty"`
	Hosts              []HostJSON         `json:"hosts"`
	RemovedHosts       []int              `json:"removed_hosts,omitempty"`
	Unaccounted        []string           `json:"unaccounted,omitempty"`
	Events             []EventJSON        `json:"events,omitempty"`
	Migrations         []MigrationJSON    `json:"migrations,omitempty"`
}

// encodeJSON renders v exactly as writeJSON's per-request encoder does
// (same encoder, same trailing newline), into a fresh buffer the cached
// snapshot owns forever.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// jsonCType is the Content-Type header value shared by every cached
// response. Assigning the shared slice directly (rather than
// Header().Set) keeps the cached GET path allocation-free.
var jsonCType = []string{"application/json"}

// writeCached serves a pre-encoded body. Zero allocations on the happy
// path; a failed write (client gone mid-response) is counted like an
// encode failure.
func (s *Server) writeCached(w http.ResponseWriter, body []byte) {
	w.Header()["Content-Type"] = jsonCType
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		s.noteEncodeError(err)
	}
}

// writeJSON is the per-request fallback (pre-first-tick, error bodies,
// delta responses): encode straight onto the wire. Encode errors — a
// value that cannot marshal, or a client that hung up mid-body — used to
// be silently discarded; they are now counted in
// vmpower_http_encode_errors_total and logged at debug.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.noteEncodeError(err)
	}
}

func (s *Server) noteEncodeError(err error) {
	o := s.telemetry.Load()
	if o == nil {
		return
	}
	o.encodeErrs.Inc()
	if o.log.Enabled(obs.LevelDebug) {
		o.log.Debug("response encode failed", "err", err)
	}
}

// statusLocked builds the status wire form from tick-published state
// only — no fleet accessors, so it is safe on handler goroutines while
// a scenario mutates the roster. Callers hold s.mu (any mode).
func (s *Server) statusLocked() StatusJSON {
	st := StatusJSON{
		Hosts:         s.hosts,
		EmptyHosts:    s.emptyHosts,
		VMs:           s.vms,
		Tenants:       s.tenants,
		Ticks:         s.ticks,
		DegradedTicks: s.degradedTicks,
		Quarantines:   s.quarantines,
		Readmits:      s.readmits,
	}
	if s.latest != nil {
		st.Degraded = s.latest.Degraded
		st.HostStates = s.latest.Hosts
	}
	return st
}

// energyLocked builds the energy wire form. Callers hold s.mu (any
// mode).
func (s *Server) energyLocked() EnergyJSON {
	energy := s.energy
	if energy.PerTenantWh == nil {
		energy.PerTenantWh = map[string]float64{}
	}
	return energy
}

// hostEqual reports whether two host wire entries are identical.
func hostEqual(a, b *HostJSON) bool {
	if a.Host != b.Host || a.State != b.State || a.Reason != b.Reason ||
		a.MeterLost != b.MeterLost || a.QuarantinedTicks != b.QuarantinedTicks ||
		a.HoldoverAgeTicks != b.HoldoverAgeTicks || a.RejectedSamples != b.RejectedSamples ||
		a.MeasuredWatts != b.MeasuredWatts || a.DynamicWatts != b.DynamicWatts ||
		a.Tier != b.Tier || len(a.VMs) != len(b.VMs) {
		return false
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			return false
		}
	}
	return true
}

// diffTick computes what changed between two consecutive wire ticks.
// A nil prev (first tick) marks everything changed.
func diffTick(prev, cur *TickJSON) tickDelta {
	d := tickDelta{tick: cur.Tick}
	var prevHosts map[int]*HostJSON
	if prev != nil {
		prevHosts = make(map[int]*HostJSON, len(prev.Hosts))
		for i := range prev.Hosts {
			prevHosts[prev.Hosts[i].Host] = &prev.Hosts[i]
		}
	}
	cur2 := make(map[int]bool, len(cur.Hosts))
	for i := range cur.Hosts {
		h := &cur.Hosts[i]
		cur2[h.Host] = true
		if p, ok := prevHosts[h.Host]; !ok || !hostEqual(p, h) {
			d.hosts = append(d.hosts, h.Host)
		}
	}
	for id := range prevHosts {
		if !cur2[id] {
			d.removedHosts = append(d.removedHosts, id)
		}
	}
	for name, w := range cur.PerVM {
		if prev == nil {
			d.vms = append(d.vms, name)
			continue
		}
		if pw, ok := prev.PerVM[name]; !ok || pw != w {
			d.vms = append(d.vms, name)
		}
	}
	for name, w := range cur.PerTenant {
		if prev == nil {
			d.tenants = append(d.tenants, name)
			continue
		}
		if pw, ok := prev.PerTenant[name]; !ok || pw != w {
			d.tenants = append(d.tenants, name)
		}
	}
	if prev != nil {
		for name := range prev.PerVM {
			if _, ok := cur.PerVM[name]; !ok {
				d.removedVMs = append(d.removedVMs, name)
			}
		}
		for name := range prev.PerTenant {
			if _, ok := cur.PerTenant[name]; !ok {
				d.removedTenants = append(d.removedTenants, name)
			}
		}
	}
	return d
}

// publishLocked pre-encodes the tick's read-mostly endpoints, swaps the
// served snapshot, and appends the tick's change set to the bounded
// delta log. Called from Step with s.mu held, after the tick's state
// (latest, energy, roster counts, scenario) has been assigned; the
// previous snapshot stays valid for requests already holding its
// pointer.
func (s *Server) publishLocked(wire *TickJSON) {
	s.deltaLog = append(s.deltaLog, diffTick(s.prevWire, wire))
	if len(s.deltaLog) > deltaWindow {
		s.deltaLog = s.deltaLog[len(s.deltaLog)-deltaWindow:]
	}
	s.prevWire = wire

	snap := &servedSnapshot{tick: wire.Tick}
	// A body that cannot encode leaves its slot nil: the handler falls
	// back to the per-request path, which counts the failure per request
	// instead of silently serving stale bytes.
	snap.allocation, _ = encodeJSON(wire)
	snap.status, _ = encodeJSON(s.statusLocked())
	snap.energy, _ = encodeJSON(s.energyLocked())
	if s.scenario != nil {
		snap.scenario, _ = encodeJSON(s.scenario)
	}
	s.served.Store(snap)
}

// handleAllocationDelta serves GET /api/v1/allocation?since=T. The
// response is O(changed) — per-VM/per-tenant entries and host rows only
// for entities whose wire value changed after T — not O(fleet).
func (s *Server) handleAllocationDelta(w http.ResponseWriter, raw string) {
	since, err := strconv.Atoi(raw)
	if err != nil || since < 0 {
		s.writeJSON(w, http.StatusBadRequest, errorJSON{Error: "since must be a non-negative integer"})
		return
	}
	s.mu.RLock()
	latest := s.latest
	if latest == nil {
		s.mu.RUnlock()
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no tick yet"})
		return
	}
	out := TickDeltaJSON{
		Since:              since,
		Tick:               latest.Tick,
		MeasuredWatts:      latest.MeasuredWatts,
		DynamicWatts:       latest.DynamicWatts,
		Degraded:           latest.Degraded,
		DegradedHosts:      latest.DegradedHosts,
		QuarantinedHosts:   latest.QuarantinedHosts,
		DrainingHosts:      latest.DrainingHosts,
		DrainedHosts:       latest.DrainedHosts,
		IdleUnmeteredHosts: latest.IdleUnmeteredHosts,
		PerVM:              map[string]float64{},
		PerTenant:          map[string]float64{},
		Hosts:              []HostJSON{},
		Unaccounted:        latest.Unaccounted,
		Events:             latest.Events,
		Migrations:         latest.Migrations,
	}
	fullResync := func() {
		out.Full = true
		for name, w := range latest.PerVM {
			out.PerVM[name] = w
		}
		for name, w := range latest.PerTenant {
			out.PerTenant[name] = w
		}
		out.Hosts = latest.Hosts
	}
	switch {
	case since >= latest.Tick:
		// Current — empty delta. A client ahead of the daemon (since from
		// a previous incarnation) gets a full resync instead: its baseline
		// tick numbering means nothing here.
		if since > latest.Tick {
			fullResync()
		}
	case len(s.deltaLog) > 0 && s.deltaLog[0].tick <= since+1:
		changedHosts := map[int]bool{}
		removedHosts := map[int]bool{}
		changedVMs := map[string]bool{}
		removedVMs := map[string]bool{}
		changedTenants := map[string]bool{}
		removedTenants := map[string]bool{}
		for i := range s.deltaLog {
			d := &s.deltaLog[i]
			if d.tick <= since {
				continue
			}
			for _, id := range d.hosts {
				changedHosts[id] = true
			}
			for _, id := range d.removedHosts {
				removedHosts[id] = true
			}
			for _, n := range d.vms {
				changedVMs[n] = true
			}
			for _, n := range d.removedVMs {
				removedVMs[n] = true
			}
			for _, n := range d.tenants {
				changedTenants[n] = true
			}
			for _, n := range d.removedTenants {
				removedTenants[n] = true
			}
		}
		// A name both removed and later re-added resolves by presence in
		// the latest tick: present → changed entry, absent → removed.
		for name := range changedVMs {
			if w, ok := latest.PerVM[name]; ok {
				out.PerVM[name] = w
			}
		}
		for name := range removedVMs {
			if _, ok := latest.PerVM[name]; !ok {
				out.RemovedVMs = append(out.RemovedVMs, name)
			}
		}
		for name := range changedTenants {
			if w, ok := latest.PerTenant[name]; ok {
				out.PerTenant[name] = w
			}
		}
		for name := range removedTenants {
			if _, ok := latest.PerTenant[name]; !ok {
				out.RemovedTenants = append(out.RemovedTenants, name)
			}
		}
		inLatest := map[int]bool{}
		for i := range latest.Hosts {
			h := &latest.Hosts[i]
			inLatest[h.Host] = true
			if changedHosts[h.Host] {
				out.Hosts = append(out.Hosts, *h)
			}
		}
		for id := range removedHosts {
			if !inLatest[id] {
				out.RemovedHosts = append(out.RemovedHosts, id)
			}
		}
		sort.Strings(out.RemovedVMs)
		sort.Strings(out.RemovedTenants)
		sort.Ints(out.RemovedHosts)
	default:
		// since predates the retained window: full resync.
		fullResync()
	}
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, out)
}
