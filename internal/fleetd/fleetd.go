// Package fleetd exposes a multi-host fleet accounting pipeline over
// HTTP/JSON, the way a datacenter operator would consume it: per-VM and
// per-tenant allocations rolled up across the host pool, per-host
// degradation state (healthy / degraded / quarantined), and cumulative
// per-tenant energy counters with the degraded-tick slice broken out for
// billing. The daemon in cmd/fleetd mounts Handler on a listener and
// drives Step at a fixed interval.
//
// The health ladder mirrors the fleet's fault isolation: /healthz stays
// 200 "degraded" (with per-host reasons) while any host still produces
// allocations, and only flips to 503 "lost" when every host in the pool
// is quarantined.
package fleetd

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
	"vmpower/internal/scenario"
)

// HostJSON is the wire form of one host's status.
type HostJSON struct {
	Host             int      `json:"host"`
	State            string   `json:"state"`
	Reason           string   `json:"reason,omitempty"`
	MeterLost        bool     `json:"meter_lost,omitempty"`
	QuarantinedTicks int      `json:"quarantined_ticks,omitempty"`
	HoldoverAgeTicks int      `json:"holdover_age_ticks,omitempty"`
	RejectedSamples  int      `json:"rejected_samples,omitempty"`
	MeasuredWatts    float64  `json:"measured_watts"`
	DynamicWatts     float64  `json:"dynamic_watts"`
	Tier             string   `json:"tier,omitempty"`
	VMs              []string `json:"vms"`
}

// EventJSON is the wire form of one lifecycle event journaled on a tick.
type EventJSON struct {
	Type    string `json:"type"`
	Subject string `json:"subject"`
	Detail  string `json:"detail,omitempty"`
}

// MigrationJSON is the wire form of one open live-migration copy window
// (mirrors fleet.MigrationStatus: both sides metered, the ledger says
// which sides the rollup accounted).
type MigrationJSON struct {
	Name          string  `json:"name"`
	From          int     `json:"from"`
	To            int     `json:"to"`
	CopyTick      int     `json:"copy_tick"`
	CopyTicks     int     `json:"copy_ticks"`
	FromWatts     float64 `json:"from_watts"`
	ToWatts       float64 `json:"to_watts"`
	FromAccounted bool    `json:"from_accounted"`
	ToAccounted   bool    `json:"to_accounted"`
}

// TickJSON is the wire form of one fleet tick.
type TickJSON struct {
	Tick               int                `json:"tick"`
	MeasuredWatts      float64            `json:"measured_watts"`
	DynamicWatts       float64            `json:"dynamic_watts"`
	PerVM              map[string]float64 `json:"per_vm_watts"`
	PerTenant          map[string]float64 `json:"per_tenant_watts"`
	Degraded           bool               `json:"degraded,omitempty"`
	DegradedHosts      int                `json:"degraded_hosts,omitempty"`
	QuarantinedHosts   int                `json:"quarantined_hosts,omitempty"`
	DrainingHosts      int                `json:"draining_hosts,omitempty"`
	DrainedHosts       int                `json:"drained_hosts,omitempty"`
	IdleUnmeteredHosts int                `json:"idle_unmetered_hosts,omitempty"`
	Unaccounted        []string           `json:"unaccounted,omitempty"`
	Events             []EventJSON        `json:"events,omitempty"`
	Migrations         []MigrationJSON    `json:"migrations,omitempty"`
	Hosts              []HostJSON         `json:"hosts"`
}

// StatusJSON is the wire form of the daemon status.
type StatusJSON struct {
	Hosts         int        `json:"hosts"`
	EmptyHosts    int        `json:"empty_hosts,omitempty"`
	VMs           []string   `json:"vms"`
	Tenants       []string   `json:"tenants"`
	Ticks         int        `json:"ticks_estimated"`
	Degraded      bool       `json:"degraded"`
	DegradedTicks int        `json:"degraded_ticks"`
	Quarantines   int        `json:"quarantines"`
	Readmits      int        `json:"readmits"`
	HostStates    []HostJSON `json:"host_states"`
}

// GroupJSON is the wire form of one autoscale group.
type GroupJSON struct {
	Prefix  string `json:"prefix"`
	Min     int    `json:"min"`
	Max     int    `json:"max"`
	Target  int    `json:"target"`
	Running int    `json:"running"`
	Members int    `json:"members"`
}

// ScenarioJSON is the wire form of /api/v1/scenario: scripted-event
// progress, the active autoscale groups, and the fleet's migration
// totals.
type ScenarioJSON struct {
	Events              int         `json:"events"`
	Applied             int         `json:"applied"`
	Refused             int         `json:"refused"`
	NextTick            int         `json:"next_tick,omitempty"`
	Done                bool        `json:"done"`
	Groups              []GroupJSON `json:"groups,omitempty"`
	MigrationsActive    int         `json:"migrations_active"`
	MigrationsCompleted int         `json:"migrations_completed"`
	MigrationsAborted   int         `json:"migrations_aborted"`
}

// EnergyJSON is the wire form of the cumulative energy counters. The
// degraded slice is the watt-hours integrated from holdover/fallback
// ticks — included in the per-tenant totals, broken out for billing.
// Seconds is the real integrated time (ticks × tick interval), not the
// tick count.
type EnergyJSON struct {
	Seconds             float64            `json:"seconds"`
	PerTenantWh         map[string]float64 `json:"per_tenant_wh"`
	DegradedPerTenantWh map[string]float64 `json:"degraded_per_tenant_wh,omitempty"`
	TotalWh             float64            `json:"total_wh"`
	DegradedWh          float64            `json:"degraded_wh"`
}

// HealthJSON is the wire form of /healthz.
type HealthJSON struct {
	// Status is "ok", "degraded" (some hosts degraded or quarantined,
	// the rest still accounting — 200), "lost" (every host quarantined —
	// 503), "starting", "stalled" or "error" (503).
	Status             string  `json:"status"`
	Hosts              int     `json:"hosts"`
	HealthyHosts       int     `json:"healthy_hosts"`
	DegradedHosts      int     `json:"degraded_hosts"`
	QuarantinedHosts   int     `json:"quarantined_hosts"`
	DrainingHosts      int     `json:"draining_hosts,omitempty"`
	DrainedHosts       int     `json:"drained_hosts,omitempty"`
	Ticks              int     `json:"ticks_estimated"`
	LastTickAgeSeconds float64 `json:"last_tick_age_seconds,omitempty"`
	// HostReasons maps host index → degradation/quarantine reason for
	// every non-healthy host.
	HostReasons map[string]string `json:"host_reasons,omitempty"`
	Error       string            `json:"error,omitempty"`
}

// Server aggregates fleet ticks and serves them.
type Server struct {
	f *fleet.Fleet
	// engine is the optional lifecycle scenario driver; owned by the Step
	// goroutine (its Apply mutates the fleet roster between ticks).
	engine *scenario.Engine

	// telemetry is nil until Instrument; Step and the HTTP middleware
	// pay one atomic load to find out.
	telemetry atomic.Pointer[serverObs]
	now       func() time.Time
	createdAt time.Time

	// served is the tick-published, pre-encoded HTTP surface: one atomic
	// pointer swap per tick, cached bytes per request (nil until the
	// first tick — handlers fall back to the per-request path).
	served atomic.Pointer[servedSnapshot]

	mu            sync.RWMutex
	latest        *TickJSON
	energy        EnergyJSON
	ticks         int
	degradedTicks int
	quarantines   int
	readmits      int
	lastTickAt    time.Time
	lastErr       string
	// vms, tenants, hosts and emptyHosts are roster snapshots refreshed
	// by Step: handlers must not call fleet accessors directly once a
	// scenario can mutate the roster from the Step goroutine.
	vms        []string
	tenants    []string
	hosts      int
	emptyHosts int
	scenario   *ScenarioJSON
	// deltaLog backs /api/v1/allocation?since=: the bounded per-tick
	// change log (see serve.go).
	deltaLog []tickDelta

	// prevWire is the previous tick's wire form, diffed in publishLocked
	// (under s.mu) to produce each tick's delta-log entry.
	prevWire *TickJSON
}

// New builds a Server over a (to-be-)calibrated fleet.
func New(f *fleet.Fleet) (*Server, error) {
	if f == nil {
		return nil, errors.New("fleetd: nil fleet")
	}
	return &Server{
		f: f, now: time.Now, createdAt: time.Now(),
		vms: f.VMNames(), tenants: f.Tenants(),
		hosts: f.Hosts(), emptyHosts: f.EmptyHosts(),
	}, nil
}

// SetScenario installs a lifecycle scenario engine: every Step first
// applies the events due for the next tick (and one autoscale pass),
// then advances the fleet. Call before the serve loop starts; the
// engine is driven from the Step goroutine only.
func (s *Server) SetScenario(e *scenario.Engine) {
	s.engine = e
	s.mu.Lock()
	s.scenario = s.scenarioJSON()
	s.mu.Unlock()
}

// scenarioJSON snapshots scenario progress. Step-goroutine only (the
// engine and fleet counters are not lock-protected); callers hold s.mu
// for the write to s.scenario.
func (s *Server) scenarioJSON() *ScenarioJSON {
	st := s.engine.Status()
	out := &ScenarioJSON{
		Events:   st.Events,
		Applied:  st.Applied,
		Refused:  st.Refused,
		NextTick: st.NextTick,
		Done:     s.engine.Done(),
	}
	for _, g := range st.Groups {
		out.Groups = append(out.Groups, GroupJSON{
			Prefix: g.Prefix, Min: g.Min, Max: g.Max,
			Target: g.Target, Running: g.Running, Members: g.Members,
		})
	}
	out.MigrationsActive = s.f.ActiveMigrations()
	out.MigrationsCompleted, out.MigrationsAborted = s.f.MigrationTotals()
	return out
}

// Step advances the fleet one tick and records the result for the HTTP
// surface. Like powerd.Server.Step it must be driven from a single
// goroutine (it advances host clocks) but may run concurrently with any
// handler: a tick's outputs are published in one critical section.
func (s *Server) Step() (*fleet.Tick, error) {
	o := s.telemetry.Load()
	start := time.Now()
	if s.engine != nil {
		s.engine.Apply()
	}
	tick, err := s.f.Step()
	if err != nil {
		o.noteTickError(err)
		s.mu.Lock()
		s.lastErr = err.Error()
		s.mu.Unlock()
		return nil, err
	}
	wire := wireTick(tick)
	energy := energyJSON(s.f)
	vms := s.f.VMNames()
	tenants := s.f.Tenants()
	hosts, emptyHosts := s.f.Hosts(), s.f.EmptyHosts()
	var scen *ScenarioJSON
	if s.engine != nil {
		scen = s.scenarioJSON()
	}
	s.mu.Lock()
	s.latest = wire
	s.energy = energy
	s.vms = vms
	s.tenants = tenants
	s.hosts = hosts
	s.emptyHosts = emptyHosts
	if scen != nil {
		s.scenario = scen
	}
	s.ticks++
	if tick.Degraded {
		s.degradedTicks++
	}
	s.quarantines += tick.NewQuarantines
	s.readmits += tick.Readmits
	s.lastTickAt = s.now()
	s.lastErr = ""
	s.publishLocked(wire)
	s.mu.Unlock()
	now := s.now()
	o.noteTick(now, time.Since(start), tick, wire)
	o.noteProvenance(s, now, tick)
	return tick, nil
}

// EnableAudit installs the per-tick invariant auditor (see core.Auditor)
// on every host's estimator. Violations are journaled with a
// "host:<i>" subject, logged, and arm a flight dump that fires after the
// tick's record lands. The fleet-level rollup conservation check runs
// unconditionally on instrumented servers; this adds the per-host solver
// checks (Efficiency residual, share bounds, sampled deep re-solves).
// Call before the serve loop starts.
func (s *Server) EnableAudit(cfg core.AuditConfig) {
	s.f.EnableAudit(cfg, func(host int, v core.AuditViolation) {
		o := s.telemetry.Load()
		if o == nil {
			return
		}
		// May fire from fleet worker goroutines (Parallelism > 1):
		// Journal.Append and armDump are both safe for concurrent use.
		subject := "host:" + strconv.Itoa(host)
		o.journal.Append(v.Tick, "audit_violation", subject, v.Kind+": "+v.Detail)
		o.log.Warn("audit violation", "tick", v.Tick, "host", host, "kind", v.Kind, "detail", v.Detail)
		o.armDump("audit: " + v.Kind + " on " + subject)
	})
}

// DumpFlight writes the flight-recorder ring as indented JSON — the
// SIGQUIT handler's path. It fails only when the server was never
// instrumented (no flight recorder exists then).
func (s *Server) DumpFlight(w io.Writer, reason string) error {
	o := s.telemetry.Load()
	if o == nil {
		return errors.New("fleetd: not instrumented; no flight recorder")
	}
	o.flight.WriteJSON(w, reason)
	return nil
}

// wireTick converts a fleet tick to its wire form.
func wireTick(tick *fleet.Tick) *TickJSON {
	wire := &TickJSON{
		Tick:               tick.Tick,
		MeasuredWatts:      tick.MeasuredTotal,
		DynamicWatts:       tick.DynamicTotal,
		PerVM:              make(map[string]float64, len(tick.PerVM)),
		PerTenant:          make(map[string]float64, len(tick.PerTenant)),
		Degraded:           tick.Degraded,
		DegradedHosts:      tick.DegradedHosts,
		QuarantinedHosts:   tick.QuarantinedHosts,
		DrainingHosts:      tick.DrainingHosts,
		DrainedHosts:       tick.DrainedHosts,
		IdleUnmeteredHosts: tick.IdleUnmeteredHosts,
		Unaccounted:        append([]string(nil), tick.Unaccounted...),
		Hosts:              wireHosts(tick.Hosts),
	}
	for _, ev := range tick.Events {
		wire.Events = append(wire.Events, EventJSON{Type: ev.Type, Subject: ev.Subject, Detail: ev.Detail})
	}
	for _, m := range tick.Migrations {
		wire.Migrations = append(wire.Migrations, MigrationJSON{
			Name: m.Name, From: m.From, To: m.To,
			CopyTick: m.CopyTick, CopyTicks: m.CopyTicks,
			FromWatts: m.FromWatts, ToWatts: m.ToWatts,
			FromAccounted: m.FromAccounted, ToAccounted: m.ToAccounted,
		})
	}
	for name, w := range tick.PerVM {
		wire.PerVM[name] = w
	}
	for tenant, w := range tick.PerTenant {
		wire.PerTenant[tenant] = w
	}
	return wire
}

func wireHosts(statuses []fleet.HostStatus) []HostJSON {
	out := make([]HostJSON, len(statuses))
	for i, hs := range statuses {
		out[i] = HostJSON{
			Host:             hs.Host,
			State:            hs.State.String(),
			Reason:           hs.Reason,
			MeterLost:        hs.MeterLost,
			QuarantinedTicks: hs.QuarantinedTicks,
			HoldoverAgeTicks: hs.HoldoverAgeTicks,
			RejectedSamples:  hs.RejectedSamples,
			MeasuredWatts:    hs.MeasuredWatts,
			DynamicWatts:     hs.DynamicWatts,
			Tier:             hs.Tier,
			VMs:              hs.VMs,
		}
	}
	return out
}

// energyJSON snapshots the fleet's cumulative energy counters. Called
// from Step's goroutine only (the fleet's maps are not lock-protected).
func energyJSON(f *fleet.Fleet) EnergyJSON {
	out := EnergyJSON{
		Seconds:     f.ElapsedSeconds(),
		PerTenantWh: f.EnergyWhByTenant(),
	}
	deg := f.DegradedEnergyWhByTenant()
	if len(deg) > 0 {
		out.DegradedPerTenantWh = deg
	}
	for _, wh := range out.PerTenantWh {
		out.TotalWh += wh
	}
	for _, wh := range deg {
		out.DegradedWh += wh
	}
	return out
}

// Handler returns the HTTP API:
//
//	GET /api/v1/status     — pool layout, per-host states, transition counts
//	GET /api/v1/allocation — the most recent fleet tick
//	GET /api/v1/allocation?since=<tick> — only what changed after <tick> (see TickDeltaJSON)
//	GET /api/v1/energy     — cumulative per-tenant energy (degraded slice broken out)
//	GET /api/v1/scenario   — lifecycle scenario progress (404 without a scenario)
//	GET /healthz           — liveness ladder (503 only when all hosts are lost)
//
// When the server is instrumented (call Instrument before Handler), the
// mux additionally serves GET /metrics, GET /metrics.json,
// GET /api/v1/events?since=<seq> (the bounded tick event journal) and
// GET /debug/flight (a flight-recorder dump; ?trigger=last returns the
// most recent quarantine/violation-triggered dump instead of the live
// ring).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/status", s.instrumented("/api/v1/status", s.handleStatus))
	mux.HandleFunc("GET /api/v1/allocation", s.instrumented("/api/v1/allocation", s.handleAllocation))
	mux.HandleFunc("GET /api/v1/energy", s.instrumented("/api/v1/energy", s.handleEnergy))
	mux.HandleFunc("GET /api/v1/scenario", s.instrumented("/api/v1/scenario", s.handleScenario))
	mux.HandleFunc("GET /healthz", s.instrumented("/healthz", s.handleHealthz))
	if o := s.telemetry.Load(); o != nil {
		mux.HandleFunc("GET /metrics", s.instrumented("/metrics", o.reg.Handler().ServeHTTP))
		mux.HandleFunc("GET /metrics.json", s.instrumented("/metrics.json", o.reg.HandlerJSON().ServeHTTP))
		mux.HandleFunc("GET /api/v1/events", s.instrumented("/api/v1/events", o.journal.Handler().ServeHTTP))
		mux.HandleFunc("GET /debug/flight", s.instrumented("/debug/flight", s.handleFlight))
	}
	return mux
}

// handleFlight serves a flight-recorder dump: the live ring by default,
// or — with ?trigger=last — the dump captured at the most recent
// quarantine or audit violation (404 when none has fired).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	o := s.telemetry.Load()
	if o == nil {
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "not instrumented"})
		return
	}
	if r.URL.Query().Get("trigger") == "last" {
		d := o.lastDump.Load()
		if d == nil {
			s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no triggered dump yet"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteJSONIndent(w, d)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.flight.WriteJSON(w, "http")
}

// handleHealthz reports fleet liveness. The ladder, most to least
// severe: "error" (503, the last Step failed), "starting"/"stalled"
// (503 once the loop is quiet past three intervals), "lost" (503, every
// host quarantined — the fleet is ticking but accounts for nothing),
// "degraded" (200, some hosts degraded or quarantined with per-host
// reasons; the rest of the pool still accounts), "ok" (200).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	interval := time.Second
	if o := s.telemetry.Load(); o != nil {
		interval = o.interval
	}
	stallAfter := 3 * interval
	now := s.now()
	s.mu.RLock()
	ticks := s.ticks
	lastTickAt := s.lastTickAt
	lastErr := s.lastErr
	latest := s.latest
	// The tick-published roster count, not s.f.Hosts(): handlers must
	// not touch fleet accessors while a scenario mutates the roster on
	// the Step goroutine (pinned by TestRosterScrapeRace).
	hosts := s.hosts
	s.mu.RUnlock()

	h := HealthJSON{Hosts: hosts, Ticks: ticks}
	status := http.StatusOK
	switch {
	case lastErr != "":
		h.Status = "error"
		h.Error = lastErr
		status = http.StatusServiceUnavailable
	case ticks == 0:
		h.Status = "starting"
		if now.Sub(s.createdAt) > stallAfter {
			h.Status = "stalled"
			status = http.StatusServiceUnavailable
		}
	default:
		h.LastTickAgeSeconds = now.Sub(lastTickAt).Seconds()
		if now.Sub(lastTickAt) > stallAfter {
			h.Status = "stalled"
			status = http.StatusServiceUnavailable
			break
		}
		h.DegradedHosts = latest.DegradedHosts
		h.QuarantinedHosts = latest.QuarantinedHosts
		h.DrainingHosts = latest.DrainingHosts
		h.DrainedHosts = latest.DrainedHosts
		// Draining/drained hosts are planned maintenance, not
		// degradation: they leave the healthy count but never flip the
		// ladder off "ok" on their own.
		h.HealthyHosts = h.Hosts - h.DegradedHosts - h.QuarantinedHosts - h.DrainingHosts - h.DrainedHosts
		for _, hj := range latest.Hosts {
			if hj.State != fleet.HostHealthy.String() {
				if h.HostReasons == nil {
					h.HostReasons = make(map[string]string)
				}
				h.HostReasons[strconv.Itoa(hj.Host)] = fmt.Sprintf("%s: %s", hj.State, hj.Reason)
			}
		}
		switch {
		case h.QuarantinedHosts == h.Hosts:
			h.Status = "lost"
			status = http.StatusServiceUnavailable
		case latest.Degraded:
			h.Status = "degraded"
		default:
			h.Status = "ok"
		}
	}
	s.writeJSON(w, status, h)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	if snap := s.served.Load(); snap != nil && snap.status != nil {
		s.writeCached(w, snap.status)
		return
	}
	s.mu.RLock()
	st := s.statusLocked()
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	// RawQuery check first: r.URL.Query() allocates, and the common
	// full-scrape GET must stay allocation-free.
	if r.URL.RawQuery != "" {
		if raw := r.URL.Query().Get("since"); raw != "" {
			s.handleAllocationDelta(w, raw)
			return
		}
	}
	if snap := s.served.Load(); snap != nil && snap.allocation != nil {
		s.writeCached(w, snap.allocation)
		return
	}
	s.mu.RLock()
	latest := s.latest
	s.mu.RUnlock()
	if latest == nil {
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no tick yet"})
		return
	}
	s.writeJSON(w, http.StatusOK, latest)
}

// handleScenario reports lifecycle scenario progress: 404 when the
// daemon runs without a scenario.
func (s *Server) handleScenario(w http.ResponseWriter, _ *http.Request) {
	if snap := s.served.Load(); snap != nil && snap.scenario != nil {
		s.writeCached(w, snap.scenario)
		return
	}
	s.mu.RLock()
	scen := s.scenario
	s.mu.RUnlock()
	if scen == nil {
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no scenario configured"})
		return
	}
	s.writeJSON(w, http.StatusOK, scen)
}

func (s *Server) handleEnergy(w http.ResponseWriter, _ *http.Request) {
	if snap := s.served.Load(); snap != nil && snap.energy != nil {
		s.writeCached(w, snap.energy)
		return
	}
	s.mu.RLock()
	energy := s.energyLocked()
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, energy)
}

type errorJSON struct {
	Error string `json:"error"`
}
