package fleetd

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vmpower/internal/faults"
	"vmpower/internal/fleet"
	"vmpower/internal/obs"
)

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode
}

// smallFleet is a clean 2-host pool: four xlarge VMs fill host 0, one
// small VM lands on host 1.
func smallFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Hosts:            2,
		Seed:             1,
		MeterNoise:       0,
		CalibrationTicks: 40,
		MeterRetries:     2,
		HoldoverTicks:    3,
	}, []fleet.VMRequest{
		{Name: "a1", Tenant: "acme", Type: 3, Workload: "gcc", WorkloadSeed: 11},
		{Name: "a2", Tenant: "acme", Type: 3, Workload: "sjeng", WorkloadSeed: 12},
		{Name: "a3", Tenant: "acme", Type: 3, Workload: "namd", WorkloadSeed: 13},
		{Name: "a4", Tenant: "acme", Type: 3, Workload: "wrf", WorkloadSeed: 14},
		{Name: "b1", Tenant: "edu-lab", Type: 0, Workload: "gcc", WorkloadSeed: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEndpoints(t *testing.T) {
	f := smallFleet(t)
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(obs.NewRegistry(), obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before the first tick: no allocation yet, healthz "starting".
	var e errorJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &e); code != http.StatusNotFound {
		t.Fatalf("allocation before first tick = %d, want 404", code)
	}
	var h HealthJSON
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "starting" {
		t.Fatalf("healthz before first tick = %d %q, want 200 starting", code, h.Status)
	}

	const ticks = 5
	for i := 0; i < ticks; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
	}

	var st StatusJSON
	if code := getJSON(t, ts, "/api/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.Hosts != 2 || st.Ticks != ticks || st.Degraded {
		t.Fatalf("status %+v", st)
	}
	if len(st.VMs) != 5 || len(st.Tenants) != 2 || len(st.HostStates) != 2 {
		t.Fatalf("status shape %+v", st)
	}

	var tick TickJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &tick); code != http.StatusOK {
		t.Fatalf("allocation = %d", code)
	}
	if tick.Tick != ticks || len(tick.PerVM) != 5 || len(tick.Hosts) != 2 {
		t.Fatalf("allocation %+v", tick)
	}
	var sum float64
	for _, w := range tick.PerVM {
		sum += w
	}
	if math.Abs(sum-tick.DynamicWatts) > 1e-9 {
		t.Fatalf("fleet efficiency violated: sum %g vs dyn %g", sum, tick.DynamicWatts)
	}

	var energy EnergyJSON
	if code := getJSON(t, ts, "/api/v1/energy", &energy); code != http.StatusOK {
		t.Fatalf("energy = %d", code)
	}
	if energy.Seconds != ticks || energy.PerTenantWh["acme"] <= 0 || energy.TotalWh <= 0 {
		t.Fatalf("energy %+v", energy)
	}
	if energy.DegradedWh != 0 {
		t.Fatalf("clean run accrued degraded energy: %+v", energy)
	}

	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", code, h.Status)
	}
	if h.HealthyHosts != 2 || len(h.HostReasons) != 0 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestHealthzLostLadder pins the all-hosts-lost rule: /healthz stays a
// 200 "degraded" while any host still accounts, and flips to a 503
// "lost" only when every host is quarantined.
func TestHealthzLostLadder(t *testing.T) {
	f := smallFleet(t)
	// Host 0 dies immediately; host 1 dies 20 ticks later. Probing is
	// still on, but the episodes never end, so no probe readmits.
	dead := func(start int) faults.Options {
		return faults.Options{Seed: 5, Episodes: []faults.Episode{
			{Start: start, Len: 1 << 20, Kind: faults.Dropout},
		}}
	}
	fm0, err := f.InjectFaults(0, dead(0))
	if err != nil {
		t.Fatal(err)
	}
	fm1, err := f.InjectFaults(1, dead(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Calibrate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	srv.Instrument(obs.NewRegistry(), obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	fm0.SetArmed(true)
	fm1.SetArmed(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	step := func() *fleet.Tick {
		t.Helper()
		tick, err := srv.Step()
		if err != nil {
			t.Fatal(err)
		}
		fm0.NextTick()
		fm1.NextTick()
		return tick
	}

	// Phase 1: host 0 quarantined, host 1 alive — degraded but 200.
	var tick *fleet.Tick
	for i := 0; i < 10; i++ {
		tick = step()
	}
	if tick.QuarantinedHosts != 1 {
		t.Fatalf("after 10 ticks: %d hosts quarantined, want 1", tick.QuarantinedHosts)
	}
	if _, ok := tick.PerVM["b1"]; !ok {
		t.Fatal("surviving host's VM missing from PerVM")
	}
	var h HealthJSON
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("partial loss: healthz = %d %q, want 200 degraded", code, h.Status)
	}
	if reason, ok := h.HostReasons["0"]; !ok || reason == "" {
		t.Fatalf("partial loss: missing host 0 reason: %+v", h)
	}

	// Phase 2: both hosts quarantined — 503 "lost", but the fleet keeps
	// ticking (Step still succeeds).
	for i := 0; i < 20; i++ {
		tick = step()
	}
	if tick.QuarantinedHosts != 2 {
		t.Fatalf("after 30 ticks: %d hosts quarantined, want 2", tick.QuarantinedHosts)
	}
	if len(tick.PerVM) != 0 || len(tick.Unaccounted) != 5 {
		t.Fatalf("all lost but PerVM=%v Unaccounted=%v", tick.PerVM, tick.Unaccounted)
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "lost" {
		t.Fatalf("total loss: healthz = %d %q, want 503 lost", code, h.Status)
	}
	if len(h.HostReasons) != 2 {
		t.Fatalf("total loss: want reasons for both hosts: %+v", h)
	}
}
