package replay

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func testEstimator(t *testing.T) (*hypervisor.Host, *core.Estimator) {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "a", Type: 0}, {Name: "b", Type: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.New(host, m, core.Config{OfflineTicksPerCombo: 80, IdleMeasureTicks: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	return host, est
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Tick: 1, Coalition: 0b11, States: [][]float64{{1, 0.1, 0}, {0.5, 0.2, 0.1}}, Power: 160.5},
		{Tick: 2, Coalition: 0b01, States: [][]float64{{0.9, 0.1, 0}, {0, 0, 0}}, Power: 151},
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	if got[0].Tick != 1 || got[0].Power != 160.5 || got[1].Coalition != 0b01 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadSkipsBlankAndFailsCorrupt(t *testing.T) {
	input := `{"tick":1,"coalition":1,"states":[[1,0,0]],"power":151}

{"tick":2,"coalition":1,"states":[[0.5,0,0]],"power":145}
`
	recs, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records", len(recs))
	}
	if _, err := Read(strings.NewReader("not json\n")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestSnapshotValidation(t *testing.T) {
	rec := Record{Tick: 1, Coalition: 1, States: [][]float64{{1, 0, 0}}, Power: 150}
	if _, err := rec.Snapshot(2); err == nil {
		t.Fatal("want state-count error")
	}
	bad := Record{Tick: 1, Coalition: 1, States: [][]float64{{1, 0}}, Power: 150}
	if _, err := bad.Snapshot(1); err == nil {
		t.Fatal("want component-count error")
	}
	outOfRange := Record{Tick: 1, Coalition: 1, States: [][]float64{{2, 0, 0}}, Power: 150}
	if _, err := outOfRange.Snapshot(1); err == nil {
		t.Fatal("want state-range error")
	}
	snap, err := rec.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Coalition != vm.CoalitionOf(0) || snap.States[0][vm.CPU] != 1 {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

// TestRecordThenReplayMatchesLive records a live run and re-estimates it
// offline: the replayed allocations must match the live ones exactly
// (the estimator is deterministic given states and power).
func TestRecordThenReplayMatchesLive(t *testing.T) {
	host, est := testEstimator(t)
	if err := host.Attach(0, workload.GCC(5)); err != nil {
		t.Fatal(err)
	}
	if err := host.Attach(1, workload.Omnetpp(6)); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.GrandCoalition(2))

	var buf bytes.Buffer
	w := NewWriter(&buf)
	var live [][]float64
	const ticks = 10
	for i := 0; i < ticks; i++ {
		host.Advance(1)
		snap := host.Collect()
		power, err := host.TruePower()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteSnapshot(snap, power); err != nil {
			t.Fatal(err)
		}
		alloc, err := est.Estimate(snap, power)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, alloc.PerVM)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != ticks {
		t.Fatalf("recorded %d ticks", len(recs))
	}
	idx := 0
	if err := Replay(est, recs, func(alloc *core.Allocation) bool {
		for i, p := range alloc.PerVM {
			if math.Abs(p-live[idx][i]) > 1e-9 {
				t.Fatalf("tick %d vm %d: replay %g vs live %g", idx, i, p, live[idx][i])
			}
		}
		idx++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if idx != ticks {
		t.Fatalf("replayed %d ticks", idx)
	}
}

func TestReplayValidation(t *testing.T) {
	_, est := testEstimator(t)
	if err := Replay(nil, nil, nil); err == nil {
		t.Fatal("want nil-estimator error")
	}
	bad := []Record{{Tick: 1, Coalition: 1, States: [][]float64{{1, 0, 0}}, Power: 150}}
	if err := Replay(est, bad, nil); err == nil {
		t.Fatal("want state-count error (host has 2 VMs)")
	}
	// Early stop.
	good := []Record{
		{Tick: 1, Coalition: 0b11, States: [][]float64{{1, 0, 0}, {0.5, 0, 0}}, Power: 160},
		{Tick: 2, Coalition: 0b11, States: [][]float64{{1, 0, 0}, {0.5, 0, 0}}, Power: 160},
	}
	n := 0
	if err := Replay(est, good, func(*core.Allocation) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop after %d", n)
	}
}
