// Package replay records and replays power-accounting traces: per-tick
// (running coalition, VM states, measured power) tuples in a line-oriented
// JSON format. A recorded trace lets billing and estimation run offline,
// be audited, or be re-disaggregated later under a different policy —
// e.g. re-pricing a month of telemetry after changing the idle-power
// attribution rule — without replaying the workloads themselves.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/vm"
)

// Record is one tick of telemetry.
type Record struct {
	// Tick is the 1 Hz timestamp.
	Tick int `json:"tick"`
	// Coalition is the running VM bitmask.
	Coalition uint32 `json:"coalition"`
	// States holds every VM's component state vector (stopped VMs zero).
	States [][]float64 `json:"states"`
	// Power is the measured total machine power in watts.
	Power float64 `json:"power"`
}

// fromSnapshot converts a hypervisor snapshot plus meter reading.
func fromSnapshot(snap hypervisor.Snapshot, power float64) Record {
	states := make([][]float64, len(snap.States))
	for i, s := range snap.States {
		states[i] = s.Vec()
	}
	return Record{
		Tick:      snap.Tick,
		Coalition: uint32(snap.Coalition),
		States:    states,
		Power:     power,
	}
}

// Snapshot converts the record back into a hypervisor snapshot.
// numVMs guards against truncated records.
func (r Record) Snapshot(numVMs int) (hypervisor.Snapshot, error) {
	if len(r.States) != numVMs {
		return hypervisor.Snapshot{}, fmt.Errorf("replay: record at tick %d has %d states, want %d", r.Tick, len(r.States), numVMs)
	}
	states := make([]vm.State, numVMs)
	for i, vec := range r.States {
		if len(vec) != int(vm.NumComponents) {
			return hypervisor.Snapshot{}, fmt.Errorf("replay: record at tick %d: state %d has %d components", r.Tick, i, len(vec))
		}
		copy(states[i][:], vec)
		if err := states[i].Validate(); err != nil {
			return hypervisor.Snapshot{}, fmt.Errorf("replay: record at tick %d: %w", r.Tick, err)
		}
	}
	return hypervisor.Snapshot{
		Tick:      r.Tick,
		Coalition: vm.Coalition(r.Coalition),
		States:    states,
	}, nil
}

// Writer streams records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (tw *Writer) Write(rec Record) error {
	if err := tw.enc.Encode(rec); err != nil {
		return fmt.Errorf("replay: encode: %w", err)
	}
	return nil
}

// WriteSnapshot appends a snapshot + power reading.
func (tw *Writer) WriteSnapshot(snap hypervisor.Snapshot, power float64) error {
	return tw.Write(fromSnapshot(snap, power))
}

// Flush drains buffered output; call before closing the underlying file.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// ErrCorrupt marks undecodable trace lines.
var ErrCorrupt = errors.New("replay: corrupt trace line")

// Read parses a whole trace. Blank lines are skipped; a malformed line
// fails with ErrCorrupt and its line number.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCorrupt, line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: read: %w", err)
	}
	return out, nil
}

// Replay re-estimates every record with a trained estimator, invoking fn
// per allocation. The estimator's host defines the VM set; it is not
// ticked — the records carry the states.
func Replay(est *core.Estimator, recs []Record, fn func(*core.Allocation) bool) error {
	if est == nil {
		return errors.New("replay: nil estimator")
	}
	numVMs := est.Host().Set().Len()
	for i, rec := range recs {
		snap, err := rec.Snapshot(numVMs)
		if err != nil {
			return fmt.Errorf("replay: record %d: %w", i, err)
		}
		alloc, err := est.Estimate(snap, rec.Power)
		if err != nil {
			return fmt.Errorf("replay: record %d: %w", i, err)
		}
		if fn != nil && !fn(alloc) {
			return nil
		}
	}
	return nil
}
