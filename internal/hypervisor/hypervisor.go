// Package hypervisor simulates the prototype's virtualization host
// (Citrix XenServer in the paper, Sec. VI-B): it owns a VM set on a
// simulated physical machine, binds workloads to VMs, advances a 1 Hz
// clock, and collects per-VM component states each tick the way the
// paper's dstat-based collector does (Sec. VI-C), quantized to the
// configured normalizing resolution (0.01 in the evaluation).
package hypervisor

import (
	"errors"
	"fmt"
	"sync"

	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// DefaultResolution is the paper's normalizing resolution for state data.
const DefaultResolution = 0.01

// Option configures a Host.
type Option func(*Host)

// WithResolution sets the state quantization resolution (<=0 disables).
func WithResolution(r float64) Option {
	return func(h *Host) { h.resolution = r }
}

// Host is a simulated hypervisor host.
type Host struct {
	mach       *machine.Machine
	set        *vm.Set
	resolution float64

	mu        sync.Mutex
	tick      int
	running   []bool
	workloads []workload.Generator
	epochs    []int     // tick at which each VM's workload was attached
	cpuLimits []float64 // per-VM CPU ceiling, 0..1 (1 = unthrottled)
	retired   []bool    // permanently stopped slots (removed/migrated-away VMs)
}

// NewHost builds a host for the VM set on the machine. All VMs start
// stopped with no workload attached (idle when started).
func NewHost(mach *machine.Machine, set *vm.Set, opts ...Option) (*Host, error) {
	if mach == nil {
		return nil, errors.New("hypervisor: nil machine")
	}
	if set == nil || set.Len() == 0 {
		return nil, errors.New("hypervisor: empty VM set")
	}
	// Reject sets that could never run together: the paper pins one vCPU
	// per logical core.
	total := 0
	for i := 0; i < set.Len(); i++ {
		t, err := set.TypeOf(vm.ID(i))
		if err != nil {
			return nil, err
		}
		total += t.VCPUs
	}
	if total > mach.Profile().LogicalCores() {
		return nil, fmt.Errorf("%w: set needs %d vCPUs, machine has %d logical cores",
			machine.ErrOvercommit, total, mach.Profile().LogicalCores())
	}
	h := &Host{
		mach:       mach,
		set:        set,
		resolution: DefaultResolution,
		running:    make([]bool, set.Len()),
		workloads:  make([]workload.Generator, set.Len()),
		epochs:     make([]int, set.Len()),
		cpuLimits:  make([]float64, set.Len()),
		retired:    make([]bool, set.Len()),
	}
	for i := range h.cpuLimits {
		h.cpuLimits[i] = 1
	}
	for _, opt := range opts {
		opt(h)
	}
	return h, nil
}

// Set returns the VM set.
func (h *Host) Set() *vm.Set { return h.set }

// Machine returns the underlying simulated machine.
func (h *Host) Machine() *machine.Machine { return h.mach }

// Resolution returns the state quantization resolution.
func (h *Host) Resolution() float64 { return h.resolution }

// Attach binds a workload generator to a VM (nil detaches; the VM then
// idles when running). The workload starts from its own tick 0 at attach
// time: the collector passes generators ticks relative to the attach
// instant, so a recorded trace or a phased benchmark begins at its
// beginning regardless of the host clock.
func (h *Host) Attach(id vm.ID, g workload.Generator) error {
	if _, err := h.set.VM(id); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.retired[int(id)] {
		return fmt.Errorf("hypervisor: VM %d is retired", int(id))
	}
	h.workloads[int(id)] = g
	h.epochs[int(id)] = h.tick
	return nil
}

// Start boots a VM. Starting a running VM is a no-op; starting a retired
// slot is an error (the VM left this host for good).
func (h *Host) Start(id vm.ID) error {
	if _, err := h.set.VM(id); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.retired[int(id)] {
		return fmt.Errorf("hypervisor: VM %d is retired", int(id))
	}
	h.running[int(id)] = true
	return nil
}

// Stop shuts a VM down. Stopping a stopped VM is a no-op.
func (h *Host) Stop(id vm.ID) error {
	if _, err := h.set.VM(id); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.running[int(id)] = false
	return nil
}

// SetCoalition starts exactly the VMs in mask and stops the rest
// (retired slots stay stopped whatever the mask says). On a wide host
// (more than vm.MaxPlayers VMs) a mask can only address the first
// vm.MaxPlayers VMs; use SetRunning there.
func (h *Host) SetCoalition(mask vm.Coalition) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.running {
		h.running[i] = mask.Contains(vm.ID(i)) && !h.retired[i]
	}
}

// SetRunning starts exactly the VMs with running[i] true and stops the
// rest — the wide-set equivalent of SetCoalition, usable at any set size.
// Retired slots stay stopped.
func (h *Host) SetRunning(running []bool) error {
	if len(running) != h.set.Len() {
		return fmt.Errorf("hypervisor: %d running flags for %d VMs", len(running), h.set.Len())
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, r := range running {
		h.running[i] = r && !h.retired[i]
	}
	return nil
}

// activeVCPUsLocked sums the vCPUs of the non-retired slots — the
// capacity AddVM checks against: a retired VM's pinned cores are free
// again, a merely stopped VM's are not (it may boot back any tick).
func (h *Host) activeVCPUsLocked() (int, error) {
	total := 0
	for i := 0; i < h.set.Len(); i++ {
		if h.retired[i] {
			continue
		}
		t, err := h.set.TypeOf(vm.ID(i))
		if err != nil {
			return 0, err
		}
		total += t.VCPUs
	}
	return total, nil
}

// AddVM hot-plugs a VM past the static roster: the set grows by one slot
// and the per-VM vectors grow with it. The new VM starts stopped with no
// workload, exactly like a NewHost VM; capacity is checked against the
// non-retired slots (the paper pins one vCPU per logical core). The
// caller owns invalidating anything compiled against the old set width
// (worth plans, scratch tables). Not safe concurrently with Collect or
// estimation; mutate between ticks.
func (h *Host) AddVM(v vm.VM) (vm.ID, error) {
	t, err := h.set.Catalog().ByID(v.Type)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	active, err := h.activeVCPUsLocked()
	if err != nil {
		return 0, err
	}
	if active+t.VCPUs > h.mach.Profile().LogicalCores() {
		return 0, fmt.Errorf("%w: adding %d vCPUs to %d active, machine has %d logical cores",
			machine.ErrOvercommit, t.VCPUs, active, h.mach.Profile().LogicalCores())
	}
	id, err := h.set.Append(v)
	if err != nil {
		return 0, err
	}
	h.running = append(h.running, false)
	h.workloads = append(h.workloads, nil)
	h.epochs = append(h.epochs, 0)
	h.cpuLimits = append(h.cpuLimits, 1)
	h.retired = append(h.retired, false)
	return id, nil
}

// Retire permanently removes a VM from the host's live roster: the slot
// is stopped, its workload detached, and its vCPUs released for AddVM
// capacity. The dense ID space is preserved (coalition masks and PerVM
// indices stay aligned), so the slot lingers as a stopped dummy — exact
// Shapley gives it φ = 0 forever. Retiring a retired slot is a no-op.
func (h *Host) Retire(id vm.ID) error {
	if _, err := h.set.VM(id); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.running[int(id)] = false
	h.workloads[int(id)] = nil
	h.retired[int(id)] = true
	return nil
}

// IsRunning reports whether a VM is currently running.
func (h *Host) IsRunning(id vm.ID) (bool, error) {
	if _, err := h.set.VM(id); err != nil {
		return false, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.running[int(id)], nil
}

// Retired reports whether a slot was retired.
func (h *Host) Retired(id vm.ID) (bool, error) {
	if _, err := h.set.VM(id); err != nil {
		return false, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.retired[int(id)], nil
}

// SetCPULimit caps a VM's CPU utilization at frac (0..1], the way a
// hypervisor's credit scheduler enforces a per-VM cap. The limit applies
// to the state the collector reports (and hence to the power the VM can
// draw); 1 removes the cap.
func (h *Host) SetCPULimit(id vm.ID, frac float64) error {
	if _, err := h.set.VM(id); err != nil {
		return err
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("hypervisor: CPU limit %g outside (0,1]", frac)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cpuLimits[int(id)] = frac
	return nil
}

// CPULimit returns a VM's current CPU ceiling (1 when unthrottled).
func (h *Host) CPULimit(id vm.ID) (float64, error) {
	if _, err := h.set.VM(id); err != nil {
		return 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cpuLimits[int(id)], nil
}

// Running returns the currently running coalition.
func (h *Host) Running() vm.Coalition {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.runningLocked()
}

func (h *Host) runningLocked() vm.Coalition {
	// A bitmask can only address the first vm.MaxPlayers VMs; on a wide
	// host the coalition view is meaningless — callers must use the
	// Running flags instead (the zero mask keeps With from silently
	// wrapping shifts past the word width).
	if h.set.Len() > vm.MaxPlayers {
		return vm.EmptyCoalition
	}
	var c vm.Coalition
	for i, r := range h.running {
		if r {
			c = c.With(vm.ID(i))
		}
	}
	return c
}

// Advance moves the host clock forward by n ticks (1 tick = 1 s).
func (h *Host) Advance(n int) {
	if n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tick += n
}

// Clock returns the current tick.
func (h *Host) Clock() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tick
}

// Snapshot is one tick's collected host state: what the paper's collector
// forwards to the estimation framework.
type Snapshot struct {
	// Tick is the host clock at collection time.
	Tick int
	// Coalition is the set of running VMs. On a wide host (more than
	// vm.MaxPlayers VMs) the mask cannot represent the set and is left
	// empty; use Running instead.
	Coalition vm.Coalition
	// Running holds one flag per VM (true = running) and is valid at any
	// set size, unlike the Coalition mask.
	Running []bool
	// States holds every VM's component state (stopped VMs are zero),
	// quantized to the host resolution.
	States []vm.State
}

// Collect returns the current tick's snapshot. Stopped VMs report a zero
// state; running VMs report their workload's state at the current tick
// (idle if no workload is attached), quantized to the host resolution.
func (h *Host) Collect() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	states := make([]vm.State, h.set.Len())
	running := make([]bool, h.set.Len())
	copy(running, h.running)
	for i := range states {
		if !h.running[i] {
			continue
		}
		if g := h.workloads[i]; g != nil {
			s := g.StateAt(h.tick - h.epochs[i])
			if limit := h.cpuLimits[i]; s[vm.CPU] > limit {
				s[vm.CPU] = limit
			}
			states[i] = s.Quantize(h.resolution)
		}
	}
	return Snapshot{Tick: h.tick, Coalition: h.runningLocked(), Running: running, States: states}
}

// Loads returns the machine loads of the currently running VMs in VM ID
// order, using the current tick's states. It iterates the Running flags
// rather than the Coalition mask, so it is correct on wide hosts too.
func (h *Host) Loads() ([]machine.Load, error) {
	snap := h.Collect()
	return h.LoadsRunning(snap.Running, snap.States)
}

// LoadsRunning builds machine loads for an arbitrary running-flag vector
// and state assignment — the wide-set equivalent of LoadsFor.
func (h *Host) LoadsRunning(running []bool, states []vm.State) ([]machine.Load, error) {
	if len(states) != h.set.Len() {
		return nil, fmt.Errorf("hypervisor: %d states for %d VMs", len(states), h.set.Len())
	}
	if len(running) != h.set.Len() {
		return nil, fmt.Errorf("hypervisor: %d running flags for %d VMs", len(running), h.set.Len())
	}
	loads := make([]machine.Load, 0, len(running))
	for i, r := range running {
		if !r {
			continue
		}
		t, err := h.set.TypeOf(vm.ID(i))
		if err != nil {
			return nil, err
		}
		loads = append(loads, machine.Load{
			VCPUs:    t.VCPUs,
			MemoryGB: t.MemoryGB,
			DiskGB:   t.DiskGB,
			State:    states[i],
		})
	}
	return loads, nil
}

// LoadsFor builds machine loads for an arbitrary coalition and state
// assignment (used when evaluating hypothetical coalitions).
func (h *Host) LoadsFor(mask vm.Coalition, states []vm.State) ([]machine.Load, error) {
	if len(states) != h.set.Len() {
		return nil, fmt.Errorf("hypervisor: %d states for %d VMs", len(states), h.set.Len())
	}
	loads := make([]machine.Load, 0, mask.Size())
	for _, id := range mask.Members() {
		t, err := h.set.TypeOf(id)
		if err != nil {
			return nil, err
		}
		loads = append(loads, machine.Load{
			VCPUs:    t.VCPUs,
			MemoryGB: t.MemoryGB,
			DiskGB:   t.DiskGB,
			State:    states[int(id)],
		})
	}
	return loads, nil
}

// TruePower returns the machine's current total wall power (including
// idle) — what a perfect meter would read right now.
func (h *Host) TruePower() (float64, error) {
	loads, err := h.Loads()
	if err != nil {
		return 0, err
	}
	return h.mach.Power(loads)
}

// PowerSource adapts the host to a meter.PowerSource, so a SimMeter can
// "plug into" the simulated machine the way the prototype's wall meter
// plugs into server A.
func (h *Host) PowerSource() meter.PowerSource {
	return h.TruePower
}

// DynamicPowerFor returns the ground-truth dynamic power (idle deducted)
// of a hypothetical coalition under the given states — the oracle worth
// v(S, C) used by experiments to validate against exact Shapley.
func (h *Host) DynamicPowerFor(mask vm.Coalition, states []vm.State) (float64, error) {
	loads, err := h.LoadsFor(mask, states)
	if err != nil {
		return 0, err
	}
	return h.mach.DynamicPower(loads)
}
