package hypervisor

import (
	"errors"
	"math"
	"testing"

	"vmpower/internal/machine"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func testHost(t *testing.T, opts ...Option) *Host {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "a", Type: 0},
		{Name: "b", Type: 0},
		{Name: "c", Type: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := NewHost(mach, set, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return host
}

func TestNewHostValidation(t *testing.T) {
	mach, _ := machine.New(machine.XeonProfile(), machine.Pack)
	if _, err := NewHost(nil, nil); err == nil {
		t.Fatal("want nil-machine error")
	}
	if _, err := NewHost(mach, nil); err == nil {
		t.Fatal("want empty-set error")
	}
	// A set that exceeds the machine's logical cores must be rejected.
	small, err := machine.New(machine.PentiumProfile(), machine.Pack) // 4 logical
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{{Type: 3}}) // 8 vCPUs
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHost(small, set); !errors.Is(err, machine.ErrOvercommit) {
		t.Fatalf("want ErrOvercommit, got %v", err)
	}
}

func TestLifecycle(t *testing.T) {
	h := testHost(t)
	if !h.Running().IsEmpty() {
		t.Fatal("all VMs must start stopped")
	}
	if err := h.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(0); err != nil {
		t.Fatal(err) // idempotent
	}
	if got := h.Running(); !got.Contains(0) || got.Size() != 1 {
		t.Fatalf("Running = %s", got)
	}
	if err := h.Stop(0); err != nil {
		t.Fatal(err)
	}
	if !h.Running().IsEmpty() {
		t.Fatal("Stop must remove the VM")
	}
	if err := h.Start(99); err == nil {
		t.Fatal("want unknown-VM error")
	}
	if err := h.Stop(99); err == nil {
		t.Fatal("want unknown-VM error")
	}
}

func TestSetCoalition(t *testing.T) {
	h := testHost(t)
	h.SetCoalition(vm.CoalitionOf(0, 2))
	if got := h.Running(); got != vm.CoalitionOf(0, 2) {
		t.Fatalf("Running = %s", got)
	}
	h.SetCoalition(vm.EmptyCoalition)
	if !h.Running().IsEmpty() {
		t.Fatal("SetCoalition(empty) must stop everything")
	}
}

func TestClockAdvance(t *testing.T) {
	h := testHost(t)
	if h.Clock() != 0 {
		t.Fatal("clock must start at 0")
	}
	h.Advance(3)
	h.Advance(0)
	h.Advance(-5)
	if h.Clock() != 3 {
		t.Fatalf("Clock = %d, want 3", h.Clock())
	}
}

func TestCollect(t *testing.T) {
	h := testHost(t)
	if err := h.Attach(0, workload.Constant("c", vm.State{vm.CPU: 0.456})); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(1, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(9, nil); err == nil {
		t.Fatal("want unknown-VM attach error")
	}
	h.SetCoalition(vm.CoalitionOf(0)) // only VM 0 runs
	snap := h.Collect()
	if snap.Coalition != vm.CoalitionOf(0) {
		t.Fatalf("Coalition = %s", snap.Coalition)
	}
	// Running VM's state is quantized to the default 0.01 resolution.
	if got := snap.States[0][vm.CPU]; math.Abs(got-0.46) > 1e-12 {
		t.Fatalf("quantized state = %g, want 0.46", got)
	}
	// Stopped VMs report zero states even with workloads attached.
	if !snap.States[1].IsIdle() {
		t.Fatal("stopped VM must report idle state")
	}
	// Running VM with no workload idles.
	h.SetCoalition(vm.CoalitionOf(2))
	if !h.Collect().States[2].IsIdle() {
		t.Fatal("running VM without workload must idle")
	}
}

func TestResolutionOption(t *testing.T) {
	h := testHost(t, WithResolution(0.1))
	if h.Resolution() != 0.1 {
		t.Fatalf("Resolution = %g", h.Resolution())
	}
	if err := h.Attach(0, workload.Constant("c", vm.State{vm.CPU: 0.456})); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(0); err != nil {
		t.Fatal(err)
	}
	if got := h.Collect().States[0][vm.CPU]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("state at 0.1 resolution = %g, want 0.5", got)
	}
}

func TestLoadsAndPower(t *testing.T) {
	h := testHost(t)
	if err := h.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(0); err != nil {
		t.Fatal(err)
	}
	loads, err := h.Loads()
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 1 || loads[0].VCPUs != 1 {
		t.Fatalf("Loads = %+v", loads)
	}
	p, err := h.TruePower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-151) > 0.5 { // 138 idle + 13 dynamic
		t.Fatalf("TruePower = %g, want ~151", p)
	}
	src := h.PowerSource()
	p2, err := src()
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatalf("PowerSource = %g, TruePower = %g", p2, p)
	}
}

func TestCPULimits(t *testing.T) {
	h := testHost(t)
	if err := h.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(0); err != nil {
		t.Fatal(err)
	}
	// Default limit is 1 (unthrottled).
	limit, err := h.CPULimit(0)
	if err != nil {
		t.Fatal(err)
	}
	if limit != 1 {
		t.Fatalf("default limit = %g", limit)
	}
	if err := h.SetCPULimit(0, 0.4); err != nil {
		t.Fatal(err)
	}
	snap := h.Collect()
	if got := snap.States[0][vm.CPU]; math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("throttled CPU = %g, want 0.4", got)
	}
	// A workload below the limit is unaffected.
	if err := h.Attach(0, workload.Constant("low", vm.State{vm.CPU: 0.2})); err != nil {
		t.Fatal(err)
	}
	if got := h.Collect().States[0][vm.CPU]; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("under-limit CPU = %g, want 0.2", got)
	}
	// Validation.
	if err := h.SetCPULimit(99, 0.5); err == nil {
		t.Fatal("want unknown-VM error")
	}
	if err := h.SetCPULimit(0, 0); err == nil {
		t.Fatal("want range error for 0")
	}
	if err := h.SetCPULimit(0, 1.5); err == nil {
		t.Fatal("want range error for > 1")
	}
	if _, err := h.CPULimit(99); err == nil {
		t.Fatal("want unknown-VM error")
	}
}

func TestWorkloadEpoch(t *testing.T) {
	// A workload attached late starts from its own tick 0: the host
	// passes generators attach-relative ticks.
	h := testHost(t)
	h.Advance(100)
	tr := workload.Trace{Label: "t", Samples: []vm.State{
		{vm.CPU: 0.9}, {vm.CPU: 0.1},
	}}
	if err := h.Attach(0, tr); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(0); err != nil {
		t.Fatal(err)
	}
	if got := h.Collect().States[0][vm.CPU]; math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("epoch tick 0 = %g, want 0.9", got)
	}
	h.Advance(1)
	if got := h.Collect().States[0][vm.CPU]; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("epoch tick 1 = %g, want 0.1", got)
	}
}

func TestLoadsFor(t *testing.T) {
	h := testHost(t)
	states := []vm.State{{vm.CPU: 1}, {vm.CPU: 0.5}, {vm.CPU: 0.2}}
	loads, err := h.LoadsFor(vm.CoalitionOf(0, 2), states)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 {
		t.Fatalf("LoadsFor size = %d", len(loads))
	}
	if loads[1].VCPUs != 2 { // VM 2 is type 1 (2 vCPUs)
		t.Fatalf("second load vCPUs = %d", loads[1].VCPUs)
	}
	if _, err := h.LoadsFor(vm.CoalitionOf(0), states[:1]); err == nil {
		t.Fatal("want state-count error")
	}
}

func TestDynamicPowerFor(t *testing.T) {
	h := testHost(t)
	states := []vm.State{{vm.CPU: 1}, {vm.CPU: 1}, {}}
	// Two 1-vCPU VMs at full: 13 + 7 = 20 W (pack placement).
	p, err := h.DynamicPowerFor(vm.CoalitionOf(0, 1), states)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 1e-9 {
		t.Fatalf("DynamicPowerFor = %g, want 20", p)
	}
	empty, err := h.DynamicPowerFor(vm.EmptyCoalition, states)
	if err != nil {
		t.Fatal(err)
	}
	if empty != 0 {
		t.Fatalf("empty coalition power = %g", empty)
	}
}
