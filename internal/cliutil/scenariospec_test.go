package cliutil

import (
	"strings"
	"testing"

	"vmpower/internal/vm"
)

func TestParseScenarioValid(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []ScenarioEvent
	}{
		{
			name: "poweroff and poweron",
			in:   "web1@5:poweroff, web1@9:poweron",
			want: []ScenarioEvent{
				{Subject: "web1", Host: -1, Dest: -1, Tick: 5, Kind: ScenarioPowerOff},
				{Subject: "web1", Host: -1, Dest: -1, Tick: 9, Kind: ScenarioPowerOn},
			},
		},
		{
			name: "migrate",
			in:   "db1@12:migrate:2:3",
			want: []ScenarioEvent{
				{Subject: "db1", Host: -1, Dest: 2, Tick: 12, Kind: ScenarioMigrate, CopyTicks: 3},
			},
		},
		{
			name: "cold migrate zero window",
			in:   "db1@12:migrate:0:0",
			want: []ScenarioEvent{
				{Subject: "db1", Host: -1, Dest: 0, Tick: 12, Kind: ScenarioMigrate},
			},
		},
		{
			name: "hotplug minimal",
			in:   "web9@4:hotplug:1:small:acme",
			want: []ScenarioEvent{
				{Subject: "web9", Host: -1, Dest: 1, Tick: 4, Kind: ScenarioHotplug, Type: vm.TypeID(0), Tenant: "acme"},
			},
		},
		{
			name: "hotplug with workload and seed",
			in:   "web9@4:hotplug:1:xlarge:acme:cpu-burst:77",
			want: []ScenarioEvent{
				{Subject: "web9", Host: -1, Dest: 1, Tick: 4, Kind: ScenarioHotplug,
					Type: vm.TypeID(3), Tenant: "acme", Workload: "cpu-burst", WorkloadSeed: 77},
			},
		},
		{
			name: "remove",
			in:   "web9@40:remove",
			want: []ScenarioEvent{
				{Subject: "web9", Host: -1, Dest: -1, Tick: 40, Kind: ScenarioRemove},
			},
		},
		{
			name: "drain default window",
			in:   "host:0@20:drain",
			want: []ScenarioEvent{
				{Subject: "host:0", Host: 0, Dest: -1, Tick: 20, Kind: ScenarioDrain, CopyTicks: 1},
			},
		},
		{
			name: "drain explicit window and undrain",
			in:   "host:2@20:drain:4,host:2@30:undrain",
			want: []ScenarioEvent{
				{Subject: "host:2", Host: 2, Dest: -1, Tick: 20, Kind: ScenarioDrain, CopyTicks: 4},
				{Subject: "host:2", Host: 2, Dest: -1, Tick: 30, Kind: ScenarioUndrain},
			},
		},
		{
			name: "autoscale",
			in:   "grp:api@10:autoscale:1:4",
			want: []ScenarioEvent{
				{Subject: "api", Host: -1, Dest: -1, Tick: 10, Kind: ScenarioAutoscale, Min: 1, Max: 4},
			},
		},
		{
			name: "sorted by tick, stable within",
			in:   "b@7:poweron,a@3:poweroff,c@3:poweron",
			want: []ScenarioEvent{
				{Subject: "a", Host: -1, Dest: -1, Tick: 3, Kind: ScenarioPowerOff},
				{Subject: "c", Host: -1, Dest: -1, Tick: 3, Kind: ScenarioPowerOn},
				{Subject: "b", Host: -1, Dest: -1, Tick: 7, Kind: ScenarioPowerOn},
			},
		},
		{
			name: "trailing comma and spaces",
			in:   " web1@5:poweroff , ",
			want: []ScenarioEvent{
				{Subject: "web1", Host: -1, Dest: -1, Tick: 5, Kind: ScenarioPowerOff},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseScenario(tt.in)
			if err != nil {
				t.Fatalf("ParseScenario(%q): %v", tt.in, err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %d events, want %d: %+v", len(got), len(tt.want), got)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("event %d:\n got  %+v\n want %+v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestParseScenarioErrors(t *testing.T) {
	tests := []struct {
		name, in, errSub string
	}{
		{"empty list", "", "empty scenario"},
		{"only commas", " , ,", "empty scenario"},
		{"no at sign", "web1:poweron", "want subject@tick"},
		{"empty subject", "@5:poweron", "empty subject"},
		{"missing event", "web1@5", "want subject@tick"},
		{"empty event", "web1@5:", "empty event"},
		{"unknown event", "web1@5:explode", `unknown event "explode"`},
		{"bad tick", "web1@x:poweron", "bad tick"},
		{"zero tick", "web1@0:poweron", "bad tick"},
		{"negative tick", "web1@-3:poweron", "bad tick"},
		{"poweron with args", "web1@5:poweron:2", "takes no arguments"},
		{"poweron on host", "host:1@5:poweron", "takes a VM name"},
		{"poweron on group", "grp:api@5:poweron", "takes a VM name"},
		{"vm name with colon", "we:b1@5:poweron", "cannot contain"},
		{"migrate missing args", "web1@5:migrate:2", "wants :<host>:<copyticks>"},
		{"migrate extra args", "web1@5:migrate:2:3:4", "wants :<host>:<copyticks>"},
		{"migrate bad host", "web1@5:migrate:x:3", "bad destination host"},
		{"migrate negative host", "web1@5:migrate:-1:3", "bad destination host"},
		{"migrate bad window", "web1@5:migrate:2:-1", "bad copy window"},
		{"migrate on host subject", "host:0@5:migrate:2:3", "takes a VM name"},
		{"hotplug too few", "web9@4:hotplug:1:small", "wants :<host>:<type>:<tenant>"},
		{"hotplug too many", "web9@4:hotplug:1:small:acme:cpu-burst:7:9", "wants :<host>:<type>:<tenant>"},
		{"hotplug bad host", "web9@4:hotplug:x:small:acme", "bad host"},
		{"hotplug bad type", "web9@4:hotplug:1:giant:acme", `unknown VM type "giant"`},
		{"hotplug empty tenant", "web9@4:hotplug:1:small: ", "empty tenant"},
		{"hotplug empty workload", "web9@4:hotplug:1:small:acme: ", "empty workload"},
		{"hotplug bad seed", "web9@4:hotplug:1:small:acme:cpu-burst:x", "bad workload seed"},
		{"drain on vm", "web1@5:drain", "takes a host:<i> subject"},
		{"drain bad host index", "host:x@5:drain", "bad host subject"},
		{"drain negative host", "host:-1@5:drain", "bad host subject"},
		{"drain extra args", "host:0@5:drain:1:2", "at most :<copyticks>"},
		{"drain bad window", "host:0@5:drain:-1", "bad copy window"},
		{"undrain on vm", "web1@5:undrain", "takes a host:<i> subject"},
		{"undrain with args", "host:0@5:undrain:1", "takes no arguments"},
		{"autoscale on vm", "web1@5:autoscale:1:4", "takes a grp:<prefix> subject"},
		{"autoscale on host", "host:0@5:autoscale:1:4", "takes a grp:<prefix> subject"},
		{"autoscale empty prefix", "grp:@5:autoscale:1:4", "empty group prefix"},
		{"autoscale missing args", "grp:api@5:autoscale:1", "wants :<min>:<max>"},
		{"autoscale bad min", "grp:api@5:autoscale:x:4", "bad min"},
		{"autoscale negative min", "grp:api@5:autoscale:-1:4", "bad min"},
		{"autoscale max below min", "grp:api@5:autoscale:4:1", "max 1 < min 4"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseScenario(tt.in)
			if err == nil {
				t.Fatalf("ParseScenario(%q) succeeded, want error containing %q", tt.in, tt.errSub)
			}
			if !strings.Contains(err.Error(), tt.errSub) {
				t.Errorf("ParseScenario(%q) error %q, want substring %q", tt.in, err, tt.errSub)
			}
		})
	}
}

// FuzzParseScenario asserts the parser never panics and that every
// accepted scenario obeys the invariants the engine relies on.
func FuzzParseScenario(f *testing.F) {
	f.Add("web1@5:poweroff,web1@9:poweron")
	f.Add("db1@12:migrate:2:3")
	f.Add("web9@4:hotplug:1:xlarge:acme:cpu-burst:77")
	f.Add("host:0@20:drain:2,host:0@30:undrain")
	f.Add("grp:api@10:autoscale:1:4")
	f.Add("a@1:remove")
	f.Add("@@::,,")
	f.Fuzz(func(t *testing.T, in string) {
		evs, err := ParseScenario(in)
		if err != nil {
			return
		}
		if len(evs) == 0 {
			t.Fatal("accepted scenario with zero events")
		}
		last := 0
		for _, ev := range evs {
			if ev.Tick < 1 {
				t.Fatalf("accepted tick %d < 1: %+v", ev.Tick, ev)
			}
			if ev.Tick < last {
				t.Fatalf("events not sorted by tick: %+v", evs)
			}
			last = ev.Tick
			switch ev.Kind {
			case ScenarioPowerOn, ScenarioPowerOff, ScenarioRemove:
				if ev.Subject == "" || ev.Host >= 0 {
					t.Fatalf("VM event with host subject: %+v", ev)
				}
			case ScenarioMigrate:
				if ev.Dest < 0 || ev.CopyTicks < 0 {
					t.Fatalf("bad migrate: %+v", ev)
				}
			case ScenarioHotplug:
				if ev.Dest < 0 || ev.Tenant == "" {
					t.Fatalf("bad hotplug: %+v", ev)
				}
			case ScenarioDrain:
				if ev.Host < 0 || ev.CopyTicks < 0 {
					t.Fatalf("bad drain: %+v", ev)
				}
			case ScenarioUndrain:
				if ev.Host < 0 {
					t.Fatalf("bad undrain: %+v", ev)
				}
			case ScenarioAutoscale:
				if ev.Subject == "" || ev.Min < 0 || ev.Max < ev.Min {
					t.Fatalf("bad autoscale: %+v", ev)
				}
			default:
				t.Fatalf("accepted unknown kind %q", ev.Kind)
			}
		}
	})
}
