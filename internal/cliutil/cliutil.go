// Package cliutil holds the small helpers the command-line tools share:
// VM and tenant spec lists in the name:type[:benchmark] format, log and
// fault-injection flag blocks, and version reporting (see version.go).
package cliutil

import (
	"fmt"
	"strings"

	"vmpower/internal/vm"
)

// TypeByName maps the CLI type names to Table IV catalog IDs.
var TypeByName = map[string]vm.TypeID{
	"small":  0,
	"medium": 1,
	"large":  2,
	"xlarge": 3,
}

// TypeName returns the CLI name of a catalog type ("?" when unknown).
func TypeName(t vm.TypeID) string {
	for name, id := range TypeByName {
		if id == t {
			return name
		}
	}
	return "?"
}

// VMSpec is one parsed name:type[:benchmark] entry.
type VMSpec struct {
	Name      string
	Type      vm.TypeID
	Benchmark string
}

// ParseVMSpecs parses a comma-separated spec list. Each entry is
// name:type or, when withBenchmark is set, name:type:benchmark. Names
// must be unique and non-empty.
func ParseVMSpecs(list string, withBenchmark bool) ([]VMSpec, error) {
	fields := 2
	format := "name:type"
	if withBenchmark {
		fields = 3
		format = "name:type:benchmark"
	}
	var out []VMSpec
	seen := make(map[string]bool)
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.SplitN(raw, ":", fields)
		if len(parts) != fields {
			return nil, fmt.Errorf("cliutil: bad spec %q (want %s)", raw, format)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("cliutil: spec %q has an empty name", raw)
		}
		if seen[name] {
			return nil, fmt.Errorf("cliutil: duplicate name %q", name)
		}
		seen[name] = true
		typ, ok := TypeByName[strings.TrimSpace(parts[1])]
		if !ok {
			return nil, fmt.Errorf("cliutil: unknown VM type %q (want small/medium/large/xlarge)", parts[1])
		}
		spec := VMSpec{Name: name, Type: typ}
		if withBenchmark {
			spec.Benchmark = strings.TrimSpace(parts[2])
			if spec.Benchmark == "" {
				return nil, fmt.Errorf("cliutil: spec %q has an empty benchmark", raw)
			}
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty spec list")
	}
	return out, nil
}
