package cliutil

import (
	"strings"
	"testing"
)

func TestParseVMSpecs(t *testing.T) {
	specs, err := ParseVMSpecs("web:small, db:large", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	if specs[0].Name != "web" || specs[0].Type != 0 {
		t.Fatalf("spec[0] = %+v", specs[0])
	}
	if specs[1].Name != "db" || specs[1].Type != 2 {
		t.Fatalf("spec[1] = %+v", specs[1])
	}
}

func TestParseVMSpecsWithBenchmark(t *testing.T) {
	specs, err := ParseVMSpecs("alice:medium:wrf,bob:xlarge:namd", true)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Benchmark != "wrf" || specs[1].Benchmark != "namd" {
		t.Fatalf("benchmarks = %q, %q", specs[0].Benchmark, specs[1].Benchmark)
	}
	if specs[1].Type != 3 {
		t.Fatalf("type = %d", specs[1].Type)
	}
}

func TestParseVMSpecsErrors(t *testing.T) {
	cases := []struct {
		name      string
		input     string
		benchmark bool
		wantIn    string
	}{
		{name: "missing type", input: "web", wantIn: "bad spec"},
		{name: "unknown type", input: "web:tiny", wantIn: "unknown VM type"},
		{name: "duplicate", input: "a:small,a:small", wantIn: "duplicate"},
		{name: "empty name", input: ":small", wantIn: "empty name"},
		{name: "empty list", input: " , ", wantIn: "empty spec list"},
		{name: "missing benchmark", input: "a:small", benchmark: true, wantIn: "bad spec"},
		{name: "empty benchmark", input: "a:small: ", benchmark: true, wantIn: "empty benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseVMSpecs(tc.input, tc.benchmark)
			if err == nil || !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("want error containing %q, got %v", tc.wantIn, err)
			}
		})
	}
}

func TestTypeName(t *testing.T) {
	for name, id := range TypeByName {
		if got := TypeName(id); got != name {
			t.Fatalf("TypeName(%d) = %q, want %q", id, got, name)
		}
	}
	if TypeName(99) != "?" {
		t.Fatal("unknown type must render ?")
	}
}
