package cliutil

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vmpower/internal/vm"
)

// Scenario event kinds, the verbs of the lifecycle DSL.
const (
	ScenarioPowerOn   = "poweron"
	ScenarioPowerOff  = "poweroff"
	ScenarioMigrate   = "migrate"
	ScenarioHotplug   = "hotplug"
	ScenarioRemove    = "remove"
	ScenarioDrain     = "drain"
	ScenarioUndrain   = "undrain"
	ScenarioAutoscale = "autoscale"
)

// ScenarioEvent is one parsed lifecycle event: at Tick, do Kind to
// Subject. Which extra fields are meaningful depends on Kind.
type ScenarioEvent struct {
	// Subject is a VM name (VM events), a host index (drain/undrain,
	// parsed from "host:<i>"), or a name prefix (autoscale, parsed from
	// "grp:<prefix>").
	Subject string
	// Host is the subject host index for drain/undrain, -1 otherwise.
	Host int
	// Tick is the fleet tick the event applies to: it takes effect before
	// the Step that produces Tick.Tick == Tick. Must be >= 1.
	Tick int
	// Kind is one of the Scenario* constants.
	Kind string
	// Dest is the destination host for migrate/hotplug, -1 otherwise.
	Dest int
	// CopyTicks is the migration copy window (migrate, drain).
	CopyTicks int
	// Type, Tenant, Workload, WorkloadSeed describe the new VM for hotplug.
	Type         vm.TypeID
	Tenant       string
	Workload     string
	WorkloadSeed int64
	// Min and Max bound an autoscale group's running-VM count.
	Min, Max int
}

// ParseScenario parses a comma-separated lifecycle scenario. Each entry
// is subject@tick:event[:args]:
//
//	web1@5:poweroff                    stop VM web1 before tick 5
//	web1@9:poweron                     start it again before tick 9
//	web1@12:migrate:2:3                live-migrate web1 to host 2, 3-tick copy window
//	web9@4:hotplug:1:small:acme:cpu-burst[:seed]
//	                                   hot-plug small VM web9 for tenant acme on
//	                                   host 1 running cpu-burst (optional trace seed)
//	web9@40:remove                     permanently remove web9
//	host:0@20:drain:2                  drain host 0 (2-tick copy windows; :2 optional, default 1)
//	host:0@30:undrain                  readmit host 0
//	grp:api@10:autoscale:1:4           autoscale VMs named api* between 1 and 4 running
//
// Events are returned sorted by tick (stable: input order within a
// tick). Ticks are 1-based, matching Tick.Tick.
func ParseScenario(list string) ([]ScenarioEvent, error) {
	var out []ScenarioEvent
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		ev, err := parseScenarioEvent(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty scenario")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out, nil
}

func parseScenarioEvent(raw string) (ScenarioEvent, error) {
	ev := ScenarioEvent{Host: -1, Dest: -1}
	subject, rest, ok := strings.Cut(raw, "@")
	if !ok {
		return ev, fmt.Errorf("cliutil: bad scenario entry %q (want subject@tick:event[:args])", raw)
	}
	subject = strings.TrimSpace(subject)
	if subject == "" {
		return ev, fmt.Errorf("cliutil: scenario entry %q has an empty subject", raw)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 {
		return ev, fmt.Errorf("cliutil: bad scenario entry %q (want subject@tick:event[:args])", raw)
	}
	tick, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || tick < 1 {
		return ev, fmt.Errorf("cliutil: scenario entry %q has bad tick %q (want an integer >= 1)", raw, parts[0])
	}
	ev.Tick = tick
	ev.Kind = strings.TrimSpace(parts[1])
	args := parts[2:]

	// Subject family: "host:<i>" for host verbs, "grp:<prefix>" for
	// autoscale, a plain VM name for the rest.
	switch {
	case strings.HasPrefix(subject, "host:"):
		h, err := strconv.Atoi(subject[len("host:"):])
		if err != nil || h < 0 {
			return ev, fmt.Errorf("cliutil: scenario entry %q has bad host subject %q", raw, subject)
		}
		ev.Host = h
		ev.Subject = subject
	case strings.HasPrefix(subject, "grp:"):
		prefix := subject[len("grp:"):]
		if prefix == "" {
			return ev, fmt.Errorf("cliutil: scenario entry %q has an empty group prefix", raw)
		}
		ev.Subject = prefix
	default:
		if strings.Contains(subject, ":") {
			return ev, fmt.Errorf("cliutil: scenario entry %q: VM names cannot contain %q", raw, ":")
		}
		ev.Subject = subject
	}

	argInt := func(i int, what string, min int) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(args[i]))
		if err != nil || v < min {
			return 0, fmt.Errorf("cliutil: scenario entry %q has bad %s %q (want an integer >= %d)", raw, what, args[i], min)
		}
		return v, nil
	}

	switch ev.Kind {
	case ScenarioPowerOn, ScenarioPowerOff, ScenarioRemove:
		if ev.Host >= 0 || ev.Subject != subject {
			return ev, fmt.Errorf("cliutil: scenario entry %q: %s takes a VM name subject", raw, ev.Kind)
		}
		if len(args) != 0 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: %s takes no arguments", raw, ev.Kind)
		}
	case ScenarioMigrate:
		if ev.Host >= 0 || ev.Subject != subject {
			return ev, fmt.Errorf("cliutil: scenario entry %q: migrate takes a VM name subject", raw)
		}
		if len(args) != 2 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: migrate wants :<host>:<copyticks>", raw)
		}
		if ev.Dest, err = argInt(0, "destination host", 0); err != nil {
			return ev, err
		}
		if ev.CopyTicks, err = argInt(1, "copy window", 0); err != nil {
			return ev, err
		}
	case ScenarioHotplug:
		if ev.Host >= 0 || ev.Subject != subject {
			return ev, fmt.Errorf("cliutil: scenario entry %q: hotplug takes the new VM's name as subject", raw)
		}
		if len(args) < 3 || len(args) > 5 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: hotplug wants :<host>:<type>:<tenant>[:<workload>[:<seed>]]", raw)
		}
		if ev.Dest, err = argInt(0, "host", 0); err != nil {
			return ev, err
		}
		typ, ok := TypeByName[strings.TrimSpace(args[1])]
		if !ok {
			return ev, fmt.Errorf("cliutil: scenario entry %q: unknown VM type %q (want small/medium/large/xlarge)", raw, args[1])
		}
		ev.Type = typ
		ev.Tenant = strings.TrimSpace(args[2])
		if ev.Tenant == "" {
			return ev, fmt.Errorf("cliutil: scenario entry %q has an empty tenant", raw)
		}
		if len(args) >= 4 {
			ev.Workload = strings.TrimSpace(args[3])
			if ev.Workload == "" {
				return ev, fmt.Errorf("cliutil: scenario entry %q has an empty workload", raw)
			}
		}
		if len(args) == 5 {
			seed, err := strconv.ParseInt(strings.TrimSpace(args[4]), 10, 64)
			if err != nil {
				return ev, fmt.Errorf("cliutil: scenario entry %q has bad workload seed %q", raw, args[4])
			}
			ev.WorkloadSeed = seed
		}
	case ScenarioDrain:
		if ev.Host < 0 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: drain takes a host:<i> subject", raw)
		}
		ev.CopyTicks = 1
		if len(args) > 1 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: drain wants at most :<copyticks>", raw)
		}
		if len(args) == 1 {
			if ev.CopyTicks, err = argInt(0, "copy window", 0); err != nil {
				return ev, err
			}
		}
	case ScenarioUndrain:
		if ev.Host < 0 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: undrain takes a host:<i> subject", raw)
		}
		if len(args) != 0 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: undrain takes no arguments", raw)
		}
	case ScenarioAutoscale:
		if ev.Subject == subject || ev.Host >= 0 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: autoscale takes a grp:<prefix> subject", raw)
		}
		if len(args) != 2 {
			return ev, fmt.Errorf("cliutil: scenario entry %q: autoscale wants :<min>:<max>", raw)
		}
		if ev.Min, err = argInt(0, "min", 0); err != nil {
			return ev, err
		}
		if ev.Max, err = argInt(1, "max", 0); err != nil {
			return ev, err
		}
		if ev.Max < ev.Min {
			return ev, fmt.Errorf("cliutil: scenario entry %q: max %d < min %d", raw, ev.Max, ev.Min)
		}
	case "":
		return ev, fmt.Errorf("cliutil: scenario entry %q has an empty event", raw)
	default:
		return ev, fmt.Errorf("cliutil: scenario entry %q: unknown event %q", raw, ev.Kind)
	}
	return ev, nil
}
