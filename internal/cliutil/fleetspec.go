package cliutil

import (
	"fmt"
	"strings"

	"vmpower/internal/vm"
)

// FleetVMSpec is one parsed name:type:tenant[:workload] entry for the
// multi-host tools.
type FleetVMSpec struct {
	Name     string
	Type     vm.TypeID
	Tenant   string
	Workload string
}

// ParseFleetVMSpecs parses a comma-separated fleet spec list. Each entry
// is name:type:tenant or name:type:tenant:workload; the workload is a
// benchmark name from the workload catalog and defaults to empty (idle
// until bound). Names must be unique and non-empty; tenants must be
// non-empty.
func ParseFleetVMSpecs(list string) ([]FleetVMSpec, error) {
	var out []FleetVMSpec
	seen := make(map[string]bool)
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.SplitN(raw, ":", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("cliutil: bad fleet spec %q (want name:type:tenant[:workload])", raw)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("cliutil: fleet spec %q has an empty name", raw)
		}
		if seen[name] {
			return nil, fmt.Errorf("cliutil: duplicate name %q", name)
		}
		seen[name] = true
		typ, ok := TypeByName[strings.TrimSpace(parts[1])]
		if !ok {
			return nil, fmt.Errorf("cliutil: unknown VM type %q (want small/medium/large/xlarge)", parts[1])
		}
		tenant := strings.TrimSpace(parts[2])
		if tenant == "" {
			return nil, fmt.Errorf("cliutil: fleet spec %q has an empty tenant", raw)
		}
		spec := FleetVMSpec{Name: name, Type: typ, Tenant: tenant}
		if len(parts) == 4 {
			spec.Workload = strings.TrimSpace(parts[3])
			if spec.Workload == "" {
				return nil, fmt.Errorf("cliutil: fleet spec %q has an empty workload", raw)
			}
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty fleet spec list")
	}
	return out, nil
}
