package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"vmpower/internal/faults"
)

// FaultConfig carries the shared -fault-* flag set that wires the
// deterministic chaos injector (internal/faults) into a command's meter.
// Every command registers it through FaultFlags so the tools agree on the
// flag names, defaults and accepted values.
type FaultConfig struct {
	Dropout     float64
	Spike       float64
	SpikeFactor float64
	NaN         float64
	Stuck       string
	Seed        int64
}

// FaultFlags registers the -fault-* flags on fs (the default CommandLine
// set when fs is nil) and returns the destination config.
func FaultFlags(fs *flag.FlagSet) *FaultConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &FaultConfig{}
	fs.Float64Var(&c.Dropout, "fault-dropout", 0, "per-sample meter dropout probability in [0,1)")
	fs.Float64Var(&c.Spike, "fault-spike", 0, "per-sample spike probability in [0,1)")
	fs.Float64Var(&c.SpikeFactor, "fault-spike-factor", 0, "spike multiplier (0 = injector default of 10)")
	fs.Float64Var(&c.NaN, "fault-nan", 0, "per-sample NaN reading probability in [0,1)")
	fs.StringVar(&c.Stuck, "fault-stuck", "", "stuck-at episode as start:len in ticks (e.g. 100:12)")
	fs.Int64Var(&c.Seed, "fault-seed", 0, "fault injector seed (0 = reuse the run seed)")
	return c
}

// Active reports whether any fault was requested, so commands can skip
// the wrapper entirely on a clean run.
func (c *FaultConfig) Active() bool {
	return c.Dropout > 0 || c.Spike > 0 || c.NaN > 0 || c.Stuck != ""
}

// Options translates the parsed flags into injector options. seed is the
// command's run seed, used when -fault-seed is left at 0 so a single
// -seed flag still reproduces the whole run.
func (c *FaultConfig) Options(seed int64) (faults.Options, error) {
	o := faults.Options{
		Seed:        c.Seed,
		DropoutProb: c.Dropout,
		SpikeProb:   c.Spike,
		SpikeFactor: c.SpikeFactor,
		NaNProb:     c.NaN,
	}
	if o.Seed == 0 {
		o.Seed = seed
	}
	if c.Stuck != "" {
		start, length, err := parseEpisodeWindow(c.Stuck)
		if err != nil {
			return faults.Options{}, fmt.Errorf("-fault-stuck: %w", err)
		}
		o.Episodes = append(o.Episodes, faults.Episode{
			Start: start, Len: length, Kind: faults.StuckAt,
		})
	}
	return o, nil
}

// parseEpisodeWindow parses a "start:len" tick window.
func parseEpisodeWindow(s string) (start, length int, err error) {
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want start:len, got %q", s)
	}
	if start, err = strconv.Atoi(head); err != nil {
		return 0, 0, fmt.Errorf("bad start %q: %w", head, err)
	}
	if length, err = strconv.Atoi(tail); err != nil {
		return 0, 0, fmt.Errorf("bad len %q: %w", tail, err)
	}
	if start < 0 || length <= 0 {
		return 0, 0, fmt.Errorf("window [%d,+%d) is empty or negative", start, length)
	}
	return start, length, nil
}
