package cliutil

import (
	"flag"
	"io"

	"vmpower/internal/obs"
)

// LogConfig carries the shared -log-level / -log-format flag pair. Every
// command registers it through LogFlags so the tools agree on the flag
// names, defaults and accepted values.
type LogConfig struct {
	Level  string
	Format string
}

// LogFlags registers -log-level and -log-format on fs (the default
// CommandLine set when fs is nil) and returns the destination config.
func LogFlags(fs *flag.FlagSet) *LogConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &LogConfig{}
	fs.StringVar(&c.Level, "log-level", "info", "log level: debug, info, warn or error")
	fs.StringVar(&c.Format, "log-format", "kv", "log line format: kv (logfmt) or json")
	return c
}

// Logger builds the structured logger the parsed flags describe,
// writing to w.
func (c *LogConfig) Logger(w io.Writer) (*obs.Logger, error) {
	level, err := obs.ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	format, err := obs.ParseFormat(c.Format)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, level, format), nil
}
