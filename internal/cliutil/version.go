// This file is the shared version surface: the -version flag, the
// printed banner and the vmpower_build_info metric, implemented once so
// the binaries cannot drift apart.

package cliutil

import (
	"flag"
	"fmt"
	"io"
	"runtime"

	"vmpower/internal/obs"
)

// version is the release string stamped into every binary. Override at
// link time with:
//
//	go build -ldflags "-X vmpower/internal/cliutil.version=v1.2.3"
var version = "0.7.0"

// Version returns the release string.
func Version() string { return version }

// VersionFlag registers the standard -version flag on fs (the default
// flag.CommandLine when nil) and returns the destination. Callers check
// it right after flag.Parse and exit via PrintVersion when set.
func VersionFlag(fs *flag.FlagSet) *bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.Bool("version", false, "print version and exit")
}

// PrintVersion writes the one-line version banner for a binary.
func PrintVersion(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s)\n", binary, version, runtime.Version())
}

// BuildInfoMetric registers the conventional constant-1 build-info gauge
//
//	vmpower_build_info{version="...",go="..."} 1
//
// on reg, so every scrape identifies exactly which build produced it.
func BuildInfoMetric(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("vmpower_build_info",
		"constant 1, labeled with the build's version and Go runtime",
		obs.L("version", version), obs.L("go", runtime.Version())).Set(1)
}
