package cliutil

import (
	"strings"
	"testing"
)

func TestParseFleetVMSpecs(t *testing.T) {
	specs, err := ParseFleetVMSpecs("web:large:acme:gcc, db:xlarge:acme, batch:small:ml-corp:sjeng")
	if err != nil {
		t.Fatalf("ParseFleetVMSpecs: %v", err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	want := []FleetVMSpec{
		{Name: "web", Type: 2, Tenant: "acme", Workload: "gcc"},
		{Name: "db", Type: 3, Tenant: "acme"},
		{Name: "batch", Type: 0, Tenant: "ml-corp", Workload: "sjeng"},
	}
	for i, w := range want {
		if specs[i] != w {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], w)
		}
	}
}

func TestParseFleetVMSpecsErrors(t *testing.T) {
	cases := []struct {
		list    string
		wantErr string
	}{
		{"", "empty fleet spec list"},
		{"web:large", "want name:type:tenant"},
		{"web:huge:acme", "unknown VM type"},
		{":large:acme", "empty name"},
		{"web:large:", "empty tenant"},
		{"web:large:acme:", "empty workload"},
		{"web:large:acme,web:small:acme", "duplicate name"},
	}
	for _, tc := range cases {
		if _, err := ParseFleetVMSpecs(tc.list); err == nil {
			t.Errorf("ParseFleetVMSpecs(%q): no error, want %q", tc.list, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseFleetVMSpecs(%q): err %q, want substring %q", tc.list, err, tc.wantErr)
		}
	}
}
