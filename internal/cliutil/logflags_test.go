package cliutil

import (
	"flag"
	"strings"
	"testing"

	"vmpower/internal/obs"
)

func TestLogFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := LogFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.Level != "info" || cfg.Format != "kv" {
		t.Fatalf("defaults: %+v", cfg)
	}
	var buf strings.Builder
	log, err := cfg.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("visible", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug must be filtered at the default level")
	}
	if !strings.Contains(out, "msg=visible") || !strings.Contains(out, "k=1") {
		t.Fatalf("kv line: %q", out)
	}
}

func TestLogFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := LogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	log, err := cfg.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Enabled(obs.LevelDebug) {
		t.Fatal("-log-level debug must enable debug records")
	}
	log.Debug("d")
	if !strings.HasPrefix(buf.String(), `{"ts":`) {
		t.Fatalf("json line: %q", buf.String())
	}
}

func TestLogFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-log-level", "loud"},
		{"-log-format", "xml"},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		cfg := LogFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.Logger(nil); err == nil {
			t.Fatalf("args %v: want an error from Logger", args)
		}
	}
}
