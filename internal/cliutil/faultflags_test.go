package cliutil

import (
	"flag"
	"testing"

	"vmpower/internal/faults"
)

func TestFaultFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := FaultFlags(fs)
	if c.Active() {
		t.Fatal("default config must be inactive")
	}
	err := fs.Parse([]string{
		"-fault-dropout", "0.3", "-fault-spike", "0.01", "-fault-spike-factor", "8",
		"-fault-nan", "0.02", "-fault-stuck", "100:12",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Active() {
		t.Fatal("config with faults must be active")
	}
	opts, err := c.Options(42)
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Options{
		Seed: 42, DropoutProb: 0.3, SpikeProb: 0.01, SpikeFactor: 8, NaNProb: 0.02,
		Episodes: []faults.Episode{{Start: 100, Len: 12, Kind: faults.StuckAt}},
	}
	if opts.Seed != want.Seed || opts.DropoutProb != want.DropoutProb ||
		opts.SpikeProb != want.SpikeProb || opts.SpikeFactor != want.SpikeFactor ||
		opts.NaNProb != want.NaNProb || len(opts.Episodes) != 1 ||
		opts.Episodes[0] != want.Episodes[0] {
		t.Fatalf("options %+v, want %+v", opts, want)
	}

	// An explicit injector seed wins over the run seed.
	c.Seed = 7
	opts, err = c.Options(42)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Seed != 7 {
		t.Fatalf("seed %d, want 7", opts.Seed)
	}
}

func TestFaultFlagsBadStuckWindow(t *testing.T) {
	for _, bad := range []string{"x", "10", "a:b", "10:", ":5", "-1:5", "10:0"} {
		c := &FaultConfig{Stuck: bad}
		if _, err := c.Options(1); err == nil {
			t.Fatalf("stuck window %q must fail", bad)
		}
	}
}
