package powerd

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

func testServer(t testing.TB) (*Server, *hypervisor.Host) {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "web", Type: 0}, {Name: "db", Type: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meter.Perfect(host.PowerSource())
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.New(host, m, core.Config{OfflineTicksPerCombo: 80, IdleMeasureTicks: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(est, []string{"web", "db"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return srv, host
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 1); err == nil {
		t.Fatal("want nil-estimator error")
	}
	srv, _ := testServer(t)
	if _, err := New(srv.est, []string{"only-one"}, 1); err == nil {
		t.Fatal("want name-count error")
	}
}

func TestStatusEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var status StatusJSON
	if code := getJSON(t, ts, "/api/v1/status", &status); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if !status.Calibrated {
		t.Fatal("must report calibrated")
	}
	if math.Abs(status.IdleWatts-138) > 0.5 {
		t.Fatalf("idle = %g", status.IdleWatts)
	}
	if len(status.VMs) != 2 || status.VMs[0] != "web" {
		t.Fatalf("VMs = %v", status.VMs)
	}
}

func TestAllocationEndpoint(t *testing.T) {
	srv, host := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before any step: 404.
	if code := getJSON(t, ts, "/api/v1/allocation", nil); code != http.StatusNotFound {
		t.Fatalf("empty allocation code %d", code)
	}

	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}

	var alloc AllocationJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &alloc); code != http.StatusOK {
		t.Fatalf("allocation code %d", code)
	}
	if alloc.Method != "exact" {
		t.Fatalf("method = %q", alloc.Method)
	}
	if alloc.PerVM["web"] <= 0 {
		t.Fatalf("web watts = %g", alloc.PerVM["web"])
	}
	if alloc.PerVM["db"] != 0 {
		t.Fatalf("stopped db watts = %g", alloc.PerVM["db"])
	}
	if alloc.MeasuredWatts <= alloc.DynamicWatts {
		t.Fatal("measured must include idle")
	}
}

func TestHistoryRingAndQuery(t *testing.T) {
	srv, host := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := host.Attach(0, workload.Synthetic{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	for i := 0; i < 8; i++ { // history cap is 5
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var hist []AllocationJSON
	if code := getJSON(t, ts, "/api/v1/history", &hist); code != http.StatusOK {
		t.Fatalf("history code %d", code)
	}
	if len(hist) != 5 {
		t.Fatalf("history length = %d, want ring cap 5", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Tick <= hist[i-1].Tick {
			t.Fatal("history out of order")
		}
	}
	var last2 []AllocationJSON
	if code := getJSON(t, ts, "/api/v1/history?n=2", &last2); code != http.StatusOK {
		t.Fatal("history?n=2 failed")
	}
	if len(last2) != 2 || last2[1].Tick != hist[4].Tick {
		t.Fatalf("last2 = %+v", last2)
	}
	if code := getJSON(t, ts, "/api/v1/history?n=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad n code %d", code)
	}
	if code := getJSON(t, ts, "/api/v1/history?n=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("negative n code %d", code)
	}
}

func TestEnergyEndpoint(t *testing.T) {
	srv, host := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	host.SetCoalition(vm.CoalitionOf(0))
	const steps = 10
	for i := 0; i < steps; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var energy EnergyJSON
	if code := getJSON(t, ts, "/api/v1/energy", &energy); code != http.StatusOK {
		t.Fatalf("energy code %d", code)
	}
	if energy.Seconds != float64(steps) {
		t.Fatalf("Seconds = %g", energy.Seconds)
	}
	// ~13 W for 10 s ≈ 0.036 Wh.
	if energy.PerVMWh["web"] < 0.02 || energy.PerVMWh["web"] > 0.06 {
		t.Fatalf("web energy = %g Wh", energy.PerVMWh["web"])
	}
	if energy.PerVMWh["db"] != 0 {
		t.Fatalf("db energy = %g", energy.PerVMWh["db"])
	}
	if math.Abs(energy.TotalWh-energy.PerVMWh["web"]) > 1e-12 {
		t.Fatal("total must equal the only live VM's energy")
	}
}

// TestEnergyIntervalIntegration is the regression test for the 1 Hz
// assumption the energy counters used to bake in: `energyWs += w` is only
// watt-seconds when a tick covers exactly one second. A daemon stepped at
// 250 ms must integrate watts × 0.25 s per tick — a quarter of the energy
// of the same watt trace at 1 Hz, bit for bit, because 0.25 is a power of
// two so the scaling commutes exactly with every rounding step.
func TestEnergyIntervalIntegration(t *testing.T) {
	run := func(interval time.Duration, steps int) EnergyJSON {
		srv, host := testServer(t)
		if interval != 0 {
			if err := srv.SetInterval(interval); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		// Deterministic workload: both runs see the identical watt trace.
		if err := host.Attach(0, workload.Synthetic{Seed: 7}); err != nil {
			t.Fatal(err)
		}
		host.SetCoalition(vm.CoalitionOf(0))
		for i := 0; i < steps; i++ {
			if _, err := srv.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var energy EnergyJSON
		if code := getJSON(t, ts, "/api/v1/energy", &energy); code != http.StatusOK {
			t.Fatalf("energy code %d", code)
		}
		return energy
	}

	const steps = 12
	oneHz := run(0, steps) // default 1 s interval
	fast := run(250*time.Millisecond, steps)

	if oneHz.Seconds != float64(steps) {
		t.Fatalf("1 Hz Seconds = %g, want %d", oneHz.Seconds, steps)
	}
	if want := float64(steps) * 0.25; fast.Seconds != want {
		t.Fatalf("250 ms Seconds = %g, want %g", fast.Seconds, want)
	}
	for _, name := range []string{"web", "db"} {
		if got, want := fast.PerVMWh[name], oneHz.PerVMWh[name]/4; got != want {
			t.Fatalf("%s at 250 ms = %g Wh, want exactly a quarter of %g Wh", name, got, oneHz.PerVMWh[name])
		}
	}
	if fast.TotalWh != oneHz.TotalWh/4 {
		t.Fatalf("total at 250 ms = %g Wh, want %g/4", fast.TotalWh, oneHz.TotalWh)
	}
	if oneHz.PerVMWh["web"] <= 0 {
		t.Fatal("trace must carry nonzero energy for the ratio to mean anything")
	}
}

func TestSetIntervalValidation(t *testing.T) {
	srv, _ := testServer(t)
	if err := srv.SetInterval(0); err == nil {
		t.Fatal("want non-positive interval error")
	}
	if err := srv.SetInterval(-time.Second); err == nil {
		t.Fatal("want negative interval error")
	}
}

func TestInteractionsEndpoint(t *testing.T) {
	srv, host := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before any tick: 404.
	if code := getJSON(t, ts, "/api/v1/interactions", nil); code != http.StatusNotFound {
		t.Fatalf("pre-tick code %d", code)
	}

	for _, id := range []vm.ID{0, 1} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1))
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}

	var out InteractionsJSON
	if code := getJSON(t, ts, "/api/v1/interactions", &out); code != http.StatusOK {
		t.Fatalf("interactions code %d", code)
	}
	if len(out.VMs) != 2 || len(out.Watts) != 2 || len(out.Watts[0]) != 2 {
		t.Fatalf("shape = %v / %v", out.VMs, out.Watts)
	}
	// Two fully-busy co-located VMs interfere: negative pair entry,
	// symmetric matrix, zero diagonal.
	if out.Watts[0][1] >= 0 {
		t.Fatalf("pair interaction = %g, want < 0", out.Watts[0][1])
	}
	if out.Watts[0][1] != out.Watts[1][0] {
		t.Fatal("matrix must be symmetric")
	}
	if out.Watts[0][0] != 0 || out.Watts[1][1] != 0 {
		t.Fatal("diagonal must be zero")
	}
}

func TestConcurrentStepAndHTTP(t *testing.T) {
	// Drive Step from one goroutine while hammering every endpoint from
	// several others. Under -race this flushes out unsynchronised state;
	// in any mode it checks the tick-coherent publication contract: a
	// reader must never see the interactions endpoint working from a
	// snapshot newer than the tick counter it also published, and every
	// observed allocation/interaction tick must be one Step actually
	// produced.
	srv, host := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, id := range []vm.ID{0, 1} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1))

	const steps = 25
	firstTick := make(chan int, 1)
	stepErr := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < steps; i++ {
			alloc, err := srv.Step()
			if err != nil {
				stepErr <- err
				return
			}
			if i == 0 {
				firstTick <- alloc.Tick
			}
		}
	}()
	lo := <-firstTick
	hi := lo + steps - 1

	// fetch is goroutine-safe (no t.Fatal off the test goroutine).
	fetch := func(path string, out any) (int, error) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var alloc AllocationJSON
				if code, err := fetch("/api/v1/allocation", &alloc); err != nil || code != http.StatusOK {
					t.Errorf("allocation: code %d, err %v", code, err)
					return
				}
				if alloc.Tick < lo || alloc.Tick > hi {
					t.Errorf("allocation tick %d outside stepped range [%d, %d]", alloc.Tick, lo, hi)
					return
				}
				var ix InteractionsJSON
				if code, err := fetch("/api/v1/interactions", &ix); err != nil || code != http.StatusOK {
					t.Errorf("interactions: code %d, err %v", code, err)
					return
				}
				if ix.Tick < lo || ix.Tick > hi {
					t.Errorf("interactions tick %d outside stepped range [%d, %d]", ix.Tick, lo, hi)
					return
				}
				for _, p := range []string{"/api/v1/energy", "/api/v1/history?n=3", "/api/v1/status"} {
					if _, err := fetch(p, nil); err != nil {
						t.Errorf("%s: %v", p, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	<-done
	select {
	case err := <-stepErr:
		t.Fatal(err)
	default:
	}

	// Quiesced: the published snapshot and allocation must agree on the
	// final tick — the pairing the old two-lock publication could break.
	var alloc AllocationJSON
	getJSON(t, ts, "/api/v1/allocation", &alloc)
	var ix InteractionsJSON
	getJSON(t, ts, "/api/v1/interactions", &ix)
	if alloc.Tick != hi || ix.Tick != hi {
		t.Fatalf("post-quiesce ticks: allocation %d, interactions %d, want %d", alloc.Tick, ix.Tick, hi)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/api/v1/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status code %d", resp.StatusCode)
	}
}
