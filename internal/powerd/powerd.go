// Package powerd exposes a running power-accounting pipeline over
// HTTP/JSON, the way a datacenter operator would consume it: live per-VM
// allocations, a bounded history ring, and cumulative per-VM energy
// counters for billing. The daemon in cmd/powerd mounts Handler on a
// listener and drives Step at 1 Hz.
package powerd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
)

// AllocationJSON is the wire form of one tick's allocation.
type AllocationJSON struct {
	Tick          int                `json:"tick"`
	MeasuredWatts float64            `json:"measured_watts"`
	DynamicWatts  float64            `json:"dynamic_watts"`
	Method        string             `json:"method"`
	PerVM         map[string]float64 `json:"per_vm_watts"`
}

// StatusJSON is the wire form of the daemon status.
type StatusJSON struct {
	Calibrated bool     `json:"calibrated"`
	IdleWatts  float64  `json:"idle_watts"`
	VMs        []string `json:"vms"`
	Ticks      int      `json:"ticks_estimated"`
}

// EnergyJSON is the wire form of the cumulative energy counters.
type EnergyJSON struct {
	Seconds int                `json:"seconds"`
	PerVMWh map[string]float64 `json:"per_vm_wh"`
	TotalWh float64            `json:"total_wh"`
}

// Server aggregates allocations and serves them.
type Server struct {
	est   *core.Estimator
	names []string

	mu       sync.RWMutex
	latest   *AllocationJSON
	lastSnap *hypervisor.Snapshot
	lastPow  float64
	history  []*AllocationJSON
	histCap  int
	energyWs map[string]float64
	ticks    int
}

// InteractionsJSON is the wire form of the live interference matrix.
type InteractionsJSON struct {
	Tick int      `json:"tick"`
	VMs  []string `json:"vms"`
	// Watts[i][j] is the pairwise Shapley interaction of VMs i and j in
	// watts (negative = interference), indexed like VMs.
	Watts [][]float64 `json:"watts"`
}

// New builds a Server over a calibrated (or to-be-calibrated) estimator.
// names maps VM IDs (by index) to the names exposed on the wire.
func New(est *core.Estimator, names []string, historySize int) (*Server, error) {
	if est == nil {
		return nil, errors.New("powerd: nil estimator")
	}
	if len(names) != est.Host().Set().Len() {
		return nil, fmt.Errorf("powerd: %d names for %d VMs", len(names), est.Host().Set().Len())
	}
	if historySize <= 0 {
		historySize = 300
	}
	return &Server{
		est:      est,
		names:    append([]string(nil), names...),
		histCap:  historySize,
		energyWs: make(map[string]float64, len(names)),
	}, nil
}

// Step advances the host clock one tick, estimates, and records the
// result for the HTTP surface. It returns the raw allocation.
//
// Step itself must be driven from a single goroutine (it mutates the
// host clock), but it may run concurrently with any HTTP handler: the
// tick's outputs — latest allocation, history, energy counters, and the
// snapshot/power pair the interactions endpoint recomputes from — are
// published in one critical section, so a concurrent request always
// observes one coherent tick, never a fresh allocation paired with a
// stale snapshot.
func (s *Server) Step() (*core.Allocation, error) {
	s.est.Host().Advance(1)
	alloc, err := s.est.EstimateTick()
	if err != nil {
		return nil, err
	}
	snap := s.est.Host().Collect()
	s.record(alloc, &snap)
	return alloc, nil
}

// record atomically publishes one tick's allocation together with the
// snapshot it was computed from.
func (s *Server) record(alloc *core.Allocation, snap *hypervisor.Snapshot) {
	wire := &AllocationJSON{
		Tick:          alloc.Tick,
		MeasuredWatts: alloc.MeasuredPower,
		DynamicWatts:  alloc.DynamicPower,
		Method:        alloc.Method,
		PerVM:         make(map[string]float64, len(s.names)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSnap = snap
	s.lastPow = alloc.MeasuredPower
	for i, name := range s.names {
		w := alloc.PerVM[i]
		if alloc.IdlePerVM != nil {
			w += alloc.IdlePerVM[i]
		}
		wire.PerVM[name] = w
		s.energyWs[name] += w
	}
	s.latest = wire
	s.history = append(s.history, wire)
	if len(s.history) > s.histCap {
		s.history = s.history[len(s.history)-s.histCap:]
	}
	s.ticks++
}

// Handler returns the HTTP API:
//
//	GET /api/v1/status     — calibration state, idle power, VM list
//	GET /api/v1/allocation — the most recent allocation
//	GET /api/v1/history?n=K — the last K allocations (default all buffered)
//	GET /api/v1/energy     — cumulative per-VM energy in watt-hours
//	GET /api/v1/interactions — the live pairwise interference matrix
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	mux.HandleFunc("GET /api/v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /api/v1/history", s.handleHistory)
	mux.HandleFunc("GET /api/v1/energy", s.handleEnergy)
	mux.HandleFunc("GET /api/v1/interactions", s.handleInteractions)
	return mux
}

// handleInteractions serves the live pairwise interference matrix of the
// most recent tick, computed from the same approximated worths the
// allocation used.
func (s *Server) handleInteractions(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap := s.lastSnap
	power := s.lastPow
	s.mu.RUnlock()
	if snap == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "no tick yet"})
		return
	}
	idx, err := s.est.Interactions(*snap, power)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, InteractionsJSON{
		Tick:  snap.Tick,
		VMs:   append([]string(nil), s.names...),
		Watts: idx,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorJSON struct {
	Error string `json:"error"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	ticks := s.ticks
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, StatusJSON{
		Calibrated: s.est.Trained(),
		IdleWatts:  s.est.IdlePower(),
		VMs:        append([]string(nil), s.names...),
		Ticks:      ticks,
	})
}

func (s *Server) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	latest := s.latest
	s.mu.RUnlock()
	if latest == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "no allocation yet"})
		return
	}
	writeJSON(w, http.StatusOK, latest)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "n must be a positive integer"})
			return
		}
		n = v
	}
	s.mu.RLock()
	hist := s.history
	if n > 0 && n < len(hist) {
		hist = hist[len(hist)-n:]
	}
	out := make([]*AllocationJSON, len(hist))
	copy(out, hist)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEnergy(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := EnergyJSON{
		Seconds: s.ticks,
		PerVMWh: make(map[string]float64, len(s.energyWs)),
	}
	for name, ws := range s.energyWs {
		wh := ws / 3600
		out.PerVMWh[name] = wh
		out.TotalWh += wh
	}
	writeJSON(w, http.StatusOK, out)
}
