// Package powerd exposes a running power-accounting pipeline over
// HTTP/JSON, the way a datacenter operator would consume it: live per-VM
// allocations, a bounded history ring, and cumulative per-VM energy
// counters for billing. The daemon in cmd/powerd mounts Handler on a
// listener and drives Step at 1 Hz.
package powerd

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/obs"
)

// AllocationJSON is the wire form of one tick's allocation.
type AllocationJSON struct {
	Tick          int                `json:"tick"`
	MeasuredWatts float64            `json:"measured_watts"`
	DynamicWatts  float64            `json:"dynamic_watts"`
	Method        string             `json:"method"`
	PerVM         map[string]float64 `json:"per_vm_watts"`
	// Degraded marks a tick served from holdover or fallback rather than a
	// fresh plausible meter reading; DegradedReason and HoldoverAgeTicks
	// carry the cause and staleness.
	Degraded         bool   `json:"degraded,omitempty"`
	DegradedReason   string `json:"degraded_reason,omitempty"`
	HoldoverAgeTicks int    `json:"holdover_age_ticks,omitempty"`
	RejectedSamples  int    `json:"rejected_samples,omitempty"`
}

// StatusJSON is the wire form of the daemon status.
type StatusJSON struct {
	Calibrated bool     `json:"calibrated"`
	IdleWatts  float64  `json:"idle_watts"`
	VMs        []string `json:"vms"`
	Ticks      int      `json:"ticks_estimated"`
	// Degraded reports whether the most recent tick was degraded;
	// DegradedTicks and RejectedSamples are cumulative since start.
	Degraded           bool   `json:"degraded"`
	DegradedTicks      int    `json:"degraded_ticks"`
	RejectedSamples    int    `json:"rejected_samples"`
	LastDegradedReason string `json:"last_degraded_reason,omitempty"`
}

// EnergyJSON is the wire form of the cumulative energy counters. Seconds
// is the real integrated time — ticks × tick interval — not the tick
// count, so a daemon stepped at 250 ms reports 0.25 s per tick.
type EnergyJSON struct {
	Seconds float64            `json:"seconds"`
	PerVMWh map[string]float64 `json:"per_vm_wh"`
	TotalWh float64            `json:"total_wh"`
}

// Server aggregates allocations and serves them.
type Server struct {
	est   *core.Estimator
	names []string

	// telemetry is nil until Instrument; Step and the HTTP middleware
	// pay one atomic load to find out.
	telemetry atomic.Pointer[serverObs]
	now       func() time.Time
	createdAt time.Time

	// served is the tick-published, pre-encoded HTTP surface: one
	// atomic pointer swap per tick, cached bytes per request (nil until
	// the first tick — handlers fall back to the per-request path).
	served atomic.Pointer[servedSnapshot]

	mu            sync.RWMutex
	interval      time.Duration
	latest        *AllocationJSON
	lastSnap      *hypervisor.Snapshot
	lastPow       float64
	history       []*AllocationJSON
	histCap       int
	energyWs      map[string]float64
	energySeconds float64
	ticks         int
	degradedTicks int
	rejected      int
	lastDegraded  string
	lastTickAt    time.Time
	lastErr       string
	// prevPerVM and deltaLog back /api/v1/allocation?since=: the wire
	// value each VM last published, and the bounded per-tick changed-VM
	// log (see serve.go).
	prevPerVM map[string]float64
	deltaLog  []vmDelta

	// intMu single-flights the O(2^n) interaction matrix: one compute
	// and one encode per tick no matter how many scrapers ask.
	intMu   sync.Mutex
	intTick int
	intBody []byte
}

// InteractionsJSON is the wire form of the live interference matrix.
type InteractionsJSON struct {
	Tick int      `json:"tick"`
	VMs  []string `json:"vms"`
	// Watts[i][j] is the pairwise Shapley interaction of VMs i and j in
	// watts (negative = interference), indexed like VMs.
	Watts [][]float64 `json:"watts"`
}

// New builds a Server over a calibrated (or to-be-calibrated) estimator.
// names maps VM IDs (by index) to the names exposed on the wire.
func New(est *core.Estimator, names []string, historySize int) (*Server, error) {
	if est == nil {
		return nil, errors.New("powerd: nil estimator")
	}
	if len(names) != est.Host().Set().Len() {
		return nil, fmt.Errorf("powerd: %d names for %d VMs", len(names), est.Host().Set().Len())
	}
	if historySize <= 0 {
		historySize = 300
	}
	return &Server{
		est:       est,
		names:     append([]string(nil), names...),
		histCap:   historySize,
		energyWs:  make(map[string]float64, len(names)),
		prevPerVM: make(map[string]float64, len(names)),
		interval:  time.Second,
		now:       time.Now,
		createdAt: time.Now(),
		intTick:   -1,
	}, nil
}

// SetInterval declares the wall-clock duration one Step covers, which the
// energy counters integrate over (watts × interval per tick). The default
// is 1 s; a daemon stepping at any other cadence must call this or its
// watt-hours are off by the ratio. Call it before the first Step — energy
// already accumulated is not rescaled.
func (s *Server) SetInterval(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("powerd: non-positive step interval %v", d)
	}
	s.mu.Lock()
	s.interval = d
	s.mu.Unlock()
	return nil
}

// Step advances the host clock one tick, estimates, and records the
// result for the HTTP surface. It returns the raw allocation.
//
// Step itself must be driven from a single goroutine (it mutates the
// host clock), but it may run concurrently with any HTTP handler: the
// tick's outputs — latest allocation, history, energy counters, and the
// snapshot/power pair the interactions endpoint recomputes from — are
// published in one critical section, so a concurrent request always
// observes one coherent tick, never a fresh allocation paired with a
// stale snapshot.
func (s *Server) Step() (*core.Allocation, error) {
	o := s.telemetry.Load()
	sp := o.span()
	s.est.Host().Advance(1)
	alloc, err := s.est.EstimateTickSpan(sp)
	if err != nil {
		o.noteTickError(err)
		s.mu.Lock()
		s.lastErr = err.Error()
		s.mu.Unlock()
		return nil, err
	}
	snap := s.est.Host().Collect()
	wire := s.record(alloc, &snap)
	sp.Mark("publish")
	sp.End()
	now := s.now()
	o.noteTick(now, s.est.Trained(), s.est.IdlePower(), alloc, wire)
	s.mu.RLock()
	dt := s.interval.Seconds()
	s.mu.RUnlock()
	o.noteProvenance(s, now, alloc, &snap, dt)
	return alloc, nil
}

// EnableAudit installs the per-tick invariant auditor (see core.Auditor)
// on the server's estimator. Each violation is journaled, logged, and —
// once per tick — arms a deferred flight dump that fires after the
// violating tick's record lands in the ring, so the dump always contains
// the evidence. Call before the serve loop starts (same contract as
// core.Estimator.SetAuditor). Violations never abort a tick.
func (s *Server) EnableAudit(cfg core.AuditConfig) {
	s.est.SetAuditor(core.NewAuditor(cfg, func(v core.AuditViolation) {
		o := s.telemetry.Load()
		if o == nil {
			return
		}
		// The callback fires inside EstimateTickSpan, on the Step
		// goroutine — the same goroutine that owns pendingDump.
		o.journal.Append(v.Tick, "audit_violation", v.Kind, v.Detail)
		o.log.Warn("audit violation", "tick", v.Tick, "kind", v.Kind, "detail", v.Detail)
		if o.pendingDump == "" {
			o.pendingDump = "audit: " + v.Kind
		}
	}))
}

// DumpFlight writes the flight-recorder ring as indented JSON — the
// SIGQUIT handler's path. It fails only when the server was never
// instrumented (no recorder exists then).
func (s *Server) DumpFlight(w io.Writer, reason string) error {
	o := s.telemetry.Load()
	if o == nil {
		return errors.New("powerd: not instrumented; no flight recorder")
	}
	o.flight.WriteJSON(w, reason)
	return nil
}

// record atomically publishes one tick's allocation together with the
// snapshot it was computed from, and returns the wire form.
func (s *Server) record(alloc *core.Allocation, snap *hypervisor.Snapshot) *AllocationJSON {
	wire := &AllocationJSON{
		Tick:             alloc.Tick,
		MeasuredWatts:    alloc.MeasuredPower,
		DynamicWatts:     alloc.DynamicPower,
		Method:           alloc.Method,
		PerVM:            make(map[string]float64, len(s.names)),
		Degraded:         alloc.Degraded,
		DegradedReason:   alloc.DegradedReason,
		HoldoverAgeTicks: alloc.HoldoverAgeTicks,
		RejectedSamples:  alloc.RejectedSamples,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSnap = snap
	s.lastPow = alloc.MeasuredPower
	if alloc.Degraded {
		s.degradedTicks++
		s.lastDegraded = alloc.DegradedReason
	}
	s.rejected += alloc.RejectedSamples
	// Energy integrates power over the real tick interval (watt-seconds =
	// watts × dt), not "+= watts": the old form silently assumed 1 Hz and
	// over-billed faster loops by the cadence ratio.
	dt := s.interval.Seconds()
	for i, name := range s.names {
		w := alloc.PerVM[i]
		if alloc.IdlePerVM != nil {
			w += alloc.IdlePerVM[i]
		}
		wire.PerVM[name] = w
		s.energyWs[name] += w * dt
	}
	s.energySeconds += dt
	s.latest = wire
	s.history = append(s.history, wire)
	if len(s.history) > s.histCap {
		s.history = s.history[len(s.history)-s.histCap:]
	}
	s.ticks++
	s.lastTickAt = s.now()
	s.lastErr = ""
	s.publishLocked(wire)
	return wire
}

// Handler returns the HTTP API:
//
//	GET /api/v1/status     — calibration state, idle power, VM list
//	GET /api/v1/allocation — the most recent allocation
//	GET /api/v1/allocation?since=<tick> — only the VMs changed after <tick> (see AllocationDeltaJSON)
//	GET /api/v1/history?n=K — the last K allocations (default all buffered)
//	GET /api/v1/energy     — cumulative per-VM energy in watt-hours
//	GET /api/v1/interactions — the live pairwise interference matrix
//	GET /healthz           — liveness: 503 when the loop stalls or errors
//
// When the server is instrumented (call Instrument before Handler), the
// mux additionally serves GET /metrics (Prometheus text format),
// GET /metrics.json, GET /api/v1/events?since=<seq> (the bounded tick
// event journal) and GET /debug/flight (a flight-recorder dump; pass
// ?trigger=last for the most recent violation-triggered dump instead of
// the live ring).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/status", s.instrumented("/api/v1/status", s.handleStatus))
	mux.HandleFunc("GET /api/v1/allocation", s.instrumented("/api/v1/allocation", s.handleAllocation))
	mux.HandleFunc("GET /api/v1/history", s.instrumented("/api/v1/history", s.handleHistory))
	mux.HandleFunc("GET /api/v1/energy", s.instrumented("/api/v1/energy", s.handleEnergy))
	mux.HandleFunc("GET /api/v1/interactions", s.instrumented("/api/v1/interactions", s.handleInteractions))
	mux.HandleFunc("GET /healthz", s.instrumented("/healthz", s.handleHealthz))
	if o := s.telemetry.Load(); o != nil {
		mux.HandleFunc("GET /metrics", s.instrumented("/metrics", o.reg.Handler().ServeHTTP))
		mux.HandleFunc("GET /metrics.json", s.instrumented("/metrics.json", o.reg.HandlerJSON().ServeHTTP))
		mux.HandleFunc("GET /api/v1/events", s.instrumented("/api/v1/events", o.journal.Handler().ServeHTTP))
		mux.HandleFunc("GET /debug/flight", s.instrumented("/debug/flight", s.handleFlight))
	}
	return mux
}

// handleFlight serves a flight-recorder dump: the live ring by default,
// or — with ?trigger=last — the dump captured at the most recent audit
// violation (404 when none has fired).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	o := s.telemetry.Load()
	if o == nil {
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "not instrumented"})
		return
	}
	if r.URL.Query().Get("trigger") == "last" {
		d := o.lastDump.Load()
		if d == nil {
			s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no triggered dump yet"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteJSONIndent(w, d)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.flight.WriteJSON(w, "http")
}

// HealthJSON is the wire form of /healthz.
type HealthJSON struct {
	// Status is "ok", "degraded" (ticks landing but served from holdover
	// or fallback — still 200), "starting" (no tick yet, within the stall
	// threshold), "stalled" (no tick for more than 3 intervals) or
	// "error" (the last Step failed).
	Status     string `json:"status"`
	Calibrated bool   `json:"calibrated"`
	Ticks      int    `json:"ticks_estimated"`
	// LastTickAgeSeconds is the age of the last successful tick; absent
	// before the first one.
	LastTickAgeSeconds float64 `json:"last_tick_age_seconds,omitempty"`
	Error              string  `json:"error,omitempty"`
	// DegradedReason explains a "degraded" status.
	DegradedReason   string `json:"degraded_reason,omitempty"`
	HoldoverAgeTicks int    `json:"holdover_age_ticks,omitempty"`
}

// handleHealthz reports loop liveness: 200 while ticks are landing on
// schedule, 503 once the loop has gone quiet for more than three
// intervals (the Instrument cadence, default 1 s) or the last Step
// failed — which is how a meter lost beyond the holdover bound surfaces,
// since EstimateTick turns terminal at core.ErrMeterLost. A degraded but
// ticking pipeline (holdover within the staleness bound, fallback split)
// reports "degraded" with 200: the daemon is alive and serving bounded-
// staleness answers, which is exactly what the degradation machinery is
// for.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	interval := time.Second
	if o := s.telemetry.Load(); o != nil {
		interval = o.interval
	}
	stallAfter := 3 * interval
	now := s.now()
	s.mu.RLock()
	ticks := s.ticks
	lastTickAt := s.lastTickAt
	lastErr := s.lastErr
	latest := s.latest
	s.mu.RUnlock()
	h := HealthJSON{Calibrated: s.est.Trained(), Ticks: ticks}
	status := http.StatusOK
	switch {
	case lastErr != "":
		h.Status = "error"
		h.Error = lastErr
		status = http.StatusServiceUnavailable
	case ticks == 0:
		h.Status = "starting"
		if now.Sub(s.createdAt) > stallAfter {
			h.Status = "stalled"
			status = http.StatusServiceUnavailable
		}
	default:
		h.Status = "ok"
		h.LastTickAgeSeconds = now.Sub(lastTickAt).Seconds()
		if now.Sub(lastTickAt) > stallAfter {
			h.Status = "stalled"
			status = http.StatusServiceUnavailable
		} else if latest != nil && latest.Degraded {
			h.Status = "degraded"
			h.DegradedReason = latest.DegradedReason
			h.HoldoverAgeTicks = latest.HoldoverAgeTicks
		}
	}
	s.writeJSON(w, status, h)
}

// handleInteractions serves the live pairwise interference matrix of the
// most recent tick, computed from the same approximated worths the
// allocation used. The matrix costs O(2^n) worth evaluations, so it is
// computed and encoded at most once per tick (single-flight under
// intMu) and a scrape storm serves the cached bytes. Estimator
// thread-safety: Interactions only reads immutable calibration state and
// the approximator's RWMutex-guarded tables, never the per-tick scratch
// EstimateTick owns, so it is safe to run concurrently with Step —
// pinned by TestInteractionsConcurrentWithStep under -race.
func (s *Server) handleInteractions(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap := s.lastSnap
	power := s.lastPow
	s.mu.RUnlock()
	if snap == nil {
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no tick yet"})
		return
	}
	s.intMu.Lock()
	if s.intTick == snap.Tick && s.intBody != nil {
		body := s.intBody
		s.intMu.Unlock()
		s.writeCached(w, body)
		return
	}
	idx, err := s.est.Interactions(*snap, power)
	if err != nil {
		s.intMu.Unlock()
		s.writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	out := InteractionsJSON{
		Tick:  snap.Tick,
		VMs:   append([]string(nil), s.names...),
		Watts: idx,
	}
	body, err := encodeJSON(out)
	if err != nil {
		s.intMu.Unlock()
		s.writeJSON(w, http.StatusOK, out)
		return
	}
	s.intTick, s.intBody = snap.Tick, body
	s.intMu.Unlock()
	s.writeCached(w, body)
}

type errorJSON struct {
	Error string `json:"error"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	if d := s.served.Load(); d != nil && d.status != nil {
		s.writeCached(w, d.status)
		return
	}
	s.mu.RLock()
	st := s.statusLocked()
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	if r.URL.RawQuery != "" {
		if raw := r.URL.Query().Get("since"); raw != "" {
			s.handleAllocationDelta(w, raw)
			return
		}
	}
	if d := s.served.Load(); d != nil && d.allocation != nil {
		s.writeCached(w, d.allocation)
		return
	}
	s.mu.RLock()
	latest := s.latest
	s.mu.RUnlock()
	if latest == nil {
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no allocation yet"})
		return
	}
	s.writeJSON(w, http.StatusOK, latest)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			s.writeJSON(w, http.StatusBadRequest, errorJSON{Error: "n must be a positive integer"})
			return
		}
		n = v
	}
	s.mu.RLock()
	hist := s.history
	if n > 0 && n < len(hist) {
		hist = hist[len(hist)-n:]
	}
	out := make([]*AllocationJSON, len(hist))
	copy(out, hist)
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEnergy(w http.ResponseWriter, _ *http.Request) {
	if d := s.served.Load(); d != nil && d.energy != nil {
		s.writeCached(w, d.energy)
		return
	}
	s.mu.RLock()
	out := s.energyLocked()
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, out)
}
