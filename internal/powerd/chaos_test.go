package powerd

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/hypervisor"
	"vmpower/internal/machine"
	"vmpower/internal/meter"
	"vmpower/internal/meter/serial"
	"vmpower/internal/obs"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// chaosRig builds a calibrated daemon whose meter is wrapped in a seeded
// fault injector: heavy iid dropouts plus scripted corrupt-stream, dropout
// and stuck-at episodes. The injector is armed only after calibration, the
// way cmd/powerd wires it.
func chaosRig(t *testing.T, opts faults.Options, cfg core.Config) (*Server, *faults.Meter, *obs.Registry) {
	t.Helper()
	mach, err := machine.New(machine.XeonProfile(), machine.Pack)
	if err != nil {
		t.Fatal(err)
	}
	set, err := vm.NewSet(vm.PaperCatalog(), []vm.VM{
		{Name: "web", Type: 0}, {Name: "db", Type: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := hypervisor.NewHost(mach, set)
	if err != nil {
		t.Fatal(err)
	}
	// A lightly noisy meter, not a Perfect one: real readings jitter, which
	// is what makes a frozen (stuck-at) reading detectable at all.
	inner, err := meter.NewSim(host.PowerSource(), meter.SimOptions{NoiseStdDev: 0.05, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := faults.Wrap(inner, opts)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.New(host, fm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.CollectOffline(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < set.Len(); i++ {
		if err := host.Attach(vm.ID(i), workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.GrandCoalition(set.Len()))

	srv, err := New(est, []string{"web", "db"}, 400)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.Instrument(reg, obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Minute)
	fm.SetArmed(true)
	return srv, fm, reg
}

// TestChaosScheduleSurvival is the PR's acceptance test: 300 ticks against
// a seeded schedule of 35% iid dropouts, a corrupt-stream burst, a dropout
// burst and one stuck-at episode, with concurrent /healthz and /metrics
// readers. The estimator must never return a terminal error (every outage
// stays within the holdover bound), every non-degraded tick must satisfy
// Efficiency to 1e-9, every degraded tick must be flagged and counted, and
// /healthz must report degraded-but-200 while the pipeline rides an
// outage.
func TestChaosScheduleSurvival(t *testing.T) {
	const ticks = 300
	srv, fm, reg := chaosRig(t,
		faults.Options{
			Seed:        1234,
			DropoutProb: 0.35,
			NaNProb:     0.02,
			SpikeProb:   0.02,
			Episodes: []faults.Episode{
				// A corrupt serial stream: the transport error every read.
				{Start: 80, Len: 6, Kind: faults.Error, Err: serial.ErrCorruptStream},
				// A hard dropout burst longer than the retry budget.
				{Start: 150, Len: 5, Kind: faults.Dropout},
				// A meter whose display freezes for 12 ticks.
				{Start: 200, Len: 12, Kind: faults.StuckAt},
			},
		},
		core.Config{
			OfflineTicksPerCombo: 80, IdleMeasureTicks: 5, Seed: 1,
			MeterRetries: 2, HoldoverTicks: 10, StuckThreshold: 4,
		})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Concurrent scrapers: the race detector checks the Step/handler
	// publication protocol while the chaos runs.
	done := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, p := range []string{"/healthz", "/metrics", "/api/v1/status"} {
				resp, err := http.Get(ts.URL + p)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	var degraded, rejected, maxAge int
	sawDegraded200 := false
	for tick := 0; tick < ticks; tick++ {
		alloc, err := srv.Step()
		if err != nil {
			t.Fatalf("tick %d: terminal error inside the holdover bound: %v", tick, err)
		}
		if alloc.Degraded {
			degraded++
			if alloc.DegradedReason == "" {
				t.Fatalf("tick %d: degraded without a reason", tick)
			}
			if alloc.HoldoverAgeTicks > maxAge {
				maxAge = alloc.HoldoverAgeTicks
			}
			// Degraded-but-ticking must be visible on /healthz as a 200.
			if !sawDegraded200 {
				var h HealthJSON
				if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
					t.Fatalf("tick %d: degraded healthz = %d, want 200", tick, code)
				} else if h.Status != "degraded" {
					t.Fatalf("tick %d: healthz status %q, want degraded", tick, h.Status)
				}
				sawDegraded200 = true
			}
		} else {
			// Every fresh tick satisfies Efficiency against its measured
			// dynamic power.
			var sum float64
			for _, p := range alloc.PerVM {
				sum += p
			}
			if math.Abs(sum-alloc.DynamicPower) > 1e-9 {
				t.Fatalf("tick %d: efficiency violated: sum %g vs dyn %g", tick, sum, alloc.DynamicPower)
			}
		}
		rejected += alloc.RejectedSamples
		fm.NextTick()
	}
	close(done)
	<-scraped

	if degraded == 0 {
		t.Fatal("chaos schedule produced no degraded ticks")
	}
	if degraded == ticks {
		t.Fatal("every tick degraded: the pipeline never recovered")
	}
	if maxAge > 10 {
		t.Fatalf("holdover age %d exceeded the staleness bound", maxAge)
	}
	if c := fm.Injected(); c.Dropouts == 0 || c.Stuck == 0 || c.Errors == 0 {
		t.Fatalf("schedule did not exercise all fault kinds: %+v", c)
	}

	// The obs counters must agree with the ground truth we tallied.
	if v := reg.Counter("vmpower_ticks_total", "").Value(); v != ticks {
		t.Fatalf("ticks counter = %d, want %d", v, ticks)
	}
	if v := reg.Counter("vmpower_degraded_ticks_total", "").Value(); v != uint64(degraded) {
		t.Fatalf("degraded counter = %d, want %d", v, degraded)
	}
	if v := reg.Counter("vmpower_rejected_samples_total", "").Value(); v != uint64(rejected) {
		t.Fatalf("rejected counter = %d, want %d", v, rejected)
	}

	// And the same totals must be scrapeable over HTTP.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "vmpower_degraded_ticks_total") {
		t.Fatal("degraded counter missing from /metrics")
	}

	var st StatusJSON
	if code := getJSON(t, ts, "/api/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.DegradedTicks != degraded || st.RejectedSamples != rejected {
		t.Fatalf("status totals %d/%d, want %d/%d",
			st.DegradedTicks, st.RejectedSamples, degraded, rejected)
	}
}

// TestHealthzMeterLost pins the far side of the staleness bound: when the
// meter stays dead past HoldoverTicks, Step turns terminal with
// core.ErrMeterLost and /healthz flips to a 503 "error".
func TestHealthzMeterLost(t *testing.T) {
	srv, fm, _ := chaosRig(t,
		faults.Options{
			Seed: 9,
			// Dead from the first armed tick, forever.
			Episodes: []faults.Episode{{Start: 0, Len: 1 << 20, Kind: faults.Dropout}},
		},
		core.Config{
			OfflineTicksPerCombo: 80, IdleMeasureTicks: 5, Seed: 1,
			MeterRetries: 2, HoldoverTicks: 3,
		})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var lastErr error
	for tick := 0; tick < 10 && lastErr == nil; tick++ {
		_, lastErr = srv.Step()
		fm.NextTick()
	}
	if lastErr == nil {
		t.Fatal("meter dead forever but Step never turned terminal")
	}
	var h HealthJSON
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d, want 503", code)
	}
	if h.Status != "error" || !strings.Contains(h.Error, "meter signal lost") {
		t.Fatalf("healthz %+v", h)
	}
}
