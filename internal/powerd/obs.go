package powerd

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"vmpower/internal/cliutil"
	"vmpower/internal/core"
	"vmpower/internal/hypervisor"
	"vmpower/internal/meter/serial"
	"vmpower/internal/obs"
	"vmpower/internal/shapley"
	"vmpower/internal/vm"
)

// tickStages are the pipeline stages of one estimation tick, in order.
// The first five are marked by core.EstimateTickSpan; "publish" is the
// daemon's own record/publish step.
var tickStages = []string{"snapshot", "meter", "worth", "solve", "normalize", "publish"}

// endpoints is the daemon's HTTP surface, enumerated so the per-endpoint
// request metrics have a fixed, bounded label set.
var endpoints = []string{
	"/api/v1/status",
	"/api/v1/allocation",
	"/api/v1/history",
	"/api/v1/energy",
	"/api/v1/interactions",
	"/api/v1/events",
	"/debug/flight",
	"/healthz",
	"/metrics",
	"/metrics.json",
}

// serverObs bundles the daemon's observability surface. All methods are
// nil-safe: an uninstrumented Server carries a nil *serverObs and pays
// one atomic load per tick/request.
type serverObs struct {
	reg      *obs.Registry
	log      *obs.Logger
	tracer   *obs.Tracer
	interval time.Duration

	ticks       *obs.Counter
	tickErrors  *obs.Counter
	encodeErrs  *obs.Counter
	degraded    *obs.Counter
	rejected    *obs.Counter
	degradedNow *obs.Gauge
	holdoverAge *obs.Gauge
	lastTick    *obs.Gauge
	calibrated  *obs.Gauge
	idleWatts   *obs.Gauge
	measured    *obs.Gauge
	tickSkew    *obs.Gauge
	vmWatts     map[string]*obs.Gauge

	http map[string]httpMetrics

	// Provenance surface: the event journal and the flight recorder
	// (both nil-safe ring buffers), plus the most recent triggered dump.
	journal  *obs.Journal
	flight   *obs.FlightRecorder
	lastDump atomic.Pointer[obs.FlightDump]

	// Step-goroutine state (same single-driver contract as Server.Step;
	// never touched by HTTP handlers): edge detection for journal events,
	// the reusable flight-record scratch, and the deferred-dump trigger
	// set by the audit callback mid-tick and consumed after the tick's
	// flight record lands (so the dump includes the violating tick).
	prevTier        string
	prevDegraded    bool
	prevCompiles    uint64
	prevCompileErrs uint64
	prevTickWall    time.Time
	pendingDump     string
	scratch         obs.FlightRecord
	scratchRows     [][]float64
}

type httpMetrics struct {
	reqs *obs.Counter
	lat  *obs.Histogram
}

// Instrument activates metrics, tracing and structured logging for the
// daemon, and instruments the shapley, serial and core packages on the
// same registry so one scrape covers the whole pipeline (including the
// compiled worth plan's cache behaviour). Call it before
// Handler so /metrics and /metrics.json are mounted. interval is the
// expected Step cadence (the /healthz stall threshold is 3x it); <= 0
// defaults to 1 s. Instrument(nil, ...) deactivates everything.
func (s *Server) Instrument(reg *obs.Registry, log *obs.Logger, interval time.Duration) {
	if reg == nil {
		s.telemetry.Store(nil)
		shapley.Instrument(nil)
		serial.Instrument(nil)
		core.Instrument(nil)
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	o := &serverObs{
		reg:      reg,
		log:      log,
		interval: interval,
		tracer: obs.NewTracer(reg,
			"vmpower_tick_duration_seconds",
			"vmpower_tick_stage_duration_seconds",
			"estimation tick latency", tickStages...),
		ticks:      reg.Counter("vmpower_ticks_total", "estimation ticks completed"),
		tickErrors: reg.Counter("vmpower_tick_errors_total", "estimation ticks that failed"),
		encodeErrs: reg.Counter("vmpower_http_encode_errors_total",
			"HTTP response bodies that failed to encode or write"),
		degraded: reg.Counter("vmpower_degraded_ticks_total",
			"ticks served from holdover or fallback instead of a fresh plausible reading"),
		rejected: reg.Counter("vmpower_rejected_samples_total",
			"meter samples rejected by the plausibility gate"),
		degradedNow: reg.Gauge("vmpower_degraded",
			"1 while the most recent tick was degraded"),
		holdoverAge: reg.Gauge("vmpower_holdover_age_ticks",
			"age of the held-over meter sample at the last tick (0 when fresh)"),
		lastTick:   reg.Gauge("vmpower_last_tick_timestamp_seconds", "unix time of the last successful tick"),
		calibrated: reg.Gauge("vmpower_calibrated", "1 when the estimator is trained"),
		idleWatts:  reg.Gauge("vmpower_idle_watts", "idle power established by calibration"),
		measured:   reg.Gauge("vmpower_measured_watts", "machine power measured at the last tick"),
		tickSkew: reg.Gauge("vmpower_tick_skew_seconds",
			"last tick-to-tick wall spacing minus the configured interval"),
		vmWatts: make(map[string]*obs.Gauge, len(s.names)),
		http:    make(map[string]httpMetrics, len(endpoints)),
		journal: obs.NewJournal(0),
		flight:  obs.NewFlightRecorder(0, len(s.names), int(vm.NumComponents)),
	}
	o.scratchRows = make([][]float64, len(s.names))
	for i := range o.scratchRows {
		o.scratchRows[i] = make([]float64, 0, int(vm.NumComponents))
	}
	o.prevCompiles, o.prevCompileErrs = s.est.PlanCompileStats()
	cliutil.BuildInfoMetric(reg)
	for _, name := range s.names {
		o.vmWatts[name] = reg.Gauge("vmpower_vm_watts",
			"per-VM attributed power at the last tick", obs.L("vm", name))
	}
	for _, p := range endpoints {
		o.http[p] = httpMetrics{
			reqs: reg.Counter("vmpower_http_requests_total",
				"HTTP requests served", obs.L("path", p)),
			lat: reg.Histogram("vmpower_http_request_duration_seconds",
				"HTTP request latency", obs.DefDurationBuckets, obs.L("path", p)),
		}
	}
	shapley.Instrument(reg)
	serial.Instrument(reg)
	core.Instrument(reg)
	s.telemetry.Store(o)
}

func (o *serverObs) span() *obs.Span {
	if o == nil {
		return nil
	}
	return o.tracer.Start()
}

// noteTick publishes the gauges of a successful tick and emits the
// per-tick debug line. The Enabled guard keeps the variadic argument
// slice off the 1 Hz hot path unless debug logging is on.
func (o *serverObs) noteTick(now time.Time, trained bool, idle float64, alloc *core.Allocation, wire *AllocationJSON) {
	if o == nil {
		return
	}
	o.ticks.Inc()
	o.lastTick.Set(float64(now.UnixNano()) / 1e9)
	if trained {
		o.calibrated.Set(1)
	} else {
		o.calibrated.Set(0)
	}
	o.idleWatts.Set(idle)
	o.measured.Set(alloc.MeasuredPower)
	if alloc.Degraded {
		o.degraded.Inc()
		o.degradedNow.Set(1)
	} else {
		o.degradedNow.Set(0)
	}
	o.holdoverAge.Set(float64(alloc.HoldoverAgeTicks))
	if alloc.RejectedSamples > 0 {
		o.rejected.Add(uint64(alloc.RejectedSamples))
	}
	for name, w := range wire.PerVM {
		o.vmWatts[name].Set(w)
	}
	if alloc.Degraded && o.log.Enabled(obs.LevelWarn) {
		o.log.Warn("degraded tick",
			"tick", alloc.Tick,
			"reason", alloc.DegradedReason,
			"holdover_age_ticks", alloc.HoldoverAgeTicks)
	}
	if o.log.Enabled(obs.LevelDebug) {
		o.log.Debug("tick",
			"tick", alloc.Tick,
			"measured_watts", alloc.MeasuredPower,
			"dynamic_watts", alloc.DynamicPower,
			"method", alloc.Method)
	}
}

// noteProvenance runs the tick's provenance bookkeeping from the Step
// goroutine: the skew gauge, edge-triggered journal events (tier switch,
// degraded/recovered, plan recompiles), the flight record, and — last,
// so the dump includes the tick that tripped it — any deferred flight
// dump the audit callback requested mid-tick. The steady-state path
// (no transitions) is allocation-free: the scratch record refills
// preallocated slices and Record copies into preallocated slots.
func (o *serverObs) noteProvenance(s *Server, now time.Time, alloc *core.Allocation, snap *hypervisor.Snapshot, dt float64) {
	if o == nil {
		return
	}
	if !o.prevTickWall.IsZero() {
		o.tickSkew.Set(now.Sub(o.prevTickWall).Seconds() - o.interval.Seconds())
	}
	o.prevTickWall = now

	if alloc.Prov.Tier != o.prevTier {
		if o.prevTier != "" {
			o.journal.Append(alloc.Tick, "tier_switch", alloc.Prov.Tier,
				fmt.Sprintf("%s -> %s: %s", o.prevTier, alloc.Prov.Tier, alloc.Prov.TierReason))
		}
		o.prevTier = alloc.Prov.Tier
	}
	if alloc.Degraded != o.prevDegraded {
		if alloc.Degraded {
			o.journal.Append(alloc.Tick, "degraded", "", alloc.DegradedReason)
		} else {
			o.journal.Append(alloc.Tick, "recovered", "", "")
		}
		o.prevDegraded = alloc.Degraded
	}
	compiles, compileErrs := s.est.PlanCompileStats()
	if compiles != o.prevCompiles {
		o.journal.Append(alloc.Tick, "plan_recompile", "",
			fmt.Sprintf("worth-plan compile #%d", compiles))
		o.prevCompiles = compiles
	}
	if compileErrs != o.prevCompileErrs {
		o.journal.Append(alloc.Tick, "plan_compile_error", "",
			fmt.Sprintf("worth-plan compile failure #%d (legacy path until the model changes)", compileErrs))
		o.prevCompileErrs = compileErrs
	}

	rec := &o.scratch
	rec.Tick = alloc.Tick
	rec.UnixNanos = now.UnixNano()
	rec.MeasuredWatts = alloc.MeasuredPower
	rec.DynamicWatts = alloc.DynamicPower
	rec.Tier = alloc.Prov.Tier
	rec.TierReason = alloc.Prov.TierReason
	rec.SymClasses = alloc.SymmetryClasses
	rec.DirtyVMs = alloc.Prov.DirtyVMs
	rec.Evaluated = alloc.Prov.Evaluated
	rec.Reused = alloc.Prov.Reused
	rec.FullTabulation = alloc.Prov.FullTabulation
	rec.Degraded = alloc.Degraded
	rec.DegradedReason = alloc.DegradedReason
	rec.HoldoverAgeTicks = alloc.HoldoverAgeTicks
	rec.RejectedSamples = alloc.RejectedSamples
	rec.EfficiencyResidualWatts = alloc.Prov.EfficiencyResidualWatts
	rec.Names = append(rec.Names[:0], s.names...)
	rec.PerVMWatts = append(rec.PerVMWatts[:0], alloc.PerVM...)
	rec.PerVMEnergyWs = rec.PerVMEnergyWs[:0]
	for i := range s.names {
		w := alloc.PerVM[i]
		if alloc.IdlePerVM != nil {
			w += alloc.IdlePerVM[i]
		}
		rec.PerVMEnergyWs = append(rec.PerVMEnergyWs, w*dt)
	}
	rec.States = rec.States[:0]
	for i := range snap.States {
		o.scratchRows[i] = append(o.scratchRows[i][:0], snap.States[i][:]...)
		rec.States = append(rec.States, o.scratchRows[i])
	}
	o.flight.Record(rec)

	if o.pendingDump != "" {
		o.lastDump.Store(o.flight.Dump(o.pendingDump))
		o.journal.Append(alloc.Tick, "flight_dump", "", o.pendingDump)
		o.log.Warn("flight dump triggered", "tick", alloc.Tick, "reason", o.pendingDump)
		o.pendingDump = ""
	}
}

func (o *serverObs) noteTickError(err error) {
	if o == nil {
		return
	}
	o.tickErrors.Inc()
	o.log.Error("tick failed", "err", err)
}

// instrumented wraps an endpoint handler with the per-path request
// counter and latency histogram. Uninstrumented servers dispatch
// straight through (one atomic load, no time.Now).
func (s *Server) instrumented(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		o := s.telemetry.Load()
		if o == nil {
			h(w, r)
			return
		}
		start := time.Now()
		h(w, r)
		if hm, ok := o.http[path]; ok {
			hm.reqs.Inc()
			hm.lat.Observe(time.Since(start).Seconds())
		}
	}
}
