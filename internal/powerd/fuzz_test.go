package powerd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// FuzzHistoryQuery throws arbitrary ?n= values at the history endpoint:
// whatever the input, the daemon must answer 200 or 400 with a JSON body —
// never a 5xx, a panic, or a non-JSON response.
func FuzzHistoryQuery(f *testing.F) {
	srv, _ := testServer(f)
	for i := 0; i < 3; i++ {
		if _, err := srv.Step(); err != nil {
			f.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)

	for _, seed := range []string{"", "1", "2", "0", "-1", "99999999999999999999", "1e3", "0x10", " 3", "3 ", "éé", "%", "\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, n string) {
		resp, err := http.Get(ts.URL + "/api/v1/history?n=" + url.QueryEscape(n))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("n=%q: status %d", n, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(body) {
			t.Fatalf("n=%q: non-JSON body %q", n, body)
		}
	})
}
