package powerd

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"vmpower/internal/core"
	"vmpower/internal/faults"
	"vmpower/internal/meter/serial"
	"vmpower/internal/obs"
)

// TestChaosProvenanceSurface drives the chaos schedule with the auditor
// and provenance surface on, and pins the PR's acceptance claims: zero
// audit violations across the whole run (fresh, holdover and fallback
// ticks alike — every path rescales to the tick's dynamic power), every
// degradation edge journaled exactly once in sequence order, and a
// triggered flight dump whose φ round-trips through JSON bit-identical
// to the allocation the daemon served.
func TestChaosProvenanceSurface(t *testing.T) {
	const ticks = 300
	srv, fm, reg := chaosRig(t,
		faults.Options{
			Seed:        4321,
			DropoutProb: 0.35,
			NaNProb:     0.02,
			SpikeProb:   0.02,
			Episodes: []faults.Episode{
				{Start: 80, Len: 6, Kind: faults.Error, Err: serial.ErrCorruptStream},
				{Start: 150, Len: 5, Kind: faults.Dropout},
				{Start: 200, Len: 12, Kind: faults.StuckAt},
			},
		},
		core.Config{
			OfflineTicksPerCombo: 80, IdleMeasureTicks: 5, Seed: 1,
			MeterRetries: 2, HoldoverTicks: 10, StuckThreshold: 4,
		})
	srv.EnableAudit(core.AuditConfig{DeepEvery: 25})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Ground truth: the degradation edges as Step reports them.
	var wantEdges []string
	prevDegraded := false
	var last *core.Allocation
	for tick := 0; tick < ticks; tick++ {
		alloc, err := srv.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if alloc.Degraded != prevDegraded {
			if alloc.Degraded {
				wantEdges = append(wantEdges, "degraded")
			} else {
				wantEdges = append(wantEdges, "recovered")
			}
			prevDegraded = alloc.Degraded
		}
		last = alloc
		fm.NextTick()
	}
	if len(wantEdges) < 2 {
		t.Fatalf("schedule produced %d degradation edges; chaos too tame to test", len(wantEdges))
	}

	// The auditor checked every tick and found nothing: Efficiency holds
	// on fresh and degraded ticks alike.
	if v := reg.Counter("vmpower_audit_checks_total", "").Value(); v != ticks {
		t.Fatalf("audit checks = %d, want %d", v, ticks)
	}
	if v := reg.Counter("vmpower_audit_violations_total", "").Value(); v != 0 {
		t.Fatalf("audit violations = %d, want 0", v)
	}
	if v := reg.Counter("vmpower_audit_deep_checks_total", "").Value(); v == 0 {
		t.Fatal("deep checks never sampled")
	}
	if v := reg.Counter("vmpower_audit_deep_mismatches_total", "").Value(); v != 0 {
		t.Fatalf("deep mismatches = %d, want 0", v)
	}

	// Every degradation edge appears in the journal exactly once, in
	// order, with strictly increasing sequence numbers.
	var page obs.EventsJSON
	if code := getJSON(t, ts, "/api/v1/events?since=0", &page); code != 200 {
		t.Fatalf("events = %d", code)
	}
	var gotEdges []string
	var lastSeq uint64
	for _, ev := range page.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("journal seqs not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "degraded":
			if ev.Detail == "" {
				t.Fatalf("degraded event without a reason: %+v", ev)
			}
			gotEdges = append(gotEdges, "degraded")
		case "recovered":
			gotEdges = append(gotEdges, "recovered")
		}
	}
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("journal has %d degradation edges, Step saw %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if gotEdges[i] != wantEdges[i] {
			t.Fatalf("edge %d: journal %q, Step %q", i, gotEdges[i], wantEdges[i])
		}
	}

	// A triggered dump round-trips through JSON with the served φ intact
	// to the bit.
	var buf bytes.Buffer
	if err := srv.DumpFlight(&buf, "test-trigger"); err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	if dump.Reason != "test-trigger" || len(dump.Records) != obs.DefaultFlightCapacity {
		t.Fatalf("dump = %q / %d records, want test-trigger / %d",
			dump.Reason, len(dump.Records), obs.DefaultFlightCapacity)
	}
	newest := dump.Records[len(dump.Records)-1]
	if newest.Tick != last.Tick {
		t.Fatalf("newest record is tick %d, served tick %d", newest.Tick, last.Tick)
	}
	if len(newest.PerVMWatts) != len(last.PerVM) {
		t.Fatalf("record has %d shares, allocation %d", len(newest.PerVMWatts), len(last.PerVM))
	}
	for i := range last.PerVM {
		if math.Float64bits(newest.PerVMWatts[i]) != math.Float64bits(last.PerVM[i]) {
			t.Fatalf("φ[%d] %x != served %x after JSON round-trip",
				i, math.Float64bits(newest.PerVMWatts[i]), math.Float64bits(last.PerVM[i]))
		}
	}
	if newest.Tier == "" {
		t.Fatal("newest record has no tier")
	}

	// The live endpoint serves the same ring.
	var live obs.FlightDump
	if code := getJSON(t, ts, "/debug/flight", &live); code != 200 {
		t.Fatalf("/debug/flight = %d", code)
	}
	if live.Reason != "http" || len(live.Records) != obs.DefaultFlightCapacity {
		t.Fatalf("live dump = %q / %d records", live.Reason, len(live.Records))
	}
}
