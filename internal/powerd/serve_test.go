package powerd

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vmpower/internal/obs"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// getBody fetches path and returns the raw bytes, for bit-identity
// comparisons against the cached snapshot.
func getBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestCachedBytesIdentical pins the serving-path contract: the cached
// snapshot bytes each endpoint serves are bit-identical to a fresh
// per-request encode of the same tick's state, across several ticks.
func TestCachedBytesIdentical(t *testing.T) {
	srv, host := testServer(t)
	host.SetCoalition(vm.GrandCoalition(2))
	if err := host.Attach(0, workload.Synthetic{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
		srv.mu.RLock()
		wantAlloc, err1 := encodeJSON(srv.latest)
		wantStatus, err2 := encodeJSON(srv.statusLocked())
		wantEnergy, err3 := encodeJSON(srv.energyLocked())
		srv.mu.RUnlock()
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatal(err1, err2, err3)
		}
		if got := getBody(t, ts, "/api/v1/allocation"); !bytes.Equal(got, wantAlloc) {
			t.Fatalf("tick %d: cached allocation differs from fresh encode:\n got %s\nwant %s", i, got, wantAlloc)
		}
		if got := getBody(t, ts, "/api/v1/status"); !bytes.Equal(got, wantStatus) {
			t.Fatalf("tick %d: cached status differs from fresh encode:\n got %s\nwant %s", i, got, wantStatus)
		}
		if got := getBody(t, ts, "/api/v1/energy"); !bytes.Equal(got, wantEnergy) {
			t.Fatalf("tick %d: cached energy differs from fresh encode:\n got %s\nwant %s", i, got, wantEnergy)
		}
	}
}

// TestAllocationDeltaComposes pins the delta contract three ways: an
// unchanged roster yields an empty delta, a changed tick's delta carries
// exactly the VMs whose wire watts differ between the two full scrapes,
// and composing base + delta reconstructs the full allocation
// bit-for-bit (same scalars, same per-VM map).
func TestAllocationDeltaComposes(t *testing.T) {
	srv, host := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Phase 1: every VM stopped — watts pin at zero, so nothing changes
	// after the first tick and a delta across those ticks must be empty
	// (exactly zero VMs).
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	var first AllocationJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &first); code != http.StatusOK {
		t.Fatalf("full allocation: status %d", code)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var idle AllocationDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+itoa(first.Tick), &idle); code != http.StatusOK {
		t.Fatalf("idle delta: status %d", code)
	}
	if idle.Full || len(idle.PerVM) != 0 {
		t.Fatalf("idle ticks must produce an empty delta, got %+v", idle)
	}

	// Phase 2: start the coalition and a workload — the next tick's
	// delta must carry exactly the VMs whose wire value differs between
	// the two full scrapes.
	host.SetCoalition(vm.GrandCoalition(2))
	if err := host.Attach(0, workload.Synthetic{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var base AllocationJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &base); code != http.StatusOK {
		t.Fatalf("full allocation: status %d", code)
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	var full AllocationJSON
	if code := getJSON(t, ts, "/api/v1/allocation", &full); code != http.StatusOK {
		t.Fatalf("full allocation: status %d", code)
	}
	var delta AllocationDeltaJSON
	path := "/api/v1/allocation?since=" + itoa(base.Tick)
	if code := getJSON(t, ts, path, &delta); code != http.StatusOK {
		t.Fatalf("%s: status %d", path, code)
	}
	if delta.Full {
		t.Fatalf("since inside the window must not resync: %+v", delta)
	}
	if delta.Since != base.Tick || delta.Tick != full.Tick {
		t.Fatalf("delta tick bounds: got since=%d tick=%d, want %d/%d",
			delta.Since, delta.Tick, base.Tick, full.Tick)
	}
	for name, w := range full.PerVM {
		dw, inDelta := delta.PerVM[name]
		if changed := w != base.PerVM[name]; changed != inDelta {
			t.Fatalf("%s: changed=%v but delta membership=%v (%+v)", name, changed, inDelta, delta.PerVM)
		} else if inDelta && dw != w {
			t.Fatalf("%s: delta carries %v, latest is %v", name, dw, w)
		}
	}
	if len(delta.PerVM) == 0 {
		t.Fatal("workload tick produced no changed VMs; test is vacuous")
	}
	// Compose: overwrite scalars, upsert per-VM.
	composed := base
	composed.Tick = delta.Tick
	composed.MeasuredWatts = delta.MeasuredWatts
	composed.DynamicWatts = delta.DynamicWatts
	composed.Method = delta.Method
	composed.Degraded = delta.Degraded
	composed.DegradedReason = delta.DegradedReason
	composed.HoldoverAgeTicks = delta.HoldoverAgeTicks
	composed.RejectedSamples = delta.RejectedSamples
	for name, w := range delta.PerVM {
		composed.PerVM[name] = w
	}
	a, _ := encodeJSON(&composed)
	b, _ := encodeJSON(&full)
	if !bytes.Equal(a, b) {
		t.Fatalf("composed allocation differs:\n got %s\nwant %s", a, b)
	}

	// since == latest tick: empty delta, no resync.
	var empty AllocationDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+itoa(full.Tick), &empty); code != http.StatusOK {
		t.Fatalf("empty delta: status %d", code)
	}
	if empty.Full || len(empty.PerVM) != 0 {
		t.Fatalf("current client must get an empty delta: %+v", empty)
	}
	// since ahead of the daemon (restart): full resync.
	var resync AllocationDeltaJSON
	if code := getJSON(t, ts, "/api/v1/allocation?since="+itoa(full.Tick+1000), &resync); code != http.StatusOK {
		t.Fatalf("resync: status %d", code)
	}
	if !resync.Full || len(resync.PerVM) != len(full.PerVM) {
		t.Fatalf("ahead-of-daemon client must get a full resync: %+v", resync)
	}
	// Malformed since: 400.
	if code := getJSON(t, ts, "/api/v1/allocation?since=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", code)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// nullResponseWriter is a reusable ResponseWriter for allocation pins:
// the header map is allocated once and the body discarded.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) WriteHeader(int)             {}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestCachedGetZeroAllocs pins the tentpole's headline property: a GET
// on a cached endpoint performs zero allocations — no JSON marshal, no
// header churn — once the tick has published its snapshot.
func TestCachedGetZeroAllocs(t *testing.T) {
	srv, host := testServer(t)
	host.SetCoalition(vm.GrandCoalition(2))
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	w := &nullResponseWriter{h: make(http.Header)}
	for _, tc := range []struct {
		path    string
		handler http.HandlerFunc
	}{
		{"/api/v1/allocation", srv.handleAllocation},
		{"/api/v1/status", srv.handleStatus},
		{"/api/v1/energy", srv.handleEnergy},
	} {
		req := httptest.NewRequest(http.MethodGet, tc.path, nil)
		if avg := testing.AllocsPerRun(200, func() { tc.handler(w, req) }); avg != 0 {
			t.Errorf("%s: %v allocs per cached GET, want 0", tc.path, avg)
		}
	}
}

// TestInteractionsConcurrentWithStep pins the satellite audit: the
// interactions endpoint (est.Interactions on handler goroutines) is safe
// concurrent with Step's EstimateTick over the same estimator. Run under
// -race this hammers both sides; the estimator's only shared mutable
// state on this path is the approximator's RWMutex-guarded table.
func TestInteractionsConcurrentWithStep(t *testing.T) {
	srv, host := testServer(t)
	host.SetCoalition(vm.GrandCoalition(2))
	if err := host.Attach(0, workload.Synthetic{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/api/v1/interactions")
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("interactions: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// failingResponseWriter rejects every body write, standing in for a
// client that hung up mid-response.
type failingResponseWriter struct {
	h http.Header
}

func (w *failingResponseWriter) Header() http.Header { return w.h }
func (w *failingResponseWriter) WriteHeader(int)     {}
func (w *failingResponseWriter) Write([]byte) (int, error) {
	return 0, errors.New("client gone")
}

// TestEncodeErrorsCounted pins the silent-failure fix: body
// encode/write failures land in vmpower_http_encode_errors_total
// instead of being discarded.
func TestEncodeErrorsCounted(t *testing.T) {
	srv, host := testServer(t)
	reg := obs.NewRegistry()
	srv.Instrument(reg, obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Second)
	host.SetCoalition(vm.GrandCoalition(2))
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	o := srv.telemetry.Load()
	if o.encodeErrs.Value() != 0 {
		t.Fatalf("counter starts at %d, want 0", o.encodeErrs.Value())
	}
	w := &failingResponseWriter{h: make(http.Header)}
	// Cached path: the pre-encoded body fails to write.
	srv.handleAllocation(w, httptest.NewRequest(http.MethodGet, "/api/v1/allocation", nil))
	if got := o.encodeErrs.Value(); got != 1 {
		t.Fatalf("after failing cached write: counter %d, want 1", got)
	}
	// Per-request path: the delta response fails to encode onto the wire.
	srv.handleAllocation(w, httptest.NewRequest(http.MethodGet, "/api/v1/allocation?since=0", nil))
	if got := o.encodeErrs.Value(); got != 2 {
		t.Fatalf("after failing delta write: counter %d, want 2", got)
	}
}

// BenchmarkServeCached measures the cached GET path end to end through
// the handler (request parse, snapshot load, header assign, body write).
// ReportAllocs feeds the benchgate allocs/op pin: 0 on the trajectory.
func BenchmarkServeCached(b *testing.B) {
	srv, host := testServer(b)
	host.SetCoalition(vm.GrandCoalition(2))
	if err := host.Attach(0, workload.FloatPoint()); err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Step(); err != nil {
		b.Fatal(err)
	}
	w := &nullResponseWriter{h: make(http.Header)}
	for _, tc := range []struct {
		name    string
		path    string
		handler http.HandlerFunc
	}{
		{"allocation", "/api/v1/allocation", srv.handleAllocation},
		{"status", "/api/v1/status", srv.handleStatus},
		{"energy", "/api/v1/energy", srv.handleEnergy},
	} {
		b.Run(tc.name, func(b *testing.B) {
			req := httptest.NewRequest(http.MethodGet, tc.path, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tc.handler(w, req)
			}
		})
	}
}
