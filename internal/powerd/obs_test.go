package powerd

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vmpower/internal/obs"
	"vmpower/internal/vm"
	"vmpower/internal/workload"
)

// instrumentedServer builds a calibrated 2-VM server with a registry
// attached, and resets the package-global shapley/serial instrumentation
// when the test ends.
func instrumentedServer(t *testing.T) (*Server, *obs.Registry, func()) {
	t.Helper()
	srv, host := testServer(t)
	for _, id := range []vm.ID{0, 1} {
		if err := host.Attach(id, workload.FloatPoint()); err != nil {
			t.Fatal(err)
		}
	}
	host.SetCoalition(vm.CoalitionOf(0, 1))
	reg := obs.NewRegistry()
	srv.Instrument(reg, obs.NewLogger(io.Discard, obs.LevelError, obs.FormatKV), time.Second)
	t.Cleanup(func() { srv.Instrument(nil, nil, 0) })
	return srv, reg, func() { srv.Instrument(nil, nil, 0) }
}

// parsedSeries is one exposition line: name, labels, value.
type parsedSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses the Prometheus text format far enough to check
// names, labels and values: families from # TYPE lines, series from data
// lines.
func parseExposition(t *testing.T, body string) (map[string]string, []parsedSeries) {
	t.Helper()
	families := map[string]string{} // name -> type
	var series []parsedSeries
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			families[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		id, raw := line[:sp], line[sp+1:]
		p := parsedSeries{labels: map[string]string{}}
		if br := strings.IndexByte(id, '{'); br >= 0 {
			p.name = id[:br]
			inner := strings.TrimSuffix(id[br+1:], "}")
			for _, pair := range strings.Split(inner, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				val, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("unquoting label in %q: %v", line, err)
				}
				p.labels[pair[:eq]] = val
			}
		} else {
			p.name = id
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil && raw != "+Inf" {
			t.Fatalf("parsing value in %q: %v", line, err)
		}
		p.value = v
		series = append(series, p)
	}
	return families, series
}

func TestMetricsEndpointE2E(t *testing.T) {
	srv, _, _ := instrumentedServer(t)
	for i := 0; i < 3; i++ {
		if _, err := srv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, series := parseExposition(t, string(body))

	if len(families) < 12 {
		t.Fatalf("only %d metric families exposed, want >= 12: %v", len(families), families)
	}
	wantFamilies := map[string]string{
		"vmpower_tick_duration_seconds":       "histogram",
		"vmpower_tick_stage_duration_seconds": "histogram",
		"vmpower_ticks_total":                 "counter",
		"vmpower_mc_permutations_total":       "counter",
		"vmpower_mc_stderr_watts":             "gauge",
		"vmpower_worth_cache_hits_total":      "counter",
		"vmpower_serial_bad_frames_total":     "counter",
		"vmpower_http_requests_total":         "counter",
		"vmpower_vm_watts":                    "gauge",
	}
	for name, typ := range wantFamilies {
		if got := families[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	// The 3 ticks must have landed in the counter and the histogram.
	var tickCount, ticksTotal float64
	stageSeen := map[string]bool{}
	vmSeen := map[string]bool{}
	for _, p := range series {
		switch p.name {
		case "vmpower_ticks_total":
			ticksTotal = p.value
		case "vmpower_tick_duration_seconds_count":
			tickCount = p.value
		case "vmpower_tick_stage_duration_seconds_count":
			stageSeen[p.labels["stage"]] = p.value > 0
		case "vmpower_vm_watts":
			vmSeen[p.labels["vm"]] = p.value > 0
		}
	}
	if ticksTotal != 3 || tickCount != 3 {
		t.Errorf("ticks_total=%v tick_duration_count=%v, want 3 each", ticksTotal, tickCount)
	}
	// Exact solves on this 2-VM host: every stage except none should
	// have observations — MC-only paths aside, all six stages are marked.
	for _, st := range []string{"snapshot", "meter", "worth", "solve", "normalize", "publish"} {
		if !stageSeen[st] {
			t.Errorf("stage %q has no observations (seen: %v)", st, stageSeen)
		}
	}
	for _, name := range []string{"web", "db"} {
		if !vmSeen[name] {
			t.Errorf("vm_watts{vm=%q} missing or zero", name)
		}
	}

	// Cumulative bucket monotonicity for the tick-latency histogram.
	var prev float64
	var buckets int
	for _, p := range series {
		if p.name != "vmpower_tick_duration_seconds_bucket" {
			continue
		}
		if p.value < prev {
			t.Fatalf("bucket le=%s count %v < previous %v (not cumulative)", p.labels["le"], p.value, prev)
		}
		prev = p.value
		buckets++
	}
	if buckets < 2 {
		t.Fatalf("only %d buckets exposed", buckets)
	}
	if prev != tickCount {
		t.Errorf("+Inf bucket %v != count %v", prev, tickCount)
	}

	// The JSON twin serves the same registry.
	if code := getJSON(t, ts, "/metrics.json", nil); code != http.StatusOK {
		t.Fatalf("/metrics.json code %d", code)
	}

	// And the scrapes themselves showed up in the HTTP metrics.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !strings.Contains(string(body2), `vmpower_http_requests_total{path="/metrics"}`) {
		t.Error("self-scrape missing from vmpower_http_requests_total")
	}
}

func TestUninstrumentedHandlerHasNoMetricsRoutes(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := getJSON(t, ts, "/metrics", nil); code != http.StatusNotFound {
		t.Fatalf("/metrics on uninstrumented server: code %d, want 404", code)
	}
	// /healthz is always mounted.
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz code %d", code)
	}
}

func TestHealthzLifecycle(t *testing.T) {
	srv, _, _ := instrumentedServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var h HealthJSON
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "starting" {
		t.Fatalf("fresh server: code %d status %q, want 200 starting", code, h.Status)
	}

	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("after tick: code %d status %q, want 200 ok", code, h.Status)
	}
	if !h.Calibrated || h.Ticks != 1 {
		t.Fatalf("health body: %+v", h)
	}

	// Stall: pretend 4 intervals pass with no tick (threshold is 3).
	srv.now = func() time.Time { return time.Now().Add(4 * time.Second) }
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "stalled" {
		t.Fatalf("stalled: code %d status %q, want 503 stalled", code, h.Status)
	}
	if h.LastTickAgeSeconds < 3 {
		t.Fatalf("stalled age = %v, want >= 3", h.LastTickAgeSeconds)
	}
	srv.now = time.Now

	// A failed Step surfaces as an error state until the next good tick.
	srv.mu.Lock()
	srv.lastErr = "meter: 32 consecutive dropouts"
	srv.mu.Unlock()
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "error" {
		t.Fatalf("error state: code %d status %q, want 503 error", code, h.Status)
	}
	if h.Error == "" {
		t.Fatal("error state must carry the message")
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("recovered: code %d status %q, want 200 ok", code, h.Status)
	}
}

func TestHealthzStalledBeforeFirstTick(t *testing.T) {
	srv, _, _ := instrumentedServer(t)
	srv.now = func() time.Time { return srv.createdAt.Add(10 * time.Second) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var h HealthJSON
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "stalled" {
		t.Fatalf("never-ticked stale server: code %d status %q, want 503 stalled", code, h.Status)
	}
}

func TestHistoryRejectsZeroN(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := getJSON(t, ts, "/api/v1/history?n=0", nil); code != http.StatusBadRequest {
		t.Fatalf("history?n=0 code %d, want 400", code)
	}
}

// TestInstrumentedStepNoGoroutineLeak drives instrumented Steps
// concurrently with metric scrapes and checks the process returns to its
// baseline goroutine count — the tracing/metrics path must not spawn
// anything that outlives the tick. Run with -race to also flush out data
// races between Step's publishing and the scrape's reads.
func TestInstrumentedStepNoGoroutineLeak(t *testing.T) {
	srv, reg, uninstrument := instrumentedServer(t)
	handler := srv.Handler()
	_ = reg

	before := runtime.NumGoroutine()

	done := make(chan struct{})
	stepErr := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := srv.Step(); err != nil {
				stepErr <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				for _, path := range []string{"/metrics", "/metrics.json", "/healthz"} {
					rec := httptest.NewRecorder()
					req := httptest.NewRequest(http.MethodGet, path, nil)
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
						t.Errorf("%s: code %d", path, rec.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	<-done
	select {
	case err := <-stepErr:
		t.Fatal(err)
	default:
	}
	uninstrument()

	// The scrapers and stepper are joined; any extra goroutines now are
	// leaks. Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after instrumented steps", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
