package powerd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"

	"vmpower/internal/obs"
)

// The high-traffic serving path: every tick publishes an immutable,
// pre-encoded snapshot of the read-mostly endpoints behind one atomic
// pointer swap. Handlers write the cached bytes — zero encodes and zero
// marshal allocations per request — so a scrape storm costs the tick
// loop nothing beyond the one encode it already pays per tick. The
// bytes are produced by the same json.Encoder the legacy per-request
// path used, so cached responses are bit-identical to a fresh encode
// (pinned by TestCachedBytesIdentical).

// servedSnapshot is one tick's pre-encoded HTTP surface. It is immutable
// after publication; a nil body means that endpoint could not encode
// this tick (NaN watts and the like) and the handler falls back to the
// per-request path, which surfaces the error.
type servedSnapshot struct {
	tick       int
	status     []byte
	allocation []byte
	energy     []byte
}

// deltaWindow bounds the per-tick change log behind
// /api/v1/allocation?since=. A client further behind than this many
// ticks gets a full resync (Full=true), the journal's "dropped"
// analogue.
const deltaWindow = 512

// vmDelta records which per-VM wire values changed on one tick relative
// to the previous one (all of them on the first tick).
type vmDelta struct {
	tick    int
	changed []string
}

// AllocationDeltaJSON is the wire form of GET /api/v1/allocation?since=T:
// the scalar header of the latest tick plus only the per-VM entries that
// changed after tick T. A client holding the full allocation of tick T
// overwrites the scalars and upserts PerVM to reconstruct the full
// allocation of Tick exactly (pinned by TestAllocationDeltaComposes);
// it then passes Tick as the next ?since=. Full marks a resync — the
// requested tick predates the retained window (or a daemon restart), so
// PerVM carries every VM.
type AllocationDeltaJSON struct {
	Since            int                `json:"since"`
	Tick             int                `json:"tick"`
	Full             bool               `json:"full,omitempty"`
	MeasuredWatts    float64            `json:"measured_watts"`
	DynamicWatts     float64            `json:"dynamic_watts"`
	Method           string             `json:"method"`
	Degraded         bool               `json:"degraded,omitempty"`
	DegradedReason   string             `json:"degraded_reason,omitempty"`
	HoldoverAgeTicks int                `json:"holdover_age_ticks,omitempty"`
	RejectedSamples  int                `json:"rejected_samples,omitempty"`
	PerVM            map[string]float64 `json:"per_vm_watts"`
}

// encodeJSON renders v exactly as writeJSON's per-request encoder does
// (same encoder, same trailing newline), into a fresh buffer the cached
// snapshot owns forever.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// jsonCType is the Content-Type header value shared by every cached
// response. Assigning the shared slice directly (rather than
// Header().Set) keeps the cached GET path allocation-free.
var jsonCType = []string{"application/json"}

// writeCached serves a pre-encoded body. Zero allocations on the happy
// path; a failed write (client gone mid-response) is counted like an
// encode failure.
func (s *Server) writeCached(w http.ResponseWriter, body []byte) {
	w.Header()["Content-Type"] = jsonCType
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		s.noteEncodeError(err)
	}
}

// writeJSON is the per-request fallback (pre-first-tick, error bodies,
// delta responses): encode straight onto the wire. Encode errors — a
// value that cannot marshal, or a client that hung up mid-body — used to
// be silently discarded; they are now counted in
// vmpower_http_encode_errors_total and logged at debug.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.noteEncodeError(err)
	}
}

func (s *Server) noteEncodeError(err error) {
	o := s.telemetry.Load()
	if o == nil {
		return
	}
	o.encodeErrs.Inc()
	if o.log.Enabled(obs.LevelDebug) {
		o.log.Debug("response encode failed", "err", err)
	}
}

// statusLocked builds the status wire form from published tick state.
// Callers hold s.mu (any mode).
func (s *Server) statusLocked() StatusJSON {
	return StatusJSON{
		Calibrated:         s.est.Trained(),
		IdleWatts:          s.est.IdlePower(),
		VMs:                append([]string(nil), s.names...),
		Ticks:              s.ticks,
		Degraded:           s.latest != nil && s.latest.Degraded,
		DegradedTicks:      s.degradedTicks,
		RejectedSamples:    s.rejected,
		LastDegradedReason: s.lastDegraded,
	}
}

// energyLocked builds the energy wire form. Callers hold s.mu (any mode).
func (s *Server) energyLocked() EnergyJSON {
	out := EnergyJSON{
		Seconds: s.energySeconds,
		PerVMWh: make(map[string]float64, len(s.energyWs)),
	}
	for name, ws := range s.energyWs {
		wh := ws / 3600
		out.PerVMWh[name] = wh
		out.TotalWh += wh
	}
	return out
}

// publishLocked pre-encodes the tick's read-mostly endpoints and swaps
// the served snapshot, and appends the tick's changed-VM set to the
// bounded delta log. Called from record with s.mu held; the previous
// snapshot stays valid for requests already holding its pointer.
func (s *Server) publishLocked(wire *AllocationJSON) {
	changed := make([]string, 0, len(s.names))
	for _, name := range s.names {
		w := wire.PerVM[name]
		if prev, ok := s.prevPerVM[name]; !ok || prev != w {
			changed = append(changed, name)
		}
		s.prevPerVM[name] = w
	}
	s.deltaLog = append(s.deltaLog, vmDelta{tick: wire.Tick, changed: changed})
	if len(s.deltaLog) > deltaWindow {
		s.deltaLog = s.deltaLog[len(s.deltaLog)-deltaWindow:]
	}

	snap := &servedSnapshot{tick: wire.Tick}
	// A body that cannot encode (NaN watts would be one) leaves its slot
	// nil: the handler falls back to the per-request path, which counts
	// the failure per request instead of silently serving stale bytes.
	snap.allocation, _ = encodeJSON(wire)
	snap.status, _ = encodeJSON(s.statusLocked())
	snap.energy, _ = encodeJSON(s.energyLocked())
	s.served.Store(snap)
}

// handleAllocationDelta serves GET /api/v1/allocation?since=T. The
// response is O(changed VMs since T), not O(roster): scalars always,
// per-VM entries only for VMs whose wire value changed after T.
func (s *Server) handleAllocationDelta(w http.ResponseWriter, raw string) {
	since, err := strconv.Atoi(raw)
	if err != nil || since < 0 {
		s.writeJSON(w, http.StatusBadRequest, errorJSON{Error: "since must be a non-negative integer"})
		return
	}
	s.mu.RLock()
	latest := s.latest
	if latest == nil {
		s.mu.RUnlock()
		s.writeJSON(w, http.StatusNotFound, errorJSON{Error: "no allocation yet"})
		return
	}
	out := AllocationDeltaJSON{
		Since:            since,
		Tick:             latest.Tick,
		MeasuredWatts:    latest.MeasuredWatts,
		DynamicWatts:     latest.DynamicWatts,
		Method:           latest.Method,
		Degraded:         latest.Degraded,
		DegradedReason:   latest.DegradedReason,
		HoldoverAgeTicks: latest.HoldoverAgeTicks,
		RejectedSamples:  latest.RejectedSamples,
		PerVM:            map[string]float64{},
	}
	switch {
	case since >= latest.Tick:
		// Current — empty delta. A client ahead of the daemon (since from
		// a previous incarnation) gets a full resync instead: its baseline
		// tick numbering means nothing here.
		if since > latest.Tick {
			out.Full = true
			for name, w := range latest.PerVM {
				out.PerVM[name] = w
			}
		}
	case len(s.deltaLog) > 0 && s.deltaLog[0].tick <= since+1:
		for _, d := range s.deltaLog {
			if d.tick <= since {
				continue
			}
			for _, name := range d.changed {
				out.PerVM[name] = latest.PerVM[name]
			}
		}
	default:
		// since predates the retained window: full resync.
		out.Full = true
		for name, w := range latest.PerVM {
			out.PerVM[name] = w
		}
	}
	s.mu.RUnlock()
	s.writeJSON(w, http.StatusOK, out)
}
