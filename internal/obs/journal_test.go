package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestJournalAppendAndSince(t *testing.T) {
	j := NewJournal(8)
	if got := j.Append(1, "tier_switch", "", "exact-mask -> exact-sym"); got != 1 {
		t.Fatalf("first Append seq = %d, want 1", got)
	}
	j.Append(2, "degraded", "", "meter dropout")
	j.Append(5, "recovered", "", "")

	page := j.Since(0)
	if page.Next != 3 || page.Dropped != 0 || len(page.Events) != 3 {
		t.Fatalf("Since(0) = next %d dropped %d events %d, want 3/0/3",
			page.Next, page.Dropped, len(page.Events))
	}
	for i, ev := range page.Events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if page.Events[1].Type != "degraded" || page.Events[1].Detail != "meter dropout" {
		t.Fatalf("event 2 = %+v", page.Events[1])
	}

	// Delta read: only events after the cursor.
	page = j.Since(2)
	if len(page.Events) != 1 || page.Events[0].Type != "recovered" {
		t.Fatalf("Since(2) = %+v", page.Events)
	}
	// Cursor at the tip: empty page, Next unchanged.
	page = j.Since(page.Next)
	if len(page.Events) != 0 || page.Next != 3 {
		t.Fatalf("Since(tip) = %+v", page)
	}
}

func TestJournalEvictionReportsDropped(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 10; i++ {
		j.Append(i, "tier_switch", "", "")
	}
	page := j.Since(0)
	if page.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", page.Dropped)
	}
	if len(page.Events) != 4 || page.Events[0].Seq != 7 || page.Events[3].Seq != 10 {
		t.Fatalf("events = %+v, want seqs 7..10", page.Events)
	}
	// A cursor inside the evicted range reports only the missing part.
	page = j.Since(5)
	if page.Dropped != 1 || len(page.Events) != 4 {
		t.Fatalf("Since(5) = dropped %d events %d, want 1/4", page.Dropped, len(page.Events))
	}
	// A cursor inside the buffered range drops nothing.
	page = j.Since(8)
	if page.Dropped != 0 || len(page.Events) != 2 {
		t.Fatalf("Since(8) = dropped %d events %d, want 0/2", page.Dropped, len(page.Events))
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if seq := j.Append(1, "x", "", ""); seq != 0 {
		t.Fatalf("nil Append = %d, want 0", seq)
	}
	page := j.Since(0)
	if page.Next != 0 || len(page.Events) != 0 {
		t.Fatalf("nil Since = %+v", page)
	}
}

func TestJournalHandler(t *testing.T) {
	j := NewJournal(8)
	j.Append(3, "quarantine", "host:1", "meter fault")

	rec := httptest.NewRecorder()
	j.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/events?since=0", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var page EventsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if page.Next != 1 || len(page.Events) != 1 || page.Events[0].Subject != "host:1" {
		t.Fatalf("page = %+v", page)
	}

	rec = httptest.NewRecorder()
	j.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/events?since=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: status = %d, want 400", rec.Code)
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Append(i, "tier_switch", "", "")
			}
		}()
	}
	wg.Wait()
	page := j.Since(0)
	if page.Next != writers*each {
		t.Fatalf("next = %d, want %d", page.Next, writers*each)
	}
	for i := 1; i < len(page.Events); i++ {
		if page.Events[i].Seq != page.Events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d",
				i, page.Events[i-1].Seq, page.Events[i].Seq)
		}
	}
}
