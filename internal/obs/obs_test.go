package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent registration returns the same series.
	if r.Counter("test_events_total", "events") != c {
		t.Fatal("re-registration must return the existing counter")
	}
	g := r.Gauge("test_watts", "watts", L("vm", "web"))
	g.Set(12.5)
	g.Add(0.5)
	if g.Value() != 13 {
		t.Fatalf("gauge = %g, want 13", g.Value())
	}
	// Distinct labels give a distinct series.
	if r.Gauge("test_watts", "watts", L("vm", "db")) == g {
		t.Fatal("different labels must give a different series")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-12 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// Raw (non-cumulative) per-bucket counts: <=0.01 gets 0.005 and 0.01
	// (le boundary is inclusive), <=0.1 gets 0.05, <=1 gets 0.5, +Inf 5.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestNilSafetyZeroAllocs(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		l *Logger
		r *Registry
		s *Span
	)
	tr := (*Tracer)(nil)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(2)
		l.Info("dropped")
		sp := tr.Start()
		sp.Mark("x")
		sp.End()
		s.Mark("y")
	})
	if allocs != 0 {
		t.Fatalf("nil no-op path allocates %g times per run, want 0", allocs)
	}
	if r.Counter("x_total", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x_h", "", nil) != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	if err := r.WriteText(nil); err != nil {
		t.Fatal(err)
	}
}

func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "requests served", L("endpoint", "/api")).Add(3)
	r.Gauge("app_temp_celsius", "temperature").Set(21.5)
	h := r.Histogram("app_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_requests_total counter",
		`app_requests_total{endpoint="/api"} 3`,
		"# TYPE app_temp_celsius gauge",
		"app_temp_celsius 21.5",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 2.55",
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestJSONSnapshotHandlesNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf_gauge", "").Set(math.Inf(1))
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	ts := httptest.NewServer(r.HandlerJSON())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snaps []SeriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("series = %d, want 2", len(snaps))
	}
	if snaps[1].Count != 1 || len(snaps[1].Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", snaps[1])
	}
}

func TestSnapshotJSONRoundTripsInf(t *testing.T) {
	raw, err := json.Marshal(jsonFloat(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `"+Inf"` {
		t.Fatalf("inf marshals to %s", raw)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	h := r.Histogram("race_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		_ = r.Snapshot()
	}
	wg.Wait()
	if c.Value() != 2000 {
		t.Fatalf("counter = %d, want 2000", c.Value())
	}
	if h.Count() != 2000 {
		t.Fatalf("histogram count = %d, want 2000", h.Count())
	}
}

func TestRegistryPanicsOnConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dup_total", "")
}
