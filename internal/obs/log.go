package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Severities, lowest first. A Logger emits records at or above its level.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel parses a level name.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Format selects the line encoding of a Logger.
type Format int

const (
	// FormatKV emits logfmt-style key=value lines.
	FormatKV Format = iota
	// FormatJSON emits one JSON object per line.
	FormatJSON
)

// ParseFormat parses a format name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "kv", "logfmt", "text":
		return FormatKV, nil
	case "json":
		return FormatJSON, nil
	default:
		return 0, fmt.Errorf("obs: unknown log format %q (want kv or json)", s)
	}
}

// logSink serialises writes; shared by a Logger and its With children.
type logSink struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger is a leveled structured logger. Records carry a timestamp, a
// level, a message and alternating key/value fields:
//
//	log.Info("calibrated", "idle_watts", 138.2, "ticks", 600)
//
// A nil *Logger discards everything (the no-op path), so library code
// can log unconditionally on a possibly-nil handle.
type Logger struct {
	sink   *logSink
	level  Level
	format Format
	base   []any // pre-bound key/value pairs from With
	now    func() time.Time
}

// NewLogger builds a logger writing to w.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{sink: &logSink{w: w}, level: level, format: format, now: time.Now}
}

// With returns a child logger with kv pre-bound to every record. The
// child shares the parent's writer and level.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]any(nil), l.base...), kv...)
	return &child
}

// Enabled reports whether records at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.level }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var b strings.Builder
	if l.format == FormatJSON {
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(lv.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		writePairs(&b, l.base, true)
		writePairs(&b, kv, true)
		b.WriteString("}\n")
	} else {
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(lv.String())
		b.WriteString(" msg=")
		b.WriteString(kvQuote(msg))
		writePairs(&b, l.base, false)
		writePairs(&b, kv, false)
		b.WriteByte('\n')
	}
	l.sink.mu.Lock()
	_, _ = io.WriteString(l.sink.w, b.String())
	l.sink.mu.Unlock()
}

// writePairs renders alternating key/value fields. A trailing key with
// no value gets "(MISSING)" rather than being dropped.
func writePairs(b *strings.Builder, kv []any, asJSON bool) {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		if asJSON {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(key))
			b.WriteByte(':')
			b.WriteString(jsonValue(val))
		} else {
			b.WriteByte(' ')
			b.WriteString(key)
			b.WriteByte('=')
			b.WriteString(kvValue(val))
		}
	}
}

// jsonValue marshals one field value, degrading to a quoted string for
// values encoding/json rejects (errors, Inf, channels, ...).
func jsonValue(v any) string {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return strconv.Quote(fmt.Sprint(v))
	}
	return string(raw)
}

// kvValue renders one logfmt field value.
func kvValue(v any) string {
	switch t := v.(type) {
	case error:
		return kvQuote(t.Error())
	case string:
		return kvQuote(t)
	case time.Duration:
		return t.String()
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(t), 'g', -1, 32)
	case fmt.Stringer:
		return kvQuote(t.String())
	default:
		return kvQuote(fmt.Sprint(v))
	}
}

// kvQuote quotes a string only when logfmt requires it.
func kvQuote(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '=' || c == '"' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
