package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// fixedLogger pins the clock so lines are deterministic.
func fixedLogger(b *strings.Builder, level Level, format Format) *Logger {
	l := NewLogger(b, level, format)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLoggerKVFormat(t *testing.T) {
	var b strings.Builder
	l := fixedLogger(&b, LevelInfo, FormatKV)
	l.Info("calibrated", "idle_watts", 138.2, "machine", "xeon 16", "err", errors.New("boom=1"))
	got := b.String()
	want := `ts=2026-08-05T12:00:00Z level=info msg=calibrated idle_watts=138.2 machine="xeon 16" err="boom=1"` + "\n"
	if got != want {
		t.Fatalf("line = %q\nwant  %q", got, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var b strings.Builder
	l := fixedLogger(&b, LevelDebug, FormatJSON)
	l.Debug("tick", "tick", 7, "watts", 151.25, "vm", "web")
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, b.String())
	}
	if rec["level"] != "debug" || rec["msg"] != "tick" || rec["watts"] != 151.25 || rec["vm"] != "web" {
		t.Fatalf("record = %v", rec)
	}
	// Field order is stable: ts, level, msg, then caller pairs.
	if !strings.HasPrefix(b.String(), `{"ts":"2026-08-05T12:00:00Z","level":"debug","msg":"tick","tick":7`) {
		t.Fatalf("order: %q", b.String())
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	l := fixedLogger(&b, LevelWarn, FormatKV)
	l.Debug("d")
	l.Info("i")
	if b.Len() != 0 {
		t.Fatalf("below-level records emitted: %q", b.String())
	}
	l.Warn("w")
	l.Error("e", "code", 7)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "code=7") {
		t.Fatalf("lines = %q", lines)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled mismatch")
	}
}

func TestLoggerWith(t *testing.T) {
	var b strings.Builder
	l := fixedLogger(&b, LevelInfo, FormatKV)
	child := l.With("component", "powerd")
	child.Info("up", "listen", "127.0.0.1:7077")
	if !strings.Contains(b.String(), "component=powerd listen=127.0.0.1:7077") {
		t.Fatalf("line = %q", b.String())
	}
	// Parent unaffected.
	b.Reset()
	l.Info("plain")
	if strings.Contains(b.String(), "component") {
		t.Fatalf("parent gained base fields: %q", b.String())
	}
	if (*Logger)(nil).With("k", "v") != nil {
		t.Fatal("nil With must stay nil")
	}
}

func TestLoggerOddPairs(t *testing.T) {
	var b strings.Builder
	l := fixedLogger(&b, LevelInfo, FormatKV)
	l.Info("m", "dangling")
	if !strings.Contains(b.String(), `dangling=(MISSING)`) {
		t.Fatalf("line = %q", b.String())
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
	for s, want := range map[string]Format{"kv": FormatKV, "logfmt": FormatKV, "JSON": FormatJSON} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("want error for unknown format")
	}
}

func TestTracerFeedsHistograms(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "pipe_duration_seconds", "pipe_stage_duration_seconds", "pipeline", "a", "b")
	sp := tr.Start()
	sp.Mark("a")
	sp.Mark("b")
	sp.Mark("unknown") // ignored
	sp.End()
	if tr.total.Count() != 1 {
		t.Fatalf("total count = %d", tr.total.Count())
	}
	if tr.stages["a"].Count() != 1 || tr.stages["b"].Count() != 1 {
		t.Fatal("stage histograms must get one observation each")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `pipe_stage_duration_seconds_count{stage="a"} 1`) {
		t.Fatalf("missing stage series:\n%s", b.String())
	}
}
