package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders {k="v",...}; extra is appended last (used for le).
func formatLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value; Prometheus accepts +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteText writes the registry in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, formatLabels(m.labels), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, formatLabels(m.labels), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, formatLabels(m.labels, L("le", formatFloat(bound))), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, formatLabels(m.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, formatLabels(m.labels), formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, formatLabels(m.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonFloat marshals non-finite values as strings so the snapshot stays
// valid JSON (encoding/json rejects Inf and NaN).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return json.Marshal(formatFloat(v))
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both the numeric and the string ("+Inf", "-Inf",
// "NaN") encodings, so snapshots round-trip.
func (f *jsonFloat) UnmarshalJSON(data []byte) error {
	var v float64
	if err := json.Unmarshal(data, &v); err == nil {
		*f = jsonFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "+Inf", "Inf":
		*f = jsonFloat(math.Inf(1))
	case "-Inf":
		*f = jsonFloat(math.Inf(-1))
	case "NaN":
		*f = jsonFloat(math.NaN())
	default:
		return fmt.Errorf("obs: cannot parse %q as a float", s)
	}
	return nil
}

// BucketSnapshot is one cumulative histogram bucket in a snapshot.
type BucketSnapshot struct {
	LE    jsonFloat `json:"le"`
	Count uint64    `json:"count"`
}

// SeriesSnapshot is one metric series in a JSON snapshot.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value jsonFloat `json:"value"`
	// Histogram-only fields. Buckets are cumulative; the final +Inf
	// bucket equals Count.
	Sum     jsonFloat        `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot returns every series in registration order.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var out []SeriesSnapshot
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for _, c := range children {
			s := SeriesSnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
			var labels []Label
			switch m := c.(type) {
			case *Counter:
				labels = m.labels
				s.Value = jsonFloat(m.Value())
			case *Gauge:
				labels = m.labels
				s.Value = jsonFloat(m.Value())
			case *Histogram:
				labels = m.labels
				s.Sum = jsonFloat(m.Sum())
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					s.Buckets = append(s.Buckets, BucketSnapshot{LE: jsonFloat(bound), Count: cum})
				}
				cum += m.counts[len(m.bounds)].Load()
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: jsonFloat(math.Inf(1)), Count: cum})
				s.Count = cum
			}
			if len(labels) > 0 {
				s.Labels = make(map[string]string, len(labels))
				for _, l := range labels {
					s.Labels[l.Key] = l.Value
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// Handler serves the text exposition (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// HandlerJSON serves the JSON snapshot (mount at /metrics.json).
func (r *Registry) HandlerJSON() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
