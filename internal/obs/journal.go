package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Event is one entry in a tick event journal: a state transition worth
// reconstructing later (tier switch, degradation edge, quarantine,
// readmission, plan recompile, audit violation). Seq is assigned by the
// journal and is strictly monotonic from 1, so a scraper that remembers
// the last Seq it saw gets a causally ordered delta from
// /api/v1/events?since=<seq> instead of re-reading full status.
type Event struct {
	Seq  uint64 `json:"seq"`
	Tick int    `json:"tick"`
	// Type is a small fixed vocabulary: health edges ("tier_switch",
	// "degraded", "recovered", "quarantine", "readmit"), daemon events
	// ("plan_recompile", "plan_compile_error", "audit_violation",
	// "flight_dump"), and the VM lifecycle ("vm_poweron", "vm_poweroff",
	// "vm_hotplug", "vm_remove", "migrate_start", "migrate_finish",
	// "drain_start", "drain_finish", "undrain"). Lifecycle events are
	// journaled exactly once: the fleet drains each into a single tick.
	Type string `json:"type"`
	// Subject scopes the event when the producer manages several
	// entities (fleetd uses "host:<i>"); empty for daemon-wide events.
	Subject string `json:"subject,omitempty"`
	// Detail is a human-readable explanation (old tier → new tier,
	// degradation reason, violation text).
	Detail string `json:"detail,omitempty"`
}

// Journal is an append-only bounded event log: a mutex-guarded ring that
// keeps the most recent Capacity events and assigns monotonic sequence
// numbers forever. Appends never block on readers and never fail; old
// events are silently evicted, with the eviction visible to readers as
// EventsJSON.Dropped. All methods are nil-safe no-ops.
type Journal struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // seq the next Append will get (starts at 1)
}

// DefaultJournalCapacity bounds a daemon journal when the caller passes
// a non-positive capacity. Transitions are rare (order of one per
// degradation episode), so 1024 covers hours of chaos.
const DefaultJournalCapacity = 1024

// NewJournal builds a journal holding the last capacity events
// (<= 0 uses DefaultJournalCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{buf: make([]Event, capacity), next: 1}
}

// Append records one event and returns its sequence number (0 on a nil
// journal). Safe for concurrent use.
func (j *Journal) Append(tick int, typ, subject, detail string) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	seq := j.next
	j.next++
	j.buf[int((seq-1)%uint64(len(j.buf)))] = Event{
		Seq: seq, Tick: tick, Type: typ, Subject: subject, Detail: detail,
	}
	j.mu.Unlock()
	return seq
}

// EventsJSON is the wire form of a journal read: the buffered events
// with Seq > Since in ascending order. Next is the value to pass as
// ?since= on the following poll; Dropped counts events that matched the
// query but were already evicted from the ring.
type EventsJSON struct {
	Since   uint64  `json:"since"`
	Next    uint64  `json:"next"`
	Dropped uint64  `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// Since returns the buffered events with Seq > since, oldest first. A
// nil journal returns an empty page with Next 0.
func (j *Journal) Since(since uint64) EventsJSON {
	out := EventsJSON{Since: since, Events: []Event{}}
	if j == nil {
		return out
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out.Next = j.next - 1
	first := uint64(1)
	if j.next > uint64(len(j.buf))+1 {
		first = j.next - uint64(len(j.buf))
	}
	if since+1 < first {
		out.Dropped = first - since - 1
	}
	for seq := max64(first, since+1); seq < j.next; seq++ {
		out.Events = append(out.Events, j.buf[int((seq-1)%uint64(len(j.buf)))])
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Handler serves the journal as GET ?since=<seq> (default 0: everything
// still buffered). Mount at /api/v1/events.
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		since := uint64(0)
		if raw := r.URL.Query().Get("since"); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				http.Error(w, `{"error":"since must be a non-negative integer"}`, http.StatusBadRequest)
				return
			}
			since = v
		}
		w.Header().Set("Content-Type", "application/json")
		WriteJSONIndent(w, j.Since(since))
	})
}

// WriteJSONIndent writes v as indented JSON: the shared encoder behind
// the journal and flight-recorder handlers and the daemons' triggered
// dumps (none of which is a hot path).
func WriteJSONIndent(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
