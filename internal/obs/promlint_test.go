package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLintExpositionAcceptsOwnOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("vmpower_ticks_total", "ticks").Inc()
	r.Gauge("vmpower_build_info", "build info",
		L("version", "0.7.0"), L("go", "go1.x")).Set(1)
	r.Gauge("vmpower_weird_value", `quotes " and \ back`).Set(1)
	h := r.Histogram("vmpower_tick_duration_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(&buf); len(problems) != 0 {
		t.Fatalf("repo's own exposition fails its own lint:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLintExpositionCatchesBreakage(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{
			"missing TYPE",
			"vmpower_x 1\n",
			"no preceding # TYPE",
		},
		{
			"missing HELP",
			"# TYPE vmpower_x gauge\nvmpower_x 1\n",
			"no preceding # HELP",
		},
		{
			"counter without _total",
			"# HELP vmpower_ticks t\n# TYPE vmpower_ticks counter\nvmpower_ticks 1\n",
			"does not end in _total",
		},
		{
			"duplicate series",
			"# HELP vmpower_x x\n# TYPE vmpower_x gauge\nvmpower_x{a=\"1\"} 1\nvmpower_x{a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"bad escape",
			"# HELP vmpower_x x\n# TYPE vmpower_x gauge\nvmpower_x{a=\"\\t\"} 1\n",
			`invalid escape`,
		},
		{
			"unquoted label value",
			"# HELP vmpower_x x\n# TYPE vmpower_x gauge\nvmpower_x{a=1} 1\n",
			"not quoted",
		},
		{
			"invalid metric name",
			"# HELP vm-power x\n# TYPE vm-power gauge\nvm-power 1\n",
			"invalid metric name",
		},
		{
			"unparseable value",
			"# HELP vmpower_x x\n# TYPE vmpower_x gauge\nvmpower_x nope\n",
			"unparseable value",
		},
		{
			"TYPE after sample",
			"# HELP vmpower_x x\n# TYPE vmpower_x gauge\nvmpower_x 1\n# TYPE vmpower_x gauge\n",
			"after the family's first sample",
		},
		{
			"unknown type",
			"# HELP vmpower_x x\n# TYPE vmpower_x stringly\nvmpower_x 1\n",
			"unknown type",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintExposition(strings.NewReader(tc.body))
			if len(problems) == 0 {
				t.Fatalf("lint missed the breakage in:\n%s", tc.body)
			}
			joined := strings.Join(problems, "\n")
			if !strings.Contains(joined, tc.want) {
				t.Fatalf("problems %q do not mention %q", joined, tc.want)
			}
		})
	}
}

func TestLintExpositionAllowsHistogramSamplesAndInf(t *testing.T) {
	body := "# HELP vmpower_lat l\n# TYPE vmpower_lat histogram\n" +
		"vmpower_lat_bucket{le=\"0.1\"} 1\n" +
		"vmpower_lat_bucket{le=\"+Inf\"} 2\n" +
		"vmpower_lat_sum 0.3\nvmpower_lat_count 2\n" +
		"# HELP vmpower_g g\n# TYPE vmpower_g gauge\nvmpower_g +Inf\n"
	if problems := LintExposition(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("histogram suffixes flagged: %s", strings.Join(problems, "; "))
	}
}
