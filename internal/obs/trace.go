package obs

import "time"

// Tracer measures the stages of a repeating pipeline (the 1 Hz tick:
// snapshot → meter → worth → solve → normalize → publish) into one
// latency histogram per stage plus a total-duration histogram. A span is
// cheap enough to run every tick: one time.Now per stage boundary, no
// allocations beyond the span itself.
//
// A nil *Tracer (uninstrumented pipeline) starts nil *Spans whose
// methods are allocation-free no-ops.
type Tracer struct {
	total  *Histogram
	stages map[string]*Histogram
}

// NewTracer registers a stage-latency histogram family stageName with a
// {stage="..."} series per stage, and a total-duration histogram
// totalName, all with DefDurationBuckets.
func NewTracer(r *Registry, totalName, stageName, help string, stages ...string) *Tracer {
	if r == nil {
		return nil
	}
	t := &Tracer{
		total:  r.Histogram(totalName, help, nil),
		stages: make(map[string]*Histogram, len(stages)),
	}
	for _, s := range stages {
		t.stages[s] = r.Histogram(stageName, help+" (per stage)", nil, L("stage", s))
	}
	return t
}

// Span is one traced pipeline pass.
type Span struct {
	t     *Tracer
	start time.Time
	last  time.Time
}

// Start begins a span. On a nil tracer it returns a nil span.
func (t *Tracer) Start() *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Span{t: t, start: now, last: now}
}

// Mark ends the current stage: it observes the time since the previous
// Mark (or Start) into the stage's histogram. Unknown stages are
// ignored.
func (s *Span) Mark(stage string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.stages[stage].Observe(now.Sub(s.last).Seconds())
	s.last = now
}

// End finishes the span, observing the total duration since Start.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.total.Observe(time.Since(s.start).Seconds())
}
