package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text-format (0.0.4) exposition
// against the repo's conventions and returns one message per problem
// (nil when clean):
//
//   - every sample's family has a # TYPE line, and the TYPE (and HELP,
//     which this repo always writes) appears before the first sample;
//   - counter families end in _total;
//   - metric and label names stay within the Prometheus charset;
//   - label values are properly quoted and escaped (\\, \", \n only);
//   - no duplicate series (same name + label set twice);
//   - sample values parse as floats (+Inf/-Inf/NaN allowed).
//
// It exists so exposition regressions — a family losing its HELP/TYPE,
// an unescaped label value, a series registered twice — fail the build
// instead of breaking scrapers in production.
func LintExposition(r io.Reader) []string {
	var problems []string
	typed := make(map[string]string) // family → TYPE
	helped := make(map[string]bool)  // family → HELP seen
	sampled := make(map[string]bool) // family → first sample emitted
	series := make(map[string]bool)  // name+labels → seen
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		bad := func(format string, args ...any) {
			problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				bad("%s for invalid metric name %q", fields[1], name)
				continue
			}
			if sampled[name] {
				bad("%s %s appears after the family's first sample", fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					bad("duplicate HELP for %s", name)
				}
				helped[name] = true
			case "TYPE":
				if _, ok := typed[name]; ok {
					bad("duplicate TYPE for %s", name)
					continue
				}
				if len(fields) < 4 {
					bad("TYPE %s missing a type", name)
					continue
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					bad("TYPE %s has unknown type %q", name, typ)
					continue
				}
				if typ == "counter" && !strings.HasSuffix(name, "_total") {
					bad("counter %s does not end in _total", name)
				}
				typed[name] = typ
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			bad("%v", err)
			continue
		}
		fam := familyOf(name, typed)
		if _, ok := typed[fam]; !ok {
			bad("sample %s has no preceding # TYPE %s", name, fam)
		} else if !helped[fam] {
			bad("sample %s has no preceding # HELP %s", name, fam)
		}
		sampled[fam] = true
		key := name + labels
		if series[key] {
			bad("duplicate series %s%s", name, labels)
		}
		series[key] = true
		switch value {
		case "+Inf", "-Inf", "NaN", "Inf":
		default:
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				bad("series %s has unparseable value %q", name, value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	return problems
}

// familyOf strips a histogram/summary sample suffix when the base name
// has a matching TYPE declaration, so _bucket/_sum/_count lines resolve
// to their family.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

// parseSampleLine splits "name{labels} value [timestamp]" and validates
// name, label names and label-value escaping. labels is returned in the
// raw canonical text form (used for duplicate-series detection).
func parseSampleLine(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end, lerr := scanLabels(rest[i:])
		if lerr != nil {
			return "", "", "", fmt.Errorf("sample %q: %w", name, lerr)
		}
		labels = rest[i : i+end]
		rest = rest[i+end:]
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", "", fmt.Errorf("sample line %q has no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("series %s: want 'value [timestamp]', got %q", name, strings.TrimSpace(rest))
	}
	return name, labels, fields[0], nil
}

// scanLabels validates a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing '}'.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	if i < len(s) && s[i] == '}' {
		return i + 1, nil
	}
	for {
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		lname := s[start:i]
		if !validLabelName(lname) {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: value not quoted", lname)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %s: truncated escape", lname)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("label %s: invalid escape \\%c", lname, s[i+1])
				}
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label %s: unterminated value", lname)
		}
		i++ // past closing '"'
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		switch s[i] {
		case ',':
			i++
		case '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("unexpected %q after label %s", s[i], lname)
		}
	}
}

// validMetricName reports whether name fits [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name fits [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
