package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"
)

func sampleRecord(tick int) FlightRecord {
	return FlightRecord{
		Tick:          tick,
		MeasuredWatts: 93.75 + float64(tick)/3,
		DynamicWatts:  41.0625 + float64(tick)/7,
		Tier:          "exact-mask",
		TierReason:    "within exact mask budget",
		DirtyVMs:      2, Evaluated: 12, Reused: 20,
		EfficiencyResidualWatts: 3.1e-13,
		Names:                   []string{"vm1", "vm2", "vm3"},
		PerVMWatts:              []float64{10.125, 0.1 + float64(tick)*0.3, 17.25},
		PerVMEnergyWs:           []float64{10.125, 0.4, 17.25},
		States: [][]float64{
			{0.25, 0.5, 0.125},
			{1, 0, 0.75},
			{0.3333333333333333, 2, 0.1},
		},
	}
}

func TestFlightRingOverwritesOldest(t *testing.T) {
	f := NewFlightRecorder(4, 3, 3)
	for i := 1; i <= 10; i++ {
		if seq := f.Record(&FlightRecord{Tick: i}); seq != uint64(i) {
			t.Fatalf("Record %d returned seq %d", i, seq)
		}
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	d := f.Dump("test")
	if d.NextSeq != 11 || len(d.Records) != 4 {
		t.Fatalf("dump next %d, %d records; want 11, 4", d.NextSeq, len(d.Records))
	}
	for i, rec := range d.Records {
		if rec.Seq != uint64(7+i) || rec.Tick != 7+i {
			t.Fatalf("record %d = seq %d tick %d, want %d", i, rec.Seq, rec.Tick, 7+i)
		}
	}
}

func TestFlightRecordCopiesNotAliases(t *testing.T) {
	f := NewFlightRecorder(4, 3, 3)
	rec := sampleRecord(1)
	f.Record(&rec)
	// Mutating the caller's scratch must not reach the ring.
	rec.PerVMWatts[0] = -1
	rec.States[0][0] = -1
	rec.Names[0] = "clobbered"
	d := f.Dump("test")
	got := d.Records[0]
	if got.PerVMWatts[0] != 10.125 || got.States[0][0] != 0.25 || got.Names[0] != "vm1" {
		t.Fatalf("ring aliases caller memory: %+v", got)
	}
	// And mutating a dump must not reach the ring either.
	got.PerVMWatts[0] = -2
	if f.Dump("again").Records[0].PerVMWatts[0] != 10.125 {
		t.Fatal("dump aliases ring memory")
	}
}

// TestFlightDumpJSONRoundTrip pins the post-mortem contract: a dump
// pulled off the wire carries bit-identical φ to what the daemon served.
// encoding/json's shortest-representation float encoding makes this
// exact, which the test checks via Float64bits rather than ==.
func TestFlightDumpJSONRoundTrip(t *testing.T) {
	f := NewFlightRecorder(8, 3, 3)
	for i := 1; i <= 5; i++ {
		rec := sampleRecord(i)
		f.Record(&rec)
	}
	var buf bytes.Buffer
	f.WriteJSON(&buf, "test")
	var got FlightDump
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	want := f.Dump("test")
	if got.Reason != "test" || got.NextSeq != want.NextSeq || len(got.Records) != len(want.Records) {
		t.Fatalf("dump header = %q/%d/%d, want %q/%d/%d",
			got.Reason, got.NextSeq, len(got.Records), want.Reason, want.NextSeq, len(want.Records))
	}
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		for v := range w.PerVMWatts {
			if math.Float64bits(w.PerVMWatts[v]) != math.Float64bits(g.PerVMWatts[v]) {
				t.Fatalf("record %d vm %d: φ %x != %x after round-trip",
					i, v, math.Float64bits(w.PerVMWatts[v]), math.Float64bits(g.PerVMWatts[v]))
			}
		}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("record %d differs after round-trip:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestFlightRecordZeroAllocs pins the hot-path contract: recording a
// tick within the preallocated capacity performs no allocations, so the
// recorder is safe to leave on permanently.
func TestFlightRecordZeroAllocs(t *testing.T) {
	f := NewFlightRecorder(16, 3, 3)
	rec := sampleRecord(1)
	if allocs := testing.AllocsPerRun(200, func() { f.Record(&rec) }); allocs != 0 {
		t.Fatalf("Record allocates %v/op within capacity, want 0", allocs)
	}
	// Oversized ticks are allowed to allocate — but must still be correct.
	big := sampleRecord(2)
	big.Names = append(big.Names, "vm4")
	big.PerVMWatts = append(big.PerVMWatts, 4)
	big.States = append(big.States, []float64{9, 9, 9, 9})
	f.Record(&big)
	d := f.Dump("test")
	last := d.Records[len(d.Records)-1]
	if len(last.Names) != 4 || last.PerVMWatts[3] != 4 || last.States[3][0] != 9 {
		t.Fatalf("oversized record mangled: %+v", last)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	if seq := f.Record(&FlightRecord{}); seq != 0 {
		t.Fatalf("nil Record = %d, want 0", seq)
	}
	if f.Len() != 0 {
		t.Fatalf("nil Len = %d", f.Len())
	}
	if d := f.Dump("x"); len(d.Records) != 0 {
		t.Fatalf("nil Dump = %+v", d)
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(4, 3, 3)
	rec := sampleRecord(1)
	f.Record(&rec)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/flight", nil))
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	var d FlightDump
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatalf("decoding handler body: %v", err)
	}
	if d.Reason != "http" || len(d.Records) != 1 || d.Records[0].Tier != "exact-mask" {
		t.Fatalf("dump = %+v", d)
	}
}
