// Package obs is the zero-dependency observability layer of the
// reproduction: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms) with Prometheus text-format and JSON
// exposition, a leveled structured logger, and a lightweight span tracer
// for the per-tick estimation pipeline.
//
// Every type in the package is nil-safe: calling any method on a nil
// *Counter, *Gauge, *Histogram, *Tracer, *Span or *Logger is a no-op
// that performs zero allocations, so instrumented packages hold
// possibly-nil handles and pay nothing until a daemon wires a registry
// in (see shapley.Instrument, serial.Instrument, powerd.Instrument).
//
// Metric naming follows the Prometheus conventions: a vmpower_ prefix,
// base units (seconds, watts, watt-hours), _total suffix on counters.
// Label cardinality is bounded by construction — labels only carry VM
// names, pipeline stage names, solver method names and endpoint paths,
// all fixed at startup (see DESIGN.md §7).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the families a Registry holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	labels []Label
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Buckets are
// cumulative in the exposition (Prometheus semantics): bucket i counts
// observations <= bounds[i], plus an implicit +Inf bucket.
type Histogram struct {
	labels []Label
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefDurationBuckets is the default latency bucket layout, spanning
// 100 µs to 2.5 s — the 1 Hz pipeline budget with headroom on both ends.
var DefDurationBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// family is one named metric with a fixed type and zero or more
// labelled children.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // canonical label string → *Counter/*Gauge/*Histogram
	order    []string
}

// Registry holds metric families and exposes them. All methods are safe
// for concurrent use; registration is idempotent (same name + labels
// returns the existing metric). A nil *Registry returns nil metrics,
// giving the caller a free no-op instrumentation path.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validateName panics on names outside the Prometheus charset. Metric
// registration happens at daemon startup, so a bad name is programmer
// error worth failing loudly on.
func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// labelKey canonicalises a label set for child lookup.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	key := ""
	for _, l := range labels {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return key
}

// fam returns the family, creating it if needed, and panics on a
// type/layout conflict with an existing registration.
func (r *Registry) fam(name, help string, kind metricKind, bounds []float64) *family {
	validateName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			bounds:   append([]float64(nil), bounds...),
			children: make(map[string]any),
		}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, f.kind))
	}
	return f
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.fam(name, help, kindCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(labels)
	if c, ok := f.children[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{labels: append([]Label(nil), labels...)}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.fam(name, help, kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(labels)
	if g, ok := f.children[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{labels: append([]Label(nil), labels...)}
	f.children[key] = g
	f.order = append(f.order, key)
	return g
}

// Histogram registers (or fetches) a histogram series. bounds must be
// sorted ascending; nil uses DefDurationBuckets. All series of one
// family share the first registration's bucket layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q has unsorted buckets", name))
	}
	f := r.fam(name, help, kindHistogram, bounds)
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(labels)
	if h, ok := f.children[key]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{
		labels: append([]Label(nil), labels...),
		bounds: f.bounds,
		counts: make([]atomic.Uint64, len(f.bounds)+1),
	}
	f.children[key] = h
	f.order = append(f.order, key)
	return h
}
