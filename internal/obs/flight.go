package obs

import (
	"io"
	"net/http"
	"sync"
)

// FlightRecord is one tick's provenance: everything a post-mortem of a
// bad bill needs to replay the engine's decision — the inputs (states,
// measured watts), the solver tier and why the gate picked it, the
// incremental-tabulation shape, the degradation bookkeeping, the audit
// residual, and the outputs (per-VM φ and energy increments). Slices use
// plain float64/string so a dump round-trips bit-identically through
// encoding/json (shortest-representation float encoding is exact).
type FlightRecord struct {
	Seq  uint64 `json:"seq"`
	Tick int    `json:"tick"`
	// UnixNanos is the wall clock at record time, stamped by the caller
	// (the recorder itself never reads the clock on the hot path).
	UnixNanos     int64   `json:"unix_nanos,omitempty"`
	MeasuredWatts float64 `json:"measured_watts"`
	DynamicWatts  float64 `json:"dynamic_watts"`
	// Tier is the solver tier that produced φ ("exact-mask", "exact-sym",
	// "montecarlo", "fallback"); TierReason is why the gate picked it.
	Tier       string `json:"tier"`
	TierReason string `json:"tier_reason,omitempty"`
	// SymClasses, DirtyVMs, Evaluated and Reused describe the tick's
	// incremental solve: symmetry classes (collapsed tier only), VMs whose
	// state changed since the previous tick, and worth-table entries
	// re-evaluated vs reused verbatim.
	SymClasses     int  `json:"sym_classes,omitempty"`
	DirtyVMs       int  `json:"dirty_vms"`
	Evaluated      int  `json:"evaluated"`
	Reused         int  `json:"reused"`
	FullTabulation bool `json:"full_tabulation,omitempty"`
	// Degradation bookkeeping, mirroring core.Allocation.
	Degraded         bool   `json:"degraded,omitempty"`
	DegradedReason   string `json:"degraded_reason,omitempty"`
	HoldoverAgeTicks int    `json:"holdover_age_ticks,omitempty"`
	RejectedSamples  int    `json:"rejected_samples,omitempty"`
	// EfficiencyResidualWatts is |Σφ − dynamic| as measured by the
	// invariant auditor (0 when unaudited).
	EfficiencyResidualWatts float64 `json:"efficiency_residual_watts"`
	// Names, PerVMWatts and PerVMEnergyWs are aligned: VM i's name, its
	// attributed watts this tick, and the watt-seconds this tick added to
	// its energy counter. A fleet recorder lists only accounted VMs.
	Names         []string  `json:"names,omitempty"`
	PerVMWatts    []float64 `json:"per_vm_watts"`
	PerVMEnergyWs []float64 `json:"per_vm_energy_ws,omitempty"`
	// States are the snapshot's per-VM resource vectors (row i = VM i),
	// empty when the producer has no per-VM snapshot (fleet rollups).
	States [][]float64 `json:"states,omitempty"`
}

// FlightRecorder is a fixed-size, allocation-free ring of FlightRecords:
// every tick is recorded into preallocated slots (Record copies values,
// never slice headers), and the ring is serialized to JSON only when a
// trigger fires — invariant violation, quarantine, SIGQUIT, or an HTTP
// request — so post-mortems never depend on having had debug logging on.
// All methods are nil-safe; Record and Dump are mutex-guarded and safe
// for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	slots []flightSlot
	next  uint64 // records written so far; next seq is next+1
}

// flightSlot is one preallocated ring entry: the record plus the backing
// rows its States slice re-points into on every overwrite.
type flightSlot struct {
	rec  FlightRecord
	rows [][]float64 // maxVMs rows × resources, allocated once
}

// DefaultFlightCapacity is the ring size when the caller passes a
// non-positive capacity: ~4 minutes of 1 Hz ticks, enough to span any
// degradation episode the chaos harnesses produce.
const DefaultFlightCapacity = 256

// NewFlightRecorder preallocates a ring of capacity records (<= 0 uses
// DefaultFlightCapacity), each able to hold maxVMs VMs with resources
// state dimensions without allocating.
func NewFlightRecorder(capacity, maxVMs, resources int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	if maxVMs < 0 {
		maxVMs = 0
	}
	if resources < 0 {
		resources = 0
	}
	f := &FlightRecorder{slots: make([]flightSlot, capacity)}
	for i := range f.slots {
		s := &f.slots[i]
		s.rec.Names = make([]string, 0, maxVMs)
		s.rec.PerVMWatts = make([]float64, 0, maxVMs)
		s.rec.PerVMEnergyWs = make([]float64, 0, maxVMs)
		s.rec.States = make([][]float64, 0, maxVMs)
		s.rows = make([][]float64, maxVMs)
		for r := range s.rows {
			s.rows[r] = make([]float64, 0, resources)
		}
	}
	return f
}

// Record copies rec into the next ring slot and returns its sequence
// number (0 on a nil recorder). rec stays caller-owned — keep one
// scratch FlightRecord per producer goroutine and refill it each tick.
// Within the preallocated capacity (maxVMs, resources) the copy performs
// zero allocations; oversized ticks fall back to growing the slot.
func (f *FlightRecorder) Record(rec *FlightRecord) uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	f.next++
	seq := f.next
	s := &f.slots[int((seq-1)%uint64(len(f.slots)))]
	dst := &s.rec
	names, watts, energy, states := dst.Names, dst.PerVMWatts, dst.PerVMEnergyWs, dst.States
	*dst = *rec
	dst.Seq = seq
	dst.Names = append(names[:0], rec.Names...)
	dst.PerVMWatts = append(watts[:0], rec.PerVMWatts...)
	dst.PerVMEnergyWs = append(energy[:0], rec.PerVMEnergyWs...)
	states = states[:0]
	for i, row := range rec.States {
		if i < len(s.rows) {
			s.rows[i] = append(s.rows[i][:0], row...)
			states = append(states, s.rows[i])
		} else {
			states = append(states, append([]float64(nil), row...))
		}
	}
	dst.States = states
	f.mu.Unlock()
	return seq
}

// Len returns the number of records currently buffered.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < uint64(len(f.slots)) {
		return int(f.next)
	}
	return len(f.slots)
}

// FlightDump is the JSON form of a triggered dump: the buffered records
// oldest-first, deep-copied so later ticks cannot mutate them.
type FlightDump struct {
	// Reason names the trigger ("audit: ...", "quarantine: host 2",
	// "SIGQUIT", "http").
	Reason string `json:"reason,omitempty"`
	// NextSeq is the sequence number the next record will get.
	NextSeq uint64         `json:"next_seq"`
	Records []FlightRecord `json:"records"`
}

// Dump snapshots the ring oldest-first. This is the triggered (cold)
// path and allocates freely; Record stays allocation-free.
func (f *FlightRecorder) Dump(reason string) *FlightDump {
	d := &FlightDump{Reason: reason, Records: []FlightRecord{}}
	if f == nil {
		return d
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d.NextSeq = f.next + 1
	first := uint64(1)
	if f.next > uint64(len(f.slots)) {
		first = f.next - uint64(len(f.slots)) + 1
	}
	for seq := first; seq <= f.next; seq++ {
		src := &f.slots[int((seq-1)%uint64(len(f.slots)))].rec
		rec := *src
		rec.Names = append([]string(nil), src.Names...)
		rec.PerVMWatts = append([]float64(nil), src.PerVMWatts...)
		rec.PerVMEnergyWs = append([]float64(nil), src.PerVMEnergyWs...)
		rec.States = make([][]float64, len(src.States))
		for i, row := range src.States {
			rec.States[i] = append([]float64(nil), row...)
		}
		d.Records = append(d.Records, rec)
	}
	return d
}

// WriteJSON dumps the ring as indented JSON to w.
func (f *FlightRecorder) WriteJSON(w io.Writer, reason string) {
	WriteJSONIndent(w, f.Dump(reason))
}

// Handler serves a fresh dump on every GET (mount at /debug/flight).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		f.WriteJSON(w, "http")
	})
}
